package experiment

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
)

// ShardNodes is the sharded deployment size the scenario runs at, and
// ShardCount how many shard leaders partition it. Each shard gets
// ShardStandbys warm standbys, so a shard leader's death is settled by that
// shard's own quorum election while the other shards keep cycling.
const (
	ShardNodes    = 1000
	ShardCount    = 4
	ShardStandbys = 2
)

// shard scenario bounds, reusing the failover scenario's detection timing
// (sync every 25ms, lease dead after 150ms).
const (
	// shardBaselineCycles is the healthy-deployment settle window measured
	// before the kill.
	shardBaselineCycles = 5
	// shardRecoverBudget is the wall-clock budget for the dead shard's
	// election, re-homing, and first recovered cycle.
	shardRecoverBudget = 15 * time.Second
	// shardRecoverCycles bounds recovery in control intervals, like the
	// failover scenario but for one shard: a quorum election among the
	// shard's own standbys, not a whole-fleet outage.
	shardRecoverCycles = 8
	// shardDisturbRatio and shardDisturbSlack bound the surviving shards'
	// per-cycle latency while the dead shard recovers: undisturbed means
	// within shardDisturbRatio of the healthy baseline, or within an
	// absolute shardDisturbSlack of it (sub-millisecond baselines make
	// pure ratios meaningless on a loaded runner).
	shardDisturbRatio = 5.0
	shardDisturbSlack = 100 * time.Millisecond
)

// ShardResult reports the shard-leader-kill scenario's outcome.
type ShardResult struct {
	// Nodes and Shards describe the deployment.
	Nodes, Shards int
	// Victim is the killed shard (the most populated one) and
	// VictimChildren how many children it owned at the kill.
	Victim, VictimChildren int
	// OldEpoch and NewEpoch are the victim shard's leadership epochs
	// before the kill and after its quorum election.
	OldEpoch, NewEpoch uint64
	// Promotions counts promotions observed by the shard's elected leader
	// (must be exactly one).
	Promotions uint64
	// RecoveryGap is the wall clock from the kill to the elected leader's
	// first completed cycle; CyclesToRecover the same in control
	// intervals of the paced loop.
	RecoveryGap     time.Duration
	CyclesToRecover int
	// ReHomed is how many children the elected leader owns after
	// recovery (must equal VictimChildren: no orphans).
	ReHomed int
	// SurvivorBaseline and SurvivorDuring are each surviving shard's mean
	// cycle latency before the kill and while the dead shard recovered,
	// index-aligned with Survivors.
	Survivors        []int
	SurvivorBaseline []time.Duration
	SurvivorDuring   []time.Duration
	// DisturbanceRatio is the worst survivor's during/baseline ratio.
	DisturbanceRatio float64
	// SurvivorCycleErrors counts failed survivor cycles during the dead
	// window (must be zero), over SurvivorCycles attempts per survivor.
	SurvivorCycleErrors int
	SurvivorCycles      int
	// RouterCyclesOK reports whether whole-deployment routed cycles
	// succeeded once the election settled, with no healing step: the
	// routing tier resolves the shard's new leader by itself.
	RouterCyclesOK bool
	// RulesRecovered and RulesLost compare, for every child of the dead
	// shard, the elected leader's rule state against the rule the child
	// actually holds: zero loss means the handed-over shard's control
	// state is complete.
	RulesRecovered, RulesLost int
	// FencedAtStages sums stale-epoch rejections issued by the victim
	// shard's children — the dead leader's epoch must be fenced out.
	FencedAtStages uint64
}

// Shard runs the shard-leader-kill scenario: a fleet partitioned across
// ShardCount concurrently active shard leaders, each with its own standby
// quorum and write-ahead store, cycles paced across all shards through the
// routing tier. One shard leader's host is crashed mid-run. The surviving
// shards' cycle latency must be undisturbed while the dead shard recovers
// through its own quorum election, and the recovered shard must come back
// with every child and every rule intact.
func Shard(ctx context.Context, o Options) (ShardResult, error) {
	o = o.withDefaults()
	nodes := o.scaled(ShardNodes)

	dataDir, err := os.MkdirTemp("", "sdscale-shard-")
	if err != nil {
		return ShardResult{}, fmt.Errorf("experiment shard: data dir: %w", err)
	}
	defer os.RemoveAll(dataDir)

	c, err := cluster.Build(cluster.Config{
		Topology:      cluster.Flat,
		Stages:        nodes,
		Jobs:          o.Jobs,
		Shards:        ShardCount,
		Standbys:      ShardStandbys,
		Net:           *o.Net,
		MaxCodec:      o.MaxCodec,
		CallTimeout:   failoverCallTimeout,
		MaxFailures:   failoverMaxFailures,
		ProbeInterval: failoverProbeInterval,
		LeaseTimeout:  failoverLeaseTimeout,
		SyncInterval:  failoverSyncInterval,
		ParentTimeout: failoverParentTimeout,
		DataDir:       dataDir,
	})
	if err != nil {
		return ShardResult{}, fmt.Errorf("experiment shard: %w", err)
	}
	defer c.Close()

	r := ShardResult{Nodes: nodes, Shards: ShardCount}

	// The victim is the most populated shard: killing the biggest blast
	// radius makes the survivors' indifference the strongest claim.
	for s, g := range c.Globals {
		if n := g.NumChildren(); n > r.VictimChildren {
			r.Victim, r.VictimChildren = s, n
		}
	}
	victim := c.Globals[r.Victim]
	r.OldEpoch = victim.Epoch()
	for s := range c.Globals {
		if s != r.Victim {
			r.Survivors = append(r.Survivors, s)
		}
	}

	// Healthy baseline through the routing tier: every shard cycles
	// concurrently, each leader's recorder timing its own shard.
	for _, g := range c.Globals {
		g.Recorder().Reset()
	}
	for i := 0; i < shardBaselineCycles+o.Warmup; i++ {
		if _, err := c.RunControlCycle(ctx); err != nil {
			return r, fmt.Errorf("experiment shard: baseline cycle: %w", err)
		}
	}
	for _, s := range r.Survivors {
		r.SurvivorBaseline = append(r.SurvivorBaseline, c.Globals[s].Recorder().Phase(telemetry.PhaseTotal).Mean())
	}

	// Kill the victim shard's leader: its host crashes, its children go
	// dark, and its standbys' leases start running out.
	c.Net.Schedule([]simnet.FaultEvent{{Host: cluster.ShardHost(r.Victim), Action: simnet.FaultCrash}}).Wait()
	crashAt := time.Now()
	for _, s := range r.Survivors {
		c.Globals[s].Recorder().Reset()
	}

	// Only now arm the victim shard's standbys: their lease watch loops
	// notice the silence, hold a majority election among the shard's
	// voters, and the winner re-homes the shard's children and resumes
	// paced cycles. The surviving shards never participate.
	group := c.Router.Group(r.Victim)
	standbys := group.Members()[1:]
	sbCtx, stopStandbys := context.WithCancel(ctx)
	defer stopStandbys()
	var sbWg sync.WaitGroup
	for _, sb := range standbys {
		sbWg.Add(1)
		go func(sb *controller.Global) {
			defer sbWg.Done()
			_ = sb.Run(sbCtx, failoverCyclePeriod)
		}(sb)
	}

	// While the dead shard recovers, keep driving the survivors exactly as
	// the routing tier does — one concurrent cycle per live shard — and
	// time each from its own recorder. The victim shard is left to its
	// election; driving its doomed leader would only measure timeouts.
	var elected *controller.Global
	deadline := time.Now().Add(shardRecoverBudget)
	for {
		var wg sync.WaitGroup
		var errCount int
		var errMu sync.Mutex
		for _, s := range r.Survivors {
			wg.Add(1)
			go func(g *controller.Global) {
				defer wg.Done()
				if _, err := g.RunCycle(ctx); err != nil {
					errMu.Lock()
					errCount++
					errMu.Unlock()
				}
			}(c.Globals[s])
		}
		wg.Wait()
		r.SurvivorCycles++
		r.SurvivorCycleErrors += errCount

		if lead := group.Leader(); lead != victim && lead.Promoted() && lead.Recorder().Cycles() >= 1 {
			elected = lead
			break
		}
		if ctx.Err() != nil {
			return r, ctx.Err()
		}
		if time.Now().After(deadline) {
			return r, fmt.Errorf("experiment shard: shard %d never recovered within %v", r.Victim, shardRecoverBudget)
		}
		time.Sleep(2 * time.Millisecond)
	}
	r.RecoveryGap = time.Since(crashAt)
	r.CyclesToRecover = int((r.RecoveryGap + failoverCyclePeriod - 1) / failoverCyclePeriod)
	r.NewEpoch = elected.Epoch()
	r.Promotions = elected.Faults().Summarize().Promotions
	for _, s := range r.Survivors {
		r.SurvivorDuring = append(r.SurvivorDuring, c.Globals[s].Recorder().Phase(telemetry.PhaseTotal).Mean())
	}
	for i := range r.Survivors {
		base := r.SurvivorBaseline[i]
		if base < 500*time.Microsecond {
			base = 500 * time.Microsecond
		}
		if ratio := float64(r.SurvivorDuring[i]) / float64(base); ratio > r.DisturbanceRatio {
			r.DisturbanceRatio = ratio
		}
	}

	// Re-homing: every child the dead leader owned must end up owned by
	// the elected leader (mirror adoption or self re-registration).
	deadline = time.Now().Add(shardRecoverBudget)
	for elected.NumChildren() < r.VictimChildren && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	r.ReHomed = elected.NumChildren()

	// Stop the elected leader's paced loop, then prove the routing tier
	// heals transparently: whole-deployment cycles through the router must
	// succeed with no reconfiguration, resolving the shard to its new
	// leader by epoch.
	stopStandbys()
	sbWg.Wait()
	r.RouterCyclesOK = true
	for i := 0; i < 2; i++ {
		if _, err := c.RunControlCycle(ctx); err != nil {
			r.RouterCyclesOK = false
			return r, fmt.Errorf("experiment shard: routed cycle after recovery: %w", err)
		}
	}

	// Zero rule loss: for every child of the dead shard, the rule the
	// child actually enforces must be exactly what the elected leader's
	// state says it enforced — a complete, consistent handover.
	for _, id := range elected.ChildIDs() {
		v := c.Stages[id-1]
		live, ok := v.LastRule()
		if !ok {
			r.RulesLost++
			continue
		}
		_, rules, ok := elected.ChildSnapshot(id)
		if !ok {
			r.RulesLost++
			continue
		}
		found := false
		for _, rr := range rules {
			if rr.JobID == live.JobID && rr.Action == live.Action && rr.Limit == live.Limit {
				found = true
				break
			}
		}
		if found {
			r.RulesRecovered++
		} else {
			r.RulesLost++
		}
		r.FencedAtStages += v.FencedCalls()
	}
	return r, nil
}

// PrintShard renders the scenario's outcome.
func PrintShard(o Options, r ShardResult) {
	o = o.withDefaults()
	o.printf("shard — %d nodes across %d shard leaders, shard %d's leader (%d children) crashed mid-run\n",
		r.Nodes, r.Shards, r.Victim, r.VictimChildren)
	o.printf("  victim epoch            %d -> %d (promotions=%d, quorum of %d standbys)\n",
		r.OldEpoch, r.NewEpoch, r.Promotions, ShardStandbys)
	o.printf("  recovery gap            %v (%d control intervals of %v)\n",
		r.RecoveryGap.Round(time.Millisecond), r.CyclesToRecover, failoverCyclePeriod)
	o.printf("  re-homed                %d/%d children of the dead shard\n", r.ReHomed, r.VictimChildren)
	for i, s := range r.Survivors {
		o.printf("  survivor shard %d        %v -> %v per cycle (baseline -> dead window)\n",
			s, r.SurvivorBaseline[i].Round(time.Microsecond), r.SurvivorDuring[i].Round(time.Microsecond))
	}
	o.printf("  worst disturbance       %.2fx baseline (%d/%d survivor cycles failed)\n",
		r.DisturbanceRatio, r.SurvivorCycleErrors, r.SurvivorCycles*len(r.Survivors))
	o.printf("  routed cycles healed    %v (router resolves the elected leader by epoch)\n", r.RouterCyclesOK)
	o.printf("  rule consistency        %d recovered, %d lost (%d stale calls fenced at stages)\n\n",
		r.RulesRecovered, r.RulesLost, r.FencedAtStages)
}

// CheckShard asserts the scenario's claims: the dead shard recovered
// through exactly one quorum promotion with a superseding epoch and every
// child re-homed with its rules intact, the surviving shards' cycles never
// failed and stayed within the disturbance bound, and routed
// whole-deployment cycles work again with no manual healing.
func CheckShard(r ShardResult) error {
	if r.VictimChildren == 0 {
		return fmt.Errorf("shard: victim shard owned no children")
	}
	if r.Promotions != 1 {
		return fmt.Errorf("shard: %d promotions on the elected leader, want exactly 1", r.Promotions)
	}
	if r.NewEpoch <= r.OldEpoch {
		return fmt.Errorf("shard: elected epoch %d does not supersede %d", r.NewEpoch, r.OldEpoch)
	}
	if r.CyclesToRecover > shardRecoverCycles {
		return fmt.Errorf("shard: recovery took %d control intervals (%v), want <= %d",
			r.CyclesToRecover, r.RecoveryGap, shardRecoverCycles)
	}
	if r.ReHomed != r.VictimChildren {
		return fmt.Errorf("shard: only %d/%d children re-homed to the elected leader", r.ReHomed, r.VictimChildren)
	}
	if r.SurvivorCycleErrors != 0 {
		return fmt.Errorf("shard: %d survivor cycles failed during the dead window", r.SurvivorCycleErrors)
	}
	for i := range r.Survivors {
		during, base := r.SurvivorDuring[i], r.SurvivorBaseline[i]
		if during <= base+shardDisturbSlack {
			continue
		}
		if float64(during) > shardDisturbRatio*float64(base) {
			return fmt.Errorf("shard: survivor shard %d disturbed: %v per cycle during the dead window vs %v baseline",
				r.Survivors[i], during, base)
		}
	}
	if !r.RouterCyclesOK {
		return fmt.Errorf("shard: routed cycles did not succeed after recovery")
	}
	if r.RulesLost != 0 {
		return fmt.Errorf("shard: %d rules lost across the shard recovery", r.RulesLost)
	}
	if r.RulesRecovered != r.VictimChildren {
		return fmt.Errorf("shard: only %d/%d rules consistent after recovery", r.RulesRecovered, r.VictimChildren)
	}
	return nil
}
