package transport

import (
	"bytes"
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMeterCounts(t *testing.T) {
	var m Meter
	m.AddTx(100)
	m.AddTx(50)
	m.AddRx(7)
	if m.Tx() != 150 {
		t.Errorf("Tx = %d, want 150", m.Tx())
	}
	if m.Rx() != 7 {
		t.Errorf("Rx = %d, want 7", m.Rx())
	}
	tx, rx := m.Snapshot()
	if tx != 150 || rx != 7 {
		t.Errorf("Snapshot = (%d, %d)", tx, rx)
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.AddTx(1)
				m.AddRx(2)
			}
		}()
	}
	wg.Wait()
	if m.Tx() != 8000 || m.Rx() != 16000 {
		t.Errorf("concurrent meter = (%d, %d), want (8000, 16000)", m.Tx(), m.Rx())
	}
}

func TestMeteredConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	var m Meter
	mc := WithMeter(a, &m)

	go io.Copy(io.Discard, b)
	if _, err := mc.Write([]byte("12345")); err != nil {
		t.Fatal(err)
	}
	go b.Write([]byte("abc"))
	buf := make([]byte, 3)
	if _, err := io.ReadFull(mc, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("abc")) {
		t.Errorf("read %q", buf)
	}
	if m.Tx() != 5 {
		t.Errorf("Tx = %d, want 5", m.Tx())
	}
	if m.Rx() != 3 {
		t.Errorf("Rx = %d, want 3", m.Rx())
	}
}

func TestWithMeterNil(t *testing.T) {
	a, _ := net.Pipe()
	defer a.Close()
	if got := WithMeter(a, nil); got != a {
		t.Error("WithMeter(nil) wrapped the conn")
	}
}

// pipeNetwork is a trivial Network over net.Pipe for testing the wrapper.
type pipeNetwork struct{ server chan net.Conn }

func (p *pipeNetwork) Listen(string) (net.Listener, error) { return nil, nil }
func (p *pipeNetwork) Dial(ctx context.Context, addr string) (net.Conn, error) {
	a, b := net.Pipe()
	p.server <- b
	return a, nil
}

func TestMeteredNetwork(t *testing.T) {
	inner := &pipeNetwork{server: make(chan net.Conn, 1)}
	var m Meter
	n := &MeteredNetwork{Network: inner, Meter: &m}
	c, err := n.Dial(context.Background(), "x")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-inner.server
	defer srv.Close()
	go io.Copy(io.Discard, srv)
	if _, err := c.Write(make([]byte, 9)); err != nil {
		t.Fatal(err)
	}
	if m.Tx() != 9 {
		t.Errorf("metered network Tx = %d, want 9", m.Tx())
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1e6, time.Second); got != 1.0 {
		t.Errorf("Rate(1MB, 1s) = %g, want 1", got)
	}
	if got := Rate(5e6, 2*time.Second); got != 2.5 {
		t.Errorf("Rate(5MB, 2s) = %g, want 2.5", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Errorf("Rate(_, 0) = %g, want 0", got)
	}
	if got := Rate(100, -time.Second); got != 0 {
		t.Errorf("Rate(_, <0) = %g, want 0", got)
	}
}

func TestMeterMonotonicProperty(t *testing.T) {
	f := func(adds []uint16) bool {
		var m Meter
		var sum uint64
		for _, a := range adds {
			m.AddTx(int(a))
			sum += uint64(a)
			if m.Tx() != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
