package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

func TestRateCounterBasic(t *testing.T) {
	base := time.Now()
	c := NewRateCounter(time.Second, 10)
	// 100 events inside the window -> 100 ops/s.
	for i := 0; i < 100; i++ {
		c.Add(base.Add(time.Duration(i)*5*time.Millisecond), 1)
	}
	rate := c.Rate(base.Add(500 * time.Millisecond))
	if math.Abs(rate-100) > 1e-9 {
		t.Errorf("rate = %g, want 100", rate)
	}
}

func TestRateCounterExpiry(t *testing.T) {
	base := time.Now()
	c := NewRateCounter(time.Second, 10)
	c.Add(base, 50)
	// After more than a full window, everything expires.
	if rate := c.Rate(base.Add(2 * time.Second)); rate != 0 {
		t.Errorf("rate after expiry = %g, want 0", rate)
	}
	if total := c.Total(base.Add(2 * time.Second)); total != 0 {
		t.Errorf("total after expiry = %g, want 0", total)
	}
}

func TestRateCounterPartialExpiry(t *testing.T) {
	base := time.Now()
	c := NewRateCounter(time.Second, 10)
	c.Add(base, 10)                           // bucket at t=0
	c.Add(base.Add(600*time.Millisecond), 20) // bucket at t=0.6
	// At t=1.05 the first bucket (age > 1s) has expired, second remains.
	total := c.Total(base.Add(1050 * time.Millisecond))
	if total != 20 {
		t.Errorf("total = %g, want 20", total)
	}
}

func TestRateCounterDefaults(t *testing.T) {
	c := NewRateCounter(0, 0) // both defaulted, must not panic
	now := time.Now()
	c.Add(now, 5)
	if c.Total(now) != 5 {
		t.Error("defaulted counter lost events")
	}
}

func TestRateCounterConcurrent(t *testing.T) {
	c := NewRateCounter(time.Second, 10)
	now := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(now, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Total(now); got != 8000 {
		t.Errorf("concurrent total = %g, want 8000", got)
	}
}

func TestEWMAConvergence(t *testing.T) {
	e := NewEWMA(time.Second)
	base := time.Now()
	e.Update(base, 0)
	// Feed a constant 100 for many time constants; must converge.
	for i := 1; i <= 100; i++ {
		e.Update(base.Add(time.Duration(i)*200*time.Millisecond), 100)
	}
	if v := e.Value(); math.Abs(v-100) > 1 {
		t.Errorf("EWMA = %g, want ~100", v)
	}
}

func TestEWMAFirstSamplePrimes(t *testing.T) {
	e := NewEWMA(time.Second)
	if e.Primed() {
		t.Error("new EWMA reports primed")
	}
	e.Update(time.Now(), 42)
	if !e.Primed() {
		t.Error("EWMA not primed after first sample")
	}
	if v := e.Value(); v != 42 {
		t.Errorf("first sample = %g, want 42", v)
	}
}

func TestEWMASameInstant(t *testing.T) {
	e := NewEWMA(time.Second)
	now := time.Now()
	e.Update(now, 0)
	e.Update(now, 100) // dt == 0 must not divide by zero or jump fully
	v := e.Value()
	if v <= 0 || v >= 100 {
		t.Errorf("same-instant update = %g, want in (0, 100)", v)
	}
}

func TestEWMABoundedProperty(t *testing.T) {
	// The average always stays within the min/max of its inputs.
	f := func(samples []float64) bool {
		if len(samples) == 0 {
			return true
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		e := NewEWMA(time.Second)
		now := time.Now()
		for i, s := range samples {
			if math.IsNaN(s) || math.Abs(s) > 1e100 {
				return true // skip degenerate inputs where FP rounding dominates
			}
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
			e.Update(now.Add(time.Duration(i)*time.Millisecond), s)
		}
		v := e.Value()
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAggregateByJob(t *testing.T) {
	reports := []wire.StageReport{
		{StageID: 1, JobID: 10, Demand: wire.Rates{100, 10}, Usage: wire.Rates{90, 9}},
		{StageID: 2, JobID: 20, Demand: wire.Rates{50, 5}, Usage: wire.Rates{50, 5}},
		{StageID: 3, JobID: 10, Demand: wire.Rates{200, 20}, Usage: wire.Rates{110, 11}},
	}
	jobs := AggregateByJob(reports)
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	if jobs[0].JobID != 10 || jobs[1].JobID != 20 {
		t.Fatalf("jobs not sorted: %+v", jobs)
	}
	j10 := jobs[0]
	if j10.Stages != 2 {
		t.Errorf("job 10 stages = %d, want 2", j10.Stages)
	}
	if j10.Demand != (wire.Rates{300, 30}) {
		t.Errorf("job 10 demand = %v", j10.Demand)
	}
	if j10.Usage != (wire.Rates{200, 20}) {
		t.Errorf("job 10 usage = %v", j10.Usage)
	}
}

func TestAggregateByJobEmpty(t *testing.T) {
	if got := AggregateByJob(nil); got != nil {
		t.Errorf("AggregateByJob(nil) = %v, want nil", got)
	}
}

func TestMergeJobReports(t *testing.T) {
	a := []wire.JobReport{
		{JobID: 1, Stages: 2, Demand: wire.Rates{10, 1}, Usage: wire.Rates{8, 1}},
		{JobID: 2, Stages: 1, Demand: wire.Rates{5, 0}, Usage: wire.Rates{5, 0}},
	}
	b := []wire.JobReport{
		{JobID: 1, Stages: 3, Demand: wire.Rates{20, 2}, Usage: wire.Rates{15, 2}},
	}
	merged := MergeJobReports(a, b)
	if len(merged) != 2 {
		t.Fatalf("merged = %d jobs, want 2", len(merged))
	}
	if merged[0].JobID != 1 || merged[0].Stages != 5 {
		t.Errorf("job 1 = %+v", merged[0])
	}
	if merged[0].Demand != (wire.Rates{30, 3}) {
		t.Errorf("job 1 demand = %v", merged[0].Demand)
	}
}

// TestAggregationConservesTotalsProperty: aggregation must neither create
// nor destroy demand — the invariant that makes pre-aggregation at
// aggregators transparent to the control algorithm.
func TestAggregationConservesTotalsProperty(t *testing.T) {
	f := func(stageIDs []uint16, seed int64) bool {
		reports := make([]wire.StageReport, len(stageIDs))
		var wantDemand, wantUsage wire.Rates
		for i, id := range stageIDs {
			r := wire.StageReport{
				StageID: uint64(i),
				JobID:   uint64(id % 7),
				Demand:  wire.Rates{float64(id), float64(id % 13)},
				Usage:   wire.Rates{float64(id) / 2, float64(id%13) / 2},
			}
			reports[i] = r
			wantDemand = wantDemand.Add(r.Demand)
			wantUsage = wantUsage.Add(r.Usage)
		}
		jobs := AggregateByJob(reports)
		gotDemand := TotalDemand(jobs)
		gotUsage := TotalUsage(jobs)
		var stages uint32
		for _, j := range jobs {
			stages += j.Stages
		}
		const eps = 1e-6
		return math.Abs(gotDemand[0]-wantDemand[0]) < eps &&
			math.Abs(gotDemand[1]-wantDemand[1]) < eps &&
			math.Abs(gotUsage[0]-wantUsage[0]) < eps &&
			math.Abs(gotUsage[1]-wantUsage[1]) < eps &&
			int(stages) == len(reports)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMergeEquivalentToFlatAggregation: splitting reports across aggregators
// and merging must equal aggregating them all at once — the correctness
// argument for the hierarchical design's collect phase.
func TestMergeEquivalentToFlatAggregation(t *testing.T) {
	f := func(n uint8, split uint8, seed int64) bool {
		count := int(n)%50 + 2
		reports := make([]wire.StageReport, count)
		for i := range reports {
			reports[i] = wire.StageReport{
				StageID: uint64(i),
				JobID:   uint64((int(seed) + i*7) % 5),
				Demand:  wire.Rates{float64(i * 3), float64(i)},
				Usage:   wire.Rates{float64(i * 2), float64(i) / 2},
			}
		}
		cut := int(split) % count
		flat := AggregateByJob(reports)
		merged := MergeJobReports(AggregateByJob(reports[:cut]), AggregateByJob(reports[cut:]))
		if len(flat) != len(merged) {
			return false
		}
		for i := range flat {
			if flat[i].JobID != merged[i].JobID || flat[i].Stages != merged[i].Stages {
				return false
			}
			d := flat[i].Demand.Sub(merged[i].Demand)
			u := flat[i].Usage.Sub(merged[i].Usage)
			if math.Abs(d[0]) > 1e-6 || math.Abs(d[1]) > 1e-6 || math.Abs(u[0]) > 1e-6 || math.Abs(u[1]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAggregateByJob2500(b *testing.B) {
	reports := make([]wire.StageReport, 2500)
	for i := range reports {
		reports[i] = wire.StageReport{
			StageID: uint64(i),
			JobID:   uint64(i % 16),
			Demand:  wire.Rates{1000, 100},
			Usage:   wire.Rates{900, 90},
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AggregateByJob(reports)
	}
}
