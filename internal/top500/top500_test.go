package top500

import (
	"strings"
	"testing"
)

func TestSystemsMatchPaperTableI(t *testing.T) {
	want := map[string]struct {
		rank  int
		nodes int
	}{
		"Frontier": {1, 9408},
		"Aurora":   {2, 10624},
		"Fugaku":   {4, 158976},
		"Summit":   {9, 4608},
		"Frontera": {33, 8368},
	}
	systems := Systems()
	if len(systems) != len(want) {
		t.Fatalf("systems = %d, want %d", len(systems), len(want))
	}
	for _, s := range systems {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected system %q", s.Name)
			continue
		}
		if s.Rank != w.rank || s.Nodes != w.nodes {
			t.Errorf("%s = rank %d nodes %d, want %d/%d", s.Name, s.Rank, s.Nodes, w.rank, w.nodes)
		}
	}
}

func TestByNodesDescending(t *testing.T) {
	s := ByNodes()
	for i := 1; i < len(s); i++ {
		if s[i].Nodes > s[i-1].Nodes {
			t.Fatalf("not descending at %d: %d > %d", i, s[i].Nodes, s[i-1].Nodes)
		}
	}
	if s[0].Name != "Fugaku" {
		t.Errorf("largest system = %s, want Fugaku", s[0].Name)
	}
}

func TestMinAggregators(t *testing.T) {
	frontier := Systems()[0]
	// 9408 nodes at the paper's 2,500-connection limit need 4 aggregators.
	if got := MinAggregators(frontier, 2500); got != 4 {
		t.Errorf("Frontier MinAggregators = %d, want 4", got)
	}
	aurora := Systems()[1]
	// 10,624 nodes need 5.
	if got := MinAggregators(aurora, 2500); got != 5 {
		t.Errorf("Aurora MinAggregators = %d, want 5", got)
	}
	if got := MinAggregators(frontier, 0); got != 0 {
		t.Errorf("MinAggregators with no limit = %d", got)
	}
}

func TestFitsFlat(t *testing.T) {
	for _, s := range Systems() {
		if FitsFlat(s, 2500) {
			t.Errorf("%s (%d nodes) reported as flat-manageable at 2500 conns", s.Name, s.Nodes)
		}
		if !FitsFlat(s, -1) {
			t.Errorf("%s not flat-manageable with limit disabled", s.Name)
		}
	}
	small := System{Name: "mini", Nodes: 100}
	if !FitsFlat(small, 2500) {
		t.Error("100-node system not flat-manageable")
	}
}

func TestTableRendering(t *testing.T) {
	out := Table()
	for _, name := range []string{"Frontier", "Aurora", "Fugaku", "Summit", "Frontera", "Rank", "158976"} {
		if !strings.Contains(out, name) {
			t.Errorf("table missing %q:\n%s", name, out)
		}
	}
}
