package telemetry

import (
	"runtime/metrics"
	"sync/atomic"
)

// Gauge tracks an instantaneous quantity and its high-water mark, e.g. the
// number of fan-out calls in flight during a cycle phase. All methods are
// safe for concurrent use.
type Gauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// Enter increments the gauge, updating the peak.
func (g *Gauge) Enter() {
	v := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Exit decrements the gauge.
func (g *Gauge) Exit() { g.cur.Add(-1) }

// Current returns the instantaneous value.
func (g *Gauge) Current() int64 { return g.cur.Load() }

// Peak returns the highest value observed since the last ResetPeak.
func (g *Gauge) Peak() int64 { return g.peak.Load() }

// ResetPeak clears the high-water mark (the current value stands).
func (g *Gauge) ResetPeak() { g.peak.Store(g.cur.Load()) }

// PipelineStats instruments a controller's fan-out phases: how many child
// calls are in flight per phase, and how many heap objects each control
// cycle allocates — the two quantities the pipelined dispatch path is meant
// to move (in-flight up, allocations down).
type PipelineStats struct {
	// CollectInFlight gauges in-flight collect-phase calls.
	CollectInFlight Gauge
	// EnforceInFlight gauges in-flight enforce-phase calls.
	EnforceInFlight Gauge

	lastCycleAllocs atomic.Uint64
	totalAllocs     atomic.Uint64
	allocCycles     atomic.Uint64

	// Marshal-once accounting: sharedSends counts broadcast calls issued
	// from a shared frame (header + memcopy instead of a marshal),
	// sharedEncodes counts the encodes those frames actually performed (at
	// most one per codec version per frame), and replyReuses counts replies
	// decoded into recycled messages. sends/encodes is the per-cycle
	// marshal fan-in: 10,000 for a full flat broadcast.
	sharedSends   atomic.Uint64
	sharedEncodes atomic.Uint64
	replyReuses   atomic.Uint64

	// Incremental-mode accounting: dirtyChildren is the dirty-set size the
	// last incremental cycle claimed, suppressedCollects counts per-child
	// collect calls the incremental mode skipped (the report cache was
	// already current), and suppressedEnforces counts per-child enforce
	// sends skipped because rule diffing found nothing new.
	dirtyChildren      atomic.Int64
	suppressedCollects atomic.Uint64
	suppressedEnforces atomic.Uint64

	// Compute-kernel and cycle-arena accounting: computeWorkers is the
	// worker count the last compute phase sharded across (1 = serial, 0 =
	// no compute ran), and the arena* counters mirror the controller's
	// cyclemem arena — generations begun, slab draws, draws served from
	// retained capacity, and draws that had to grow.
	computeWorkers                                atomic.Int64
	arenaGen, arenaTakes, arenaReuses, arenaGrows atomic.Uint64
}

// ArenaSnapshot mirrors a cycle arena's reuse counters (see
// internal/cyclemem). Reuses tracking Takes after warm-up is the signature
// of an allocation-free steady state; a growing Grows means the fleet or
// report volume outgrew the retained slabs.
type ArenaSnapshot struct {
	Generation, Takes, Reuses, Grows uint64
}

// RecordComputeWorkers stores how many workers the last compute phase used.
func (p *PipelineStats) RecordComputeWorkers(n int) { p.computeWorkers.Store(int64(n)) }

// ComputeWorkers returns the last compute phase's worker count.
func (p *PipelineStats) ComputeWorkers() int64 { return p.computeWorkers.Load() }

// RecordArena stores the controller's cycle-arena counters.
func (p *PipelineStats) RecordArena(a ArenaSnapshot) {
	p.arenaGen.Store(a.Generation)
	p.arenaTakes.Store(a.Takes)
	p.arenaReuses.Store(a.Reuses)
	p.arenaGrows.Store(a.Grows)
}

// Arena returns the last recorded cycle-arena counters.
func (p *PipelineStats) Arena() ArenaSnapshot {
	return ArenaSnapshot{
		Generation: p.arenaGen.Load(),
		Takes:      p.arenaTakes.Load(),
		Reuses:     p.arenaReuses.Load(),
		Grows:      p.arenaGrows.Load(),
	}
}

// RecordDirty stores the dirty-set size observed by the last incremental
// cycle.
func (p *PipelineStats) RecordDirty(n int) { p.dirtyChildren.Store(int64(n)) }

// DirtyChildren returns the last incremental cycle's dirty-set size.
func (p *PipelineStats) DirtyChildren() int64 { return p.dirtyChildren.Load() }

// AddSuppressedCollects counts n per-child collect calls skipped by the
// incremental mode.
func (p *PipelineStats) AddSuppressedCollects(n uint64) { p.suppressedCollects.Add(n) }

// SuppressedCollects returns the cumulative skipped-collect count.
func (p *PipelineStats) SuppressedCollects() uint64 { return p.suppressedCollects.Load() }

// AddSuppressedEnforces counts n per-child enforce sends skipped because the
// child's rules did not change.
func (p *PipelineStats) AddSuppressedEnforces(n uint64) { p.suppressedEnforces.Add(n) }

// SuppressedEnforces returns the cumulative skipped-enforce count.
func (p *PipelineStats) SuppressedEnforces() uint64 { return p.suppressedEnforces.Load() }

// AddSharedSends counts n broadcast calls issued from shared frames.
func (p *PipelineStats) AddSharedSends(n uint64) { p.sharedSends.Add(n) }

// AddSharedEncodes counts n encodes performed by shared frames.
func (p *PipelineStats) AddSharedEncodes(n uint64) { p.sharedEncodes.Add(n) }

// SharedSends returns the cumulative shared-frame call count.
func (p *PipelineStats) SharedSends() uint64 { return p.sharedSends.Load() }

// SharedEncodes returns the cumulative shared-frame encode count.
func (p *PipelineStats) SharedEncodes() uint64 { return p.sharedEncodes.Load() }

// ReuseCounter returns the counter that rpc clients and servers increment
// once per message decoded into a recycled instance — pass it as
// DialOptions.ReuseHits / ServerOptions.ReuseHits.
func (p *PipelineStats) ReuseCounter() *atomic.Uint64 { return &p.replyReuses }

// ReplyReuses returns the cumulative recycled-decode count.
func (p *PipelineStats) ReplyReuses() uint64 { return p.replyReuses.Load() }

// RecordCycleAllocs records one cycle's heap-object allocation count.
func (p *PipelineStats) RecordCycleAllocs(n uint64) {
	p.lastCycleAllocs.Store(n)
	p.totalAllocs.Add(n)
	p.allocCycles.Add(1)
}

// LastCycleAllocs returns the most recent cycle's allocation count.
func (p *PipelineStats) LastCycleAllocs() uint64 { return p.lastCycleAllocs.Load() }

// TotalAllocs returns allocations accumulated over all recorded cycles.
func (p *PipelineStats) TotalAllocs() uint64 { return p.totalAllocs.Load() }

// MeanCycleAllocs returns the mean allocation count per recorded cycle.
func (p *PipelineStats) MeanCycleAllocs() float64 {
	n := p.allocCycles.Load()
	if n == 0 {
		return 0
	}
	return float64(p.totalAllocs.Load()) / float64(n)
}

// Snapshot digests the stats for a point-in-time report.
func (p *PipelineStats) Snapshot() PipelineSnapshot {
	return PipelineSnapshot{
		CollectInFlight:     p.CollectInFlight.Current(),
		CollectInFlightPeak: p.CollectInFlight.Peak(),
		EnforceInFlight:     p.EnforceInFlight.Current(),
		EnforceInFlightPeak: p.EnforceInFlight.Peak(),
		LastCycleAllocs:     p.LastCycleAllocs(),
		MeanCycleAllocs:     p.MeanCycleAllocs(),
		SharedSends:         p.SharedSends(),
		SharedEncodes:       p.SharedEncodes(),
		ReplyReuses:         p.ReplyReuses(),
		DirtyChildren:       p.DirtyChildren(),
		SuppressedCollects:  p.SuppressedCollects(),
		SuppressedEnforces:  p.SuppressedEnforces(),
		ComputeWorkers:      p.ComputeWorkers(),
		Arena:               p.Arena(),
	}
}

// PipelineSnapshot is a point-in-time digest of PipelineStats.
type PipelineSnapshot struct {
	// CollectInFlight and EnforceInFlight are the instantaneous per-phase
	// in-flight call counts; the Peak variants are their high-water marks.
	// Pipelined fan-out peaks near the child count; blocking fan-out peaks
	// at the configured parallelism bound.
	CollectInFlight     int64
	CollectInFlightPeak int64
	EnforceInFlight     int64
	EnforceInFlightPeak int64
	// LastCycleAllocs and MeanCycleAllocs count heap objects allocated
	// during control cycles, process-wide: in a single-process simulation
	// concurrent roles' allocations are attributed to whichever cycle is
	// running.
	LastCycleAllocs uint64
	MeanCycleAllocs float64
	// SharedSends counts broadcast calls issued from marshal-once shared
	// frames; SharedEncodes counts the encodes those frames performed.
	// Their ratio is the marshal fan-in the shared path achieved.
	SharedSends   uint64
	SharedEncodes uint64
	// ReplyReuses counts messages decoded into recycled instances on the
	// zero-alloc decode path.
	ReplyReuses uint64
	// DirtyChildren is the dirty-set size the last incremental cycle
	// claimed; SuppressedCollects and SuppressedEnforces count the per-child
	// calls the incremental mode avoided (collects answered from the report
	// cache, enforces skipped by rule diffing). All zero outside
	// incremental mode.
	DirtyChildren      int64
	SuppressedCollects uint64
	SuppressedEnforces uint64
	// ComputeWorkers is the worker count the last compute phase sharded
	// its rule emission across (1 = serial path); Arena mirrors the
	// controller's cycle-arena reuse counters.
	ComputeWorkers int64
	Arena          ArenaSnapshot
}

// allocsSampleName is the runtime/metrics counter of cumulative heap
// objects allocated. Reading it is cheap (no stop-the-world), so cycles can
// sample it at every boundary.
const allocsSampleName = "/gc/heap/allocs:objects"

// AllocsNow returns the process-wide cumulative count of allocated heap
// objects. Subtract two readings to count allocations across a section.
func AllocsNow() uint64 {
	sample := make([]metrics.Sample, 1)
	sample[0].Name = allocsSampleName
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
