package controller

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/metrics"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// referenceFlatRules is the pre-arena map-based implementation of the flat
// compute phase, kept verbatim as the equivalence oracle: group reports by
// job in stable index order, split each job's allocation with
// controlalg.SplitProportional, last write wins per stage.
func referenceFlatRules(algo controlalg.Algorithm, weights map[uint64]float64,
	capacity wire.Rates, reports []wire.StageReport) map[uint64]wire.Rule {
	jobs := metrics.AggregateByJob(reports)
	inputs := make([]controlalg.JobInput, len(jobs))
	for i, j := range jobs {
		inputs[i] = controlalg.JobInput{JobID: j.JobID, Weight: weights[j.JobID], Demand: j.Demand, Stages: j.Stages}
	}
	allocs := algo.Allocate(inputs, capacity)

	allocByJob := make(map[uint64]wire.Rates, len(allocs))
	for _, a := range allocs {
		allocByJob[a.JobID] = a.Limit
	}
	stagesByJob := make(map[uint64][]int)
	for i := range reports {
		stagesByJob[reports[i].JobID] = append(stagesByJob[reports[i].JobID], i)
	}
	rules := make(map[uint64]wire.Rule, len(reports))
	for jobID, idxs := range stagesByJob {
		demands := make([]wire.Rates, len(idxs))
		for k, i := range idxs {
			demands[k] = reports[i].Demand
		}
		split := controlalg.SplitProportional(allocByJob[jobID], demands)
		for k, i := range idxs {
			rules[reports[i].StageID] = wire.Rule{
				StageID: reports[i].StageID,
				JobID:   jobID,
				Action:  wire.ActionSetLimit,
				Limit:   split[k],
			}
		}
	}
	return rules
}

// referencePeerRules is the pre-arena coordinated-peer compute phase:
// uniform global split per stage, scaled to the peer's own stage count,
// then proportional-to-demand within the partition.
func referencePeerRules(allocs []controlalg.JobAllocation, merged []wire.JobReport,
	reports []wire.StageReport) map[uint64]wire.Rule {
	perStageAlloc := make(map[uint64]wire.Rates, len(allocs))
	for i, a := range allocs {
		perStageAlloc[a.JobID] = controlalg.SplitUniform(a.Limit, int(merged[i].Stages))
	}
	ownStagesByJob := make(map[uint64][]int)
	for i := range reports {
		ownStagesByJob[reports[i].JobID] = append(ownStagesByJob[reports[i].JobID], i)
	}
	rules := make(map[uint64]wire.Rule, len(reports))
	for jobID, idxs := range ownStagesByJob {
		perStage := perStageAlloc[jobID]
		share := perStage.Scale(float64(len(idxs)))
		demands := make([]wire.Rates, len(idxs))
		for k, i := range idxs {
			demands[k] = reports[i].Demand
		}
		split := controlalg.SplitProportional(share, demands)
		for k, i := range idxs {
			rules[reports[i].StageID] = wire.Rule{
				StageID: reports[i].StageID,
				JobID:   jobID,
				Action:  wire.ActionSetLimit,
				Limit:   split[k],
			}
		}
	}
	return rules
}

// randomFleet builds a shuffled report set: nJobs jobs spread over nStages
// stages, random demands with occasional zero classes (exercising the
// even-split fallback), and per-job weights.
func randomFleet(rng *rand.Rand, nStages, nJobs int) ([]wire.StageReport, map[uint64]float64, wire.Rates) {
	reports := make([]wire.StageReport, nStages)
	for i := range reports {
		var d wire.Rates
		for c := range d {
			if rng.Intn(10) > 0 { // 10%: zero demand in this class
				d[c] = rng.Float64() * 500
			}
		}
		reports[i] = wire.StageReport{
			StageID: uint64(i + 1),
			JobID:   uint64(rng.Intn(nJobs) + 1),
			Demand:  d,
			Usage:   d.Scale(0.9),
		}
	}
	rng.Shuffle(len(reports), func(i, j int) { reports[i], reports[j] = reports[j], reports[i] })
	weights := make(map[uint64]float64, nJobs)
	for j := 1; j <= nJobs; j++ {
		weights[uint64(j)] = 0.5 + rng.Float64()*3.5
	}
	var capacity wire.Rates
	for c := range capacity {
		capacity[c] = 1_000 + rng.Float64()*100_000
	}
	return reports, weights, capacity
}

// testGlobal builds the minimal Global the compute kernel needs; no network.
func testGlobal(weights map[uint64]float64, capacity wire.Rates) *Global {
	return &Global{
		cfg:        GlobalConfig{Algorithm: controlalg.PSFA{}},
		members:    newMemberSet(),
		faults:     &telemetry.FaultCounters{},
		pipe:       &telemetry.PipelineStats{},
		jobWeights: weights,
		capacity:   capacity,
	}
}

// sameRule compares two rules bit-for-bit (limits via Float64bits, so -0 vs
// +0 or differently-rounded sums fail the comparison).
func sameRule(a, b wire.Rule) bool {
	if a.StageID != b.StageID || a.JobID != b.JobID || a.Action != b.Action {
		return false
	}
	for c := range a.Limit {
		if math.Float64bits(a.Limit[c]) != math.Float64bits(b.Limit[c]) {
			return false
		}
	}
	return true
}

func checkAgainst(t *testing.T, label string, table interface {
	Lookup(uint64) (wire.Rule, bool)
}, ref map[uint64]wire.Rule, reports []wire.StageReport) {
	t.Helper()
	for i := range reports {
		id := reports[i].StageID
		got, ok := table.Lookup(id)
		want, refOK := ref[id]
		if ok != refOK {
			t.Fatalf("%s: stage %d: lookup ok=%v, reference ok=%v", label, id, ok, refOK)
		}
		if ok && !sameRule(got, want) {
			t.Fatalf("%s: stage %d: rule %+v != reference %+v", label, id, got, want)
		}
	}
}

// TestComputeFlatRulesEquivalence drives the flat kernel with random fleets
// and checks three-way byte-for-byte equality: the old map-based reference,
// the serial kernel (the blocking mode's pinned path), and the sharded
// parallel kernel under forced multi-core GOMAXPROCS. Sizes straddle
// parallelComputeMin so both the inline and sharded branches run.
func TestComputeFlatRulesEquivalence(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(7))
	sizes := []int{1, 3, 17, 257, parallelComputeMin - 1, parallelComputeMin, 3*parallelComputeMin + 11}
	for trial := 0; trial < 20; trial++ {
		nStages := sizes[trial%len(sizes)]
		nJobs := 1 + rng.Intn(8)
		reports, weights, capacity := randomFleet(rng, nStages, nJobs)
		ref := referenceFlatRules(controlalg.PSFA{}, weights, capacity, reports)

		label := fmt.Sprintf("trial %d (stages=%d jobs=%d)", trial, nStages, nJobs)
		serial := testGlobal(weights, capacity)
		serial.arena.Begin()
		st := serial.computeFlatRules(reports, false)
		checkAgainst(t, label+" serial", st, ref, reports)
		if w := serial.pipe.ComputeWorkers(); w != 1 {
			t.Fatalf("%s: serial kernel recorded %d workers", label, w)
		}

		par := testGlobal(weights, capacity)
		par.arena.Begin()
		pt := par.computeFlatRules(reports, true)
		checkAgainst(t, label+" parallel", pt, ref, reports)
		if nStages >= 2*parallelComputeMin {
			if w := par.pipe.ComputeWorkers(); w < 2 {
				t.Fatalf("%s: parallel kernel used %d workers, want >= 2", label, w)
			}
		}
	}
}

// TestComputePeerRulesEquivalence does the same for the coordinated-peer
// kernel, with remote peers' aggregates merged into the global view so the
// per-partition share differs from the whole allocation.
func TestComputePeerRulesEquivalence(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(11))
	sizes := []int{1, 29, 511, 2*parallelComputeMin + 5}
	for trial := 0; trial < 12; trial++ {
		nStages := sizes[trial%len(sizes)]
		nJobs := 1 + rng.Intn(6)
		reports, weights, capacity := randomFleet(rng, nStages, nJobs)
		ownJobs := metrics.AggregateByJob(reports)

		// A remote peer reporting overlapping jobs: the merged view's stage
		// counts exceed the partition's, so shares scale non-trivially.
		remote := make([]wire.JobReport, 0, nJobs)
		for j := 1; j <= nJobs; j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			var d wire.Rates
			for c := range d {
				d[c] = rng.Float64() * 300
			}
			remote = append(remote, wire.JobReport{JobID: uint64(j), Demand: d, Usage: d, Stages: uint32(1 + rng.Intn(50))})
		}
		merged := metrics.MergeJobReports(ownJobs, remote)
		inputs := make([]controlalg.JobInput, len(merged))
		for i, j := range merged {
			inputs[i] = controlalg.JobInput{JobID: j.JobID, Weight: weights[j.JobID], Demand: j.Demand, Stages: j.Stages}
		}
		allocs := controlalg.PSFA{}.Allocate(inputs, capacity)
		ref := referencePeerRules(allocs, merged, reports)

		label := fmt.Sprintf("trial %d (stages=%d jobs=%d)", trial, nStages, nJobs)
		serial := &Peer{cfg: PeerConfig{}, pipe: &telemetry.PipelineStats{}}
		serial.arena.Begin()
		st := serial.computePeerRules(reports, ownJobs, merged, allocs, false)
		checkAgainst(t, label+" serial", st, ref, reports)

		par := &Peer{cfg: PeerConfig{}, pipe: &telemetry.PipelineStats{}}
		par.arena.Begin()
		pt := par.computePeerRules(reports, ownJobs, merged, allocs, true)
		checkAgainst(t, label+" parallel", pt, ref, reports)
	}
}

// TestComputeFlatRulesParallelStress races the sharded kernel against the
// controller surfaces that stay live during a cycle: weight pushes from
// stage registrations (noteJob), elastic capacity retunes, and monitoring
// snapshots. Run under -race this is the guard that compute sharding added
// no unsynchronized access; the equality check doubles as a determinism
// probe across repeated runs on a mutating controller.
func TestComputeFlatRulesParallelStress(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	rng := rand.New(rand.NewSource(23))
	reports, weights, capacity := randomFleet(rng, 2*parallelComputeMin+33, 4)
	g := testGlobal(weights, capacity)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			g.noteJob(uint64(1+i%4), 1+float64(i%7))
			g.SetCapacity(capacity.Scale(1 + float64(i%3)/10))
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = g.Stats()
			_ = g.JobStatuses()
		}
	}()

	for cycle := 0; cycle < 50; cycle++ {
		g.arena.Begin()
		table := g.computeFlatRules(reports, true)
		if table.Len() != len(reports) {
			t.Fatalf("cycle %d: table holds %d rules, want %d", cycle, table.Len(), len(reports))
		}
	}
	close(stop)
	wg.Wait()
}
