package experiment

import (
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
)

func sampleResults() []Result {
	mk := func(name string, topo cluster.Topology, nodes, aggs int, collect, compute, enforce time.Duration) Result {
		var s telemetry.Summary
		s.Cycles = 10
		s.Collect.Mean = collect
		s.Compute.Mean = compute
		s.Enforce.Mean = enforce
		s.Total.Mean = collect + compute + enforce
		s.Total.P50 = s.Total.Mean
		s.Total.P95 = s.Total.Mean
		return Result{
			Name: name, Topology: topo, Nodes: nodes, Aggregators: aggs,
			Latency: s,
			Global:  cluster.RoleUsage{CPUPercent: 1.5, MemBytes: 1 << 20, TxMBps: 0.5, RxMBps: 0.25},
			Elapsed: 2 * time.Second,
		}
	}
	return []Result{
		mk("flat-50", cluster.Flat, 50, 0, 5*time.Millisecond, 40*time.Microsecond, 5*time.Millisecond),
		mk("flat-2500", cluster.Flat, 2500, 0, 250*time.Millisecond, 500*time.Microsecond, 260*time.Millisecond),
	}
}

func TestResultsCSV(t *testing.T) {
	rows := ResultsCSV(sampleResults())
	lines := strings.Split(strings.TrimSpace(rows), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d, want 2", len(lines))
	}
	headerFields := strings.Split(ResultsCSVHeader, ",")
	for i, line := range lines {
		fields := strings.Split(line, ",")
		if len(fields) != len(headerFields) {
			t.Errorf("row %d has %d fields, header has %d", i, len(fields), len(headerFields))
		}
	}
	if !strings.HasPrefix(lines[0], "flat-50,flat,50,0,10,5.000,") {
		t.Errorf("row 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], ",2500,0,") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestResultsCSVEmpty(t *testing.T) {
	if got := ResultsCSV(nil); got != "" {
		t.Errorf("ResultsCSV(nil) = %q", got)
	}
}

func TestRenderLatencyChart(t *testing.T) {
	rows := latencyRows(sampleResults(), func(r Result) string { return r.Name })
	out := renderLatencyChart(rows, 40)
	if out == "" {
		t.Fatal("empty chart")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // two bars + legend
		t.Fatalf("chart lines = %d:\n%s", len(lines), out)
	}
	// The larger configuration's bar must be longer.
	small := strings.Count(lines[0], string(glyphCollect)) + strings.Count(lines[0], string(glyphEnforce))
	large := strings.Count(lines[1], string(glyphCollect)) + strings.Count(lines[1], string(glyphEnforce))
	if large <= small {
		t.Errorf("bar lengths not proportional: %d vs %d", small, large)
	}
	if large > 40+1 {
		t.Errorf("bar exceeds width: %d cells", large)
	}
	if !strings.Contains(lines[2], "collect") || !strings.Contains(lines[2], "enforce") {
		t.Errorf("legend missing: %q", lines[2])
	}
}

func TestRenderLatencyChartDegenerate(t *testing.T) {
	if got := renderLatencyChart(nil, 40); got != "" {
		t.Errorf("chart of nothing = %q", got)
	}
	zero := []chartRow{{label: "x"}}
	if got := renderLatencyChart(zero, 40); got != "" {
		t.Errorf("chart of zero durations = %q", got)
	}
}
