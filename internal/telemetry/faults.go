package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// FaultCounters tracks a controller's fault-tolerance behaviour: circuit
// breaker transitions (quarantine, readmission), half-open probes, and the
// degraded cycles that proceed on quarantined children's last-known
// reports. All methods are safe for concurrent use.
type FaultCounters struct {
	quarantines     atomic.Uint64
	readmissions    atomic.Uint64
	degradedCycles  atomic.Uint64
	probes          atomic.Uint64
	probeFailures   atomic.Uint64
	evictions       atomic.Uint64
	promotions      atomic.Uint64
	stepDowns       atomic.Uint64
	fencedCalls     atomic.Uint64
	reRegistrations atomic.Uint64
	staleDrops      atomic.Uint64
	defaultedLeases atomic.Uint64
	elections       atomic.Uint64
	votesGranted    atomic.Uint64
	votesDenied     atomic.Uint64

	// staleAge records the age of every quarantined-child report a degraded
	// cycle considered — served or dropped — so operators can see how stale
	// the control input got during a fault.
	staleAge Histogram

	// controlGap records, per leadership change, how long the cluster went
	// without a completed control cycle between the old primary's last sync
	// and the promoted standby's first cycle.
	controlGap Histogram
}

// Quarantine records a child tripping its circuit breaker.
func (f *FaultCounters) Quarantine() { f.quarantines.Add(1) }

// Readmit records a quarantined child passing a half-open probe.
func (f *FaultCounters) Readmit() { f.readmissions.Add(1) }

// DegradedCycle records a control cycle that ran with at least one child
// quarantined.
func (f *FaultCounters) DegradedCycle() { f.degradedCycles.Add(1) }

// Probe records one half-open heartbeat probe and its outcome.
func (f *FaultCounters) Probe(ok bool) {
	f.probes.Add(1)
	if !ok {
		f.probeFailures.Add(1)
	}
}

// Evict records a quarantined child being permanently removed (only when
// eviction is enabled via an EvictAfter bound).
func (f *FaultCounters) Evict() { f.evictions.Add(1) }

// UseStaleReport records that a degraded cycle consumed a quarantined
// child's last-known report of the given age.
func (f *FaultCounters) UseStaleReport(age time.Duration) { f.staleAge.Record(age) }

// DropStaleReport records that a quarantined child's cached report had aged
// past StaleAfter and was excluded from a degraded cycle.
func (f *FaultCounters) DropStaleReport(age time.Duration) {
	f.staleDrops.Add(1)
	f.staleAge.Record(age)
}

// Promotion records a standby promoting itself to primary.
func (f *FaultCounters) Promotion() { f.promotions.Add(1) }

// StepDown records a deposed primary abandoning leadership after a
// stale-epoch rejection.
func (f *FaultCounters) StepDown() { f.stepDowns.Add(1) }

// FencedCall records a call rejected (or observed rejected) because the
// sender's leadership epoch was stale.
func (f *FaultCounters) FencedCall() { f.fencedCalls.Add(1) }

// ReRegistration records a known child re-registering — an orphaned child
// re-homing to a new parent, or a reconnect after a network fault.
func (f *FaultCounters) ReRegistration() { f.reRegistrations.Add(1) }

// DefaultedLease records a StateSync that arrived without a lease duration,
// forcing the standby to fall back to its locally configured timeout. A
// nonzero count means primary and standby disagree about the failover
// window — a misconfiguration worth surfacing, not silently absorbing.
func (f *FaultCounters) DefaultedLease() { f.defaultedLeases.Add(1) }

// Election records a standby starting a quorum leadership election.
func (f *FaultCounters) Election() { f.elections.Add(1) }

// Vote records this controller answering a quorum vote request.
func (f *FaultCounters) Vote(granted bool) {
	if granted {
		f.votesGranted.Add(1)
	} else {
		f.votesDenied.Add(1)
	}
}

// DefaultedLeases returns how many StateSyncs arrived without a lease
// duration.
func (f *FaultCounters) DefaultedLeases() uint64 { return f.defaultedLeases.Load() }

// Elections returns how many leadership elections this controller started.
func (f *FaultCounters) Elections() uint64 { return f.elections.Load() }

// VotesGranted returns how many quorum votes this controller granted.
func (f *FaultCounters) VotesGranted() uint64 { return f.votesGranted.Load() }

// VotesDenied returns how many quorum votes this controller denied.
func (f *FaultCounters) VotesDenied() uint64 { return f.votesDenied.Load() }

// RecordControlGap records the control gap of one leadership change: the
// time between the deposed primary's last state sync and the promoted
// standby's first completed control cycle.
func (f *FaultCounters) RecordControlGap(gap time.Duration) { f.controlGap.Record(gap) }

// Quarantines returns the number of circuit-breaker trips.
func (f *FaultCounters) Quarantines() uint64 { return f.quarantines.Load() }

// Readmissions returns the number of children readmitted after a
// successful probe.
func (f *FaultCounters) Readmissions() uint64 { return f.readmissions.Load() }

// DegradedCycles returns the number of cycles that ran with at least one
// child quarantined.
func (f *FaultCounters) DegradedCycles() uint64 { return f.degradedCycles.Load() }

// Probes returns the number of half-open probes issued.
func (f *FaultCounters) Probes() uint64 { return f.probes.Load() }

// ProbeFailures returns the number of half-open probes that failed.
func (f *FaultCounters) ProbeFailures() uint64 { return f.probeFailures.Load() }

// Evictions returns the number of quarantined children permanently
// removed under an EvictAfter bound.
func (f *FaultCounters) Evictions() uint64 { return f.evictions.Load() }

// Promotions returns the number of standby→primary promotions.
func (f *FaultCounters) Promotions() uint64 { return f.promotions.Load() }

// StepDowns returns the number of primaries deposed by epoch fencing.
func (f *FaultCounters) StepDowns() uint64 { return f.stepDowns.Load() }

// FencedCalls returns the number of stale-epoch call rejections.
func (f *FaultCounters) FencedCalls() uint64 { return f.fencedCalls.Load() }

// ReRegistrations returns the number of duplicate registrations treated as
// reconnects or re-homings.
func (f *FaultCounters) ReRegistrations() uint64 { return f.reRegistrations.Load() }

// StaleDrops returns the number of cached reports dropped for exceeding
// StaleAfter.
func (f *FaultCounters) StaleDrops() uint64 { return f.staleDrops.Load() }

// StaleAge returns the histogram of stale-report ages considered by
// degraded cycles (both served and dropped).
func (f *FaultCounters) StaleAge() *Histogram { return &f.staleAge }

// ControlGap returns the histogram of per-failover control gaps.
func (f *FaultCounters) ControlGap() *Histogram { return &f.controlGap }

// FaultSummary is a point-in-time digest of FaultCounters.
type FaultSummary struct {
	// Quarantines counts circuit-breaker trips.
	Quarantines uint64
	// Readmissions counts successful half-open probes readmitting a child.
	Readmissions uint64
	// DegradedCycles counts cycles run with at least one child quarantined.
	DegradedCycles uint64
	// Probes and ProbeFailures count half-open heartbeat probes.
	Probes, ProbeFailures uint64
	// Evictions counts permanent removals under an EvictAfter bound.
	Evictions uint64
	// StaleReportsUsed counts quarantined-child reports consumed by
	// degraded cycles; StaleReportsDropped counts cached reports excluded
	// for exceeding StaleAfter. MeanStaleAge and MaxStaleAge digest the
	// ages of both.
	StaleReportsUsed, StaleReportsDropped uint64
	MeanStaleAge, MaxStaleAge             time.Duration
	// Promotions counts standby→primary promotions; StepDowns counts
	// primaries deposed by epoch fencing.
	Promotions, StepDowns uint64
	// FencedCalls counts stale-epoch call rejections.
	FencedCalls uint64
	// ReRegistrations counts duplicate registrations treated as reconnects
	// or re-homings.
	ReRegistrations uint64
	// DefaultedLeases counts StateSyncs that arrived without a lease
	// duration, forcing the standby onto its locally configured timeout.
	DefaultedLeases uint64
	// Elections counts quorum leadership elections this controller
	// started; VotesGranted and VotesDenied count its answers to other
	// candidates' vote requests.
	Elections, VotesGranted, VotesDenied uint64
	// MaxControlGap is the longest recorded per-failover control gap.
	MaxControlGap time.Duration
}

// Summarize digests the counters' current state.
func (f *FaultCounters) Summarize() FaultSummary {
	return FaultSummary{
		Quarantines:         f.Quarantines(),
		Readmissions:        f.Readmissions(),
		DegradedCycles:      f.DegradedCycles(),
		Probes:              f.Probes(),
		ProbeFailures:       f.ProbeFailures(),
		Evictions:           f.Evictions(),
		StaleReportsUsed:    f.staleAge.Count() - f.StaleDrops(),
		StaleReportsDropped: f.StaleDrops(),
		MeanStaleAge:        f.staleAge.Mean(),
		MaxStaleAge:         f.staleAge.Max(),
		Promotions:          f.Promotions(),
		StepDowns:           f.StepDowns(),
		FencedCalls:         f.FencedCalls(),
		ReRegistrations:     f.ReRegistrations(),
		DefaultedLeases:     f.DefaultedLeases(),
		Elections:           f.Elections(),
		VotesGranted:        f.VotesGranted(),
		VotesDenied:         f.VotesDenied(),
		MaxControlGap:       f.controlGap.Max(),
	}
}

// String renders the summary as a single human-readable line.
func (s FaultSummary) String() string {
	return fmt.Sprintf(
		"quarantines=%d readmissions=%d degraded_cycles=%d probes=%d probe_failures=%d evictions=%d stale_reports=%d stale_drops=%d mean_stale_age=%v max_stale_age=%v promotions=%d step_downs=%d fenced_calls=%d reregistrations=%d defaulted_leases=%d elections=%d votes_granted=%d votes_denied=%d max_control_gap=%v",
		s.Quarantines, s.Readmissions, s.DegradedCycles, s.Probes, s.ProbeFailures,
		s.Evictions, s.StaleReportsUsed, s.StaleReportsDropped,
		s.MeanStaleAge.Round(time.Millisecond), s.MaxStaleAge.Round(time.Millisecond),
		s.Promotions, s.StepDowns, s.FencedCalls, s.ReRegistrations,
		s.DefaultedLeases, s.Elections, s.VotesGranted, s.VotesDenied,
		s.MaxControlGap.Round(time.Millisecond))
}
