package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("rpc: client closed")

// Client is one end of a multiplexed RPC connection. It is safe for
// concurrent use: many calls may be in flight at once over the single
// underlying connection.
type Client struct {
	conn net.Conn
	cpu  *monitor.CPUMeter // optional; charged with marshal/write time

	// tracer, if non-nil, receives one span per call (issue → completion,
	// with marshal/write sub-timings) tagged with spanTag. Spans are
	// recorded on the completion paths — the read loop, abandonment, or
	// failure — never on the issue path, so pipelined fan-outs pay only the
	// timestamps.
	tracer  *trace.Tracer
	spanTag uint64

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*Call
	err     error // set once the read loop dies
	closed  bool

	late atomic.Uint64 // responses that arrived after their call was abandoned

	// Codec negotiation: maxCodec is what this client is willing to speak
	// (wire.MaxCodec unless pinned by DialOptions); codec is the negotiated
	// request codec, 1 until the server's hello reply upgrades it. Atomic
	// because senders read it while the read loop writes it.
	maxCodec int
	codec    atomic.Int32

	// reuseReplies enables the read loop's per-type reply cache (see
	// DialOptions.ReuseReplies); reuseHits counts decodes into it.
	reuseReplies bool
	reuseHits    *atomic.Uint64

	// onPush receives unsolicited server-initiated messages; see
	// DialOptions.OnPush.
	onPush func(m wire.Message)

	done chan struct{}
}

// Call is the completion handle of an asynchronous request issued with
// Client.Go. Exactly one of two consumption patterns must be used:
//
//   - call Wait, which blocks for completion, returns the outcome, and
//     recycles the handle; or
//   - receive from Done, read Reply/Err, and never touch the handle again
//     (it is garbage collected instead of recycled).
//
// After Wait returns the handle must not be used: it may already carry a
// different in-flight call.
type Call struct {
	// Done receives the Call itself once it completes. It is buffered, so
	// completion never blocks on a slow consumer.
	Done chan *Call
	// Reply is the response message. Valid only after completion.
	Reply wire.Message
	// Err is the call's failure, if any: a transport error, ErrClientClosed,
	// or a remote *wire.ErrorReply. Valid only after completion.
	Err error

	id     uint64
	client *Client // nil for calls that failed before registration

	// shared pins the broadcast frame a GoShared call wrote, released when
	// the handle is recycled — the frame's pooled bodies outlive every
	// in-flight copy of them.
	shared *SharedFrame

	// Span timings, populated by send when the client traces: issue time
	// (unix nanoseconds; doubles as the "this call is traced" marker),
	// frame-encode time, and connection-write time. Atomic because the
	// write timing lands after the frame is on the wire, so a fast
	// response's completion (on the read loop) can race it; a span that
	// loses that race reports a zero write sub-timing rather than a torn
	// value.
	issuedNs  atomic.Int64
	marshalNs atomic.Int64
	writeNs   atomic.Int64
}

// callPool recycles Call handles together with their embedded completion
// channels, so a pipelined fan-out over thousands of children does not
// allocate a handle and a channel per call per cycle.
var callPool = sync.Pool{New: func() any { return &Call{Done: make(chan *Call, 1)} }}

func getCall() *Call { return callPool.Get().(*Call) }

// putCall returns a handle to the pool. The caller must be the handle's sole
// owner and its Done channel must be empty (completion consumed, or provably
// never delivered).
func putCall(call *Call) {
	if call.shared != nil {
		call.shared.Release()
		call.shared = nil
	}
	call.Reply, call.Err, call.id, call.client = nil, nil, 0, nil
	call.issuedNs.Store(0)
	call.marshalNs.Store(0)
	call.writeNs.Store(0)
	callPool.Put(call)
}

// finish records the outcome and delivers the handle to Done. A remote
// *wire.ErrorReply lands in Err, matching the synchronous Call contract.
// Only the goroutine that removed the call from the pending map may call it.
func (call *Call) finish(m wire.Message, err error) {
	if er, ok := m.(*wire.ErrorReply); ok {
		m, err = nil, er
	}
	if c := call.client; c != nil && c.tracer != nil {
		if issued := call.issuedNs.Load(); issued != 0 {
			c.tracer.RecordClientCall(c.spanTag, call.id, issued,
				time.Now().UnixNano()-issued, call.marshalNs.Load(), call.writeNs.Load(),
				err != nil, false)
		} else {
			// Not on the sample grid: counted, never timed.
			c.tracer.CountClientCall(err != nil, false)
		}
	}
	call.Reply, call.Err = m, err
	call.Done <- call
}

// failedCall returns a pre-completed handle carrying err, for calls rejected
// before they reach a connection.
func failedCall(err error) *Call {
	call := getCall()
	call.finish(nil, err)
	return call
}

// Wait blocks until the call completes or ctx is cancelled, returns the
// outcome, and recycles the handle. On cancellation the request is abandoned
// exactly as a context-cancelled synchronous Call: it is deregistered, a
// best-effort cancel frame is sent, and a late response is dropped and
// counted. The handle must not be used after Wait returns.
func (call *Call) Wait(ctx context.Context) (wire.Message, error) {
	c := call.client
	if c == nil {
		// Pre-failed handle: completion is already buffered in Done.
		<-call.Done
		return call.release()
	}
	select {
	case <-call.Done:
		return call.release()
	case <-ctx.Done():
		if c.deregister(call) {
			// We removed the call from the pending map, so no completion
			// was — or ever will be — delivered: the handle is exclusively
			// ours and its Done channel is empty.
			if c.live() {
				// Best effort: tell the server not to bother. If the write
				// fails the connection is dying anyway.
				c.sendCancel(call.id)
			}
			if c.tracer != nil {
				if issued := call.issuedNs.Load(); issued != 0 {
					// The span closes at abandonment: the caller stopped
					// waiting, so this is where the call's cost ends for it.
					c.tracer.RecordClientCall(c.spanTag, call.id, issued,
						time.Now().UnixNano()-issued, call.marshalNs.Load(), call.writeNs.Load(),
						true, true)
				} else {
					c.tracer.CountClientCall(true, true)
				}
			}
			err := ctx.Err()
			putCall(call)
			return nil, err
		}
		// Completion raced with the cancellation and won; take the result.
		<-call.Done
		return call.release()
	}
}

// release extracts the outcome and recycles the handle. The completion must
// already have been consumed from Done.
func (call *Call) release() (wire.Message, error) {
	reply, err := call.Reply, call.Err
	putCall(call)
	return reply, err
}

// DialOptions configures Dial.
type DialOptions struct {
	// Meter, if non-nil, is charged with the connection's traffic.
	Meter *transport.Meter
	// CPU, if non-nil, is charged with local marshal and write time, the
	// client-side share of per-message processing cost.
	CPU *monitor.CPUMeter
	// Tracer, if non-nil, receives one span per call issued on this
	// connection; SpanTag identifies the remote end in those spans
	// (controllers set their child's ID).
	Tracer  *trace.Tracer
	SpanTag uint64
	// MaxCodec caps the wire codec version this connection negotiates. Zero
	// selects the newest supported version (wire.MaxCodec); 1 pins the
	// connection to the v1 codec and suppresses the hello exchange
	// entirely, emulating a pre-v2 peer.
	MaxCodec int
	// ReuseReplies opts into the zero-alloc decode path on v2 connections:
	// responses decode into one cached message per type, reusing its
	// backing arrays. The aliasing contract moves to the caller — a decoded
	// reply is valid only until the next response of the same type arrives
	// on this connection, so enable it only where replies are consumed
	// within the cycle and never retained by pointer (the controllers
	// deep-copy what they keep).
	ReuseReplies bool
	// ReuseHits, if non-nil, is incremented once per reply decoded into a
	// reused message.
	ReuseHits *atomic.Uint64
	// OnPush, if non-nil, receives unsolicited server-initiated messages
	// (kindPush frames) arriving on this connection. It runs on the read
	// loop, so it must not block and must not retain the message past
	// returning — the next push of the same shape may reuse its memory.
	// Nil clients drop push frames on the floor (the pre-push behavior).
	OnPush func(m wire.Message)
}

// Dial connects to an RPC server at addr over network and, unless the codec
// is pinned to v1, opens with a hello frame offering the v2 codec.
func Dial(ctx context.Context, network transport.Network, addr string, opts DialOptions) (*Client, error) {
	conn, err := network.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := NewClient(transport.WithMeter(conn, opts.Meter))
	c.cpu = opts.CPU
	c.tracer, c.spanTag = opts.Tracer, opts.SpanTag
	if opts.MaxCodec != 0 {
		c.maxCodec = opts.MaxCodec
	}
	c.reuseReplies = opts.ReuseReplies
	c.reuseHits = opts.ReuseHits
	c.onPush = opts.OnPush
	if c.maxCodec >= wire.CodecV2 {
		c.sendHello()
	}
	return c, nil
}

// NewClient wraps an established connection as an RPC client and starts its
// read loop. The client takes ownership of conn. Clients built directly
// (rather than via Dial) stay on the v1 codec.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		pending:  make(map[uint64]*Call),
		maxCodec: wire.MaxCodec,
		done:     make(chan struct{}),
	}
	c.codec.Store(wire.CodecV1)
	go c.readLoop()
	return c
}

// CodecVersion returns the codec the client currently encodes requests with:
// wire.CodecV1 until the server's hello reply upgrades the connection.
func (c *Client) CodecVersion() int { return int(c.codec.Load()) }

// sendHello writes the opening codec-negotiation frame. Best effort: if the
// write fails the connection is dying and calls will surface it.
func (c *Client) sendHello() {
	bp := getFrameBuf()
	*bp = appendHelloFrame((*bp)[:0], c.maxCodec)
	c.wmu.Lock()
	_, _ = c.conn.Write(*bp)
	c.wmu.Unlock()
	putFrameBuf(bp)
}

// RemoteAddr returns the server's address.
func (c *Client) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// LocalAddr returns the connection's local address. trace.AddrTag of its
// string form matches the tag the server records for this connection's
// requests, correlating client and server spans.
func (c *Client) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// Err reports why the client is unusable: the read-loop death error,
// ErrClientClosed after Close, or nil while the connection is healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if c.closed {
		return ErrClientClosed
	}
	return nil
}

// live reports whether the connection is still usable for writes.
func (c *Client) live() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err == nil && !c.closed
}

// LateResponses returns the number of responses that arrived after their
// call had already been abandoned (via context) and were dropped.
func (c *Client) LateResponses() uint64 { return c.late.Load() }

// readLoop dispatches responses to pending calls until the connection dies.
// It is the connection's single reader, so it owns the response-side float
// history (which must see every v2 response, in order, to stay in lockstep
// with the server's writer) and the per-type reply-reuse cache.
func (c *Client) readLoop() {
	var (
		buf     []byte
		dec     *wire.DecodeOpts // built lazily on the first v2 response
		pushDec *wire.DecodeOpts // built lazily on the first push frame
	)
	for {
		var (
			h    frameHeader
			body []byte
			err  error
		)
		h, body, buf, err = readFrame(c.conn, buf)
		if err != nil {
			c.fail(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		var m wire.Message
		switch h.kind {
		case kindResponse:
			m, err = wire.Decode(body)
		case kindResponseV2:
			if dec == nil {
				dec = &wire.DecodeOpts{Version: wire.CodecV2, Hist: wire.NewFloatHistory()}
				if c.reuseReplies {
					cache := make(map[wire.MsgType]wire.Message)
					dec.Reuse = func(t wire.MsgType) wire.Message {
						if !reusableReply(t) {
							return nil
						}
						if cached, ok := cache[t]; ok {
							if c.reuseHits != nil {
								c.reuseHits.Add(1)
							}
							return cached
						}
						fresh := wire.New(t)
						if fresh != nil {
							cache[t] = fresh
						}
						return fresh
					}
				}
			}
			m, err = wire.DecodeWith(body, dec)
		case kindHello:
			// The server's hello reply carries the agreed codec; from here on
			// requests are encoded with it. Absent (or malformed) the client
			// stays on v1, which every server speaks.
			if ver, ok := parseHello(body); ok && c.maxCodec >= wire.CodecV2 {
				c.codec.Store(int32(negotiate(ver, c.maxCodec)))
			}
			continue
		case kindPush:
			// Server-initiated pushes are always stateless v2 bodies — they
			// never advance the response history, so decoding them between
			// responses cannot desynchronize it. A decode failure is stream
			// corruption like any other and kills the connection.
			if pushDec == nil {
				// Pushes decode into one cached instance per type: OnPush
				// must not retain the message, so the next push may reuse it.
				pushCache := make(map[wire.MsgType]wire.Message)
				pushDec = &wire.DecodeOpts{Version: wire.CodecV2, Reuse: func(t wire.MsgType) wire.Message {
					if cached, ok := pushCache[t]; ok {
						return cached
					}
					fresh := wire.New(t)
					if fresh != nil {
						pushCache[t] = fresh
					}
					return fresh
				}}
			}
			m, err = wire.DecodeWith(body, pushDec)
			if err != nil {
				c.fail(fmt.Errorf("rpc: connection lost: %w", err))
				return
			}
			if c.onPush != nil {
				c.onPush(m)
			}
			continue
		default:
			continue // clients only issue requests; ignore anything else
		}
		if err != nil {
			// A frame we cannot decode desynchronizes the stream (and any
			// delta history); the connection is unusable.
			c.fail(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		call := c.pending[h.id]
		delete(c.pending, h.id)
		c.mu.Unlock()
		if call != nil {
			call.finish(m, nil)
		} else {
			// The call was abandoned via its context; the response raced
			// with (or beat) the cancel frame and must be dropped.
			c.late.Add(1)
		}
	}
}

// fail poisons the client: all pending and future calls return err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]*Call)
	c.mu.Unlock()
	for _, call := range pending {
		call.finish(nil, err)
	}
}

// deregister removes call from the pending map, returning true if the caller
// now exclusively owns the handle. False means a completer (read loop, fail,
// or a send-error path) got there first and a completion is in flight.
func (c *Client) deregister(call *Call) bool {
	c.mu.Lock()
	cur, ok := c.pending[call.id]
	if ok && cur == call {
		delete(c.pending, call.id)
		c.mu.Unlock()
		return true
	}
	c.mu.Unlock()
	return false
}

// Go sends req asynchronously and returns its completion handle. The request
// is written to the connection before Go returns, so issuing many calls
// back-to-back pipelines them over the single connection; responses complete
// the handles in whatever order the server produces them. Errors — including
// a dead connection — surface through the handle, never as a panic.
func (c *Client) Go(ctx context.Context, req wire.Message) *Call {
	call := getCall()
	c.mu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		if err == nil {
			err = ErrClientClosed
		}
		c.mu.Unlock()
		call.finish(nil, err)
		return call
	}
	c.nextID++
	call.id = c.nextID
	call.client = c
	c.pending[call.id] = call
	c.mu.Unlock()

	ver, kind := c.requestCodec()
	if err := c.send(frameHeader{id: call.id, kind: kind}, req, nil, ver, call); err != nil {
		if c.deregister(call) {
			call.finish(nil, err)
		}
		// Otherwise fail() already owns the call and delivers its error.
	}
	_ = ctx // the deadline is enforced at Wait; issuing is non-blocking
	return call
}

// GoShared issues a request whose body is the broadcast frame f, already
// encoded (or encoded once, lazily, per codec version): the per-call cost is
// a header plus one memcopy instead of a marshal. It is otherwise identical
// to Go. The call takes its own reference on f, released when the handle is
// recycled by Wait, so the shared body cannot be pooled out from under a
// slow connection.
func (c *Client) GoShared(ctx context.Context, f *SharedFrame) *Call {
	call := getCall()
	c.mu.Lock()
	if c.err != nil || c.closed {
		err := c.err
		if err == nil {
			err = ErrClientClosed
		}
		c.mu.Unlock()
		call.finish(nil, err)
		return call
	}
	c.nextID++
	call.id = c.nextID
	call.client = c
	f.retain()
	call.shared = f
	c.pending[call.id] = call
	c.mu.Unlock()

	ver, kind := c.requestCodec()
	if err := c.send(frameHeader{id: call.id, kind: kind}, nil, f.body(ver), ver, call); err != nil {
		if c.deregister(call) {
			call.finish(nil, err)
		}
	}
	_ = ctx // the deadline is enforced at Wait; issuing is non-blocking
	return call
}

// requestCodec returns the negotiated request codec version and the matching
// request frame kind.
func (c *Client) requestCodec() (int, byte) {
	if ver := int(c.codec.Load()); ver >= wire.CodecV2 {
		return ver, kindRequestV2
	}
	return wire.CodecV1, kindRequest
}

// Call sends req and waits for the matching response, honoring ctx. A
// remote handler failure is returned as *wire.ErrorReply.
func (c *Client) Call(ctx context.Context, req wire.Message) (wire.Message, error) {
	return c.Go(ctx, req).Wait(ctx)
}

// sendCancel writes a body-less cancel frame for id, serialized against
// other senders. Errors are ignored: cancellation is advisory.
func (c *Client) sendCancel(id uint64) {
	bp := getFrameBuf()
	*bp = appendCancelFrame((*bp)[:0], id)
	c.wmu.Lock()
	_, _ = c.conn.Write(*bp)
	c.wmu.Unlock()
	putFrameBuf(bp)
}

// send writes one frame, serialized against other senders. The frame is
// encoded into a pooled buffer outside the write lock, so concurrent senders
// marshal in parallel and only the write itself serializes; request bodies
// are therefore always stateless, whatever the codec. A non-nil body is a
// SharedFrame's pre-encoded bytes — the "marshal" then degenerates to a
// header append plus memcopy, and is timed as such so the tracer's marshal
// share reflects the win. When the client has a CPU meter or a tracer the
// marshal and write are timed once and the measurements shared: the meter
// gets charged and the call (if any) carries them for its span, so tracing
// on top of an already-metered connection adds no extra clock reads on this
// path. A call off the tracer's sample grid takes no timestamps at all
// (unless metered) — it is merely counted at completion.
func (c *Client) send(h frameHeader, m wire.Message, body []byte, ver int, call *Call) error {
	traced := c.tracer != nil && call != nil && c.tracer.Sampled(call.id)
	timed := c.cpu != nil || traced
	bp := getFrameBuf()
	var start time.Time
	if timed {
		start = time.Now()
	}
	if traced {
		call.issuedNs.Store(start.UnixNano())
	}
	if body != nil {
		*bp = appendSharedFrame((*bp)[:0], h, body)
	} else {
		*bp = appendFrameWith((*bp)[:0], h, m, ver, nil)
	}
	if timed {
		el := time.Since(start)
		if c.cpu != nil {
			c.cpu.Add(el)
		}
		if traced {
			call.marshalNs.Store(int64(el))
		}
	}
	c.wmu.Lock()
	if timed {
		start = time.Now()
	}
	_, err := c.conn.Write(*bp)
	if timed {
		el := time.Since(start)
		if c.cpu != nil {
			c.cpu.Add(el)
		}
		if traced {
			call.writeNs.Store(int64(el))
		}
	}
	c.wmu.Unlock()
	putFrameBuf(bp)
	return err
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	err := c.conn.Close()
	c.fail(ErrClientClosed)
	return err
}

// Scatter invokes fn for indexes [0, n) using at most par concurrent
// workers, in roughly increasing index order, and stops issuing new indexes
// once ctx is cancelled (indexes already handed to a worker still run). It
// is the blocking fan-out primitive of the collect and enforce phases: par
// models the bounded handler pool of the paper's controller (gRPC server
// threads), which is what makes per-child work accumulate linearly with the
// number of children.
func Scatter(ctx context.Context, n, par int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if par <= 0 {
		par = 1
	}
	if par > n {
		par = n
	}
	if par == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	done := ctx.Done()
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			i = n // stop issuing; drain workers below
		}
	}
	close(next)
	wg.Wait()
}
