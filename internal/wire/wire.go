// Package wire implements the compact binary message encoding used by the
// sdscale control plane.
//
// The paper's prototype exchanges protobuf messages over gRPC; sdscale uses
// a hand-rolled, stdlib-only codec with equivalent payload shapes: metric
// reports flowing up from data-plane stages and enforcement rules flowing
// down from controllers. Integers are varint encoded, floating point rates
// are fixed 8-byte IEEE 754, and strings/byte slices are length prefixed.
//
// The codec is deliberately allocation-conscious: encoding appends into a
// caller-supplied buffer and decoding reads from a slice without copying,
// because the control plane marshals tens of thousands of messages per
// control cycle at paper scale.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Errors returned by the decoder. They are sentinel values so transports can
// distinguish truncated frames (retry/ignore) from corrupt ones (fatal).
var (
	// ErrShortBuffer indicates the payload ended before the message did.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrOverflow indicates a varint did not terminate within 10 bytes.
	ErrOverflow = errors.New("wire: varint overflows 64 bits")
	// ErrTrailingBytes indicates a message decoded cleanly but left unread
	// payload behind, a sign of a version mismatch between peers.
	ErrTrailingBytes = errors.New("wire: trailing bytes after message")
	// ErrBadLength indicates a length prefix exceeding sanity limits.
	ErrBadLength = errors.New("wire: length prefix exceeds limit")
)

// MaxSliceLen bounds every decoded length prefix. A peer announcing a larger
// collection is treated as corrupt rather than allocated for, which keeps a
// malformed frame from OOMing a controller.
const MaxSliceLen = 1 << 24

// Encoder appends primitive values to a byte slice. The zero value is ready
// to use; Bytes returns the accumulated encoding.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder that appends to buf (which may be nil).
// Passing a buffer with spare capacity lets callers amortize allocations
// across messages.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded bytes accumulated so far. The slice aliases the
// encoder's internal buffer and is invalidated by further Put calls.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the accumulated encoding but keeps the capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint64 appends v as an unsigned varint.
func (e *Encoder) Uint64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Int64 appends v using zig-zag varint encoding.
func (e *Encoder) Int64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Uint32 appends v as an unsigned varint.
func (e *Encoder) Uint32(v uint32) { e.Uint64(uint64(v)) }

// Byte appends a single raw byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Float64 appends v as 8 little-endian bytes of its IEEE 754 representation.
// Rates are encoded fixed-width rather than varint because observed IOPS are
// rarely small integers and fixed width keeps rule payload sizes predictable.
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bytes16 appends a length-prefixed byte slice.
func (e *Encoder) Bytes16(b []byte) {
	e.Uint64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Uint64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads primitive values from a byte slice. It never copies the
// underlying data; decoded byte slices alias the input.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a Decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered while decoding, if any. All Get
// methods become no-ops returning zero values after an error, so callers may
// decode a whole message and check Err once at the end.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left to decode.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish verifies the decoder consumed the buffer exactly. It returns the
// decode error if one occurred, ErrTrailingBytes if payload remains, and nil
// otherwise.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailingBytes, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uint64 reads an unsigned varint.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v
	case n == 0:
		d.fail(ErrShortBuffer)
	default:
		d.fail(ErrOverflow)
	}
	return 0
}

// Int64 reads a zig-zag varint.
func (d *Decoder) Int64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	switch {
	case n > 0:
		d.off += n
		return v
	case n == 0:
		d.fail(ErrShortBuffer)
	default:
		d.fail(ErrOverflow)
	}
	return 0
}

// Uint32 reads an unsigned varint and reports corruption if it exceeds 32 bits.
func (d *Decoder) Uint32() uint32 {
	v := d.Uint64()
	if v > math.MaxUint32 {
		d.fail(fmt.Errorf("wire: value %d overflows uint32", v))
		return 0
	}
	return uint32(v)
}

// Byte reads a single raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail(ErrShortBuffer)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Float64 reads 8 little-endian bytes as an IEEE 754 float.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(ErrShortBuffer)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

// Length reads a length prefix and validates it against MaxSliceLen and the
// remaining payload, so callers can pre-allocate safely.
func (d *Decoder) Length() int {
	v := d.Uint64()
	if d.err != nil {
		return 0
	}
	if v > MaxSliceLen {
		d.fail(fmt.Errorf("%w: %d", ErrBadLength, v))
		return 0
	}
	return int(v)
}

// Bytes16 reads a length-prefixed byte slice. The result aliases the input
// buffer; callers that retain it across frames must copy.
func (d *Decoder) Bytes16() []byte {
	n := d.Length()
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail(ErrShortBuffer)
		return nil
	}
	b := d.buf[d.off : d.off+n : d.off+n]
	d.off += n
	return b
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes16()) }
