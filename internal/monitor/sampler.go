package monitor

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport"
)

// Sample is one point of a resource-usage time series.
type Sample struct {
	// When is the sampling instant.
	When time.Time
	// CPUPercent is CPU utilization since the previous sample (100 = one
	// busy core).
	CPUPercent float64
	// RSSBytes is the resident set size at the sampling instant.
	RSSBytes uint64
	// TxMBps and RxMBps are network rates since the previous sample.
	TxMBps, RxMBps float64
}

// Sampler periodically records process resource usage, REMORA-style: the
// paper's experiments attach one to every controller node and keep the
// series for post-hoc analysis. Samples are CPU-cheap (one /proc read and
// two atomic loads each).
type Sampler struct {
	interval time.Duration
	meter    *transport.Meter

	mu      sync.Mutex
	samples []Sample
	stopped bool

	stop chan struct{}
	done chan struct{}
}

// StartSampler begins sampling every interval. meter may be nil (network
// columns stay zero). Stop the sampler to retrieve the series.
func StartSampler(interval time.Duration, meter *transport.Meter) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{
		interval: interval,
		meter:    meter,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()

	prev := ReadProcStat()
	var prevTx, prevRx uint64
	if s.meter != nil {
		prevTx, prevRx = s.meter.Snapshot()
	}
	for {
		select {
		case <-ticker.C:
			cur := ReadProcStat()
			elapsed := cur.When.Sub(prev.When)
			sample := Sample{When: cur.When, RSSBytes: cur.RSSBytes}
			if elapsed > 0 {
				sample.CPUPercent = 100 * float64(cur.CPUTime-prev.CPUTime) / float64(elapsed)
				if sample.CPUPercent < 0 {
					sample.CPUPercent = 0
				}
				if s.meter != nil {
					tx, rx := s.meter.Snapshot()
					sample.TxMBps = transport.Rate(tx-prevTx, elapsed)
					sample.RxMBps = transport.Rate(rx-prevRx, elapsed)
					prevTx, prevRx = tx, rx
				}
			}
			prev = cur
			s.mu.Lock()
			s.samples = append(s.samples, sample)
			s.mu.Unlock()
		case <-s.stop:
			return
		}
	}
}

// Samples returns a snapshot of the series collected so far.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Stop ends sampling and returns the complete series. Safe to call more
// than once.
func (s *Sampler) Stop() []Sample {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.mu.Unlock()
	<-s.done
	return s.Samples()
}

// SamplesCSVHeader is the header row matching SamplesCSV.
const SamplesCSVHeader = "unix_ms,cpu_pct,rss_bytes,tx_mbps,rx_mbps"

// SamplesCSV renders a series as CSV rows (without header).
func SamplesCSV(samples []Sample) string {
	var b strings.Builder
	for _, s := range samples {
		fmt.Fprintf(&b, "%d,%.2f,%d,%.4f,%.4f\n",
			s.When.UnixMilli(), s.CPUPercent, s.RSSBytes, s.TxMBps, s.RxMBps)
	}
	return b.String()
}
