package controller

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/cyclemem"
	"github.com/dsrhaslab/sdscale/internal/metrics"
	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// PeerConfig configures one controller of the coordinated flat design.
type PeerConfig struct {
	// ID is the peer's cluster-unique identifier.
	ID uint64
	// Network is the transport used to listen and dial.
	Network transport.Network
	// ListenAddr is where other peers (and registering stages) reach this
	// controller (":0" auto-assigns).
	ListenAddr string
	// Algorithm is the control algorithm; every peer must run the same
	// one. Nil selects PSFA.
	Algorithm controlalg.Algorithm
	// Capacity is the full shared-PFS capacity; every peer must be
	// configured with the same value.
	Capacity wire.Rates
	// FanOut bounds stage-dispatch parallelism. Zero selects DefaultFanOut.
	FanOut int
	// FanOutMode selects the collect/enforce dispatch strategy; the zero
	// value pipelines requests over the stage connections. See
	// GlobalConfig.FanOutMode.
	FanOutMode FanOutMode
	// CallTimeout bounds each RPC. Zero selects 10 seconds.
	CallTimeout time.Duration
	// MaxCodec caps the wire codec version the peer negotiates, on its
	// server and on stage/fellow connections. Zero selects the newest
	// supported version; 1 pins the legacy v1 codec.
	MaxCodec int
	// MaxFailures is the consecutive-failure threshold that trips a
	// stage's circuit breaker into quarantine. Zero selects
	// DefaultMaxFailures.
	MaxFailures int
	// StaleAfter discards a peer's shared aggregates when they have not
	// been refreshed for this long, so a dead peer's stale demand stops
	// influencing allocations; it also bounds the age of a quarantined
	// stage's last-known report used by degraded cycles. Zero selects 10
	// seconds.
	StaleAfter time.Duration
	// ProbeInterval / MaxProbeInterval shape the half-open probe backoff
	// for quarantined stages; EvictAfter (zero = never) permanently
	// removes a stage quarantined that long. See GlobalConfig for details.
	ProbeInterval    time.Duration
	MaxProbeInterval time.Duration
	EvictAfter       time.Duration
	// Incremental makes the peer's own-partition collect work from the
	// push-maintained report cache: stages push deltas as their rates move,
	// and the collect scatter shrinks to the edge cases (never reported,
	// forced after re-registration or readmission, cache past
	// IncrementalFloor, v1 codec). Enforce sends are diffed per stage,
	// skipping unchanged rules. The peer exchange is unaffected — fellows
	// always receive the cycle's full aggregates. Requires FanOutPipelined;
	// with FanOutBlocking the full fan-out runs unchanged.
	Incremental bool
	// IncrementalFloor bounds how old a stage's cached report may grow
	// before an incremental collect refreshes it explicitly. It must exceed
	// the stage-side push floor (stage.Config.PushFloor). Zero selects
	// StaleAfter.
	IncrementalFloor time.Duration
	// Meter, if non-nil, is charged with the peer's traffic.
	Meter *transport.Meter
	// CPU, if non-nil, is charged with the peer's busy time.
	CPU *monitor.CPUMeter
	// Tracer, if non-nil, records the peer's cycle, phase, per-RPC, and
	// server spans (stage calls tagged with the stage's ID, peer-exchange
	// calls with the fellow's ID). Must be exclusive to this peer.
	Tracer *trace.Tracer
	// Logf, if non-nil, receives operational logs.
	Logf func(format string, args ...any)
}

func (c PeerConfig) withDefaults() PeerConfig {
	if c.Algorithm == nil {
		c.Algorithm = controlalg.PSFA{}
	}
	if c.ListenAddr == "" {
		c.ListenAddr = ":0"
	}
	if c.FanOut <= 0 {
		c.FanOut = DefaultFanOut
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = DefaultMaxFailures
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 10 * time.Second
	}
	return c
}

// remoteView is the latest aggregate state received from one peer.
type remoteView struct {
	cycle uint64
	jobs  []wire.JobReport
	when  time.Time
}

// Peer is one controller of the coordinated flat design the paper's §VI
// proposes as future work: several flat controllers, each owning a disjoint
// partition of the data-plane stages, that coordinate by exchanging per-job
// demand aggregates every cycle. Each peer therefore keeps global
// visibility — its allocation input covers every job in the cluster — while
// holding only its own partition's connections, escaping the per-node
// connection limit without adding a hierarchy level to the critical path.
//
// Coordination is asynchronous: a cycle pushes this peer's fresh aggregates
// to every other peer and computes with the newest aggregates it holds from
// them (at most one cycle stale), rather than blocking on a barrier. A
// failed peer's aggregates age out after StaleAfter, and the stages it
// managed keep enforcing their last rules — availability degrades softly,
// exactly the dependability behavior §VI describes.
type Peer struct {
	cfg      PeerConfig
	breaker  breakerConfig
	server   *rpc.Server
	members  *memberSet // own stages
	recorder *telemetry.CycleRecorder
	faults   *telemetry.FaultCounters
	pipe     *telemetry.PipelineStats

	// scratch backs the per-cycle membership split and collect set; it is
	// owned by the goroutine running RunCycle (cycles are serial).
	scratch cycleScratch
	// arena and cyc back the cycle's transient buffers; like scratch they
	// are owned by the serial RunCycle goroutine.
	arena cyclemem.Arena
	cyc   cycleMem

	// statsScr backs Stats() snapshots (guarded by its own mutex).
	statsScr statsScratch

	mu         sync.Mutex
	peers      map[uint64]*child // fellow controllers
	remote     map[uint64]remoteView
	jobWeights map[uint64]float64
	cycle      uint64
	callErrors uint64
}

// StartPeer launches a coordinated-flat peer controller.
func StartPeer(cfg PeerConfig) (*Peer, error) {
	cfg = cfg.withDefaults()
	p := &Peer{
		cfg: cfg,
		breaker: breakerConfig{
			MaxFailures:      cfg.MaxFailures,
			ProbeInterval:    cfg.ProbeInterval,
			MaxProbeInterval: cfg.MaxProbeInterval,
			StaleAfter:       cfg.StaleAfter,
			EvictAfter:       cfg.EvictAfter,
		}.withDefaults(),
		members:    newMemberSet(),
		recorder:   telemetry.NewCycleRecorder(),
		faults:     &telemetry.FaultCounters{},
		pipe:       &telemetry.PipelineStats{},
		peers:      make(map[uint64]*child),
		remote:     make(map[uint64]remoteView),
		jobWeights: make(map[uint64]float64),
	}
	srv, err := rpc.Serve(cfg.Network, cfg.ListenAddr, rpc.HandlerFunc(p.serve), rpc.ServerOptions{
		Meter:    cfg.Meter,
		Logf:     cfg.Logf,
		Tracer:   cfg.Tracer,
		MaxCodec: cfg.MaxCodec,
	})
	if err != nil {
		return nil, fmt.Errorf("peer %d: %w", cfg.ID, err)
	}
	p.server = srv
	return p, nil
}

// ID returns the peer's identifier.
func (p *Peer) ID() uint64 { return p.cfg.ID }

// Addr returns the peer's listen address.
func (p *Peer) Addr() string { return p.server.Addr().String() }

// Recorder returns the peer's cycle-latency recorder.
func (p *Peer) Recorder() *telemetry.CycleRecorder { return p.recorder }

// NumStages returns the number of stages this peer manages.
func (p *Peer) NumStages() int { return p.members.size() }

// NumPeers returns the number of fellow controllers this peer exchanges
// aggregates with.
func (p *Peer) NumPeers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.peers)
}

// Faults returns the peer's fault-tolerance counters.
func (p *Peer) Faults() *telemetry.FaultCounters { return p.faults }

// NumQuarantined returns how many of this peer's stages currently sit
// behind a tripped circuit breaker.
//
// Deprecated: use Stats().Quarantined.
func (p *Peer) NumQuarantined() int {
	_, quarantined := splitQuarantined(p.members.snapshot())
	return len(quarantined)
}

func (p *Peer) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// AddStage connects the peer to a stage in its partition.
func (p *Peer) AddStage(ctx context.Context, info stage.Info) error {
	cli, err := rpc.DialReconnecting(ctx, p.cfg.Network, info.Addr,
		rpc.DialOptions{Meter: p.cfg.Meter, CPU: p.cfg.CPU, Tracer: p.cfg.Tracer, SpanTag: info.ID,
			MaxCodec: p.cfg.MaxCodec, ReuseReplies: true, ReuseHits: p.pipe.ReuseCounter(),
			OnPush: p.onPush},
		p.breaker.reconnectPolicy())
	if err != nil {
		return fmt.Errorf("peer %d: dial stage %d: %w", p.cfg.ID, info.ID, err)
	}
	c := &child{info: info, role: wire.RoleStage, cli: cli}
	if !p.members.add(c) {
		cli.Close()
		return fmt.Errorf("peer %d: duplicate stage ID %d", p.cfg.ID, info.ID)
	}
	w := info.Weight
	if w <= 0 {
		w = 1
	}
	p.mu.Lock()
	p.jobWeights[info.JobID] = w
	p.mu.Unlock()
	return nil
}

// AddPeer connects this controller to a fellow peer for aggregate exchange.
func (p *Peer) AddPeer(ctx context.Context, id uint64, addr string) error {
	if id == p.cfg.ID {
		return fmt.Errorf("peer %d: cannot peer with itself", id)
	}
	cli, err := rpc.DialReconnecting(ctx, p.cfg.Network, addr,
		rpc.DialOptions{Meter: p.cfg.Meter, CPU: p.cfg.CPU, Tracer: p.cfg.Tracer, SpanTag: id,
			MaxCodec: p.cfg.MaxCodec, ReuseReplies: true, ReuseHits: p.pipe.ReuseCounter()},
		p.breaker.reconnectPolicy())
	if err != nil {
		return fmt.Errorf("peer %d: dial peer %d at %s: %w", p.cfg.ID, id, addr, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.peers[id]; dup {
		cli.Close()
		return fmt.Errorf("peer %d: duplicate peer ID %d", p.cfg.ID, id)
	}
	p.peers[id] = &child{info: stage.Info{ID: id, Addr: addr}, role: wire.RoleGlobal, cli: cli}
	return nil
}

// serve handles stage registrations and fellow peers' exchanges.
func (p *Peer) serve(peer *rpc.Peer, req wire.Message) (wire.Message, error) {
	switch m := req.(type) {
	case *wire.PeerExchange:
		p.mu.Lock()
		prev := p.remote[m.PeerID]
		if m.Cycle >= prev.cycle {
			p.remote[m.PeerID] = remoteView{cycle: m.Cycle, jobs: m.Jobs, when: time.Now()}
		}
		_, known := p.peers[m.PeerID]
		p.mu.Unlock()
		if !known && m.Addr != "" && m.PeerID != p.cfg.ID {
			// Auto-mesh: a one-sidedly configured peer announced itself;
			// dial back so our aggregates reach it too.
			ctx, cancel := context.WithTimeout(context.Background(), p.cfg.CallTimeout)
			if err := p.AddPeer(ctx, m.PeerID, m.Addr); err != nil {
				p.logf("peer %d: auto-mesh with %d at %s: %v", p.cfg.ID, m.PeerID, m.Addr, err)
			} else {
				p.logf("peer %d: auto-meshed with peer %d at %s", p.cfg.ID, m.PeerID, m.Addr)
			}
			cancel()
		}
		return &wire.PeerExchangeAck{Cycle: m.Cycle, PeerID: p.cfg.ID}, nil
	case *wire.Register:
		if m.Role != wire.RoleStage {
			return nil, &wire.ErrorReply{Code: wire.CodeBadMessage, Text: "only stages may register with a peer controller"}
		}
		ctx, cancel := context.WithTimeout(context.Background(), p.cfg.CallTimeout)
		defer cancel()
		if c := p.members.get(m.ID); c != nil {
			// Duplicate registration from a known stage is a reconnect:
			// replace the stale connection, keep breaker state.
			cli, err := rpc.DialReconnecting(ctx, p.cfg.Network, m.Addr,
				rpc.DialOptions{Meter: p.cfg.Meter, CPU: p.cfg.CPU, Tracer: p.cfg.Tracer, SpanTag: m.ID,
					MaxCodec: p.cfg.MaxCodec, ReuseReplies: true, ReuseHits: p.pipe.ReuseCounter(),
					OnPush: p.onPush},
				p.breaker.reconnectPolicy())
			if err != nil {
				return nil, fmt.Errorf("peer %d: redial stage %d at %s: %w", p.cfg.ID, m.ID, m.Addr, err)
			}
			c.replaceClient(cli)
			p.faults.ReRegistration()
			p.logf("peer %d: stage %d re-registered from %s", p.cfg.ID, m.ID, m.Addr)
			return &wire.RegisterAck{ID: m.ID}, nil
		}
		if err := p.AddStage(ctx, stage.Info{ID: m.ID, JobID: m.JobID, Weight: m.Weight, Addr: m.Addr}); err != nil {
			return nil, err
		}
		return &wire.RegisterAck{ID: m.ID}, nil
	case *wire.StageList:
		children := p.members.snapshot()
		reply := &wire.StageListReply{Stages: make([]wire.StageEntry, len(children))}
		for i, c := range children {
			reply.Stages[i] = wire.StageEntry{ID: c.info.ID, JobID: c.info.JobID, Weight: c.info.Weight, Addr: c.info.Addr}
		}
		return reply, nil
	case *wire.Heartbeat:
		return &wire.HeartbeatAck{EchoUnixMicros: m.SentUnixMicros}, nil
	}
	return nil, fmt.Errorf("peer %d: unexpected %s", p.cfg.ID, req.Type())
}

// callChild performs one stage RPC with circuit-breaker accounting.
// Caller-context cancellation is not counted against the stage.
func (p *Peer) callChild(ctx context.Context, c *child, req wire.Message) (wire.Message, error) {
	cctx, cancel := context.WithTimeout(ctx, p.cfg.CallTimeout)
	resp, err := c.client().Call(cctx, req)
	cancel()
	p.accountCall(ctx, c, err)
	return resp, err
}

// accountCall applies a call outcome to the error counter and circuit
// breaker; errors the caller's own ctx caused are excluded. Shared between
// callChild and the pipelined fan-out path.
func (p *Peer) accountCall(ctx context.Context, c *child, err error) {
	if err != nil && ctx.Err() == nil {
		p.mu.Lock()
		p.callErrors++
		p.mu.Unlock()
	}
	recordCall(ctx, c, err, p.breaker, p.faults, p.logf, fmt.Sprintf("peer %d", p.cfg.ID))
}

// fanOut dispatches one phase over the peer's own stages using the
// configured FanOutMode, charging every outcome to the breaker and error
// accounting.
func (p *Peer) fanOut(ctx context.Context, gauge *telemetry.Gauge, children []*child,
	reqFor func(i int) wire.Message,
	onReply func(i int, resp wire.Message)) {
	fanOutCalls(ctx, fanOutOpts{
		mode:    p.cfg.FanOutMode,
		par:     p.cfg.FanOut,
		timeout: p.cfg.CallTimeout,
		gauge:   gauge,
		arena:   &p.arena,
		calls:   &p.cyc.calls,
	}, children, reqFor, func(i int, resp wire.Message, err error) {
		p.accountCall(ctx, children[i], err)
		if err == nil && onReply != nil {
			onReply(i, resp)
		}
	})
}

// fanOutBroadcast dispatches one marshal-once broadcast phase over the
// peer's own stages, charging outcomes to the breaker and error accounting
// and the frame's send/encode counts to the pipeline stats.
func (p *Peer) fanOutBroadcast(ctx context.Context, gauge *telemetry.Gauge, children []*child,
	f *rpc.SharedFrame, onReply func(i int, resp wire.Message)) {
	fanOutShared(ctx, fanOutOpts{
		mode:    p.cfg.FanOutMode,
		par:     p.cfg.FanOut,
		timeout: p.cfg.CallTimeout,
		gauge:   gauge,
		arena:   &p.arena,
		calls:   &p.cyc.calls,
	}, children, f, nil, func(i int, resp wire.Message, err error) {
		p.accountCall(ctx, children[i], err)
		if err == nil && onReply != nil {
			onReply(i, resp)
		}
	})
	p.pipe.AddSharedSends(uint64(len(children)))
	p.pipe.AddSharedEncodes(f.Encodes())
}

// onPush folds a stage's unsolicited ReportDelta into its dirty-set entry.
// It runs on the connection's read loop, so it stays cheap: one membership
// lookup plus a capacity-reusing cache write, no blocking calls.
func (p *Peer) onPush(m wire.Message) {
	rd, ok := m.(*wire.ReportDelta)
	if !ok {
		return
	}
	if c := p.members.get(rd.Report.StageID); c != nil {
		c.notePush(rd, time.Now())
	}
}

// incrementalActive reports whether the incremental collect/enforce paths
// apply: configured on, and the fan-out pipelined (see
// Global.incrementalActive for why blocking mode keeps the full cycle).
func (p *Peer) incrementalActive() bool {
	return p.cfg.Incremental && p.cfg.FanOutMode == FanOutPipelined
}

// prepareCycle probes quarantined stages (readmitting responders), applies
// EvictAfter, and returns the active/quarantined split. The returned slices
// are the peer's cycle scratch, valid until the next prepareCycle.
func (p *Peer) prepareCycle(ctx context.Context) (active, quarantined []*child) {
	_, q := p.scratch.split(p.members)
	if len(q) > 0 {
		who := fmt.Sprintf("peer %d", p.cfg.ID)
		evictable := sweepProbes(ctx, q, p.breaker, p.cfg.FanOut, p.cfg.CallTimeout, p.faults, p.logf, who)
		for _, c := range evictable {
			if p.members.remove(c.info.ID) != nil {
				c.client().Close()
				p.faults.Evict()
				p.logf("%s: evicted stage %d after %v in quarantine", who, c.info.ID, p.breaker.EvictAfter)
			}
		}
	}
	return p.scratch.split(p.members)
}

// RunCycle executes one coordinated control cycle: collect own partition,
// exchange aggregates with peers, compute over the merged global view,
// enforce own partition.
func (p *Peer) RunCycle(ctx context.Context) (telemetry.Breakdown, error) {
	mode8 := uint8(p.cfg.FanOutMode)
	p.mu.Lock()
	probeCycle := p.cycle + 1
	p.mu.Unlock()
	// Peers have no leadership epochs; their spans carry epoch 0.
	p.cfg.Tracer.SetContext(probeCycle, 0, mode8, trace.PhaseProbe)
	children, quarantined := p.prepareCycle(ctx)
	if len(children)+len(quarantined) == 0 {
		return telemetry.Breakdown{}, ErrNoChildren
	}
	p.mu.Lock()
	p.cycle++
	cycle := p.cycle
	p.mu.Unlock()
	if len(quarantined) > 0 {
		p.faults.DegradedCycle()
	}

	start := time.Now()
	allocsBefore := telemetry.AllocsNow()
	p.arena.Begin()
	var b telemetry.Breakdown

	// Phase 1: collect own active stages, aggregate, and exchange with
	// peers. Quarantined stages contribute their last-known reports
	// (degraded mode) but receive no traffic.
	p.cfg.Tracer.SetContext(cycle, 0, mode8, trace.PhaseCollect)
	collectStart := time.Now()
	n := len(children)
	incremental := p.incrementalActive()
	targets := children
	if incremental {
		// Claim the dirty set and shrink the collect scatter to the edge
		// cases; everyone else's cached push is already current.
		now := time.Now()
		floor := p.cfg.IncrementalFloor
		if floor <= 0 {
			floor = p.breaker.StaleAfter
		}
		dirty := 0
		set := p.scratch.collect[:0]
		for _, c := range children {
			wasDirty, collect := c.incrementalState(now, floor)
			if !collect && c.client().CodecVersion() < wire.CodecV2 {
				// A v1 stage cannot push deltas: keep its per-cycle collect.
				collect = true
			}
			if wasDirty {
				dirty++
			}
			if collect {
				set = append(set, c)
			}
		}
		p.scratch.collect = set
		targets = set
		p.pipe.RecordDirty(dirty)
		p.pipe.AddSuppressedCollects(uint64(n - len(set)))
	}
	// Index-disjoint reply slots keep blocking-mode harvest writes race-free
	// and the compute phase's summation order deterministic; the broadcast
	// request is marshaled once into a shared frame.
	replies := p.cyc.replies.Take(&p.arena, len(targets))
	req := rpc.NewSharedFrame(&wire.Collect{Cycle: cycle, WindowMicros: 1_000_000})
	p.fanOutBroadcast(ctx, &p.pipe.CollectInFlight, targets,
		req,
		func(i int, resp wire.Message) {
			if r, ok := resp.(*wire.CollectReply); ok {
				replies[i] = r
				targets[i].noteReport(r, time.Now())
			}
		})

	var untrack func()
	if p.cfg.CPU != nil {
		untrack = p.cfg.CPU.Track()
	}
	reports := p.cyc.reports.Take(&p.arena, n)[:0]
	if incremental {
		// The aggregates read the whole cache: pushed deltas, the collects
		// just made, and untouched-but-fresh reports all look alike.
		now := time.Now()
		for _, c := range children {
			reports, _, _ = c.appendCachedReports(reports, now, p.breaker.StaleAfter)
		}
	} else {
		for _, r := range replies {
			if r != nil {
				reports = append(reports, r.Reports...)
			}
		}
	}
	reports = appendStaleReports(reports, quarantined, p.breaker.StaleAfter, p.faults)
	ownJobs := metrics.AggregateByJob(reports)
	if untrack != nil {
		untrack()
	}

	// Push fresh aggregates to every peer; their cycles will pick them up.
	p.mu.Lock()
	fellows := make([]*child, 0, len(p.peers))
	for _, c := range p.peers {
		fellows = append(fellows, c)
	}
	p.mu.Unlock()
	// Every fellow receives the same aggregates, so the exchange is
	// marshaled once into a shared frame. It stays fire-and-forget: a failed
	// push just leaves the fellow computing on aggregates one cycle staler
	// (NoteError still kicks the reconnect loop for the dead fellow).
	exchange := rpc.NewSharedFrame(&wire.PeerExchange{Cycle: cycle, PeerID: p.cfg.ID, Addr: p.Addr(), Jobs: ownJobs})
	rpc.Scatter(ctx, len(fellows), p.cfg.FanOut, func(i int) {
		cctx, cancel := context.WithTimeout(ctx, p.cfg.CallTimeout)
		if _, err := fellows[i].client().GoShared(cctx, exchange).Wait(cctx); err != nil {
			fellows[i].client().NoteError(ctx, err)
		}
		cancel()
	})
	exchange.Release()
	p.pipe.AddSharedSends(uint64(len(fellows)))
	p.pipe.AddSharedEncodes(exchange.Encodes())
	b.Collect = time.Since(collectStart)
	p.cfg.Tracer.RecordPhase(trace.PhaseCollect, cycle, 0, mode8, collectStart, b.Collect)
	if ctx.Err() != nil {
		return b, ctx.Err()
	}

	// Phase 2: compute over the merged global view.
	p.cfg.Tracer.SetContext(cycle, 0, mode8, trace.PhaseCompute)
	computeStart := time.Now()
	if p.cfg.CPU != nil {
		untrack = p.cfg.CPU.Track()
	}
	groups := [][]wire.JobReport{ownJobs}
	now := time.Now()
	p.mu.Lock()
	for id, v := range p.remote {
		if now.Sub(v.when) > p.cfg.StaleAfter {
			delete(p.remote, id) // dead peer: let its demand age out
			continue
		}
		groups = append(groups, v.jobs)
	}
	merged := metrics.MergeJobReports(groups...)
	inputs := p.cyc.inputs.Take(&p.arena, len(merged))
	for i, j := range merged {
		w := p.jobWeights[j.JobID]
		inputs[i] = controlalg.JobInput{JobID: j.JobID, Weight: w, Demand: j.Demand, Stages: j.Stages}
	}
	p.mu.Unlock()
	allocs := p.cfg.Algorithm.Allocate(inputs, p.cfg.Capacity)

	// Each job's global allocation is split uniformly across its global
	// stage population; this peer enforces the slice covering its own
	// stages, weighted by their observed demand (see computePeerRules).
	rules := p.computePeerRules(reports, ownJobs, merged, allocs, p.cfg.FanOutMode == FanOutPipelined)
	if untrack != nil {
		untrack()
	}
	b.Compute = time.Since(computeStart)
	p.cfg.Tracer.RecordPhase(trace.PhaseCompute, cycle, 0, mode8, computeStart, b.Compute)

	// Phase 3: enforce own partition.
	p.cfg.Tracer.SetContext(cycle, 0, mode8, trace.PhaseEnforce)
	enforceStart := time.Now()
	// Request buffers are preallocated per child (index-disjoint, so safe
	// from blocking mode's concurrent reqFor) instead of allocated per call.
	enfBuf := p.cyc.enfBuf.Take(&p.arena, n)
	ruleBuf := p.cyc.ruleBuf.Take(&p.arena, n)
	var suppressed uint64 // reqFor runs sequentially in pipelined mode
	p.fanOut(ctx, &p.pipe.EnforceInFlight, children,
		func(i int) wire.Message {
			rule, ok := rules.Lookup(children[i].info.ID)
			if !ok {
				return nil
			}
			batch := ruleBuf[i : i+1 : i+1]
			batch[0] = rule
			if incremental {
				// Incremental mode implies delta enforcement: unchanged
				// rules are not re-sent.
				if batch = children[i].filterChanged(batch); len(batch) == 0 {
					suppressed++
					return nil
				}
			}
			enfBuf[i] = wire.Enforce{Cycle: cycle, Rules: batch}
			return &enfBuf[i]
		}, nil)
	if incremental {
		p.pipe.AddSuppressedEnforces(suppressed)
	}
	b.Enforce = time.Since(enforceStart)
	p.cfg.Tracer.RecordPhase(trace.PhaseEnforce, cycle, 0, mode8, enforceStart, b.Enforce)

	b.Total = time.Since(start)
	p.cfg.Tracer.RecordCycle(cycle, 0, mode8, start, b.Total, ctx.Err() != nil)
	p.pipe.RecordCycleAllocs(telemetry.AllocsNow() - allocsBefore)
	p.pipe.RecordArena(arenaSnapshot(p.arena.Stats()))
	p.recorder.Record(b)
	return b, ctx.Err()
}

// Run executes control cycles until ctx ends, like Global.Run.
func (p *Peer) Run(ctx context.Context, interval time.Duration) error {
	for {
		cycleStart := time.Now()
		if _, err := p.RunCycle(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err == ErrNoChildren {
				select {
				case <-time.After(10 * time.Millisecond):
					continue
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			return err
		}
		if interval > 0 {
			if sleep := interval - time.Since(cycleStart); sleep > 0 {
				select {
				case <-time.After(sleep):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// MemoryFootprint implements monitor.MemoryReporter.
func (p *Peer) MemoryFootprint() uint64 {
	const perChild = 24 << 10 // see Global.MemoryFootprint
	var total uint64
	for _, c := range p.members.snapshot() {
		total += perChild + uint64(len(c.info.Addr))
	}
	p.mu.Lock()
	total += uint64(len(p.peers)) * perChild
	for _, v := range p.remote {
		total += uint64(len(v.jobs)) * 96
	}
	p.mu.Unlock()
	return total
}

// Close severs all connections and stops the server.
func (p *Peer) Close() error {
	p.members.closeAll()
	p.mu.Lock()
	for _, c := range p.peers {
		c.client().Close()
	}
	p.peers = make(map[uint64]*child)
	p.mu.Unlock()
	return p.server.Close()
}
