package controller

import (
	"context"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// TestPushAfterRemoveChildDropped pins the handoff's push semantics: a
// ReportDelta from a child this controller no longer owns — the push a
// moved stage had in flight when the source shard forgot it — must be
// dropped, not folded into the dirty set. The moved child's deltas belong
// to its destination shard now; resurrecting state for it here would let
// the fenced source act on a child it cannot legally contact.
func TestPushAfterRemoveChildDropped(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{1000, 100})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:         wire.Rates{2000, 200},
		DeltaEnforcement: true,
		Incremental:      true,
		IncrementalFloor: time.Hour,
	})
	ctx := context.Background()

	// Prime, then absorb the membership change of the handoff's
	// RemoveChild, then confirm the controller is quiesced again.
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if !g.RemoveChild(4) {
		t.Fatal("RemoveChild(4) found nothing")
	}
	for i := 0; i < 2; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// The moved-away child's straggling push: dropped on the floor.
	suppressed := g.Stats().Pipeline.SuppressedCollects
	push(g, 4, 2, 9, wire.Rates{9999, 999})
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if got := g.Stats().Pipeline.DirtyChildren; got != 0 {
		t.Errorf("DirtyChildren = %d after a removed child's push, want 0", got)
	}
	if got := g.Stats().Pipeline.SuppressedCollects - suppressed; got != 3 {
		t.Errorf("suppressed collects = %d, want 3 (fully quiesced cycle over the remaining children)", got)
	}
	if g.NumChildren() != 3 {
		t.Errorf("NumChildren = %d, want 3 — the push must not re-add the child", g.NumChildren())
	}

	// Control: a live child's push still re-dirties exactly one entry.
	push(g, 1, 1, 9, wire.Rates{4000, 400})
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if got := g.Stats().Pipeline.DirtyChildren; got != 1 {
		t.Errorf("DirtyChildren = %d after a live child's push, want 1", got)
	}
}
