// Command sdsbench regenerates the paper's tables and figures.
//
// Each experiment builds an in-process simulated deployment (virtual
// data-plane stages over a simulated network with per-host connection
// limits and processing capacities), runs the control plane's stress
// workload, and prints the corresponding table or figure series alongside
// the paper's reference values, followed by a shape verdict.
//
// Usage:
//
//	sdsbench -exp all                 # everything, paper scale
//	sdsbench -exp fig4                # one experiment
//	sdsbench -exp fig5 -scale 0.1     # reduced scale (1,000 nodes)
//	sdsbench -exp fig4 -mincycles 20  # tighter statistics
//
// Experiments: table1, fig4, table2, fig5, table3, fig6, table4,
// connlimit, coordflat, chaos, failover, pipeline, tracebreak, delta,
// shard, elastic, all. Figure/table pairs that share a run (fig4+table2, fig5+table3,
// fig6+table4) are measured once when both are requested. The chaos,
// failover, pipeline, and tracebreak experiments are not from the paper:
// chaos fault-injects the flat deployment (partition flaps on 10% of its
// nodes) and checks the control plane degrades and recovers instead of
// stalling; failover crashes the primary controller mid-run and checks a
// warm standby promotes, re-homes every stage, and fences the old primary;
// pipeline compares the prototype's bounded blocking fan-out against this
// implementation's pipelined async dispatch on otherwise identical flat
// deployments; tracebreak decomposes cycle time (marshal vs. dispatch vs.
// wait, controller and stage side) from per-call spans at 1k/5k/10k nodes
// in both fan-out modes — add -debug 127.0.0.1:8080 to also serve /metrics,
// /debug/pprof and /debug/trace while it runs; delta checks the
// event-driven incremental control mode enforces the same rules as the
// full collect sweep under bursty demand while suppressing the collect
// fan-out once demand quiesces; shard partitions the fleet across four
// concurrently active shard leaders behind the routing tier, crashes one
// leader mid-run, and checks the surviving shards' cycle latency is
// undisturbed while the dead shard recovers through its own quorum
// election with every child and rule intact; elastic doubles a
// hierarchical deployment's fleet mid-run and checks the SLO-driven
// elasticity loop grows the aggregator tier until cycle p90 recovers
// under the objective, then shrinks it back once the load subsides, with
// zero rule loss across every re-homing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"time"

	"github.com/dsrhaslab/sdscale/internal/experiment"
)

func main() {
	// Large simulated clusters churn allocations every cycle; a relaxed GC
	// target keeps collector pauses from inflating latency variance (the
	// paper reports <6% relative stddev).
	debug.SetGCPercent(400)
	var (
		exp         = flag.String("exp", "all", "experiment: table1, fig4, table2, fig5, table3, fig6, table4, connlimit, coordflat, chaos, failover, pipeline, tracebreak, delta, shard, elastic, all")
		scale       = flag.Float64("scale", 1.0, "node-count scale factor in (0, 1]")
		minCycles   = flag.Int("mincycles", 5, "minimum measured control cycles per configuration")
		minDuration = flag.Duration("minduration", 2*time.Second, "minimum measurement window per configuration")
		maxDuration = flag.Duration("maxduration", 2*time.Minute, "maximum measurement window per configuration")
		jobs        = flag.Int("jobs", 16, "number of jobs stages are spread over")
		warmup      = flag.Int("warmup", 2, "warmup cycles discarded before measuring")
		csvPath     = flag.String("csv", "", "also write machine-readable results to this CSV file")
		debugAddr   = flag.String("debug", "", "serve /metrics, /debug/pprof and /debug/trace on this loopback address during tracebreak (e.g. 127.0.0.1:8080)")
		codec       = flag.String("codec", "", "pin the wire codec: v1 for the legacy codec (A/B baseline), empty for newest")
	)
	flag.Parse()

	maxCodec := 0
	switch strings.ToLower(*codec) {
	case "", "v2":
	case "v1":
		maxCodec = 1
	default:
		fmt.Fprintf(os.Stderr, "sdsbench: unknown -codec %q (want v1 or v2)\n", *codec)
		os.Exit(1)
	}

	opts := experiment.Options{
		Scale:       *scale,
		Warmup:      *warmup,
		MinCycles:   *minCycles,
		MinDuration: *minDuration,
		MaxDuration: *maxDuration,
		Jobs:        *jobs,
		Out:         os.Stdout,
		Debug:       *debugAddr,
		MaxCodec:    maxCodec,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	all, err := run(ctx, opts, strings.ToLower(*exp))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsbench:", err)
		os.Exit(1)
	}
	if *csvPath != "" && len(all) > 0 {
		data := experiment.ResultsCSVHeader + "\n" + experiment.ResultsCSV(all)
		if err := os.WriteFile(*csvPath, []byte(data), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sdsbench: write csv:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d result rows to %s\n", len(all), *csvPath)
	}
}

// run executes the selected experiments, sharing runs between figure/table
// pairs, and returns every measured result for optional CSV export.
func run(ctx context.Context, opts experiment.Options, exp string) ([]experiment.Result, error) {
	var all []experiment.Result
	want := func(names ...string) bool {
		if exp == "all" {
			return true
		}
		for _, n := range names {
			if exp == n {
				return true
			}
		}
		return false
	}
	known := map[string]bool{
		"all": true, "table1": true, "fig4": true, "table2": true,
		"fig5": true, "table3": true, "fig6": true, "table4": true,
		"connlimit": true, "coordflat": true, "chaos": true, "failover": true,
		"pipeline": true, "tracebreak": true, "delta": true, "shard": true,
		"elastic": true,
	}
	if !known[exp] {
		return nil, fmt.Errorf("unknown experiment %q", exp)
	}

	out := opts.Out
	if out == nil {
		out = os.Stdout
	}
	verdict := func(name string, err error) {
		if err != nil {
			fmt.Fprintf(out, "SHAPE CHECK %s: FAILED: %v\n\n", name, err)
		} else {
			fmt.Fprintf(out, "SHAPE CHECK %s: ok\n\n", name)
		}
	}

	if want("table1") {
		experiment.PrintTable1(opts)
	}
	if want("fig4", "table2") {
		results, err := experiment.Fig4(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, results...)
		if want("fig4") {
			experiment.PrintFig4(opts, results)
			verdict("fig4", experiment.CheckFig4Shape(results))
		}
		if want("table2") {
			experiment.PrintTable2(opts, results)
			verdict("table2", experiment.CheckTable2Shape(results))
		}
	}
	if want("fig5", "table3") {
		results, err := experiment.Fig5(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, results...)
		if want("fig5") {
			experiment.PrintFig5(opts, results)
			verdict("fig5", experiment.CheckFig5Shape(results))
		}
		if want("table3") {
			experiment.PrintTable3(opts, results)
			verdict("table3", experiment.CheckTable3Shape(results))
		}
	}
	if want("fig6", "table4") {
		results, err := experiment.Fig6(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, results...)
		if want("fig6") {
			experiment.PrintFig6(opts, results)
			verdict("fig6", experiment.CheckFig6Shape(results))
		}
		if want("table4") {
			experiment.PrintTable4(opts, results)
			verdict("table4", experiment.CheckTable4Shape(results))
		}
	}
	if want("connlimit") {
		r, err := experiment.ConnLimit(ctx, opts)
		if err != nil {
			return all, err
		}
		experiment.PrintConnLimit(opts, r)
	}
	if want("coordflat") {
		results, err := experiment.FutureCoordinated(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, results...)
		experiment.PrintFutureCoordinated(opts, results)
		verdict("coordflat", experiment.CheckFutureCoordinatedShape(results))
	}
	if want("chaos") {
		r, err := experiment.Chaos(ctx, opts)
		if err != nil {
			return all, err
		}
		experiment.PrintChaos(opts, r)
		verdict("chaos", experiment.CheckChaos(r))
	}
	if want("failover") {
		r, err := experiment.Failover(ctx, opts)
		if err != nil {
			return all, err
		}
		experiment.PrintFailover(opts, r)
		verdict("failover", experiment.CheckFailover(r))
	}
	if want("pipeline") {
		r, err := experiment.Pipeline(ctx, opts)
		if err != nil {
			return all, err
		}
		all = append(all, r.Blocking, r.Pipelined)
		experiment.PrintPipeline(opts, r)
		verdict("pipeline", experiment.CheckPipeline(r))
	}
	if want("tracebreak") {
		r, err := experiment.TraceBreak(ctx, opts)
		if err != nil {
			return all, err
		}
		experiment.PrintTraceBreak(opts, r)
		verdict("tracebreak", experiment.CheckTraceBreak(r))
	}
	if want("delta") {
		r, err := experiment.Delta(ctx, opts)
		if err != nil {
			return all, err
		}
		experiment.PrintDelta(opts, r)
		verdict("delta", experiment.CheckDelta(r))
	}
	if want("shard") {
		r, err := experiment.Shard(ctx, opts)
		if err != nil {
			return all, err
		}
		experiment.PrintShard(opts, r)
		verdict("shard", experiment.CheckShard(r))
	}
	if want("elastic") {
		r, err := experiment.Elastic(ctx, opts)
		if err != nil {
			return all, err
		}
		experiment.PrintElastic(opts, r)
		verdict("elastic", experiment.CheckElastic(r))
	}
	return all, nil
}
