package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/experiment"
)

// tinyOptions shrinks experiments to smoke-test size.
func tinyOptions(out *strings.Builder) experiment.Options {
	return experiment.Options{
		Scale:       0.01,
		Warmup:      1,
		MinCycles:   2,
		MinDuration: 50 * time.Millisecond,
		MaxDuration: 30 * time.Second,
		Out:         out,
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if _, err := run(context.Background(), tinyOptions(&out), "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTable1(t *testing.T) {
	var out strings.Builder
	results, err := run(context.Background(), tinyOptions(&out), "table1")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("table1 produced %d measured results", len(results))
	}
	if !strings.Contains(out.String(), "Frontier") {
		t.Error("table1 output missing dataset")
	}
}

func TestRunFig4CollectsResults(t *testing.T) {
	var out strings.Builder
	results, err := run(context.Background(), tinyOptions(&out), "fig4")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(experiment.FlatNodeCounts) {
		t.Fatalf("results = %d, want %d", len(results), len(experiment.FlatNodeCounts))
	}
	o := out.String()
	if !strings.Contains(o, "Fig. 4") || !strings.Contains(o, "SHAPE CHECK fig4") {
		t.Errorf("fig4 output incomplete:\n%s", o)
	}
	// CSV rows derived from these results must parse to the header width.
	csv := experiment.ResultsCSV(results)
	for _, line := range strings.Split(strings.TrimSpace(csv), "\n") {
		if got, want := len(strings.Split(line, ",")), len(strings.Split(experiment.ResultsCSVHeader, ",")); got != want {
			t.Errorf("csv row width %d != header %d", got, want)
		}
	}
}

func TestRunConnLimit(t *testing.T) {
	var out strings.Builder
	if _, err := run(context.Background(), tinyOptions(&out), "connlimit"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ErrConnLimit") {
		t.Error("connlimit output incomplete")
	}
}
