package jobsim

import (
	"context"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/pfs"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// newStage starts an enforcing stage without a PFS (ops complete
// instantly), returning the stage and the simulated network it lives on.
func newStage(t *testing.T) (*stage.Enforcing, *simnet.Net) {
	t.Helper()
	n := simnet.New(simnet.Config{PropDelay: -1})
	e, err := stage.StartEnforcing(stage.EnforcingConfig{ID: 1, JobID: 1, Network: n.Host("s")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e, n
}

// applyRule pushes a rule to the stage through its real RPC surface, the
// way a controller would.
func applyRule(t *testing.T, n *simnet.Net, e *stage.Enforcing, r wire.Rule) {
	t.Helper()
	cli, err := rpc.Dial(context.Background(), n.Host("controller"), e.Info().Addr, rpc.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(context.Background(), &wire.Enforce{Cycle: 1, Rules: []wire.Rule{r}}); err != nil {
		t.Fatal(err)
	}
}

func TestJobOpRatios(t *testing.T) {
	e, _ := newStage(t)
	// 3 files per burst, 5 data ops each: meta:data = 6:15 per burst.
	j := Start(context.Background(), e, Pattern{Ranks: 2, FilesPerBurst: 3, OpsPerFile: 5})
	deadline := time.Now().Add(5 * time.Second)
	for j.Stats().Bursts < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s := j.Stop()
	if s.Bursts < 10 {
		t.Fatalf("completed only %d bursts", s.Bursts)
	}
	// Per completed burst: 6 meta, 15 data. In-flight bursts may add a
	// partial tail, so check the ratio over completed work with slack.
	ratio := float64(s.DataOps) / float64(s.MetaOps)
	if ratio < 2.0 || ratio > 3.0 {
		t.Errorf("data:meta ratio = %.2f (%d/%d), want ~2.5", ratio, s.DataOps, s.MetaOps)
	}
}

func TestMetadataHeavyPattern(t *testing.T) {
	e, _ := newStage(t)
	j := Start(context.Background(), e, MetadataHeavy(10))
	deadline := time.Now().Add(5 * time.Second)
	for j.Stats().Bursts < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s := j.Stop()
	if s.MetaOps <= s.DataOps {
		t.Errorf("metadata-heavy job did more data (%d) than meta (%d) ops", s.DataOps, s.MetaOps)
	}
}

func TestCheckpointComputePhases(t *testing.T) {
	e, _ := newStage(t)
	// 50ms compute between bursts: in ~300ms each rank completes ~6 bursts.
	j := Start(context.Background(), e, Checkpoint(50*time.Millisecond, 10))
	time.Sleep(300 * time.Millisecond)
	s := j.Stop()
	if s.Bursts == 0 {
		t.Fatal("no bursts completed")
	}
	// 4 ranks over 300ms at 50ms+burst each: well under 40 bursts.
	if s.Bursts > 40 {
		t.Errorf("bursts = %d, compute pauses apparently skipped", s.Bursts)
	}
}

func TestJobRespectsRateLimits(t *testing.T) {
	e, n := newStage(t)
	// Throttle data hard; the job's data throughput must follow.
	limited := wire.Rule{StageID: 1, JobID: 1, Action: wire.ActionSetLimit, Limit: wire.Rates{100, 1000}}
	applyRule(t, n, e, limited)

	j := Start(context.Background(), e, Pattern{Ranks: 4, FilesPerBurst: 1, OpsPerFile: 20})
	time.Sleep(500 * time.Millisecond)
	s := j.Stop()
	// 100 data ops/s for 0.5s plus ~100 burst tokens: at most ~250.
	if s.DataOps > 400 {
		t.Errorf("data ops under 100/s limit = %d in 0.5s", s.DataOps)
	}
}

func TestJobStopsWithContext(t *testing.T) {
	e, _ := newStage(t)
	ctx, cancel := context.WithCancel(context.Background())
	j := Start(ctx, e, Pattern{Ranks: 2, OpsPerFile: 1})
	time.Sleep(20 * time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() {
		j.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("job did not stop with its context")
	}
}

func TestJobAgainstPFS(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	fs := pfs.New(pfs.Config{OSTs: 2, OSTCapacity: 1e5, MDSCapacity: 1e5})
	e, err := stage.StartEnforcing(stage.EnforcingConfig{ID: 1, JobID: 7, Network: n.Host("s"), FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	j := Start(context.Background(), e, Pattern{Ranks: 2, FilesPerBurst: 1, OpsPerFile: 3})
	deadline := time.Now().Add(5 * time.Second)
	for j.Stats().Bursts < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s := j.Stop()
	ops := fs.ClientOps(7)
	if uint64(ops[wire.ClassData]) != s.DataOps {
		t.Errorf("PFS data ops %v != job %d", ops[wire.ClassData], s.DataOps)
	}
	if uint64(ops[wire.ClassMeta]) != s.MetaOps {
		t.Errorf("PFS meta ops %v != job %d", ops[wire.ClassMeta], s.MetaOps)
	}
}
