// Package experiment reproduces the paper's evaluation: one runner per
// table and figure, producing the same rows and series the paper reports,
// plus shape checks that assert the qualitative findings hold.
//
// Runners accept a Scale factor so the full study (up to 10,000 simulated
// compute nodes) can be shrunk for CI and testing.B benchmarks; sdsbench
// runs paper scale by default.
package experiment

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
)

// DefaultNet returns the simulated-network model used by all reproduction
// experiments: a per-host processor with a fixed per-message cost and a
// per-byte cost.
//
// The values are calibrated so the flat design's control-cycle latency
// lands in the paper's tens-of-milliseconds range at 2,500 nodes on a
// single-core runner. Absolute latencies scale with the host machine; the
// shapes (linear growth with child count, enforce > collect, hierarchy
// trade-offs) are what the experiments assert.
func DefaultNet() simnet.Config {
	return simnet.Config{
		ProcTime:    50 * time.Microsecond,
		ProcPerByte: 100 * time.Nanosecond,
	}
}

// Options tunes how experiments run.
type Options struct {
	// Scale multiplies every node count (0 < Scale <= 1). Zero selects 1,
	// the paper's scale.
	Scale float64
	// Warmup is the number of cycles run and discarded before measuring.
	// Zero selects 2.
	Warmup int
	// MinCycles is the minimum number of measured cycles per
	// configuration. Zero selects 5.
	MinCycles int
	// MinDuration is the minimum measurement window per configuration
	// (the paper measures for 5 minutes; we default to 2 seconds and
	// document the difference). Zero selects 2s.
	MinDuration time.Duration
	// MaxDuration caps a configuration's measurement loop. Zero selects
	// 120s.
	MaxDuration time.Duration
	// Jobs is the number of jobs stages are spread over. Zero selects 16.
	Jobs int
	// Net overrides the network model. A zero value selects DefaultNet.
	Net *simnet.Config
	// Out receives the human-readable report. Nil discards it.
	Out io.Writer
	// Debug, when non-empty, serves /metrics, /debug/pprof and /debug/trace
	// on this address for the run's duration (tracebreak only). Must be a
	// loopback address; see trace.DebugOptions.
	Debug string
	// MaxCodec caps the wire codec every component negotiates. Zero means
	// newest; 1 pins the legacy v1 codec for codec A/B comparisons.
	MaxCodec int
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Warmup <= 0 {
		o.Warmup = 2
	}
	if o.MinCycles <= 0 {
		o.MinCycles = 5
	}
	if o.MinDuration <= 0 {
		o.MinDuration = 2 * time.Second
	}
	if o.MaxDuration <= 0 {
		o.MaxDuration = 120 * time.Second
	}
	if o.Jobs <= 0 {
		o.Jobs = 16
	}
	if o.Net == nil {
		net := DefaultNet()
		o.Net = &net
	}
	return o
}

// scaled applies the scale factor to a paper node count, keeping at least
// two nodes.
func (o Options) scaled(n int) int {
	s := int(float64(n) * o.Scale)
	if s < 2 {
		s = 2
	}
	return s
}

func (o Options) printf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format, args...)
	}
}

// Result is one configuration's measured outcome.
type Result struct {
	// Name labels the configuration (e.g. "flat-2500").
	Name string
	// Topology is the control-plane design.
	Topology cluster.Topology
	// Nodes is the simulated compute-node (stage) count.
	Nodes int
	// Aggregators is the aggregator count (0 for flat).
	Aggregators int
	// Latency summarizes the measured control cycles.
	Latency telemetry.Summary
	// Global and Aggregator report per-role resource usage (Aggregator is
	// the per-aggregator mean, zero for flat).
	Global, Aggregator cluster.RoleUsage
	// Elapsed is the measurement window.
	Elapsed time.Duration
}

// runOne builds a deployment, warms it up, and measures it.
func (o Options) runOne(ctx context.Context, name string, topo cluster.Topology, nodes, aggs int) (Result, error) {
	c, err := cluster.Build(cluster.Config{
		Topology:    topo,
		Stages:      nodes,
		Jobs:        o.Jobs,
		Aggregators: aggs,
		Net:         *o.Net,
		// Paper fidelity: the prototype under study dispatches through a
		// bounded blocking pool (its gRPC thread pool), which is what makes
		// cycle latency grow linearly with child count. The pipelined mode
		// is the fix, measured separately by the pipeline experiment.
		FanOutMode: controller.FanOutBlocking,
	})
	if err != nil {
		return Result{}, fmt.Errorf("experiment %s: %w", name, err)
	}
	defer c.Close()
	results, err := o.measure(ctx, []*cluster.Cluster{c})
	if err != nil {
		return Result{}, fmt.Errorf("experiment %s: %w", name, err)
	}
	r := results[0]
	r.Name = name
	return r, nil
}

// measure warms up and measures one or more built clusters. Multiple
// clusters are measured with interleaved cycles so slow drift of the host
// (GC, frequency scaling, background load) hits all of them equally —
// required for paired comparisons like Fig. 6 whose effect size is a few
// percent.
func (o Options) measure(ctx context.Context, clusters []*cluster.Cluster) ([]Result, error) {
	// Start each measurement from a clean heap so one configuration's
	// garbage doesn't tax the next one's cycles.
	runtime.GC()

	for _, c := range clusters {
		for i := 0; i < o.Warmup; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				return nil, fmt.Errorf("warmup: %w", err)
			}
		}
		c.Recorder().Reset()
	}

	collectors := make([]*cluster.UsageCollector, len(clusters))
	for i, c := range clusters {
		collectors[i] = cluster.NewUsageCollector(c)
		collectors[i].Start()
	}
	start := time.Now()
	for {
		for _, c := range clusters {
			if _, err := c.RunControlCycle(ctx); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		done := elapsed >= o.MaxDuration
		if !done {
			done = elapsed >= o.MinDuration
			for _, c := range clusters {
				if int(c.Recorder().Cycles()) < o.MinCycles {
					done = false
					break
				}
			}
		}
		if done {
			break
		}
	}

	results := make([]Result, len(clusters))
	for i, c := range clusters {
		global, agg, elapsed := collectors[i].Stop()
		cfg := c.Config()
		results[i] = Result{
			Topology:    cfg.Topology,
			Nodes:       cfg.Stages,
			Aggregators: len(c.Aggregators),
			Latency:     c.Recorder().Summarize(),
			Global:      global,
			Aggregator:  agg,
			Elapsed:     elapsed,
		}
	}
	return results, nil
}

// ms renders a duration in the paper's milliseconds-with-decimals style.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}
