//go:build race

package experiment

// raceEnabled reports that the race detector is active: its 5-20x slowdown
// of instrumented code distorts the timing shapes the experiments assert,
// so shape checks are skipped (the runners still execute fully, which is
// what the race detector needs to see).
const raceEnabled = true
