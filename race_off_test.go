//go:build !race

package sdscale_test

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
