package experiment

import (
	"context"
	"strings"
	"testing"
)

// The shard-leader-kill scenario at reduced scale: one of four shard
// leaders crashes mid-run, its own standby quorum elects a replacement that
// re-homes every child with rules intact, and the surviving shards' cycles
// never fail or degrade.
func TestShardReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("shard scenario waits out leases and quorum elections")
	}
	o := testOptions(0.05) // 50 nodes over 4 shards
	for attempt := 1; attempt <= 2; attempt++ {
		r, err := Shard(context.Background(), o)
		if err != nil {
			t.Fatalf("Shard: %v", err)
		}
		cerr := CheckShard(r)
		if cerr == nil {
			if len(r.Survivors) != ShardCount-1 {
				t.Errorf("survivors = %v, want %d shards", r.Survivors, ShardCount-1)
			}
			var b strings.Builder
			o.Out = &b
			PrintShard(o, r)
			out := b.String()
			for _, want := range []string{"shard —", "victim epoch", "re-homed", "worst disturbance", "rule consistency"} {
				if !strings.Contains(out, want) {
					t.Errorf("shard renderer output missing %q:\n%s", want, out)
				}
			}
			return
		}
		t.Logf("attempt %d: victim=%d children=%d gap=%v rehomed=%d rules=%d/%d errs=%d ratio=%.2f",
			attempt, r.Victim, r.VictimChildren, r.RecoveryGap, r.ReHomed,
			r.RulesRecovered, r.RulesLost, r.SurvivorCycleErrors, r.DisturbanceRatio)
		if attempt == 2 {
			t.Fatalf("shard check failed twice: %v", cerr)
		}
		t.Logf("shard check failed (%v), retrying once", cerr)
	}
}
