package controller

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Warm-standby failover defaults. The lease is five sync intervals: a
// standby tolerates a few lost or delayed syncs before concluding the
// primary is dead, keeping spurious promotions rare without stretching the
// control gap much past the paper's one-second cycle period.
const (
	// DefaultSyncInterval is how often a primary replicates state to its
	// standby (and implicitly renews its leadership lease).
	DefaultSyncInterval = 50 * time.Millisecond
	// DefaultLeaseTimeout is how long a standby waits without a StateSync
	// before promoting itself.
	DefaultLeaseTimeout = 250 * time.Millisecond
)

// ErrDeposed is returned by RunCycle once a stale-epoch rejection has proven
// that a newer leader holds the control plane: the deposed primary must stop
// running cycles (its children fence everything it sends anyway).
var ErrDeposed = errors.New("controller: deposed by a newer leadership epoch")

// ErrStandby is returned by RunCycle on a standby that has not promoted
// itself: a passive mirror must not drive control cycles.
var ErrStandby = errors.New("controller: standby has not been promoted")

// Epoch returns the controller's current leadership epoch.
func (g *Global) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Deposed reports whether the controller has stepped down after observing a
// newer leadership epoch.
func (g *Global) Deposed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.deposed
}

// Promoted reports whether a standby controller has taken over as primary.
func (g *Global) Promoted() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.promoted
}

// stepDown marks the controller deposed (once) after evidence of a newer
// leader: either a child fenced one of its calls, or its standby answered a
// sync with a higher epoch.
func (g *Global) stepDown(why string) {
	g.mu.Lock()
	if g.deposed {
		g.mu.Unlock()
		return
	}
	g.deposed = true
	g.mu.Unlock()
	g.faults.StepDown()
	g.logf("controller: stepping down: %s", why)
}

// handleStateSync is the standby side of state replication: mirror the
// primary's state, renew the leadership lease, and echo the epoch. A sync
// from a lower epoch — a deposed primary that has not yet noticed — is
// rejected with CodeStaleEpoch naming the current epoch, which forces the
// sender to step down.
func (g *Global) handleStateSync(m *wire.StateSync) (wire.Message, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m.Epoch < g.epoch || (g.promoted && m.Epoch == g.epoch) {
		g.fencedSyncs++
		return nil, &wire.ErrorReply{
			Code:  wire.CodeStaleEpoch,
			Text:  fmt.Sprintf("standby: sender epoch %d deposed, current epoch is %d", m.Epoch, g.epoch),
			Epoch: g.epoch,
		}
	}
	if g.promoted {
		// A leader with a strictly newer epoch exists: fall back to being
		// its passive mirror.
		g.promoted = false
		g.logf("controller: yielding promotion to newer epoch %d", m.Epoch)
	}
	g.epoch = m.Epoch
	g.mirror = m
	lease := time.Duration(m.LeaseMicros) * time.Microsecond
	if lease <= 0 {
		lease = g.cfg.LeaseTimeout
	}
	now := time.Now()
	g.leaseUntil = now.Add(lease)
	g.lastSyncAt = now
	return &wire.StateSyncAck{ID: m.PrimaryID, Epoch: g.epoch}, nil
}

// FencedSyncs returns how many StateSyncs from deposed primaries this
// controller rejected.
func (g *Global) FencedSyncs() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fencedSyncs
}

// runStandby blocks until the leadership lease expires (then promotes) or
// the standby is promoted by other means, polling at a fraction of the
// lease timeout so expiry is detected promptly.
func (g *Global) runStandby(ctx context.Context) error {
	poll := g.cfg.LeaseTimeout / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	for {
		g.mu.Lock()
		promoted := g.promoted
		leaseUntil := g.leaseUntil
		g.mu.Unlock()
		if promoted {
			return nil
		}
		if time.Now().After(leaseUntil) {
			return g.Promote(ctx)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Promote turns a standby into the primary: bump the leadership epoch past
// everything the old primary used, adopt the mirrored membership (dialing
// each child), re-seed per-child delta-enforcement caches with the rules the
// old primary last sent, and restore job weights and the cycle counter.
// Children the mirror missed — or that cannot be dialed — re-home themselves
// through the registration endpoint. Promote is idempotent.
func (g *Global) Promote(ctx context.Context) error {
	g.mu.Lock()
	if g.promoted {
		g.mu.Unlock()
		return nil
	}
	g.promoted = true
	g.epoch++
	m := g.mirror
	if m != nil {
		if m.Cycle > g.cycle {
			g.cycle = m.Cycle
		}
		for _, w := range m.Weights {
			g.jobWeights[w.JobID] = w.Weight
		}
	}
	// The control gap of this failover starts at the last state the old
	// primary managed to replicate; RunCycle closes it on the first
	// completed cycle.
	g.gapStart = g.lastSyncAt
	if g.gapStart.IsZero() {
		g.gapStart = time.Now()
	}
	epoch := g.epoch
	g.mu.Unlock()
	g.faults.Promotion()
	g.logf("controller: promoted to primary at epoch %d", epoch)
	if m == nil {
		return nil
	}
	// Adoption dials every mirrored child, so it runs with the same bounded
	// parallelism as a control cycle's scatter — sequential dials would put
	// the whole fleet size on the recovery critical path.
	rpc.Scatter(ctx, len(m.Members), g.cfg.FanOut, func(i int) {
		mem := &m.Members[i]
		var err error
		switch mem.Role {
		case wire.RoleStage:
			err = g.AddStage(ctx, stage.Info{ID: mem.ID, JobID: mem.JobID, Weight: mem.Weight, Addr: mem.Addr})
		case wire.RoleAggregator:
			stages := make([]stage.Info, len(mem.Stages))
			for k, s := range mem.Stages {
				stages[k] = stage.Info{ID: s.ID, JobID: s.JobID, Weight: s.Weight, Addr: s.Addr}
			}
			err = g.AddAggregator(ctx, mem.ID, mem.Addr, stages)
		default:
			return
		}
		if err != nil {
			// The child may be down or already re-homing; the registration
			// endpoint picks it up when it re-registers.
			g.logf("controller: promote: adopt %s %d: %v", mem.Role, mem.ID, err)
			return
		}
		if c := g.members.get(mem.ID); c != nil && len(mem.Rules) > 0 {
			c.seedRules(mem.Rules)
		}
	})
	return nil
}

// startSync launches the primary-side replication loop towards the
// configured standby.
func (g *Global) startSync() {
	ctx, cancel := context.WithCancel(context.Background())
	g.syncCancel = cancel
	g.syncDone = make(chan struct{})
	go g.syncLoop(ctx)
}

// syncLoop replicates state to the standby every SyncInterval. The standby
// is dialed lazily (it may come up after the primary) and redialed after
// transport errors; the loop exits for good once the primary is deposed.
func (g *Global) syncLoop(ctx context.Context) {
	defer close(g.syncDone)
	var cli *rpc.Client
	defer func() {
		if cli != nil {
			cli.Close()
		}
	}()
	tick := time.NewTicker(g.cfg.SyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if g.Deposed() {
			return
		}
		if cli == nil {
			c, err := rpc.Dial(ctx, g.cfg.Network, g.cfg.StandbyAddr, rpc.DialOptions{Meter: g.cfg.Meter, MaxCodec: g.cfg.MaxCodec})
			if err != nil {
				continue // standby not up yet: retry next tick
			}
			cli = c
		}
		if err := g.syncOnce(ctx, cli); err != nil {
			if cur, ok := rpc.StaleEpochError(err); ok {
				g.stepDown(fmt.Sprintf("standby rejected state sync at epoch %d", cur))
				return
			}
			if ctx.Err() != nil {
				return
			}
			cli.Close()
			cli = nil
		}
	}
}

// syncOnce ships one StateSync and interprets the ack: a standby echoing a
// higher epoch has promoted itself, so the sender steps down.
func (g *Global) syncOnce(ctx context.Context, cli *rpc.Client) error {
	msg := g.buildStateSync()
	cctx, cancel := context.WithTimeout(ctx, g.cfg.CallTimeout)
	// Shipped as a shared frame: with one standby this is equivalent to a
	// plain call, and additional standbys would share the single encode.
	f := rpc.NewSharedFrame(msg)
	call := cli.GoShared(cctx, f)
	f.Release()
	resp, err := call.Wait(cctx)
	cancel()
	if err != nil {
		return err
	}
	ack, ok := resp.(*wire.StateSyncAck)
	if !ok {
		return fmt.Errorf("controller: unexpected %s from standby", resp.Type())
	}
	if ack.Epoch > msg.Epoch {
		g.stepDown(fmt.Sprintf("standby promoted itself to epoch %d", ack.Epoch))
		return ErrDeposed
	}
	return nil
}

// buildStateSync snapshots everything a standby needs to take over:
// leadership epoch, cycle counter, lease duration, the full membership with
// per-child last-enforced rules, and the job-weight table.
func (g *Global) buildStateSync() *wire.StateSync {
	children := g.members.snapshot()
	members := make([]wire.MemberState, 0, len(children))
	for _, c := range children {
		m := wire.MemberState{
			Role:   c.role,
			ID:     c.info.ID,
			JobID:  c.info.JobID,
			Weight: c.info.Weight,
			Addr:   c.info.Addr,
			Rules:  c.snapshotRules(),
		}
		if len(c.stages) > 0 {
			m.Stages = make([]wire.StageEntry, len(c.stages))
			for k, s := range c.stages {
				m.Stages[k] = wire.StageEntry{ID: s.ID, JobID: s.JobID, Weight: s.Weight, Addr: s.Addr}
			}
		}
		members = append(members, m)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	msg := &wire.StateSync{
		Epoch:       g.epoch,
		Cycle:       g.cycle,
		LeaseMicros: uint64(g.cfg.LeaseTimeout / time.Microsecond),
		Members:     members,
		Weights:     make([]wire.JobWeight, 0, len(g.jobWeights)),
	}
	for id, w := range g.jobWeights {
		msg.Weights = append(msg.Weights, wire.JobWeight{JobID: id, Weight: w})
	}
	return msg
}
