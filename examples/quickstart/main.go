// Quickstart: the smallest complete sdscale control plane.
//
// Four virtual data-plane stages serving two jobs run on a simulated
// network. A flat global controller collects their demand, runs the PSFA
// algorithm against a configured PFS capacity, and enforces per-stage
// limits. The PFS is oversubscribed 2:1, so PSFA halves every stage's
// admitted rate; job 2 carries twice the weight of job 1 and receives twice
// the IOPS.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/dsrhaslab/sdscale"
)

func main() {
	net := sdscale.NewSimNet(sdscale.SimNetConfig{})
	ctx := context.Background()

	// Data plane: four stages, two per job; every stage demands 1,000
	// data IOPS and 100 metadata ops/s.
	var stages []*sdscale.VirtualStage
	for i := 0; i < 4; i++ {
		st, err := sdscale.StartVirtualStage(sdscale.StageConfig{
			ID:     uint64(i + 1),
			JobID:  uint64(i%2 + 1),  // stages 1,3 -> job 1; 2,4 -> job 2
			Weight: float64(i%2 + 1), // job 1 weight 1, job 2 weight 2
			Generator: sdscale.ConstantWorkload{
				Rates: sdscale.Rates{1000, 100},
			},
			Network: net.Host(fmt.Sprintf("stage-%d", i+1)),
		})
		if err != nil {
			log.Fatalf("start stage: %v", err)
		}
		defer st.Close()
		stages = append(stages, st)
	}

	// Control plane: one flat global controller. Total demand is 4,000
	// data IOPS; capacity is 2,000, so the PSFA algorithm must arbitrate.
	global, err := sdscale.StartGlobal(sdscale.GlobalConfig{
		Network:   net.Host("controller"),
		Algorithm: sdscale.PSFA(),
		Capacity:  sdscale.Rates{2000, 200},
	})
	if err != nil {
		log.Fatalf("start controller: %v", err)
	}
	defer global.Close()
	for _, st := range stages {
		if err := global.AddStage(ctx, st.Info()); err != nil {
			log.Fatalf("attach stage: %v", err)
		}
	}

	// Run a few control cycles and watch the rules converge.
	for cycle := 1; cycle <= 3; cycle++ {
		b, err := global.RunCycle(ctx)
		if err != nil {
			log.Fatalf("cycle %d: %v", cycle, err)
		}
		fmt.Printf("cycle %d: collect %v, compute %v, enforce %v\n",
			cycle, b.Collect, b.Compute, b.Enforce)
	}

	fmt.Println("\nper-stage enforcement (PSFA, weighted 1:2, capacity 2000 data IOPS):")
	for _, st := range stages {
		rule, ok := st.LastRule()
		if !ok {
			log.Fatalf("stage %d got no rule", st.Info().ID)
		}
		fmt.Printf("  stage %d (job %d): data %6.1f IOPS, meta %5.1f ops/s\n",
			rule.StageID, rule.JobID,
			rule.Limit[sdscale.ClassData], rule.Limit[sdscale.ClassMeta])
	}
	fmt.Println("\njob 2's stages receive 2x job 1's allocation — weights honored;")
	fmt.Println("the four limits sum to the configured capacity — work conserving.")
}
