package experiment

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
)

// testOptions shrinks experiments so the suite stays fast while keeping the
// shapes detectable: node counts are scaled down 10-20x and measurement
// windows to a few hundred milliseconds.
func testOptions(scale float64) Options {
	return Options{
		Scale:       scale,
		Warmup:      2,
		MinCycles:   8,
		MinDuration: 400 * time.Millisecond,
		MaxDuration: 30 * time.Second,
	}
}

// withShapeRetry runs an experiment and its shape check, retrying the whole
// measurement once if the check fails: at test scale a single OS stall can
// inflate one configuration several-fold, which is measurement noise, not a
// logic regression. A genuine shape break fails twice.
func withShapeRetry(t *testing.T, name string,
	run func() ([]Result, error), check func([]Result) error) []Result {
	t.Helper()
	var results []Result
	var err error
	for attempt := 1; attempt <= 2; attempt++ {
		results, err = run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cerr := check(results)
		if cerr == nil {
			return results
		}
		for _, r := range results {
			t.Logf("%s attempt %d: %s total %v", name, attempt, r.Name, r.Latency.Total.Mean)
		}
		if attempt == 2 {
			t.Fatalf("%s shape failed twice: %v", name, cerr)
		}
		t.Logf("%s: shape check failed (%v), retrying once", name, cerr)
	}
	return results
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Warmup != 2 || o.MinCycles != 5 || o.Jobs != 16 {
		t.Errorf("defaults = %+v", o)
	}
	if o.Net == nil {
		t.Fatal("Net not defaulted")
	}
	if o.Net.ProcTime <= 0 {
		t.Error("default net has no processing model")
	}
	bad := Options{Scale: 7}.withDefaults()
	if bad.Scale != 1 {
		t.Errorf("out-of-range scale = %g", bad.Scale)
	}
}

func TestScaled(t *testing.T) {
	o := Options{Scale: 0.01}.withDefaults()
	if got := o.scaled(50); got != 2 {
		t.Errorf("scaled(50) at 0.01 = %d, want floor of 2", got)
	}
	if got := o.scaled(10000); got != 100 {
		t.Errorf("scaled(10000) at 0.01 = %d, want 100", got)
	}
}

func TestFig4ShapeAtReducedScale(t *testing.T) {
	o := testOptions(0.05) // 2, 25, 62, 125 nodes
	results, err := Fig4(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(FlatNodeCounts) {
		t.Fatalf("results = %d, want %d", len(results), len(FlatNodeCounts))
	}
	if raceEnabled {
		t.Log("race detector active: skipping timing-shape assertions")
	} else {
		results = withShapeRetry(t, "fig4",
			func() ([]Result, error) { return Fig4(context.Background(), o) },
			CheckFig4Shape)
		if err := CheckTable2Shape(results); err != nil {
			t.Fatal(err)
		}
	}
	// Renderers must mention every node count.
	var b strings.Builder
	o.Out = &b
	PrintFig4(o, results)
	PrintTable2(o, results)
	out := b.String()
	for _, want := range []string{"Fig. 4", "Table II", "collect", "CPU (%)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig5ShapeAtReducedScale(t *testing.T) {
	o := testOptions(0.05) // 500 nodes, aggregators 4..20
	// Keep stages-per-aggregator well above the job count, as at paper
	// scale (2,500 stages vs 16 jobs): Table III's TX > RX asymmetry at
	// the global controller exists because per-stage rule batches dwarf
	// per-job aggregates.
	o.Jobs = 4
	results, err := Fig5(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(HierAggregatorCounts) {
		t.Fatalf("results = %d", len(results))
	}
	if raceEnabled {
		t.Log("race detector active: skipping timing-shape assertions")
	} else {
		results = withShapeRetry(t, "fig5",
			func() ([]Result, error) { return Fig5(context.Background(), o) },
			CheckFig5Shape)
		if err := CheckTable3Shape(results); err != nil {
			for _, r := range results {
				t.Logf("%s: agg tx=%.3f mem=%d global tx=%.3f rx=%.3f", r.Name,
					r.Aggregator.TxMBps, r.Aggregator.MemBytes, r.Global.TxMBps, r.Global.RxMBps)
			}
			t.Fatal(err)
		}
	}
	var b strings.Builder
	o.Out = &b
	PrintFig5(o, results)
	PrintTable3(o, results)
	if !strings.Contains(b.String(), "Table III") {
		t.Error("table3 renderer output missing")
	}
}

func TestFig6ShapeAtReducedScale(t *testing.T) {
	o := testOptions(0.2) // 500 nodes
	results, err := Fig6(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		t.Log("race detector active: skipping timing-shape assertions")
	} else {
		results = withShapeRetry(t, "fig6",
			func() ([]Result, error) { return Fig6(context.Background(), o) },
			CheckFig6Shape)
		if err := CheckTable4Shape(results); err != nil {
			for _, r := range results {
				t.Logf("%s: global cpu=%.2f tx=%.3f agg cpu=%.2f", r.Name,
					r.Global.CPUPercent, r.Global.TxMBps, r.Aggregator.CPUPercent)
			}
			t.Fatal(err)
		}
	}
	var b strings.Builder
	o.Out = &b
	PrintFig6(o, results)
	PrintTable4(o, results)
	if !strings.Contains(b.String(), "Table IV") {
		t.Error("table4 renderer output missing")
	}
}

func TestFutureCoordinatedAtReducedScale(t *testing.T) {
	o := testOptions(0.05) // 500 nodes, 4 controllers each design
	results, err := FutureCoordinated(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		t.Log("race detector active: skipping timing-shape assertions")
	} else {
		// The latency-ratio claim needs paper scale (see
		// CheckFutureCoordinatedShape); at test scale assert structure.
		results = withShapeRetry(t, "coordflat",
			func() ([]Result, error) { return FutureCoordinated(context.Background(), o) },
			CheckFutureCoordinatedWorks)
	}
	var b strings.Builder
	o.Out = &b
	PrintFutureCoordinated(o, results)
	if !strings.Contains(b.String(), "coordinated") {
		t.Error("coordflat renderer output missing")
	}
}

func TestConnLimitProbe(t *testing.T) {
	o := testOptions(1)
	r, err := ConnLimit(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if r.FlatMax != r.Limit {
		t.Errorf("FlatMax = %d, want %d", r.FlatMax, r.Limit)
	}
	if r.FlatFailedAt != r.Limit+1 {
		t.Errorf("FlatFailedAt = %d, want %d", r.FlatFailedAt, r.Limit+1)
	}
	if r.HierNodes <= r.Limit || r.HierAggregators < 4 {
		t.Errorf("hierarchy result = %+v", r)
	}
	var b strings.Builder
	o.Out = &b
	PrintConnLimit(o, r)
	if !strings.Contains(b.String(), "ErrConnLimit") {
		t.Error("connlimit renderer output missing")
	}
}

func TestPrintTable1(t *testing.T) {
	var b strings.Builder
	o := Options{Out: &b}
	PrintTable1(o)
	out := b.String()
	for _, want := range []string{"Frontier", "Fugaku", "hierarchical", "aggregators"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestShapeCheckersRejectDegenerate(t *testing.T) {
	if err := CheckFig4Shape(nil); err == nil {
		t.Error("CheckFig4Shape(nil) passed")
	}
	if err := CheckFig5Shape(nil); err == nil {
		t.Error("CheckFig5Shape(nil) passed")
	}
	if err := CheckFig6Shape(nil); err == nil {
		t.Error("CheckFig6Shape(nil) passed")
	}
	if err := CheckTable2Shape(nil); err == nil {
		t.Error("CheckTable2Shape(nil) passed")
	}
	if err := CheckTable3Shape(nil); err == nil {
		t.Error("CheckTable3Shape(nil) passed")
	}
	if err := CheckTable4Shape(nil); err == nil {
		t.Error("CheckTable4Shape(nil) passed")
	}
	// A flat latency curve must fail fig4's monotonicity.
	flat := []Result{
		{Nodes: 50, Latency: summaryWithTotal(10 * time.Millisecond)},
		{Nodes: 500, Latency: summaryWithTotal(10 * time.Millisecond)},
	}
	if err := CheckFig4Shape(flat); err == nil {
		t.Error("CheckFig4Shape accepted a flat curve")
	}
}

// summaryWithTotal fabricates a summary whose total mean is d.
func summaryWithTotal(d time.Duration) (s telemetry.Summary) {
	s.Total.Mean = d
	return s
}

func TestRunOnePropagatesBuildErrors(t *testing.T) {
	o := testOptions(1).withDefaults()
	net := *o.Net
	net.MaxConnsPerHost = 3
	o.Net = &net
	_, err := o.runOne(context.Background(), "doomed", cluster.Flat, 10, 0)
	if err == nil {
		t.Fatal("runOne built a flat cluster past the connection limit")
	}
}
