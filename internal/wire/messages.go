package wire

import (
	"fmt"
	"sync"
)

// MsgType identifies a control-plane message on the wire.
type MsgType uint8

// Control-plane message types. The numbering is part of the wire protocol;
// append only.
const (
	// TRegister is sent by a stage or aggregator to its parent controller
	// when it joins the control plane.
	TRegister MsgType = iota + 1
	// TRegisterAck confirms a registration.
	TRegisterAck
	// TCollect asks a child for its current metrics (phase 1 of a cycle).
	TCollect
	// TCollectReply carries per-stage metric reports back up.
	TCollectReply
	// TCollectAggReply carries pre-aggregated per-job reports from an
	// aggregator controller back to the global controller.
	TCollectAggReply
	// TEnforce pushes enforcement rules down (phase 3 of a cycle).
	TEnforce
	// TEnforceAck confirms rule application.
	TEnforceAck
	// THeartbeat is a liveness probe.
	THeartbeat
	// THeartbeatAck answers a liveness probe.
	THeartbeatAck
	// TError reports a remote failure for a request.
	TError
	// TStageList asks a controller for the stages it manages (used when a
	// global controller attaches to a remotely deployed aggregator).
	TStageList
	// TStageListReply carries the managed stages.
	TStageListReply
	// TPeerExchange shares a coordinated-flat peer controller's per-job
	// aggregates with another peer (paper §VI future work: flat designs
	// with multiple coordinating controllers).
	TPeerExchange
	// TPeerExchangeAck confirms a peer exchange.
	TPeerExchangeAck
	// TDelegate pushes per-job capacity budgets to an aggregator that
	// computes per-stage rules itself (paper §VI future work: offloading
	// processing logic to aggregator nodes).
	TDelegate
	// TStateSync replicates the primary controller's state (membership,
	// last rules, job weights) to its warm standby and doubles as the
	// leadership lease renewal.
	TStateSync
	// TStateSyncAck confirms a state sync; its epoch tells the primary
	// whether the standby has promoted itself in the meantime.
	TStateSyncAck
	// TReportDelta is an unsolicited child→parent push carrying one stage's
	// current metric report. Children emit it when demand/usage moves past a
	// configured threshold (and at a heartbeat floor, so a silent child is
	// distinguishable from an unchanged one); parents fold it into their
	// report cache and mark the child dirty. Codec v2 only: v1 predates
	// server-initiated frames and never sees this type.
	TReportDelta
	// TVoteRequest is sent by a standby whose leadership lease expired to
	// every other controller it knows, proposing itself as primary at a
	// new (higher) epoch. A controller grants at most one vote per epoch,
	// persisted durably before the grant leaves the process.
	TVoteRequest
	// TLeaseGrant answers a vote request: Granted with the voter's vote,
	// or a denial carrying the voter's current epoch so the candidate can
	// catch up (a live primary denies with its own epoch, vetoing the
	// election).
	TLeaseGrant
	// TShardQuery asks any shard leader of a sharded deployment for the
	// routing metadata a caller needs to direct per-child traffic: the
	// shard table with each leader's address, standby list, and current
	// leadership epoch. ChildID optionally names one child, and the reply
	// then reports which shard owns it.
	TShardQuery
	// TShardMap answers a shard query with the deployment's shard table.
	// Each entry carries the shard leader's leadership epoch — the fencing
	// floor for that shard's children — so a router can detect a failover
	// (epoch moved) without collecting from the whole fleet.
	TShardMap
)

// String returns the mnemonic name of the message type.
func (t MsgType) String() string {
	switch t {
	case TRegister:
		return "Register"
	case TRegisterAck:
		return "RegisterAck"
	case TCollect:
		return "Collect"
	case TCollectReply:
		return "CollectReply"
	case TCollectAggReply:
		return "CollectAggReply"
	case TEnforce:
		return "Enforce"
	case TEnforceAck:
		return "EnforceAck"
	case THeartbeat:
		return "Heartbeat"
	case THeartbeatAck:
		return "HeartbeatAck"
	case TError:
		return "Error"
	case TStageList:
		return "StageList"
	case TStageListReply:
		return "StageListReply"
	case TPeerExchange:
		return "PeerExchange"
	case TPeerExchangeAck:
		return "PeerExchangeAck"
	case TDelegate:
		return "Delegate"
	case TStateSync:
		return "StateSync"
	case TStateSyncAck:
		return "StateSyncAck"
	case TReportDelta:
		return "ReportDelta"
	case TVoteRequest:
		return "VoteRequest"
	case TLeaseGrant:
		return "LeaseGrant"
	case TShardQuery:
		return "ShardQuery"
	case TShardMap:
		return "ShardMap"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// OpClass distinguishes the I/O operation classes the control plane manages
// independently, mirroring the paper's "IOPS for data and metadata
// operations".
type OpClass uint8

// The operation classes tracked per stage.
const (
	// ClassData covers data-path operations (read/write IOPS).
	ClassData OpClass = iota
	// ClassMeta covers metadata operations (open, close, stat, ...) whose
	// PFS cost profile differs from the data path.
	ClassMeta
	// NumClasses is the number of operation classes.
	NumClasses
)

// String returns the mnemonic name of the operation class.
func (c OpClass) String() string {
	switch c {
	case ClassData:
		return "data"
	case ClassMeta:
		return "meta"
	}
	return fmt.Sprintf("OpClass(%d)", uint8(c))
}

// Rates holds one value per operation class, in operations per second.
type Rates [NumClasses]float64

// Add returns the element-wise sum r + o.
func (r Rates) Add(o Rates) Rates {
	for i := range r {
		r[i] += o[i]
	}
	return r
}

// Sub returns the element-wise difference r - o.
func (r Rates) Sub(o Rates) Rates {
	for i := range r {
		r[i] -= o[i]
	}
	return r
}

// Scale returns r with every class multiplied by f.
func (r Rates) Scale(f float64) Rates {
	for i := range r {
		r[i] *= f
	}
	return r
}

// Total returns the sum across classes.
func (r Rates) Total() float64 {
	var t float64
	for _, v := range r {
		t += v
	}
	return t
}

// IsZero reports whether every class is exactly zero.
func (r Rates) IsZero() bool {
	for _, v := range r {
		if v != 0 {
			return false
		}
	}
	return true
}

func (e *Encoder) rates(r Rates) {
	for _, v := range r {
		e.Float64(v)
	}
}

func (d *Decoder) rates() Rates {
	var r Rates
	for i := range r {
		r[i] = d.Float64()
	}
	return r
}

// sliceFor returns s resized to n, reusing the backing array when capacity
// allows. Fresh messages (nil s) decode exactly as before — a zero-length
// prefix leaves the slice nil — while messages recycled through the RPC
// layer's reuse caches keep their arrays, which is what makes steady-state
// decode cycles allocation-free. Callers pass the result through d.Length(),
// which returns 0 after any decode error, so an errored decode always leaves
// the slice truncated rather than holding stale entries.
func sliceFor[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Message is implemented by every control-plane message.
type Message interface {
	// Type returns the wire identifier of the message.
	Type() MsgType
	// Marshal appends the message body (without type tag) to e.
	Marshal(e *Encoder)
	// Unmarshal decodes the message body from d.
	Unmarshal(d *Decoder)
}

// Role identifies a control-plane participant kind.
type Role uint8

// Control-plane roles.
const (
	// RoleStage is a data-plane stage (virtual or enforcing).
	RoleStage Role = iota + 1
	// RoleAggregator is a mid-tier controller.
	RoleAggregator
	// RoleGlobal is the top-level controller.
	RoleGlobal
)

// String returns the mnemonic role name.
func (r Role) String() string {
	switch r {
	case RoleStage:
		return "stage"
	case RoleAggregator:
		return "aggregator"
	case RoleGlobal:
		return "global"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// Register announces a child joining the control plane.
type Register struct {
	// Role of the registering component.
	Role Role
	// ID is the cluster-unique identifier of the component.
	ID uint64
	// JobID is the job the stage serves (stages only; 0 otherwise).
	JobID uint64
	// Weight is the QoS weight of the job (stages only).
	Weight float64
	// Addr is the component's listen address, if it accepts connections.
	Addr string
}

// Type implements Message.
func (*Register) Type() MsgType { return TRegister }

// Marshal implements Message.
func (m *Register) Marshal(e *Encoder) {
	e.Byte(byte(m.Role))
	e.Uint64(m.ID)
	e.Uint64(m.JobID)
	e.Float64(m.Weight)
	e.String(m.Addr)
}

// Unmarshal implements Message.
func (m *Register) Unmarshal(d *Decoder) {
	m.Role = Role(d.Byte())
	m.ID = d.Uint64()
	m.JobID = d.Uint64()
	m.Weight = d.Float64()
	m.Addr = d.String()
}

// RegisterAck confirms a registration.
type RegisterAck struct {
	// ID echoes the registered component's identifier.
	ID uint64
	// Epoch is the controller's current leadership epoch. A child adopts
	// it as its fencing floor, so calls from a controller deposed before
	// the registration are rejected with CodeStaleEpoch.
	Epoch uint64
}

// Type implements Message.
func (*RegisterAck) Type() MsgType { return TRegisterAck }

// Marshal implements Message.
func (m *RegisterAck) Marshal(e *Encoder) {
	e.Uint64(m.ID)
	e.Uint64(m.Epoch)
}

// Unmarshal implements Message.
func (m *RegisterAck) Unmarshal(d *Decoder) {
	m.ID = d.Uint64()
	m.Epoch = d.Uint64()
}

// Collect asks a child for current metrics.
type Collect struct {
	// Cycle is the control cycle sequence number.
	Cycle uint64
	// WindowMicros is the measurement window the parent wants rates
	// normalized over, in microseconds.
	WindowMicros uint64
	// Epoch is the sender's leadership epoch. Children reject collects
	// whose epoch is below the highest they have seen (CodeStaleEpoch),
	// fencing deposed controllers out of the control loop.
	Epoch uint64
}

// Type implements Message.
func (*Collect) Type() MsgType { return TCollect }

// Marshal implements Message.
func (m *Collect) Marshal(e *Encoder) {
	e.Uint64(m.Cycle)
	e.Uint64(m.WindowMicros)
	e.Uint64(m.Epoch)
}

// Unmarshal implements Message.
func (m *Collect) Unmarshal(d *Decoder) {
	m.Cycle = d.Uint64()
	m.WindowMicros = d.Uint64()
	m.Epoch = d.Uint64()
}

// StageReport is one stage's metric sample for a control cycle.
type StageReport struct {
	// StageID identifies the reporting stage.
	StageID uint64
	// JobID identifies the job the stage serves.
	JobID uint64
	// Demand is the rate the job is trying to issue, per class.
	Demand Rates
	// Usage is the rate actually admitted to the PFS, per class.
	Usage Rates
}

// CollectReply carries raw per-stage reports (flat design, or the
// stage→aggregator leg of the hierarchical design).
type CollectReply struct {
	// Cycle echoes the collect request's cycle number.
	Cycle uint64
	// Reports holds one entry per stage.
	Reports []StageReport
}

// Type implements Message.
func (*CollectReply) Type() MsgType { return TCollectReply }

// Marshal implements Message.
func (m *CollectReply) Marshal(e *Encoder) {
	e.Uint64(m.Cycle)
	e.Uint64(uint64(len(m.Reports)))
	for i := range m.Reports {
		r := &m.Reports[i]
		e.Uint64(r.StageID)
		e.Uint64(r.JobID)
		e.rates(r.Demand)
		e.rates(r.Usage)
	}
}

// Unmarshal implements Message.
func (m *CollectReply) Unmarshal(d *Decoder) {
	m.Cycle = d.Uint64()
	m.Reports = sliceFor(m.Reports, d.Length())
	for i := range m.Reports {
		r := &m.Reports[i]
		r.StageID = d.Uint64()
		r.JobID = d.Uint64()
		r.Demand = d.rates()
		r.Usage = d.rates()
	}
}

// JobReport is a per-job aggregate over all stages an aggregator manages.
type JobReport struct {
	// JobID identifies the job.
	JobID uint64
	// Stages is the number of the job's stages behind this aggregator.
	Stages uint32
	// Demand is the summed demand of those stages, per class.
	Demand Rates
	// Usage is the summed admitted rate of those stages, per class.
	Usage Rates
}

// CollectAggReply carries pre-aggregated per-job reports from an aggregator
// to the global controller. This is the message that makes the global
// controller's received bandwidth drop in the hierarchical design (paper
// Table III): its size is O(jobs), not O(stages).
type CollectAggReply struct {
	// Cycle echoes the collect request's cycle number.
	Cycle uint64
	// AggregatorID identifies the reporting aggregator.
	AggregatorID uint64
	// Jobs holds one aggregate entry per job.
	Jobs []JobReport
}

// Type implements Message.
func (*CollectAggReply) Type() MsgType { return TCollectAggReply }

// Marshal implements Message.
func (m *CollectAggReply) Marshal(e *Encoder) {
	e.Uint64(m.Cycle)
	e.Uint64(m.AggregatorID)
	e.Uint64(uint64(len(m.Jobs)))
	for i := range m.Jobs {
		j := &m.Jobs[i]
		e.Uint64(j.JobID)
		e.Uint32(j.Stages)
		e.rates(j.Demand)
		e.rates(j.Usage)
	}
}

// Unmarshal implements Message.
func (m *CollectAggReply) Unmarshal(d *Decoder) {
	m.Cycle = d.Uint64()
	m.AggregatorID = d.Uint64()
	m.Jobs = sliceFor(m.Jobs, d.Length())
	for i := range m.Jobs {
		j := &m.Jobs[i]
		j.JobID = d.Uint64()
		j.Stages = d.Uint32()
		j.Demand = d.rates()
		j.Usage = d.rates()
	}
}

// RuleAction tells a stage how to apply a rule.
type RuleAction uint8

// Rule actions.
const (
	// ActionSetLimit replaces the stage's rate limits with Limit.
	ActionSetLimit RuleAction = iota + 1
	// ActionNoLimit removes rate limiting at the stage.
	ActionNoLimit
	// ActionPause blocks all I/O at the stage (administrative hold).
	ActionPause
)

// String returns the mnemonic action name.
func (a RuleAction) String() string {
	switch a {
	case ActionSetLimit:
		return "set-limit"
	case ActionNoLimit:
		return "no-limit"
	case ActionPause:
		return "pause"
	}
	return fmt.Sprintf("RuleAction(%d)", uint8(a))
}

// WildcardStage, used as a Rule.StageID, addresses every stage of the
// rule's job: the receiving stage applies the rule when the JobID matches
// its own. Stage IDs are 1-based, so 0 is free for this. Wildcards let a
// controller broadcast one marshal-once rule to a whole job when every
// stage's share is identical (delegated local control on a converged
// workload); senders must not address wildcard rules to stages on the v1
// codec, which predates them.
const WildcardStage uint64 = 0

// Rule is one stage's enforcement directive for a control cycle.
type Rule struct {
	// StageID identifies the stage the rule targets, or WildcardStage to
	// target every stage of the rule's job.
	StageID uint64
	// JobID identifies the job the rule's limits belong to.
	JobID uint64
	// Action selects how the stage applies the rule.
	Action RuleAction
	// Limit is the admitted rate ceiling per class (ActionSetLimit only).
	Limit Rates
}

// Enforce pushes a batch of rules to a child. In the flat design the batch
// holds exactly the target stage's rule; in the hierarchical design the
// global controller sends an aggregator every rule for the stages it manages
// and the aggregator fans them out.
type Enforce struct {
	// Cycle is the control cycle that produced the rules.
	Cycle uint64
	// Rules is the rule batch.
	Rules []Rule
	// Epoch is the sender's leadership epoch. Children reject rule batches
	// whose epoch is below the highest they have seen (CodeStaleEpoch), so
	// a deposed primary can never overwrite the new leader's rules.
	Epoch uint64
}

// Type implements Message.
func (*Enforce) Type() MsgType { return TEnforce }

// Marshal implements Message.
func (m *Enforce) Marshal(e *Encoder) {
	e.Uint64(m.Cycle)
	e.Uint64(uint64(len(m.Rules)))
	for i := range m.Rules {
		r := &m.Rules[i]
		e.Uint64(r.StageID)
		e.Uint64(r.JobID)
		e.Byte(byte(r.Action))
		e.rates(r.Limit)
	}
	e.Uint64(m.Epoch)
}

// Unmarshal implements Message.
func (m *Enforce) Unmarshal(d *Decoder) {
	m.Cycle = d.Uint64()
	m.Rules = sliceFor(m.Rules, d.Length())
	for i := range m.Rules {
		r := &m.Rules[i]
		r.StageID = d.Uint64()
		r.JobID = d.Uint64()
		r.Action = RuleAction(d.Byte())
		r.Limit = d.rates()
	}
	m.Epoch = d.Uint64()
}

// EnforceAck confirms rule application.
type EnforceAck struct {
	// Cycle echoes the enforce request's cycle number.
	Cycle uint64
	// Applied is the number of rules applied downstream of the sender.
	Applied uint32
}

// Type implements Message.
func (*EnforceAck) Type() MsgType { return TEnforceAck }

// Marshal implements Message.
func (m *EnforceAck) Marshal(e *Encoder) {
	e.Uint64(m.Cycle)
	e.Uint32(m.Applied)
}

// Unmarshal implements Message.
func (m *EnforceAck) Unmarshal(d *Decoder) {
	m.Cycle = d.Uint64()
	m.Applied = d.Uint32()
}

// Heartbeat is a liveness probe.
type Heartbeat struct {
	// SentUnixMicros is the sender's clock, for RTT estimation.
	SentUnixMicros int64
}

// Type implements Message.
func (*Heartbeat) Type() MsgType { return THeartbeat }

// Marshal implements Message.
func (m *Heartbeat) Marshal(e *Encoder) { e.Int64(m.SentUnixMicros) }

// Unmarshal implements Message.
func (m *Heartbeat) Unmarshal(d *Decoder) { m.SentUnixMicros = d.Int64() }

// HeartbeatAck answers a liveness probe.
type HeartbeatAck struct {
	// EchoUnixMicros echoes the probe's timestamp.
	EchoUnixMicros int64
}

// Type implements Message.
func (*HeartbeatAck) Type() MsgType { return THeartbeatAck }

// Marshal implements Message.
func (m *HeartbeatAck) Marshal(e *Encoder) { e.Int64(m.EchoUnixMicros) }

// Unmarshal implements Message.
func (m *HeartbeatAck) Unmarshal(d *Decoder) { m.EchoUnixMicros = d.Int64() }

// ErrorReply reports a remote failure for a request.
type ErrorReply struct {
	// Code is a machine-readable error class.
	Code uint32
	// Text is a human-readable description.
	Text string
	// Epoch carries the receiver's current leadership epoch when Code is
	// CodeStaleEpoch or CodeNotLeader, naming the term the fenced caller
	// lost against. Zero otherwise.
	Epoch uint64
}

// Remote error codes.
const (
	// CodeInternal is an unclassified remote failure.
	CodeInternal uint32 = iota + 1
	// CodeBadMessage means the peer could not decode the request.
	CodeBadMessage
	// CodeNotRegistered means the sender is unknown to the receiver.
	CodeNotRegistered
	// CodeOverload means the receiver shed the request under load.
	CodeOverload
	// CodeStaleEpoch means the caller's leadership epoch is below the
	// receiver's: the caller has been deposed and must step down.
	CodeStaleEpoch
	// CodeNotLeader means the receiver is a standby that has not been
	// promoted; the caller should retry against the current leader.
	CodeNotLeader
)

// Type implements Message.
func (*ErrorReply) Type() MsgType { return TError }

// Marshal implements Message.
func (m *ErrorReply) Marshal(e *Encoder) {
	e.Uint32(m.Code)
	e.String(m.Text)
	e.Uint64(m.Epoch)
}

// Unmarshal implements Message.
func (m *ErrorReply) Unmarshal(d *Decoder) {
	m.Code = d.Uint32()
	m.Text = d.String()
	m.Epoch = d.Uint64()
}

// Error implements the error interface so an ErrorReply can be returned
// directly from RPC helpers.
func (m *ErrorReply) Error() string {
	return fmt.Sprintf("remote error %d: %s", m.Code, m.Text)
}

// StageEntry is one stage's identity inside a StageListReply.
type StageEntry struct {
	// ID is the stage's cluster-unique identifier.
	ID uint64
	// JobID is the job the stage serves.
	JobID uint64
	// Weight is the job's QoS weight.
	Weight float64
	// Addr is the stage's listen address.
	Addr string
}

// StageList asks a controller for the stages it manages.
type StageList struct{}

// Type implements Message.
func (*StageList) Type() MsgType { return TStageList }

// Marshal implements Message.
func (*StageList) Marshal(*Encoder) {}

// Unmarshal implements Message.
func (*StageList) Unmarshal(*Decoder) {}

// StageListReply carries a controller's managed stages.
type StageListReply struct {
	// Stages holds one entry per managed stage.
	Stages []StageEntry
}

// Type implements Message.
func (*StageListReply) Type() MsgType { return TStageListReply }

// Marshal implements Message.
func (m *StageListReply) Marshal(e *Encoder) {
	e.Uint64(uint64(len(m.Stages)))
	for i := range m.Stages {
		s := &m.Stages[i]
		e.Uint64(s.ID)
		e.Uint64(s.JobID)
		e.Float64(s.Weight)
		e.String(s.Addr)
	}
}

// Unmarshal implements Message.
func (m *StageListReply) Unmarshal(d *Decoder) {
	m.Stages = sliceFor(m.Stages, d.Length())
	for i := range m.Stages {
		s := &m.Stages[i]
		s.ID = d.Uint64()
		s.JobID = d.Uint64()
		s.Weight = d.Float64()
		s.Addr = d.String()
	}
}

// PeerExchange shares one coordinated-flat peer's per-job aggregates.
type PeerExchange struct {
	// Cycle is the sending peer's control-cycle number.
	Cycle uint64
	// PeerID identifies the sending peer.
	PeerID uint64
	// Addr is the sending peer's listen address, letting receivers mesh
	// back automatically when the sender was configured one-sidedly.
	Addr string
	// Jobs holds the peer's per-job aggregates for its own partition.
	Jobs []JobReport
}

// Type implements Message.
func (*PeerExchange) Type() MsgType { return TPeerExchange }

// Marshal implements Message.
func (m *PeerExchange) Marshal(e *Encoder) {
	e.Uint64(m.Cycle)
	e.Uint64(m.PeerID)
	e.String(m.Addr)
	e.Uint64(uint64(len(m.Jobs)))
	for i := range m.Jobs {
		j := &m.Jobs[i]
		e.Uint64(j.JobID)
		e.Uint32(j.Stages)
		e.rates(j.Demand)
		e.rates(j.Usage)
	}
}

// Unmarshal implements Message.
func (m *PeerExchange) Unmarshal(d *Decoder) {
	m.Cycle = d.Uint64()
	m.PeerID = d.Uint64()
	m.Addr = d.String()
	m.Jobs = sliceFor(m.Jobs, d.Length())
	for i := range m.Jobs {
		j := &m.Jobs[i]
		j.JobID = d.Uint64()
		j.Stages = d.Uint32()
		j.Demand = d.rates()
		j.Usage = d.rates()
	}
}

// PeerExchangeAck confirms a peer exchange.
type PeerExchangeAck struct {
	// Cycle echoes the exchanged cycle number.
	Cycle uint64
	// PeerID identifies the acknowledging peer.
	PeerID uint64
}

// Type implements Message.
func (*PeerExchangeAck) Type() MsgType { return TPeerExchangeAck }

// Marshal implements Message.
func (m *PeerExchangeAck) Marshal(e *Encoder) {
	e.Uint64(m.Cycle)
	e.Uint64(m.PeerID)
}

// Unmarshal implements Message.
func (m *PeerExchangeAck) Unmarshal(d *Decoder) {
	m.Cycle = d.Uint64()
	m.PeerID = d.Uint64()
}

// JobBudget is one job's capacity slice for one aggregator's partition.
type JobBudget struct {
	// JobID identifies the job.
	JobID uint64
	// Limit is the aggregate rate ceiling for the job's stages behind the
	// receiving aggregator, per class.
	Limit Rates
}

// Delegate pushes per-job budgets to an aggregator with local control: the
// aggregator splits each budget over the job's stages itself, using its own
// fresher per-stage demand view. Payload size is O(jobs), not O(stages) —
// the enforcement-side analogue of collect-side pre-aggregation.
type Delegate struct {
	// Cycle is the control cycle that produced the budgets.
	Cycle uint64
	// Budgets holds one entry per job with stages behind the receiver.
	Budgets []JobBudget
}

// Type implements Message.
func (*Delegate) Type() MsgType { return TDelegate }

// Marshal implements Message.
func (m *Delegate) Marshal(e *Encoder) {
	e.Uint64(m.Cycle)
	e.Uint64(uint64(len(m.Budgets)))
	for i := range m.Budgets {
		b := &m.Budgets[i]
		e.Uint64(b.JobID)
		e.rates(b.Limit)
	}
}

// Unmarshal implements Message.
func (m *Delegate) Unmarshal(d *Decoder) {
	m.Cycle = d.Uint64()
	m.Budgets = sliceFor(m.Budgets, d.Length())
	for i := range m.Budgets {
		b := &m.Budgets[i]
		b.JobID = d.Uint64()
		b.Limit = d.rates()
	}
}

// MemberState is one child's replicated state inside a StateSync: enough
// for a promoting standby to re-adopt the child (identity and address) and
// to keep delta enforcement continuous (the last rules the primary sent).
type MemberState struct {
	// Role of the child (stage or aggregator).
	Role Role
	// ID is the child's cluster-unique identifier.
	ID uint64
	// JobID is the job a stage serves (stages only; 0 otherwise).
	JobID uint64
	// Weight is the job's QoS weight (stages only).
	Weight float64
	// Addr is the child's listen address.
	Addr string
	// Stages lists the stages behind an aggregator child (aggregators
	// only; empty for stages).
	Stages []StageEntry
	// Rules is the last rule batch the primary sent the child, so the
	// standby's first delta-enforcement cycle diffs against reality.
	Rules []Rule
}

// JobWeight is one job's QoS weight inside a StateSync.
type JobWeight struct {
	// JobID identifies the job.
	JobID uint64
	// Weight is the job's QoS weight.
	Weight float64
}

// StateSync replicates the primary controller's control-plane state to its
// warm standby. It is sent periodically and doubles as the leadership lease
// renewal: a standby that misses syncs for longer than its lease timeout
// promotes itself with a bumped epoch.
type StateSync struct {
	// PrimaryID identifies the sending primary.
	PrimaryID uint64
	// Epoch is the primary's current leadership epoch.
	Epoch uint64
	// Cycle is the primary's last completed control-cycle number.
	Cycle uint64
	// LeaseMicros is how long the standby should consider the lease held
	// after receiving this sync, in microseconds.
	LeaseMicros uint64
	// Members snapshots the primary's membership and per-child last rules.
	Members []MemberState
	// Weights snapshots the primary's per-job QoS weights.
	Weights []JobWeight
}

// Type implements Message.
func (*StateSync) Type() MsgType { return TStateSync }

// Marshal implements Message.
func (m *StateSync) Marshal(e *Encoder) {
	e.Uint64(m.PrimaryID)
	e.Uint64(m.Epoch)
	e.Uint64(m.Cycle)
	e.Uint64(m.LeaseMicros)
	e.Uint64(uint64(len(m.Members)))
	for i := range m.Members {
		c := &m.Members[i]
		e.Byte(byte(c.Role))
		e.Uint64(c.ID)
		e.Uint64(c.JobID)
		e.Float64(c.Weight)
		e.String(c.Addr)
		e.Uint64(uint64(len(c.Stages)))
		for j := range c.Stages {
			s := &c.Stages[j]
			e.Uint64(s.ID)
			e.Uint64(s.JobID)
			e.Float64(s.Weight)
			e.String(s.Addr)
		}
		e.Uint64(uint64(len(c.Rules)))
		for j := range c.Rules {
			r := &c.Rules[j]
			e.Uint64(r.StageID)
			e.Uint64(r.JobID)
			e.Byte(byte(r.Action))
			e.rates(r.Limit)
		}
	}
	e.Uint64(uint64(len(m.Weights)))
	for i := range m.Weights {
		w := &m.Weights[i]
		e.Uint64(w.JobID)
		e.Float64(w.Weight)
	}
}

// Unmarshal implements Message.
func (m *StateSync) Unmarshal(d *Decoder) {
	m.PrimaryID = d.Uint64()
	m.Epoch = d.Uint64()
	m.Cycle = d.Uint64()
	m.LeaseMicros = d.Uint64()
	n := d.Length()
	if d.Err() != nil {
		return
	}
	if n > 0 {
		m.Members = make([]MemberState, n)
	}
	for i := range m.Members {
		c := &m.Members[i]
		c.Role = Role(d.Byte())
		c.ID = d.Uint64()
		c.JobID = d.Uint64()
		c.Weight = d.Float64()
		c.Addr = d.String()
		ns := d.Length()
		if d.Err() != nil {
			return
		}
		if ns > 0 {
			c.Stages = make([]StageEntry, ns)
			for j := range c.Stages {
				s := &c.Stages[j]
				s.ID = d.Uint64()
				s.JobID = d.Uint64()
				s.Weight = d.Float64()
				s.Addr = d.String()
			}
		}
		nr := d.Length()
		if d.Err() != nil {
			return
		}
		if nr > 0 {
			c.Rules = make([]Rule, nr)
			for j := range c.Rules {
				r := &c.Rules[j]
				r.StageID = d.Uint64()
				r.JobID = d.Uint64()
				r.Action = RuleAction(d.Byte())
				r.Limit = d.rates()
			}
		}
	}
	nw := d.Length()
	if d.Err() != nil || nw == 0 {
		return
	}
	m.Weights = make([]JobWeight, nw)
	for i := range m.Weights {
		w := &m.Weights[i]
		w.JobID = d.Uint64()
		w.Weight = d.Float64()
	}
}

// StateSyncAck confirms a state sync.
type StateSyncAck struct {
	// ID identifies the acknowledging standby.
	ID uint64
	// Epoch is the standby's current leadership epoch. While the lease
	// holds it echoes the primary's; a higher value tells the primary the
	// standby promoted itself and the primary must step down.
	Epoch uint64
}

// Type implements Message.
func (*StateSyncAck) Type() MsgType { return TStateSyncAck }

// Marshal implements Message.
func (m *StateSyncAck) Marshal(e *Encoder) {
	e.Uint64(m.ID)
	e.Uint64(m.Epoch)
}

// Unmarshal implements Message.
func (m *StateSyncAck) Unmarshal(d *Decoder) {
	m.ID = d.Uint64()
	m.Epoch = d.Uint64()
}

// ReportDelta is the event-driven counterpart of CollectReply: a child
// pushes its own report upstream instead of waiting to be polled, so a
// converged fleet costs the controller nothing per cycle. Seq orders pushes
// from one child (the parent ignores reordered stale pushes after a
// reconnect); Full marks baseline resends — the first push on a connection,
// an epoch change, and heartbeat-floor refreshes — which a parent may use to
// distinguish "changed" from "still alive".
type ReportDelta struct {
	// Seq is the child's monotonically increasing push sequence number.
	Seq uint64
	// Full marks a baseline resend rather than a threshold crossing.
	Full bool
	// Epoch is the child's current leadership epoch, so a parent can spot
	// pushes that predate a fencing event.
	Epoch uint64
	// Report is the stage's current metric report.
	Report StageReport
}

// Type implements Message.
func (*ReportDelta) Type() MsgType { return TReportDelta }

// Marshal implements Message.
func (m *ReportDelta) Marshal(e *Encoder) {
	e.Uint64(m.Seq)
	var full byte
	if m.Full {
		full = 1
	}
	e.Byte(full)
	e.Uint64(m.Epoch)
	e.Uint64(m.Report.StageID)
	e.Uint64(m.Report.JobID)
	e.rates(m.Report.Demand)
	e.rates(m.Report.Usage)
}

// Unmarshal implements Message.
func (m *ReportDelta) Unmarshal(d *Decoder) {
	m.Seq = d.Uint64()
	m.Full = d.Byte() != 0
	m.Epoch = d.Uint64()
	m.Report.StageID = d.Uint64()
	m.Report.JobID = d.Uint64()
	m.Report.Demand = d.rates()
	m.Report.Usage = d.rates()
}

// VoteRequest proposes the sender as the next primary controller at Epoch.
// A standby broadcasts it to every controller it knows when its leadership
// lease expires; it becomes primary only after a majority of the quorum
// (itself included — it votes for itself first) grants the proposal. Cycle
// is the candidate's last mirrored control-cycle number: voters refuse
// candidates that lag their own mirror, so the winner always holds the
// freshest replicated state any voter has seen.
type VoteRequest struct {
	// CandidateID identifies the proposing standby.
	CandidateID uint64
	// Epoch is the proposed leadership epoch, strictly above every epoch
	// the candidate has seen or voted for.
	Epoch uint64
	// Cycle is the candidate's last mirrored control-cycle number.
	Cycle uint64
}

// Type implements Message.
func (*VoteRequest) Type() MsgType { return TVoteRequest }

// Marshal implements Message.
func (m *VoteRequest) Marshal(e *Encoder) {
	e.Uint64(m.CandidateID)
	e.Uint64(m.Epoch)
	e.Uint64(m.Cycle)
}

// Unmarshal implements Message.
func (m *VoteRequest) Unmarshal(d *Decoder) {
	m.CandidateID = d.Uint64()
	m.Epoch = d.Uint64()
	m.Cycle = d.Uint64()
}

// LeaseGrant answers a VoteRequest. Granted means the voter durably
// recorded its vote for the request's epoch and will grant no other vote at
// or below it; Epoch then echoes the granted epoch. On denial Epoch carries
// the voter's current leadership epoch (or the higher epoch it already
// voted for), so a losing candidate learns how far it lags before retrying.
type LeaseGrant struct {
	// VoterID identifies the answering controller.
	VoterID uint64
	// Granted reports whether the vote was granted.
	Granted bool
	// Epoch is the granted epoch, or on denial the voter's view of the
	// highest epoch in play.
	Epoch uint64
}

// Type implements Message.
func (*LeaseGrant) Type() MsgType { return TLeaseGrant }

// Marshal implements Message.
func (m *LeaseGrant) Marshal(e *Encoder) {
	e.Uint64(m.VoterID)
	var g byte
	if m.Granted {
		g = 1
	}
	e.Byte(g)
	e.Uint64(m.Epoch)
}

// Unmarshal implements Message.
func (m *LeaseGrant) Unmarshal(d *Decoder) {
	m.VoterID = d.Uint64()
	m.Granted = d.Byte() != 0
	m.Epoch = d.Uint64()
}

// ShardQuery asks a shard leader for its deployment's shard table. Any
// leader can answer: the router hands every shard the same table, and each
// leader overlays its own live epoch. ChildID zero requests the whole table;
// a nonzero ChildID additionally asks which shard currently owns that child
// (placement is deterministic, so any leader computes the same owner).
type ShardQuery struct {
	// ChildID optionally names a child whose owning shard the caller wants.
	ChildID uint64
}

// Type implements Message.
func (*ShardQuery) Type() MsgType { return TShardQuery }

// Marshal implements Message.
func (m *ShardQuery) Marshal(e *Encoder) {
	e.Uint64(m.ChildID)
}

// Unmarshal implements Message.
func (m *ShardQuery) Unmarshal(d *Decoder) {
	m.ChildID = d.Uint64()
}

// ShardEntry is one shard's routing metadata inside a ShardMap.
type ShardEntry struct {
	// Index is the shard's position in the deployment's shard table.
	Index uint64
	// Epoch is the shard leader's leadership epoch — the fencing floor its
	// children enforce. A bumped epoch in a refreshed map tells the caller
	// the shard failed over (or adopted moved children) since the last map.
	Epoch uint64
	// Children is the number of children the shard currently controls.
	Children uint64
	// Addr is the shard leader's registration address.
	Addr string
	// Standbys lists the shard's quorum standby registration addresses, in
	// the order children should walk them when re-homing.
	Standbys []string
}

// ShardMap answers a ShardQuery with the deployment's shard table.
type ShardMap struct {
	// Epoch is the answering leader's own leadership epoch.
	Epoch uint64
	// Owner is the index of the shard owning the queried ChildID; zero and
	// meaningless when the query did not name a child (OwnerValid false).
	Owner uint64
	// OwnerValid reports whether Owner answers a ChildID query.
	OwnerValid bool
	// Entries is the shard table, indexed by shard.
	Entries []ShardEntry
}

// Type implements Message.
func (*ShardMap) Type() MsgType { return TShardMap }

// Marshal implements Message.
func (m *ShardMap) Marshal(e *Encoder) {
	e.Uint64(m.Epoch)
	e.Uint64(m.Owner)
	var v byte
	if m.OwnerValid {
		v = 1
	}
	e.Byte(v)
	e.Uint64(uint64(len(m.Entries)))
	for i := range m.Entries {
		s := &m.Entries[i]
		e.Uint64(s.Index)
		e.Uint64(s.Epoch)
		e.Uint64(s.Children)
		e.String(s.Addr)
		e.Uint64(uint64(len(s.Standbys)))
		for _, sb := range s.Standbys {
			e.String(sb)
		}
	}
}

// Unmarshal implements Message.
func (m *ShardMap) Unmarshal(d *Decoder) {
	m.Epoch = d.Uint64()
	m.Owner = d.Uint64()
	m.OwnerValid = d.Byte() != 0
	m.Entries = sliceFor(m.Entries, d.Length())
	for i := range m.Entries {
		s := &m.Entries[i]
		s.Index = d.Uint64()
		s.Epoch = d.Uint64()
		s.Children = d.Uint64()
		s.Addr = d.String()
		s.Standbys = sliceFor(s.Standbys, d.Length())
		for j := range s.Standbys {
			s.Standbys[j] = d.String()
		}
	}
}

// New returns a zero message of the given type, or nil if the type is
// unknown. It is the decode-side factory used by the RPC layer.
func New(t MsgType) Message {
	switch t {
	case TRegister:
		return &Register{}
	case TRegisterAck:
		return &RegisterAck{}
	case TCollect:
		return &Collect{}
	case TCollectReply:
		return &CollectReply{}
	case TCollectAggReply:
		return &CollectAggReply{}
	case TEnforce:
		return &Enforce{}
	case TEnforceAck:
		return &EnforceAck{}
	case THeartbeat:
		return &Heartbeat{}
	case THeartbeatAck:
		return &HeartbeatAck{}
	case TError:
		return &ErrorReply{}
	case TStageList:
		return &StageList{}
	case TStageListReply:
		return &StageListReply{}
	case TPeerExchange:
		return &PeerExchange{}
	case TPeerExchangeAck:
		return &PeerExchangeAck{}
	case TDelegate:
		return &Delegate{}
	case TStateSync:
		return &StateSync{}
	case TStateSyncAck:
		return &StateSyncAck{}
	case TReportDelta:
		return &ReportDelta{}
	case TVoteRequest:
		return &VoteRequest{}
	case TLeaseGrant:
		return &LeaseGrant{}
	case TShardQuery:
		return &ShardQuery{}
	case TShardMap:
		return &ShardMap{}
	}
	return nil
}

// Encoder/Decoder handles are pooled: Marshal/Unmarshal are interface calls,
// so a per-message &Encoder{} escapes to the heap — at paper scale that is
// four allocations per RPC. The handles hold no buffer ownership; Encode and
// Decode clear the buf reference before returning a handle to its pool so a
// pooled handle never pins a caller's (possibly itself pooled) buffer.
var (
	encoderPool = sync.Pool{New: func() any { return new(Encoder) }}
	decoderPool = sync.Pool{New: func() any { return new(Decoder) }}
)

// Encode appends t's tag and m's body to buf in the v1 codec and returns the
// extended slice.
func Encode(buf []byte, m Message) []byte {
	return EncodeWith(buf, m, CodecV1, nil)
}

// EncodeWith appends t's tag and m's body to buf in codec version ver and
// returns the extended slice. A non-nil hist (v2 only) enables delta coding
// against the previous same-type message encoded through that history; the
// peer must decode with a matching history (see FloatHistory).
func EncodeWith(buf []byte, m Message, ver int, hist *FloatHistory) []byte {
	e := encoderPool.Get().(*Encoder)
	e.buf = buf
	e.ver = ver
	if hist != nil && ver >= CodecV2 {
		e.hist = hist.get(m.Type())
	}
	e.Byte(byte(m.Type()))
	m.Marshal(e)
	if e.hist != nil {
		e.hist.swap()
	}
	out := e.buf
	e.buf, e.ver, e.hist = nil, 0, nil
	encoderPool.Put(e)
	return out
}

// DecodeOpts configures DecodeWith.
type DecodeOpts struct {
	// Version is the codec version the buffer was encoded with.
	Version int
	// Hist, when non-nil, resolves v2 history tags. It must mirror the
	// encoder's history exactly: same messages, same order.
	Hist *FloatHistory
	// Reuse, when non-nil, may return an existing message of the given type
	// to decode into instead of allocating. Returning nil falls back to a
	// fresh message. The decoded message's slices then reuse the previous
	// decode's backing arrays, so callers own the aliasing contract: a
	// reused message is valid only until the next same-type decode that
	// receives the same instance.
	Reuse func(MsgType) Message
}

// Decode parses a tagged v1 message produced by Encode. It verifies the
// whole buffer is consumed. Decoded slices alias buf (see Decoder), never
// the decoder handle, so recycling the handle is invisible to callers.
func Decode(buf []byte) (Message, error) {
	return DecodeWith(buf, nil)
}

// DecodeWith parses a tagged message with explicit codec options. A nil opts
// decodes v1, equivalent to Decode.
func DecodeWith(buf []byte, opts *DecodeOpts) (Message, error) {
	d := decoderPool.Get().(*Decoder)
	*d = Decoder{buf: buf}
	m, err := decode(d, opts)
	*d = Decoder{}
	decoderPool.Put(d)
	return m, err
}

func decode(d *Decoder, opts *DecodeOpts) (Message, error) {
	t := MsgType(d.Byte())
	if d.Err() != nil {
		return nil, d.Err()
	}
	var m Message
	if opts != nil {
		if opts.Reuse != nil {
			m = opts.Reuse(t)
		}
		d.ver = opts.Version
		if opts.Hist != nil && opts.Version >= CodecV2 {
			d.hist = opts.Hist.get(t)
		}
	}
	if m == nil {
		m = New(t)
	}
	if m == nil {
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
	m.Unmarshal(d)
	if d.hist != nil && d.err == nil {
		d.hist.swap()
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("wire: decoding %s: %w", t, err)
	}
	return m, nil
}
