package main

import (
	"testing"

	"github.com/dsrhaslab/sdscale/internal/store"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

func TestParseRates(t *testing.T) {
	cases := []struct {
		in   string
		want wire.Rates
		ok   bool
	}{
		{"1000,100", wire.Rates{1000, 100}, true},
		{" 1.5 , 0.5 ", wire.Rates{1.5, 0.5}, true},
		{"0,0", wire.Rates{}, true},
		{"1000", wire.Rates{}, false},
		{"1,2,3", wire.Rates{}, false},
		{"x,1", wire.Rates{}, false},
		{"", wire.Rates{}, false},
	}
	for _, tc := range cases {
		got, err := parseRates(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseRates(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseRates(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRunStoreInspect(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRegister(wire.MemberState{ID: 7, JobID: 1, Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if err := runStore([]string{"inspect", dir}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := runStore([]string{"inspect"}); err == nil {
		t.Error("inspect without a dir should fail")
	}
	if err := runStore([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := runStore(nil); err == nil {
		t.Error("missing subcommand should fail")
	}
}
