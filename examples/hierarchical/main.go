// Hierarchical: the paper's §IV-B experiment in one program — plus the
// sharded design the paper's scaling question leads to.
//
// Builds a 10,000-node simulated infrastructure (each "compute node" runs
// one virtual data-plane stage, as in the paper) from one declarative
// Topology spec, runs the stress workload — control cycles back-to-back —
// and prints the cycle-latency breakdown and the per-role resource usage
// that Figure 5 and Table III report. The same flag surface also selects
// the flat design and the sharded multi-leader design, because they are
// all one spec:
//
//	go run ./examples/hierarchical                  # 10,000 nodes, fan-in 2500 (4 aggregators)
//	go run ./examples/hierarchical -fanin 500       # 20 aggregators
//	go run ./examples/hierarchical -flat -nodes 2500
//	go run ./examples/hierarchical -shards 4        # 4 concurrent shard leaders
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/dsrhaslab/sdscale"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 10000, "simulated compute nodes (one stage each)")
		fanIn    = flag.Int("fanin", 2500, "stages per aggregator (hierarchical)")
		flat     = flag.Bool("flat", false, "use the flat design instead (requires nodes <= connection limit)")
		shards   = flag.Int("shards", 0, "partition the fleet across this many shard leaders (flat, routed)")
		duration = flag.Duration("duration", 10*time.Second, "stress-workload measurement window")
		jobs     = flag.Int("jobs", 16, "jobs the stages are spread over")
	)
	flag.Parse()

	spec := sdscale.Topology{
		Stages:          *nodes,
		Jobs:            *jobs,
		AggregatorFanIn: *fanIn,
		Net:             sdscale.ExperimentNet(),
	}
	design := "hierarchical"
	switch {
	case *shards > 1:
		spec.AggregatorFanIn = 0
		spec.Shards = *shards
		design = "sharded"
	case *flat:
		spec.AggregatorFanIn = 0
		design = "flat"
	}

	fmt.Printf("building %s control plane over %d nodes", design, *nodes)
	switch design {
	case "hierarchical":
		aggs := (*nodes + *fanIn - 1) / *fanIn
		fmt.Printf(" (%d aggregators, %d nodes each)", aggs, *fanIn)
	case "sharded":
		fmt.Printf(" (%d shard leaders, ~%d nodes each)", *shards, *nodes / *shards)
	}
	fmt.Println(" ...")

	start := time.Now()
	d, err := sdscale.StartTopology(spec)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	defer d.Close()
	fmt.Printf("built in %v; running stress workload for %v\n\n", time.Since(start).Round(time.Millisecond), *duration)

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	if design == "sharded" {
		// Stress the routing tier: whole-deployment cycles back-to-back,
		// every shard leader cycling concurrently. The recorded breakdown
		// is the slowest shard per cycle — the deployment's wall clock.
		for ctx.Err() == nil {
			if _, err := d.RunCycle(ctx); err != nil && ctx.Err() == nil {
				log.Fatalf("cycle: %v", err)
			}
		}
		fmt.Print(d.Summary().String())
		st := d.Stats()
		fmt.Printf("\nper-shard fleet (epoch, children):\n")
		for i, cs := range st.PerShard {
			fmt.Printf("  shard %d: epoch %d, %d children, %d quarantined\n",
				i, cs.Epoch, cs.Children, cs.Quarantined)
		}
		fmt.Printf("\n(four shards cut the per-leader fan-out 4x; the routed cycle is the\n")
		fmt.Printf(" slowest shard, so latency tracks the biggest shard, not the fleet)\n")
		return
	}

	uc := sdscale.NewUsageCollector(d.Cluster())
	uc.Start()
	d.Cluster().Global.Run(ctx, 0) // stress: cycles back-to-back (paper §III-C)
	global, agg, elapsed := uc.Stop()

	fmt.Print(d.Summary().String())
	fmt.Printf("\nresource usage over %v:\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  global:              CPU %5.2f%%  mem %6.3f GB  tx %6.2f MB/s  rx %6.2f MB/s\n",
		global.CPUPercent, global.MemGB(), global.TxMBps, global.RxMBps)
	if design == "hierarchical" {
		fmt.Printf("  per-aggregator mean: CPU %5.2f%%  mem %6.3f GB  tx %6.2f MB/s  rx %6.2f MB/s\n",
			agg.CPUPercent, agg.MemGB(), agg.TxMBps, agg.RxMBps)
	}
	fmt.Printf("\n(paper, 10,000 nodes: 103 ms with 4 aggregators, under 70 ms with 20;\n")
	fmt.Printf(" absolute values differ with host speed — compare shapes across runs)\n")
}
