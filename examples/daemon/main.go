// Daemon configuration: the JSON file `sdsctl serve` runs from, driven
// through the public API.
//
// The daemon's contract is a single config file: the Topology spec fields
// (stages, jobs, shards, capacity, ...) plus the runtime knobs the serve
// loop owns (control interval, job weights, the SLO elasticity block).
// This example parses one, lowers it onto a Topology, starts the
// deployment, and then hot-reloads two edited versions against it the way
// the daemon does on SIGHUP: a safe edit (fleet grow + QoS retune) is
// absorbed live with zero dropped cycles, and an unsafe edit (changing the
// job count) is rejected wholesale — nothing applied, the running config
// stays in force, and the error names the offending field.
//
// For the real thing — the serve loop, the polling file watcher, SIGHUP,
// graceful SIGTERM drain — write this file to disk and run:
//
//	sdsctl serve -config sdscale.json
//
// Run with:
//
//	go run ./examples/daemon
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/dsrhaslab/sdscale"
)

// base is a complete daemon config: an 8-stage fleet over 2 jobs, a 2:1
// oversubscribed PFS, cycles every 250ms.
const base = `{
	"stages":   8,
	"jobs":     2,
	"capacity": [4000, 400],
	"workload": "constant:1000,100",
	"interval": "250ms"
}`

// grown is the same deployment after an operator edit: four more stages
// and double weight for job 1. Both changes are safe deltas — the daemon
// applies them between two control cycles.
const grown = `{
	"stages":     12,
	"jobs":       2,
	"capacity":   [4000, 400],
	"workload":   "constant:1000,100",
	"interval":   "250ms",
	"jobWeights": {"1": 2}
}`

// unsafe tries to change the job count, which would re-partition every
// stage's identity; that needs a restart, so the reload must be rejected.
const unsafe = `{
	"stages":   12,
	"jobs":     4,
	"capacity": [4000, 400],
	"workload": "constant:1000,100",
	"interval": "250ms"
}`

func main() {
	ctx := context.Background()

	cf, err := sdscale.ParseConfig([]byte(base))
	if err != nil {
		log.Fatalf("parse config: %v", err)
	}
	topo, err := sdscale.TopologyFromConfig(cf)
	if err != nil {
		log.Fatalf("lower config: %v", err)
	}
	d, err := sdscale.StartTopology(topo)
	if err != nil {
		log.Fatalf("start topology: %v", err)
	}
	defer d.Close()

	if _, err := d.RunCycle(ctx); err != nil {
		log.Fatalf("cycle: %v", err)
	}
	fmt.Printf("running: %d stages, interval %v\n", d.Stats().Stages, cf.CycleInterval())

	// A safe reload: DiffConfig classifies the edit, ApplyConfig absorbs
	// it. The daemon does exactly this at the next cycle boundary after
	// SIGHUP or a watcher-detected file change.
	next, err := sdscale.ParseConfig([]byte(grown))
	if err != nil {
		log.Fatalf("parse edited config: %v", err)
	}
	delta, err := d.ApplyConfig(ctx, cf, next)
	if err != nil {
		log.Fatalf("apply config: %v", err)
	}
	cf = next
	if _, err := d.RunCycle(ctx); err != nil {
		log.Fatalf("cycle after reload: %v", err)
	}
	fmt.Printf("reloaded (%v): now %d stages, every stage holds a rule: %v\n",
		delta, d.Stats().Stages, allRuled(d))

	// An unsafe reload: the whole edit is rejected and the running config
	// stays in force — there is no partial application.
	bad, err := sdscale.ParseConfig([]byte(unsafe))
	if err != nil {
		log.Fatalf("parse unsafe config: %v", err)
	}
	if _, err := d.ApplyConfig(ctx, cf, bad); err == nil {
		log.Fatal("unsafe config was not rejected")
	} else {
		fmt.Printf("rejected: %v\n", err)
	}
	fmt.Printf("still running: %d stages under the previous config\n", d.Stats().Stages)
}

// allRuled reports whether every stage holds an enforced rule — the
// zero-rule-loss invariant a reload must preserve.
func allRuled(d *sdscale.Deployment) bool {
	for _, st := range d.Cluster().Stages {
		if _, ok := st.LastRule(); !ok {
			return false
		}
	}
	return true
}
