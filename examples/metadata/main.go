// Metadata: per-class QoS — protecting the metadata server from a
// file-swarm job.
//
// The Cheferd work underlying the paper exists because metadata-intensive
// jobs (creating millions of small files) can melt a PFS's metadata server
// while barely touching the data path. sdscale manages the two operation
// classes independently: this demo runs
//
//   - a checkpoint job: bursts of large writes, metadata-light;
//   - a file-swarm job: thousands of small files, metadata-heavy;
//
// against a PFS whose MDS sustains only 600 metadata ops/s. Without
// control, the swarm job monopolizes the MDS and the checkpoint job's
// opens stall behind it. With the control plane on, PSFA arbitrates the
// metadata class while leaving both jobs' data classes unconstrained.
//
// This example uses manual assembly (StartEnforcingStage + StartGlobal)
// because it runs enforcing stages against a PFS simulator with per-stage
// weights — below the uniform virtual fleets sdscale.StartTopology
// declares.
//
// Run with:
//
//	go run ./examples/metadata
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/dsrhaslab/sdscale"
)

const (
	mdsCapacity = 600 // metadata ops/s the MDS sustains
	phaseTime   = 4 * time.Second
)

func main() {
	net := sdscale.NewSimNet(sdscale.SimNetConfig{})
	fs := sdscale.NewFileSystem(sdscale.FileSystemConfig{
		OSTs:        8,
		OSTCapacity: 5000,
		MDSCapacity: mdsCapacity,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	mkStage := func(id, job uint64, weight float64) *sdscale.EnforcingStage {
		st, err := sdscale.StartEnforcingStage(sdscale.EnforcingStageConfig{
			ID: id, JobID: job, Weight: weight,
			Network: net.Host(fmt.Sprintf("stage-%d", id)),
			FS:      fs,
			Window:  500 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("stage: %v", err)
		}
		return st
	}
	checkpointStage := mkStage(1, 1, 2) // higher QoS weight
	swarmStage := mkStage(2, 2, 1)
	defer checkpointStage.Close()
	defer swarmStage.Close()

	checkpoint := sdscale.StartJob(ctx, checkpointStage, sdscale.JobPattern{
		Ranks: 8, FilesPerBurst: 1, OpsPerFile: 40,
	})
	swarm := sdscale.StartJob(ctx, swarmStage, sdscale.MetadataHeavyPattern(50))
	defer checkpoint.Stop()
	defer swarm.Stop()

	report := func(label string, window time.Duration, before, after [2]sdscale.JobStats) {
		fmt.Printf("%s\n", label)
		names := []string{"checkpoint (weight 2)", "file swarm (weight 1)"}
		for i := range names {
			meta := float64(after[i].MetaOps-before[i].MetaOps) / window.Seconds()
			data := float64(after[i].DataOps-before[i].DataOps) / window.Seconds()
			fmt.Printf("  %-22s %7.0f meta ops/s  %7.0f data ops/s\n", names[i], meta, data)
		}
		fmt.Println()
	}
	snap := func() [2]sdscale.JobStats {
		return [2]sdscale.JobStats{checkpoint.Stats(), swarm.Stats()}
	}

	fmt.Printf("MDS capacity: %d metadata ops/s; data path has ample headroom\n\n", mdsCapacity)

	time.Sleep(time.Second) // warm up
	before := snap()
	time.Sleep(phaseTime)
	after := snap()
	report("phase 1 — no control plane (the swarm floods the MDS):", phaseTime, before, after)

	global, err := sdscale.StartGlobal(sdscale.GlobalConfig{
		Network:  net.Host("controller"),
		Capacity: sdscale.Rates{40000, mdsCapacity * 9 / 10},
	})
	if err != nil {
		log.Fatalf("controller: %v", err)
	}
	defer global.Close()
	for _, st := range []*sdscale.EnforcingStage{checkpointStage, swarmStage} {
		if err := global.AddStage(ctx, st.Info()); err != nil {
			log.Fatalf("attach: %v", err)
		}
	}
	loopCtx, stopLoop := context.WithCancel(ctx)
	defer stopLoop()
	go global.Run(loopCtx, 100*time.Millisecond)

	time.Sleep(2 * time.Second) // converge
	before = snap()
	time.Sleep(phaseTime)
	after = snap()
	report("phase 2 — PSFA on the metadata class (weights 2:1):", phaseTime, before, after)

	for _, st := range []*sdscale.EnforcingStage{checkpointStage, swarmStage} {
		limits, _ := st.Limits()
		fmt.Printf("  job %d limits: data %6.0f, meta %5.0f ops/s\n",
			st.Info().JobID, limits[sdscale.ClassData], limits[sdscale.ClassMeta])
	}
	fmt.Println("\nthe metadata class is arbitrated 2:1 while both data paths run unthrottled")
}
