package monitor

import (
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport"
)

func TestSamplerCollectsSeries(t *testing.T) {
	var meter transport.Meter
	s := StartSampler(20*time.Millisecond, &meter)

	// Generate some traffic between samples.
	for i := 0; i < 5; i++ {
		meter.AddTx(1000)
		meter.AddRx(500)
		time.Sleep(25 * time.Millisecond)
	}
	samples := s.Stop()
	if len(samples) < 3 {
		t.Fatalf("collected %d samples, want >= 3", len(samples))
	}
	var sawTraffic bool
	for i, sm := range samples {
		if sm.RSSBytes == 0 {
			t.Errorf("sample %d has zero RSS", i)
		}
		if sm.When.IsZero() {
			t.Errorf("sample %d has zero timestamp", i)
		}
		if sm.TxMBps > 0 {
			sawTraffic = true
		}
	}
	if !sawTraffic {
		t.Error("no sample observed the metered traffic")
	}
	// Timestamps strictly increase.
	for i := 1; i < len(samples); i++ {
		if !samples[i].When.After(samples[i-1].When) {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
}

func TestSamplerNilMeter(t *testing.T) {
	s := StartSampler(10*time.Millisecond, nil)
	time.Sleep(35 * time.Millisecond)
	samples := s.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples without a meter")
	}
	for _, sm := range samples {
		if sm.TxMBps != 0 || sm.RxMBps != 0 {
			t.Error("network rates nonzero without a meter")
		}
	}
}

func TestSamplerStopIdempotent(t *testing.T) {
	s := StartSampler(10*time.Millisecond, nil)
	time.Sleep(15 * time.Millisecond)
	a := s.Stop()
	b := s.Stop()
	if len(b) < len(a) {
		t.Error("second Stop lost samples")
	}
}

func TestSamplerDefaultInterval(t *testing.T) {
	s := StartSampler(0, nil) // must not panic; defaults to 1s
	s.Stop()
}

func TestSamplesCSV(t *testing.T) {
	samples := []Sample{
		{When: time.UnixMilli(1000), CPUPercent: 12.5, RSSBytes: 4096, TxMBps: 1.5, RxMBps: 0.5},
		{When: time.UnixMilli(2000), CPUPercent: 0, RSSBytes: 8192},
	}
	out := SamplesCSV(samples)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d", len(lines))
	}
	if lines[0] != "1000,12.50,4096,1.5000,0.5000" {
		t.Errorf("row 0 = %q", lines[0])
	}
	if got, want := len(strings.Split(lines[0], ",")), len(strings.Split(SamplesCSVHeader, ",")); got != want {
		t.Errorf("field count %d != header %d", got, want)
	}
	if SamplesCSV(nil) != "" {
		t.Error("CSV of nothing is nonempty")
	}
}
