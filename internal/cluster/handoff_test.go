package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

// TestShardedDuplicateRegisterAfterMove pins the handoff's registration
// guard: a stage Register that lags a completed move — a retry the child
// queued before the destination adopted it — must not resurrect the child
// on its old shard. Without the guard the old shard would re-add the child,
// call it at its stale epoch, get fenced, and step down entirely.
func TestShardedDuplicateRegisterAfterMove(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 20, Jobs: 4, Shards: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Move one child away from its placement shard.
	const childID = 1
	src, _ := c.Router.Route(childID)
	dst := 1 - src
	if err := c.Router.Move(ctx, childID, dst); err != nil {
		t.Fatal(err)
	}
	before := c.Globals[src].NumChildren()

	// The lagging duplicate Register lands on the old shard and must be
	// turned away, naming the owner.
	_, err = stage.RegisterAny(ctx, c.Net.Host("stage-1"), []string{c.Globals[src].Addr()},
		c.Stages[childID-1].Info(), stage.RegisterOptions{Attempts: 1})
	if err == nil {
		t.Fatal("duplicate register on the old shard succeeded")
	}
	if !strings.Contains(err.Error(), "belongs to shard") {
		t.Fatalf("rejection does not name the owning shard: %v", err)
	}
	if got := c.Globals[src].NumChildren(); got != before {
		t.Fatalf("old shard re-adopted the moved child: %d -> %d children", before, got)
	}

	// Ownership is undisturbed and the old shard still leads its own
	// children: the routed cycle reaches the whole fleet.
	if s, _ := c.Router.Route(childID); s != dst {
		t.Fatalf("Route(%d) = shard %d, want %d", childID, s, dst)
	}
	if _, err := c.RunControlCycle(ctx); err != nil {
		t.Fatalf("cycle after rejected duplicate register: %v", err)
	}

	// A Register from a child this shard does own still works: the guard
	// blocks foreign children, not re-registration.
	ownID := uint64(0)
	for _, id := range c.Globals[src].ChildIDs() {
		ownID = id
		break
	}
	if ownID == 0 {
		t.Fatal("old shard has no children left")
	}
	if _, err := stage.RegisterAny(ctx, c.Net.Host(fmt.Sprintf("stage-%d", ownID)),
		[]string{c.Globals[src].Addr()}, c.Stages[ownID-1].Info(),
		stage.RegisterOptions{Attempts: 1}); err != nil {
		t.Fatalf("legitimate re-registration rejected: %v", err)
	}
}

// TestShardedRebalanceRaceWithCycles stress-tests concurrent handoffs
// against quiesced incremental cycles under -race: moves ping-pong children
// off placement while the router runs whole-deployment cycles, then a final
// rebalance converges everything home. No child may be lost, double-owned,
// or left without its rules.
func TestShardedRebalanceRaceWithCycles(t *testing.T) {
	const stages = 60
	c, err := Build(Config{
		Topology:         Flat,
		Stages:           stages,
		Jobs:             4,
		Shards:           4,
		Net:              fastNet(),
		DeltaEnforcement: true,
		Incremental:      true,
		IncrementalFloor: time.Hour,
		PushFloor:        time.Hour,
		Workload:         workload.Constant{Rates: wire.Rates{1000, 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Converge and quiesce: rules settle, pushes drain, the incremental
	// cycles go quiet — so concurrent cycles and moves exercise the
	// membership bookkeeping, not enforce/fence races.
	for i := 0; i < 3; i++ {
		if _, err := c.RunControlCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(150 * time.Millisecond)
	if _, err := c.RunControlCycle(ctx); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var cycleErr, moveErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				cycleErr = err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for round := 0; round < 5; round++ {
			for id := uint64(1); id <= 8; id++ {
				dst := (c.Router.Place(id) + 1) % c.Router.NumShards()
				if err := c.Router.Move(ctx, id, dst); err != nil {
					moveErr = err
					return
				}
			}
			if _, err := c.Router.Rebalance(ctx); err != nil {
				moveErr = err
				return
			}
		}
	}()
	wg.Wait()
	if cycleErr != nil {
		t.Fatalf("concurrent cycle: %v", cycleErr)
	}
	if moveErr != nil {
		t.Fatalf("concurrent move/rebalance: %v", moveErr)
	}

	// Converged end state: every child owned exactly once, on its
	// placement shard, and a routed cycle still reaches the whole fleet.
	if _, err := c.Router.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := make(map[uint64]int)
	for s, g := range c.Globals {
		for _, id := range g.ChildIDs() {
			if prev, dup := seen[id]; dup {
				t.Fatalf("child %d owned by both shard %d and shard %d", id, prev, s)
			}
			seen[id] = s
			if want := c.Router.Place(id); want != s {
				t.Errorf("child %d on shard %d after rebalance, placement says %d", id, s, want)
			}
		}
		total += g.NumChildren()
	}
	if total != stages {
		t.Fatalf("fleet children = %d after churn, want %d", total, stages)
	}
	if _, err := c.RunControlCycle(ctx); err != nil {
		t.Fatalf("cycle after churn: %v", err)
	}
}
