// Package trace provides lightweight, allocation-conscious span tracing for
// control cycles: one root span per cycle, child spans per phase and per
// child RPC, recorded into a fixed-size ring buffer with O(1) append and no
// locks on the hot path.
//
// Each controller owns its own Tracer (per-controller buffers), so appends
// never contend across controllers. Within one Tracer, appends from many
// goroutines (the RPC read loops, server handler loops, and the controller's
// cycle goroutine) coordinate through a single atomic cursor; every slot
// field is itself atomic and published under a seqlock-style sequence word,
// so readers never block writers and the race detector sees no unsynchronized
// access.
//
// Ring invariants:
//
//   - The cursor only grows; slot i holds the append numbered n where
//     n % capacity == i and n is the highest such number so far.
//   - A writer invalidates its slot (seq=0), stores the span fields, then
//     publishes by storing its append number into seq. Readers snapshot a
//     slot by loading seq, copying the fields, and re-loading seq; any
//     mismatch (or zero) discards the copy.
//   - A torn read can only be published if an appender stalls for an entire
//     ring generation while a same-slot successor completes around it;
//     capacity (minimum 1024) exceeds any realistic number of concurrent
//     appenders by orders of magnitude, so snapshots are consistent in
//     practice and always data-race-free.
//
// A nil *Tracer is a valid, disabled tracer: every method is a no-op (or
// returns zero values), so call sites need no nil branches.
//
// # Sampling
//
// Per-call timing is not free: each timed call costs a handful of clock
// reads and a ring append on both sides of the connection, which on small
// hosts is measurable against a microsecond-scale dispatch path. A tracer
// therefore supports frame-ID sampling (SetSampleEvery): every call is still
// counted exactly (one atomic add), but only calls whose frame ID falls on
// the sample grid get timestamps and a span. Because the client and server
// see the same frame IDs, both sides sample the same calls, so a sampled
// client span always has its matching server span. New tracers sample every
// call (full fidelity); deployments that must stay inside a tight overhead
// budget lower the rate.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/sdscale/internal/telemetry"
)

// Kind classifies a span.
type Kind uint8

// Span kinds.
const (
	// KindCycle is one whole control cycle (collect → compute → enforce).
	KindCycle Kind = iota + 1
	// KindPhase is one cycle phase at a controller.
	KindPhase
	// KindCall is one client-side child RPC: issue → completion, with
	// marshal and connection-write sub-timings. The remainder
	// (Dur − PartA − PartB) is time in flight: wire plus server queue,
	// handler, and response delivery.
	KindCall
	// KindServer is one server-side request: frame arrival → response
	// written, with queue-wait and handler sub-timings.
	KindServer
)

// String names the kind for dumps.
func (k Kind) String() string {
	switch k {
	case KindCycle:
		return "cycle"
	case KindPhase:
		return "phase"
	case KindCall:
		return "call"
	case KindServer:
		return "server"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Phase identifies the cycle phase a span belongs to.
type Phase uint8

// Phases. PhaseProbe marks breaker half-open probe traffic, issued outside
// the collect/enforce fan-outs while a child's circuit breaker is open.
const (
	PhaseNone Phase = iota
	PhaseCollect
	PhaseCompute
	PhaseEnforce
	PhaseProbe
)

// String names the phase for dumps and metric labels.
func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseCollect:
		return "collect"
	case PhaseCompute:
		return "compute"
	case PhaseEnforce:
		return "enforce"
	case PhaseProbe:
		return "probe"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Span flags.
const (
	// FlagErr marks a span whose operation failed (call error, fenced or
	// otherwise failed cycle).
	FlagErr uint8 = 1 << iota
	// FlagAbandoned marks a call whose caller gave up (context cancellation)
	// before completion arrived; the span closes at abandonment time.
	FlagAbandoned
)

// Span is one decoded ring entry.
type Span struct {
	// Seq is the publication sequence number; higher is newer.
	Seq uint64
	// Kind classifies the span.
	Kind Kind
	// Phase is the cycle phase (KindPhase, KindCall); PhaseNone otherwise.
	Phase Phase
	// Mode is the fan-out mode the owning controller dispatched with
	// (0 pipelined, 1 blocking).
	Mode uint8
	// Flags carries FlagErr / FlagAbandoned.
	Flags uint8
	// Cycle is the control-cycle number the span belongs to (0 if unknown,
	// e.g. server spans).
	Cycle uint64
	// Epoch is the leadership epoch the span was recorded under.
	Epoch uint64
	// Tag identifies the participant: the child ID for KindCall spans, the
	// peer connection hash (AddrTag) for KindServer spans.
	Tag uint64
	// Call is the RPC frame ID (KindCall, KindServer), correlating a client
	// span with the matching server span across the two processes.
	Call uint64
	// Start is the span's start time.
	Start time.Time
	// Dur is the span's total duration.
	Dur time.Duration
	// PartA is the first sub-timing: marshal time (KindCall) or queue wait
	// (KindServer).
	PartA time.Duration
	// PartB is the second sub-timing: connection-write time (KindCall) or
	// handler time (KindServer).
	PartB time.Duration
}

// Err reports whether the span's operation failed.
func (s Span) Err() bool { return s.Flags&FlagErr != 0 }

// Abandoned reports whether the span's caller gave up before completion.
func (s Span) Abandoned() bool { return s.Flags&FlagAbandoned != 0 }

// slot is one ring entry. Every field is atomic so concurrent append and
// snapshot are free of data races; seq is the seqlock word.
type slot struct {
	seq   atomic.Uint64
	meta  atomic.Uint64 // kind | phase<<8 | mode<<16 | flags<<24
	cycle atomic.Uint64
	epoch atomic.Uint64
	tag   atomic.Uint64
	call  atomic.Uint64
	start atomic.Int64  // unix nanoseconds
	dur   atomic.Int64  // nanoseconds
	parts atomic.Uint64 // partA | partB<<32, nanoseconds clamped to uint32
}

func packMeta(k Kind, p Phase, mode, flags uint8) uint64 {
	return uint64(k) | uint64(p)<<8 | uint64(mode)<<16 | uint64(flags)<<24
}

func clamp32(ns int64) uint64 {
	if ns < 0 {
		return 0
	}
	if ns > int64(^uint32(0)) {
		return uint64(^uint32(0))
	}
	return uint64(ns)
}

// Totals is the tracer's cumulative, hot-path-cheap accounting: plain atomic
// sums that the tracebreak experiment and the Prometheus endpoint read
// without scanning the ring. Each field is individually consistent; the
// struct as a whole is not an atomic snapshot.
type Totals struct {
	// Cycles counts recorded cycle spans.
	Cycles uint64
	// ClientCalls counts every completed client call (sampled or not);
	// ClientErrors the failed ones; Abandoned the context-abandoned ones.
	ClientCalls, ClientErrors, Abandoned uint64
	// ClientSampled counts the client calls that were timed and got a span.
	// Equal to ClientCalls when the tracer samples every call.
	ClientSampled uint64
	// ClientDur is the summed issue→completion time of the sampled client
	// calls; ClientMarshal and ClientWrite are the summed frame-encode and
	// connection-write sub-timings. ClientDur − ClientMarshal − ClientWrite
	// is sampled time in flight (wire + server); scale by
	// ClientCalls/ClientSampled to estimate all-calls totals.
	ClientDur, ClientMarshal, ClientWrite time.Duration
	// ServerCalls counts every handled request; ServerSampled the ones that
	// were timed and got a span; ServerDur, ServerQueue, ServerHandler and
	// ServerWrite are the sampled requests' summed total, queue-wait,
	// handler, and response-write times.
	ServerCalls, ServerSampled                         uint64
	ServerDur, ServerQueue, ServerHandler, ServerWrite time.Duration
}

// Tracer records spans into a fixed-size ring. The zero value is not usable;
// use New. A nil Tracer is a disabled tracer: all methods no-op.
type Tracer struct {
	slots []slot
	mask  uint64

	// sampleMask selects which frame IDs are timed and recorded as spans:
	// id&sampleMask == 0. Zero (the default) samples every call. Written
	// only before the tracer is shared (SetSampleEvery), read on the hot
	// path without synchronization.
	sampleMask uint64

	cursor atomic.Uint64 // total appends; next slot = cursor % len(slots)

	// Cycle context, set once per phase by the owning controller and folded
	// into every client call span recorded while it is current. One Tracer
	// must therefore belong to exactly one controller (server-only tracers,
	// which never set a context, may be shared).
	ctxCycle atomic.Uint64
	ctxEpoch atomic.Uint64
	ctxMeta  atomic.Uint64 // mode | phase<<8

	// Cumulative totals (see Totals).
	nCycles, nClientCalls, nClientErrs, nAbandoned     atomic.Uint64
	nClientSampled                                     atomic.Uint64
	clientDur, clientMarshal, clientWrite              atomic.Int64
	nServerCalls, nServerSampled                       atomic.Uint64
	serverDur, serverQueue, serverHandler, serverWrite atomic.Int64
}

// DefaultCapacity is the ring size New selects for capacity <= 0.
const DefaultCapacity = 1 << 14

// New creates a tracer whose ring holds capacity spans, rounded up to a
// power of two (minimum 1024). capacity <= 0 selects DefaultCapacity.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1024
	for n < capacity {
		n <<= 1
	}
	return &Tracer{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// SetSampleEvery sets the call-sampling rate: calls whose frame ID is a
// multiple of every (rounded up to a power of two) are timed and recorded as
// spans; all other calls are counted but not timed. every <= 1 restores full
// fidelity. Call it before the tracer is shared with clients or servers — it
// is not synchronized against concurrent recording.
func (t *Tracer) SetSampleEvery(every int) {
	if t == nil {
		return
	}
	if every <= 1 {
		t.sampleMask = 0
		return
	}
	n := 1
	for n < every {
		n <<= 1
	}
	t.sampleMask = uint64(n - 1)
}

// SampleEvery returns the sampling rate set by SetSampleEvery (1 when every
// call is sampled, 0 for a nil tracer).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleMask) + 1
}

// Sampled reports whether the call with the given frame ID should be timed
// and recorded as a span. Both ends of a connection see the same frame IDs,
// so a sampled client call meets a sampled server request.
func (t *Tracer) Sampled(id uint64) bool {
	return t != nil && id&t.sampleMask == 0
}

// Cap returns the ring capacity (0 for a nil tracer).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Appends returns the total number of spans ever appended; min(Appends, Cap)
// entries are currently resident.
func (t *Tracer) Appends() uint64 {
	if t == nil {
		return 0
	}
	return t.cursor.Load()
}

// SetContext publishes the owning controller's current cycle context:
// subsequent client call spans recorded through this tracer carry the given
// cycle number, epoch, fan-out mode, and phase. Call it at each phase start
// (three atomic stores; not per call).
func (t *Tracer) SetContext(cycle, epoch uint64, mode uint8, phase Phase) {
	if t == nil {
		return
	}
	t.ctxCycle.Store(cycle)
	t.ctxEpoch.Store(epoch)
	t.ctxMeta.Store(uint64(mode) | uint64(phase)<<8)
}

// append reserves the next slot and publishes one span. Sequence numbers
// start at 1 so 0 always means "never written".
func (t *Tracer) append(meta, cycle, epoch, tag, call uint64, startNs, durNs int64, partANs, partBNs int64) {
	n := t.cursor.Add(1) // reservation number; also the publication seq
	s := &t.slots[(n-1)&t.mask]
	s.seq.Store(0) // invalidate while the fields are in flux
	s.meta.Store(meta)
	s.cycle.Store(cycle)
	s.epoch.Store(epoch)
	s.tag.Store(tag)
	s.call.Store(call)
	s.start.Store(startNs)
	s.dur.Store(durNs)
	s.parts.Store(clamp32(partANs) | clamp32(partBNs)<<32)
	s.seq.Store(n)
}

// RecordCycle records one control cycle's root span.
func (t *Tracer) RecordCycle(cycle, epoch uint64, mode uint8, start time.Time, dur time.Duration, failed bool) {
	if t == nil {
		return
	}
	var flags uint8
	if failed {
		flags = FlagErr
	}
	t.nCycles.Add(1)
	t.append(packMeta(KindCycle, PhaseNone, mode, flags), cycle, epoch, 0, 0,
		start.UnixNano(), int64(dur), 0, 0)
}

// RecordPhase records one cycle phase's span.
func (t *Tracer) RecordPhase(phase Phase, cycle, epoch uint64, mode uint8, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.append(packMeta(KindPhase, phase, mode, 0), cycle, epoch, 0, 0,
		start.UnixNano(), int64(dur), 0, 0)
}

// RecordClientCall records one client-side RPC span. tag is the connection's
// span tag (the controller sets its child's ID), call the frame ID; startNs
// is the issue time in unix nanoseconds and durNs/marshalNs/writeNs the
// total, frame-encode, and connection-write times. The current cycle context
// supplies cycle, epoch, mode, and phase. Called from the RPC client's
// completion paths — off the fan-out critical path in pipelined mode.
func (t *Tracer) RecordClientCall(tag, call uint64, startNs, durNs, marshalNs, writeNs int64, failed, abandoned bool) {
	if t == nil {
		return
	}
	var flags uint8
	if failed {
		flags |= FlagErr
	}
	if abandoned {
		flags |= FlagAbandoned
	}
	t.nClientCalls.Add(1)
	t.nClientSampled.Add(1)
	if failed {
		t.nClientErrs.Add(1)
	}
	if abandoned {
		t.nAbandoned.Add(1)
	}
	t.clientDur.Add(durNs)
	t.clientMarshal.Add(marshalNs)
	t.clientWrite.Add(writeNs)
	meta := t.ctxMeta.Load()
	t.append(packMeta(KindCall, Phase(meta>>8), uint8(meta), flags),
		t.ctxCycle.Load(), t.ctxEpoch.Load(), tag, call, startNs, durNs, marshalNs, writeNs)
}

// CountClientCall accounts a completed client call that was not sampled:
// it lands in ClientCalls (and ClientErrors/Abandoned) but carries no
// timings and no span. One to three atomic adds — the entire hot-path cost
// of tracing an unsampled call.
func (t *Tracer) CountClientCall(failed, abandoned bool) {
	if t == nil {
		return
	}
	t.nClientCalls.Add(1)
	if failed {
		t.nClientErrs.Add(1)
	}
	if abandoned {
		t.nAbandoned.Add(1)
	}
}

// CountServerCall accounts a handled request that was not sampled.
func (t *Tracer) CountServerCall() {
	if t == nil {
		return
	}
	t.nServerCalls.Add(1)
}

// RecordServerCall records one server-side request span: arrival → response
// written, with queue-wait and handler sub-timings. tag identifies the peer
// connection (AddrTag of its remote address).
func (t *Tracer) RecordServerCall(tag, call uint64, startNs, durNs, queueNs, handlerNs, writeNs int64) {
	if t == nil {
		return
	}
	t.nServerCalls.Add(1)
	t.nServerSampled.Add(1)
	t.serverDur.Add(durNs)
	t.serverQueue.Add(queueNs)
	t.serverHandler.Add(handlerNs)
	t.serverWrite.Add(writeNs)
	t.append(packMeta(KindServer, PhaseNone, 0, 0), 0, 0, tag, call, startNs, durNs, queueNs, handlerNs)
}

// Totals returns the cumulative accounting since creation (or the last
// Reset).
func (t *Tracer) Totals() Totals {
	if t == nil {
		return Totals{}
	}
	return Totals{
		Cycles:        t.nCycles.Load(),
		ClientCalls:   t.nClientCalls.Load(),
		ClientErrors:  t.nClientErrs.Load(),
		Abandoned:     t.nAbandoned.Load(),
		ClientSampled: t.nClientSampled.Load(),
		ClientDur:     time.Duration(t.clientDur.Load()),
		ClientMarshal: time.Duration(t.clientMarshal.Load()),
		ClientWrite:   time.Duration(t.clientWrite.Load()),
		ServerCalls:   t.nServerCalls.Load(),
		ServerSampled: t.nServerSampled.Load(),
		ServerDur:     time.Duration(t.serverDur.Load()),
		ServerQueue:   time.Duration(t.serverQueue.Load()),
		ServerHandler: time.Duration(t.serverHandler.Load()),
		ServerWrite:   time.Duration(t.serverWrite.Load()),
	}
}

// Reset zeroes the cumulative totals and invalidates every ring entry. It
// may run concurrently with appends; spans recorded while Reset is in
// progress may survive it.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.nCycles.Store(0)
	t.nClientCalls.Store(0)
	t.nClientErrs.Store(0)
	t.nAbandoned.Store(0)
	t.nClientSampled.Store(0)
	t.clientDur.Store(0)
	t.clientMarshal.Store(0)
	t.clientWrite.Store(0)
	t.nServerCalls.Store(0)
	t.nServerSampled.Store(0)
	t.serverDur.Store(0)
	t.serverQueue.Store(0)
	t.serverHandler.Store(0)
	t.serverWrite.Store(0)
	for i := range t.slots {
		t.slots[i].seq.Store(0)
	}
}

// Snapshot copies every valid ring entry, ordered oldest to newest. It takes
// no locks: each slot is validated with its sequence word, so a slot being
// overwritten mid-copy is skipped rather than returned torn.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		for {
			n1 := s.seq.Load()
			if n1 == 0 {
				break // never written, or invalidated by an in-flight append
			}
			meta := s.meta.Load()
			sp := Span{
				Seq:   n1,
				Kind:  Kind(meta),
				Phase: Phase(meta >> 8),
				Mode:  uint8(meta >> 16),
				Flags: uint8(meta >> 24),
				Cycle: s.cycle.Load(),
				Epoch: s.epoch.Load(),
				Tag:   s.tag.Load(),
				Call:  s.call.Load(),
				Start: time.Unix(0, s.start.Load()),
				Dur:   time.Duration(s.dur.Load()),
			}
			parts := s.parts.Load()
			sp.PartA = time.Duration(uint32(parts))
			sp.PartB = time.Duration(uint32(parts >> 32))
			if s.seq.Load() != n1 {
				continue // overwritten mid-copy; retry (new span or skip)
			}
			out = append(out, sp)
			break
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Dump writes a human-readable span listing, oldest first.
func (t *Tracer) Dump(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "trace: disabled")
		return err
	}
	spans := t.Snapshot()
	if _, err := fmt.Fprintf(w, "trace: %d spans resident (%d appended, capacity %d)\n",
		len(spans), t.Appends(), t.Cap()); err != nil {
		return err
	}
	for _, s := range spans {
		var flags string
		if s.Err() {
			flags += " ERR"
		}
		if s.Abandoned() {
			flags += " ABANDONED"
		}
		if _, err := fmt.Fprintf(w, "#%-8d %-7s %-8s cycle=%d epoch=%d tag=%d call=%d dur=%v a=%v b=%v%s\n",
			s.Seq, s.Kind, s.Phase, s.Cycle, s.Epoch, s.Tag, s.Call, s.Dur, s.PartA, s.PartB, flags); err != nil {
			return err
		}
	}
	return nil
}

// ChildLatency is one child's slowest resident call.
type ChildLatency struct {
	// Tag is the child's span tag (its ID).
	Tag uint64
	// Dur is the slowest resident call's duration; Cycle and Phase locate it.
	Dur   time.Duration
	Cycle uint64
	Phase Phase
}

// SlowestChildren scans the resident client call spans and returns the k
// children with the slowest single call, slowest first. It is a snapshot
// query (O(capacity) scan at scrape time), keeping the per-call hot path
// free of any top-k bookkeeping.
func (t *Tracer) SlowestChildren(k int) []ChildLatency {
	if t == nil || k <= 0 {
		return nil
	}
	worst := make(map[uint64]ChildLatency)
	for _, s := range t.Snapshot() {
		if s.Kind != KindCall {
			continue
		}
		if w, ok := worst[s.Tag]; !ok || s.Dur > w.Dur {
			worst[s.Tag] = ChildLatency{Tag: s.Tag, Dur: s.Dur, Cycle: s.Cycle, Phase: s.Phase}
		}
	}
	out := make([]ChildLatency, 0, len(worst))
	for _, w := range worst {
		out = append(out, w)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dur != out[b].Dur {
			return out[a].Dur > out[b].Dur
		}
		return out[a].Tag < out[b].Tag
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Histograms digests the resident spans into per-kind duration histograms:
// one per cycle phase (KindPhase spans), one for client calls, and one for
// server requests. Like SlowestChildren it works from a snapshot, so
// percentiles cover the ring's residency window, not all time.
func (t *Tracer) Histograms() map[string]*telemetry.Histogram {
	if t == nil {
		return nil
	}
	out := make(map[string]*telemetry.Histogram)
	get := func(name string) *telemetry.Histogram {
		h := out[name]
		if h == nil {
			h = &telemetry.Histogram{}
			out[name] = h
		}
		return h
	}
	for _, s := range t.Snapshot() {
		switch s.Kind {
		case KindCycle:
			get("cycle").Record(s.Dur)
		case KindPhase:
			get("phase_" + s.Phase.String()).Record(s.Dur)
		case KindCall:
			get("call").Record(s.Dur)
			get("call_marshal").Record(s.PartA)
			get("call_write").Record(s.PartB)
		case KindServer:
			get("server").Record(s.Dur)
			get("server_queue").Record(s.PartA)
			get("server_handler").Record(s.PartB)
		}
	}
	return out
}

// AddrTag hashes a network address string to a span tag (FNV-1a). Server
// spans tag the peer's remote address with it; a client's local address
// hashes to the same tag, correlating the two sides of a connection.
func AddrTag(addr string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	return h
}
