package cluster

import (
	"context"
	"testing"
)

// cycleAndCheckRules runs one control cycle and asserts every stage holds a
// rule — the no-rule-loss invariant every reshape must preserve.
func cycleAndCheckRules(t *testing.T, c *Cluster) {
	t.Helper()
	if _, err := c.RunControlCycle(context.Background()); err != nil {
		t.Fatalf("cycle: %v", err)
	}
	for i, v := range c.Stages {
		if _, ok := v.LastRule(); !ok {
			t.Fatalf("stage %d (id %d) has no rule after reshape", i, v.Info().ID)
		}
	}
}

func TestGrowShrinkAggregators(t *testing.T) {
	c, err := Build(Config{Topology: Hierarchical, Stages: 60, Jobs: 4, Aggregators: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	cycleAndCheckRules(t, c)

	if err := c.GrowAggregators(ctx); err != nil {
		t.Fatal(err)
	}
	if c.NumAggregators() != 3 {
		t.Fatalf("aggregators = %d, want 3", c.NumAggregators())
	}
	// The grown tier is balanced: 60 stages over 3 aggregators = 20 each,
	// and the global controller sees all 60 through its stage lists.
	for i, a := range c.Aggregators {
		if n := a.NumStages(); n != 20 {
			t.Errorf("aggregator %d manages %d stages, want 20", i, n)
		}
	}
	if n := c.Global.NumStages(); n != 60 {
		t.Fatalf("global sees %d stages, want 60", n)
	}
	cycleAndCheckRules(t, c)

	if err := c.ShrinkAggregators(ctx); err != nil {
		t.Fatal(err)
	}
	if c.NumAggregators() != 2 {
		t.Fatalf("aggregators = %d, want 2", c.NumAggregators())
	}
	if n := c.Global.NumStages(); n != 60 {
		t.Fatalf("global sees %d stages after shrink, want 60", n)
	}
	cycleAndCheckRules(t, c)

	// The tier never shrinks below one.
	if err := c.ShrinkAggregators(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.ShrinkAggregators(ctx); err == nil {
		t.Fatal("shrank below one aggregator")
	}
}

func TestSetStagesFlat(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 10, Jobs: 4, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.SetStages(ctx, 16); err != nil {
		t.Fatal(err)
	}
	if len(c.Stages) != 16 || c.Global.NumStages() != 16 {
		t.Fatalf("fleet = %d stages, global sees %d, want 16/16", len(c.Stages), c.Global.NumStages())
	}
	cycleAndCheckRules(t, c)

	if err := c.SetStages(ctx, 6); err != nil {
		t.Fatal(err)
	}
	if len(c.Stages) != 6 || c.Global.NumStages() != 6 {
		t.Fatalf("fleet = %d stages, global sees %d, want 6/6", len(c.Stages), c.Global.NumStages())
	}
	cycleAndCheckRules(t, c)

	// Re-grow mints fresh IDs — no collision with the shrunken stages.
	if err := c.SetStages(ctx, 8); err != nil {
		t.Fatal(err)
	}
	cycleAndCheckRules(t, c)

	if err := c.SetStages(ctx, 0); err == nil {
		t.Fatal("shrank the fleet to zero")
	}
}

func TestSetStagesHierarchical(t *testing.T) {
	c, err := Build(Config{Topology: Hierarchical, Stages: 20, Jobs: 4, Aggregators: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.SetStages(ctx, 30); err != nil {
		t.Fatal(err)
	}
	if n := c.Global.NumStages(); n != 30 {
		t.Fatalf("global sees %d stages, want 30", n)
	}
	// Growth spread over the tier, not piled on one aggregator.
	for i, a := range c.Aggregators {
		if n := a.NumStages(); n != 15 {
			t.Errorf("aggregator %d manages %d, want 15", i, n)
		}
	}
	cycleAndCheckRules(t, c)

	if err := c.SetStages(ctx, 12); err != nil {
		t.Fatal(err)
	}
	if n := c.Global.NumStages(); n != 12 {
		t.Fatalf("global sees %d stages, want 12", n)
	}
	cycleAndCheckRules(t, c)
}

func TestSetStagesSharded(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 40, Jobs: 4, Shards: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.SetStages(ctx, 60); err != nil {
		t.Fatal(err)
	}
	if st := c.Router.Stats(); st.Children != 60 {
		t.Fatalf("router sees %d children, want 60", st.Children)
	}
	cycleAndCheckRules(t, c)

	if err := c.SetStages(ctx, 25); err != nil {
		t.Fatal(err)
	}
	if st := c.Router.Stats(); st.Children != 25 {
		t.Fatalf("router sees %d children, want 25", st.Children)
	}
	cycleAndCheckRules(t, c)

	if err := c.SetStages(ctx, 1); err == nil {
		t.Fatal("shrank the fleet below the live shard count")
	}
}

func TestResizeShards(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 60, Jobs: 4, Shards: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	cycleAndCheckRules(t, c)

	if err := c.ResizeShards(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if c.Router.NumShards() != 4 || len(c.Globals) != 4 {
		t.Fatalf("shards = %d leaders = %d, want 4/4", c.Router.NumShards(), len(c.Globals))
	}
	total := 0
	for s := 0; s < 4; s++ {
		n := c.Router.Group(s).Leader().NumChildren()
		if n == 0 {
			t.Errorf("shard %d owns no children after grow", s)
		}
		total += n
	}
	if total != 60 {
		t.Fatalf("fleet children = %d, want 60", total)
	}
	cycleAndCheckRules(t, c)

	if err := c.ResizeShards(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if c.Router.NumShards() != 2 || len(c.Globals) != 2 {
		t.Fatalf("shards = %d leaders = %d, want 2/2", c.Router.NumShards(), len(c.Globals))
	}
	total = 0
	for s := 0; s < 2; s++ {
		total += c.Router.Group(s).Leader().NumChildren()
	}
	if total != 60 {
		t.Fatalf("fleet children = %d after shrink, want 60", total)
	}
	cycleAndCheckRules(t, c)

	if err := c.ResizeShards(ctx, 0); err == nil {
		t.Fatal("resized to zero shards")
	}
	if err := c.ResizeShards(ctx, 61); err == nil {
		t.Fatal("resized to more shards than stages")
	}
}

func TestSetJobWeightLive(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 8, Jobs: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cycleAndCheckRules(t, c)

	// Job 1's weight triples: its stages' allocation must strictly grow
	// relative to job 2's on the next cycle.
	before := stageLimitByJob(c)
	c.SetJobWeight(1, 3)
	cycleAndCheckRules(t, c)
	after := stageLimitByJob(c)
	if !(after[1][0] > before[1][0]) {
		t.Fatalf("job 1 data limit did not grow after weight bump: %v -> %v", before[1], after[1])
	}
	if !(after[2][0] < before[2][0]) {
		t.Fatalf("job 2 data limit did not yield: %v -> %v", before[2], after[2])
	}
}

// stageLimitByJob sums each job's enforced per-stage data/meta limits.
func stageLimitByJob(c *Cluster) map[uint64][2]float64 {
	out := make(map[uint64][2]float64)
	for _, v := range c.Stages {
		r, ok := v.LastRule()
		if !ok {
			continue
		}
		cur := out[v.Info().JobID]
		cur[0] += r.Limit[0]
		cur[1] += r.Limit[1]
		out[v.Info().JobID] = cur
	}
	return out
}
