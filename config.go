package sdscale

import (
	"context"
	"fmt"

	"github.com/dsrhaslab/sdscale/internal/config"
)

// Daemon-facing configuration surface. A Config is the JSON file `sdsctl
// serve` loads: the Topology spec fields plus the runtime knobs the serve
// loop owns (control interval, job weights, SLO elasticity bounds).
// TopologyFromConfig lowers a file onto a Topology; ApplyConfig absorbs a
// reloaded file's safe deltas into a running Deployment.
type (
	// Config is a parsed daemon configuration file. See the package
	// internal/config for field-by-field reload semantics.
	Config = config.File
	// ConfigDelta is the set of safe changes between two Configs — what a
	// running deployment applies live.
	ConfigDelta = config.Delta
	// ConfigSLO is the elasticity block of a Config.
	ConfigSLO = config.SLO
)

// LoadConfig reads and validates the daemon configuration file at path.
func LoadConfig(path string) (*Config, error) { return config.Load(path) }

// ParseConfig decodes and validates a daemon configuration from bytes.
// Unknown fields are an error.
func ParseConfig(data []byte) (*Config, error) { return config.Parse(data) }

// DiffConfig classifies the change from old to next: safe deltas come back
// in the ConfigDelta, unsafe changes (topology shape, durability, workload,
// capacity, endpoint) are an error naming the fields.
func DiffConfig(old, next *Config) (ConfigDelta, error) { return config.Diff(old, next) }

// TopologyFromConfig lowers a configuration file onto the Topology spec it
// describes. The runtime knobs the file also carries (interval, poll, job
// weights, debug endpoint, SLO) are the daemon's to consume — they do not
// appear in the Topology.
func TopologyFromConfig(f *Config) (Topology, error) {
	t := Topology{
		Stages:          f.Stages,
		Jobs:            f.Jobs,
		Shards:          f.Shards,
		Standbys:        f.Standbys,
		AggregatorFanIn: f.AggregatorFanIn,
		VirtualNodes:    f.VirtualNodes,
		DataDir:         f.DataDir,
		Incremental:     f.Incremental,
	}
	if f.Workload != "" {
		g, err := ParseWorkload(f.Workload)
		if err != nil {
			return Topology{}, fmt.Errorf("sdscale: config workload: %w", err)
		}
		t.Workload = g
	}
	if len(f.Capacity) > 0 {
		var r Rates
		copy(r[:], f.Capacity)
		t.Capacity = r
	}
	return t, nil
}

// ApplyConfig absorbs the safe deltas between old and next into the running
// deployment: job weights retune allocation, fleet and shard sizes grow or
// shrink live. An unsafe change rejects the whole reload — nothing is
// applied and the returned error names the offending fields. Interval, poll
// and SLO changes are reported in the delta for the caller (the daemon's
// serve loop owns those knobs). Both configs must already be validated.
func (d *Deployment) ApplyConfig(ctx context.Context, old, next *Config) (ConfigDelta, error) {
	delta, err := config.Diff(old, next)
	if err != nil {
		return ConfigDelta{}, err
	}
	d.opMu.Lock()
	defer d.opMu.Unlock()
	for id, w := range delta.JobWeights {
		d.c.SetJobWeight(id, w)
	}
	if delta.Shards != 0 && delta.Shards != d.NumShards() {
		if err := d.c.ResizeShards(ctx, delta.Shards); err != nil {
			return delta, err
		}
	}
	if delta.Stages != 0 {
		if err := d.c.SetStages(ctx, delta.Stages); err != nil {
			return delta, err
		}
	}
	return delta, nil
}

// SetStages grows or shrinks the stage fleet to target, attaching new
// stages through whatever tier the deployment runs (shard leaders,
// aggregators, or the single controller).
func (d *Deployment) SetStages(ctx context.Context, target int) error {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	return d.c.SetStages(ctx, target)
}

// Resize changes the number of concurrently active shard leaders to target,
// rebalancing every child onto the new ring. Only standbys-free sharded
// deployments support resizing.
func (d *Deployment) Resize(ctx context.Context, target int) error {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	return d.c.ResizeShards(ctx, target)
}

// SetJobWeight retunes one job's QoS weight on every controller; the next
// control cycle reallocates under the new weight.
func (d *Deployment) SetJobWeight(jobID uint64, weight float64) {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	d.c.SetJobWeight(jobID, weight)
}

// NumAggregators returns the aggregator-tier size (zero for flat and
// sharded deployments).
func (d *Deployment) NumAggregators() int {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	return d.c.NumAggregators()
}

// GrowAggregators adds one aggregator to a hierarchical deployment's tier,
// re-homing stages from the most loaded aggregators until the tier is
// balanced. It is the elasticity loop's grow actuator.
func (d *Deployment) GrowAggregators(ctx context.Context) error {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	return d.c.GrowAggregators(ctx)
}

// ShrinkAggregators removes the most recently added aggregator, re-homing
// its stages over the survivors. It is the elasticity loop's shrink
// actuator.
func (d *Deployment) ShrinkAggregators(ctx context.Context) error {
	d.opMu.Lock()
	defer d.opMu.Unlock()
	return d.c.ShrinkAggregators(ctx)
}
