package wire

import (
	"math"
	"testing"
)

// TestFloat64V2RoundTrip checks the tagged float encoding on the values that
// pick each tag, without history: zeros, small integrals, and raw fallbacks
// including the non-finite values.
func TestFloat64V2RoundTrip(t *testing.T) {
	values := []float64{
		0, math.Copysign(0, -1), 1, 2, 1000, 1 << 20, 1 << 53,
		float64(1<<53) * 2, 0.5, -1, -42.25, 1e300, -1e300,
		math.Inf(1), math.Inf(-1), math.NaN(),
		12345.678, 1e-300,
	}
	e := &Encoder{ver: CodecV2}
	for _, v := range values {
		e.Float64(v)
	}
	d := &Decoder{buf: e.Bytes(), ver: CodecV2}
	for i, want := range values {
		got := d.Float64()
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Fatalf("value %d: want NaN, got %v", i, got)
			}
			continue
		}
		// -0 canonicalizes to +0 (tag f2Zero) but compares equal; everything
		// else is exact.
		if got != want {
			t.Fatalf("value %d: want %v, got %v", i, want, got)
		}
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
}

// TestFloat64V2History drives matched encoder/decoder histories through a
// sequence of messages and checks exact reconstruction plus the size win:
// a repeated message is all f2Same tags, one byte per float.
func TestFloat64V2History(t *testing.T) {
	msgs := []*CollectReply{
		{Cycle: 1, Reports: []StageReport{{StageID: 7, JobID: 1, Demand: Rates{100, 3.5}, Usage: Rates{90, 3.5}}}},
		{Cycle: 2, Reports: []StageReport{{StageID: 7, JobID: 1, Demand: Rates{100, 3.5}, Usage: Rates{90, 3.5}}}},
		{Cycle: 3, Reports: []StageReport{{StageID: 7, JobID: 1, Demand: Rates{103, 3.5}, Usage: Rates{90.25, 4}}}},
		{Cycle: 4, Reports: []StageReport{}},
		{Cycle: 5, Reports: []StageReport{{StageID: 7, JobID: 1, Demand: Rates{103, 3.5}, Usage: Rates{90.25, 4}}}},
	}
	eh, dh := NewFloatHistory(), NewFloatHistory()
	var sizes []int
	for i, m := range msgs {
		buf := EncodeWith(nil, m, CodecV2, eh)
		sizes = append(sizes, len(buf))
		got, err := DecodeWith(buf, &DecodeOpts{Version: CodecV2, Hist: dh})
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		r := got.(*CollectReply)
		if r.Cycle != m.Cycle || len(r.Reports) != len(m.Reports) {
			t.Fatalf("msg %d: got %+v, want %+v", i, r, m)
		}
		for j := range m.Reports {
			if r.Reports[j] != m.Reports[j] {
				t.Fatalf("msg %d report %d: got %+v, want %+v", i, j, r.Reports[j], m.Reports[j])
			}
		}
	}
	// Message 1 repeats message 0: every float collapses to a 1-byte f2Same.
	if sizes[1] >= sizes[0] {
		t.Fatalf("repeated message did not shrink: sizes %v", sizes)
	}
	// Message 4 follows an empty message, so its history is empty again and
	// it must still round-trip (checked above) at the stateless size.
}

// TestFloat64V2StatelessRejectsHistoryTags: a history tag arriving on a
// stream decoded without history is corruption, not a zero.
func TestFloat64V2StatelessRejectsHistoryTags(t *testing.T) {
	for _, tag := range []byte{f2Same, f2Delta, 9} {
		d := &Decoder{buf: []byte{tag, 2}, ver: CodecV2}
		d.Float64()
		if d.Err() == nil {
			t.Fatalf("tag %d: want error, got none", tag)
		}
	}
}

// TestV1EncodingUnchanged pins the v1 float layout: fixed 8-byte IEEE 754,
// so pre-v2 peers see byte-identical frames.
func TestV1EncodingUnchanged(t *testing.T) {
	m := &CollectReply{Cycle: 9, Reports: []StageReport{{StageID: 1, JobID: 2, Demand: Rates{3.5, 0}, Usage: Rates{1, 2}}}}
	buf := Encode(nil, m)
	// tag + cycle + len + 2*uvarint ids + 4 floats * 8 bytes
	want := 1 + 1 + 1 + 1 + 1 + 4*8
	if len(buf) != want {
		t.Fatalf("v1 encoding size %d, want %d", len(buf), want)
	}
	if _, err := Decode(buf); err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
}

// TestDecodeReuse checks the zero-alloc decode contract: a reused message's
// backing arrays are recycled, and a shorter (or empty) follow-up decode
// truncates rather than leaving stale entries behind.
func TestDecodeReuse(t *testing.T) {
	reply := &CollectReply{}
	reuse := func(MsgType) Message { return reply }

	long := Encode(nil, &CollectReply{Cycle: 1, Reports: []StageReport{
		{StageID: 1, JobID: 1, Demand: Rates{1, 1}},
		{StageID: 2, JobID: 1, Demand: Rates{2, 2}},
	}})
	got, err := DecodeWith(long, &DecodeOpts{Reuse: reuse})
	if err != nil || got != Message(reply) || len(reply.Reports) != 2 {
		t.Fatalf("first decode: err=%v reports=%d", err, len(reply.Reports))
	}
	backing := &reply.Reports[0]

	short := Encode(nil, &CollectReply{Cycle: 2, Reports: []StageReport{{StageID: 9, JobID: 3}}})
	if _, err := DecodeWith(short, &DecodeOpts{Reuse: reuse}); err != nil {
		t.Fatalf("second decode: %v", err)
	}
	if len(reply.Reports) != 1 || reply.Reports[0].StageID != 9 {
		t.Fatalf("second decode did not truncate: %+v", reply.Reports)
	}
	if &reply.Reports[0] != backing {
		t.Fatalf("second decode reallocated the reports array")
	}

	empty := Encode(nil, &CollectReply{Cycle: 3})
	if _, err := DecodeWith(empty, &DecodeOpts{Reuse: reuse}); err != nil {
		t.Fatalf("empty decode: %v", err)
	}
	if len(reply.Reports) != 0 {
		t.Fatalf("empty decode left %d stale reports", len(reply.Reports))
	}

	// Enforce with zero rules must likewise truncate a reused batch.
	enf := &Enforce{}
	ereuse := func(MsgType) Message { return enf }
	if _, err := DecodeWith(Encode(nil, &Enforce{Cycle: 1, Rules: []Rule{{StageID: 1}}, Epoch: 4}), &DecodeOpts{Reuse: ereuse}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWith(Encode(nil, &Enforce{Cycle: 2, Epoch: 5}), &DecodeOpts{Reuse: ereuse}); err != nil {
		t.Fatal(err)
	}
	if len(enf.Rules) != 0 || enf.Epoch != 5 {
		t.Fatalf("reused enforce holds stale state: %+v", enf)
	}
}

// TestDecodeReuseSteadyStateAllocs: decoding the same shape into a reused
// message must not allocate once the backing arrays exist.
func TestDecodeReuseSteadyStateAllocs(t *testing.T) {
	reply := &CollectReply{}
	opts := &DecodeOpts{Reuse: func(MsgType) Message { return reply }}
	buf := Encode(nil, &CollectReply{Cycle: 1, Reports: []StageReport{{StageID: 1, JobID: 2, Demand: Rates{3, 4}, Usage: Rates{5, 6}}}})
	if _, err := DecodeWith(buf, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := DecodeWith(buf, opts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state reuse decode allocates %.1f/op, want 0", allocs)
	}
}
