package experiment

import (
	"context"
	"testing"
)

// The chaos scenario at reduced scale: cycles keep completing while 10% of
// stages flap, latency stays bounded, and every flapped child is readmitted
// shortly after its partition heals.
func TestChaosReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos scenario runs multi-second fault schedules")
	}
	o := testOptions(0.02) // 50 nodes, 5 flapping
	for attempt := 1; attempt <= 2; attempt++ {
		r, err := Chaos(context.Background(), o)
		if err != nil {
			t.Fatalf("Chaos: %v", err)
		}
		cerr := CheckChaos(r)
		if cerr == nil {
			if r.Flapped != 5 {
				t.Errorf("Flapped = %d, want 5", r.Flapped)
			}
			return
		}
		t.Logf("attempt %d: faults=%v readmit=%d failed=%d baseline=%v max=%v",
			attempt, r.Faults, r.ReadmitCycles, r.FailedCycles,
			r.BaselineMean, r.Chaos.Total.Max)
		if attempt == 2 {
			t.Fatalf("chaos check failed twice: %v", cerr)
		}
		t.Logf("chaos check failed (%v), retrying once", cerr)
	}
}
