package rpc

import (
	"errors"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// StaleEpochError reports whether err is (or wraps) a remote stale-epoch
// rejection and, if so, returns the receiver's current leadership epoch.
// Controllers use it to recognize that they have been deposed: a single
// stale-epoch reply is authoritative and the caller must step down rather
// than retry.
func StaleEpochError(err error) (current uint64, ok bool) {
	var er *wire.ErrorReply
	if errors.As(err, &er) && er.Code == wire.CodeStaleEpoch {
		return er.Epoch, true
	}
	return 0, false
}

// NotLeaderError reports whether err is (or wraps) a remote not-leader
// rejection from an unpromoted standby. Unlike a stale epoch it is
// retryable: the caller should try the next address on its parent list.
func NotLeaderError(err error) bool {
	var er *wire.ErrorReply
	return errors.As(err, &er) && er.Code == wire.CodeNotLeader
}
