package telemetry

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		h.Record(d)
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
	if mean := h.Mean(); mean != 20*time.Millisecond {
		t.Errorf("Mean = %v, want 20ms", mean)
	}
	// Population stddev of {10,20,30} is sqrt(200/3) ≈ 8.165ms.
	want := time.Duration(math.Sqrt(200.0/3.0) * float64(time.Millisecond))
	if sd := h.Stddev(); sd < want-time.Millisecond || sd > want+time.Millisecond {
		t.Errorf("Stddev = %v, want ~%v", sd, want)
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Stddev() != 0 || h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("empty histogram returned nonzero stats")
	}
}

func TestHistogramNegativeDurations(t *testing.T) {
	var h Histogram
	h.Record(-time.Second) // clamps to zero, must not panic
	if h.Count() != 1 {
		t.Errorf("Count = %d, want 1", h.Count())
	}
	if h.Max() != 0 {
		t.Errorf("Max = %v, want 0", h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	// Uniform 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{1.0, 1000 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		// Allow the histogram's ~7% bucket resolution.
		lo := time.Duration(float64(tc.want) * 0.93)
		hi := time.Duration(float64(tc.want) * 1.08)
		if got < lo || got > hi {
			t.Errorf("Quantile(%g) = %v, want within [%v, %v]", tc.q, got, lo, hi)
		}
	}
}

func TestHistogramQuantileClamped(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("Quantile(-1) = %v", got)
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("Quantile(2) = %v", got)
	}
}

func TestHistogramQuantileNeverExceedsMax(t *testing.T) {
	f := func(samplesUS []uint32) bool {
		if len(samplesUS) == 0 {
			return true
		}
		var h Histogram
		var max time.Duration
		for _, us := range samplesUS {
			d := time.Duration(us%10_000_000) * time.Microsecond
			h.Record(d)
			if d > max {
				max = d
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			if h.Quantile(q) > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < int(n)+1; i++ {
			h.Record(time.Duration(rng.Int63n(int64(time.Minute))))
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramBucketRelativeError(t *testing.T) {
	// A single sample's quantile must be within ~8% of the sample.
	for _, d := range []time.Duration{
		1 * time.Microsecond, 41 * time.Millisecond, 103 * time.Millisecond, 7 * time.Second,
	} {
		var h Histogram
		h.Record(d)
		got := h.Quantile(0.5)
		if got < d || float64(got) > float64(d)*1.08 {
			t.Errorf("Quantile for single sample %v = %v (err %.1f%%)",
				d, got, 100*math.Abs(float64(got-d))/float64(d))
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("Reset did not clear histogram")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	// Mean of 1..200 ms is 100.5ms.
	if mean := a.Mean(); mean < 100*time.Millisecond || mean > 101*time.Millisecond {
		t.Errorf("merged mean = %v", mean)
	}
	if a.Min() != time.Millisecond || a.Max() != 200*time.Millisecond {
		t.Errorf("merged extremes = %v/%v", a.Min(), a.Max())
	}
	// Median near 100ms within bucket resolution.
	if p50 := a.Quantile(0.5); p50 < 93*time.Millisecond || p50 > 108*time.Millisecond {
		t.Errorf("merged p50 = %v", p50)
	}
}

func TestHistogramMergeDegenerate(t *testing.T) {
	var a Histogram
	a.Record(time.Second)
	a.Merge(nil) // no-op
	a.Merge(&a)  // self-merge must not deadlock or double-count
	if a.Count() != 1 {
		t.Errorf("count after degenerate merges = %d", a.Count())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 1 || a.Min() != time.Second {
		t.Error("merging an empty histogram changed state")
	}
	// Merging INTO an empty histogram adopts the source's extremes.
	var dst Histogram
	dst.Merge(&a)
	if dst.Min() != time.Second || dst.Max() != time.Second {
		t.Errorf("empty-destination merge extremes = %v/%v", dst.Min(), dst.Max())
	}
}

func TestCycleRecorderMerge(t *testing.T) {
	a, b := NewCycleRecorder(), NewCycleRecorder()
	a.Record(Breakdown{Collect: 10 * time.Millisecond, Total: 10 * time.Millisecond})
	b.Record(Breakdown{Collect: 30 * time.Millisecond, Total: 30 * time.Millisecond})
	a.Merge(b)
	if a.Cycles() != 2 {
		t.Fatalf("merged cycles = %d", a.Cycles())
	}
	if mean := a.Summarize().Collect.Mean; mean != 20*time.Millisecond {
		t.Errorf("merged collect mean = %v", mean)
	}
}

func TestCycleRecorder(t *testing.T) {
	r := NewCycleRecorder()
	for i := 0; i < 10; i++ {
		r.Record(Breakdown{
			Collect: 10 * time.Millisecond,
			Compute: 1 * time.Millisecond,
			Enforce: 20 * time.Millisecond,
			Total:   31 * time.Millisecond,
		})
	}
	if r.Cycles() != 10 {
		t.Errorf("Cycles = %d, want 10", r.Cycles())
	}
	s := r.Summarize()
	if s.Collect.Mean != 10*time.Millisecond {
		t.Errorf("collect mean = %v", s.Collect.Mean)
	}
	if s.Compute.Mean != time.Millisecond {
		t.Errorf("compute mean = %v", s.Compute.Mean)
	}
	if s.Enforce.Mean != 20*time.Millisecond {
		t.Errorf("enforce mean = %v", s.Enforce.Mean)
	}
	if s.Total.Mean != 31*time.Millisecond {
		t.Errorf("total mean = %v", s.Total.Mean)
	}
	if s.Total.Stddev != 0 {
		t.Errorf("stddev of constant series = %v", s.Total.Stddev)
	}
	if s.RelStddev() != 0 {
		t.Errorf("RelStddev = %g", s.RelStddev())
	}

	r.Reset()
	if r.Cycles() != 0 {
		t.Error("Reset did not clear recorder")
	}
}

func TestSummaryString(t *testing.T) {
	r := NewCycleRecorder()
	r.Record(Breakdown{Collect: time.Millisecond, Compute: time.Millisecond, Enforce: time.Millisecond, Total: 3 * time.Millisecond})
	out := r.Summarize().String()
	for _, want := range []string{"cycles: 1", "collect", "compute", "enforce", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSummaryCSV(t *testing.T) {
	r := NewCycleRecorder()
	r.Record(Breakdown{Collect: time.Millisecond, Compute: 2 * time.Millisecond, Enforce: 3 * time.Millisecond, Total: 6 * time.Millisecond})
	header := CSVHeader()
	row := r.Summarize().CSVRow()
	if got, want := len(strings.Split(row, ",")), len(strings.Split(header, ",")); got != want {
		t.Errorf("CSV row has %d fields, header has %d", got, want)
	}
	if !strings.HasPrefix(row, "1,1000.0,2000.0,3000.0,6000.0") {
		t.Errorf("CSV row = %q", row)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseCollect.String() != "collect" || PhaseTotal.String() != "total" {
		t.Error("phase names wrong")
	}
	if Phase(99).String() != "Phase(99)" {
		t.Errorf("unknown phase = %q", Phase(99).String())
	}
}

func TestMeanMatchesExactAverageProperty(t *testing.T) {
	f := func(samplesUS []uint16) bool {
		if len(samplesUS) == 0 {
			return true
		}
		var h Histogram
		var sum float64
		for _, us := range samplesUS {
			h.Record(time.Duration(us) * time.Microsecond)
			sum += float64(us)
		}
		want := sum / float64(len(samplesUS)) // µs
		got := float64(h.Mean()) / float64(time.Microsecond)
		return math.Abs(got-want) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
}
