// Package sdscale is a software-defined storage (SDS) control plane for
// HPC infrastructures, and the reference implementation of the SC 2024
// study "Can Current SDS Controllers Scale To Modern HPC Infrastructures?".
//
// The package exposes the library's public API as a façade over the
// internal packages:
//
//   - Control plane: a Global controller runs the collect → compute →
//     enforce cycle; Aggregator controllers form the optional middle tier
//     of the hierarchical design.
//   - Data plane: Virtual stages (lightweight metric responders, used to
//     simulate large infrastructures exactly as the paper does) and
//     Enforcing stages (token-bucket rate limiters in front of a file
//     system) answer the control plane.
//   - Control algorithms: PSFA (proportional sharing without false
//     allocation) plus baselines.
//   - Transports: an in-process simulated network with per-host
//     connection limits and processing capacities (SimNet), and real TCP
//     (TCPNet).
//   - Harnesses: Cluster builds whole deployments; the experiment
//     runners regenerate every table and figure of the paper.
//
// # Quick start
//
// A deployment is declared as a Topology and started in one call:
//
//	d, _ := sdscale.StartTopology(sdscale.Topology{
//		Stages:   1000,
//		Shards:   4,
//		Standbys: 1,
//	})
//	defer d.Close()
//	d.RunCycle(context.Background())
//	fmt.Println(d.Stats().Children, "children across", d.NumShards(), "shards")
//
// StartTopology returns a Deployment handle with a uniform surface —
// Stats, Route, Rebalance, RunCycle — whatever the shape. A one-shard
// Topology is the classic single-Global control plane.
//
// # Manual assembly
//
// Every controller kind is also launched individually by a Start*
// constructor (StartGlobal, StartAggregator, StartPeerController,
// StartVirtualStage, StartEnforcingStage) and observed through its Stats
// method. This is the manual-assembly path: it exists for programs that
// wire roles one by one across real networks or mix roles StartTopology
// does not cover. New code that just wants a running control plane should
// declare a Topology instead.
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package sdscale

import (
	"context"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/experiment"
	"github.com/dsrhaslab/sdscale/internal/jobsim"
	"github.com/dsrhaslab/sdscale/internal/pfs"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/transport/tcpnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

// Core wire-level types.
type (
	// Rates holds one operations-per-second value per operation class.
	Rates = wire.Rates
	// OpClass distinguishes data from metadata operations.
	OpClass = wire.OpClass
	// Rule is one stage's enforcement directive.
	Rule = wire.Rule
	// RuleAction selects how a stage applies a rule.
	RuleAction = wire.RuleAction
	// StageReport is one stage's metric sample.
	StageReport = wire.StageReport
	// JobReport is a per-job aggregate over many stages.
	JobReport = wire.JobReport
)

// Operation classes.
const (
	// ClassData is the data-path operation class (read/write IOPS).
	ClassData = wire.ClassData
	// ClassMeta is the metadata operation class (open, stat, ...).
	ClassMeta = wire.ClassMeta
)

// Rule actions.
const (
	// ActionSetLimit replaces a stage's rate limits.
	ActionSetLimit = wire.ActionSetLimit
	// ActionNoLimit removes rate limiting at a stage.
	ActionNoLimit = wire.ActionNoLimit
	// ActionPause blocks all I/O at a stage.
	ActionPause = wire.ActionPause
)

// Control plane.
type (
	// Global is the top-level controller (flat or hierarchical).
	Global = controller.Global
	// GlobalConfig configures a Global controller.
	GlobalConfig = controller.GlobalConfig
	// Aggregator is the mid-tier controller of the hierarchical design.
	Aggregator = controller.Aggregator
	// AggregatorConfig configures an Aggregator.
	AggregatorConfig = controller.AggregatorConfig
	// PeerController is one controller of the coordinated flat design
	// (the paper's §VI future work).
	PeerController = controller.Peer
	// PeerControllerConfig configures a PeerController.
	PeerControllerConfig = controller.PeerConfig
	// ControllerStats is the point-in-time operational snapshot every
	// controller kind exposes through its Stats method.
	ControllerStats = controller.ControllerStats
	// FanOutMode selects how a controller's collect and enforce phases
	// dispatch child requests (see FanOutPipelined and FanOutBlocking).
	FanOutMode = controller.FanOutMode
)

// Fan-out dispatch modes.
const (
	// FanOutPipelined streams every child request back-to-back and
	// harvests responses as they arrive — the default.
	FanOutPipelined = controller.FanOutPipelined
	// FanOutBlocking reproduces the paper prototype's bounded blocking
	// pool (one parked goroutine per in-flight call, FanOut wide).
	FanOutBlocking = controller.FanOutBlocking
)

// Controller failover sentinels (see GlobalConfig's Standby, StandbyAddr,
// LeaseTimeout and SyncInterval fields).
var (
	// ErrDeposed is returned by a controller's cycle loop once epoch
	// fencing proved a newer leader holds the control plane.
	ErrDeposed = controller.ErrDeposed
	// ErrStandby is returned when cycles are requested of a standby that
	// has not promoted itself.
	ErrStandby = controller.ErrStandby
)

// StartGlobal launches a global controller with its registration endpoint
// listening (ListenAddr defaults to ":0"). It is the primary entry point of
// the Start* constructor family — the manual-assembly path; a program that
// just wants a running control plane should declare a Topology and call
// StartTopology, which wraps this (a one-shard Topology is exactly one
// Global over the fleet).
func StartGlobal(cfg GlobalConfig) (*Global, error) { return controller.StartGlobal(cfg) }

// NewGlobal creates a global controller without defaulting a listener: with
// an empty ListenAddr the controller runs no registration endpoint and
// children must be attached explicitly. It is a thin alias kept for callers
// that need that; most programs want StartGlobal.
func NewGlobal(cfg GlobalConfig) (*Global, error) { return controller.NewGlobal(cfg) }

// StartAggregator launches an aggregator controller (manual assembly; a
// Topology with AggregatorFanIn set deploys the whole tier declaratively).
func StartAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	return controller.StartAggregator(cfg)
}

// StartPeerController launches one controller of the coordinated flat
// design (manual assembly only — the coordinated design predates the
// sharded Topology and is kept for the paper's §VI experiments).
func StartPeerController(cfg PeerControllerConfig) (*PeerController, error) {
	return controller.StartPeer(cfg)
}

// Data plane.
type (
	// StageInfo identifies a stage to the control plane.
	StageInfo = stage.Info
	// StageConfig configures a virtual stage.
	StageConfig = stage.Config
	// VirtualStage is the paper's lightweight metric-responder stage.
	VirtualStage = stage.Virtual
	// EnforcingStageConfig configures an enforcing stage.
	EnforcingStageConfig = stage.EnforcingConfig
	// EnforcingStage rate limits real operations in front of a file
	// system.
	EnforcingStage = stage.Enforcing
)

// StartVirtualStage launches a virtual stage.
func StartVirtualStage(cfg StageConfig) (*VirtualStage, error) { return stage.StartVirtual(cfg) }

// StartEnforcingStage launches an enforcing stage.
func StartEnforcingStage(cfg EnforcingStageConfig) (*EnforcingStage, error) {
	return stage.StartEnforcing(cfg)
}

// RegisterStage announces a stage to a controller's registration endpoint
// for dynamic membership.
func RegisterStage(ctx context.Context, network Network, controllerAddr string, info StageInfo) error {
	return stage.Register(ctx, network, controllerAddr, info)
}

// Control algorithms.
type (
	// Algorithm computes per-job allocations from demands and capacity.
	Algorithm = controlalg.Algorithm
	// JobInput is one job's state as seen by an Algorithm.
	JobInput = controlalg.JobInput
	// JobAllocation is an Algorithm's output for one job.
	JobAllocation = controlalg.JobAllocation
)

// PSFA returns the paper's control algorithm: proportional sharing
// without false allocation.
func PSFA() Algorithm { return controlalg.PSFA{} }

// NewAlgorithm returns the named algorithm ("psfa", "uniform",
// "weighted-static", "maxmin").
func NewAlgorithm(name string) (Algorithm, error) { return controlalg.New(name) }

// Transports.
type (
	// Network abstracts dialing and listening; SimNet hosts and TCPNet
	// implement it.
	Network = transport.Network
	// SimNet is the in-process simulated network.
	SimNet = simnet.Net
	// SimNetConfig parameterizes a SimNet (latency model, connection
	// limits, per-host processing capacity).
	SimNetConfig = simnet.Config
	// SimHost is one endpoint of a SimNet; it implements Network.
	SimHost = simnet.Host
	// TCPNet is the real-TCP transport.
	TCPNet = tcpnet.Network
)

// NewSimNet creates a simulated network.
func NewSimNet(cfg SimNetConfig) *SimNet { return simnet.New(cfg) }

// NewTCPNet creates a TCP transport.
func NewTCPNet() *TCPNet { return tcpnet.New() }

// Workloads.
type (
	// Generator produces a stage's synthetic demand over time.
	Generator = workload.Generator
	// ConstantWorkload emits fixed demand.
	ConstantWorkload = workload.Constant
	// BurstyWorkload alternates high/low demand phases.
	BurstyWorkload = workload.Bursty
	// RampWorkload linearly grows demand.
	RampWorkload = workload.Ramp
)

// StressWorkload returns the paper's stress workload (§III-C).
func StressWorkload() Generator { return workload.Stress() }

// ParseWorkload builds a generator from a CLI spec such as
// "constant:1000,100" or "bursty:1000,100:2:2".
func ParseWorkload(spec string) (Generator, error) { return workload.Parse(spec) }

// Job simulation.
type (
	// JobPattern describes a simulated HPC job's I/O behaviour.
	JobPattern = jobsim.Pattern
	// SimulatedJob is a running simulated job driving an enforcing stage.
	SimulatedJob = jobsim.Job
	// JobStats snapshots a simulated job's progress.
	JobStats = jobsim.Stats
)

// StartJob launches a simulated job's ranks against an enforcing stage.
func StartJob(ctx context.Context, st *EnforcingStage, p JobPattern) *SimulatedJob {
	return jobsim.Start(ctx, st, p)
}

// CheckpointPattern returns the classic checkpoint/restart I/O pattern.
func CheckpointPattern(compute time.Duration, ops int) JobPattern {
	return jobsim.Checkpoint(compute, ops)
}

// MetadataHeavyPattern returns a small-file-swarm pattern where metadata
// operations dominate.
func MetadataHeavyPattern(files int) JobPattern { return jobsim.MetadataHeavy(files) }

// File system simulation.
type (
	// FileSystem is the Lustre-like shared PFS simulator.
	FileSystem = pfs.FileSystem
	// FileSystemConfig parameterizes the simulator.
	FileSystemConfig = pfs.Config
)

// NewFileSystem creates a simulated parallel file system.
func NewFileSystem(cfg FileSystemConfig) *FileSystem { return pfs.New(cfg) }

// Telemetry.
type (
	// Breakdown is one control cycle's phase timing.
	Breakdown = telemetry.Breakdown
	// Summary digests many cycles' latency statistics.
	Summary = telemetry.Summary
	// FaultCounters tracks a controller's fault handling: quarantines,
	// readmissions, degraded cycles, probes, and stale-report use.
	FaultCounters = telemetry.FaultCounters
	// FaultSummary is a point-in-time digest of FaultCounters.
	FaultSummary = telemetry.FaultSummary
	// PipelineStats instruments a controller's fan-out phases (in-flight
	// gauges, per-cycle allocation counts).
	PipelineStats = telemetry.PipelineStats
	// PipelineSnapshot is a point-in-time digest of PipelineStats,
	// included in ControllerStats.
	PipelineSnapshot = telemetry.PipelineSnapshot
)

// Tracing and the debug endpoint.
type (
	// Tracer records control-cycle, phase, and per-RPC spans into a
	// lock-free ring; a nil Tracer is a disabled one.
	Tracer = trace.Tracer
	// Span is one recorded trace entry.
	Span = trace.Span
	// TraceTotals are a tracer's cumulative counters, readable without
	// scanning the ring.
	TraceTotals = trace.Totals
	// ClusterTrace groups a traced deployment's tracers.
	ClusterTrace = cluster.ClusterTrace
	// DebugServer is the opt-in HTTP endpoint serving /metrics (Prometheus
	// text), /debug/vars, /debug/pprof and /debug/trace.
	DebugServer = trace.DebugServer
	// DebugOptions configures StartDebug; it binds loopback by default.
	DebugOptions = trace.DebugOptions
)

// NewTracer creates a tracer whose ring holds capacity spans (rounded up to
// a power of two; <= 0 selects the default).
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// StartDebug binds the observability endpoint and serves it in the
// background.
func StartDebug(opts DebugOptions) (*DebugServer, error) { return trace.StartDebug(opts) }

// Deployment harness.
type (
	// Cluster is a complete in-process deployment.
	Cluster = cluster.Cluster
	// ClusterConfig describes a deployment to build.
	ClusterConfig = cluster.Config
	// Design selects the control-plane design of a ClusterConfig. (It was
	// previously exported as Topology; that name now belongs to the
	// declarative deployment spec StartTopology consumes.)
	Design = cluster.Topology
	// RoleUsage is one controller role's resource consumption.
	RoleUsage = cluster.RoleUsage
	// UsageCollector measures per-role resource usage over a window.
	UsageCollector = cluster.UsageCollector
)

// Designs.
const (
	// Flat is the single-controller design (paper Fig. 2).
	Flat = cluster.Flat
	// Hierarchical adds aggregator controllers (paper Fig. 3).
	Hierarchical = cluster.Hierarchical
	// Coordinated is the multi-controller flat design with aggregate
	// exchange (paper §VI future work).
	Coordinated = cluster.Coordinated
)

// BuildCluster assembles a complete deployment over a fresh simulated
// network. It is the fully parameterized harness underneath StartTopology;
// prefer declaring a Topology unless a knob only ClusterConfig exposes is
// needed.
func BuildCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.Build(cfg) }

// NewUsageCollector creates a per-role resource collector for a cluster.
func NewUsageCollector(c *Cluster) *UsageCollector { return cluster.NewUsageCollector(c) }

// ExperimentNet returns the calibrated simulated-network model the
// paper-reproduction experiments use (per-host message processing costs,
// default connection limits).
func ExperimentNet() SimNetConfig { return experiment.DefaultNet() }
