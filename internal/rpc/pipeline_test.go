package rpc

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// TestGoWaitRoundTrip pipelines a burst of requests over one connection and
// harvests them in issue order; every reply must match its own request.
func TestGoWaitRoundTrip(t *testing.T) {
	_, _, cli := testSetup(t, &echoHandler{})
	ctx := context.Background()
	const calls = 64
	handles := make([]*Call, calls)
	for i := range handles {
		handles[i] = cli.Go(ctx, &wire.Heartbeat{SentUnixMicros: int64(i)})
	}
	for i, call := range handles {
		resp, err := call.Wait(ctx)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := resp.(*wire.HeartbeatAck).EchoUnixMicros; got != int64(i) {
			t.Errorf("call %d echoed %d", i, got)
		}
	}
}

// TestGoWaitRemoteError checks a remote handler failure surfaces through the
// handle as *wire.ErrorReply, matching the synchronous Call contract.
func TestGoWaitRemoteError(t *testing.T) {
	_, _, cli := testSetup(t, &echoHandler{})
	ctx := context.Background()
	call := cli.Go(ctx, &wire.Enforce{Cycle: 1})
	_, err := call.Wait(ctx)
	var er *wire.ErrorReply
	if !errors.As(err, &er) {
		t.Fatalf("Wait error = %v, want *wire.ErrorReply", err)
	}
}

// TestGoDoneChannel exercises the raw completion-channel pattern: receive
// from Done, then read Reply/Err directly.
func TestGoDoneChannel(t *testing.T) {
	_, _, cli := testSetup(t, &echoHandler{})
	call := cli.Go(context.Background(), &wire.Heartbeat{SentUnixMicros: 9})
	select {
	case done := <-call.Done:
		if done != call {
			t.Fatal("Done delivered a different handle")
		}
		if call.Err != nil {
			t.Fatalf("Err = %v", call.Err)
		}
		if got := call.Reply.(*wire.HeartbeatAck).EchoUnixMicros; got != 9 {
			t.Errorf("echoed %d, want 9", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call never completed")
	}
}

// TestGoAfterClose checks Go on a dead client returns a handle that
// completes immediately with the failure instead of panicking or hanging.
func TestGoAfterClose(t *testing.T) {
	_, _, cli := testSetup(t, &echoHandler{})
	cli.Close()
	call := cli.Go(context.Background(), &wire.Heartbeat{})
	if _, err := call.Wait(context.Background()); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("Wait = %v, want ErrClientClosed", err)
	}
}

// TestRecycledHandleNotPoisonedByLateResponse is the pool-aliasing
// leak-check: a handle abandoned via context is recycled and immediately
// reused by the next call, while the abandoned call's response is still in
// flight. The late response must be dropped (counted in LateResponses), not
// delivered into the recycled handle.
func TestRecycledHandleNotPoisonedByLateResponse(t *testing.T) {
	// A propagation delay keeps the first response in flight while the
	// client abandons the call and recycles its handle.
	n := simnet.New(simnet.Config{PropDelay: 5 * time.Millisecond})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	for round := 0; round < 20; round++ {
		abandoned, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: Wait abandons without blocking
		callA := cli.Go(context.Background(), &wire.Heartbeat{SentUnixMicros: 1000 + int64(round)})
		if _, err := callA.Wait(abandoned); !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: abandoned Wait = %v, want context.Canceled", round, err)
		}
		// callA's handle is back in the pool; callB very likely reuses it
		// while callA's response (or its cancel) is still traveling.
		callB := cli.Go(context.Background(), &wire.Heartbeat{SentUnixMicros: 2000 + int64(round)})
		resp, err := callB.Wait(context.Background())
		if err != nil {
			t.Fatalf("round %d: reused handle call: %v", round, err)
		}
		if got := resp.(*wire.HeartbeatAck).EchoUnixMicros; got != 2000+int64(round) {
			t.Fatalf("round %d: reused handle got reply %d, want %d (stale delivery)", round, got, 2000+round)
		}
	}
	// Every abandoned response must have been dropped or server-cancelled,
	// never delivered: late + server-side cancellations account for all 20.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cli.LateResponses()+srv.CanceledRequests() >= 20 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := cli.LateResponses() + srv.CanceledRequests(); got < 20 {
		t.Errorf("late(%d) + canceled(%d) = %d, want >= 20", cli.LateResponses(), srv.CanceledRequests(), got)
	}
}

// TestConcurrentCallCloseCancel is the race-focused audit of the
// close/fail/cancel interleaving: many goroutines issue calls with
// aggressive timeouts while the client is concurrently closed. Run under
// `go test -race ./internal/rpc`. Every call must return (result or error)
// without deadlock, double completion, or handle corruption.
func TestConcurrentCallCloseCancel(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(peer *Peer, req wire.Message) (wire.Message, error) {
		if hb, ok := req.(*wire.Heartbeat); ok && hb.SentUnixMicros%3 == 0 {
			select { // stall some requests so cancels and Close race dispatch
			case <-block:
			case <-time.After(50 * time.Millisecond):
			}
		}
		return &wire.HeartbeatAck{}, nil
	})
	_, _, cli := testSetup(t, h)
	defer close(block)

	var wg sync.WaitGroup
	const workers = 16
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(),
					time.Duration(rng.Intn(3000))*time.Microsecond)
				cli.Call(ctx, &wire.Heartbeat{SentUnixMicros: int64(w*1000 + i)})
				cancel()
			}
		}(w)
	}
	time.Sleep(10 * time.Millisecond)
	cli.Close() // races with in-flight calls and cancellations
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers deadlocked during concurrent Call+Close+cancel")
	}
}

// TestPipelinedSendsShareBuffers drives concurrent senders with mixed
// payload sizes through the pooled encode buffers; every echo must be
// intact. This is the encode-side no-reuse-while-aliased check: a pooled
// buffer handed to a new frame while the previous write still referenced it
// would corrupt echoes.
func TestPipelinedSendsShareBuffers(t *testing.T) {
	// The handler echoes each request's variable-size Addr back through an
	// ErrorReply so payloads of many sizes cross the shared buffer pool in
	// both directions.
	h := HandlerFunc(func(peer *Peer, req wire.Message) (wire.Message, error) {
		r := req.(*wire.Register)
		return nil, &wire.ErrorReply{Code: uint32(r.ID % 200), Text: r.Addr}
	})
	_, _, cli := testSetup(t, h)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := uint64(w*1000 + i)
				addr := string(bytes.Repeat([]byte{'a' + byte(w)}, 1+(i*37)%900))
				_, err := cli.Call(context.Background(), &wire.Register{ID: id, Addr: addr})
				var er *wire.ErrorReply
				if !errors.As(err, &er) {
					t.Errorf("worker %d call %d: %v", w, i, err)
					return
				}
				if uint64(er.Code) != id%200 || er.Text != addr {
					t.Errorf("worker %d call %d: echo corrupted (code %d, %d-byte text)",
						w, i, er.Code, len(er.Text))
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestDecodedMessageDoesNotAliasFrameBuffer pins the invariant buffer
// recycling depends on: wire.Decoder.Bytes16 aliases its input, so message
// decoders must copy (e.g. via String conversion) before readFrame's buffer
// is reused. Scribbling over the buffer after decode must not change the
// message.
func TestDecodedMessageDoesNotAliasFrameBuffer(t *testing.T) {
	const text = "partition tolerated; degraded collect"
	frame := appendFrame(nil, frameHeader{id: 7, kind: kindResponse},
		&wire.ErrorReply{Code: wire.CodeInternal, Text: text})
	_, body, buf, err := readFrame(bytes.NewReader(frame), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := wire.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xFF // simulate the pooled buffer being reused
	}
	er, ok := m.(*wire.ErrorReply)
	if !ok {
		t.Fatalf("decoded %T", m)
	}
	if er.Text != text {
		t.Fatalf("message aliases recycled frame buffer: %q", er.Text)
	}
}

// TestReconnectingGoFailsFastWhileDown checks the async path keeps the
// reconnect wrapper's fail-fast contract, and that NoteError after a harvest
// kicks the redial.
func TestReconnectingGoFailsFastWhileDown(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	rc, err := DialReconnecting(context.Background(), n.Host("client"), addr, DialOptions{},
		ReconnectPolicy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	ctx := context.Background()
	if _, err := rc.Go(ctx, &wire.Heartbeat{}).Wait(ctx); err != nil {
		t.Fatalf("Go over live connection: %v", err)
	}

	srv.Close()
	// Harvest errors until NoteError notices the dead connection.
	deadline := time.Now().Add(5 * time.Second)
	for rc.Connected() && time.Now().Before(deadline) {
		cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		_, err := rc.Go(cctx, &wire.Heartbeat{}).Wait(cctx)
		rc.NoteError(cctx, err)
		cancel()
	}
	if rc.Connected() {
		t.Fatal("NoteError never detached the dead connection")
	}
	if _, err := rc.Go(ctx, &wire.Heartbeat{}).Wait(ctx); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Go while down = %v, want ErrDisconnected", err)
	}

	// A new server at the same address: the redial must restore service.
	srv2, err := Serve(n.Host("server"), addr, &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := rc.Go(ctx, &wire.Heartbeat{}).Wait(ctx); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("async calls never recovered after redial")
}

// TestCallHandlesRecycled verifies Wait actually returns handles to the
// pool: a long sequential run must reuse a small set of handles rather than
// allocating one per call. (The pool gives no hard guarantee, but in a quiet
// single-goroutine loop reuse is deterministic enough to assert loosely.)
func TestCallHandlesRecycled(t *testing.T) {
	_, _, cli := testSetup(t, &echoHandler{})
	ctx := context.Background()
	seen := make(map[*Call]struct{})
	const calls = 200
	for i := 0; i < calls; i++ {
		call := cli.Go(ctx, &wire.Heartbeat{SentUnixMicros: int64(i)})
		seen[call] = struct{}{}
		if _, err := call.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) > calls/2 {
		t.Errorf("%d distinct handles across %d sequential calls; pool recycling looks broken", len(seen), calls)
	}
}
