// Tracing-overhead budget: control cycles with span tracing enabled (at the
// deployment's default sampling rate) must stay within 2% of untraced
// cycles. The design holds the hot-path cost to one atomic add per
// unsampled call, with timestamps and the lock-free ring append reserved
// for the 1-in-N sampled calls; this test keeps that budget honest.
package sdscale_test

import (
	"context"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
)

// tracingOverheadBudget is the allowed traced/untraced cycle-time ratio.
const tracingOverheadBudget = 1.02

func TestTracingOverheadUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement, skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing budgets are meaningless under the race detector")
	}
	// Interleaved batches with medians absorb host noise (GC, frequency
	// scaling); a genuinely blown budget fails all three attempts.
	var traced, plain time.Duration
	for attempt := 1; attempt <= 3; attempt++ {
		traced, plain = measureTracingOverhead(t)
		ratio := float64(traced) / float64(plain)
		t.Logf("attempt %d: traced %v vs untraced %v per cycle (%+.2f%%)",
			attempt, traced, plain, 100*(ratio-1))
		if ratio <= tracingOverheadBudget {
			return
		}
	}
	t.Fatalf("tracing overhead above %.0f%% in 3 attempts: traced %v vs untraced %v per cycle",
		100*(tracingOverheadBudget-1), traced, plain)
}

// measureTracingOverhead times interleaved cycle batches on two identical
// 1,000-stage flat deployments — one traced, one not — and returns the
// median per-cycle time of each.
func measureTracingOverhead(t *testing.T) (traced, plain time.Duration) {
	t.Helper()
	build := func(tracing bool) *cluster.Cluster {
		c, err := cluster.Build(cluster.Config{
			Topology: cluster.Flat,
			Stages:   1000,
			Tracing:  tracing,
			// Raw transport, as in BenchmarkFlatCycle: no modeled delays, so
			// per-cycle time is the dispatch path the tracer instruments.
			Net: simnet.Config{PropDelay: -1, MaxConnsPerHost: -1},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	ctx := context.Background()
	plainC, tracedC := build(false), build(true)
	for _, c := range []*cluster.Cluster{plainC, tracedC} {
		for i := 0; i < 2; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				t.Fatal(err)
			}
		}
	}

	const batches, perBatch = 8, 5
	timeBatch := func(c *cluster.Cluster) time.Duration {
		start := time.Now()
		for i := 0; i < perBatch; i++ {
			if _, err := c.RunControlCycle(ctx); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start) / perBatch
	}
	// Alternate which deployment goes first so slow drift (GC pressure,
	// frequency scaling) cannot systematically favor one side, and compare
	// fastest batches: the minimum is the noise-floor estimator — host
	// interference only ever slows a batch down, while a real tracing cost
	// shows up in every batch including the fastest.
	var plainNs, tracedNs []time.Duration
	for i := 0; i < batches; i++ {
		if i%2 == 0 {
			plainNs = append(plainNs, timeBatch(plainC))
			tracedNs = append(tracedNs, timeBatch(tracedC))
		} else {
			tracedNs = append(tracedNs, timeBatch(tracedC))
			plainNs = append(plainNs, timeBatch(plainC))
		}
	}
	return minDuration(tracedNs), minDuration(plainNs)
}

func minDuration(ds []time.Duration) time.Duration {
	min := ds[0]
	for _, d := range ds[1:] {
		if d < min {
			min = d
		}
	}
	return min
}
