package cluster

import (
	"context"
	"strings"
	"testing"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

func TestBuildSharded(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 120, Jobs: 4, Shards: 4, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if c.Global != nil {
		t.Error("sharded cluster should not have a single Global")
	}
	if len(c.Globals) != 4 {
		t.Fatalf("shard leaders = %d, want 4", len(c.Globals))
	}
	if c.Router == nil {
		t.Fatal("sharded cluster has no router")
	}
	total := 0
	for s, g := range c.Globals {
		n := g.NumChildren()
		if n == 0 {
			t.Errorf("shard %d owns no children", s)
		}
		total += n
	}
	if total != 120 {
		t.Fatalf("fleet children = %d, want 120", total)
	}
	if st := c.Router.Stats(); st.Children != 120 || st.Stages != 120 {
		t.Errorf("router stats children=%d stages=%d, want 120/120", st.Children, st.Stages)
	}

	if _, err := c.RunControlCycle(context.Background()); err != nil {
		t.Fatalf("cycle: %v", err)
	}
	for i, v := range c.Stages {
		if _, ok := v.LastRule(); !ok {
			t.Fatalf("stage %d got no rule", i)
		}
	}
	if c.Recorder().Cycles() != 1 {
		t.Errorf("recorded cycles = %d, want 1", c.Recorder().Cycles())
	}
}

func TestBuildShardedWithStandbys(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 40, Jobs: 4, Shards: 2, Standbys: 1, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if len(c.Globals) != 2 || len(c.Standbys) != 2 {
		t.Fatalf("leaders = %d standbys = %d, want 2/2", len(c.Globals), len(c.Standbys))
	}
	total := 0
	for _, g := range c.Globals {
		total += g.NumChildren()
	}
	if total != 40 {
		t.Fatalf("fleet children = %d, want 40", total)
	}
	if _, err := c.RunControlCycle(context.Background()); err != nil {
		t.Fatalf("cycle: %v", err)
	}
}

func TestShardedCustomPlacement(t *testing.T) {
	c, err := Build(Config{
		Topology:  Flat,
		Stages:    10,
		Jobs:      2,
		Shards:    2,
		Placement: func(id uint64) int { return int(id % 2) },
		Net:       fastNet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// IDs 1..10: five odd (shard 1), five even (shard 0).
	if n := c.Globals[0].NumChildren(); n != 5 {
		t.Errorf("shard 0 children = %d, want 5", n)
	}
	if n := c.Globals[1].NumChildren(); n != 5 {
		t.Errorf("shard 1 children = %d, want 5", n)
	}
}

func TestShardedValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{
			name: "negative shards",
			cfg:  Config{Stages: 4, Shards: -1},
			want: "Shards must be",
		},
		{
			name: "hierarchical",
			cfg:  Config{Topology: Hierarchical, Stages: 4, Shards: 2},
			want: "flat topology",
		},
		{
			name: "custom placement with standbys",
			cfg: Config{
				Stages:    4,
				Shards:    2,
				Standbys:  1,
				Placement: func(id uint64) int { return 0 },
			},
			want: "default consistent-hash placement",
		},
		{
			name: "placement out of range",
			cfg: Config{
				Stages:    4,
				Shards:    2,
				Placement: func(id uint64) int { return 7 },
			},
			want: "placement sent stage",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Net = fastNet()
			c, err := Build(tc.cfg)
			if err == nil {
				c.Close()
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestShardedMoveAndRebalance(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 20, Jobs: 4, Shards: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	const child = uint64(1)
	home := c.Router.Place(child)
	away := 1 - home

	if err := c.Router.Move(ctx, child, away); err != nil {
		t.Fatalf("move: %v", err)
	}
	if got, g := c.Router.Route(child); got != away || g != c.Globals[away] {
		t.Fatalf("after move, child routed to shard %d, want %d", got, away)
	}
	// The destination fenced the source by raising its epoch.
	if c.Globals[away].Epoch() <= c.Globals[home].Epoch() {
		t.Errorf("destination epoch %d not above source epoch %d",
			c.Globals[away].Epoch(), c.Globals[home].Epoch())
	}

	// A cycle still reaches every stage, including the moved one.
	if _, err := c.RunControlCycle(ctx); err != nil {
		t.Fatalf("cycle: %v", err)
	}

	moved, err := c.Router.Rebalance(ctx)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if moved != 1 {
		t.Errorf("rebalance moved %d children, want 1", moved)
	}
	if got, _ := c.Router.Route(child); got != home {
		t.Fatalf("after rebalance, child on shard %d, want %d", got, home)
	}
	if st := c.Router.Stats(); st.Moves != 2 || st.Rebalances != 1 {
		t.Errorf("stats moves=%d rebalances=%d, want 2/1", st.Moves, st.Rebalances)
	}
}

func TestShardedEnforceUniform(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 20, Jobs: 4, Shards: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 20 stages over 4 jobs: 5 stages serve job 1.
	applied, err := c.Router.EnforceUniform(context.Background(), 1, wire.ActionSetLimit, wire.Rates{100, 10})
	if err != nil {
		t.Fatalf("enforce: %v", err)
	}
	if applied != 5 {
		t.Errorf("applied = %d, want 5", applied)
	}
}
