package experiment

import (
	"context"
	"fmt"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
)

// ChaosNodes is the flat deployment size the chaos scenario runs at. It
// matches the paper's flat-design maximum (§IV-A) so the fault-tolerance
// machinery is exercised at the same scale the latency results come from.
const ChaosNodes = 2500

// ChaosFlapFraction is the share of stage hosts the scenario flaps.
const ChaosFlapFraction = 0.10

// chaos scenario timing. The breaker is tuned fast so the whole scenario
// fits in seconds: a child is quarantined after two failed calls and
// probed every 25ms (backing off to 200ms while the partition holds).
const (
	chaosMaxFailures   = 2
	chaosProbeInterval = 25 * time.Millisecond
	chaosMaxProbe      = 200 * time.Millisecond
	chaosCallTimeout   = 250 * time.Millisecond
	chaosStaleAfter    = 2 * time.Second
	chaosCyclePeriod   = 25 * time.Millisecond // control-loop pacing
	chaosDownFor       = 150 * time.Millisecond
	chaosFlapPeriod    = 400 * time.Millisecond
	chaosFlapRounds    = 2
	chaosReadmitCycles = 5 // readmission budget after the last heal
)

// ChaosResult reports the fault-injection scenario's outcome.
type ChaosResult struct {
	// Nodes is the stage count; Flapped is how many of them were
	// partitioned and healed by the fault schedule.
	Nodes, Flapped int
	// BaselineMean is the mean control-cycle latency before any fault.
	BaselineMean time.Duration
	// Chaos summarizes cycle latency measured while faults were active.
	Chaos telemetry.Summary
	// FailedCycles counts control cycles that returned an error during the
	// fault window (the degraded-mode requirement is that this stays 0).
	FailedCycles int
	// ReadmitCycles is how many paced cycles after the final heal it took
	// for the quarantine set to drain to zero (-1 if it never drained).
	ReadmitCycles int
	// Faults is the controller's fault-handling telemetry.
	Faults telemetry.FaultSummary
	// ShutdownStrikes counts breaker strikes charged by a cycle run under
	// an already-canceled context (must be 0: caller cancellation is not a
	// child failure).
	ShutdownStrikes uint64
}

// Chaos runs the fault-injection scenario: a flat deployment at the flat
// design's maximum scale, with 10% of its stage hosts flapping (partition,
// then heal) on a scripted schedule while control cycles keep running at a
// fixed period. It measures that cycles keep completing in degraded mode,
// that latency stays bounded, and that every flapped child is readmitted
// within a few cycles of its partition healing.
func Chaos(ctx context.Context, o Options) (ChaosResult, error) {
	o = o.withDefaults()
	nodes := o.scaled(ChaosNodes)
	flapped := int(float64(nodes) * ChaosFlapFraction)
	if flapped < 1 {
		flapped = 1
	}

	c, err := cluster.Build(cluster.Config{
		Topology:         cluster.Flat,
		Stages:           nodes,
		Jobs:             o.Jobs,
		Net:              *o.Net,
		CallTimeout:      chaosCallTimeout,
		MaxFailures:      chaosMaxFailures,
		ProbeInterval:    chaosProbeInterval,
		MaxProbeInterval: chaosMaxProbe,
		StaleAfter:       chaosStaleAfter,
	})
	if err != nil {
		return ChaosResult{}, fmt.Errorf("experiment chaos: %w", err)
	}
	defer c.Close()
	g := c.Global

	r := ChaosResult{Nodes: nodes, Flapped: flapped}

	// Baseline: warm up, then measure a few fault-free cycles.
	for i := 0; i < o.Warmup; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			return r, fmt.Errorf("experiment chaos: warmup: %w", err)
		}
	}
	g.Recorder().Reset()
	for i := 0; i < o.MinCycles; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			return r, fmt.Errorf("experiment chaos: baseline: %w", err)
		}
	}
	r.BaselineMean = g.Recorder().Summarize().Total.Mean
	g.Recorder().Reset()

	// Fault window: flap the first 10% of stage hosts (staggered partitions
	// with heals chaosDownFor later) while cycles run at a fixed period, as
	// a real control loop would.
	hosts := make([]string, flapped)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("stage-%d", i+1)
	}
	schedule := c.Net.Schedule(simnet.FlapSchedule(hosts, 0, chaosDownFor, chaosFlapPeriod, chaosFlapRounds))
	defer schedule.Stop()

	scheduleDone := make(chan struct{})
	go func() { schedule.Wait(); close(scheduleDone) }()
	ticker := time.NewTicker(chaosCyclePeriod)
	defer ticker.Stop()
faultLoop:
	for {
		if _, err := g.RunCycle(ctx); err != nil {
			r.FailedCycles++
		}
		select {
		case <-scheduleDone:
			break faultLoop
		case <-ctx.Done():
			return r, ctx.Err()
		case <-ticker.C:
		}
	}
	r.Chaos = g.Recorder().Summarize()

	// Readmission: after the last heal, every flapped child must leave
	// quarantine within chaosReadmitCycles cycles. These cycles are paced
	// at the probe-backoff cap, so each one is guaranteed to have a probe
	// due for every still-quarantined child (the probe delay backs off to
	// at most chaosMaxProbe while the partition holds).
	r.ReadmitCycles = -1
	for i := 0; i <= chaosReadmitCycles; i++ {
		if g.Stats().Quarantined == 0 {
			r.ReadmitCycles = i
			break
		}
		if _, err := g.RunCycle(ctx); err != nil {
			r.FailedCycles++
		}
		select {
		case <-ctx.Done():
			return r, ctx.Err()
		case <-time.After(chaosMaxProbe):
		}
	}

	// Clean shutdown mid-cycle: a cycle run under a canceled context must
	// not charge breaker strikes against healthy children.
	before := r.readFaults(g)
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	_, _ = g.RunCycle(canceled)
	after := r.readFaults(g)
	r.ShutdownStrikes = after - before

	r.Faults = g.Faults().Summarize()
	return r, nil
}

// readFaults samples the counters a canceled-context cycle must not move.
func (ChaosResult) readFaults(g interface {
	CallErrors() uint64
	Faults() *telemetry.FaultCounters
}) uint64 {
	f := g.Faults()
	return g.CallErrors() + f.Quarantines() + f.Evictions()
}

// PrintChaos renders the scenario's outcome.
func PrintChaos(o Options, r ChaosResult) {
	o = o.withDefaults()
	o.printf("chaos — flat control plane under partition flaps, %d nodes, %d flapping\n",
		r.Nodes, r.Flapped)
	o.printf("  baseline cycle mean     %s ms\n", ms(r.BaselineMean))
	o.printf("  chaos cycle mean/max    %s / %s ms over %d cycles (%d failed)\n",
		ms(r.Chaos.Total.Mean), ms(r.Chaos.Total.Max), r.Chaos.Cycles, r.FailedCycles)
	o.printf("  faults                  %v\n", r.Faults)
	if r.ReadmitCycles >= 0 {
		o.printf("  readmission             quarantine drained %d cycles after heal\n", r.ReadmitCycles)
	} else {
		o.printf("  readmission             QUARANTINE NOT DRAINED\n")
	}
	o.printf("  canceled-ctx strikes    %d\n\n", r.ShutdownStrikes)
}

// CheckChaos asserts the scenario's dependability claims: no control cycle
// fails while children flap, latency stays bounded (10x the fault-free mean
// plus two call timeouts — generous slack for probe traffic and scheduler
// noise on loaded CI runners), every quarantined child is readmitted within
// chaosReadmitCycles of its partition healing, and caller-side cancellation
// charges no breaker strikes.
func CheckChaos(r ChaosResult) error {
	if r.Chaos.Cycles == 0 {
		return fmt.Errorf("chaos: no cycles completed during the fault window")
	}
	if r.FailedCycles > 0 {
		return fmt.Errorf("chaos: %d control cycles failed during faults", r.FailedCycles)
	}
	if r.Faults.Quarantines == 0 {
		return fmt.Errorf("chaos: no child was ever quarantined — the fault schedule did not bite")
	}
	if r.ReadmitCycles < 0 {
		return fmt.Errorf("chaos: quarantine not drained within %d cycles of heal (%d quarantines, %d readmissions)",
			chaosReadmitCycles, r.Faults.Quarantines, r.Faults.Readmissions)
	}
	if r.Faults.Readmissions != r.Faults.Quarantines {
		return fmt.Errorf("chaos: %d quarantines but %d readmissions", r.Faults.Quarantines, r.Faults.Readmissions)
	}
	if r.Faults.Evictions != 0 {
		return fmt.Errorf("chaos: %d children evicted; flapping must quarantine, not evict", r.Faults.Evictions)
	}
	bound := 10*r.BaselineMean + 2*chaosCallTimeout
	if r.Chaos.Total.Max > bound {
		return fmt.Errorf("chaos: worst cycle %v exceeds bound %v (baseline mean %v)",
			r.Chaos.Total.Max, bound, r.BaselineMean)
	}
	if r.ShutdownStrikes != 0 {
		return fmt.Errorf("chaos: canceled-context cycle charged %d breaker strikes, want 0", r.ShutdownStrikes)
	}
	return nil
}
