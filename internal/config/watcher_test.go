package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func waitNotify(t *testing.T, c <-chan struct{}, within time.Duration) bool {
	t.Helper()
	select {
	case <-c:
		return true
	case <-time.After(within):
		return false
	}
}

func TestWatcherDetectsContentChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sdscale.json")
	writeFile(t, path, `{"stages": 4}`)
	w := NewWatcher(path, 10*time.Millisecond)
	defer w.Close()

	writeFile(t, path, `{"stages": 8}`)
	if !waitNotify(t, w.C, 5*time.Second) {
		t.Fatal("watcher missed a content change")
	}
	if w.Changes() == 0 || w.Polls() == 0 {
		t.Fatalf("counters: polls %d changes %d", w.Polls(), w.Changes())
	}
}

func TestWatcherIgnoresSameContentRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sdscale.json")
	const body = `{"stages": 4}`
	writeFile(t, path, body)
	w := NewWatcher(path, 10*time.Millisecond)
	defer w.Close()

	// Rewrite the identical bytes: mtime moves, content does not. Give the
	// watcher a few polls to (wrongly) fire.
	time.Sleep(30 * time.Millisecond)
	writeFile(t, path, body)
	if waitNotify(t, w.C, 150*time.Millisecond) {
		t.Fatal("watcher fired on a same-content rewrite")
	}
	if w.Changes() != 0 {
		t.Fatalf("Changes = %d after no-op rewrite", w.Changes())
	}
}

func TestWatcherCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sdscale.json")
	writeFile(t, path, `{"stages": 1}`)
	w := NewWatcher(path, 5*time.Millisecond)
	defer w.Close()

	// Burst of edits; the capacity-1 channel coalesces however many polls
	// caught distinct contents into pending notifications the consumer
	// drains one reload at a time.
	for i := 2; i <= 6; i++ {
		writeFile(t, path, `{"stages": `+string(rune('0'+i))+`}`)
		time.Sleep(12 * time.Millisecond)
	}
	if !waitNotify(t, w.C, 5*time.Second) {
		t.Fatal("no notification after an edit burst")
	}
	// After draining, at most one more token can be pending.
	drained := 0
	for waitNotify(t, w.C, 30*time.Millisecond) {
		drained++
		if drained > 1 {
			t.Fatal("channel did not coalesce")
		}
	}
}

func TestWatcherMissingFileIsNotAChange(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sdscale.json")
	writeFile(t, path, `{"stages": 4}`)
	w := NewWatcher(path, 10*time.Millisecond)
	defer w.Close()

	// Rename-away window: the file vanishes, then reappears with the same
	// content. Neither transition is a content change.
	if err := os.Rename(path, path+".tmp"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	if err := os.Rename(path+".tmp", path); err != nil {
		t.Fatal(err)
	}
	if waitNotify(t, w.C, 150*time.Millisecond) {
		t.Fatal("watcher fired across a same-content rename window")
	}
}

func TestWatcherSetInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sdscale.json")
	writeFile(t, path, `{"stages": 4}`)
	w := NewWatcher(path, time.Hour) // effectively never polls on its own
	defer w.Close()

	writeFile(t, path, `{"stages": 8}`)
	w.SetInterval(10 * time.Millisecond)
	if !waitNotify(t, w.C, 5*time.Second) {
		t.Fatal("SetInterval did not wake the poll loop")
	}
}

func TestReloaderAcceptAndReject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sdscale.json")
	writeFile(t, path, `{"stages": 4, "interval": "1s"}`)
	cur, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReloader(path, cur)

	// Accept: interval change comes back as the delta, Current advances.
	writeFile(t, path, `{"stages": 4, "interval": "500ms"}`)
	next, d, err := r.Reload()
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if d.Interval == nil || *d.Interval != 500*time.Millisecond {
		t.Fatalf("delta = %v", d)
	}
	if r.Current() != next || r.Reloads() != 1 || r.Rejects() != 0 {
		t.Fatalf("reloader state: cur %p next %p reloads %d rejects %d",
			r.Current(), next, r.Reloads(), r.Rejects())
	}

	// Reject: unparseable file keeps the old config and counts the reject.
	writeFile(t, path, `{"stages": }`)
	if _, _, err := r.Reload(); err == nil {
		t.Fatal("Reload accepted garbage")
	}
	if r.Current() != next || r.Rejects() != 1 {
		t.Fatalf("garbage reload moved state: cur %p rejects %d", r.Current(), r.Rejects())
	}

	// Reject: valid JSON but unsafe delta also keeps the old config.
	writeFile(t, path, `{"stages": 4, "interval": "500ms", "standbys": 1}`)
	_, _, err = r.Reload()
	if err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("unsafe reload error = %v", err)
	}
	if r.Current() != next || r.Rejects() != 2 || r.Reloads() != 1 {
		t.Fatalf("unsafe reload moved state: rejects %d reloads %d", r.Rejects(), r.Reloads())
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.json"))
	if err == nil {
		t.Fatal("Load accepted a missing file")
	}
}
