package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the wire decoder: it must never
// panic, never over-allocate, and anything it accepts must re-encode to a
// decodable message of the same type (decode/encode/decode consistency).
func FuzzDecode(f *testing.F) {
	// Seed with every message type's encoding.
	seeds := []Message{
		&Register{Role: RoleStage, ID: 1, JobID: 2, Weight: 1.5, Addr: "a:1"},
		&RegisterAck{ID: 1, Epoch: 2},
		&Collect{Cycle: 3, WindowMicros: 1e6},
		&CollectReply{Cycle: 3, Reports: []StageReport{{StageID: 1, JobID: 2, Demand: Rates{3, 4}, Usage: Rates{5, 6}}}},
		&CollectAggReply{Cycle: 3, AggregatorID: 9, Jobs: []JobReport{{JobID: 1, Stages: 10, Demand: Rates{1, 2}}}},
		&Enforce{Cycle: 4, Rules: []Rule{{StageID: 1, JobID: 2, Action: ActionSetLimit, Limit: Rates{7, 8}}}},
		&EnforceAck{Cycle: 4, Applied: 1},
		&Heartbeat{SentUnixMicros: 5},
		&HeartbeatAck{EchoUnixMicros: 5},
		&ErrorReply{Code: CodeOverload, Text: "x"},
		&StageList{},
		&StageListReply{Stages: []StageEntry{{ID: 1, JobID: 2, Weight: 3, Addr: "b:2"}}},
		&PeerExchange{Cycle: 1, PeerID: 2, Addr: "p:1", Jobs: []JobReport{{JobID: 1}}},
		&PeerExchangeAck{Cycle: 1, PeerID: 2},
		&Delegate{Cycle: 2, Budgets: []JobBudget{{JobID: 1, Limit: Rates{9, 10}}}},
		&Enforce{Cycle: 5, Epoch: 2, Rules: []Rule{{StageID: 1, JobID: 2, Action: ActionPause}}},
		&Collect{Cycle: 6, WindowMicros: 1e6, Epoch: 2},
		&ErrorReply{Code: CodeStaleEpoch, Text: "deposed", Epoch: 3},
		&StateSync{PrimaryID: 1, Epoch: 2, Cycle: 7, LeaseMicros: 250_000,
			Members: []MemberState{
				{Role: RoleStage, ID: 1, JobID: 2, Weight: 1, Addr: "a:1",
					Rules: []Rule{{StageID: 1, JobID: 2, Action: ActionSetLimit, Limit: Rates{3, 4}}}},
				{Role: RoleAggregator, ID: 9, Addr: "b:2",
					Stages: []StageEntry{{ID: 1, JobID: 2, Weight: 1, Addr: "a:1"}}},
			},
			Weights: []JobWeight{{JobID: 2, Weight: 1}}},
		&StateSyncAck{ID: 2, Epoch: 2},
		&ReportDelta{Seq: 3, Full: true, Epoch: 2,
			Report: StageReport{StageID: 1, JobID: 2, Demand: Rates{3, 4}, Usage: Rates{5, 6}}},
		&VoteRequest{CandidateID: 2, Epoch: 4, Cycle: 88},
		&LeaseGrant{VoterID: 3, Granted: true, Epoch: 4},
		&ShardQuery{ChildID: 7},
		&ShardMap{Epoch: 3, Owner: 1, OwnerValid: true, Entries: []ShardEntry{
			{Index: 0, Epoch: 2, Children: 4, Addr: "shard-0:1", Standbys: []string{"shard-0-standby-0:2"}},
			{Index: 1, Epoch: 3, Children: 5, Addr: "shard-1:1"},
		}},
	}
	for _, m := range seeds {
		f.Add(Encode(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re := Encode(nil, m)
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
		// A second encode must be byte-identical (canonical encoding).
		if re2 := Encode(nil, m2); !bytes.Equal(re, re2) {
			t.Fatalf("encoding not canonical:\n%x\n%x", re, re2)
		}
	})
}

// FuzzDecoderPrimitives exercises the primitive decoders on raw input.
func FuzzDecoderPrimitives(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Uint64()
		_ = d.Int64()
		_ = d.Float64()
		_ = d.Bytes16()
		_ = d.String()
		_ = d.Bool()
		_ = d.Finish()
	})
}

// FuzzDecodeV2 feeds arbitrary bytes to the stateless v2 decoder. Like
// FuzzDecode it must never panic, and accepted inputs must re-encode
// canonically. The corpus seeds every message type in both codecs plus the
// negotiation hello bodies (v1-encoded Heartbeats carrying a codec version),
// so the fuzzer starts from exactly the frames a v1↔v2 handshake exchanges.
func FuzzDecodeV2(f *testing.F) {
	seeds := []Message{
		&Register{Role: RoleStage, ID: 1, JobID: 2, Weight: 1.5, Addr: "a:1"},
		&Collect{Cycle: 3, WindowMicros: 1e6, Epoch: 2},
		&CollectReply{Cycle: 3, Reports: []StageReport{{StageID: 1, JobID: 2, Demand: Rates{3, 4.5}, Usage: Rates{0, 6}}}},
		&CollectAggReply{Cycle: 3, AggregatorID: 9, Jobs: []JobReport{{JobID: 1, Stages: 10, Demand: Rates{1, 2}}}},
		&Enforce{Cycle: 4, Epoch: 1, Rules: []Rule{{StageID: 1, JobID: 2, Action: ActionSetLimit, Limit: Rates{7, 8}}}},
		&EnforceAck{Cycle: 4, Applied: 1},
		&HeartbeatAck{EchoUnixMicros: 5},
		&ErrorReply{Code: CodeStaleEpoch, Text: "deposed", Epoch: 3},
		&PeerExchange{Cycle: 1, PeerID: 2, Addr: "p:1", Jobs: []JobReport{{JobID: 1, Demand: Rates{0.25, 9}}}},
		&Delegate{Cycle: 2, Budgets: []JobBudget{{JobID: 1, Limit: Rates{9, 10}}}},
		&StateSync{PrimaryID: 1, Epoch: 2, Cycle: 7, LeaseMicros: 250_000,
			Members: []MemberState{{Role: RoleStage, ID: 1, JobID: 2, Weight: 1, Addr: "a:1"}},
			Weights: []JobWeight{{JobID: 2, Weight: 1}}},
		&ReportDelta{Seq: 9, Epoch: 1,
			Report: StageReport{StageID: 1, JobID: 2, Demand: Rates{3, 4.5}, Usage: Rates{0, 6}}},
		&VoteRequest{CandidateID: 2, Epoch: 4, Cycle: 88},
		&LeaseGrant{VoterID: 1, Granted: false, Epoch: 9},
		&ShardQuery{ChildID: 7},
		&ShardMap{Epoch: 3, Owner: 1, OwnerValid: true, Entries: []ShardEntry{
			{Index: 0, Epoch: 2, Children: 4, Addr: "shard-0:1", Standbys: []string{"shard-0-standby-0:2"}},
		}},
	}
	for _, m := range seeds {
		f.Add(EncodeWith(nil, m, CodecV2, nil))
		f.Add(Encode(nil, m))
	}
	// Negotiation hello bodies: Heartbeat{version}, always encoded v1.
	f.Add(Encode(nil, &Heartbeat{SentUnixMicros: CodecV1}))
	f.Add(Encode(nil, &Heartbeat{SentUnixMicros: CodecV2}))
	f.Add([]byte{byte(TCollectReply), 1, 1, 1, 1, f2Same})
	f.Add([]byte{})

	opts := &DecodeOpts{Version: CodecV2}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeWith(data, opts)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re := EncodeWith(nil, m, CodecV2, nil)
		m2, err := DecodeWith(re, opts)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v -> %v", m.Type(), m2.Type())
		}
		// A second encode must be byte-identical (canonical encoding).
		if re2 := EncodeWith(nil, m2, CodecV2, nil); !bytes.Equal(re, re2) {
			t.Fatalf("v2 encoding not canonical:\n%x\n%x", re, re2)
		}
	})
}

// FuzzFloat64V2 exercises the tagged float primitive with history on both
// sides: arbitrary bytes become two float sequences encoded as consecutive
// history-carrying messages, which must reconstruct exactly.
func FuzzFloat64V2(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xF0, 0x3F, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var vals []float64
		for len(data) >= 8 {
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data)))
			data = data[8:]
		}
		half := len(vals) / 2
		eh, dh := &typeHist{}, &typeHist{}
		for _, seq := range [][]float64{vals[:half], vals[half:]} {
			e := &Encoder{ver: CodecV2, hist: eh}
			for _, v := range seq {
				e.Float64(v)
			}
			eh.swap()
			d := &Decoder{buf: e.Bytes(), ver: CodecV2, hist: dh}
			for i, want := range seq {
				got := d.Float64()
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) &&
					!(want == 0 && math.Signbit(want)) { // -0 canonicalizes
					t.Fatalf("float %d: want %v (%x), got %v (%x)",
						i, want, math.Float64bits(want), got, math.Float64bits(got))
				}
			}
			if err := d.Finish(); err != nil {
				t.Fatalf("finish: %v", err)
			}
			dh.swap()
		}
	})
}
