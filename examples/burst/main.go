// Burst: PSFA adapting to a bursty workload — the dynamic behavior behind
// the paper's Observation #4 (low-latency control cycles matter for bursty
// I/O).
//
// Two jobs share a PFS capacity of 2,000 data IOPS through virtual stages:
//
//   - job 1 is steady: it always demands 1,500 IOPS;
//   - job 2 is bursty: it alternates between 1,500 IOPS (2 s on) and
//     nearly idle (2 s off).
//
// A control loop runs every 100 ms. While job 2 bursts, PSFA splits the
// capacity evenly (both saturated, equal weights). While job 2 is idle,
// PSFA reassigns the leftover to job 1 — no false allocation. The program
// prints the allocation timeline so the adaptation is visible.
//
// This example uses manual assembly (StartVirtualStage + StartGlobal +
// AddStage) because its two stages need different workload generators —
// per-stage knobs a declarative sdscale.Topology does not expose. For
// uniform fleets, prefer sdscale.StartTopology.
//
// Run with:
//
//	go run ./examples/burst
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/dsrhaslab/sdscale"
)

func main() {
	net := sdscale.NewSimNet(sdscale.SimNetConfig{})
	ctx := context.Background()

	steady, err := sdscale.StartVirtualStage(sdscale.StageConfig{
		ID: 1, JobID: 1, Weight: 1,
		Generator: sdscale.ConstantWorkload{Rates: sdscale.Rates{1500, 50}},
		Network:   net.Host("stage-steady"),
	})
	if err != nil {
		log.Fatalf("steady stage: %v", err)
	}
	defer steady.Close()

	bursty, err := sdscale.StartVirtualStage(sdscale.StageConfig{
		ID: 2, JobID: 2, Weight: 1,
		Generator: sdscale.BurstyWorkload{
			On:   2 * time.Second,
			Off:  2 * time.Second,
			High: sdscale.Rates{1500, 50},
			Low:  sdscale.Rates{10, 1},
		},
		Network: net.Host("stage-bursty"),
	})
	if err != nil {
		log.Fatalf("bursty stage: %v", err)
	}
	defer bursty.Close()

	global, err := sdscale.StartGlobal(sdscale.GlobalConfig{
		Network:  net.Host("controller"),
		Capacity: sdscale.Rates{2000, 100},
	})
	if err != nil {
		log.Fatalf("controller: %v", err)
	}
	defer global.Close()
	for _, st := range []*sdscale.VirtualStage{steady, bursty} {
		if err := global.AddStage(ctx, st.Info()); err != nil {
			log.Fatalf("attach: %v", err)
		}
	}

	loopCtx, stop := context.WithCancel(ctx)
	defer stop()
	go global.Run(loopCtx, 100*time.Millisecond)

	fmt.Println("capacity 2000 data IOPS; job 1 steady at 1500, job 2 bursting 1500/idle every 2s")
	fmt.Printf("%6s %18s %18s\n", "t", "job1 limit (IOPS)", "job2 limit (IOPS)")

	start := time.Now()
	var burstAlloc, idleAlloc float64
	for time.Since(start) < 8*time.Second {
		time.Sleep(500 * time.Millisecond)
		r1, ok1 := steady.LastRule()
		r2, ok2 := bursty.LastRule()
		if !ok1 || !ok2 {
			continue
		}
		l1 := r1.Limit[sdscale.ClassData]
		l2 := r2.Limit[sdscale.ClassData]
		fmt.Printf("%6s %18.0f %18.0f\n", time.Since(start).Round(100*time.Millisecond), l1, l2)
		if l2 > 500 {
			burstAlloc = l1 // job 2 bursting: job 1's contended share
		} else {
			idleAlloc = l1 // job 2 idle: job 1 absorbs the leftover
		}
	}

	fmt.Printf("\njob 1's limit while job 2 bursts: ~%.0f IOPS (fair half)\n", burstAlloc)
	fmt.Printf("job 1's limit while job 2 idles:  ~%.0f IOPS (leftover reassigned)\n", idleAlloc)
	if idleAlloc > burstAlloc {
		fmt.Println("PSFA reassigned idle capacity within one control cycle — no false allocation.")
	}
}
