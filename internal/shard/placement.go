// Package shard partitions a control-plane fleet across N concurrently
// active global controllers. It supplies the two pieces a sharded
// deployment needs on top of the existing controller machinery: a
// deterministic child→shard placement (a consistent-hash ring, or a
// caller-supplied function) and a thin routing tier (Router) that directs
// per-child operations to the owning shard, fans cross-shard queries and
// uniform enforces out over all leaders, and implements shard handoff as
// re-homing with an epoch bump.
//
// The package deliberately adds no new failure-handling: each shard is a
// full PR 7 controller group (leader, quorum standbys, write-ahead store),
// and a shard leader's death is handled by that shard's own election
// exactly as in the single-Global deployment. Sharding only bounds the
// blast radius — the other shards' cycles never see the failure.
package shard

import (
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual-node count of the default
// placement ring. 64 points per shard keeps the expected imbalance between
// shards under a few percent while the ring stays small enough to rebuild
// on every topology change.
const DefaultVirtualNodes = 64

// Ring places child IDs onto shards by consistent hashing: each shard owns
// the arc below each of its virtual points, so adding or removing one shard
// moves only ~1/N of the children — the property that keeps a Rebalance
// after a topology change proportional to the change, not the fleet.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a placement ring over the given shard count.
// virtualNodes <= 0 selects DefaultVirtualNodes.
func NewRing(shards, virtualNodes int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if virtualNodes <= 0 {
		virtualNodes = DefaultVirtualNodes
	}
	r := &Ring{points: make([]ringPoint, 0, shards*virtualNodes), shards: shards}
	for s := 0; s < shards; s++ {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, v), shard: s})
		}
	}
	// Sort by hash with the shard index as tie-break, so a (vanishingly
	// unlikely) hash collision still places deterministically.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards the ring places onto.
func (r *Ring) Shards() int { return r.shards }

// Place returns the shard owning childID: the shard of the first virtual
// point at or above the child's hash, wrapping past the top of the ring.
func (r *Ring) Place(childID uint64) int {
	if r.shards == 1 {
		return 0
	}
	h := mix(childID)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// pointHash keys shard s's v-th virtual point. The shard index is mixed
// before the virtual-node index is folded in, which domain-separates point
// hashes from child hashes: with a plain mix(s<<32|v), shard 0's v-th point
// would hash identically to child ID v, and every child ID below the
// virtual-node count would land on shard 0.
func pointHash(s, v int) uint64 {
	return mix(mix(uint64(s)+1) + uint64(v))
}

// mix is the splitmix64 finalizer: a fast, well-distributed 64-bit hash for
// the sequential IDs children typically carry. Sequential inputs must not
// land on adjacent ring positions, or shard 0 would own every small ID.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
