// Package tcpnet implements transport.Network over real TCP.
//
// It is the transport used by cmd/sdsctl for multi-host deployments: the
// same controllers and stages that run the paper's experiments over simnet
// run unmodified over TCP across a real cluster.
package tcpnet

import (
	"context"
	"net"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport"
)

// Network dials and listens on the host's real TCP stack.
type Network struct {
	// DialTimeout bounds connection establishment when the caller's
	// context has no deadline. Zero means 10 seconds.
	DialTimeout time.Duration
	// KeepAlive configures TCP keep-alive probes on dialed connections.
	// Zero selects the net package default; negative disables them.
	KeepAlive time.Duration
}

var _ transport.Network = (*Network)(nil)

// New returns a TCP transport with default settings.
func New() *Network { return &Network{} }

// Listen implements transport.Network.
func (n *Network) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// Dial implements transport.Network.
func (n *Network) Dial(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{KeepAlive: n.KeepAlive}
	if _, ok := ctx.Deadline(); !ok {
		timeout := n.DialTimeout
		if timeout == 0 {
			timeout = 10 * time.Second
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return d.DialContext(ctx, "tcp", addr)
}
