// Package simnet implements an in-process simulated network whose
// connections satisfy net.Conn.
//
// The paper's methodology (§III-D) scales to 10,000 "compute nodes" by
// running 50 virtual data-plane stages per physical Frontera node; simnet
// takes the same idea to its conclusion and hosts the whole cluster in one
// process. Each logical host has:
//
//   - a configurable concurrent-connection limit (default 2,500, the limit
//     the paper measured on Frontera nodes, §IV-A), so the flat design's
//     scalability cliff is reproduced by construction;
//   - exact transmit/receive byte accounting, feeding the network rows of
//     the paper's resource tables;
//   - a latency model: one-way propagation delay, optional jitter, and
//     per-connection serialization bandwidth.
//
// Connections are goroutine-free: latency is applied on the receive path by
// stamping every chunk with an arrival time, so a 10,000-stage cluster costs
// no scheduler overhead beyond the stages themselves.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport"
)

// Default configuration values.
const (
	// DefaultMaxConns mirrors the per-node connection limit the paper
	// observed on Frontera (§IV-A). It applies to connections a host
	// initiates: the pool a controller maintains toward its children.
	DefaultMaxConns = 2500
	// DefaultQueue is the per-direction in-flight chunk budget before
	// writers block (backpressure).
	DefaultQueue = 64
)

// Errors returned by simnet operations.
var (
	// ErrHostPartitioned is returned when dialing from or to a
	// partitioned host.
	ErrHostPartitioned = errors.New("simnet: host partitioned")
	// ErrConnRefused is returned when the target address has no listener.
	ErrConnRefused = errors.New("simnet: connection refused")
	// ErrBacklogFull is returned when a listener's accept queue is full.
	ErrBacklogFull = errors.New("simnet: listener backlog full")
)

// Config parameterizes a simulated network.
type Config struct {
	// PropDelay is the one-way propagation delay applied to every chunk.
	// Zero (the default) disables it: in-process scheduling already plays
	// the role of a fast interconnect, and artificial sub-millisecond
	// delays mostly measure timer granularity. Negative also disables.
	PropDelay time.Duration
	// Jitter adds a uniformly random extra delay in [0, Jitter) per chunk.
	Jitter time.Duration
	// Bandwidth is the per-connection serialization rate in bytes/second.
	// Zero disables bandwidth modeling.
	Bandwidth float64
	// ProcTime is the fixed per-message processing cost charged to each
	// endpoint host's processor (a virtual-time queue, so messages at one
	// host serialize while distinct hosts proceed in parallel). This is
	// the knob that models per-node controller capacity: it is what makes
	// a controller's latency grow with its child count even when the
	// simulation runs on fewer physical cores than simulated hosts.
	// Zero disables processing costs.
	ProcTime time.Duration
	// ProcPerByte is the additional processing cost per payload byte,
	// charged alongside ProcTime. It makes large rule batches expensive
	// for the host that sends or receives them, as in the paper's
	// Table III observations. Zero disables it.
	ProcPerByte time.Duration
	// MaxConnsPerHost limits concurrent connections per host. Zero selects
	// DefaultMaxConns; negative disables the limit.
	MaxConnsPerHost int
	// Queue is retained for configuration compatibility. Streams now use
	// unbounded queues with central scheduled delivery, so it has no
	// effect; control-plane backpressure comes from the request/response
	// protocol above the transport.
	Queue int
	// Seed seeds the jitter generator; zero selects a fixed seed so runs
	// are reproducible by default.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.PropDelay < 0 {
		c.PropDelay = 0
	}
	if c.MaxConnsPerHost == 0 {
		c.MaxConnsPerHost = DefaultMaxConns
	}
	if c.Queue <= 0 {
		c.Queue = DefaultQueue
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Net is a simulated network: a namespace of hosts connected by a uniform
// latency model.
type Net struct {
	cfg Config

	sched *scheduler

	mu    sync.Mutex
	hosts map[string]*Host
	rng   *rand.Rand
}

// New creates a simulated network.
func New(cfg Config) *Net {
	cfg = cfg.withDefaults()
	return &Net{
		cfg:   cfg,
		sched: newScheduler(),
		hosts: make(map[string]*Host),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// jitter returns a random extra delay in [0, cfg.Jitter).
func (n *Net) jitter() time.Duration {
	if n.cfg.Jitter <= 0 {
		return 0
	}
	n.mu.Lock()
	d := time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	n.mu.Unlock()
	return d
}

// Host returns the named host, creating it on first use.
func (n *Net) Host(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	if !ok {
		h = &Host{
			net:       n,
			name:      name,
			maxConns:  n.cfg.MaxConnsPerHost,
			listeners: make(map[int]*listener),
			conns:     make(map[*conn]struct{}),
			nextPort:  40000,
		}
		n.hosts[name] = h
	}
	return h
}

// lookup returns the named host or nil.
func (n *Net) lookup(name string) *Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hosts[name]
}

// Hosts returns a snapshot of all hosts, in unspecified order.
func (n *Net) Hosts() []*Host {
	n.mu.Lock()
	defer n.mu.Unlock()
	hs := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hs = append(hs, h)
	}
	return hs
}

// Host is one endpoint of the simulated network. It implements
// transport.Network: listening binds ports on this host, and dialing
// originates from it (so connection limits and byte accounting apply to the
// correct endpoint).
type Host struct {
	net  *Net
	name string

	mu          sync.Mutex
	listeners   map[int]*listener
	conns       map[*conn]struct{}
	outConns    int // connections this host initiated (the limited pool)
	nextPort    int
	maxConns    int
	partitioned bool

	proc  processor
	meter transport.Meter
}

// processor is a host's simulated message-processing capacity: a
// virtual-time queue with deterministic service time per message. All
// messages sent or received by the host serialize through it, while
// distinct hosts proceed independently — reproducing per-node CPU limits on
// a machine with fewer cores than simulated hosts.
type processor struct {
	mu       sync.Mutex
	nextFree time.Time
}

// schedule reserves processing for a message of n bytes that becomes
// eligible at the given time, returning its completion time.
func (p *processor) schedule(at time.Time, n int, cfg *Config) time.Time {
	svc := cfg.ProcTime + time.Duration(n)*cfg.ProcPerByte
	if svc <= 0 {
		return at
	}
	p.mu.Lock()
	start := at
	if p.nextFree.After(start) {
		start = p.nextFree
	}
	done := start.Add(svc)
	p.nextFree = done
	p.mu.Unlock()
	return done
}

var _ transport.Network = (*Host)(nil)

// Name returns the host's name.
func (h *Host) Name() string { return h.name }

// Meter returns the host's byte-accounting meter. All traffic on
// connections originating or terminating at the host is charged to it.
func (h *Host) Meter() *transport.Meter { return &h.meter }

// ConnCount returns the number of currently established connections
// (initiated plus accepted).
func (h *Host) ConnCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.conns)
}

// OutConnCount returns the number of currently established connections the
// host initiated — the pool the connection limit applies to.
func (h *Host) OutConnCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.outConns
}

// SetMaxConns overrides the host's connection limit. Negative disables it.
func (h *Host) SetMaxConns(n int) {
	h.mu.Lock()
	h.maxConns = n
	h.mu.Unlock()
}

// SetPartitioned isolates (or heals) the host. Partitioning fails future
// dials from and to the host and severs its established connections,
// modeling a crashed or unreachable controller for dependability tests.
func (h *Host) SetPartitioned(p bool) {
	h.mu.Lock()
	h.partitioned = p
	var victims []*conn
	if p {
		for c := range h.conns {
			victims = append(victims, c)
		}
	}
	h.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// KillConns severs every established connection at the host without
// changing its partition state: future dials succeed immediately. This
// models a transient fault — a controller restart or a switch reset — as
// opposed to SetPartitioned's sustained isolation.
func (h *Host) KillConns() {
	h.mu.Lock()
	victims := make([]*conn, 0, len(h.conns))
	for c := range h.conns {
		victims = append(victims, c)
	}
	h.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Partitioned reports whether the host is currently isolated.
func (h *Host) Partitioned() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.partitioned
}

// resolve parses "host:port" relative to h: an empty host means h itself.
func (h *Host) resolve(addr string) (host string, port int, err error) {
	i := strings.LastIndexByte(addr, ':')
	if i < 0 {
		return "", 0, fmt.Errorf("simnet: address %q missing port", addr)
	}
	host = addr[:i]
	if host == "" {
		host = h.name
	}
	port, err = strconv.Atoi(addr[i+1:])
	if err != nil {
		return "", 0, fmt.Errorf("simnet: bad port in %q: %v", addr, err)
	}
	return host, port, nil
}

// Listen implements transport.Network. The address must name this host (or
// leave the host part empty); port 0 auto-assigns.
func (h *Host) Listen(addr string) (net.Listener, error) {
	hostName, port, err := h.resolve(addr)
	if err != nil {
		return nil, err
	}
	if hostName != h.name {
		return nil, fmt.Errorf("simnet: host %s cannot listen on %s", h.name, hostName)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if port == 0 {
		for h.listeners[h.nextPort] != nil {
			h.nextPort++
		}
		port = h.nextPort
		h.nextPort++
	} else if h.listeners[port] != nil {
		return nil, fmt.Errorf("simnet: %s:%d already in use", h.name, port)
	}
	l := &listener{
		host:    h,
		addr:    Addr{Host: h.name, Port: port},
		backlog: make(chan *conn, 4096),
		done:    make(chan struct{}),
	}
	h.listeners[port] = l
	return l, nil
}

// Dial implements transport.Network, connecting from this host to addr.
func (h *Host) Dial(ctx context.Context, addr string) (net.Conn, error) {
	hostName, port, err := h.resolve(addr)
	if err != nil {
		return nil, err
	}
	remote := h.net.lookup(hostName)
	if remote == nil {
		return nil, fmt.Errorf("%w: no host %q", ErrConnRefused, hostName)
	}

	remote.mu.Lock()
	l := remote.listeners[port]
	remote.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %s:%d", ErrConnRefused, hostName, port)
	}

	local, peer, err := h.connect(remote, port)
	if err != nil {
		return nil, err
	}

	if err := l.deliver(peer); err != nil {
		local.Close()
		return nil, fmt.Errorf("%w: %s:%d", err, hostName, port)
	}
	return local, nil
}

// connect builds the connection pair between h and remote, enforcing
// partition state and connection limits on both endpoints atomically.
func (h *Host) connect(remote *Host, port int) (local, peer *conn, err error) {
	// Lock in a fixed order to avoid deadlock on concurrent cross dials.
	a, b := h, remote
	if a.name > b.name {
		a, b = b, a
	}
	a.mu.Lock()
	if a != b {
		b.mu.Lock()
	}
	defer func() {
		if a != b {
			b.mu.Unlock()
		}
		a.mu.Unlock()
	}()

	if h.partitioned || remote.partitioned {
		return nil, nil, ErrHostPartitioned
	}
	// The limit models the paper's observation that a node can maintain at
	// most ~2,500 connections to the components it manages (§IV-A), so it
	// counts initiated connections only.
	if h.maxConns >= 0 && h.outConns >= h.maxConns {
		return nil, nil, fmt.Errorf("%w: host %s at %d dialed conns", transport.ErrConnLimit, h.name, h.outConns)
	}

	localAddr := Addr{Host: h.name, Port: -1}
	remoteAddr := Addr{Host: remote.name, Port: port}

	up := newStream(h.net, h, remote)   // local writes -> remote reads
	down := newStream(h.net, remote, h) // remote writes -> local reads

	local = newConn(h, remote, localAddr, remoteAddr, down, up)
	local.initiator = true
	peer = newConn(remote, h, remoteAddr, localAddr, up, down)
	local.peer, peer.peer = peer, local

	h.conns[local] = struct{}{}
	h.outConns++
	remote.conns[peer] = struct{}{}
	return local, peer, nil
}

// dropConn removes c from the host's accounting (called once per side).
func (h *Host) dropConn(c *conn) {
	h.mu.Lock()
	if _, ok := h.conns[c]; ok {
		delete(h.conns, c)
		if c.initiator {
			h.outConns--
		}
	}
	h.mu.Unlock()
}

// Addr is a simulated network address.
type Addr struct {
	// Host is the host name.
	Host string
	// Port is the port number; -1 marks an ephemeral client endpoint.
	Port int
}

// Network implements net.Addr.
func (Addr) Network() string { return "sim" }

// String implements net.Addr.
func (a Addr) String() string {
	if a.Port < 0 {
		return a.Host + ":ephemeral"
	}
	return a.Host + ":" + strconv.Itoa(a.Port)
}

// listener implements net.Listener for a simulated host port.
type listener struct {
	host    *Host
	addr    Addr
	backlog chan *conn
	done    chan struct{}
	once    sync.Once

	mu     sync.Mutex // guards closed and the deliver/drain handoff
	closed bool
}

// deliver hands a dialed connection to the accept queue. The lock makes
// delivery and Close mutually exclusive, so a connection can never be left
// stranded (and silently open) in the backlog of a closed listener.
func (l *listener) deliver(c *conn) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrConnRefused
	}
	select {
	case l.backlog <- c:
		return nil
	default:
		return ErrBacklogFull
	}
}

// Accept implements net.Listener.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener. Connections still waiting in the backlog
// are severed: their dialers would otherwise hang on a peer no one will
// ever accept.
func (l *listener) Close() error {
	l.once.Do(func() {
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		close(l.done)
		l.host.mu.Lock()
		delete(l.host.listeners, l.addr.Port)
		l.host.mu.Unlock()
		for {
			select {
			case c := <-l.backlog:
				c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return l.addr }
