// Command sdsctl runs sdscale control-plane components over real TCP, one
// process per role, for multi-host deployments — the same controllers and
// stages the simulated experiments use, on a real network.
//
// Roles:
//
//	sdsctl serve -config sdscale.json
//	    Run the daemon: load a declarative deployment spec from the
//	    configuration file, start it, and run control cycles on the
//	    configured interval until SIGTERM/SIGINT (graceful drain: the
//	    in-flight cycle finishes, stores flush, the deployment closes).
//	    The file is watched for edits and re-read on SIGHUP; safe changes
//	    (interval, job weights, fleet size, shard count, SLO knobs) apply
//	    live, anything else is rejected and the old configuration stays.
//
//	sdsctl global -listen :7000 -capacity 1000000,100000 [-algorithm psfa] [-interval 1s]
//	    Run the global controller. Stages register at the listen address;
//	    the controller dials them back and runs control cycles, printing a
//	    latency summary on SIGINT.
//
//	sdsctl aggregator -listen :7001 [-fanout 8]
//	    Run an aggregator controller. Stages register at the listen
//	    address. Attach it to a global controller manually (the in-process
//	    harness does this automatically; over TCP the global currently
//	    manages stages directly or via pre-attached aggregators).
//
//	sdsctl peer -listen :7002 -id 1 [-peers 2=host2:7002,...]
//	    Run one controller of the coordinated flat design (paper §VI
//	    future work). Stages register at the listen address; peers
//	    exchange per-job aggregates and auto-mesh from one-sided
//	    configuration.
//
//	sdsctl stages -parent host:7000 -count 50 -job 1 -weight 1 [-workload stress]
//	    Run a fleet of virtual stages in this process (the paper runs 50
//	    per compute node) and register each with the parent controller.
//
//	sdsctl top500
//	    Print the paper's Table I and the control-plane sizing it implies.
//
//	sdsctl store inspect <dir>
//	    Print the snapshot, write-ahead log records, and recovered state of
//	    a controller data directory (offline; the controller need not run).
//
//	sdsctl topology -stages 10000 -shards 4 -standbys 2 [-validate] [-cycles 5]
//	    Validate a declarative deployment spec (sdscale.Topology) and dry-run
//	    it on the in-process simulated network: build the deployment, run a
//	    few control cycles, and print the shard route table and per-shard
//	    stats. Use it to check a spec — shard counts, standby quorums,
//	    aggregator fan-in — before wiring real hosts with the per-role
//	    commands above, which are the manual-assembly path to the same
//	    deployment.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/dsrhaslab/sdscale"
	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/store"
	"github.com/dsrhaslab/sdscale/internal/top500"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/transport/tcpnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(ctx, os.Args[2:])
	case "global":
		err = runGlobal(ctx, os.Args[2:])
	case "aggregator":
		err = runAggregator(ctx, os.Args[2:])
	case "peer":
		err = runPeer(ctx, os.Args[2:])
	case "stages":
		err = runStages(ctx, os.Args[2:])
	case "store":
		err = runStore(os.Args[2:])
	case "topology":
		err = runTopology(ctx, os.Args[2:])
	case "top500":
		fmt.Print(top500.Table())
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdsctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sdsctl <serve|global|aggregator|peer|stages|store|topology|top500> [flags]
run "sdsctl <role> -h" for role-specific flags`)
}

// parseRates parses "data,meta" operation rates.
func parseRates(s string) (wire.Rates, error) {
	var r wire.Rates
	parts := strings.Split(s, ",")
	if len(parts) != int(wire.NumClasses) {
		return r, fmt.Errorf("want %d comma-separated rates, got %q", wire.NumClasses, s)
	}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return r, fmt.Errorf("bad rate %q: %v", p, err)
		}
		r[i] = v
	}
	return r, nil
}

func runGlobal(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("global", flag.ExitOnError)
	listen := fs.String("listen", ":7000", "registration listen address")
	capacity := fs.String("capacity", "1000000,100000", "PFS capacity as data,meta ops/s")
	algorithm := fs.String("algorithm", "psfa", "control algorithm (psfa, uniform, weighted-static, maxmin, strict-priority)")
	interval := fs.Duration("interval", time.Second, "control cycle interval (0 = stress, back-to-back)")
	fanout := fs.Int("fanout", controller.DefaultFanOut, "fan-out parallelism")
	report := fs.Duration("report", 10*time.Second, "status report interval")
	aggregators := fs.String("aggregators", "", "comma-separated aggregator addresses to attach (hierarchical mode)")
	samplesPath := fs.String("samples", "", "write a REMORA-style resource time series to this CSV file on exit")
	sampleEvery := fs.Duration("sample-interval", time.Second, "resource sampling interval")
	dataDir := fs.String("data-dir", "", "durable state directory: mutations are logged to a write-ahead store and recovered on restart")
	fs.Parse(args)

	cap, err := parseRates(*capacity)
	if err != nil {
		return err
	}
	alg, err := controlalg.New(*algorithm)
	if err != nil {
		return err
	}

	var st *store.Store
	var recovered bool
	if *dataDir != "" {
		st, err = store.Open(store.Options{Dir: *dataDir, Logf: logf})
		if err != nil {
			return err
		}
		rec := st.Recovered()
		recovered = rec.State != nil && len(rec.State.Members) > 0
	}

	var meter transport.Meter
	var cpu monitor.CPUMeter
	g, err := controller.NewGlobal(controller.GlobalConfig{
		Network:    tcpnet.New(),
		ListenAddr: *listen,
		Algorithm:  alg,
		Capacity:   cap,
		FanOut:     *fanout,
		Meter:      &meter,
		CPU:        &cpu,
		Store:      st, // the controller owns and closes the store
		Logf:       logf,
	})
	if err != nil {
		if st != nil {
			st.Close()
		}
		return err
	}
	closeG := sync.OnceFunc(func() { g.Close() })
	defer closeG()
	fmt.Printf("global controller listening on %s (algorithm %s, capacity %v)\n", g.Addr(), alg.Name(), cap)
	if recovered {
		// A previous incarnation left durable membership behind: replay it
		// and re-adopt the fleet before running cycles.
		if err := g.Recover(ctx); err != nil {
			return fmt.Errorf("recover from %s: %w", *dataDir, err)
		}
		ss := g.Stats()
		if ss.Store != nil {
			fmt.Printf("recovered %d children from %s (%d records in %v)\n",
				g.NumChildren(), *dataDir, ss.Store.Replay.Records, ss.Store.Replay.Duration.Round(time.Microsecond))
		}
	}

	if *aggregators != "" {
		for i, addr := range strings.Split(*aggregators, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			if err := g.AttachAggregator(ctx, uint64(1_000_000+i), addr); err != nil {
				return fmt.Errorf("attach aggregator %s: %w", addr, err)
			}
			fmt.Printf("attached aggregator %s\n", addr)
		}
	}

	var pm monitor.ProcessMonitor
	pm.Start()
	var sampler *monitor.Sampler
	if *samplesPath != "" {
		sampler = monitor.StartSampler(*sampleEvery, &meter)
	}
	go func() {
		t := time.NewTicker(*report)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s := g.Recorder().Summarize()
				fmt.Printf("children=%d stages=%d cycles=%d mean=%v rel-std=%.1f%%\n",
					g.NumChildren(), g.NumStages(), s.Cycles,
					s.Total.Mean.Round(time.Microsecond), 100*s.RelStddev())
			case <-ctx.Done():
				return
			}
		}
	}()

	err = g.Run(ctx, *interval)
	// Drain before reporting: closing the controller is what flushes the
	// store's group-commit window, so a signal cannot lose the WAL tail.
	closeG()
	printFinalReport(g, &pm, &meter)
	if sampler != nil {
		samples := sampler.Stop()
		data := monitor.SamplesCSVHeader + "\n" + monitor.SamplesCSV(samples)
		if werr := os.WriteFile(*samplesPath, []byte(data), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "sdsctl: write samples:", werr)
		} else {
			fmt.Printf("wrote %d resource samples to %s\n", len(samples), *samplesPath)
		}
	}
	if ctx.Err() != nil {
		return nil // clean shutdown on signal
	}
	return err
}

func printFinalReport(g *controller.Global, pm *monitor.ProcessMonitor, meter *transport.Meter) {
	u := pm.Stop()
	s := g.Recorder().Summarize()
	fmt.Println("\n--- final report ---")
	fmt.Print(s.String())
	tx, rx := meter.Snapshot()
	fmt.Printf("process: cpu %.2f%%, rss %.2f GB, tx %.2f MB, rx %.2f MB over %v\n",
		u.CPUPercent, u.MemGB(), float64(tx)/1e6, float64(rx)/1e6, u.Elapsed.Round(time.Second))
}

func runAggregator(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("aggregator", flag.ExitOnError)
	listen := fs.String("listen", ":7001", "listen address (global controller and stage registrations)")
	id := fs.Uint64("id", 1, "aggregator ID")
	fanout := fs.Int("fanout", controller.DefaultFanOut, "fan-out parallelism")
	fs.Parse(args)

	var meter transport.Meter
	var cpu monitor.CPUMeter
	a, err := controller.StartAggregator(controller.AggregatorConfig{
		ID:      *id,
		Network: tcpnet.New(),

		ListenAddr: *listen,
		FanOut:     *fanout,
		Meter:      &meter,
		CPU:        &cpu,
		Logf:       logf,
	})
	if err != nil {
		return err
	}
	closeA := sync.OnceFunc(func() { a.Close() })
	defer closeA()
	fmt.Printf("aggregator %d listening on %s\n", a.ID(), a.Addr())
	<-ctx.Done()
	closeA() // drain before reporting, same as serve
	tx, rx := meter.Snapshot()
	fmt.Printf("\naggregator served %d stages; tx %.2f MB rx %.2f MB\n",
		a.NumStages(), float64(tx)/1e6, float64(rx)/1e6)
	return nil
}

// runPeer runs one controller of the coordinated flat design: stages
// register with it, and it exchanges per-job aggregates with the other
// peers listed on the command line.
func runPeer(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("peer", flag.ExitOnError)
	listen := fs.String("listen", ":7002", "listen address (stage registrations and peer exchange)")
	id := fs.Uint64("id", 1, "peer ID (unique across the control plane)")
	capacity := fs.String("capacity", "1000000,100000", "full PFS capacity as data,meta ops/s (same at every peer)")
	algorithm := fs.String("algorithm", "psfa", "control algorithm")
	interval := fs.Duration("interval", time.Second, "control cycle interval (0 = stress)")
	peersList := fs.String("peers", "", "comma-separated id=addr fellow peers, e.g. 2=host2:7002,3=host3:7002")
	fs.Parse(args)

	cap, err := parseRates(*capacity)
	if err != nil {
		return err
	}
	alg, err := controlalg.New(*algorithm)
	if err != nil {
		return err
	}
	p, err := controller.StartPeer(controller.PeerConfig{
		ID:        *id,
		Network:   tcpnet.New(),
		Algorithm: alg,

		ListenAddr: *listen,
		Capacity:   cap,
		Logf:       logf,
	})
	if err != nil {
		return err
	}
	closeP := sync.OnceFunc(func() { p.Close() })
	defer closeP()
	fmt.Printf("peer %d listening on %s\n", p.ID(), p.Addr())

	if *peersList != "" {
		for _, entry := range strings.Split(*peersList, ",") {
			entry = strings.TrimSpace(entry)
			if entry == "" {
				continue
			}
			idStr, addr, ok := strings.Cut(entry, "=")
			if !ok {
				return fmt.Errorf("peer: bad -peers entry %q (want id=addr)", entry)
			}
			pid, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				return fmt.Errorf("peer: bad peer id %q: %v", idStr, err)
			}
			if err := p.AddPeer(ctx, pid, addr); err != nil {
				return err
			}
			fmt.Printf("meshed with peer %d at %s\n", pid, addr)
		}
	}

	err = p.Run(ctx, *interval)
	closeP() // drain before reporting, same as serve
	s := p.Recorder().Summarize()
	fmt.Println("\n--- final report ---")
	fmt.Print(s.String())
	if ctx.Err() != nil {
		return nil
	}
	return err
}

func runStages(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stages", flag.ExitOnError)
	parent := fs.String("parent", "", "parent controller registration address (required)")
	count := fs.Int("count", 50, "number of virtual stages in this process")
	baseID := fs.Uint64("base-id", 0, "first stage ID (0 derives from PID)")
	job := fs.Uint64("job", 1, "job ID the stages serve")
	weight := fs.Float64("weight", 1, "job QoS weight")
	spec := fs.String("workload", "stress", "workload spec (see workload.Parse)")
	listenHost := fs.String("host", "", "advertised host for stage listeners (default: OS-chosen)")
	fs.Parse(args)

	if *parent == "" {
		return fmt.Errorf("stages: -parent is required")
	}
	gen, err := workload.Parse(*spec)
	if err != nil {
		return err
	}
	base := *baseID
	if base == 0 {
		base = uint64(os.Getpid()) * 1_000_000
	}

	network := tcpnet.New()
	var stages []*stage.Virtual
	defer func() {
		for _, v := range stages {
			v.Close()
		}
	}()
	for i := 0; i < *count; i++ {
		v, err := stage.StartVirtual(stage.Config{
			ID:         base + uint64(i),
			JobID:      *job,
			Weight:     *weight,
			Generator:  gen,
			Network:    network,
			ListenAddr: *listenHost + ":0",
		})
		if err != nil {
			return fmt.Errorf("stage %d: %w", i, err)
		}
		stages = append(stages, v)
		if err := stage.Register(ctx, network, *parent, v.Info()); err != nil {
			return fmt.Errorf("register stage %d: %w", i, err)
		}
	}
	fmt.Printf("%d virtual stages registered with %s (job %d, weight %g, workload %s)\n",
		len(stages), *parent, *job, *weight, *spec)
	<-ctx.Done()

	var collects, enforces uint64
	for _, v := range stages {
		c, e := v.Counters()
		collects += c
		enforces += e
	}
	fmt.Printf("\nstages served %d collects, %d enforces\n", collects, enforces)
	return nil
}

// runStore dispatches the offline store tooling: `sdsctl store inspect
// <dir>` prints the snapshot, log records, and recovered state of a
// controller data directory without opening it for writing.
func runStore(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("store: usage: sdsctl store inspect <dir>")
	}
	switch args[0] {
	case "inspect":
		fs := flag.NewFlagSet("store inspect", flag.ExitOnError)
		fs.Parse(args[1:])
		if fs.NArg() != 1 {
			return fmt.Errorf("store inspect: usage: sdsctl store inspect <dir>")
		}
		return store.Inspect(fs.Arg(0), os.Stdout)
	default:
		return fmt.Errorf("store: unknown subcommand %q (want inspect)", args[0])
	}
}

// runTopology validates a declarative sdscale.Topology spec and dry-runs it
// as a simulated deployment: the fastest way to sanity-check a spec before
// assembling the same deployment role by role over TCP.
func runTopology(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("topology", flag.ExitOnError)
	stages := fs.Int("stages", 1000, "fleet size (one virtual stage per simulated compute node)")
	jobs := fs.Int("jobs", 16, "jobs the stages are spread over")
	shards := fs.Int("shards", 1, "concurrently active shard leaders the fleet is partitioned across")
	standbys := fs.Int("standbys", 0, "warm standbys per shard (at most 2; 2 = majority quorum)")
	fanIn := fs.Int("fanin", 0, "stages per aggregator (hierarchical design; exclusive with -shards > 1)")
	capacity := fs.String("capacity", "1000000,100000", "PFS capacity as data,meta ops/s")
	cycles := fs.Int("cycles", 5, "control cycles to run in the dry-run")
	validateOnly := fs.Bool("validate", false, "validate the spec and exit without building anything")
	fs.Parse(args)

	cap, err := parseRates(*capacity)
	if err != nil {
		return err
	}
	spec := sdscale.Topology{
		Stages:          *stages,
		Jobs:            *jobs,
		Shards:          *shards,
		Standbys:        *standbys,
		AggregatorFanIn: *fanIn,
		Capacity:        cap,
		Net:             sdscale.ExperimentNet(),
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	fmt.Printf("topology spec valid: %d stages, %d jobs, %d shard(s), %d standby(s)/shard",
		*stages, *jobs, *shards, *standbys)
	if *fanIn > 0 {
		fmt.Printf(", aggregator fan-in %d (%d aggregators)", *fanIn, (*stages+*fanIn-1) / *fanIn)
	}
	fmt.Println()
	if *validateOnly {
		return nil
	}

	start := time.Now()
	d, err := sdscale.StartTopology(spec)
	if err != nil {
		return err
	}
	defer d.Close()
	fmt.Printf("built simulated deployment in %v\n", time.Since(start).Round(time.Millisecond))

	for i := 0; i < *cycles; i++ {
		if _, err := d.RunCycle(ctx); err != nil {
			return fmt.Errorf("cycle %d: %w", i+1, err)
		}
	}
	fmt.Println()
	fmt.Print(d.Summary().String())

	st := d.Stats()
	fmt.Printf("\nshard route table (%d shard(s), max epoch %d):\n", st.Shards, st.MaxEpoch)
	for i, cs := range st.PerShard {
		fmt.Printf("  shard %d: epoch %d, %d children, %d quarantined, %d call errors\n",
			i, cs.Epoch, cs.Children, cs.Quarantined, cs.CallErrors)
	}
	if st.Shards > 1 {
		fmt.Println("\nsample placement (stage -> shard):")
		for _, id := range []uint64{1, uint64(*stages / 2), uint64(*stages)} {
			s, _ := d.Route(id)
			fmt.Printf("  stage %-8d -> shard %d\n", id, s)
		}
	}
	return nil
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}
