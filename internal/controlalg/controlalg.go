// Package controlalg implements the control algorithms the global
// controller runs in the compute phase of every control cycle.
//
// The paper's study runs PSFA — proportional sharing without false
// allocation (from the Cheferd work) — which assigns each job a weighted
// share of the PFS's administrator-configured maximum operation rate while
// (a) never allocating capacity a job is not demanding ("no false
// allocation") and (b) proportionally redistributing leftover capacity to
// active jobs ("no under-provisioning"). Baseline algorithms with the
// classic flaws are included for comparison benchmarks.
package controlalg

import (
	"fmt"
	"sort"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// JobInput is one job's state as seen by the algorithm: its QoS weight and
// its cluster-wide aggregated demand.
type JobInput struct {
	// JobID identifies the job.
	JobID uint64
	// Weight is the job's QoS weight; higher weights receive
	// proportionally more capacity under saturation. Non-positive weights
	// are treated as 1.
	Weight float64
	// Demand is the job's aggregate attempted operation rate per class.
	Demand wire.Rates
	// Stages is the number of data-plane stages serving the job.
	Stages uint32
}

// JobAllocation is the algorithm's output for one job: the cluster-wide
// per-class rate the job may be admitted at.
type JobAllocation struct {
	// JobID identifies the job.
	JobID uint64
	// Limit is the allocated rate ceiling per class.
	Limit wire.Rates
}

// Algorithm computes per-job allocations from per-job demands and the
// administrator-configured capacity of the shared PFS.
type Algorithm interface {
	// Name returns the algorithm's registry name.
	Name() string
	// Allocate distributes capacity over jobs. Implementations must return
	// one allocation per input job, in the same order.
	Allocate(jobs []JobInput, capacity wire.Rates) []JobAllocation
}

// weight returns the sanitized weight of a job.
func weight(j JobInput) float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}

// PSFA is proportional sharing without false allocation: a demand-aware,
// weighted water-filling allocator.
//
// Per operation class, with capacity C, demands d_i and weights w_i:
//
//   - If Σd ≤ C (under-load): every job gets its demand plus a weighted
//     share of the leftover C-Σd, distributed across active jobs (d_i > 0),
//     so capacity is never left stranded.
//   - If Σd > C (saturation): allocations are min(d_i, λ·w_i) with λ chosen
//     so Σ alloc = C — jobs demanding less than their fair share keep only
//     their demand (no false allocation) and the residue raises everyone
//     else's water level proportionally to weight.
type PSFA struct{}

// Name implements Algorithm.
func (PSFA) Name() string { return "psfa" }

// Allocate implements Algorithm.
func (PSFA) Allocate(jobs []JobInput, capacity wire.Rates) []JobAllocation {
	out := newAllocations(jobs)
	for c := 0; c < int(wire.NumClasses); c++ {
		allocateClass(jobs, out, wire.OpClass(c), capacity[c])
	}
	return out
}

// allocateClass runs PSFA for one operation class, writing into out.
func allocateClass(jobs []JobInput, out []JobAllocation, class wire.OpClass, capacity float64) {
	if capacity <= 0 || len(jobs) == 0 {
		return
	}
	var totalDemand, activeWeight float64
	for i := range jobs {
		totalDemand += jobs[i].Demand[class]
		if jobs[i].Demand[class] > 0 {
			activeWeight += weight(jobs[i])
		}
	}

	if totalDemand <= capacity {
		// Under-load: satisfy all demand, spread leftover over active jobs
		// by weight. With no active jobs, leave allocations at zero demand
		// plus an equal-weight split so newly arriving work can start.
		leftover := capacity - totalDemand
		if activeWeight > 0 {
			for i := range jobs {
				alloc := jobs[i].Demand[class]
				if jobs[i].Demand[class] > 0 {
					alloc += leftover * weight(jobs[i]) / activeWeight
				}
				out[i].Limit[class] = alloc
			}
			return
		}
		var totalWeight float64
		for i := range jobs {
			totalWeight += weight(jobs[i])
		}
		for i := range jobs {
			out[i].Limit[class] = capacity * weight(jobs[i]) / totalWeight
		}
		return
	}

	// Saturation: weighted water-filling with demand caps.
	idx := make([]int, len(jobs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ja, jb := jobs[idx[a]], jobs[idx[b]]
		return ja.Demand[class]/weight(ja) < jb.Demand[class]/weight(jb)
	})

	remaining := capacity
	remainingWeight := 0.0
	for i := range jobs {
		remainingWeight += weight(jobs[i])
	}
	for _, i := range idx {
		w := weight(jobs[i])
		fair := remaining * w / remainingWeight
		alloc := jobs[i].Demand[class]
		if alloc > fair {
			alloc = fair
		}
		out[i].Limit[class] = alloc
		remaining -= alloc
		remainingWeight -= w
		if remainingWeight <= 0 {
			break
		}
	}
}

// Uniform is the naive baseline: capacity split equally across jobs,
// ignoring both demand and weights. It exhibits classic false allocation —
// idle jobs hold capacity hostage.
type Uniform struct{}

// Name implements Algorithm.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Algorithm.
func (Uniform) Allocate(jobs []JobInput, capacity wire.Rates) []JobAllocation {
	out := newAllocations(jobs)
	if len(jobs) == 0 {
		return out
	}
	n := float64(len(jobs))
	for i := range out {
		for c := range out[i].Limit {
			out[i].Limit[c] = capacity[c] / n
		}
	}
	return out
}

// WeightedStatic is proportional sharing WITH false allocation: each job
// receives its weighted share of capacity regardless of demand. It honors
// priorities but strands the capacity of under-demanding jobs.
type WeightedStatic struct{}

// Name implements Algorithm.
func (WeightedStatic) Name() string { return "weighted-static" }

// Allocate implements Algorithm.
func (WeightedStatic) Allocate(jobs []JobInput, capacity wire.Rates) []JobAllocation {
	out := newAllocations(jobs)
	var totalWeight float64
	for i := range jobs {
		totalWeight += weight(jobs[i])
	}
	if totalWeight == 0 {
		return out
	}
	for i := range out {
		share := weight(jobs[i]) / totalWeight
		for c := range out[i].Limit {
			out[i].Limit[c] = capacity[c] * share
		}
	}
	return out
}

// MaxMin is unweighted demand-aware max-min fairness: PSFA with all weights
// forced to 1. Included to isolate the effect of weights in ablations.
type MaxMin struct{}

// Name implements Algorithm.
func (MaxMin) Name() string { return "maxmin" }

// Allocate implements Algorithm.
func (MaxMin) Allocate(jobs []JobInput, capacity wire.Rates) []JobAllocation {
	unweighted := make([]JobInput, len(jobs))
	copy(unweighted, jobs)
	for i := range unweighted {
		unweighted[i].Weight = 1
	}
	return PSFA{}.Allocate(unweighted, capacity)
}

// StrictPriority serves jobs in descending weight order: a job's demand is
// satisfied in full (capacity permitting) before any lower-weight job
// receives anything; ties share their level's remainder by demand-aware
// equal-weight water-filling. It models the hard I/O-prioritization
// policies of systems like PriorityMeister — effective for the top job,
// starvation-prone for the rest, which is why the paper's study uses the
// fairness-preserving PSFA instead.
type StrictPriority struct{}

// Name implements Algorithm.
func (StrictPriority) Name() string { return "strict-priority" }

// Allocate implements Algorithm.
func (StrictPriority) Allocate(jobs []JobInput, capacity wire.Rates) []JobAllocation {
	out := newAllocations(jobs)
	// Group job indices by weight, descending.
	byWeight := make(map[float64][]int)
	weights := make([]float64, 0, len(jobs))
	for i := range jobs {
		w := weight(jobs[i])
		if _, ok := byWeight[w]; !ok {
			weights = append(weights, w)
		}
		byWeight[w] = append(byWeight[w], i)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(weights)))

	for c := 0; c < int(wire.NumClasses); c++ {
		remaining := capacity[c]
		for _, w := range weights {
			if remaining <= 0 {
				break
			}
			level := byWeight[w]
			var levelDemand float64
			for _, i := range level {
				levelDemand += jobs[i].Demand[wire.OpClass(c)]
			}
			if levelDemand <= remaining {
				// The whole level fits; leftover cascades down.
				for _, i := range level {
					out[i].Limit[c] = jobs[i].Demand[wire.OpClass(c)]
				}
				remaining -= levelDemand
				continue
			}
			// The level saturates the residue: equal-weight water-fill
			// within it, then stop.
			levelJobs := make([]JobInput, len(level))
			for k, i := range level {
				levelJobs[k] = jobs[i]
				levelJobs[k].Weight = 1
			}
			levelOut := make([]JobAllocation, len(level))
			for k := range levelOut {
				levelOut[k].JobID = levelJobs[k].JobID
			}
			allocateClass(levelJobs, levelOut, wire.OpClass(c), remaining)
			for k, i := range level {
				out[i].Limit[c] = levelOut[k].Limit[c]
			}
			remaining = 0
		}
	}
	return out
}

// newAllocations pre-sizes the output slice with job IDs filled in.
func newAllocations(jobs []JobInput) []JobAllocation {
	out := make([]JobAllocation, len(jobs))
	for i := range jobs {
		out[i].JobID = jobs[i].JobID
	}
	return out
}

// New returns the named algorithm, or an error listing the known names.
func New(name string) (Algorithm, error) {
	switch name {
	case "psfa":
		return PSFA{}, nil
	case "uniform":
		return Uniform{}, nil
	case "weighted-static":
		return WeightedStatic{}, nil
	case "maxmin":
		return MaxMin{}, nil
	case "strict-priority":
		return StrictPriority{}, nil
	}
	return nil, fmt.Errorf("controlalg: unknown algorithm %q (known: psfa, uniform, weighted-static, maxmin, strict-priority)", name)
}

// SplitProportional divides a job's cluster-wide allocation into per-stage
// limits proportional to each stage's observed demand, falling back to an
// even split for classes with no demand anywhere. Used by the flat design,
// where the controller sees every stage's report.
func SplitProportional(alloc wire.Rates, stageDemands []wire.Rates) []wire.Rates {
	n := len(stageDemands)
	if n == 0 {
		return nil
	}
	var total wire.Rates
	for _, d := range stageDemands {
		total = total.Add(d)
	}
	out := make([]wire.Rates, n)
	for c := 0; c < int(wire.NumClasses); c++ {
		if total[c] > 0 {
			for i, d := range stageDemands {
				out[i][c] = alloc[c] * d[c] / total[c]
			}
		} else {
			for i := range out {
				out[i][c] = alloc[c] / float64(n)
			}
		}
	}
	return out
}

// SplitUniform divides a job's cluster-wide allocation evenly across its
// stages. Used by the hierarchical design, where the global controller only
// sees pre-aggregated per-job metrics (paper §III-B) and therefore cannot
// weight stages individually.
func SplitUniform(alloc wire.Rates, stages int) wire.Rates {
	if stages <= 0 {
		return wire.Rates{}
	}
	return alloc.Scale(1 / float64(stages))
}
