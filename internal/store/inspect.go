package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// kindName returns the mnemonic for a record kind.
func kindName(k byte) string {
	switch k {
	case kindRegister:
		return "register"
	case kindEvict:
		return "evict"
	case kindRules:
		return "rules"
	case kindWeight:
		return "weight"
	case kindEpoch:
		return "epoch"
	case kindVote:
		return "vote"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Inspect dumps a human-readable listing of the snapshot and log found in
// dir to w. It is read-only and never mutates the directory, so it is safe
// to point at a crashed controller's data directory before deciding whether
// to recover from it. A torn or corrupt log tail is reported, not an error:
// that is exactly the state a crash leaves and Open would truncate.
func Inspect(dir string, w io.Writer) error {
	snapPath := filepath.Join(dir, snapshotFile)
	raw, err := os.ReadFile(snapPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		fmt.Fprintf(w, "snapshot: none (%s missing)\n", snapshotFile)
	case err != nil:
		return fmt.Errorf("read snapshot: %w", err)
	default:
		payload, _, ferr := readFrame(raw)
		if ferr != nil {
			fmt.Fprintf(w, "snapshot: CORRUPT (%d bytes): %v\n", len(raw), ferr)
			break
		}
		watermark, voted, sync, derr := decodeSnapshot(payload)
		if derr != nil {
			fmt.Fprintf(w, "snapshot: CORRUPT payload (%d bytes): %v\n", len(raw), derr)
			break
		}
		rules := 0
		for i := range sync.Members {
			rules += len(sync.Members[i].Rules)
		}
		fmt.Fprintf(w, "snapshot: %d bytes, watermark LSN %d\n", len(raw), watermark)
		fmt.Fprintf(w, "  epoch %d  voted %d  cycle %d  members %d  rules %d  weights %d\n",
			sync.Epoch, voted, sync.Cycle, len(sync.Members), rules, len(sync.Weights))
		for i := range sync.Members {
			m := &sync.Members[i]
			fmt.Fprintf(w, "  member id=%d role=%s job=%d addr=%s stages=%d rules=%d\n",
				m.ID, m.Role, m.JobID, m.Addr, len(m.Stages), len(m.Rules))
		}
		for _, jw := range sync.Weights {
			fmt.Fprintf(w, "  weight job=%d %g\n", jw.JobID, jw.Weight)
		}
	}

	logPath := filepath.Join(dir, logFile)
	raw, err = os.ReadFile(logPath)
	if errors.Is(err, os.ErrNotExist) {
		fmt.Fprintf(w, "log: none (%s missing)\n", logFile)
		return nil
	}
	if err != nil {
		return fmt.Errorf("read log: %w", err)
	}
	fmt.Fprintf(w, "log: %d bytes\n", len(raw))
	off, count := 0, 0
	for off < len(raw) {
		payload, n, ferr := readFrame(raw[off:])
		if ferr != nil {
			fmt.Fprintf(w, "  TORN/CORRUPT tail at offset %d (%d bytes dropped on open): %v\n",
				off, len(raw)-off, ferr)
			return nil
		}
		rec, derr := parseRecord(payload)
		if derr != nil {
			fmt.Fprintf(w, "  UNPARSEABLE record at offset %d (replay stops here): %v\n", off, derr)
			return nil
		}
		count++
		switch rec.kind {
		case kindRegister:
			fmt.Fprintf(w, "  lsn=%d %s id=%d role=%s job=%d addr=%s stages=%d\n",
				rec.lsn, kindName(rec.kind), rec.member.ID, rec.member.Role,
				rec.member.JobID, rec.member.Addr, len(rec.member.Stages))
		case kindEvict:
			fmt.Fprintf(w, "  lsn=%d %s id=%d\n", rec.lsn, kindName(rec.kind), rec.childID)
		case kindRules:
			fmt.Fprintf(w, "  lsn=%d %s child=%d cycle=%d rules=%d\n",
				rec.lsn, kindName(rec.kind), rec.childID, rec.cycle, len(rec.rules))
		case kindWeight:
			fmt.Fprintf(w, "  lsn=%d %s job=%d %g\n", rec.lsn, kindName(rec.kind), rec.jobID, rec.weight)
		case kindEpoch, kindVote:
			fmt.Fprintf(w, "  lsn=%d %s %d\n", rec.lsn, kindName(rec.kind), rec.epoch)
		}
		off += n
	}
	fmt.Fprintf(w, "log: %d records, clean tail\n", count)
	return nil
}
