package rpc

import (
	"errors"
	"net"
	"sync"

	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Handler processes one request and returns the response message. Returning
// an error sends a wire.ErrorReply to the caller. Requests arriving on the
// same connection are handled in order; distinct connections are concurrent.
type Handler interface {
	Serve(peer *Peer, req wire.Message) (wire.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(peer *Peer, req wire.Message) (wire.Message, error)

// Serve implements Handler.
func (f HandlerFunc) Serve(peer *Peer, req wire.Message) (wire.Message, error) {
	return f(peer, req)
}

// Peer represents one client connection as seen by server handlers. It
// carries an attachment slot so a handler can associate state (e.g. the
// registered member identity) with the connection across requests.
type Peer struct {
	conn net.Conn

	mu         sync.Mutex
	attachment any
}

// RemoteAddr returns the peer's address.
func (p *Peer) RemoteAddr() net.Addr { return p.conn.RemoteAddr() }

// SetAttachment associates v with the connection.
func (p *Peer) SetAttachment(v any) {
	p.mu.Lock()
	p.attachment = v
	p.mu.Unlock()
}

// Attachment returns the value set by SetAttachment, or nil.
func (p *Peer) Attachment() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attachment
}

// Close severs the peer's connection. Used by servers to evict members.
func (p *Peer) Close() error { return p.conn.Close() }

// ServerOptions configures a Server.
type ServerOptions struct {
	// Meter, if non-nil, is charged with all accepted connections' traffic.
	Meter *transport.Meter
	// CPU, if non-nil, is charged with request handling and response
	// marshal/write time (but not with time blocked waiting for requests).
	CPU *monitor.CPUMeter
	// Logf, if non-nil, receives connection-level error logs.
	Logf func(format string, args ...any)
	// OnDisconnect, if non-nil, runs when a peer's connection ends.
	OnDisconnect func(peer *Peer)
}

// Server accepts RPC connections and dispatches requests to a Handler.
type Server struct {
	l       net.Listener
	handler Handler
	opts    ServerOptions

	mu     sync.Mutex
	peers  map[*Peer]struct{}
	closed bool

	acceptWG sync.WaitGroup // the accept loop
	connWG   sync.WaitGroup // per-connection handler goroutines
}

// Serve starts a server listening on addr over network. It returns once the
// listener is active; request handling proceeds in background goroutines.
func Serve(network transport.Network, addr string, h Handler, opts ServerOptions) (*Server, error) {
	l, err := network.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := &Server{l: l, handler: h, opts: opts, peers: make(map[*Peer]struct{})}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// NumPeers returns the number of currently connected peers.
func (s *Server) NumPeers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.logf("rpc: accept: %v", err)
			}
			return
		}
		peer := &Peer{conn: transport.WithMeter(conn, s.opts.Meter)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.peers[peer] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.serveConn(peer)
	}
}

// serveConn handles one connection's requests in order until it dies.
func (s *Server) serveConn(peer *Peer) {
	defer s.connWG.Done()
	defer func() {
		peer.conn.Close()
		s.mu.Lock()
		delete(s.peers, peer)
		s.mu.Unlock()
		if s.opts.OnDisconnect != nil {
			s.opts.OnDisconnect(peer)
		}
	}()

	var rbuf, wbuf []byte
	for {
		h, req, nbuf, err := readFrame(peer.conn, rbuf)
		rbuf = nbuf
		if err != nil {
			return // EOF or broken conn; cleanup in defer
		}
		if h.kind != kindRequest {
			continue
		}
		var untrack func()
		if s.opts.CPU != nil {
			untrack = s.opts.CPU.Track()
		}
		resp := s.dispatch(peer, req)
		wbuf = appendFrame(wbuf[:0], frameHeader{id: h.id, kind: kindResponse}, resp)
		_, err = peer.conn.Write(wbuf)
		if untrack != nil {
			untrack()
		}
		if err != nil {
			return
		}
	}
}

// dispatch runs the handler, converting errors and panics to ErrorReply so
// one bad request never kills the connection, let alone the controller.
func (s *Server) dispatch(peer *Peer, req wire.Message) (resp wire.Message) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("rpc: handler panic: %v", r)
			resp = &wire.ErrorReply{Code: wire.CodeInternal, Text: "handler panic"}
		}
	}()
	resp, err := s.handler.Serve(peer, req)
	if err != nil {
		var er *wire.ErrorReply
		if errors.As(err, &er) {
			return er
		}
		return &wire.ErrorReply{Code: wire.CodeInternal, Text: err.Error()}
	}
	if resp == nil {
		return &wire.ErrorReply{Code: wire.CodeInternal, Text: "handler returned no response"}
	}
	return resp
}

// Close stops accepting and severs all connections. Like net/http's
// Close, it does not wait for in-flight handlers — their response writes
// fail once the connection is gone. Use Wait to block for full drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.acceptWG.Wait()
		return nil
	}
	s.closed = true
	peers := make([]*Peer, 0, len(s.peers))
	for p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()

	err := s.l.Close()
	for _, p := range peers {
		p.conn.Close()
	}
	s.acceptWG.Wait()
	return err
}

// Wait blocks until every per-connection handler goroutine has exited.
// Call it after Close when full quiescence matters (e.g. before asserting
// on shared state in tests).
func (s *Server) Wait() {
	s.acceptWG.Wait()
	s.connWG.Wait()
}
