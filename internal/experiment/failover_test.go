package experiment

import (
	"context"
	"strings"
	"testing"
)

// The failover scenario at reduced scale: the primary crashes mid-run, the
// standby promotes within the lease and resumes cycles inside the recovery
// budget, every stage re-homes and fences at the new epoch, and the healed
// zombie primary is deposed by its first fenced call.
func TestFailoverReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("failover scenario waits out leases and fault schedules")
	}
	o := testOptions(0.02) // 20 nodes
	for attempt := 1; attempt <= 2; attempt++ {
		r, err := Failover(context.Background(), o)
		if err != nil {
			t.Fatalf("Failover: %v", err)
		}
		cerr := CheckFailover(r)
		if cerr == nil {
			if r.NewEpoch != r.OldEpoch+1 {
				t.Errorf("epoch %d -> %d, want a single bump", r.OldEpoch, r.NewEpoch)
			}
			var b strings.Builder
			o.Out = &b
			PrintFailover(o, r)
			out := b.String()
			for _, want := range []string{"failover", "control gap", "re-homed", "deposed=true"} {
				if !strings.Contains(out, want) {
					t.Errorf("failover renderer output missing %q:\n%s", want, out)
				}
			}
			return
		}
		t.Logf("attempt %d: gap=%v intervals=%d rehomed=%d/%d fenced=%d primary=%v standby=%v",
			attempt, r.RecoveryGap, r.CyclesToRecover, r.ReHomed, r.Nodes,
			r.FencedAtStages, r.Primary, r.Standby)
		if attempt == 2 {
			t.Fatalf("failover check failed twice: %v", cerr)
		}
		t.Logf("failover check failed (%v), retrying once", cerr)
	}
}
