package store

import (
	"bytes"
	"testing"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// FuzzWALDecode fuzzes the WAL record framing and payload parser: whatever
// readFrame+parseRecord accept must re-encode byte-identically (the codec
// is canonical), and nothing the fuzzer throws at it may crash or
// over-allocate.
func FuzzWALDecode(f *testing.F) {
	seeds := []record{
		{lsn: 1, kind: kindRegister, member: wire.MemberState{
			Role: wire.RoleStage, ID: 7, JobID: 2, Weight: 1.5, Addr: "10.0.0.7:7000",
		}},
		{lsn: 2, kind: kindRegister, member: wire.MemberState{
			Role: wire.RoleAggregator, ID: 100, Addr: "10.0.1.1:7000",
			Stages: []wire.StageEntry{{ID: 7, JobID: 2, Weight: 1.5, Addr: "10.0.0.7:7000"}},
		}},
		{lsn: 3, kind: kindEvict, childID: 7},
		{lsn: 4, kind: kindRules, cycle: 9, childID: 7, rules: []wire.Rule{
			{StageID: 7, JobID: 2, Action: wire.ActionSetLimit, Limit: wire.Rates{1000, 50}},
			{StageID: wire.WildcardStage, JobID: 2, Action: wire.ActionNoLimit},
		}},
		{lsn: 5, kind: kindWeight, jobID: 2, weight: 2.25},
		{lsn: 6, kind: kindEpoch, epoch: 42},
		{lsn: 7, kind: kindVote, epoch: 43},
	}
	for _, rec := range seeds {
		f.Add(encodeFrameForTest(rec))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := readFrame(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("readFrame consumed %d of %d bytes", n, len(data))
		}
		rec, perr := parseRecord(payload)
		if perr != nil {
			return
		}
		// Accepted records must re-encode to a parseable record, and the
		// re-encoding must be canonical (a second round trip is stable).
		re := encodeRecordBody(nil, rec)
		rec2, perr := parseRecord(re)
		if perr != nil {
			t.Fatalf("re-encoded record unparseable: %v\nbytes: %x", perr, re)
		}
		if re2 := encodeRecordBody(nil, rec2); !bytes.Equal(re, re2) {
			t.Fatalf("encoding not canonical:\n%x\n%x", re, re2)
		}
		// Framing round trip: frame it, read it back.
		rec2.lsn = rec.lsn
		frame := encodeFrameForTest(rec2)
		payload2, _, err := readFrame(frame)
		if err != nil {
			t.Fatalf("re-framed record rejected: %v", err)
		}
		if _, err := parseRecord(payload2); err != nil {
			t.Fatalf("re-framed record unparseable after framing: %v", err)
		}
	})
}
