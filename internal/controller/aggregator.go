package controller

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/cyclemem"
	"github.com/dsrhaslab/sdscale/internal/metrics"
	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// AggregatorConfig configures an aggregator controller.
type AggregatorConfig struct {
	// ID is the aggregator's cluster-unique identifier.
	ID uint64
	// Network is the transport used to listen (for the global controller)
	// and to dial stages.
	Network transport.Network
	// ListenAddr is the address the global controller reaches the
	// aggregator at (":0" auto-assigns).
	ListenAddr string
	// FanOut bounds the aggregator's dispatch parallelism toward its
	// stages. Zero selects DefaultFanOut.
	FanOut int
	// FanOutMode selects the collect/enforce dispatch strategy; the zero
	// value pipelines requests over the stage connections. See
	// GlobalConfig.FanOutMode.
	FanOutMode FanOutMode
	// CallTimeout bounds each stage RPC. Zero selects 10 seconds.
	CallTimeout time.Duration
	// MaxCodec caps the wire codec version the aggregator negotiates, on
	// both its upstream server and its stage connections. Zero selects the
	// newest supported version; 1 pins the legacy v1 codec.
	MaxCodec int
	// MaxFailures is the consecutive-failure threshold that trips a
	// stage's circuit breaker into quarantine. Zero selects
	// DefaultMaxFailures.
	MaxFailures int
	// ProbeInterval / MaxProbeInterval shape the half-open probe backoff
	// for quarantined stages; StaleAfter bounds last-known-report age in
	// degraded collects; EvictAfter (zero = never) permanently removes a
	// stage quarantined that long. See GlobalConfig for details.
	ProbeInterval    time.Duration
	MaxProbeInterval time.Duration
	StaleAfter       time.Duration
	EvictAfter       time.Duration
	// ForwardRaw disables metric pre-aggregation: the aggregator relays
	// every stage's raw report to the global controller instead of per-job
	// sums. This exists for the ablation benchmarks that quantify what
	// pre-aggregation buys (the paper's Table III network asymmetry and
	// Table IV CPU migration); production deployments leave it false.
	ForwardRaw bool
	// LocalControl enables delegated enforcement (paper §VI future work):
	// the global controller sends per-job capacity budgets (O(jobs)
	// payload) and this aggregator computes per-stage rules itself from
	// its latest per-stage demand view. The global controller must run
	// with GlobalConfig.Delegated.
	LocalControl bool
	// Incremental makes the aggregator answer upstream Collects from its
	// push-maintained report cache: stages push deltas as their rates move,
	// and the stage-facing collect scatter shrinks to the edge cases
	// (never reported, forced after re-registration or readmission, cache
	// past IncrementalFloor, v1 codec). Enforce sends are also diffed per
	// stage, skipping unchanged rules. Requires FanOutPipelined; with
	// FanOutBlocking the full fan-out runs unchanged. The upstream reply is
	// built the same way either way, so the global controller needs no
	// matching configuration.
	Incremental bool
	// IncrementalFloor bounds how old a stage's cached report may grow
	// before an incremental collect refreshes it explicitly. It must exceed
	// the stage-side push floor (stage.Config.PushFloor). Zero selects
	// StaleAfter.
	IncrementalFloor time.Duration
	// Meter, if non-nil, is charged with all the aggregator's traffic.
	Meter *transport.Meter
	// CPU, if non-nil, is charged with the aggregator's busy time
	// (aggregation compute and send-path marshaling).
	CPU *monitor.CPUMeter
	// Tracer, if non-nil, records this aggregator's spans: one per stage
	// RPC (tagged with the stage's ID) plus server spans for upstream
	// requests. The tracer carries per-phase cycle context, so it must be
	// exclusive to this aggregator.
	Tracer *trace.Tracer
	// Logf, if non-nil, receives operational logs.
	Logf func(format string, args ...any)
	// Parents, if non-empty, lists the global controllers (primary first,
	// then standbys) the aggregator re-homes to: when no parent has
	// contacted it for ParentTimeout, it walks the list and re-registers
	// with the first controller that answers.
	Parents []string
	// ParentTimeout is the silence threshold that triggers re-homing. Zero
	// selects stage.DefaultParentTimeout.
	ParentTimeout time.Duration
}

func (c AggregatorConfig) withDefaults() AggregatorConfig {
	if c.ListenAddr == "" {
		c.ListenAddr = ":0"
	}
	if c.FanOut <= 0 {
		c.FanOut = DefaultFanOut
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 10 * time.Second
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = DefaultMaxFailures
	}
	if c.ParentTimeout <= 0 {
		c.ParentTimeout = stage.DefaultParentTimeout
	}
	return c
}

// Aggregator is the mid-tier controller of the hierarchical design (paper
// Fig. 3): it disseminates the global controller's requests to its disjoint
// set of stages, pre-aggregates their metrics per job, and fans enforcement
// rules back out.
type Aggregator struct {
	cfg        AggregatorConfig
	breaker    breakerConfig
	server     *rpc.Server
	members    *memberSet
	faults     *telemetry.FaultCounters
	pipe       *telemetry.PipelineStats
	callErrors atomic.Uint64

	// scratch backs the per-collect membership split and collect set. The
	// upstream handlers that use it are serialized in practice — one parent
	// drives the cycle, and a deposed parent's calls are fenced by
	// checkEpoch before they reach the scatter — matching the cycle-serial
	// contract of cycleScratch.
	scratch cycleScratch
	// arena and cyc back the per-handler transient buffers under the same
	// serialization contract as scratch. collect begins a generation; the
	// enforce (or delegate) that follows it in the parent's cycle draws
	// disjoint regions from the same generation.
	arena cyclemem.Arena
	cyc   cycleMem

	// statsScr backs Stats() snapshots (guarded by its own mutex).
	statsScr statsScratch

	// Re-homing loop lifecycle (Parents configured).
	rehomeStop chan struct{}
	rehomeDone chan struct{}

	// mu guards the delegated-control state and the fencing/re-homing
	// bookkeeping.
	mu          sync.Mutex
	lastReports []wire.StageReport // most recent per-stage view (LocalControl)
	epoch       uint64             // highest leadership epoch seen
	fencedCalls uint64             // stale-epoch rejections issued
	lastContact time.Time          // last upstream control-plane contact
	rehomes     uint64             // successful re-registrations with a parent
	closed      bool
}

// StartAggregator launches an aggregator's RPC server. Stages are attached
// afterwards with AddStage.
func StartAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	cfg = cfg.withDefaults()
	a := &Aggregator{
		cfg: cfg,
		breaker: breakerConfig{
			MaxFailures:      cfg.MaxFailures,
			ProbeInterval:    cfg.ProbeInterval,
			MaxProbeInterval: cfg.MaxProbeInterval,
			StaleAfter:       cfg.StaleAfter,
			EvictAfter:       cfg.EvictAfter,
		}.withDefaults(),
		members: newMemberSet(),
		faults:  &telemetry.FaultCounters{},
		pipe:    &telemetry.PipelineStats{},
	}
	// The server deliberately gets no CPU meter: its handler blocks on the
	// stage fan-out, so handler wall time is not aggregator CPU. Busy time
	// is charged explicitly around aggregation and via the stage clients'
	// send paths.
	// Inbound requests are recycled: every handler completes its stage
	// fan-out (including shared-frame encodes) before returning, so no
	// reference to the request survives the response write.
	srv, err := rpc.Serve(cfg.Network, cfg.ListenAddr, rpc.HandlerFunc(a.serve), rpc.ServerOptions{
		Meter:         cfg.Meter,
		Logf:          cfg.Logf,
		Tracer:        cfg.Tracer,
		MaxCodec:      cfg.MaxCodec,
		ReuseRequests: true,
		ReuseHits:     a.pipe.ReuseCounter(),
	})
	if err != nil {
		return nil, fmt.Errorf("aggregator %d: %w", cfg.ID, err)
	}
	a.server = srv
	if len(cfg.Parents) > 0 {
		a.touch() // grace period before the first re-homing check
		a.rehomeStop = make(chan struct{})
		a.rehomeDone = make(chan struct{})
		go a.rehome()
	}
	return a, nil
}

// ID returns the aggregator's identifier.
func (a *Aggregator) ID() uint64 { return a.cfg.ID }

// Addr returns the aggregator's listen address.
func (a *Aggregator) Addr() string { return a.server.Addr().String() }

// NumStages returns the number of stages the aggregator manages.
func (a *Aggregator) NumStages() int { return a.members.size() }

// Faults returns the aggregator's fault-tolerance counters.
func (a *Aggregator) Faults() *telemetry.FaultCounters { return a.faults }

// NumQuarantined returns how many managed stages currently sit behind a
// tripped circuit breaker.
//
// Deprecated: use Stats().Quarantined.
func (a *Aggregator) NumQuarantined() int {
	_, quarantined := splitQuarantined(a.members.snapshot())
	return len(quarantined)
}

func (a *Aggregator) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Stages returns the managed stages' identities.
func (a *Aggregator) Stages() []stage.Info {
	children := a.members.snapshot()
	out := make([]stage.Info, len(children))
	for i, c := range children {
		out[i] = c.info
	}
	return out
}

// AddStage connects the aggregator to a stage it will manage.
func (a *Aggregator) AddStage(ctx context.Context, info stage.Info) error {
	cli, err := rpc.DialReconnecting(ctx, a.cfg.Network, info.Addr,
		rpc.DialOptions{Meter: a.cfg.Meter, CPU: a.cfg.CPU, Tracer: a.cfg.Tracer, SpanTag: info.ID,
			MaxCodec: a.cfg.MaxCodec, ReuseReplies: true, ReuseHits: a.pipe.ReuseCounter(),
			OnPush: a.onPush},
		a.breaker.reconnectPolicy())
	if err != nil {
		return fmt.Errorf("aggregator %d: dial stage %d at %s: %w", a.cfg.ID, info.ID, info.Addr, err)
	}
	c := &child{info: info, role: wire.RoleStage, cli: cli}
	if !a.members.add(c) {
		cli.Close()
		return fmt.Errorf("aggregator %d: duplicate stage ID %d", a.cfg.ID, info.ID)
	}
	return nil
}

// serve handles requests from the global controller (and dynamic stage
// registrations).
func (a *Aggregator) serve(peer *rpc.Peer, req wire.Message) (wire.Message, error) {
	switch m := req.(type) {
	case *wire.Collect:
		if er := a.checkEpoch(m.Epoch); er != nil {
			return nil, er
		}
		return a.collect(m)
	case *wire.Enforce:
		if er := a.checkEpoch(m.Epoch); er != nil {
			return nil, er
		}
		return a.enforce(m)
	case *wire.Delegate:
		a.touch()
		return a.delegate(m)
	case *wire.Heartbeat:
		a.touch()
		return &wire.HeartbeatAck{EchoUnixMicros: m.SentUnixMicros}, nil
	case *wire.StageList:
		a.touch()
		children := a.members.snapshot()
		reply := &wire.StageListReply{Stages: make([]wire.StageEntry, len(children))}
		for i, c := range children {
			reply.Stages[i] = wire.StageEntry{ID: c.info.ID, JobID: c.info.JobID, Weight: c.info.Weight, Addr: c.info.Addr}
		}
		return reply, nil
	case *wire.Register:
		return a.handleRegister(m)
	}
	return nil, fmt.Errorf("aggregator %d: unexpected %s", a.cfg.ID, req.Type())
}

// handleRegister admits new stages and treats a duplicate registration from
// a known stage ID as a reconnect: the stale connection is replaced and the
// breaker state kept.
func (a *Aggregator) handleRegister(m *wire.Register) (wire.Message, error) {
	if m.Role != wire.RoleStage {
		return nil, &wire.ErrorReply{Code: wire.CodeBadMessage, Text: "only stages may register with an aggregator"}
	}
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.CallTimeout)
	defer cancel()
	if c := a.members.get(m.ID); c != nil {
		cli, err := rpc.DialReconnecting(ctx, a.cfg.Network, m.Addr,
			rpc.DialOptions{Meter: a.cfg.Meter, CPU: a.cfg.CPU, Tracer: a.cfg.Tracer, SpanTag: m.ID,
				MaxCodec: a.cfg.MaxCodec, ReuseReplies: true, ReuseHits: a.pipe.ReuseCounter(),
				OnPush: a.onPush},
			a.breaker.reconnectPolicy())
		if err != nil {
			return nil, fmt.Errorf("aggregator %d: redial stage %d at %s: %w", a.cfg.ID, m.ID, m.Addr, err)
		}
		c.replaceClient(cli)
		a.faults.ReRegistration()
		a.logf("aggregator %d: stage %d re-registered from %s", a.cfg.ID, m.ID, m.Addr)
		return &wire.RegisterAck{ID: m.ID, Epoch: a.Epoch()}, nil
	}
	if err := a.AddStage(ctx, stage.Info{ID: m.ID, JobID: m.JobID, Weight: m.Weight, Addr: m.Addr}); err != nil {
		return nil, err
	}
	return &wire.RegisterAck{ID: m.ID, Epoch: a.Epoch()}, nil
}

// checkEpoch is the aggregator's side of epoch fencing: calls from a lower
// leadership epoch than the highest seen are rejected (the sender was
// deposed), higher epochs are adopted, and either way live contact counts
// against the re-homing timeout.
func (a *Aggregator) checkEpoch(senderEpoch uint64) *wire.ErrorReply {
	a.mu.Lock()
	defer a.mu.Unlock()
	if senderEpoch < a.epoch {
		a.fencedCalls++
		return &wire.ErrorReply{
			Code:  wire.CodeStaleEpoch,
			Text:  fmt.Sprintf("aggregator %d: sender epoch %d deposed, current epoch is %d", a.cfg.ID, senderEpoch, a.epoch),
			Epoch: a.epoch,
		}
	}
	if senderEpoch > a.epoch {
		a.epoch = senderEpoch
	}
	a.lastContact = time.Now()
	return nil
}

// Epoch returns the highest leadership epoch the aggregator has seen.
func (a *Aggregator) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// FencedCalls returns how many stale-epoch calls the aggregator rejected.
//
// Deprecated: use Stats().FencedCalls.
func (a *Aggregator) FencedCalls() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fencedCalls
}

// ReHomes returns how many times the aggregator re-registered with a parent
// after losing contact.
//
// Deprecated: use Stats().ReHomes.
func (a *Aggregator) ReHomes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rehomes
}

func (a *Aggregator) touch() {
	a.mu.Lock()
	a.lastContact = time.Now()
	a.mu.Unlock()
}

func (a *Aggregator) contact() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastContact
}

// rehome watches for upstream silence and re-registers with the first
// reachable parent — the aggregator-side counterpart of the stage re-homing
// loop, used when a standby global takes over.
func (a *Aggregator) rehome() {
	defer close(a.rehomeDone)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-a.rehomeStop
		cancel()
	}()
	timeout := a.cfg.ParentTimeout
	tick := time.NewTicker(timeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-a.rehomeStop:
			return
		case <-tick.C:
			if time.Since(a.contact()) < timeout {
				continue
			}
			a.registerParents(ctx)
		}
	}
}

// registerParents walks the parent list until a registration succeeds,
// adopting the acknowledged leadership epoch.
func (a *Aggregator) registerParents(ctx context.Context) {
	ack, err := stage.RegisterAny(ctx, a.cfg.Network, a.cfg.Parents, stage.Info{ID: a.cfg.ID, Addr: a.Addr()}, stage.RegisterOptions{
		Role:      wire.RoleAggregator,
		BaseDelay: a.cfg.ParentTimeout / 8,
		MaxDelay:  a.cfg.ParentTimeout,
	})
	if err != nil {
		return
	}
	a.mu.Lock()
	if ack.Epoch > a.epoch {
		a.epoch = ack.Epoch
	}
	a.lastContact = time.Now()
	a.rehomes++
	a.mu.Unlock()
}

// callStage performs one stage RPC with timeout and circuit-breaker
// accounting. Caller-context cancellation is not counted against the stage.
func (a *Aggregator) callStage(ctx context.Context, c *child, req wire.Message) (wire.Message, error) {
	cctx, cancel := context.WithTimeout(ctx, a.cfg.CallTimeout)
	resp, err := c.client().Call(cctx, req)
	cancel()
	a.accountCall(ctx, c, err)
	return resp, err
}

// accountCall applies a call outcome to the error counter and circuit
// breaker; errors the caller's own ctx caused are excluded. Shared between
// callStage and the pipelined fan-out path.
func (a *Aggregator) accountCall(ctx context.Context, c *child, err error) {
	if err != nil && ctx.Err() == nil {
		a.callErrors.Add(1)
	}
	recordCall(ctx, c, err, a.breaker, a.faults, a.logf, fmt.Sprintf("aggregator %d", a.cfg.ID))
}

// fanOut dispatches one phase over the managed stages using the configured
// FanOutMode, charging every outcome to the breaker and error accounting.
func (a *Aggregator) fanOut(ctx context.Context, gauge *telemetry.Gauge, children []*child,
	reqFor func(i int) wire.Message,
	onReply func(i int, resp wire.Message)) {
	fanOutCalls(ctx, fanOutOpts{
		mode:    a.cfg.FanOutMode,
		par:     a.cfg.FanOut,
		timeout: a.cfg.CallTimeout,
		gauge:   gauge,
		arena:   &a.arena,
		calls:   &a.cyc.calls,
	}, children, reqFor, func(i int, resp wire.Message, err error) {
		a.accountCall(ctx, children[i], err)
		if err == nil && onReply != nil {
			onReply(i, resp)
		}
	})
}

// fanOutBroadcast dispatches one marshal-once broadcast phase over the
// given stages, charging outcomes to the breaker and error accounting and
// the frame's send/encode counts to the pipeline stats.
func (a *Aggregator) fanOutBroadcast(ctx context.Context, gauge *telemetry.Gauge, children []*child,
	f *rpc.SharedFrame, onReply func(i int, resp wire.Message)) {
	fanOutShared(ctx, fanOutOpts{
		mode:    a.cfg.FanOutMode,
		par:     a.cfg.FanOut,
		timeout: a.cfg.CallTimeout,
		gauge:   gauge,
		arena:   &a.arena,
		calls:   &a.cyc.calls,
	}, children, f, nil, func(i int, resp wire.Message, err error) {
		a.accountCall(ctx, children[i], err)
		if err == nil && onReply != nil {
			onReply(i, resp)
		}
	})
	a.pipe.AddSharedSends(uint64(len(children)))
	a.pipe.AddSharedEncodes(f.Encodes())
}

// onPush folds a stage's unsolicited ReportDelta into its dirty-set entry.
// It runs on the connection's read loop, so it stays cheap: one membership
// lookup plus a capacity-reusing cache write, no blocking calls.
func (a *Aggregator) onPush(m wire.Message) {
	rd, ok := m.(*wire.ReportDelta)
	if !ok {
		return
	}
	if c := a.members.get(rd.Report.StageID); c != nil {
		c.notePush(rd, time.Now())
	}
}

// incrementalActive reports whether the incremental collect/enforce paths
// apply: configured on, and the fan-out pipelined (see
// Global.incrementalActive for why blocking mode keeps the full cycle).
func (a *Aggregator) incrementalActive() bool {
	return a.cfg.Incremental && a.cfg.FanOutMode == FanOutPipelined
}

// prepareScatter probes quarantined stages (readmitting responders),
// applies EvictAfter, and returns the active/quarantined split. The
// returned slices are the aggregator's scratch, valid until the next
// prepareScatter.
func (a *Aggregator) prepareScatter(ctx context.Context) (active, quarantined []*child) {
	_, q := a.scratch.split(a.members)
	if len(q) > 0 {
		who := fmt.Sprintf("aggregator %d", a.cfg.ID)
		evictable := sweepProbes(ctx, q, a.breaker, a.cfg.FanOut, a.cfg.CallTimeout, a.faults, a.logf, who)
		for _, c := range evictable {
			if a.members.remove(c.info.ID) != nil {
				c.client().Close()
				a.faults.Evict()
				a.logf("%s: evicted stage %d after %v in quarantine", who, c.info.ID, a.breaker.EvictAfter)
			}
		}
	}
	return a.scratch.split(a.members)
}

// collect fans the request out to all stages and returns per-job
// aggregates (or, with ForwardRaw, the concatenated raw reports).
// Aggregation is the CPU-heavy step the paper observes moving from the
// global controller to the aggregators (Table IV).
func (a *Aggregator) collect(m *wire.Collect) (wire.Message, error) {
	ctx := context.Background()
	a.cfg.Tracer.SetContext(m.Cycle, a.Epoch(), uint8(a.cfg.FanOutMode), trace.PhaseProbe)
	// One arena generation per parent-driven cycle: the enforce/delegate that
	// follows this collect appends to the same generation. The previous
	// cycle's reply was fully encoded before this handler ran, so its
	// slab-backed reports are dead here.
	a.arena.Begin()
	children, quarantined := a.prepareScatter(ctx)
	if len(quarantined) > 0 {
		a.faults.DegradedCycle()
	}
	n := len(children)
	incremental := a.incrementalActive()
	targets := children
	if incremental {
		// Claim the dirty set and shrink the stage-facing scatter to the
		// edge cases; everyone else's cached push is already current.
		now := time.Now()
		floor := a.cfg.IncrementalFloor
		if floor <= 0 {
			floor = a.breaker.StaleAfter
		}
		dirty := 0
		set := a.scratch.collect[:0]
		for _, c := range children {
			wasDirty, collect := c.incrementalState(now, floor)
			if !collect && c.client().CodecVersion() < wire.CodecV2 {
				// A v1 stage cannot push deltas: keep its per-cycle collect.
				collect = true
			}
			if wasDirty {
				dirty++
			}
			if collect {
				set = append(set, c)
			}
		}
		a.scratch.collect = set
		targets = set
		a.pipe.RecordDirty(dirty)
		a.pipe.AddSuppressedCollects(uint64(n - len(set)))
	}
	replies := a.cyc.replies.Take(&a.arena, len(targets))
	a.cfg.Tracer.SetContext(m.Cycle, a.Epoch(), uint8(a.cfg.FanOutMode), trace.PhaseCollect)
	// The inbound request is re-broadcast verbatim to every stage, so it is
	// marshaled once into a shared frame. All fan-out completes before this
	// handler returns, which keeps both the frame lifecycle and the server's
	// request recycling sound.
	req := rpc.NewSharedFrame(m)
	a.fanOutBroadcast(ctx, &a.pipe.CollectInFlight, targets, req,
		func(i int, resp wire.Message) {
			if r, ok := resp.(*wire.CollectReply); ok {
				replies[i] = r
				targets[i].noteReport(r, time.Now())
			}
		})

	var untrack func()
	if a.cfg.CPU != nil {
		untrack = a.cfg.CPU.Track()
	}
	reports := a.cyc.reports.Take(&a.arena, n)[:0]
	if incremental {
		// The upstream reply reads the whole cache: pushed deltas, the
		// collects just made, and untouched-but-fresh reports all look alike.
		now := time.Now()
		for _, c := range children {
			reports, _, _ = c.appendCachedReports(reports, now, a.breaker.StaleAfter)
		}
	} else {
		for _, r := range replies {
			if r != nil {
				reports = append(reports, r.Reports...)
			}
		}
	}
	reports = appendStaleReports(reports, quarantined, a.breaker.StaleAfter, a.faults)
	if a.cfg.LocalControl {
		// delegate reads lastReports after this handler returns, beyond the
		// slab's generation — it needs a stable snapshot, not the arena slice
		// (and not a recycled buffer a later collect would scribble over).
		a.mu.Lock()
		a.lastReports = append([]wire.StageReport(nil), reports...)
		a.mu.Unlock()
	}
	if a.cfg.ForwardRaw {
		if untrack != nil {
			untrack()
		}
		return &wire.CollectReply{Cycle: m.Cycle, Reports: reports}, nil
	}
	jobs := metrics.AggregateByJob(reports)
	if untrack != nil {
		untrack()
	}
	return &wire.CollectAggReply{Cycle: m.Cycle, AggregatorID: a.cfg.ID, Jobs: jobs}, nil
}

// enforce routes each rule in the batch to its stage. Quarantined stages
// are skipped; they keep enforcing their last rules until readmitted.
func (a *Aggregator) enforce(m *wire.Enforce) (*wire.EnforceAck, error) {
	children, _ := splitQuarantined(a.members.snapshot())

	var untrack func()
	if a.cfg.CPU != nil {
		untrack = a.cfg.CPU.Track()
	}
	// Group rules by stage without a per-call map: copy the batch into an
	// arena slab (the inbound request is recycled after the reply, so the
	// rules must not alias it anyway) and stable-sort by stage, leaving each
	// stage's rules a contiguous run in arrival order.
	rules := a.cyc.ruleBuf.Take(&a.arena, len(m.Rules))
	copy(rules, m.Rules)
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].StageID < rules[j].StageID })
	batchFor := func(stageID uint64) []wire.Rule {
		lo := sort.Search(len(rules), func(i int) bool { return rules[i].StageID >= stageID })
		hi := lo
		for hi < len(rules) && rules[hi].StageID == stageID {
			hi++
		}
		return rules[lo:hi:hi]
	}
	if untrack != nil {
		untrack()
	}

	var applied atomic.Uint32
	ctx := context.Background()
	epoch := a.Epoch()
	incremental := a.incrementalActive()
	var suppressed uint64 // reqFor runs sequentially in pipelined mode
	a.cfg.Tracer.SetContext(m.Cycle, epoch, uint8(a.cfg.FanOutMode), trace.PhaseEnforce)
	// Request structs come from the arena too (index-disjoint, so safe from
	// blocking mode's concurrent reqFor) instead of allocated per call.
	enfBuf := a.cyc.enfBuf.Take(&a.arena, len(children))
	a.fanOut(ctx, &a.pipe.EnforceInFlight, children,
		func(i int) wire.Message {
			batch := batchFor(children[i].info.ID)
			if len(batch) == 0 {
				return nil
			}
			if incremental {
				// Incremental mode implies delta enforcement toward the
				// stages: unchanged rules are not re-sent.
				if batch = children[i].filterChanged(batch); len(batch) == 0 {
					suppressed++
					return nil
				}
			}
			enfBuf[i] = wire.Enforce{Cycle: m.Cycle, Rules: batch, Epoch: epoch}
			return &enfBuf[i]
		},
		func(i int, resp wire.Message) {
			if ack, ok := resp.(*wire.EnforceAck); ok {
				applied.Add(ack.Applied)
			}
		})
	if incremental {
		a.pipe.AddSuppressedEnforces(suppressed)
	}
	return &wire.EnforceAck{Cycle: m.Cycle, Applied: applied.Load()}, nil
}

// delegate computes per-stage rules from per-job budgets — the offloaded
// enforcement path of the delegated hierarchy. Each job's budget is split
// over the job's stages proportionally to the demand observed in the last
// collect, then fanned out like a normal enforce.
func (a *Aggregator) delegate(m *wire.Delegate) (*wire.EnforceAck, error) {
	if !a.cfg.LocalControl {
		return nil, &wire.ErrorReply{Code: wire.CodeBadMessage, Text: "aggregator not configured for local control"}
	}
	a.mu.Lock()
	reports := a.lastReports
	a.mu.Unlock()

	var untrack func()
	if a.cfg.CPU != nil {
		untrack = a.cfg.CPU.Track()
	}
	byJob := make(map[uint64][]int, len(m.Budgets))
	for i := range reports {
		byJob[reports[i].JobID] = append(byJob[reports[i].JobID], i)
	}
	// When a job's proportional split degenerates to identical per-stage
	// shares (the steady state of a converged workload), the job's rules
	// collapse into one wildcard rule (StageID 0) that is marshaled once
	// and broadcast from a shared frame to the job's codec-v2 stages.
	// Stages on the legacy v1 codec — which predates the wildcard — and
	// unequal splits fall back to per-stage unicast rules.
	type wildcast struct {
		rule    wire.Rule
		targets []*child
	}
	active, _ := splitQuarantined(a.members.snapshot())
	byStageChild := make(map[uint64]*child, len(active))
	for _, c := range active {
		byStageChild[c.info.ID] = c
	}
	var casts []wildcast
	rules := make([]wire.Rule, 0, len(reports))
	for _, budget := range m.Budgets {
		idxs := byJob[budget.JobID]
		if len(idxs) == 0 {
			continue
		}
		demands := make([]wire.Rates, len(idxs))
		for k, i := range idxs {
			demands[k] = reports[i].Demand
		}
		split := controlalg.SplitProportional(budget.Limit, demands)
		uniform := len(idxs) > 1
		for k := 1; k < len(split) && uniform; k++ {
			uniform = split[k] == split[0]
		}
		if uniform {
			w := wildcast{rule: wire.Rule{
				StageID: wire.WildcardStage,
				JobID:   budget.JobID,
				Action:  wire.ActionSetLimit,
				Limit:   split[0],
			}}
			for k, i := range idxs {
				if c := byStageChild[reports[i].StageID]; c != nil && c.client().CodecVersion() >= wire.CodecV2 {
					w.targets = append(w.targets, c)
					continue
				}
				rules = append(rules, wire.Rule{
					StageID: reports[i].StageID,
					JobID:   budget.JobID,
					Action:  wire.ActionSetLimit,
					Limit:   split[k],
				})
			}
			if len(w.targets) > 0 {
				casts = append(casts, w)
			}
			continue
		}
		for k, i := range idxs {
			rules = append(rules, wire.Rule{
				StageID: reports[i].StageID,
				JobID:   budget.JobID,
				Action:  wire.ActionSetLimit,
				Limit:   split[k],
			})
		}
	}
	if untrack != nil {
		untrack()
	}

	var applied atomic.Uint32
	if len(casts) > 0 {
		ctx := context.Background()
		epoch := a.Epoch()
		a.cfg.Tracer.SetContext(m.Cycle, epoch, uint8(a.cfg.FanOutMode), trace.PhaseEnforce)
		for _, w := range casts {
			f := rpc.NewSharedFrame(&wire.Enforce{Cycle: m.Cycle, Rules: []wire.Rule{w.rule}, Epoch: epoch})
			a.fanOutBroadcast(ctx, &a.pipe.EnforceInFlight, w.targets, f,
				func(i int, resp wire.Message) {
					if ack, ok := resp.(*wire.EnforceAck); ok {
						applied.Add(ack.Applied)
					}
				})
		}
	}
	ack, err := a.enforce(&wire.Enforce{Cycle: m.Cycle, Rules: rules})
	if err != nil {
		return nil, err
	}
	ack.Applied += applied.Load()
	return ack, nil
}

// HealthCheck heartbeats every managed stage and reports liveness and RTT
// statistics without affecting membership.
func (a *Aggregator) HealthCheck(ctx context.Context) Health {
	return sweepHealth(ctx, a.members.snapshot(), a.cfg.FanOut, a.cfg.CallTimeout)
}

// MemoryFootprint estimates the aggregator's state size in bytes. It
// implements monitor.MemoryReporter.
func (a *Aggregator) MemoryFootprint() uint64 {
	const perChild = 24 << 10 // see Global.MemoryFootprint
	var total uint64
	for _, c := range a.members.snapshot() {
		total += perChild + uint64(len(c.info.Addr))
	}
	return total
}

// Close stops the re-homing loop, severs stage connections, and stops the
// server.
func (a *Aggregator) Close() error {
	if a.rehomeStop != nil {
		a.mu.Lock()
		if !a.closed {
			a.closed = true
			close(a.rehomeStop)
		}
		a.mu.Unlock()
		<-a.rehomeDone
	}
	a.members.closeAll()
	return a.server.Close()
}
