package workload

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

func TestConstant(t *testing.T) {
	g := Constant{Rates: wire.Rates{10, 2}}
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if got := g.Demand(at); got != (wire.Rates{10, 2}) {
			t.Errorf("Demand(%v) = %v", at, got)
		}
	}
}

func TestStressNeverIdle(t *testing.T) {
	g := Stress()
	for at := time.Duration(0); at < 10*time.Second; at += 100 * time.Millisecond {
		if g.Demand(at).IsZero() {
			t.Fatalf("stress demand idle at %v", at)
		}
	}
}

func TestBurstyPhases(t *testing.T) {
	g := Bursty{
		On:   time.Second,
		Off:  time.Second,
		High: wire.Rates{100, 10},
		Low:  wire.Rates{1, 0},
	}
	if got := g.Demand(500 * time.Millisecond); got != g.High {
		t.Errorf("on-phase demand = %v", got)
	}
	if got := g.Demand(1500 * time.Millisecond); got != g.Low {
		t.Errorf("off-phase demand = %v", got)
	}
	// Periodicity.
	if got := g.Demand(2500 * time.Millisecond); got != g.High {
		t.Errorf("second period on-phase = %v", got)
	}
}

func TestBurstyPhaseShift(t *testing.T) {
	a := Bursty{On: time.Second, Off: time.Second, High: wire.Rates{1, 0}}
	b := Bursty{On: time.Second, Off: time.Second, High: wire.Rates{1, 0}, Phase: time.Second}
	at := 200 * time.Millisecond
	if a.Demand(at) == b.Demand(at) {
		t.Error("phase shift had no effect")
	}
}

func TestBurstyZeroPeriod(t *testing.T) {
	g := Bursty{High: wire.Rates{5, 5}}
	if got := g.Demand(time.Hour); got != g.High {
		t.Errorf("zero-period bursty = %v, want High", got)
	}
}

func TestRamp(t *testing.T) {
	g := Ramp{From: wire.Rates{0, 0}, To: wire.Rates{100, 10}, Over: 10 * time.Second}
	if got := g.Demand(0); got != g.From {
		t.Errorf("Demand(0) = %v", got)
	}
	if got := g.Demand(5 * time.Second); got != (wire.Rates{50, 5}) {
		t.Errorf("Demand(mid) = %v", got)
	}
	if got := g.Demand(20 * time.Second); got != g.To {
		t.Errorf("Demand(past end) = %v", got)
	}
	flat := Ramp{To: wire.Rates{7, 7}}
	if got := flat.Demand(0); got != flat.To {
		t.Errorf("zero-duration ramp = %v", got)
	}
}

func TestRampMonotoneProperty(t *testing.T) {
	g := Ramp{From: wire.Rates{0, 0}, To: wire.Rates{1000, 100}, Over: time.Minute}
	f := func(aMS, bMS uint16) bool {
		a, b := time.Duration(aMS)*time.Millisecond, time.Duration(bMS)*time.Millisecond
		if a > b {
			a, b = b, a
		}
		da, db := g.Demand(a), g.Demand(b)
		return da[0] <= db[0]+1e-9 && da[1] <= db[1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	g := RandomWalk{Mean: wire.Rates{100, 10}, Jitter: 0.2, Seed: 7}
	a := g.Demand(3 * time.Second)
	b := g.Demand(3 * time.Second)
	if a != b {
		t.Errorf("same instant produced %v then %v", a, b)
	}
	other := RandomWalk{Mean: wire.Rates{100, 10}, Jitter: 0.2, Seed: 8}
	if g.Demand(time.Second) == other.Demand(time.Second) {
		t.Error("different seeds produced identical demand (suspicious)")
	}
}

func TestRandomWalkBoundedProperty(t *testing.T) {
	g := RandomWalk{Mean: wire.Rates{100, 10}, Jitter: 0.25, Seed: 3}
	f := func(slot uint16) bool {
		d := g.Demand(time.Duration(slot) * time.Second)
		return d[0] >= 75-1e-9 && d[0] <= 125+1e-9 && d[1] >= 7.5-1e-9 && d[1] <= 12.5+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomWalkNeverNegative(t *testing.T) {
	g := RandomWalk{Mean: wire.Rates{1, 1}, Jitter: 5, Seed: 1} // jitter > 1
	for s := 0; s < 100; s++ {
		d := g.Demand(time.Duration(s) * time.Second)
		if d[0] < 0 || d[1] < 0 {
			t.Fatalf("negative demand %v at slot %d", d, s)
		}
	}
}

func TestTraceReplay(t *testing.T) {
	tr := Trace{
		Samples: []wire.Rates{{1, 0}, {2, 0}, {3, 0}},
		Step:    time.Second,
	}
	if got := tr.Demand(0); got != (wire.Rates{1, 0}) {
		t.Errorf("Demand(0) = %v", got)
	}
	if got := tr.Demand(1500 * time.Millisecond); got != (wire.Rates{2, 0}) {
		t.Errorf("Demand(1.5s) = %v", got)
	}
	// Holds last sample.
	if got := tr.Demand(time.Hour); got != (wire.Rates{3, 0}) {
		t.Errorf("Demand(past end) = %v", got)
	}
	var empty Trace
	if got := empty.Demand(0); !got.IsZero() {
		t.Errorf("empty trace = %v", got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	src := Ramp{From: wire.Rates{0, 0}, To: wire.Rates{100, 0}, Over: 10 * time.Second}
	tr := Record(src, time.Second, 11)
	if len(tr.Samples) != 11 {
		t.Fatalf("recorded %d samples", len(tr.Samples))
	}
	for i := 0; i <= 10; i++ {
		at := time.Duration(i) * time.Second
		if tr.Demand(at) != src.Demand(at) {
			t.Errorf("replay diverges at %v: %v vs %v", at, tr.Demand(at), src.Demand(at))
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		at   time.Duration
		want wire.Rates
	}{
		{"stress", 0, wire.Rates{1000, 100}},
		{"constant:50,5", time.Hour, wire.Rates{50, 5}},
		{"bursty:100,10:1:1", 500 * time.Millisecond, wire.Rates{100, 10}},
		{"bursty:100,10:1:1", 1500 * time.Millisecond, wire.Rates{}},
		{"ramp:100,10:10", 5 * time.Second, wire.Rates{50, 5}},
	}
	for _, tc := range cases {
		g, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if got := g.Demand(tc.at); got != tc.want {
			t.Errorf("Parse(%q).Demand(%v) = %v, want %v", tc.spec, tc.at, got, tc.want)
		}
	}
	if g, err := Parse("walk:100,10:0.2"); err != nil {
		t.Errorf("Parse(walk): %v", err)
	} else if g.Demand(0).IsZero() {
		t.Error("walk demand is zero")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "nope", "constant", "constant:1", "constant:1,2,3", "constant:x,y",
		"bursty:1,1", "bursty:1,1:x:1", "bursty:1,1:1:x",
		"ramp:1,1", "ramp:1,1:x",
		"walk:1,1", "walk:1,1:x",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded", spec)
		}
	}
}
