package pfs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

func TestCapacity(t *testing.T) {
	fs := New(Config{OSTs: 4, OSTCapacity: 1000, MDSCapacity: 500})
	cap := fs.Capacity()
	if cap[wire.ClassData] != 4000 {
		t.Errorf("data capacity = %g, want 4000", cap[wire.ClassData])
	}
	if cap[wire.ClassMeta] != 500 {
		t.Errorf("meta capacity = %g, want 500", cap[wire.ClassMeta])
	}
}

func TestDefaults(t *testing.T) {
	fs := New(Config{})
	cap := fs.Capacity()
	if cap[wire.ClassData] <= 0 || cap[wire.ClassMeta] <= 0 {
		t.Errorf("defaulted capacity = %v", cap)
	}
}

func TestSubmitCompletes(t *testing.T) {
	fs := New(Config{OSTs: 1, OSTCapacity: 100000, MDSCapacity: 100000})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := fs.Submit(ctx, 1, wire.ClassData); err != nil {
			t.Fatalf("Submit data: %v", err)
		}
		if _, err := fs.Submit(ctx, 1, wire.ClassMeta); err != nil {
			t.Fatalf("Submit meta: %v", err)
		}
	}
	ops := fs.ClientOps(1)
	if ops[wire.ClassData] != 10 || ops[wire.ClassMeta] != 10 {
		t.Errorf("client ops = %v, want {10, 10}", ops)
	}
	total := fs.TotalOps()
	if total[wire.ClassData] != 10 || total[wire.ClassMeta] != 10 {
		t.Errorf("total ops = %v", total)
	}
}

func TestThroughputBoundedByCapacity(t *testing.T) {
	// One OST at 1000 IOPS: 50 back-to-back ops should take ~50ms.
	fs := New(Config{OSTs: 1, OSTCapacity: 1000, MDSCapacity: 1000})
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 50; i++ {
		if _, err := fs.Submit(ctx, 1, wire.ClassData); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 40*time.Millisecond {
		t.Errorf("50 ops at 1000 IOPS took %v, want >= ~50ms", elapsed)
	}
}

func TestContentionGrowsLatency(t *testing.T) {
	// Two clients hammering one slow OST: later ops must see queueing.
	fs := New(Config{OSTs: 1, OSTCapacity: 500, MDSCapacity: 500})
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := uint64(1); c <= 2; c++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				fs.Submit(ctx, id, wire.ClassData)
			}
		}(c)
	}
	wg.Wait()
	lat1 := fs.ClientMeanLatency(1)[wire.ClassData]
	// Service time alone is 2ms; with two competing clients the mean wait
	// must exceed it.
	if lat1 <= 2*time.Millisecond {
		t.Errorf("mean latency under contention = %v, want > 2ms", lat1)
	}
}

func TestStripingAcrossOSTs(t *testing.T) {
	// With N OSTs, a single client's data ops spread out, so aggregate
	// throughput exceeds a single OST's capacity.
	fs := New(Config{OSTs: 4, OSTCapacity: 500, MDSCapacity: 500})
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				fs.Submit(ctx, 7, wire.ClassData)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// 100 ops at aggregate 2000 IOPS ≈ 50ms; at single-OST 500 IOPS it
	// would be 200ms. Allow generous slack but require better than serial.
	if elapsed > 150*time.Millisecond {
		t.Errorf("striped ops took %v, want well under single-OST 200ms", elapsed)
	}
}

func TestSubmitContextCancel(t *testing.T) {
	fs := New(Config{OSTs: 1, OSTCapacity: 1, MDSCapacity: 1}) // 1s service time
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// Queue a couple of ops; the second waits >1s and must be canceled.
	go fs.Submit(context.Background(), 1, wire.ClassData)
	time.Sleep(5 * time.Millisecond)
	_, err := fs.Submit(ctx, 2, wire.ClassData)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Submit = %v, want DeadlineExceeded", err)
	}
}

func TestQueueOverflow(t *testing.T) {
	fs := New(Config{OSTs: 1, OSTCapacity: 1, MDSCapacity: 1, MaxQueue: 3})
	ctx := context.Background()
	// Fill the queue without waiting for completions.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
			defer cancel()
			fs.Submit(cctx, id, wire.ClassData)
		}(uint64(i))
	}
	time.Sleep(20 * time.Millisecond)
	_, err := fs.Submit(ctx, 99, wire.ClassData)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit over MaxQueue = %v, want ErrOverloaded", err)
	}
	wg.Wait()
}

func TestQueueDepths(t *testing.T) {
	fs := New(Config{OSTs: 2, OSTCapacity: 10, MDSCapacity: 10})
	mds, osts := fs.QueueDepths()
	if mds != 0 || osts != 0 {
		t.Errorf("idle depths = %d/%d", mds, osts)
	}
	done := make(chan struct{})
	go func() {
		fs.Submit(context.Background(), 1, wire.ClassMeta)
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	mds, _ = fs.QueueDepths()
	if mds != 1 {
		t.Errorf("mds depth with one inflight op = %d, want 1", mds)
	}
	<-done
}

func TestClientsSorted(t *testing.T) {
	fs := New(Config{OSTs: 1, OSTCapacity: 1e6, MDSCapacity: 1e6})
	ctx := context.Background()
	for _, id := range []uint64{5, 1, 9} {
		fs.Submit(ctx, id, wire.ClassData)
	}
	ids := fs.Clients()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 5 || ids[2] != 9 {
		t.Errorf("Clients = %v", ids)
	}
}

func TestUnknownClientStats(t *testing.T) {
	fs := New(Config{})
	if ops := fs.ClientOps(42); !ops.IsZero() {
		t.Errorf("unknown client ops = %v", ops)
	}
	lat := fs.ClientMeanLatency(42)
	if lat[wire.ClassData] != 0 || lat[wire.ClassMeta] != 0 {
		t.Errorf("unknown client latency = %v", lat)
	}
}

func BenchmarkSubmitUncontended(b *testing.B) {
	fs := New(Config{OSTs: 8, OSTCapacity: 1e9, MDSCapacity: 1e9})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs.Submit(ctx, uint64(i%4), wire.ClassData)
	}
}
