package wire

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestEncoderDecoderRoundTripPrimitives(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(0)
	e.Uint64(1)
	e.Uint64(math.MaxUint64)
	e.Int64(-1)
	e.Int64(math.MinInt64)
	e.Int64(math.MaxInt64)
	e.Uint32(math.MaxUint32)
	e.Byte(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.Float64(3.14159)
	e.Float64(math.Inf(-1))
	e.Bytes16([]byte{1, 2, 3})
	e.String("hello, 世界")
	e.String("")

	d := NewDecoder(e.Bytes())
	if got := d.Uint64(); got != 0 {
		t.Errorf("Uint64 = %d, want 0", got)
	}
	if got := d.Uint64(); got != 1 {
		t.Errorf("Uint64 = %d, want 1", got)
	}
	if got := d.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 = %d, want MaxUint64", got)
	}
	if got := d.Int64(); got != -1 {
		t.Errorf("Int64 = %d, want -1", got)
	}
	if got := d.Int64(); got != math.MinInt64 {
		t.Errorf("Int64 = %d, want MinInt64", got)
	}
	if got := d.Int64(); got != math.MaxInt64 {
		t.Errorf("Int64 = %d, want MaxInt64", got)
	}
	if got := d.Uint32(); got != math.MaxUint32 {
		t.Errorf("Uint32 = %d, want MaxUint32", got)
	}
	if got := d.Byte(); got != 0xAB {
		t.Errorf("Byte = %#x, want 0xAB", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := d.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %g, want 3.14159", got)
	}
	if got := d.Float64(); !math.IsInf(got, -1) {
		t.Errorf("Float64 = %g, want -Inf", got)
	}
	if got := d.Bytes16(); string(got) != "\x01\x02\x03" {
		t.Errorf("Bytes16 = %v", got)
	}
	if got := d.String(); got != "hello, 世界" {
		t.Errorf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Errorf("String = %q, want empty", got)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderShortBuffer(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
		read func(*Decoder)
	}{
		{"empty uvarint", nil, func(d *Decoder) { d.Uint64() }},
		{"empty varint", nil, func(d *Decoder) { d.Int64() }},
		{"empty byte", nil, func(d *Decoder) { d.Byte() }},
		{"truncated float", []byte{1, 2, 3}, func(d *Decoder) { d.Float64() }},
		{"truncated bytes", []byte{5, 1, 2}, func(d *Decoder) { d.Bytes16() }},
		{"truncated string", []byte{9}, func(d *Decoder) { _ = d.String() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDecoder(tc.buf)
			tc.read(d)
			if !errors.Is(d.Err(), ErrShortBuffer) {
				t.Errorf("Err = %v, want ErrShortBuffer", d.Err())
			}
		})
	}
}

func TestDecoderVarintOverflow(t *testing.T) {
	// 10 continuation bytes followed by a value byte overflow 64 bits.
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	d := NewDecoder(buf)
	d.Uint64()
	if !errors.Is(d.Err(), ErrOverflow) {
		t.Errorf("Err = %v, want ErrOverflow", d.Err())
	}
}

func TestDecoderUint32Overflow(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(math.MaxUint32 + 1)
	d := NewDecoder(e.Bytes())
	d.Uint32()
	if d.Err() == nil {
		t.Error("Uint32 accepted a 33-bit value")
	}
}

func TestDecoderLengthLimit(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(MaxSliceLen + 1)
	d := NewDecoder(e.Bytes())
	d.Length()
	if !errors.Is(d.Err(), ErrBadLength) {
		t.Errorf("Err = %v, want ErrBadLength", d.Err())
	}
}

func TestDecoderErrorSticky(t *testing.T) {
	d := NewDecoder(nil)
	d.Byte() // fails
	first := d.Err()
	if first == nil {
		t.Fatal("expected error from empty buffer")
	}
	// Subsequent reads return zero values and keep the first error.
	if v := d.Uint64(); v != 0 {
		t.Errorf("Uint64 after error = %d, want 0", v)
	}
	if v := d.Float64(); v != 0 {
		t.Errorf("Float64 after error = %g, want 0", v)
	}
	if b := d.Bytes16(); b != nil {
		t.Errorf("Bytes16 after error = %v, want nil", b)
	}
	if d.Err() != first {
		t.Errorf("error replaced: %v -> %v", first, d.Err())
	}
}

func TestDecoderFinishTrailing(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3})
	d.Byte()
	if err := d.Finish(); !errors.Is(err, ErrTrailingBytes) {
		t.Errorf("Finish = %v, want ErrTrailingBytes", err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(42)
	if e.Len() == 0 {
		t.Fatal("encoder empty after write")
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
	e.Byte(7)
	if got := e.Bytes(); len(got) != 1 || got[0] != 7 {
		t.Errorf("Bytes after Reset+Byte = %v", got)
	}
}

func TestBytes16Aliasing(t *testing.T) {
	e := NewEncoder(nil)
	e.Bytes16([]byte("abc"))
	e.Byte(0x7F)
	d := NewDecoder(e.Bytes())
	b := d.Bytes16()
	// The returned slice must have capacity clamped so appends cannot
	// clobber adjacent frame bytes.
	b = append(b, 'X')
	if d.Byte() != 0x7F {
		t.Error("append to decoded slice corrupted following payload")
	}
}

func TestUvarintRoundTripProperty(t *testing.T) {
	f := func(v uint64) bool {
		e := NewEncoder(nil)
		e.Uint64(v)
		d := NewDecoder(e.Bytes())
		return d.Uint64() == v && d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		e := NewEncoder(nil)
		e.Int64(v)
		d := NewDecoder(e.Bytes())
		return d.Int64() == v && d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64RoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		e := NewEncoder(nil)
		e.Float64(v)
		d := NewDecoder(e.Bytes())
		got := d.Float64()
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v && d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		e := NewEncoder(nil)
		e.String(s)
		d := NewDecoder(e.Bytes())
		return d.String() == s && d.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMixedSequenceProperty(t *testing.T) {
	f := func(a uint64, b int64, c float64, s string, raw []byte) bool {
		e := NewEncoder(nil)
		e.Uint64(a)
		e.Int64(b)
		e.Float64(c)
		e.String(s)
		e.Bytes16(raw)
		d := NewDecoder(e.Bytes())
		if d.Uint64() != a || d.Int64() != b {
			return false
		}
		gc := d.Float64()
		if math.IsNaN(c) {
			if !math.IsNaN(gc) {
				return false
			}
		} else if gc != c {
			return false
		}
		if d.String() != s {
			return false
		}
		gr := d.Bytes16()
		if len(gr) != len(raw) {
			return false
		}
		for i := range gr {
			if gr[i] != raw[i] {
				return false
			}
		}
		return d.Finish() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
