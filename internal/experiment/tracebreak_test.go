package experiment

import (
	"context"
	"strings"
	"testing"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
)

func TestTraceBreakAtReducedScale(t *testing.T) {
	o := testOptions(0.01)
	res, err := TraceBreak(context.Background(), o)
	if err != nil {
		t.Fatalf("TraceBreak: %v", err)
	}
	if err := CheckTraceBreak(res); err != nil {
		t.Fatalf("CheckTraceBreak: %v", err)
	}
	if got, want := len(res.Rows), 2*len(TraceBreakNodes)+3; got != want {
		t.Fatalf("got %d rows, want %d", got, want)
	}
	var sawIncr bool
	for _, r := range res.Rows {
		if r.Incremental {
			// A quiesced incremental run makes almost no calls; its
			// decomposition floors don't apply, only the suppression does.
			sawIncr = true
			if r.SuppressedCollects == 0 {
				t.Errorf("%s: incremental row suppressed no collects: %+v", r.Name, r)
			}
			continue
		}
		if r.Marshal <= 0 || r.Dispatch <= 0 || r.Wait <= 0 {
			t.Errorf("%s/%v: empty decomposition: %+v", r.Name, r.Mode, r)
		}
		if r.ServerQueue < 0 || r.ServerHandler <= 0 {
			t.Errorf("%s/%v: empty stage-side decomposition: %+v", r.Name, r.Mode, r)
		}
	}
	if !sawIncr {
		t.Error("no incremental row in the tracebreak matrix")
	}

	var sb strings.Builder
	o.Out = &sb
	PrintTraceBreak(o, res)
	out := sb.String()
	for _, want := range []string{"marshal%", "dispatch%", "wait×", "flat-", "hierarchical-"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintTraceBreak output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckTraceBreakRejectsDegenerate(t *testing.T) {
	if err := CheckTraceBreak(TraceBreakResult{}); err == nil {
		t.Error("empty result passed")
	}
	good := TraceBreakRow{
		Name: "flat-10", Topology: cluster.Flat, Mode: controller.FanOutPipelined,
		Nodes: 10, Cycles: 5, Wall: 100, Calls: 100, Marshal: 10, Dispatch: 10,
		Wait: 500, ServerCalls: 100, SharedSends: 50, SharedEncodes: 5,
		ComputeWorkers: 1,
		Arena:          telemetry.ArenaSnapshot{Generation: 5, Takes: 50, Reuses: 45, Grows: 2},
	}
	cases := map[string]func(*TraceBreakRow){
		"no cycles":          func(r *TraceBreakRow) { r.Cycles = 0 },
		"missing calls":      func(r *TraceBreakRow) { r.Calls = 10 },
		"errors":             func(r *TraceBreakRow) { r.Errors = 1 },
		"negative wait":      func(r *TraceBreakRow) { r.Wait = -1 },
		"missing srv calls":  func(r *TraceBreakRow) { r.ServerCalls = 10 },
		"no broadcasts":      func(r *TraceBreakRow) { r.SharedSends, r.SharedEncodes = 0, 0 },
		"re-encoding":        func(r *TraceBreakRow) { r.SharedEncodes = r.SharedSends },
		"no arena activity":  func(r *TraceBreakRow) { r.Arena = telemetry.ArenaSnapshot{} },
		"no arena reuse":     func(r *TraceBreakRow) { r.Arena.Reuses = 0 },
		"no compute workers": func(r *TraceBreakRow) { r.ComputeWorkers = 0 },
	}
	for name, mutate := range cases {
		r := good
		mutate(&r)
		if err := CheckTraceBreak(TraceBreakResult{Rows: []TraceBreakRow{r}}); err == nil {
			t.Errorf("%s: degenerate row passed", name)
		}
	}
	if err := CheckTraceBreak(TraceBreakResult{Rows: []TraceBreakRow{good}}); err != nil {
		t.Errorf("good row rejected: %v", err)
	}
	// A pipelined row overlapping far less than its blocking twin means
	// tracing caught the dispatch path not pipelining.
	blocking := good
	blocking.Mode = controller.FanOutBlocking
	blocking.Wait = 5000
	if err := CheckTraceBreak(TraceBreakResult{Rows: []TraceBreakRow{good, blocking}}); err == nil {
		t.Error("non-pipelining pair passed")
	}
}
