// Package ratelimit implements the token-bucket rate limiting that
// data-plane stages apply to intercepted I/O requests.
//
// In the SDS architecture (paper Fig. 1) a stage sits between the
// application and the PFS client and throttles operations to the limits the
// control plane computed. Stages keep one bucket per operation class (data
// and metadata IOPS), and the control plane retunes rates every cycle, so
// buckets support dynamic rate updates that wake blocked waiters.
package ratelimit

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// ErrPaused is returned by TryTake on a paused bucket.
var ErrPaused = errors.New("ratelimit: paused by control plane")

// pollInterval bounds how long a waiter sleeps before rechecking a bucket
// whose rate is zero or paused; rate changes wake waiters sooner.
const pollInterval = 100 * time.Millisecond

// TokenBucket is a classic token bucket: tokens accrue at Rate per second up
// to Burst, and each admitted operation consumes one token. It is safe for
// concurrent use.
type TokenBucket struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; 0 blocks indefinitely
	burst   float64
	tokens  float64
	last    time.Time
	paused  bool
	changed chan struct{} // closed and remade on config changes
}

// NewTokenBucket creates a bucket admitting rate ops/s with the given burst
// capacity. A non-positive burst defaults to one second's worth of tokens
// (minimum 1).
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst <= 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &TokenBucket{
		rate:    rate,
		burst:   burst,
		tokens:  burst,
		last:    time.Now(),
		changed: make(chan struct{}),
	}
}

// refill accrues tokens up to now. Callers hold mu.
func (b *TokenBucket) refill(now time.Time) {
	if b.rate <= 0 {
		b.last = now
		return
	}
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.tokens += dt * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
}

// notifyChange wakes all waiters so they re-read the configuration.
// Callers hold mu.
func (b *TokenBucket) notifyChange() {
	close(b.changed)
	b.changed = make(chan struct{})
}

// SetRate retunes the bucket to rate ops/s (and proportionally adjusts the
// burst to one second's worth, minimum 1), waking blocked waiters.
func (b *TokenBucket) SetRate(rate float64) {
	b.mu.Lock()
	b.refill(time.Now())
	b.rate = rate
	b.burst = rate
	if b.burst < 1 {
		b.burst = 1
	}
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.notifyChange()
	b.mu.Unlock()
}

// Rate returns the current token accrual rate.
func (b *TokenBucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// SetPaused pauses or resumes the bucket. A paused bucket admits nothing.
func (b *TokenBucket) SetPaused(p bool) {
	b.mu.Lock()
	b.paused = p
	b.notifyChange()
	b.mu.Unlock()
}

// TryTake attempts to consume n tokens without blocking. It reports whether
// the tokens were taken; ErrPaused distinguishes administrative pauses from
// plain throttling.
func (b *TokenBucket) TryTake(n float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.paused {
		return ErrPaused
	}
	b.refill(time.Now())
	if b.tokens < n {
		return errThrottled
	}
	b.tokens -= n
	return nil
}

var errThrottled = errors.New("ratelimit: throttled")

// Wait blocks until n tokens are available (or ctx ends), then consumes
// them. Rate changes and pauses take effect immediately, even for waiters
// already blocked.
func (b *TokenBucket) Wait(ctx context.Context, n float64) error {
	for {
		b.mu.Lock()
		now := time.Now()
		b.refill(now)
		var (
			sleep   time.Duration
			changed = b.changed
		)
		switch {
		case b.paused || b.rate <= 0:
			sleep = pollInterval
		case b.tokens >= n:
			b.tokens -= n
			b.mu.Unlock()
			return nil
		default:
			need := n - b.tokens
			sleep = time.Duration(need / b.rate * float64(time.Second))
			if sleep <= 0 {
				sleep = time.Microsecond
			}
		}
		b.mu.Unlock()

		t := time.NewTimer(sleep)
		select {
		case <-t.C:
		case <-changed:
			t.Stop()
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// Tokens returns the currently available token count (after refill).
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(time.Now())
	return b.tokens
}

// MultiBucket holds one token bucket per operation class and applies
// control-plane rules atomically across them.
type MultiBucket struct {
	mu        sync.Mutex
	buckets   [wire.NumClasses]*TokenBucket
	unlimited bool
}

// NewMultiBucket creates a per-class limiter initially admitting limit[c]
// ops/s for each class c.
func NewMultiBucket(limit wire.Rates) *MultiBucket {
	m := &MultiBucket{}
	for c := range m.buckets {
		m.buckets[c] = NewTokenBucket(limit[c], 0)
	}
	return m
}

// NewUnlimited creates a limiter that admits everything until a rule says
// otherwise.
func NewUnlimited() *MultiBucket {
	m := NewMultiBucket(wire.Rates{})
	m.unlimited = true
	return m
}

// Admit blocks until one operation of the given class may proceed.
func (m *MultiBucket) Admit(ctx context.Context, class wire.OpClass) error {
	m.mu.Lock()
	if m.unlimited {
		m.mu.Unlock()
		return ctx.Err()
	}
	b := m.buckets[class]
	m.mu.Unlock()
	return b.Wait(ctx, 1)
}

// TryAdmit attempts to admit one operation without blocking.
func (m *MultiBucket) TryAdmit(class wire.OpClass) error {
	m.mu.Lock()
	if m.unlimited {
		m.mu.Unlock()
		return nil
	}
	b := m.buckets[class]
	m.mu.Unlock()
	return b.TryTake(1)
}

// ApplyRule reconfigures the limiter from a control-plane rule.
func (m *MultiBucket) ApplyRule(r wire.Rule) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch r.Action {
	case wire.ActionNoLimit:
		m.unlimited = true
		for _, b := range m.buckets {
			b.SetPaused(false)
		}
	case wire.ActionPause:
		m.unlimited = false
		for _, b := range m.buckets {
			b.SetPaused(true)
		}
	case wire.ActionSetLimit:
		m.unlimited = false
		for c, b := range m.buckets {
			b.SetPaused(false)
			b.SetRate(r.Limit[c])
		}
	}
}

// Limits returns the current per-class rates (0 for all classes when
// unlimited, alongside unlimited=true).
func (m *MultiBucket) Limits() (limits wire.Rates, unlimited bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for c, b := range m.buckets {
		limits[c] = b.Rate()
	}
	return limits, m.unlimited
}
