package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale"
	"github.com/dsrhaslab/sdscale/internal/config"
)

// startTestDaemon builds a daemon around a config file written to a temp
// dir, with a fast simulated network and no OS signal/watcher wiring — the
// tests drive reloads through an injected hup channel.
func startTestDaemon(t *testing.T, cfgJSON string) (*daemon, string, chan os.Signal) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sdscale.json")
	if err := os.WriteFile(path, []byte(cfgJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	cf, err := sdscale.LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := sdscale.TopologyFromConfig(cf)
	if err != nil {
		t.Fatal(err)
	}
	topo.Net = sdscale.SimNetConfig{PropDelay: -1}
	dep, err := sdscale.StartTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)

	hup := make(chan os.Signal, 1)
	d := &daemon{
		dep:      dep,
		rel:      config.NewReloader(path, cf),
		interval: cf.CycleInterval(),
		hup:      hup,
		logf:     t.Logf,
	}
	return d, path, hup
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestServeIntervalReloadNextCycle pins the reload semantics of the control
// interval: a daemon pacing at a long interval adopts a shortened one at
// the next cycle boundary, not after the old pause expires.
func TestServeIntervalReloadNextCycle(t *testing.T) {
	d, path, hup := startTestDaemon(t, `{"stages": 8, "jobs": 2, "interval": "1h"}`)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveLoop(ctx, d) }()

	// The first cycle runs immediately; then the loop sleeps for an hour.
	waitFor(t, "first cycle", func() bool { return d.cycles.Value() >= 1 })

	if err := os.WriteFile(path, []byte(`{"stages": 8, "jobs": 2, "interval": "5ms"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	hup <- os.Interrupt // any signal value; the channel is the trigger
	waitFor(t, "cycles under the new interval", func() bool { return d.cycles.Value() >= 3 })
	if got := d.rel.Reloads(); got != 1 {
		t.Errorf("reloads = %d, want 1", got)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serveLoop: %v", err)
	}
}

// TestServeRejectKeepsOld pins the reject path: an unparseable new file and
// an unsafe delta each leave the running configuration and deployment
// untouched, count a rejection, and keep the loop serving.
func TestServeRejectKeepsOld(t *testing.T) {
	d, path, hup := startTestDaemon(t, `{"stages": 8, "jobs": 2, "interval": "5ms"}`)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveLoop(ctx, d) }()
	waitFor(t, "first cycle", func() bool { return d.cycles.Value() >= 1 })

	// Garbage: parse error, old config stays.
	if err := os.WriteFile(path, []byte(`{"stages": `), 0o644); err != nil {
		t.Fatal(err)
	}
	hup <- os.Interrupt
	waitFor(t, "parse rejection", func() bool { return d.rel.Rejects() >= 1 })

	// Unsafe delta: jobs changes need a restart; old config stays.
	if err := os.WriteFile(path, []byte(`{"stages": 8, "jobs": 5, "interval": "5ms"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	hup <- os.Interrupt
	waitFor(t, "unsafe rejection", func() bool { return d.rel.Rejects() >= 2 })

	if got := d.rel.Reloads(); got != 0 {
		t.Errorf("reloads = %d, want 0 (both attempts rejected)", got)
	}
	if cur := d.rel.Current(); cur.Jobs != 2 {
		t.Errorf("current config mutated: jobs = %d, want 2", cur.Jobs)
	}
	// The loop is still serving after both rejections.
	base := d.cycles.Value()
	waitFor(t, "cycles after rejections", func() bool { return d.cycles.Value() > base })

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serveLoop: %v", err)
	}
}

// TestServeReloadAppliesFleetResize drives a stages grow through the full
// daemon path and asserts no control cycle is dropped across the reload:
// every cycle succeeds and every stage (old and new) holds a rule.
func TestServeReloadAppliesFleetResize(t *testing.T) {
	d, path, hup := startTestDaemon(t, `{"stages": 8, "jobs": 2, "interval": "5ms"}`)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveLoop(ctx, d) }()
	waitFor(t, "first cycle", func() bool { return d.cycles.Value() >= 1 })

	if err := os.WriteFile(path, []byte(`{"stages": 14, "jobs": 2, "interval": "5ms", "jobWeights": {"1": 2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	hup <- os.Interrupt
	waitFor(t, "reload applied", func() bool { return d.applied.Value() >= 1 })
	waitFor(t, "fleet grown", func() bool { return d.dep.Stats().Stages == 14 })
	waitFor(t, "post-reload cycles", func() bool { return d.cycles.Value() >= 3 })

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serveLoop dropped a cycle: %v", err)
	}
	for _, v := range d.dep.Cluster().Stages {
		if _, ok := v.LastRule(); !ok {
			t.Errorf("stage %d has no rule after the reload", v.Info().ID)
		}
	}
}

// TestServeHUPDuringCycleDoesNotRace hammers the reload trigger while
// cycles run back-to-back; under -race this pins that a signal landing
// mid-cycle never races the cycle (it waits in the channel until the
// boundary).
func TestServeHUPDuringCycleDoesNotRace(t *testing.T) {
	d, path, hup := startTestDaemon(t, `{"stages": 12, "jobs": 2, "interval": "1ms"}`)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveLoop(ctx, d) }()

	// Alternate two valid configs so most triggers carry a real delta.
	a := []byte(`{"stages": 12, "jobs": 2, "interval": "1ms", "jobWeights": {"1": 2}}`)
	b := []byte(`{"stages": 12, "jobs": 2, "interval": "1ms"}`)
	for i := 0; i < 20; i++ {
		body := a
		if i%2 == 1 {
			body = b
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		select {
		case hup <- os.Interrupt:
		default: // coalesce, exactly like a real signal burst
		}
		time.Sleep(time.Millisecond)
	}
	waitFor(t, "a reload landing", func() bool { return d.rel.Reloads() >= 1 })
	waitFor(t, "cycles throughout", func() bool { return d.cycles.Value() >= 10 })

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serveLoop: %v", err)
	}
}

// TestServeWatcherTriggersReload wires a real file watcher (no SIGHUP) and
// asserts an on-disk edit alone reaches the running deployment.
func TestServeWatcherTriggersReload(t *testing.T) {
	d, path, _ := startTestDaemon(t, `{"stages": 8, "jobs": 2, "interval": "5ms", "poll": "5ms"}`)
	w := config.NewWatcher(path, d.rel.Current().PollInterval())
	defer w.Close()
	d.watcher = w
	d.reloadC = w.C

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveLoop(ctx, d) }()
	waitFor(t, "first cycle", func() bool { return d.cycles.Value() >= 1 })

	if err := os.WriteFile(path, []byte(`{"stages": 10, "jobs": 2, "interval": "5ms", "poll": "5ms"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "watcher-driven reload", func() bool { return d.rel.Reloads() >= 1 })
	waitFor(t, "fleet grown", func() bool { return d.dep.Stats().Stages == 10 })

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("serveLoop: %v", err)
	}
}
