package cluster

import (
	"context"
	"fmt"
	"time"

	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/shard"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/transport"
)

// ShardHost returns the simulated-network host name of shard s's leader.
func ShardHost(s int) string { return fmt.Sprintf("shard-%d", s) }

// ShardStandbyHost returns the host name of shard s's i-th (0-based) warm
// standby.
func ShardStandbyHost(s, i int) string { return fmt.Sprintf("shard-%d-standby-%d", s, i) }

// validateSharded rejects the configuration combinations the sharded
// builder cannot honour. It is the build-time half of the façade's
// Topology.Validate: anything that reaches the builder invalid fails here
// too, so direct cluster users get the same errors.
func validateSharded(cfg Config) error {
	if cfg.Shards < 0 {
		return fmt.Errorf("cluster: Shards must be >= 1, got %d", cfg.Shards)
	}
	if cfg.Shards <= 1 {
		return nil
	}
	if cfg.Topology != Flat {
		return fmt.Errorf("cluster: sharding is only supported for the flat topology, not %v", cfg.Topology)
	}
	if cfg.Placement != nil && cfg.Standbys > 0 {
		// A custom placement function is opaque: the builder cannot prove
		// it is stable, so the per-shard parent lists that standby
		// re-homing depends on could disagree with where the function
		// sends a re-registering child. Refuse loudly instead of silently
		// dropping the standbys.
		return fmt.Errorf("cluster: Standbys requires the default consistent-hash placement; a custom Placement cannot guarantee the per-shard parent lists re-homing depends on")
	}
	return nil
}

// buildSharded wires N concurrently-active flat control planes over one
// fleet: every shard gets its own leader (plus optional quorum standbys and
// write-ahead store), children are placed by consistent hashing (or the
// custom Placement), per-shard capacity is the fleet capacity scaled by
// the shard's share of the stages, and a shard.Router is installed as the
// routing tier. Without standbys the builder attaches each stage to its
// shard directly; with standbys stages register dynamically through their
// shard's parent address list — the same path re-homing uses after a
// failover, and the path a handoff re-uses for a shard move.
func (c *Cluster) buildSharded() error {
	cfg := c.cfg
	ctx := context.Background()

	place := cfg.Placement
	if place == nil {
		ring := shard.NewRing(cfg.Shards, cfg.VirtualNodes)
		place = ring.Place
	}

	// Place the whole fleet first: per-shard capacity and the
	// registration waits need the shard populations.
	owner := make([]int, cfg.Stages)
	counts := make([]int, cfg.Shards)
	for i := 0; i < cfg.Stages; i++ {
		s := place(uint64(i + 1))
		if s < 0 || s >= cfg.Shards {
			return fmt.Errorf("cluster: placement sent stage %d to shard %d (have %d shards)", i+1, s, cfg.Shards)
		}
		owner[i] = s
		counts[s]++
	}

	base := controller.GlobalConfig{
		ListenAddr:       quorumPort,
		Algorithm:        cfg.Algorithm,
		FanOut:           cfg.FanOut,
		FanOutMode:       cfg.FanOutMode,
		CallTimeout:      cfg.CallTimeout,
		MaxCodec:         cfg.MaxCodec,
		DeltaEnforcement: cfg.DeltaEnforcement,
		Incremental:      cfg.Incremental,
		IncrementalFloor: cfg.IncrementalFloor,
		MaxFailures:      cfg.MaxFailures,
		ProbeInterval:    cfg.ProbeInterval,
		MaxProbeInterval: cfg.MaxProbeInterval,
		StaleAfter:       cfg.StaleAfter,
		EvictAfter:       cfg.EvictAfter,
		LeaseTimeout:     cfg.LeaseTimeout,
		SyncInterval:     cfg.SyncInterval,
	}

	groups := make([]*shard.Group, cfg.Shards)
	parents := make([][]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		leaderAddr := ShardHost(s) + quorumPort
		sbAddrs := make([]string, cfg.Standbys)
		for i := range sbAddrs {
			sbAddrs[i] = ShardStandbyHost(s, i) + quorumPort
		}

		// Standbys first, so the leader's first sync finds them listening.
		var standbys []*controller.Global
		for i := 0; i < cfg.Standbys; i++ {
			host := ShardStandbyHost(s, i)
			scfg := base
			scfg.Network = c.Net.Host(host)
			scfg.ID = uint64(i + 2)
			scfg.Standby = true
			scfg.Capacity = cfg.Capacity.Scale(float64(counts[s]) / float64(cfg.Stages))
			if cfg.Standbys > 1 {
				peers := []string{leaderAddr}
				for j, a := range sbAddrs {
					if j != i {
						peers = append(peers, a)
					}
				}
				scfg.StandbyAddrs = peers
			}
			st, err := c.openStore(host)
			if err != nil {
				return err
			}
			scfg.Store = st
			sb, err := controller.NewGlobal(scfg)
			if err != nil {
				if st != nil {
					st.Close()
				}
				return fmt.Errorf("cluster: shard %d standby %d: %w", s, i, err)
			}
			standbys = append(standbys, sb)
			c.Standbys = append(c.Standbys, sb)
		}

		role := Roles{Meter: &transport.Meter{}, CPU: &monitor.CPUMeter{}}
		gcfg := base
		gcfg.Network = c.Net.Host(ShardHost(s))
		gcfg.ID = 1
		gcfg.Epoch = 1
		gcfg.Capacity = cfg.Capacity.Scale(float64(counts[s]) / float64(cfg.Stages))
		gcfg.StandbyAddrs = sbAddrs
		gcfg.Meter = role.Meter
		gcfg.CPU = role.CPU
		st, err := c.openStore(ShardHost(s))
		if err != nil {
			return err
		}
		gcfg.Store = st
		g, err := controller.NewGlobal(gcfg)
		if err != nil {
			if st != nil {
				st.Close()
			}
			return fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		c.Globals = append(c.Globals, g)
		c.ShardRoles = append(c.ShardRoles, role)
		groups[s] = shard.NewGroup(g, standbys, sbAddrs)

		parents[s] = append([]string{g.Addr()}, sbAddrs...)
	}

	for i := 0; i < cfg.Stages; i++ {
		scfg := stage.Config{
			ID:            uint64(i + 1),
			JobID:         uint64(i%cfg.Jobs + 1),
			Weight:        1,
			Generator:     cfg.Workload,
			Network:       c.Net.Host(fmt.Sprintf("stage-%d", i+1)),
			Tracer:        c.stageTracer(),
			MaxCodec:      cfg.MaxCodec,
			PushThreshold: cfg.PushThreshold,
			PushInterval:  cfg.PushInterval,
			PushFloor:     cfg.PushFloor,
		}
		if cfg.Standbys > 0 {
			scfg.Parents = parents[owner[i]]
			scfg.ParentTimeout = cfg.ParentTimeout
		}
		v, err := stage.StartVirtual(scfg)
		if err != nil {
			return fmt.Errorf("cluster: stage %d: %w", i+1, err)
		}
		c.Stages = append(c.Stages, v)
		if cfg.Standbys == 0 {
			if err := c.Globals[owner[i]].AddStage(ctx, v.Info()); err != nil {
				return fmt.Errorf("cluster: shard %d attach: %w", owner[i], err)
			}
		}
	}

	if cfg.Standbys > 0 {
		// Registration is asynchronous; wait until every shard owns its
		// slice of the fleet.
		deadline := time.Now().Add(10 * time.Second)
		for s, g := range c.Globals {
			for g.NumChildren() < counts[s] {
				if time.Now().After(deadline) {
					return fmt.Errorf("cluster: shard %d: only %d/%d stages registered", s, g.NumChildren(), counts[s])
				}
				time.Sleep(2 * time.Millisecond)
			}
		}
	}

	c.Router = shard.NewRouter(groups, shard.Config{Placement: cfg.Placement, VirtualNodes: cfg.VirtualNodes})
	return nil
}
