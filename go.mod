module github.com/dsrhaslab/sdscale

go 1.22
