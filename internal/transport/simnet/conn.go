package simnet

import (
	"container/heap"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"
)

// stream is one direction of a connection: an unbounded queue of payloads
// from writer to reader. Latency modeling happens at write time — each
// payload gets an arrival deadline from the hosts' processors and the
// network config — and the Net's central scheduler moves due payloads into
// the readable queue. A single scheduler goroutine serves the whole
// network, so timer-granularity overshoot is amortized across every
// in-flight message instead of being paid per message.
type stream struct {
	net    *Net
	txHost *Host // the writing host (meter and processor charged)
	rxHost *Host // the reading host (meter and processor charged)

	mu          sync.Mutex
	queue       payloadQueue // delivered, readable payloads
	pending     *payload     // partially consumed head payload
	pendingOff  int          // bytes of pending already handed to the reader
	inflight    int          // scheduled but not yet delivered payloads
	wclosed     bool
	lastSendEnd time.Time

	ready chan struct{} // 1-buffered wakeup for the reader
	wdone chan struct{} // closed when the writer side is closed
	rdone chan struct{} // closed when the reader side is gone
	wonce sync.Once
	ronce sync.Once
}

// payload is one write's in-flight copy. The box and its buffer are pooled
// together: write must copy (callers reuse their frame buffers immediately),
// which at control-plane scale is two copies per RPC, so read recycles each
// payload once the reader has fully consumed it. Buffers above
// maxPooledPayload are dropped rather than pinned in the pool.
type payload struct{ b []byte }

// payloadQueue is a FIFO of delivered payloads that recycles its backing
// array. Popping by re-slicing (`q = q[1:]`) strands the array's free space
// behind the slice pointer, so every subsequent push reallocates — at
// control-plane scale that is one allocation per delivered frame. Instead
// pop advances a head index, and the moment the queue drains (the steady
// state between cycles) both head and length reset, so pushes reuse the
// same backing array indefinitely.
type payloadQueue struct {
	buf  []*payload
	head int
}

func (q *payloadQueue) push(pl *payload) { q.buf = append(q.buf, pl) }

func (q *payloadQueue) pop() *payload {
	pl := q.buf[q.head]
	q.buf[q.head] = nil // drop the reference; the payload is pooled separately
	q.head++
	if q.head == len(q.buf) {
		q.buf, q.head = q.buf[:0], 0
	}
	return pl
}

func (q *payloadQueue) len() int { return len(q.buf) - q.head }

const maxPooledPayload = 1 << 16

var payloadPool = sync.Pool{New: func() any { return new(payload) }}

// newPayload returns a pooled payload holding a copy of p.
func newPayload(p []byte) *payload {
	pl := payloadPool.Get().(*payload)
	if cap(pl.b) < len(p) {
		pl.b = make([]byte, len(p))
	} else {
		pl.b = pl.b[:len(p)]
	}
	copy(pl.b, p)
	return pl
}

// releasePayload returns a fully consumed payload to the pool.
func releasePayload(pl *payload) {
	if cap(pl.b) > maxPooledPayload {
		pl.b = nil
	}
	payloadPool.Put(pl)
}

func newStream(n *Net, tx, rx *Host) *stream {
	return &stream{
		net:    n,
		txHost: tx,
		rxHost: rx,
		ready:  make(chan struct{}, 1),
		wdone:  make(chan struct{}),
		rdone:  make(chan struct{}),
	}
}

// closeWrite signals EOF to the reader once in-flight payloads drain.
func (s *stream) closeWrite() {
	s.wonce.Do(func() {
		s.mu.Lock()
		s.wclosed = true
		s.mu.Unlock()
		close(s.wdone)
		s.wake()
	})
}

// closeRead tells the writer its peer is gone; pending writes fail.
func (s *stream) closeRead() {
	s.ronce.Do(func() { close(s.rdone) })
}

// wake nudges a blocked reader.
func (s *stream) wake() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

// arrival computes when data written now becomes readable: sender
// processing, per-connection bandwidth serialization, propagation, and
// receiver processing. Callers hold mu.
func (s *stream) arrival(n int, now time.Time) time.Time {
	cfg := &s.net.cfg
	start := s.txHost.proc.schedule(now, n, cfg)
	if s.lastSendEnd.After(start) {
		start = s.lastSendEnd
	}
	if cfg.Bandwidth > 0 {
		start = start.Add(time.Duration(float64(n) / cfg.Bandwidth * float64(time.Second)))
	}
	s.lastSendEnd = start
	arrive := start.Add(cfg.PropDelay + s.net.jitter())
	return s.rxHost.proc.schedule(arrive, n, cfg)
}

// deliver moves a payload into the readable queue (scheduler callback).
func (s *stream) deliver(pl *payload, scheduled bool) {
	s.mu.Lock()
	s.queue.push(pl)
	if scheduled {
		s.inflight--
	}
	s.mu.Unlock()
	s.wake()
}

// write enqueues a copy of p with its computed arrival time. It never
// blocks on queue capacity; backpressure in the control plane comes from
// the request/response protocol above, not the pipe.
func (s *stream) write(p []byte, deadline, cancel <-chan struct{}) (int, error) {
	select {
	case <-deadline:
		return 0, os.ErrDeadlineExceeded
	case <-s.rdone:
		return 0, io.ErrClosedPipe
	case <-cancel:
		return 0, net.ErrClosed
	default:
	}

	data := newPayload(p)
	now := time.Now()
	s.mu.Lock()
	if s.wclosed {
		s.mu.Unlock()
		releasePayload(data)
		return 0, io.ErrClosedPipe
	}
	due := s.arrival(len(p), now)
	if !due.After(now) {
		s.queue.push(data)
		s.mu.Unlock()
		s.wake()
	} else {
		s.inflight++
		s.mu.Unlock()
		s.net.sched.add(delivery{due: due, s: s, data: data})
	}
	s.txHost.meter.AddTx(len(p))
	s.rxHost.meter.AddRx(len(p))
	return len(p), nil
}

// read copies readable bytes into p. cancel aborts the read (connection
// closed locally); deadline is the reader's deadline channel.
func (s *stream) read(p []byte, deadline, cancel <-chan struct{}) (int, error) {
	for {
		s.mu.Lock()
		for s.pending == nil && s.queue.len() > 0 {
			pl := s.queue.pop()
			if len(pl.b) == 0 {
				releasePayload(pl) // zero-length write: nothing to read
				continue
			}
			s.pending, s.pendingOff = pl, 0
		}
		if s.pending != nil {
			n := copy(p, s.pending.b[s.pendingOff:])
			s.pendingOff += n
			if s.pendingOff == len(s.pending.b) {
				releasePayload(s.pending)
				s.pending = nil
			}
			s.mu.Unlock()
			return n, nil
		}
		drained := s.wclosed && s.inflight == 0 && s.queue.len() == 0
		s.mu.Unlock()
		if drained {
			return 0, io.EOF
		}

		select {
		case <-s.ready:
		case <-s.wdone:
			// Re-check: in-flight payloads may still be delivering.
			s.mu.Lock()
			drained := s.inflight == 0 && s.queue.len() == 0 && s.pending == nil
			s.mu.Unlock()
			if drained {
				return 0, io.EOF
			}
			// Wait for the scheduler to deliver the rest.
			select {
			case <-s.ready:
			case <-cancel:
				return 0, net.ErrClosed
			case <-deadline:
				return 0, os.ErrDeadlineExceeded
			}
		case <-cancel:
			return 0, net.ErrClosed
		case <-deadline:
			return 0, os.ErrDeadlineExceeded
		}
	}
}

// delivery is one scheduled payload hand-off.
type delivery struct {
	due  time.Time
	s    *stream
	data *payload
}

// deliveryHeap is a min-heap of deliveries by due time.
type deliveryHeap []delivery

func (h deliveryHeap) Len() int           { return len(h) }
func (h deliveryHeap) Less(i, j int) bool { return h[i].due.Before(h[j].due) }
func (h deliveryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x any)        { *h = append(*h, x.(delivery)) }
func (h *deliveryHeap) Pop() any          { old := *h; n := len(old); d := old[n-1]; *h = old[:n-1]; return d }
func (h deliveryHeap) peek() delivery     { return h[0] }

// scheduler delivers scheduled payloads when they come due. One goroutine
// serves the whole simulated network; it parks itself when idle.
type scheduler struct {
	mu      sync.Mutex
	heap    deliveryHeap
	running bool
	kick    chan struct{}
}

func newScheduler() *scheduler {
	return &scheduler{kick: make(chan struct{}, 1)}
}

// add schedules one delivery, starting or kicking the loop as needed.
func (sc *scheduler) add(d delivery) {
	sc.mu.Lock()
	newEarliest := len(sc.heap) == 0 || d.due.Before(sc.heap.peek().due)
	heap.Push(&sc.heap, d)
	start := !sc.running
	if start {
		sc.running = true
	}
	sc.mu.Unlock()
	if start {
		go sc.loop()
	} else if newEarliest {
		select {
		case sc.kick <- struct{}{}:
		default:
		}
	}
}

// spinThreshold is the wait below which the scheduler yields rather than
// arming a timer. Operating-system timer wakeups have roughly millisecond
// granularity when a process is otherwise idle, which would quantize the
// microsecond-scale message timing the latency model depends on; yielding
// keeps delivery precise while still ceding the CPU to runnable work.
const spinThreshold = 2 * time.Millisecond

// loop delivers due payloads in batches and exits when the heap drains.
func (sc *scheduler) loop() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		sc.mu.Lock()
		now := time.Now()
		// Deliver everything due.
		var batch []delivery
		for len(sc.heap) > 0 && !sc.heap.peek().due.After(now) {
			batch = append(batch, heap.Pop(&sc.heap).(delivery))
		}
		var wait time.Duration
		if len(sc.heap) > 0 {
			wait = time.Until(sc.heap.peek().due)
		} else if len(batch) == 0 {
			sc.running = false
			sc.mu.Unlock()
			return
		}
		sc.mu.Unlock()

		for _, d := range batch {
			d.s.deliver(d.data, true)
		}
		switch {
		case wait <= 0:
			continue
		case wait < spinThreshold:
			runtime.Gosched()
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-sc.kick:
		}
	}
}

// connDeadline implements net.Conn deadline semantics: setting a deadline
// wakes blocked operations when it expires, and clearing it re-arms them.
// It follows the same pattern as net.Pipe's internal pipeDeadline.
type connDeadline struct {
	mu     sync.Mutex
	timer  *time.Timer
	cancel chan struct{}
}

func makeConnDeadline() connDeadline {
	return connDeadline{cancel: make(chan struct{})}
}

// set arms the deadline at t; the zero time disarms it.
func (d *connDeadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()

	if d.timer != nil && !d.timer.Stop() {
		<-d.cancel // the timer fired; drain is safe because we re-make below
	}
	d.timer = nil

	// Determine state: closed channel means "expired".
	closed := isClosedChan(d.cancel)

	if t.IsZero() {
		if closed {
			d.cancel = make(chan struct{})
		}
		return
	}

	if dur := time.Until(t); dur > 0 {
		if closed {
			d.cancel = make(chan struct{})
		}
		cancel := d.cancel
		d.timer = time.AfterFunc(dur, func() { close(cancel) })
		return
	}

	// Deadline already passed.
	if !closed {
		close(d.cancel)
	}
}

// wait returns a channel that is closed while the deadline is expired.
func (d *connDeadline) wait() chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancel
}

func isClosedChan(c <-chan struct{}) bool {
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// conn is one endpoint of a simulated connection.
type conn struct {
	localHost  *Host
	remoteHost *Host
	localAddr  Addr
	remoteAddr Addr

	rd *stream // incoming: peer writes, we read
	wr *stream // outgoing: we write, peer reads

	peer      *conn
	initiator bool // true on the dialing side (counts toward the limit)

	readDeadline  connDeadline
	writeDeadline connDeadline

	done chan struct{}
	once sync.Once
}

var _ net.Conn = (*conn)(nil)

func newConn(local, remote *Host, laddr, raddr Addr, rd, wr *stream) *conn {
	return &conn{
		localHost:     local,
		remoteHost:    remote,
		localAddr:     laddr,
		remoteAddr:    raddr,
		rd:            rd,
		wr:            wr,
		readDeadline:  makeConnDeadline(),
		writeDeadline: makeConnDeadline(),
		done:          make(chan struct{}),
	}
}

// Read implements net.Conn.
func (c *conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	n, err := c.rd.read(p, c.readDeadline.wait(), c.done)
	if err != nil && err != io.EOF && err != os.ErrDeadlineExceeded {
		err = &net.OpError{Op: "read", Net: "sim", Addr: c.remoteAddr, Err: err}
	}
	return n, err
}

// Write implements net.Conn.
func (c *conn) Write(p []byte) (int, error) {
	n, err := c.wr.write(p, c.writeDeadline.wait(), c.done)
	if err != nil && err != os.ErrDeadlineExceeded {
		err = &net.OpError{Op: "write", Net: "sim", Addr: c.remoteAddr, Err: err}
	}
	return n, err
}

// Close implements net.Conn. Data already written remains readable by the
// peer (followed by EOF), as with a TCP FIN.
func (c *conn) Close() error {
	c.once.Do(func() {
		close(c.done)
		c.wr.closeWrite() // peer sees EOF after draining buffered data
		c.rd.closeRead()  // peer writes fail fast
		// Either side closing frees the connection slot on both hosts.
		c.localHost.dropConn(c)
		c.remoteHost.dropConn(c.peer)
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *conn) LocalAddr() net.Addr { return c.localAddr }

// RemoteAddr implements net.Conn.
func (c *conn) RemoteAddr() net.Addr { return c.remoteAddr }

// SetDeadline implements net.Conn.
func (c *conn) SetDeadline(t time.Time) error {
	c.readDeadline.set(t)
	c.writeDeadline.set(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *conn) SetReadDeadline(t time.Time) error {
	c.readDeadline.set(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *conn) SetWriteDeadline(t time.Time) error {
	c.writeDeadline.set(t)
	return nil
}
