package controlalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

const eps = 1e-6

func sumAlloc(allocs []JobAllocation, c wire.OpClass) float64 {
	var s float64
	for _, a := range allocs {
		s += a.Limit[c]
	}
	return s
}

func TestPSFAUnderLoadSatisfiesDemandAndRedistributes(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 1, Demand: wire.Rates{100, 0}},
		{JobID: 2, Weight: 3, Demand: wire.Rates{200, 0}},
		{JobID: 3, Weight: 1, Demand: wire.Rates{0, 0}}, // idle
	}
	allocs := PSFA{}.Allocate(jobs, wire.Rates{1000, 0})

	// Active jobs get demand + weighted leftover (700 split 1:3).
	if got := allocs[0].Limit[wire.ClassData]; math.Abs(got-(100+700*0.25)) > eps {
		t.Errorf("job 1 alloc = %g, want 275", got)
	}
	if got := allocs[1].Limit[wire.ClassData]; math.Abs(got-(200+700*0.75)) > eps {
		t.Errorf("job 2 alloc = %g, want 725", got)
	}
	// Idle job gets nothing: no false allocation.
	if got := allocs[2].Limit[wire.ClassData]; got != 0 {
		t.Errorf("idle job alloc = %g, want 0", got)
	}
	if got := sumAlloc(allocs, wire.ClassData); math.Abs(got-1000) > eps {
		t.Errorf("total = %g, want 1000 (work conservation)", got)
	}
}

func TestPSFASaturationWeightedWaterfill(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 1, Demand: wire.Rates{1000, 0}},
		{JobID: 2, Weight: 1, Demand: wire.Rates{1000, 0}},
		{JobID: 3, Weight: 2, Demand: wire.Rates{1000, 0}},
	}
	allocs := PSFA{}.Allocate(jobs, wire.Rates{800, 0})
	// All saturated: allocations follow weights 1:1:2 over 800 = 200/200/400.
	if got := allocs[0].Limit[wire.ClassData]; math.Abs(got-200) > eps {
		t.Errorf("job 1 = %g, want 200", got)
	}
	if got := allocs[2].Limit[wire.ClassData]; math.Abs(got-400) > eps {
		t.Errorf("job 3 = %g, want 400", got)
	}
}

func TestPSFASaturationNoFalseAllocation(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 1, Demand: wire.Rates{50, 0}},   // tiny demand
		{JobID: 2, Weight: 1, Demand: wire.Rates{2000, 0}}, // big demand
	}
	allocs := PSFA{}.Allocate(jobs, wire.Rates{1000, 0})
	// Job 1 keeps only its 50 (fair share would be 500); job 2 takes 950.
	if got := allocs[0].Limit[wire.ClassData]; math.Abs(got-50) > eps {
		t.Errorf("small job = %g, want its demand 50", got)
	}
	if got := allocs[1].Limit[wire.ClassData]; math.Abs(got-950) > eps {
		t.Errorf("big job = %g, want 950", got)
	}
}

func TestPSFAClassesIndependent(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 1, Demand: wire.Rates{100, 500}},
		{JobID: 2, Weight: 1, Demand: wire.Rates{100, 0}},
	}
	allocs := PSFA{}.Allocate(jobs, wire.Rates{1000, 300})
	// Meta is saturated only for job 1 (demand 500 > cap 300).
	if got := allocs[0].Limit[wire.ClassMeta]; math.Abs(got-300) > eps {
		t.Errorf("job 1 meta = %g, want 300", got)
	}
	if got := allocs[1].Limit[wire.ClassMeta]; got != 0 {
		t.Errorf("job 2 meta = %g, want 0", got)
	}
	// Data is under-loaded; both active jobs share the leftover.
	if got := sumAlloc(allocs, wire.ClassData); math.Abs(got-1000) > eps {
		t.Errorf("data total = %g, want 1000", got)
	}
}

func TestPSFANoJobs(t *testing.T) {
	if got := (PSFA{}).Allocate(nil, wire.Rates{1000, 100}); len(got) != 0 {
		t.Errorf("Allocate(nil) = %v", got)
	}
}

func TestPSFAZeroCapacity(t *testing.T) {
	jobs := []JobInput{{JobID: 1, Weight: 1, Demand: wire.Rates{100, 100}}}
	allocs := PSFA{}.Allocate(jobs, wire.Rates{})
	if !allocs[0].Limit.IsZero() {
		t.Errorf("alloc with zero capacity = %v", allocs[0].Limit)
	}
}

func TestPSFAAllIdleSplitsByWeight(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 1},
		{JobID: 2, Weight: 3},
	}
	allocs := PSFA{}.Allocate(jobs, wire.Rates{400, 0})
	if got := allocs[0].Limit[wire.ClassData]; math.Abs(got-100) > eps {
		t.Errorf("idle job 1 = %g, want 100", got)
	}
	if got := allocs[1].Limit[wire.ClassData]; math.Abs(got-300) > eps {
		t.Errorf("idle job 2 = %g, want 300", got)
	}
}

func TestPSFANonPositiveWeightsTreatedAsOne(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 0, Demand: wire.Rates{1000, 0}},
		{JobID: 2, Weight: -5, Demand: wire.Rates{1000, 0}},
	}
	allocs := PSFA{}.Allocate(jobs, wire.Rates{600, 0})
	if math.Abs(allocs[0].Limit[wire.ClassData]-300) > eps ||
		math.Abs(allocs[1].Limit[wire.ClassData]-300) > eps {
		t.Errorf("allocs = %v, %v; want 300 each", allocs[0].Limit, allocs[1].Limit)
	}
}

// randomJobs builds a random job set for property tests.
func randomJobs(rng *rand.Rand, n int) []JobInput {
	jobs := make([]JobInput, n)
	for i := range jobs {
		jobs[i] = JobInput{
			JobID:  uint64(i + 1),
			Weight: float64(rng.Intn(8) + 1),
			Demand: wire.Rates{
				float64(rng.Intn(2000)),
				float64(rng.Intn(200)),
			},
			Stages: uint32(rng.Intn(10) + 1),
		}
	}
	return jobs
}

// TestPSFAInvariantsProperty checks the three defining properties over
// random inputs: work conservation (Σ alloc = capacity whenever any
// capacity exists and jobs exist), no false allocation under saturation
// (alloc ≤ demand), and demand satisfaction under under-load.
func TestPSFAInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, capData, capMeta uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%20 + 1
		jobs := randomJobs(rng, n)
		capacity := wire.Rates{float64(capData) + 1, float64(capMeta) + 1}
		allocs := PSFA{}.Allocate(jobs, capacity)
		if len(allocs) != n {
			return false
		}
		for c := wire.OpClass(0); c < wire.NumClasses; c++ {
			var totalDemand float64
			for i := range jobs {
				totalDemand += jobs[i].Demand[c]
			}
			total := sumAlloc(allocs, c)
			// Work conservation: full capacity always distributed.
			if math.Abs(total-capacity[c]) > 1e-6*math.Max(1, capacity[c]) {
				return false
			}
			saturated := totalDemand > capacity[c]
			for i := range jobs {
				a := allocs[i].Limit[c]
				if a < -eps {
					return false
				}
				if saturated && a > jobs[i].Demand[c]+eps {
					return false // false allocation
				}
				if !saturated && a < jobs[i].Demand[c]-eps {
					return false // demand not satisfied under under-load
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPSFAWeightedFairnessProperty: under saturation, any two jobs whose
// allocations are both strictly below their demands (i.e. both limited by
// the water level) receive capacity proportional to their weights.
func TestPSFAWeightedFairnessProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%10 + 2
		jobs := randomJobs(rng, n)
		var totalDemand float64
		for i := range jobs {
			totalDemand += jobs[i].Demand[wire.ClassData]
		}
		capacity := wire.Rates{totalDemand / 2, 1}
		if capacity[wire.ClassData] <= 0 {
			return true
		}
		allocs := PSFA{}.Allocate(jobs, capacity)
		for i := range jobs {
			for j := range jobs {
				ai, aj := allocs[i].Limit[wire.ClassData], allocs[j].Limit[wire.ClassData]
				di, dj := jobs[i].Demand[wire.ClassData], jobs[j].Demand[wire.ClassData]
				if ai < di-eps && aj < dj-eps && ai > eps && aj > eps {
					ri := ai / weight(jobs[i])
					rj := aj / weight(jobs[j])
					if math.Abs(ri-rj) > 1e-3*math.Max(ri, rj) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUniformBaseline(t *testing.T) {
	jobs := randomJobs(rand.New(rand.NewSource(1)), 4)
	allocs := Uniform{}.Allocate(jobs, wire.Rates{1000, 100})
	for i, a := range allocs {
		if math.Abs(a.Limit[wire.ClassData]-250) > eps {
			t.Errorf("job %d data = %g, want 250", i, a.Limit[wire.ClassData])
		}
		if math.Abs(a.Limit[wire.ClassMeta]-25) > eps {
			t.Errorf("job %d meta = %g, want 25", i, a.Limit[wire.ClassMeta])
		}
	}
	if got := (Uniform{}).Allocate(nil, wire.Rates{1000, 0}); len(got) != 0 {
		t.Error("Uniform with no jobs")
	}
}

func TestWeightedStaticBaseline(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 1, Demand: wire.Rates{0, 0}}, // idle but still allocated!
		{JobID: 2, Weight: 3, Demand: wire.Rates{900, 0}},
	}
	allocs := WeightedStatic{}.Allocate(jobs, wire.Rates{1000, 0})
	// The defining flaw: the idle job holds 250 hostage.
	if got := allocs[0].Limit[wire.ClassData]; math.Abs(got-250) > eps {
		t.Errorf("idle job static share = %g, want 250 (false allocation)", got)
	}
	if got := allocs[1].Limit[wire.ClassData]; math.Abs(got-750) > eps {
		t.Errorf("busy job static share = %g, want 750", got)
	}
}

func TestMaxMinIgnoresWeights(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 10, Demand: wire.Rates{1000, 0}},
		{JobID: 2, Weight: 1, Demand: wire.Rates{1000, 0}},
	}
	allocs := MaxMin{}.Allocate(jobs, wire.Rates{600, 0})
	if math.Abs(allocs[0].Limit[wire.ClassData]-300) > eps ||
		math.Abs(allocs[1].Limit[wire.ClassData]-300) > eps {
		t.Errorf("maxmin allocs = %v / %v, want 300 each", allocs[0].Limit, allocs[1].Limit)
	}
}

func TestMaxMinDoesNotMutateInput(t *testing.T) {
	jobs := []JobInput{{JobID: 1, Weight: 10, Demand: wire.Rates{100, 0}}}
	MaxMin{}.Allocate(jobs, wire.Rates{600, 0})
	if jobs[0].Weight != 10 {
		t.Errorf("MaxMin mutated input weight to %g", jobs[0].Weight)
	}
}

func TestStrictPriorityOrdering(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 1, Demand: wire.Rates{1000, 0}}, // low priority
		{JobID: 2, Weight: 5, Demand: wire.Rates{800, 0}},  // high priority
		{JobID: 3, Weight: 3, Demand: wire.Rates{500, 0}},  // middle
	}
	allocs := StrictPriority{}.Allocate(jobs, wire.Rates{1000, 0})
	// Priority order: job 2 (800, fully), then job 3 (200 of 500), job 1
	// starves.
	if got := allocs[1].Limit[wire.ClassData]; math.Abs(got-800) > eps {
		t.Errorf("high-priority job = %g, want 800 (full demand)", got)
	}
	if got := allocs[2].Limit[wire.ClassData]; math.Abs(got-200) > eps {
		t.Errorf("middle job = %g, want the 200 residue", got)
	}
	if got := allocs[0].Limit[wire.ClassData]; got != 0 {
		t.Errorf("low-priority job = %g, want 0 (starved)", got)
	}
}

func TestStrictPriorityUnderLoadSatisfiesAll(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 1, Demand: wire.Rates{100, 10}},
		{JobID: 2, Weight: 9, Demand: wire.Rates{100, 10}},
	}
	allocs := StrictPriority{}.Allocate(jobs, wire.Rates{1000, 100})
	for i, a := range allocs {
		if a.Limit != jobs[i].Demand {
			t.Errorf("job %d = %v, want its demand %v", i, a.Limit, jobs[i].Demand)
		}
	}
}

func TestStrictPriorityEqualWeightsShareFairly(t *testing.T) {
	jobs := []JobInput{
		{JobID: 1, Weight: 2, Demand: wire.Rates{600, 0}},
		{JobID: 2, Weight: 2, Demand: wire.Rates{600, 0}},
	}
	allocs := StrictPriority{}.Allocate(jobs, wire.Rates{800, 0})
	if math.Abs(allocs[0].Limit[wire.ClassData]-400) > eps ||
		math.Abs(allocs[1].Limit[wire.ClassData]-400) > eps {
		t.Errorf("tie level = %v / %v, want 400 each", allocs[0].Limit, allocs[1].Limit)
	}
}

// TestStrictPriorityInvariantsProperty: never exceeds capacity, never
// exceeds a job's demand, and a higher-weight job is never allocated less
// than a lower-weight job whose demand it exceeds while unsatisfied.
func TestStrictPriorityInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, capData uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%10 + 1
		jobs := randomJobs(rng, n)
		capacity := wire.Rates{float64(capData) + 1, 100}
		allocs := StrictPriority{}.Allocate(jobs, capacity)
		var total float64
		for i := range allocs {
			a := allocs[i].Limit[wire.ClassData]
			if a < -eps || a > jobs[i].Demand[wire.ClassData]+eps {
				return false
			}
			total += a
		}
		if total > capacity[wire.ClassData]+eps {
			return false
		}
		// Priority dominance: if a job received anything, every strictly
		// higher-weight job must be fully satisfied — capacity never
		// flows past an unsatisfied higher level.
		for i := range jobs {
			if allocs[i].Limit[wire.ClassData] > eps {
				for j := range jobs {
					if weight(jobs[j]) > weight(jobs[i]) &&
						allocs[j].Limit[wire.ClassData] < jobs[j].Demand[wire.ClassData]-eps {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"psfa", "uniform", "weighted-static", "maxmin", "strict-priority"} {
		alg, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if alg.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, alg.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New accepted unknown algorithm")
	}
}

func TestSplitProportional(t *testing.T) {
	stages := []wire.Rates{
		{300, 0},
		{100, 0},
	}
	split := SplitProportional(wire.Rates{200, 40}, stages)
	if math.Abs(split[0][wire.ClassData]-150) > eps {
		t.Errorf("stage 0 data = %g, want 150", split[0][wire.ClassData])
	}
	if math.Abs(split[1][wire.ClassData]-50) > eps {
		t.Errorf("stage 1 data = %g, want 50", split[1][wire.ClassData])
	}
	// Meta has no demand anywhere: even split.
	if math.Abs(split[0][wire.ClassMeta]-20) > eps {
		t.Errorf("stage 0 meta = %g, want 20", split[0][wire.ClassMeta])
	}
	if got := SplitProportional(wire.Rates{100, 0}, nil); got != nil {
		t.Error("SplitProportional with no stages")
	}
}

// TestSplitProportionalConservesProperty: per-stage limits sum to the job's
// allocation.
func TestSplitProportionalConservesProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, alloc uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%20 + 1
		demands := make([]wire.Rates, n)
		for i := range demands {
			demands[i] = wire.Rates{float64(rng.Intn(100)), float64(rng.Intn(10))}
		}
		a := wire.Rates{float64(alloc), float64(alloc) / 10}
		split := SplitProportional(a, demands)
		var sum wire.Rates
		for _, s := range split {
			for c := range s {
				if s[c] < -eps {
					return false
				}
			}
			sum = sum.Add(s)
		}
		return math.Abs(sum[0]-a[0]) < 1e-6*math.Max(1, a[0]) &&
			math.Abs(sum[1]-a[1]) < 1e-6*math.Max(1, a[1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSplitUniform(t *testing.T) {
	got := SplitUniform(wire.Rates{100, 10}, 4)
	if got != (wire.Rates{25, 2.5}) {
		t.Errorf("SplitUniform = %v", got)
	}
	if got := SplitUniform(wire.Rates{100, 10}, 0); !got.IsZero() {
		t.Errorf("SplitUniform(0 stages) = %v", got)
	}
}

func BenchmarkPSFA16Jobs(b *testing.B) {
	jobs := randomJobs(rand.New(rand.NewSource(1)), 16)
	capacity := wire.Rates{10000, 1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PSFA{}.Allocate(jobs, capacity)
	}
}

func BenchmarkPSFA1000Jobs(b *testing.B) {
	jobs := randomJobs(rand.New(rand.NewSource(1)), 1000)
	capacity := wire.Rates{1e6, 1e5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PSFA{}.Allocate(jobs, capacity)
	}
}
