package config

import (
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return f
}

func TestParseFull(t *testing.T) {
	f := mustParse(t, `{
		"stages": 64,
		"jobs": 8,
		"aggregatorFanIn": 16,
		"dataDir": "/tmp/wal",
		"workload": "stress",
		"capacity": [1000, 100],
		"incremental": true,
		"interval": "250ms",
		"poll": "1s",
		"jobWeights": {"1": 2.5, "7": 0.5},
		"debug": "127.0.0.1:9190",
		"slo": {"targetP90": "40ms", "window": 8, "breachWindows": 2, "clearWindows": 4,
		        "headroomRatio": 0.4, "cooldown": "5s", "minAggregators": 1, "maxAggregators": 8}
	}`)
	if f.Stages != 64 || f.Jobs != 8 || f.AggregatorFanIn != 16 {
		t.Fatalf("topology fields wrong: %+v", f)
	}
	if got := f.CycleInterval(); got != 250*time.Millisecond {
		t.Fatalf("CycleInterval = %v", got)
	}
	if got := f.PollInterval(); got != time.Second {
		t.Fatalf("PollInterval = %v", got)
	}
	w := f.Weights()
	if len(w) != 2 || w[1] != 2.5 || w[7] != 0.5 {
		t.Fatalf("Weights = %v", w)
	}
	if f.SLO == nil || f.SLO.TargetP90.Value() != 40*time.Millisecond || f.SLO.MaxAggregators != 8 {
		t.Fatalf("SLO = %+v", f.SLO)
	}
}

func TestParseDefaults(t *testing.T) {
	f := mustParse(t, `{"stages": 4}`)
	if got := f.CycleInterval(); got != DefaultInterval {
		t.Fatalf("CycleInterval = %v, want %v", got, DefaultInterval)
	}
	if got := f.PollInterval(); got != DefaultPoll {
		t.Fatalf("PollInterval = %v, want %v", got, DefaultPoll)
	}
	if f.Weights() != nil {
		t.Fatalf("Weights on empty table = %v, want nil", f.Weights())
	}
}

func TestDurationForms(t *testing.T) {
	// String form and bare-nanosecond form both decode.
	f := mustParse(t, `{"stages": 1, "interval": 250000000}`)
	if got := f.CycleInterval(); got != 250*time.Millisecond {
		t.Fatalf("numeric interval = %v", got)
	}
	b, err := Duration(1500 * time.Millisecond).MarshalJSON()
	if err != nil || string(b) != `"1.5s"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown field", `{"stages": 4, "stagess": 5}`, "unknown field"},
		{"trailing data", `{"stages": 4} {"stages": 5}`, "trailing data"},
		{"bad duration", `{"stages": 4, "interval": "fast"}`, "bad duration"},
		{"no stages", `{}`, "stages must be >= 1"},
		{"negative jobs", `{"stages": 4, "jobs": -1}`, "negative jobs"},
		{"negative shards", `{"stages": 4, "shards": -1}`, "negative shards"},
		{"standbys too many", `{"stages": 4, "standbys": 3}`, "standbys must be 0..2"},
		{"fanin exclusive with shards", `{"stages": 4, "shards": 2, "aggregatorFanIn": 2}`, "exclusive"},
		{"stages under shards", `{"stages": 2, "shards": 4}`, "cannot populate"},
		{"capacity arity", `{"stages": 4, "capacity": [1]}`, "capacity wants"},
		{"capacity negative", `{"stages": 4, "capacity": [-1, 1]}`, "negative capacity"},
		{"negative interval", `{"stages": 4, "interval": "-1s"}`, "negative interval"},
		{"negative poll", `{"stages": 4, "poll": "-1s"}`, "negative poll"},
		{"weight key", `{"stages": 4, "jobWeights": {"abc": 1}}`, "not a job ID"},
		{"weight value", `{"stages": 4, "jobWeights": {"1": 0}}`, "must be positive"},
		{"slo no target", `{"stages": 4, "aggregatorFanIn": 2, "slo": {"window": 4}}`, "targetP90"},
		{"slo negative windows", `{"stages": 4, "aggregatorFanIn": 2, "slo": {"targetP90": "1s", "window": -1}}`, "negative slo window"},
		{"slo headroom", `{"stages": 4, "aggregatorFanIn": 2, "slo": {"targetP90": "1s", "headroomRatio": 1.5}}`, "headroomRatio"},
		{"slo bounds order", `{"stages": 4, "aggregatorFanIn": 2, "slo": {"targetP90": "1s", "minAggregators": 5, "maxAggregators": 2}}`, "exceeds"},
		{"slo needs fanin", `{"stages": 4, "slo": {"targetP90": "1s"}}`, "requires the hierarchical design"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDiffSafeDeltas(t *testing.T) {
	old := mustParse(t, `{"stages": 8, "shards": 2, "interval": "1s", "jobWeights": {"1": 2, "2": 3}}`)
	next := mustParse(t, `{"stages": 12, "shards": 4, "interval": "500ms", "poll": "1s", "jobWeights": {"1": 2, "3": 4}}`)
	d, err := Diff(old, next)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if d.Interval == nil || *d.Interval != 500*time.Millisecond {
		t.Fatalf("Interval delta = %v", d.Interval)
	}
	if d.Poll == nil || *d.Poll != time.Second {
		t.Fatalf("Poll delta = %v", d.Poll)
	}
	if d.Stages != 12 || d.Shards != 4 {
		t.Fatalf("resize delta = stages %d shards %d", d.Stages, d.Shards)
	}
	// Job 2 was removed → resets to 1; job 3 added; job 1 unchanged → absent.
	if len(d.JobWeights) != 2 || d.JobWeights[2] != 1 || d.JobWeights[3] != 4 {
		t.Fatalf("JobWeights delta = %v", d.JobWeights)
	}
	if d.Empty() {
		t.Fatal("delta should not be empty")
	}
	s := d.String()
	for _, want := range []string{"interval=500ms", "poll=1s", "stages=12", "shards=4", "2=1", "3=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Delta.String() %q missing %q", s, want)
		}
	}
}

func TestDiffNoChanges(t *testing.T) {
	old := mustParse(t, `{"stages": 8, "interval": "1s"}`)
	next := mustParse(t, `{"stages": 8, "interval": "1s"}`)
	d, err := Diff(old, next)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if !d.Empty() {
		t.Fatalf("delta not empty: %s", d)
	}
	if d.String() != "no changes" {
		t.Fatalf("String = %q", d.String())
	}
}

func TestDiffIntervalDefaultEquivalence(t *testing.T) {
	// Explicit "1s" and the implicit default are the same effective interval:
	// no delta.
	old := mustParse(t, `{"stages": 8, "interval": "1s"}`)
	next := mustParse(t, `{"stages": 8}`)
	d, err := Diff(old, next)
	if err != nil || d.Interval != nil {
		t.Fatalf("Diff = %v, %v; want empty interval delta", d, err)
	}
}

func TestDiffUnsafeRejections(t *testing.T) {
	cases := []struct {
		name, old, next, want string
	}{
		{"jobs", `{"stages": 8, "jobs": 4}`, `{"stages": 8, "jobs": 8}`, "jobs"},
		{"standbys", `{"stages": 8}`, `{"stages": 8, "standbys": 1}`, "standbys"},
		{"fanin", `{"stages": 8, "aggregatorFanIn": 4}`, `{"stages": 8, "aggregatorFanIn": 8}`, "aggregatorFanIn"},
		{"virtualNodes", `{"stages": 8}`, `{"stages": 8, "virtualNodes": 128}`, "virtualNodes"},
		{"dataDir", `{"stages": 8}`, `{"stages": 8, "dataDir": "/tmp/x"}`, "dataDir"},
		{"workload", `{"stages": 8}`, `{"stages": 8, "workload": "bursty"}`, "workload"},
		{"incremental", `{"stages": 8}`, `{"stages": 8, "incremental": true}`, "incremental"},
		{"debug", `{"stages": 8, "debug": ":9190"}`, `{"stages": 8, "debug": ":9191"}`, "debug"},
		{"capacity", `{"stages": 8, "capacity": [100, 10]}`, `{"stages": 8, "capacity": [200, 10]}`, "capacity"},
		{"capacity arity", `{"stages": 8, "capacity": [100, 10]}`, `{"stages": 8}`, "capacity"},
		{"shards with standbys", `{"stages": 8, "shards": 2, "standbys": 1}`, `{"stages": 8, "shards": 4, "standbys": 1}`, "shard resize requires standbys = 0"},
		{"stages with standbys", `{"stages": 8, "standbys": 1}`, `{"stages": 12, "standbys": 1}`, "fleet resize requires standbys = 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old, next := mustParse(t, tc.old), mustParse(t, tc.next)
			_, err := Diff(old, next)
			if err == nil {
				t.Fatalf("Diff accepted unsafe change %s -> %s", tc.old, tc.next)
			}
			if !strings.Contains(err.Error(), "unsafe changes rejected") || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

func TestDiffShrinkBelowLiveShards(t *testing.T) {
	// Validate already refuses stages < shards on load, so this Diff branch
	// is a defense in depth for callers handing in hand-built Files (the
	// daemon's live state); exercise it directly.
	old := &File{Stages: 8, Shards: 4}
	next := &File{Stages: 3, Shards: 4}
	_, err := Diff(old, next)
	if err == nil || !strings.Contains(err.Error(), "cannot shrink the fleet below the 4 live shard(s)") {
		t.Fatalf("Diff = %v", err)
	}
}

func TestDiffSLO(t *testing.T) {
	base := `{"stages": 8, "aggregatorFanIn": 4}`
	withSLO := `{"stages": 8, "aggregatorFanIn": 4, "slo": {"targetP90": "50ms"}}`
	retuned := `{"stages": 8, "aggregatorFanIn": 4, "slo": {"targetP90": "80ms"}}`

	d, err := Diff(mustParse(t, base), mustParse(t, withSLO))
	if err != nil || !d.SLO {
		t.Fatalf("adding slo: delta %v err %v", d, err)
	}
	d, err = Diff(mustParse(t, withSLO), mustParse(t, retuned))
	if err != nil || !d.SLO {
		t.Fatalf("retuning slo: delta %v err %v", d, err)
	}
	d, err = Diff(mustParse(t, withSLO), mustParse(t, withSLO))
	if err != nil || d.SLO {
		t.Fatalf("identical slo: delta %v err %v", d, err)
	}
	d, err = Diff(mustParse(t, withSLO), mustParse(t, base))
	if err != nil || !d.SLO {
		t.Fatalf("removing slo: delta %v err %v", d, err)
	}
}
