package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// fastNet removes simulated latency for logic tests.
func fastNet() simnet.Config { return simnet.Config{PropDelay: -1} }

func TestBuildFlat(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 20, Jobs: 4, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if len(c.Stages) != 20 {
		t.Errorf("stages = %d", len(c.Stages))
	}
	if len(c.Aggregators) != 0 {
		t.Errorf("aggregators = %d, want 0 for flat", len(c.Aggregators))
	}
	if c.Global.NumChildren() != 20 {
		t.Errorf("global children = %d", c.Global.NumChildren())
	}
	if c.Global.NumStages() != 20 {
		t.Errorf("global stages = %d", c.Global.NumStages())
	}
	if _, err := c.Global.RunCycle(context.Background()); err != nil {
		t.Fatalf("cycle: %v", err)
	}
	for i, v := range c.Stages {
		if _, ok := v.LastRule(); !ok {
			t.Fatalf("stage %d got no rule", i)
		}
	}
}

func TestBuildHierarchical(t *testing.T) {
	c, err := Build(Config{Topology: Hierarchical, Stages: 24, Jobs: 4, Aggregators: 3, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if len(c.Aggregators) != 3 {
		t.Fatalf("aggregators = %d", len(c.Aggregators))
	}
	for i, a := range c.Aggregators {
		if a.NumStages() != 8 {
			t.Errorf("aggregator %d stages = %d, want 8", i, a.NumStages())
		}
	}
	if c.Global.NumChildren() != 3 || c.Global.NumStages() != 24 {
		t.Errorf("global children/stages = %d/%d", c.Global.NumChildren(), c.Global.NumStages())
	}
	if _, err := c.Global.RunCycle(context.Background()); err != nil {
		t.Fatalf("cycle: %v", err)
	}
	for i, v := range c.Stages {
		if _, ok := v.LastRule(); !ok {
			t.Fatalf("stage %d got no rule", i)
		}
	}
}

func TestBuildHierarchicalUnevenPartition(t *testing.T) {
	c, err := Build(Config{Topology: Hierarchical, Stages: 10, Aggregators: 3, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	total := 0
	for _, a := range c.Aggregators {
		total += a.NumStages()
	}
	if total != 10 {
		t.Errorf("partitioned stages = %d, want 10", total)
	}
	if _, err := c.Global.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultAggregatorCount(t *testing.T) {
	cfg := Config{Topology: Hierarchical, Stages: 6000}.withDefaults()
	// 6000 stages need ceil(6000/2500) = 3 aggregators.
	if cfg.Aggregators != 3 {
		t.Errorf("default aggregators = %d, want 3", cfg.Aggregators)
	}
}

func TestDefaultCapacityScalesWithStages(t *testing.T) {
	cfg := Config{Topology: Flat, Stages: 100}.withDefaults()
	if cfg.Capacity[wire.ClassData] != 50000 {
		t.Errorf("default data capacity = %g", cfg.Capacity[wire.ClassData])
	}
}

func TestBuildRejectsZeroStages(t *testing.T) {
	if _, err := Build(Config{Topology: Flat, Stages: 0}); err == nil {
		t.Fatal("Build with 0 stages succeeded")
	}
}

func TestTopologyString(t *testing.T) {
	if Flat.String() != "flat" || Hierarchical.String() != "hierarchical" {
		t.Error("topology names wrong")
	}
	if !strings.Contains(Topology(9).String(), "9") {
		t.Error("unknown topology name")
	}
}

func TestFlatConnectionLimit(t *testing.T) {
	// With the paper's 2,500-connection limit scaled down to 10, a flat
	// build over 11 stages must fail — the §IV-A scalability cliff.
	_, err := Build(Config{
		Topology: Flat,
		Stages:   11,
		Net:      simnet.Config{PropDelay: -1, MaxConnsPerHost: 10},
	})
	if err == nil {
		t.Fatal("flat build beyond the connection limit succeeded")
	}
}

func TestHierarchicalEscapesConnectionLimit(t *testing.T) {
	// Same limit, but 2 aggregators of 6 connections each fit, proving the
	// hierarchy's reason to exist.
	c, err := Build(Config{
		Topology:    Hierarchical,
		Stages:      11,
		Aggregators: 2,
		Net:         simnet.Config{PropDelay: -1, MaxConnsPerHost: 10},
	})
	if err != nil {
		t.Fatalf("hierarchical build under the same limit failed: %v", err)
	}
	defer c.Close()
	if _, err := c.Global.RunCycle(context.Background()); err != nil {
		t.Fatalf("cycle: %v", err)
	}
}

func TestBuildCoordinated(t *testing.T) {
	c, err := Build(Config{Topology: Coordinated, Stages: 12, Jobs: 3, Aggregators: 3, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if c.Global != nil {
		t.Error("coordinated cluster has a global controller")
	}
	if len(c.Peers) != 3 {
		t.Fatalf("peers = %d", len(c.Peers))
	}
	for i, p := range c.Peers {
		if p.NumStages() != 4 {
			t.Errorf("peer %d stages = %d, want 4", i, p.NumStages())
		}
		if p.NumPeers() != 2 {
			t.Errorf("peer %d mesh = %d, want 2", i, p.NumPeers())
		}
	}

	ctx := context.Background()
	// Two rounds: aggregates propagate in round 1, so round 2 computes
	// with global visibility everywhere.
	for round := 0; round < 2; round++ {
		if _, err := c.RunControlCycle(ctx); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	// Default capacity = 12 × 500 data; global view has 12 stages: each
	// stage's limit must equal 500, same as the other topologies.
	for i, v := range c.Stages {
		rule, ok := v.LastRule()
		if !ok {
			t.Fatalf("stage %d got no rule", i)
		}
		if rule.Limit[wire.ClassData] != 500 {
			t.Errorf("stage %d limit = %g, want 500", i, rule.Limit[wire.ClassData])
		}
	}
	if c.Recorder().Cycles() != 2 {
		t.Errorf("recorded rounds = %d", c.Recorder().Cycles())
	}
}

func TestCoordinatedEscapesConnectionLimit(t *testing.T) {
	// Same 10-connection limit as the flat/hierarchical tests: 11 stages
	// need at least 2 peers.
	c, err := Build(Config{
		Topology:    Coordinated,
		Stages:      11,
		Aggregators: 2,
		Net:         simnet.Config{PropDelay: -1, MaxConnsPerHost: 10},
	})
	if err != nil {
		t.Fatalf("coordinated build under the limit failed: %v", err)
	}
	defer c.Close()
	if _, err := c.RunControlCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatedUsageCollector(t *testing.T) {
	c, err := Build(Config{Topology: Coordinated, Stages: 8, Aggregators: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	uc := NewUsageCollector(c)
	uc.Start()
	for i := 0; i < 3; i++ {
		if _, err := c.RunControlCycle(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	global, peer, elapsed := uc.Stop()
	if elapsed <= 0 {
		t.Fatal("no window")
	}
	if global.TxMBps != 0 || global.CPUPercent != 0 {
		t.Errorf("coordinated global usage = %+v, want zero (no global controller)", global)
	}
	if peer.TxMBps <= 0 || peer.RxMBps <= 0 || peer.MemBytes == 0 {
		t.Errorf("per-peer usage = %+v, want nonzero", peer)
	}
}

func TestUsageCollector(t *testing.T) {
	c, err := Build(Config{Topology: Hierarchical, Stages: 12, Aggregators: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	uc := NewUsageCollector(c)
	uc.Start()
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := c.Global.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}
	global, agg, elapsed := uc.Stop()
	if elapsed <= 0 {
		t.Fatal("elapsed <= 0")
	}
	if global.TxMBps <= 0 || global.RxMBps <= 0 {
		t.Errorf("global network = %g/%g MB/s, want > 0", global.TxMBps, global.RxMBps)
	}
	if agg.TxMBps <= 0 || agg.RxMBps <= 0 {
		t.Errorf("aggregator network = %g/%g MB/s, want > 0", agg.TxMBps, agg.RxMBps)
	}
	if global.MemBytes == 0 || agg.MemBytes == 0 {
		t.Error("memory footprints are zero")
	}
	if global.CPUPercent < 0 || agg.CPUPercent < 0 {
		t.Error("negative CPU percent")
	}
}

func TestUsageCollectorStopWithoutStart(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	uc := NewUsageCollector(c)
	g, a, elapsed := uc.Stop()
	if elapsed != 0 || g.TxMBps != 0 || a.TxMBps != 0 {
		t.Error("Stop without Start returned data")
	}
}

func TestRoleUsageMemGB(t *testing.T) {
	u := RoleUsage{MemBytes: 2_500_000_000}
	if u.MemGB() != 2.5 {
		t.Errorf("MemGB = %g", u.MemGB())
	}
}

// TestDependabilityControllerRestart exercises the paper's §VI
// dependability observation: when the controller fails, stages keep
// enforcing their last rules (no storage unavailability), and a restarted
// controller re-adopts the fleet and resumes QoS control.
func TestDependabilityControllerRestart(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 6, Jobs: 2, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Global.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}

	// Snapshot the enforced rules, then kill the controller.
	rules := make([]wire.Rule, len(c.Stages))
	for i, v := range c.Stages {
		r, ok := v.LastRule()
		if !ok {
			t.Fatalf("stage %d unruled before failure", i)
		}
		rules[i] = r
	}
	c.Global.Close()

	// The data plane keeps enforcing the last rules: the stages' state is
	// untouched by the controller's death.
	for i, v := range c.Stages {
		r, ok := v.LastRule()
		if !ok || r != rules[i] {
			t.Errorf("stage %d lost its rule after controller failure", i)
		}
	}

	// A replacement controller adopts the same stages and resumes control.
	replacement, err := controller.NewGlobal(controller.GlobalConfig{
		Network:  c.Net.Host("global-2"),
		Capacity: wire.Rates{1200, 120}, // different capacity: rules must change
	})
	if err != nil {
		t.Fatal(err)
	}
	defer replacement.Close()
	for _, v := range c.Stages {
		if err := replacement.AddStage(ctx, v.Info()); err != nil {
			t.Fatalf("re-adopt: %v", err)
		}
	}
	if _, err := replacement.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Stages {
		r, _ := v.LastRule()
		if r == rules[i] {
			t.Errorf("stage %d rule unchanged after takeover", i)
		}
		if r.Limit[wire.ClassData] != 200 { // 1200 over 6 stages
			t.Errorf("stage %d new limit = %g, want 200", i, r.Limit[wire.ClassData])
		}
	}
}

// TestDependabilityAggregatorLoss: losing one aggregator must not stop the
// control plane — the remaining partitions keep being managed.
func TestDependabilityAggregatorLoss(t *testing.T) {
	c, err := Build(Config{Topology: Hierarchical, Stages: 12, Jobs: 2, Aggregators: 3, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Global.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}

	c.Aggregators[1].Close()
	// Survivors keep receiving rules; the dead partition's stages keep
	// their last rules. Run enough cycles to trip the dead aggregator's
	// circuit breaker into quarantine.
	var before [12]uint64
	for i, v := range c.Stages {
		before[i], _ = v.Counters()
	}
	for i := 0; i < 4; i++ {
		c.Global.RunCycle(ctx)
	}
	if got := c.Global.NumChildren(); got != 3 {
		t.Errorf("children after aggregator loss = %d, want 3 (quarantined, not evicted)", got)
	}
	if got := c.Global.NumQuarantined(); got != 1 {
		t.Errorf("quarantined after aggregator loss = %d, want 1", got)
	}
	for i, v := range c.Stages {
		after, _ := v.Counters()
		inDeadPartition := i >= 4 && i < 8 // aggregator 1's contiguous slice
		if inDeadPartition {
			if _, ok := v.LastRule(); !ok {
				t.Errorf("orphaned stage %d lost its rule", i)
			}
		} else if after <= before[i] {
			t.Errorf("surviving stage %d no longer collected", i)
		}
	}
}

// TestDependabilityNetworkPartition injects a network partition (rather
// than a clean shutdown): the aggregator's host becomes unreachable, its
// established connections are severed mid-flight, and the control plane
// must quarantine it and keep serving the reachable partitions.
func TestDependabilityNetworkPartition(t *testing.T) {
	c, err := Build(Config{
		Topology: Hierarchical, Stages: 9, Jobs: 3, Aggregators: 3,
		Net:         fastNet(),
		CallTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Global.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}

	// Partition aggregator 1's host: dials fail and existing connections
	// die, including the global's connection to it and its connections to
	// its stages.
	c.Net.Host("agg-2").SetPartitioned(true)

	for i := 0; i < 4; i++ {
		if _, err := c.Global.RunCycle(ctx); err != nil {
			t.Fatalf("cycle during partition: %v", err)
		}
	}
	if got := c.Global.NumChildren(); got != 3 {
		t.Errorf("children after partition = %d, want 3 (quarantined, not evicted)", got)
	}
	if got := c.Global.NumQuarantined(); got != 1 {
		t.Errorf("quarantined after partition = %d, want 1", got)
	}
	if c.Global.CallErrors() == 0 {
		t.Error("no call errors recorded despite partition")
	}
	// Reachable stages keep being managed.
	before := make([]uint64, len(c.Stages))
	for i, v := range c.Stages {
		before[i], _ = v.Counters()
	}
	if _, err := c.Global.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Stages {
		after, _ := v.Counters()
		inPartition := i >= 3 && i < 6 // agg-2's contiguous slice
		if !inPartition && after <= before[i] {
			t.Errorf("reachable stage %d no longer collected", i)
		}
	}
}

func TestStressCyclesAccumulate(t *testing.T) {
	c, err := Build(Config{Topology: Flat, Stages: 10, Net: fastNet()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	c.Global.Run(ctx, 0)
	if c.Global.Recorder().Cycles() < 5 {
		t.Errorf("stress run completed %d cycles", c.Global.Recorder().Cycles())
	}
	s := c.Global.Recorder().Summarize()
	if s.Total.Mean <= 0 {
		t.Error("mean cycle latency is zero")
	}
}

// TestQuorumStandbys builds a flat cluster with a two-standby quorum and a
// durable data directory, kills the primary, and checks that exactly one
// standby wins the election, adopts the full stage fleet, and resumes
// control while the loser stays passive.
func TestQuorumStandbys(t *testing.T) {
	c, err := Build(Config{
		Topology: Flat, Stages: 8, Jobs: 2, Net: fastNet(),
		Standbys:     2,
		DataDir:      t.TempDir(),
		LeaseTimeout: 150 * time.Millisecond,
		SyncInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.Standbys) != 2 || c.Standby != c.Standbys[0] {
		t.Fatalf("standbys = %d, want 2 with Standby aliasing the first", len(c.Standbys))
	}

	ctx := context.Background()
	if _, err := c.Global.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}

	runCtx, stopRun := context.WithCancel(ctx)
	defer stopRun()
	for _, sb := range c.Standbys {
		go sb.Run(runCtx, 25*time.Millisecond)
	}

	// Wait for the primary's state syncs to reach both standbys.
	deadline := time.Now().Add(5 * time.Second)
	for c.Standbys[0].Epoch() < 1 || c.Standbys[1].Epoch() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("standbys never mirrored the primary: epochs %d, %d",
				c.Standbys[0].Epoch(), c.Standbys[1].Epoch())
		}
		time.Sleep(5 * time.Millisecond)
	}

	c.Global.Close() // primary dies

	var winner, loser *controller.Global
	deadline = time.Now().Add(5 * time.Second)
	for winner == nil {
		if time.Now().After(deadline) {
			t.Fatal("no standby promoted after primary death")
		}
		switch {
		case c.Standbys[0].Promoted():
			winner, loser = c.Standbys[0], c.Standbys[1]
		case c.Standbys[1].Promoted():
			winner, loser = c.Standbys[1], c.Standbys[0]
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	if winner.Epoch() <= 1 {
		t.Fatalf("winner epoch = %d, want > 1", winner.Epoch())
	}

	// The winner must adopt the whole fleet and resume ruling it. Its own
	// Run loop keeps cycling (a second concurrent RunCycle would violate
	// the reply-reuse contract), so observe the recorder instead.
	deadline = time.Now().Add(5 * time.Second)
	for winner.NumChildren() < len(c.Stages) {
		if time.Now().After(deadline) {
			t.Fatalf("winner adopted %d/%d stages", winner.NumChildren(), len(c.Stages))
		}
		time.Sleep(5 * time.Millisecond)
	}
	cyclesBefore := winner.Recorder().Cycles()
	deadline = time.Now().Add(5 * time.Second)
	for winner.Recorder().Cycles() <= cyclesBefore {
		if time.Now().After(deadline) {
			t.Fatal("winner adopted the fleet but is not running cycles")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The loser must not also promote (split brain).
	time.Sleep(200 * time.Millisecond)
	if loser.Promoted() {
		t.Fatal("both standbys promoted: split brain")
	}
}
