package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// echoHandler answers heartbeats and collects, and errors on enforce.
type echoHandler struct {
	collects atomic.Int64
}

func (h *echoHandler) Serve(peer *Peer, req wire.Message) (wire.Message, error) {
	switch m := req.(type) {
	case *wire.Heartbeat:
		return &wire.HeartbeatAck{EchoUnixMicros: m.SentUnixMicros}, nil
	case *wire.Collect:
		h.collects.Add(1)
		return &wire.CollectReply{Cycle: m.Cycle}, nil
	case *wire.Enforce:
		return nil, errors.New("enforce rejected")
	case *wire.Register:
		peer.SetAttachment(m.ID)
		return &wire.RegisterAck{ID: m.ID}, nil
	}
	return nil, fmt.Errorf("unexpected %s", req.Type())
}

// testSetup builds a simnet, a server on "server", and a client on "client".
func testSetup(t *testing.T, h Handler) (*simnet.Net, *Server, *Client) {
	t.Helper()
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", h, ServerOptions{})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return n, srv, cli
}

func TestCallRoundTrip(t *testing.T) {
	_, _, cli := testSetup(t, &echoHandler{})
	resp, err := cli.Call(context.Background(), &wire.Heartbeat{SentUnixMicros: 77})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	ack, ok := resp.(*wire.HeartbeatAck)
	if !ok {
		t.Fatalf("response type = %T", resp)
	}
	if ack.EchoUnixMicros != 77 {
		t.Errorf("echo = %d, want 77", ack.EchoUnixMicros)
	}
}

func TestCallRemoteError(t *testing.T) {
	_, _, cli := testSetup(t, &echoHandler{})
	_, err := cli.Call(context.Background(), &wire.Enforce{Cycle: 1})
	var er *wire.ErrorReply
	if !errors.As(err, &er) {
		t.Fatalf("Call error = %v, want *wire.ErrorReply", err)
	}
	if er.Text != "enforce rejected" {
		t.Errorf("error text = %q", er.Text)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	_, _, cli := testSetup(t, &echoHandler{})
	const calls = 100
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cli.Call(context.Background(), &wire.Heartbeat{SentUnixMicros: int64(i)})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if got := resp.(*wire.HeartbeatAck).EchoUnixMicros; got != int64(i) {
				t.Errorf("call %d echoed %d", i, got)
			}
		}(i)
	}
	wg.Wait()
}

func TestCallContextTimeout(t *testing.T) {
	// A handler that blocks until the server closes.
	block := make(chan struct{})
	h := HandlerFunc(func(peer *Peer, req wire.Message) (wire.Message, error) {
		<-block
		return &wire.HeartbeatAck{}, nil
	})
	_, _, cli := testSetup(t, h)
	defer close(block)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := cli.Call(ctx, &wire.Heartbeat{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Call = %v, want DeadlineExceeded", err)
	}
}

func TestPendingCallsFailOnDisconnect(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(peer *Peer, req wire.Message) (wire.Message, error) {
		<-block
		return &wire.HeartbeatAck{}, nil
	})
	_, srv, cli := testSetup(t, h)
	defer close(block)

	errc := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), &wire.Heartbeat{})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	srv.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("pending call succeeded after server close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call hung after server close")
	}
}

func TestCallsAfterClientClose(t *testing.T) {
	_, _, cli := testSetup(t, &echoHandler{})
	cli.Close()
	if _, err := cli.Call(context.Background(), &wire.Heartbeat{}); err == nil {
		t.Fatal("Call on closed client succeeded")
	}
}

func TestPeerAttachment(t *testing.T) {
	var got atomic.Value
	h := HandlerFunc(func(peer *Peer, req wire.Message) (wire.Message, error) {
		switch m := req.(type) {
		case *wire.Register:
			peer.SetAttachment(m.ID)
			return &wire.RegisterAck{ID: m.ID}, nil
		case *wire.Heartbeat:
			got.Store(peer.Attachment())
			return &wire.HeartbeatAck{}, nil
		}
		return nil, errors.New("bad")
	})
	_, _, cli := testSetup(t, h)
	if _, err := cli.Call(context.Background(), &wire.Register{ID: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(context.Background(), &wire.Heartbeat{}); err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Load().(uint64); v != 42 {
		t.Errorf("attachment seen by second request = %v, want 42", got.Load())
	}
}

func TestHandlerPanicIsolated(t *testing.T) {
	h := HandlerFunc(func(peer *Peer, req wire.Message) (wire.Message, error) {
		if _, ok := req.(*wire.Collect); ok {
			panic("boom")
		}
		return &wire.HeartbeatAck{}, nil
	})
	_, _, cli := testSetup(t, h)
	_, err := cli.Call(context.Background(), &wire.Collect{})
	var er *wire.ErrorReply
	if !errors.As(err, &er) || er.Code != wire.CodeInternal {
		t.Fatalf("panicking handler returned %v", err)
	}
	// The connection must survive the panic.
	if _, err := cli.Call(context.Background(), &wire.Heartbeat{}); err != nil {
		t.Fatalf("call after panic: %v", err)
	}
}

func TestNilResponseBecomesError(t *testing.T) {
	h := HandlerFunc(func(peer *Peer, req wire.Message) (wire.Message, error) {
		return nil, nil
	})
	_, _, cli := testSetup(t, h)
	_, err := cli.Call(context.Background(), &wire.Heartbeat{})
	var er *wire.ErrorReply
	if !errors.As(err, &er) {
		t.Fatalf("nil handler response returned %v", err)
	}
}

func TestServerNumPeersAndOnDisconnect(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	disconnected := make(chan *Peer, 1)
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{
		OnDisconnect: func(p *Peer) { disconnected <- p },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(context.Background(), &wire.Heartbeat{}); err != nil {
		t.Fatal(err)
	}
	if got := srv.NumPeers(); got != 1 {
		t.Errorf("NumPeers = %d, want 1", got)
	}
	cli.Close()
	select {
	case <-disconnected:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect not invoked")
	}
}

func TestMetersChargedBothSides(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	var smeter, cmeter transport.Meter
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{Meter: &smeter})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{Meter: &cmeter})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(context.Background(), &wire.Heartbeat{SentUnixMicros: 1}); err != nil {
		t.Fatal(err)
	}
	if cmeter.Tx() == 0 || cmeter.Rx() == 0 {
		t.Errorf("client meter = %d/%d, want nonzero", cmeter.Tx(), cmeter.Rx())
	}
	if smeter.Tx() == 0 || smeter.Rx() == 0 {
		t.Errorf("server meter = %d/%d, want nonzero", smeter.Tx(), smeter.Rx())
	}
	if cmeter.Tx() != smeter.Rx() || cmeter.Rx() != smeter.Tx() {
		t.Errorf("meters disagree: client %d/%d server %d/%d",
			cmeter.Tx(), cmeter.Rx(), smeter.Tx(), smeter.Rx())
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(id uint64, cycle uint64, text string) bool {
		var buf bytes.Buffer
		frame := appendFrame(nil, frameHeader{id: id, kind: kindRequest}, &wire.Collect{Cycle: cycle})
		buf.Write(frame)
		frame2 := appendFrame(nil, frameHeader{id: id + 1, kind: kindResponse}, &wire.ErrorReply{Code: 1, Text: text})
		buf.Write(frame2)

		h1, b1, rb, err := readFrame(&buf, nil)
		if err != nil || h1.id != id || h1.kind != kindRequest {
			return false
		}
		m1, err := wire.Decode(b1)
		if err != nil {
			return false
		}
		if c, ok := m1.(*wire.Collect); !ok || c.Cycle != cycle {
			return false
		}
		h2, b2, _, err := readFrame(&buf, rb)
		if err != nil || h2.id != id+1 || h2.kind != kindResponse {
			return false
		}
		m2, err := wire.Decode(b2)
		if err != nil {
			return false
		}
		er, ok := m2.(*wire.ErrorReply)
		return ok && er.Text == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, _, err := readFrame(&buf, nil); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("readFrame = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	full := appendFrame(nil, frameHeader{id: 1, kind: kindRequest}, &wire.Heartbeat{SentUnixMicros: 5})
	for i := 1; i < len(full); i++ {
		buf := bytes.NewReader(full[:i])
		if _, _, _, err := readFrame(buf, nil); err == nil {
			t.Errorf("readFrame accepted %d/%d byte prefix", i, len(full))
		}
	}
}

func TestScatter(t *testing.T) {
	ctx := context.Background()
	for _, par := range []int{0, 1, 4, 100} {
		var count atomic.Int64
		seen := make([]atomic.Bool, 37)
		Scatter(ctx, 37, par, func(i int) {
			count.Add(1)
			if seen[i].Swap(true) {
				t.Errorf("par=%d: index %d visited twice", par, i)
			}
		})
		if count.Load() != 37 {
			t.Errorf("par=%d: visited %d, want 37", par, count.Load())
		}
	}
	// n <= 0 must be a no-op.
	Scatter(ctx, 0, 4, func(int) { t.Error("fn called for n=0") })
	Scatter(ctx, -3, 4, func(int) { t.Error("fn called for n<0") })
}

func TestScatterBoundedParallelism(t *testing.T) {
	var cur, peak atomic.Int64
	Scatter(context.Background(), 64, 4, func(i int) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	})
	if p := peak.Load(); p > 4 {
		t.Errorf("observed parallelism %d > 4", p)
	}
}

func TestScatterStopsOnCancel(t *testing.T) {
	// Sequential (par=1): cancel inside an early index must stop the rest.
	ctx, cancel := context.WithCancel(context.Background())
	var visited atomic.Int64
	Scatter(ctx, 100, 1, func(i int) {
		visited.Add(1)
		if i == 4 {
			cancel()
		}
	})
	if got := visited.Load(); got != 5 {
		t.Errorf("par=1: visited %d indexes after cancel at 4, want 5", got)
	}

	// Parallel: workers already holding an index finish it, but no new
	// indexes are issued once ctx is cancelled.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var visited2 atomic.Int64
	Scatter(ctx2, 1000, 4, func(i int) {
		visited2.Add(1)
		if visited2.Load() == 8 {
			cancel2()
		}
	})
	if got := visited2.Load(); got >= 1000 {
		t.Errorf("parallel scatter completed all %d indexes despite cancellation", got)
	}
}

func BenchmarkCallLatency(b *testing.B) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Call(ctx, &wire.Heartbeat{SentUnixMicros: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
