package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// FaultCounters tracks a controller's fault-tolerance behaviour: circuit
// breaker transitions (quarantine, readmission), half-open probes, and the
// degraded cycles that proceed on quarantined children's last-known
// reports. All methods are safe for concurrent use.
type FaultCounters struct {
	quarantines    atomic.Uint64
	readmissions   atomic.Uint64
	degradedCycles atomic.Uint64
	probes         atomic.Uint64
	probeFailures  atomic.Uint64
	evictions      atomic.Uint64

	// staleAge records the age of each quarantined-child report a degraded
	// cycle actually used, so operators can see how stale the control input
	// got during a fault.
	staleAge Histogram
}

// Quarantine records a child tripping its circuit breaker.
func (f *FaultCounters) Quarantine() { f.quarantines.Add(1) }

// Readmit records a quarantined child passing a half-open probe.
func (f *FaultCounters) Readmit() { f.readmissions.Add(1) }

// DegradedCycle records a control cycle that ran with at least one child
// quarantined.
func (f *FaultCounters) DegradedCycle() { f.degradedCycles.Add(1) }

// Probe records one half-open heartbeat probe and its outcome.
func (f *FaultCounters) Probe(ok bool) {
	f.probes.Add(1)
	if !ok {
		f.probeFailures.Add(1)
	}
}

// Evict records a quarantined child being permanently removed (only when
// eviction is enabled via an EvictAfter bound).
func (f *FaultCounters) Evict() { f.evictions.Add(1) }

// UseStaleReport records that a degraded cycle consumed a quarantined
// child's last-known report of the given age.
func (f *FaultCounters) UseStaleReport(age time.Duration) { f.staleAge.Record(age) }

// Quarantines returns the number of circuit-breaker trips.
func (f *FaultCounters) Quarantines() uint64 { return f.quarantines.Load() }

// Readmissions returns the number of children readmitted after a
// successful probe.
func (f *FaultCounters) Readmissions() uint64 { return f.readmissions.Load() }

// DegradedCycles returns the number of cycles that ran with at least one
// child quarantined.
func (f *FaultCounters) DegradedCycles() uint64 { return f.degradedCycles.Load() }

// Probes returns the number of half-open probes issued.
func (f *FaultCounters) Probes() uint64 { return f.probes.Load() }

// ProbeFailures returns the number of half-open probes that failed.
func (f *FaultCounters) ProbeFailures() uint64 { return f.probeFailures.Load() }

// Evictions returns the number of quarantined children permanently
// removed under an EvictAfter bound.
func (f *FaultCounters) Evictions() uint64 { return f.evictions.Load() }

// StaleAge returns the histogram of stale-report ages used by degraded
// cycles.
func (f *FaultCounters) StaleAge() *Histogram { return &f.staleAge }

// FaultSummary is a point-in-time digest of FaultCounters.
type FaultSummary struct {
	// Quarantines counts circuit-breaker trips.
	Quarantines uint64
	// Readmissions counts successful half-open probes readmitting a child.
	Readmissions uint64
	// DegradedCycles counts cycles run with at least one child quarantined.
	DegradedCycles uint64
	// Probes and ProbeFailures count half-open heartbeat probes.
	Probes, ProbeFailures uint64
	// Evictions counts permanent removals under an EvictAfter bound.
	Evictions uint64
	// StaleReportsUsed counts quarantined-child reports consumed by
	// degraded cycles; MeanStaleAge and MaxStaleAge digest their ages.
	StaleReportsUsed          uint64
	MeanStaleAge, MaxStaleAge time.Duration
}

// Summarize digests the counters' current state.
func (f *FaultCounters) Summarize() FaultSummary {
	return FaultSummary{
		Quarantines:      f.Quarantines(),
		Readmissions:     f.Readmissions(),
		DegradedCycles:   f.DegradedCycles(),
		Probes:           f.Probes(),
		ProbeFailures:    f.ProbeFailures(),
		Evictions:        f.Evictions(),
		StaleReportsUsed: f.staleAge.Count(),
		MeanStaleAge:     f.staleAge.Mean(),
		MaxStaleAge:      f.staleAge.Max(),
	}
}

// String renders the summary as a single human-readable line.
func (s FaultSummary) String() string {
	return fmt.Sprintf(
		"quarantines=%d readmissions=%d degraded_cycles=%d probes=%d probe_failures=%d evictions=%d stale_reports=%d mean_stale_age=%v max_stale_age=%v",
		s.Quarantines, s.Readmissions, s.DegradedCycles, s.Probes, s.ProbeFailures,
		s.Evictions, s.StaleReportsUsed,
		s.MeanStaleAge.Round(time.Millisecond), s.MaxStaleAge.Round(time.Millisecond))
}
