package stage

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/pfs"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

func fastNet() *simnet.Net { return simnet.New(simnet.Config{PropDelay: -1}) }

// dialStage connects a test client to a stage's RPC server.
func dialStage(t *testing.T, n *simnet.Net, addr string) *rpc.Client {
	t.Helper()
	cli, err := rpc.Dial(context.Background(), n.Host("controller"), addr, rpc.DialOptions{})
	if err != nil {
		t.Fatalf("dial stage: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

func TestVirtualStageCollect(t *testing.T) {
	n := fastNet()
	v, err := StartVirtual(Config{
		ID: 7, JobID: 3, Weight: 2,
		Generator: workload.Constant{Rates: wire.Rates{500, 50}},
		Network:   n.Host("stage-7"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()

	info := v.Info()
	if info.ID != 7 || info.JobID != 3 || info.Weight != 2 || info.Addr == "" {
		t.Errorf("Info = %+v", info)
	}

	cli := dialStage(t, n, info.Addr)
	resp, err := cli.Call(context.Background(), &wire.Collect{Cycle: 9})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	r := resp.(*wire.CollectReply)
	if r.Cycle != 9 || len(r.Reports) != 1 {
		t.Fatalf("reply = %+v", r)
	}
	rep := r.Reports[0]
	if rep.StageID != 7 || rep.JobID != 3 {
		t.Errorf("report identity = %+v", rep)
	}
	if rep.Demand != (wire.Rates{500, 50}) {
		t.Errorf("demand = %v", rep.Demand)
	}
	// No rule yet: usage mirrors demand.
	if rep.Usage != rep.Demand {
		t.Errorf("usage = %v, want = demand before any rule", rep.Usage)
	}
}

func TestVirtualStageEnforceShapesUsage(t *testing.T) {
	n := fastNet()
	v, err := StartVirtual(Config{
		ID: 1, JobID: 1,
		Generator: workload.Constant{Rates: wire.Rates{1000, 100}},
		Network:   n.Host("stage-1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	cli := dialStage(t, n, v.Info().Addr)

	ack, err := cli.Call(context.Background(), &wire.Enforce{Cycle: 1, Rules: []wire.Rule{
		{StageID: 1, JobID: 1, Action: wire.ActionSetLimit, Limit: wire.Rates{400, 10}},
		{StageID: 99, JobID: 1, Action: wire.ActionSetLimit, Limit: wire.Rates{1, 1}}, // not ours
	}})
	if err != nil {
		t.Fatalf("Enforce: %v", err)
	}
	if got := ack.(*wire.EnforceAck).Applied; got != 1 {
		t.Errorf("Applied = %d, want 1 (foreign rules ignored)", got)
	}
	rule, ok := v.LastRule()
	if !ok || rule.Limit != (wire.Rates{400, 10}) {
		t.Errorf("LastRule = %+v, %v", rule, ok)
	}

	resp, err := cli.Call(context.Background(), &wire.Collect{Cycle: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := resp.(*wire.CollectReply).Reports[0]
	if rep.Usage != (wire.Rates{400, 10}) {
		t.Errorf("usage after limit = %v, want {400, 10}", rep.Usage)
	}
	if rep.Demand != (wire.Rates{1000, 100}) {
		t.Errorf("demand after limit = %v, want unchanged", rep.Demand)
	}
}

func TestVirtualStagePause(t *testing.T) {
	n := fastNet()
	v, err := StartVirtual(Config{ID: 1, JobID: 1, Network: n.Host("s")})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	cli := dialStage(t, n, v.Info().Addr)
	if _, err := cli.Call(context.Background(), &wire.Enforce{Rules: []wire.Rule{
		{StageID: 1, Action: wire.ActionPause},
	}}); err != nil {
		t.Fatal(err)
	}
	resp, _ := cli.Call(context.Background(), &wire.Collect{Cycle: 1})
	rep := resp.(*wire.CollectReply).Reports[0]
	if !rep.Usage.IsZero() {
		t.Errorf("usage while paused = %v, want zero", rep.Usage)
	}
	if rep.Demand.IsZero() {
		t.Error("demand while paused is zero, want generator demand")
	}
}

func TestVirtualStageHeartbeatAndCounters(t *testing.T) {
	n := fastNet()
	v, err := StartVirtual(Config{ID: 1, Network: n.Host("s")})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	cli := dialStage(t, n, v.Info().Addr)

	resp, err := cli.Call(context.Background(), &wire.Heartbeat{SentUnixMicros: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*wire.HeartbeatAck).EchoUnixMicros != 5 {
		t.Error("heartbeat echo mismatch")
	}

	cli.Call(context.Background(), &wire.Collect{Cycle: 1})
	cli.Call(context.Background(), &wire.Collect{Cycle: 2})
	cli.Call(context.Background(), &wire.Enforce{Rules: []wire.Rule{{StageID: 1}}})
	collects, enforces := v.Counters()
	if collects != 2 || enforces != 1 {
		t.Errorf("Counters = %d/%d, want 2/1", collects, enforces)
	}
}

func TestVirtualStageRejectsUnexpected(t *testing.T) {
	n := fastNet()
	v, err := StartVirtual(Config{ID: 1, Network: n.Host("s")})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	cli := dialStage(t, n, v.Info().Addr)
	_, err = cli.Call(context.Background(), &wire.Register{ID: 1})
	var er *wire.ErrorReply
	if !errors.As(err, &er) {
		t.Errorf("Register on stage = %v, want remote error", err)
	}
}

func TestEnforcingStageThrottles(t *testing.T) {
	n := fastNet()
	e, err := StartEnforcing(EnforcingConfig{ID: 1, JobID: 1, Network: n.Host("s")})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cli := dialStage(t, n, e.Info().Addr)

	// Unlimited by default.
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := e.Submit(ctx, wire.ClassData); err != nil {
			t.Fatalf("unlimited submit: %v", err)
		}
	}

	// Apply a tight limit and verify throughput drops.
	if _, err := cli.Call(ctx, &wire.Enforce{Rules: []wire.Rule{
		{StageID: 1, JobID: 1, Action: wire.ActionSetLimit, Limit: wire.Rates{100, 10}},
	}}); err != nil {
		t.Fatal(err)
	}
	limits, unlimited := e.Limits()
	if unlimited || limits != (wire.Rates{100, 10}) {
		t.Fatalf("Limits = %v/%v", limits, unlimited)
	}

	start := time.Now()
	// Burst capacity is ~100; pushing 150 ops must take >= ~0.4s.
	for i := 0; i < 150; i++ {
		if err := e.Submit(ctx, wire.ClassData); err != nil {
			t.Fatalf("limited submit: %v", err)
		}
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Errorf("150 ops at 100 ops/s took %v, want >= ~400ms", elapsed)
	}
}

func TestEnforcingStageReportsMeasuredRates(t *testing.T) {
	n := fastNet()
	e, err := StartEnforcing(EnforcingConfig{ID: 1, JobID: 1, Network: n.Host("s"), Window: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	cli := dialStage(t, n, e.Info().Addr)

	ctx := context.Background()
	for i := 0; i < 50; i++ {
		e.Submit(ctx, wire.ClassData)
	}
	for i := 0; i < 5; i++ {
		e.Submit(ctx, wire.ClassMeta)
	}

	resp, err := cli.Call(ctx, &wire.Collect{Cycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := resp.(*wire.CollectReply).Reports[0]
	if rep.Demand[wire.ClassData] <= 0 || rep.Usage[wire.ClassData] <= 0 {
		t.Errorf("data rates = %v/%v, want > 0", rep.Demand[wire.ClassData], rep.Usage[wire.ClassData])
	}
	if rep.Demand[wire.ClassMeta] <= 0 {
		t.Errorf("meta demand = %v, want > 0", rep.Demand[wire.ClassMeta])
	}
	if rep.StageID != 1 || rep.JobID != 1 {
		t.Errorf("identity = %+v", rep)
	}
}

func TestEnforcingStageWithPFS(t *testing.T) {
	n := fastNet()
	fs := pfs.New(pfs.Config{OSTs: 1, OSTCapacity: 1e6, MDSCapacity: 1e6})
	e, err := StartEnforcing(EnforcingConfig{ID: 1, JobID: 42, Network: n.Host("s"), FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := e.Submit(ctx, wire.ClassData); err != nil {
			t.Fatal(err)
		}
	}
	if ops := fs.ClientOps(42); ops[wire.ClassData] != 10 {
		t.Errorf("PFS saw %v ops for job 42, want 10", ops[wire.ClassData])
	}
}

func TestRegisterHelper(t *testing.T) {
	n := fastNet()
	// A fake parent that accepts registrations.
	got := make(chan *wire.Register, 1)
	parent, err := rpc.Serve(n.Host("parent"), ":0", rpc.HandlerFunc(
		func(p *rpc.Peer, req wire.Message) (wire.Message, error) {
			if m, ok := req.(*wire.Register); ok {
				got <- m
				return &wire.RegisterAck{ID: m.ID}, nil
			}
			return nil, errors.New("unexpected")
		}), rpc.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()

	info := Info{ID: 5, JobID: 2, Weight: 1.5, Addr: "stage-5:40000"}
	if err := Register(context.Background(), n.Host("stage-5"), parent.Addr().String(), info); err != nil {
		t.Fatalf("Register: %v", err)
	}
	m := <-got
	if m.ID != 5 || m.JobID != 2 || m.Weight != 1.5 || m.Addr != "stage-5:40000" || m.Role != wire.RoleStage {
		t.Errorf("registered = %+v", m)
	}
}

func TestRegisterHelperErrors(t *testing.T) {
	n := fastNet()
	// No listener: dial error.
	if err := Register(context.Background(), n.Host("s"), "nowhere:1", Info{ID: 1}); err == nil {
		t.Error("Register to nowhere succeeded")
	}
	// Parent that rejects.
	parent, err := rpc.Serve(n.Host("parent"), ":0", rpc.HandlerFunc(
		func(p *rpc.Peer, req wire.Message) (wire.Message, error) {
			return nil, errors.New("rejected")
		}), rpc.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer parent.Close()
	if err := Register(context.Background(), n.Host("s"), parent.Addr().String(), Info{ID: 1}); err == nil {
		t.Error("Register accepted despite rejection")
	}
}
