package controller

import (
	"sort"

	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/cyclemem"
	"github.com/dsrhaslab/sdscale/internal/metrics"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// cycleMem holds a controller role's per-cycle slabs, all tied to its arena:
// one generation per RunCycle, so a steady-state cycle draws every buffer
// from retained capacity and allocates nothing.
type cycleMem struct {
	replies    cyclemem.Slab[*wire.CollectReply]
	aggReplies cyclemem.Slab[wire.Message] // hierarchical collect slots
	responded  cyclemem.Slab[bool]
	reports    cyclemem.Slab[wire.StageReport]
	inputs     cyclemem.Slab[controlalg.JobInput]
	allocOf    cyclemem.Slab[wire.Rates]
	ruleBuf    cyclemem.Slab[wire.Rule]
	enfBuf     cyclemem.Slab[wire.Enforce]
	calls      cyclemem.Slab[*rpc.Call]
	table      cyclemem.RuleTable
}

// parallelComputeMin is the smallest per-worker report range worth a
// goroutine: below 2× this the rule emission runs inline. The kernel's
// per-report cost is tens of nanoseconds, so sharding only pays at
// thousands of reports.
const parallelComputeMin = 2048

// computeFlatRules runs the control algorithm over raw stage reports and
// splits each job's allocation across its stages proportionally to their
// observed demand. The result lives in the cycle arena's rule table, valid
// until the next cycle begins.
//
// The split is computed per report rather than per job: AggregateByJob has
// already summed each job's demand in report order — the same sequence of
// float additions controlalg.SplitProportional would perform — so the
// per-stage limit alloc[c]·d[c]/total[c] (even split when the class total
// is zero) reproduces the serial splitter bit for bit. With no cross-report
// accumulation left, the emission loop shards freely over disjoint report
// ranges: any worker count yields byte-identical rules, which is what makes
// the parallel path safe for the paper reproduction. parallel=false (the
// blocking fan-out mode) pins the single-threaded emission the paper's
// prototype implies; the aggregation and PSFA allocation stages are serial
// in either mode.
func (g *Global) computeFlatRules(reports []wire.StageReport, parallel bool) *cyclemem.RuleTable {
	jobs := metrics.AggregateByJob(reports)
	inputs := g.cyc.inputs.Take(&g.arena, len(jobs))
	g.mu.Lock()
	for i, j := range jobs {
		inputs[i] = controlalg.JobInput{
			JobID:  j.JobID,
			Weight: g.jobWeights[j.JobID],
			Demand: j.Demand,
			Stages: j.Stages,
		}
	}
	capacity := g.capacity
	g.mu.Unlock()
	allocs := g.cfg.Algorithm.Allocate(inputs, capacity)
	g.recordJobStatuses(inputs, allocs)

	// Index allocations by the jobs' sorted order so the kernel can reach a
	// report's allocation with one binary search, no map.
	allocOf := g.cyc.allocOf.Take(&g.arena, len(jobs))
	for _, a := range allocs {
		if j := jobSlot(jobs, a.JobID); j >= 0 {
			allocOf[j] = a.Limit
		}
	}

	return emitRules(&g.cyc, &g.arena, g.pipe, reports, jobs, allocOf, parallel)
}

// computePeerRules is the coordinated-peer kernel. Each job's global
// allocation is split uniformly across its global stage population; this
// peer's share is that per-stage slice scaled by its own stage count, and
// the share splits across the peer's stages proportionally to demand —
// exactly the SplitUniform → Scale → SplitProportional chain the serial
// implementation performed, folded into the shared per-report kernel.
// ownJobs must be metrics.AggregateByJob(reports): its per-job demand sums
// are then the identical float-add sequences SplitProportional would
// compute, so serial and sharded emission are byte-identical here too.
func (p *Peer) computePeerRules(reports []wire.StageReport, ownJobs, merged []wire.JobReport,
	allocs []controlalg.JobAllocation, parallel bool) *cyclemem.RuleTable {
	shareOf := p.cyc.allocOf.Take(&p.arena, len(ownJobs))
	for i, a := range allocs {
		if j := jobSlot(ownJobs, a.JobID); j >= 0 {
			shareOf[j] = controlalg.SplitUniform(a.Limit, int(merged[i].Stages)).
				Scale(float64(ownJobs[j].Stages))
		}
	}
	return emitRules(&p.cyc, &p.arena, p.pipe, reports, ownJobs, shareOf, parallel)
}

// emitRules fills the role's arena-backed rule table: report i's rule splits
// its job's budget proportionally to the report's share of the job's total
// demand (even split across the job's stages for a zero-demand class). jobs
// must be sorted by JobID with per-job totals summed in report order, and
// budget[j] is job j's spendable allocation. Writes are index-disjoint, so
// parallel mode shards the loop over disjoint report ranges.
func emitRules(cyc *cycleMem, arena *cyclemem.Arena, pipe *telemetry.PipelineStats,
	reports []wire.StageReport, jobs []wire.JobReport, budget []wire.Rates,
	parallel bool) *cyclemem.RuleTable {
	table := &cyc.table
	table.Reset(arena)
	slot := table.Slot(len(reports))
	emit := func(start, end int) {
		for i := start; i < end; i++ {
			r := &reports[i]
			j := jobSlot(jobs, r.JobID)
			alloc, total, stages := budget[j], jobs[j].Demand, jobs[j].Stages
			var limit wire.Rates
			for c := 0; c < int(wire.NumClasses); c++ {
				if total[c] > 0 {
					limit[c] = alloc[c] * r.Demand[c] / total[c]
				} else {
					limit[c] = alloc[c] / float64(stages)
				}
			}
			slot[i] = wire.Rule{
				StageID: r.StageID,
				JobID:   r.JobID,
				Action:  wire.ActionSetLimit,
				Limit:   limit,
			}
		}
	}
	workers := 0
	if len(reports) > 0 {
		if parallel {
			workers = cyclemem.ParallelFor(len(reports), parallelComputeMin, emit)
		} else {
			emit(0, len(reports))
			workers = 1
		}
	}
	table.Seal()
	pipe.RecordComputeWorkers(workers)
	return table
}

// arenaSnapshot converts the arena's counters into the telemetry mirror.
func arenaSnapshot(s cyclemem.Stats) telemetry.ArenaSnapshot {
	return telemetry.ArenaSnapshot{
		Generation: s.Generation,
		Takes:      s.Takes,
		Reuses:     s.Reuses,
		Grows:      s.Grows,
	}
}

// jobSlot finds jobID's index in the JobID-sorted aggregate slice, or -1.
func jobSlot(jobs []wire.JobReport, jobID uint64) int {
	i := sort.Search(len(jobs), func(i int) bool { return jobs[i].JobID >= jobID })
	if i < len(jobs) && jobs[i].JobID == jobID {
		return i
	}
	return -1
}
