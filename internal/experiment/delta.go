package experiment

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

// DeltaNodes is the flat scale the incremental-control experiment runs at.
const DeltaNodes = 2500

// DeltaRuleTolerance is the acceptable median divergence between the rules
// the full cycle and the incremental cycle enforce under bursty demand,
// measured at mid-phase checkpoints where demand has been stable for longer
// than a cycle — right at a burst edge the two modes legitimately disagree
// for as long as their collect instants are apart. The median (not the max)
// is checked so one checkpoint pushed across an edge by a CPU-starved
// runner cannot fail the experiment.
const DeltaRuleTolerance = 0.05

// deltaCheckpoints is how many mid-phase equivalence checkpoints the bursty
// window takes; the burst edges between them are what exercise the
// push-based reporting path.
const deltaCheckpoints = 5

// Chaos-phase tuning. An incremental controller only probes a quiet child
// when its report cache ages past the collect floor, so fault detection is
// bounded by the floors rather than the cycle period — the floors here are
// tight and the partitions long (1s, against the chaos experiment's 150ms)
// so a flapped child is noticed, quarantined, and readmitted within the
// scenario.
const (
	deltaChaosPushFloor = 150 * time.Millisecond
	deltaChaosIncrFloor = 400 * time.Millisecond
	deltaChaosDownFor   = time.Second
	deltaChaosPeriod    = 1500 * time.Millisecond
	deltaChaosRounds    = 2
	deltaChaosPace      = 25 * time.Millisecond
	deltaReadmitCycles  = 8
)

// DeltaSuppressionFloor is the fraction of per-child collect calls the
// incremental mode must avoid once demand stops moving.
const DeltaSuppressionFloor = 0.90

// DeltaResult reports how the event-driven incremental control mode behaves
// against the paper-faithful full cycle.
type DeltaResult struct {
	// Nodes is the per-cluster stage count.
	Nodes int
	// Pairs is the number of paired cycles run across the bursty window;
	// Checkpoints is how many mid-phase equivalence comparisons it took.
	Pairs, Checkpoints int
	// MedianRuleDiff and MaxRuleDiff summarize the per-checkpoint mean
	// relative difference between the rule limits the two modes enforced.
	MedianRuleDiff, MaxRuleDiff float64
	// QuiescedCycles is the size of the steady-demand measurement window.
	QuiescedCycles int
	// SuppressedCollects is the count of per-child collect calls the
	// incremental controller answered from its report cache during the
	// quiesced window; SuppressionRatio is that count over the
	// QuiescedCycles*Nodes calls the full cycle would have made.
	SuppressedCollects uint64
	SuppressionRatio   float64
	// QuiescedPushes counts the ReportDelta frames stages emitted during
	// the quiesced window (steady demand should produce almost none,
	// heartbeat-floor refreshes aside).
	QuiescedPushes uint64
	// BurstPushes counts the pushes during the bursty window, showing the
	// event-driven path actually carried the demand changes.
	BurstPushes uint64
	// Pipe is the incremental controller's fan-out telemetry at the end of
	// the quiesced window.
	Pipe telemetry.PipelineSnapshot
	// Chaos phase: Flapped is how many stage hosts the fault schedule
	// partitioned and healed; ChaosCycles and ChaosFailed count the
	// incremental cycles run (and errored) while faults were active.
	Flapped, ChaosCycles, ChaosFailed int
	// ChaosFaults is the incremental controller's quarantine telemetry
	// after the fault window.
	ChaosFaults telemetry.FaultSummary
	// ReadmitCycles is how many paced cycles after the final heal the
	// quarantine set took to drain (-1 if it never drained).
	ReadmitCycles int
	// PostChaosSuppression is the collect-suppression ratio re-measured
	// after readmission: the fleet must re-quiesce once the flapped
	// children's forced collects refresh their caches.
	PostChaosSuppression float64
}

// Delta measures the event-driven incremental control mode three ways. First,
// equivalence: a full-cycle cluster and an incremental cluster run paired
// interleaved cycles under bursty demand, and the rule limits they enforce
// are compared pair by pair — push-based delta reports must steer the same
// outcomes the per-cycle collect sweep does. Second, economy: an
// incremental cluster under steady demand counts how many per-child collect
// calls its report cache absorbed once the fleet quiesced. Third,
// dependability: 10% of the quiesced fleet's hosts flap while incremental
// cycles keep running — the collect floor must expose the partitions to the
// breaker, quarantined children must be readmitted after healing, and the
// fleet must re-quiesce.
func Delta(ctx context.Context, o Options) (DeltaResult, error) {
	o = o.withDefaults()
	nodes := o.scaled(DeltaNodes)
	res := DeltaResult{Nodes: nodes}

	// The two clusters must see the same demand at the same wall-clock
	// instant for their rules to be comparable, but Generator time is
	// per-stage (time since that stage started) and building thousands of
	// stages takes seconds — so anchor the burst phases to one shared wall
	// clock instead of each stage's own.
	const burstPhase = 2 * time.Second
	burst := wallClock{
		anchor: time.Now(),
		gen: workload.Bursty{
			On:   burstPhase,
			Off:  burstPhase,
			High: wire.Rates{2000, 200},
			Low:  wire.Rates{200, 20},
		},
	}
	build := func(incremental bool, gen workload.Generator, tweak func(*cluster.Config)) (*cluster.Cluster, error) {
		cfg := cluster.Config{
			Topology:    cluster.Flat,
			Stages:      nodes,
			Jobs:        o.Jobs,
			Net:         *o.Net,
			FanOutMode:  controller.FanOutPipelined,
			Workload:    gen,
			MaxCodec:    o.MaxCodec,
			Incremental: incremental,
			// Sample pushes an order of magnitude faster than the burst
			// edges so the event-driven path lags a collect-driven one by
			// at most a cycle or two.
			PushInterval: 10 * time.Millisecond,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		return cluster.Build(cfg)
	}

	// Phase 1: burst equivalence.
	full, err := build(false, burst, nil)
	if err != nil {
		return res, fmt.Errorf("experiment delta: %w", err)
	}
	defer full.Close()
	incr, err := build(true, burst, nil)
	if err != nil {
		return res, fmt.Errorf("experiment delta: %w", err)
	}
	defer incr.Close()

	for i := 0; i < o.Warmup; i++ {
		if _, err := full.RunControlCycle(ctx); err != nil {
			return res, fmt.Errorf("experiment delta: warmup: %w", err)
		}
		if _, err := incr.RunControlCycle(ctx); err != nil {
			return res, fmt.Errorf("experiment delta: warmup: %w", err)
		}
	}

	// Each checkpoint: run paired cycles through the next burst edge, give
	// the pushes it triggers a beat to land, settle both clusters on the
	// new demand, then compare the rules they enforce. The edge in between
	// is what exercises the event-driven path; the comparison itself happens
	// mid-phase, where demand has been stable for longer than a cycle and
	// the two modes must agree.
	pair := func() error {
		if _, err := full.RunControlCycle(ctx); err != nil {
			return err
		}
		if _, err := incr.RunControlCycle(ctx); err != nil {
			return err
		}
		res.Pairs++
		return nil
	}
	var diffs []float64
	for k := 0; k < deltaCheckpoints; k++ {
		edge := burst.nextEdge()
		for time.Now().Before(edge.Add(300 * time.Millisecond)) {
			if err := pair(); err != nil {
				return res, fmt.Errorf("experiment delta: %w", err)
			}
		}
		time.Sleep(50 * time.Millisecond)
		for i := 0; i < 2; i++ {
			if err := pair(); err != nil {
				return res, fmt.Errorf("experiment delta: %w", err)
			}
		}
		diffs = append(diffs, ruleDiff(full, incr))
	}
	res.Checkpoints = len(diffs)
	res.MedianRuleDiff, res.MaxRuleDiff = median(diffs), maxOf(diffs)
	res.BurstPushes = stagePushes(incr)

	// Phase 2: quiesced suppression. A fresh incremental cluster under
	// constant demand: after rules converge and the stages' one-time
	// usage-clamp pushes drain, every collect should be answered from the
	// push-fed report cache.
	quiet, err := build(true, workload.Constant{Rates: wire.Rates{1000, 100}}, func(cfg *cluster.Config) {
		// Chaos-ready tuning (phase 3 reuses this cluster): a fast breaker
		// and tight heartbeat/collect floors bound how long a partitioned
		// child can hide behind the suppressed collect fan-out. Under the
		// fault-free phase 2 none of it changes behavior except the
		// heartbeat pushes, whose cadence the suppression count is
		// insensitive to (a push refreshes the cache, it does not force a
		// collect).
		cfg.PushFloor = deltaChaosPushFloor
		cfg.IncrementalFloor = deltaChaosIncrFloor
		cfg.MaxFailures = chaosMaxFailures
		cfg.ProbeInterval = chaosProbeInterval
		cfg.MaxProbeInterval = chaosMaxProbe
		cfg.CallTimeout = chaosCallTimeout
		cfg.StaleAfter = chaosStaleAfter
	})
	if err != nil {
		return res, fmt.Errorf("experiment delta: %w", err)
	}
	defer quiet.Close()
	for i := 0; i < o.Warmup+1; i++ {
		if _, err := quiet.RunControlCycle(ctx); err != nil {
			return res, fmt.Errorf("experiment delta: warmup: %w", err)
		}
	}
	time.Sleep(100 * time.Millisecond) // let post-enforcement usage pushes land
	for i := 0; i < 2; i++ {
		if _, err := quiet.RunControlCycle(ctx); err != nil {
			return res, fmt.Errorf("experiment delta: warmup: %w", err)
		}
	}

	window := o.MinCycles
	if window < 25 {
		window = 25
	}
	preCollects := quiet.Global.Stats().Pipeline.SuppressedCollects
	prePushes := stagePushes(quiet)
	for i := 0; i < window; i++ {
		if _, err := quiet.RunControlCycle(ctx); err != nil {
			return res, fmt.Errorf("experiment delta: %w", err)
		}
	}
	res.Pipe = quiet.Global.Stats().Pipeline
	res.QuiescedCycles = window
	res.SuppressedCollects = res.Pipe.SuppressedCollects - preCollects
	res.SuppressionRatio = float64(res.SuppressedCollects) / float64(uint64(window)*uint64(nodes))
	res.QuiescedPushes = stagePushes(quiet) - prePushes

	// Phase 3: chaos. Flap 10% of the quiesced fleet's stage hosts with
	// partitions longer than the collect floor, so the suppressed fan-out
	// cannot hide the fault: the stale cache forces a collect, the collect
	// fails, the breaker quarantines, and after the heal the probe path
	// readmits. Cycles keep running paced throughout, as a control loop
	// would.
	res.Flapped = nodes / 10
	if res.Flapped < 1 {
		res.Flapped = 1
	}
	hosts := make([]string, res.Flapped)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("stage-%d", i+1)
	}
	schedule := quiet.Net.Schedule(simnet.FlapSchedule(hosts, 0, deltaChaosDownFor, deltaChaosPeriod, deltaChaosRounds))
	defer schedule.Stop()
	scheduleDone := make(chan struct{})
	go func() { schedule.Wait(); close(scheduleDone) }()
	ticker := time.NewTicker(deltaChaosPace)
	defer ticker.Stop()
faultLoop:
	for {
		if _, err := quiet.RunControlCycle(ctx); err != nil {
			res.ChaosFailed++
		}
		res.ChaosCycles++
		select {
		case <-scheduleDone:
			break faultLoop
		case <-ctx.Done():
			return res, ctx.Err()
		case <-ticker.C:
		}
	}

	// Readmission: paced at the probe-backoff cap so every still-quarantined
	// child has a probe due each cycle.
	res.ReadmitCycles = -1
	for i := 0; i <= deltaReadmitCycles; i++ {
		if quiet.Global.Stats().Quarantined == 0 {
			res.ReadmitCycles = i
			break
		}
		if _, err := quiet.RunControlCycle(ctx); err != nil {
			res.ChaosFailed++
		}
		select {
		case <-ctx.Done():
			return res, ctx.Err()
		case <-time.After(chaosMaxProbe):
		}
	}
	res.ChaosFaults = quiet.Global.Faults().Summarize()

	// Re-quiescence: readmission marks the flapped children dirty with a
	// forced collect, so one settling pass refreshes their caches; after
	// that the suppression ratio must return to the quiesced level.
	for i := 0; i < 3; i++ {
		if _, err := quiet.RunControlCycle(ctx); err != nil {
			return res, fmt.Errorf("experiment delta: post-chaos settle: %w", err)
		}
	}
	post := quiet.Global.Stats().Pipeline.SuppressedCollects
	for i := 0; i < window; i++ {
		if _, err := quiet.RunControlCycle(ctx); err != nil {
			return res, fmt.Errorf("experiment delta: post-chaos: %w", err)
		}
	}
	res.PostChaosSuppression = float64(quiet.Global.Stats().Pipeline.SuppressedCollects-post) /
		float64(uint64(window)*uint64(nodes))
	return res, nil
}

// wallClock adapts a bursty generator to shared wall-clock time: every
// stage in every cluster sees the same demand at the same instant, which
// the paired comparison needs — Generator time is per-stage, and two
// clusters built seconds apart would burst out of phase with each other.
// It gives up the workload package's determinism-in-t contract, which only
// matters for distributed stages reproducing a shape without coordination.
type wallClock struct {
	anchor time.Time
	gen    workload.Bursty
}

// Demand implements workload.Generator.
func (w wallClock) Demand(time.Duration) wire.Rates {
	return w.gen.Demand(time.Since(w.anchor))
}

// nextEdge returns the wall instant of the next burst edge (the On and Off
// phases are equal, so edges are evenly spaced On apart).
func (w wallClock) nextEdge() time.Time {
	pos := time.Since(w.anchor) % w.gen.On
	return time.Now().Add(w.gen.On - pos)
}

// ruleDiff returns the mean relative difference between the rule limits the
// two clusters' stages hold, index-aligned (both clusters are built
// identically, so Stages[i] runs the same workload in each).
func ruleDiff(a, b *cluster.Cluster) float64 {
	var sum float64
	n := len(a.Stages)
	for i := 0; i < n; i++ {
		ra, _ := a.Stages[i].LastRule()
		rb, _ := b.Stages[i].LastRule()
		for c := range ra.Limit {
			hi := ra.Limit[c]
			if rb.Limit[c] > hi {
				hi = rb.Limit[c]
			}
			if hi == 0 {
				continue
			}
			d := ra.Limit[c] - rb.Limit[c]
			if d < 0 {
				d = -d
			}
			sum += d / hi / float64(len(ra.Limit))
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// stagePushes sums the ReportDelta pushes every stage has delivered.
func stagePushes(c *cluster.Cluster) uint64 {
	var total uint64
	for _, v := range c.Stages {
		total += v.Pushes()
	}
	return total
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// PrintDelta renders the incremental-control comparison.
func PrintDelta(o Options, res DeltaResult) {
	o = o.withDefaults()
	o.printf("event-driven incremental control vs the full collect sweep — flat, %d nodes\n", res.Nodes)
	o.printf("burst equivalence: %d paired cycles, %d mid-phase checkpoints, enforced-limit divergence median %.2f%% max %.2f%% (tolerance %.0f%%)\n",
		res.Pairs, res.Checkpoints, 100*res.MedianRuleDiff, 100*res.MaxRuleDiff, 100*DeltaRuleTolerance)
	o.printf("burst window pushes: %d ReportDelta frames carried the demand edges\n", res.BurstPushes)
	o.printf("quiesced economy: %d cycles, %d of %d per-child collects answered from the push-fed cache (%.1f%% suppressed)\n",
		res.QuiescedCycles, res.SuppressedCollects, uint64(res.QuiescedCycles)*uint64(res.Nodes), 100*res.SuppressionRatio)
	o.printf("quiesced pushes: %d   dirty children last cycle: %d   suppressed enforces: %d\n",
		res.QuiescedPushes, res.Pipe.DirtyChildren, res.Pipe.SuppressedEnforces)
	o.printf("chaos: %d of %d hosts flapped, %d cycles (%d failed), faults %v\n",
		res.Flapped, res.Nodes, res.ChaosCycles, res.ChaosFailed, res.ChaosFaults)
	if res.ReadmitCycles >= 0 {
		o.printf("chaos recovery: quarantine drained %d cycles after heal, post-chaos collect suppression %.1f%%\n\n",
			res.ReadmitCycles, 100*res.PostChaosSuppression)
	} else {
		o.printf("chaos recovery: QUARANTINE NOT DRAINED, post-chaos collect suppression %.1f%%\n\n",
			100*res.PostChaosSuppression)
	}
}

// CheckDelta asserts the incremental mode's two claims: bursty demand steers
// the same rules through pushes as through per-cycle collects, and steady
// demand suppresses at least DeltaSuppressionFloor of the collect fan-out.
func CheckDelta(res DeltaResult) error {
	if res.Checkpoints == 0 || res.QuiescedCycles == 0 {
		return errors.New("delta: a phase completed no cycles")
	}
	if res.MedianRuleDiff > DeltaRuleTolerance {
		return fmt.Errorf("delta: incremental rules diverge from the full cycle's: median %.2f%% > %.0f%% tolerance",
			100*res.MedianRuleDiff, 100*DeltaRuleTolerance)
	}
	if res.SuppressionRatio < DeltaSuppressionFloor {
		return fmt.Errorf("delta: quiesced collect suppression %.1f%% below the %.0f%% floor",
			100*res.SuppressionRatio, 100*DeltaSuppressionFloor)
	}
	if res.BurstPushes == 0 {
		return errors.New("delta: no ReportDelta pushes during the bursty window — the event-driven path never engaged")
	}
	if res.ChaosFailed > 0 {
		return fmt.Errorf("delta: %d incremental cycles failed during the fault window", res.ChaosFailed)
	}
	if res.ChaosFaults.Quarantines == 0 {
		return errors.New("delta: no child was quarantined — the collect floor never exposed the partition to the breaker")
	}
	if res.ReadmitCycles < 0 {
		return fmt.Errorf("delta: quarantine not drained within %d cycles of heal (%d quarantines, %d readmissions)",
			deltaReadmitCycles, res.ChaosFaults.Quarantines, res.ChaosFaults.Readmissions)
	}
	if res.PostChaosSuppression < DeltaSuppressionFloor {
		return fmt.Errorf("delta: post-chaos collect suppression %.1f%% below the %.0f%% floor — the fleet did not re-quiesce after readmission",
			100*res.PostChaosSuppression, 100*DeltaSuppressionFloor)
	}
	return nil
}
