// Failover: what happens to QoS when controllers die — the dependability
// question the paper raises in §VI.
//
// A flat control plane manages four stages for two jobs. The demo kills
// the global controller mid-run and shows that:
//
//  1. The data plane stays up: stages keep enforcing their last rules
//     (storage never becomes unavailable — but the rules go stale).
//  2. A replacement controller re-adopts the same stages and re-converges
//     in a single control cycle, even though the workload changed while
//     the control plane was down.
//  3. The failure also works the other way: when a *stage* drops off the
//     network, the controller quarantines it after a few failed calls and
//     keeps controlling the survivors on degraded cycles; once the
//     partition heals, a half-open heartbeat probe readmits the stage.
//  4. None of acts 1-3 needs an operator. With a warm standby configured,
//     the same crash is detected by lease expiry: the standby promotes
//     itself with a bumped leadership epoch, adopts the fleet from its
//     mirrored state, and resumes cycles — while epoch fencing makes every
//     stage reject the old primary's messages, forcing it to step down
//     instead of split-braining the rule set.
//
// This example deliberately assembles every role by hand (StartVirtualStage,
// StartGlobal, AddStage, an explicitly wired standby) so each act of the
// failure story is visible. Declaratively, act 5's wiring is
// sdscale.StartTopology(sdscale.Topology{..., Standbys: 1}) — and
// Standbys: 2 per shard with Shards > 1 gives every shard its own majority
// quorum (see sdsbench -exp shard).
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"github.com/dsrhaslab/sdscale"
)

func main() {
	net := sdscale.NewSimNet(sdscale.SimNetConfig{})
	ctx := context.Background()

	// Job 1 is busy from the start; job 2 is idle and wakes up after the
	// controller has died, so the stale rules visibly starve it.
	steady := sdscale.ConstantWorkload{Rates: sdscale.Rates{1000, 100}}
	wakesUp := sdscale.RampWorkload{
		From: sdscale.Rates{0, 0},
		To:   sdscale.Rates{1000, 100},
		Over: 2 * time.Second,
	}

	var stages []*sdscale.VirtualStage
	for i := 0; i < 4; i++ {
		var gen sdscale.Generator = steady // stages 1, 3: job 1
		if i%2 == 1 {
			gen = wakesUp // stages 2, 4: job 2
		}
		st, err := sdscale.StartVirtualStage(sdscale.StageConfig{
			ID: uint64(i + 1), JobID: uint64(i%2 + 1), Weight: 1,
			Generator: gen,
			Network:   net.Host(fmt.Sprintf("stage-%d", i+1)),
		})
		if err != nil {
			log.Fatalf("stage: %v", err)
		}
		defer st.Close()
		stages = append(stages, st)
	}

	startController := func(name string, capacity sdscale.Rates) *sdscale.Global {
		g, err := sdscale.StartGlobal(sdscale.GlobalConfig{
			Network:  net.Host(name),
			Capacity: capacity,
			// Fast breaker settings so the quarantine act of the demo
			// plays out in milliseconds rather than seconds.
			CallTimeout:   200 * time.Millisecond,
			MaxFailures:   2,
			ProbeInterval: 10 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("controller: %v", err)
		}
		for _, st := range stages {
			if err := g.AddStage(ctx, st.Info()); err != nil {
				log.Fatalf("attach: %v", err)
			}
		}
		return g
	}

	show := func(when string) {
		fmt.Printf("%-34s", when)
		for _, st := range stages {
			r, ok := st.LastRule()
			if !ok {
				fmt.Printf("  [none]")
				continue
			}
			fmt.Printf("  %6.0f", r.Limit[sdscale.ClassData])
		}
		fmt.Println()
	}

	fmt.Println("per-stage data-IOPS limits (jobs: s1,s3 = job 1; s2,s4 = job 2; capacity 2000):")
	fmt.Printf("%-34s  %6s  %6s  %6s  %6s\n", "", "s1", "s2", "s3", "s4")

	// Act 1: job 2 is idle; PSFA gives job 1 the whole capacity.
	g1 := startController("controller-1", sdscale.Rates{2000, 200})
	if _, err := g1.RunCycle(ctx); err != nil {
		log.Fatal(err)
	}
	show("running (job 2 idle)")
	fmt.Println("  -> no false allocation: the idle job holds nothing")

	// Act 2: the controller dies; job 2 wakes up under stale rules.
	g1.Close()
	time.Sleep(2200 * time.Millisecond) // job 2's demand ramps to full
	show("controller DOWN, job 2 woke up")
	fmt.Println("  -> storage stays available, but job 2 is starved by stale zero limits")

	// Act 3: a replacement adopts the fleet and fixes the allocation.
	g2 := startController("controller-2", sdscale.Rates{2000, 200})
	if _, err := g2.RunCycle(ctx); err != nil {
		log.Fatal(err)
	}
	show("replacement's first cycle")
	fmt.Println("  -> one cycle after takeover both jobs hold their fair 500/stage")

	// Act 4: stage 4 drops off the network. After MaxFailures failed calls
	// the controller quarantines it — cycles keep completing for the
	// survivors, with stage 4's last report standing in (degraded mode).
	net.Host("stage-4").SetPartitioned(true)
	for g2.Stats().Quarantined == 0 {
		if _, err := g2.RunCycle(ctx); err != nil {
			log.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	show("stage 4 partitioned -> quarantined")
	fmt.Printf("  -> quarantined stages: %v; cycles keep running degraded\n", g2.Stats().QuarantinedIDs)

	// The partition heals: the next half-open heartbeat probe succeeds and
	// the stage is readmitted into the control loop — never evicted.
	net.Host("stage-4").SetPartitioned(false)
	for g2.Stats().Quarantined != 0 {
		if _, err := g2.RunCycle(ctx); err != nil {
			log.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := g2.RunCycle(ctx); err != nil {
		log.Fatal(err)
	}
	show("partition healed -> readmitted")
	fmt.Println("  -> stage 4 is back under control without re-registration")
	fmt.Printf("  -> fault telemetry: %v\n", g2.Stats().Faults)

	// Act 5: acts 2-3 needed an operator to start the replacement. A warm
	// standby automates the whole takeover: the primary replicates its
	// state (membership, last rules, job weights) to the standby every
	// SyncInterval, implicitly renewing a leadership lease; when the lease
	// expires, the standby promotes itself.
	g2.Close()
	sb, err := sdscale.StartGlobal(sdscale.GlobalConfig{
		Network:    net.Host("standby"),
		ListenAddr: ":0", // re-homing stages register here after a failover
		Capacity:   sdscale.Rates{2000, 200},
		Standby:    true,
		// Fast failover settings so the act plays out in milliseconds: the
		// primary syncs every 25ms and is declared dead after 150ms.
		LeaseTimeout:  150 * time.Millisecond,
		SyncInterval:  25 * time.Millisecond,
		CallTimeout:   200 * time.Millisecond,
		MaxFailures:   2,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("standby: %v", err)
	}
	defer sb.Close()
	g3, err := sdscale.StartGlobal(sdscale.GlobalConfig{
		Network:       net.Host("controller-3"),
		ListenAddr:    ":0",
		Capacity:      sdscale.Rates{2000, 200},
		Epoch:         1, // leadership epoch; the standby will promote to 2
		StandbyAddr:   sb.Addr(),
		LeaseTimeout:  150 * time.Millisecond,
		SyncInterval:  25 * time.Millisecond,
		CallTimeout:   200 * time.Millisecond,
		MaxFailures:   2,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("primary: %v", err)
	}
	defer g3.Close()
	for _, st := range stages {
		if err := g3.AddStage(ctx, st.Info()); err != nil {
			log.Fatalf("attach: %v", err)
		}
	}
	if _, err := g3.RunCycle(ctx); err != nil {
		log.Fatal(err)
	}
	show("primary with warm standby")

	// Wait until replication has caught up — the standby mirrors the
	// primary's leadership epoch once the first StateSync lands. A standby
	// is only as good as its last sync.
	for sb.Epoch() < g3.Epoch() {
		time.Sleep(5 * time.Millisecond)
	}

	// The standby runs passively, watching its lease.
	sbCtx, stopStandby := context.WithCancel(ctx)
	sbDone := make(chan error, 1)
	go func() { sbDone <- sb.Run(sbCtx, 25*time.Millisecond) }()

	// Crash the primary. Nobody restarts anything: the standby's lease
	// expires, it promotes itself at epoch 2, re-homes all four stages from
	// its mirror, and control cycles resume.
	net.Host("controller-3").SetPartitioned(true)
	for sb.NumChildren() < len(stages) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the new primary complete a cycle
	show("primary crashed -> standby took over")
	fmt.Printf("  -> promoted at epoch %d, %d/%d stages re-homed, control gap %v\n",
		sb.Epoch(), sb.NumChildren(), len(stages),
		sb.Stats().Faults.MaxControlGap.Round(time.Millisecond))

	// The old primary comes back believing it still leads — a zombie. Its
	// first calls are fenced (every stage now rejects its stale epoch), so
	// it steps down instead of overwriting its successor's rules.
	net.Host("controller-3").SetPartitioned(false)
	var deposed error
	for i := 0; i < 20; i++ {
		if _, err := g3.RunCycle(ctx); err != nil {
			deposed = err
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Printf("  -> zombie primary fenced: %v (deposed=%v)\n",
		deposed, errors.Is(deposed, sdscale.ErrDeposed))
	var fenced uint64
	for _, st := range stages {
		fenced += st.FencedCalls()
	}
	fmt.Printf("  -> stages now fence at epoch %d; stale-epoch messages rejected: %d at stages, %d at the standby\n",
		stages[0].Epoch(), fenced, sb.FencedSyncs())

	stopStandby()
	<-sbDone
	fmt.Printf("  -> standby fault telemetry: %v\n", sb.Stats().Faults)
}
