// Package config is the daemon-facing configuration surface of a
// deployment: a JSON file that lowers onto a sdscale.Topology plus the
// runtime knobs (control interval, QoS weights, SLO elasticity bounds) the
// `sdsctl serve` daemon owns. It also implements hot reload: Diff
// classifies the change between two files into the deltas a running
// deployment can absorb live and the ones that need a restart, and
// Reloader applies that policy — a bad or unsafe new file is rejected,
// counted, and the old configuration stays in force.
package config

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("250ms", "1s") and unmarshals either that form or a bare number of
// nanoseconds.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Value returns the underlying time.Duration.
func (d Duration) Value() time.Duration { return time.Duration(d) }

// SLO configures the elasticity control loop (see internal/elastic): the
// daemon watches per-cycle latency and grows or shrinks the aggregator tier
// to keep p90 under TargetP90.
type SLO struct {
	// TargetP90 is the per-cycle p90 latency objective. Required when the
	// slo block is present.
	TargetP90 Duration `json:"targetP90"`
	// Window is the number of control cycles per decision window. Zero
	// selects the elastic package default.
	Window int `json:"window,omitempty"`
	// BreachWindows is the number of consecutive breached windows that
	// trigger a grow. Zero selects the default.
	BreachWindows int `json:"breachWindows,omitempty"`
	// ClearWindows is the number of consecutive windows with headroom that
	// trigger a shrink. Zero selects the default.
	ClearWindows int `json:"clearWindows,omitempty"`
	// HeadroomRatio is the shrink threshold as a fraction of TargetP90
	// (hysteresis: shrink only when p90 < HeadroomRatio×TargetP90). Zero
	// selects the default.
	HeadroomRatio float64 `json:"headroomRatio,omitempty"`
	// Cooldown is the minimum time between scaling actions. Zero disables.
	Cooldown Duration `json:"cooldown,omitempty"`
	// MinAggregators and MaxAggregators bound the tier size. Zeros select
	// 1 and no upper bound.
	MinAggregators int `json:"minAggregators,omitempty"`
	MaxAggregators int `json:"maxAggregators,omitempty"`
}

// File is the daemon configuration: the topology spec fields (lowered onto
// sdscale.Topology by the daemon) plus the runtime knobs the serve loop
// owns. Unknown fields are rejected on load so typos fail loudly instead of
// silently configuring nothing.
type File struct {
	// Stages is the fleet size. Required, >= 1. Live-reloadable: the
	// daemon grows or shrinks the running fleet to match.
	Stages int `json:"stages"`
	// Jobs spreads the stages over this many jobs. Zero selects the
	// harness default. Not live-reloadable.
	Jobs int `json:"jobs,omitempty"`
	// Shards is the shard-leader count. Zero means one. Live-reloadable
	// (standbys-free deployments only): the daemon resizes the shard set
	// and rebalances.
	Shards int `json:"shards,omitempty"`
	// Standbys is the warm-standby count per shard. Not live-reloadable.
	Standbys int `json:"standbys,omitempty"`
	// AggregatorFanIn selects the hierarchical design (stages per
	// aggregator). Exclusive with Shards > 1. Not live-reloadable — the
	// elasticity loop, not the config file, owns the live tier size.
	AggregatorFanIn int `json:"aggregatorFanIn,omitempty"`
	// VirtualNodes tunes the placement ring. Not live-reloadable.
	VirtualNodes int `json:"virtualNodes,omitempty"`
	// DataDir enables the durable write-ahead store. Not live-reloadable.
	DataDir string `json:"dataDir,omitempty"`
	// Workload is a workload spec (see workload.Parse); empty selects the
	// paper's stress workload. Not live-reloadable.
	Workload string `json:"workload,omitempty"`
	// Capacity is the PFS operation-rate maximum as [data, meta] ops/s.
	// Empty selects the harness default. Not live-reloadable.
	Capacity []float64 `json:"capacity,omitempty"`
	// Incremental selects the event-driven incremental cycle. Not
	// live-reloadable.
	Incremental bool `json:"incremental,omitempty"`

	// Interval is the control-cycle interval. Zero selects one second.
	// Live-reloadable; takes effect at the next cycle boundary.
	Interval Duration `json:"interval,omitempty"`
	// Poll is the config-watcher polling interval. Zero selects 2s.
	// Live-reloadable.
	Poll Duration `json:"poll,omitempty"`
	// JobWeights maps job IDs (decimal strings — JSON object keys) to QoS
	// weights. Live-reloadable; entries removed on reload reset to 1.
	JobWeights map[string]float64 `json:"jobWeights,omitempty"`
	// Debug is the observability endpoint listen address
	// (/metrics, /healthz, /debug/vars, /debug/pprof). Empty disables.
	// Not live-reloadable.
	Debug string `json:"debug,omitempty"`
	// SLO enables the elasticity loop (hierarchical deployments only).
	// Live-reloadable.
	SLO *SLO `json:"slo,omitempty"`
}

// DefaultInterval is the control-cycle interval used when the file leaves
// Interval zero.
const DefaultInterval = time.Second

// DefaultPoll is the config-watcher polling interval used when the file
// leaves Poll zero.
const DefaultPoll = 2 * time.Second

// CycleInterval returns the effective control-cycle interval.
func (f *File) CycleInterval() time.Duration {
	if f.Interval > 0 {
		return f.Interval.Value()
	}
	return DefaultInterval
}

// PollInterval returns the effective watcher polling interval.
func (f *File) PollInterval() time.Duration {
	if f.Poll > 0 {
		return f.Poll.Value()
	}
	return DefaultPoll
}

// Weights returns the parsed job-weight table. Keys were validated on load.
func (f *File) Weights() map[uint64]float64 {
	if len(f.JobWeights) == 0 {
		return nil
	}
	out := make(map[uint64]float64, len(f.JobWeights))
	for k, w := range f.JobWeights {
		id, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			continue // Validate rejected these; defensive only
		}
		out[id] = w
	}
	return out
}

// Parse decodes and validates a configuration from bytes. Unknown fields
// are an error.
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("config: trailing data after the configuration object")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Load reads and validates the configuration file at path.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return f, nil
}

// Validate checks the file's internal consistency. It mirrors the bounds
// sdscale.Topology.Validate enforces so a file that loads cleanly also
// builds cleanly.
func (f *File) Validate() error {
	if f.Stages < 1 {
		return fmt.Errorf("config: stages must be >= 1, got %d", f.Stages)
	}
	if f.Jobs < 0 {
		return fmt.Errorf("config: negative jobs %d", f.Jobs)
	}
	if f.Shards < 0 {
		return fmt.Errorf("config: negative shards %d", f.Shards)
	}
	if f.Standbys < 0 || f.Standbys > 2 {
		return fmt.Errorf("config: standbys must be 0..2, got %d", f.Standbys)
	}
	if f.AggregatorFanIn < 0 {
		return fmt.Errorf("config: negative aggregatorFanIn %d", f.AggregatorFanIn)
	}
	if f.AggregatorFanIn > 0 && f.Shards > 1 {
		return fmt.Errorf("config: aggregatorFanIn and shards > 1 are exclusive")
	}
	if shards := f.Shards; shards > 1 && f.Stages < shards {
		return fmt.Errorf("config: %d stages cannot populate %d shards", f.Stages, shards)
	}
	if len(f.Capacity) != 0 && len(f.Capacity) != int(wire.NumClasses) {
		return fmt.Errorf("config: capacity wants %d rates [data, meta], got %d", wire.NumClasses, len(f.Capacity))
	}
	for i, v := range f.Capacity {
		if v < 0 {
			return fmt.Errorf("config: negative capacity[%d] = %g", i, v)
		}
	}
	if f.Interval < 0 {
		return fmt.Errorf("config: negative interval %v", f.Interval.Value())
	}
	if f.Poll < 0 {
		return fmt.Errorf("config: negative poll %v", f.Poll.Value())
	}
	for k, w := range f.JobWeights {
		if _, err := strconv.ParseUint(k, 10, 64); err != nil {
			return fmt.Errorf("config: jobWeights key %q is not a job ID", k)
		}
		if w <= 0 {
			return fmt.Errorf("config: jobWeights[%s] must be positive, got %g", k, w)
		}
	}
	if s := f.SLO; s != nil {
		if s.TargetP90 <= 0 {
			return fmt.Errorf("config: slo.targetP90 must be positive")
		}
		if s.Window < 0 || s.BreachWindows < 0 || s.ClearWindows < 0 {
			return fmt.Errorf("config: negative slo window settings")
		}
		if s.HeadroomRatio < 0 || s.HeadroomRatio >= 1 {
			if s.HeadroomRatio != 0 {
				return fmt.Errorf("config: slo.headroomRatio must be in (0, 1), got %g", s.HeadroomRatio)
			}
		}
		if s.MinAggregators < 0 || s.MaxAggregators < 0 {
			return fmt.Errorf("config: negative slo aggregator bounds")
		}
		if s.MinAggregators > 0 && s.MaxAggregators > 0 && s.MinAggregators > s.MaxAggregators {
			return fmt.Errorf("config: slo.minAggregators %d exceeds maxAggregators %d", s.MinAggregators, s.MaxAggregators)
		}
		if f.AggregatorFanIn <= 0 {
			return fmt.Errorf("config: slo elasticity requires the hierarchical design (set aggregatorFanIn)")
		}
	}
	return nil
}

// Delta is the set of safe changes between two configurations — what a
// running deployment applies live.
type Delta struct {
	// Interval, when non-nil, is the new control-cycle interval; it takes
	// effect at the next cycle boundary.
	Interval *time.Duration
	// Poll, when non-nil, is the new watcher polling interval.
	Poll *time.Duration
	// JobWeights holds the job weights that changed (removed entries reset
	// to 1).
	JobWeights map[uint64]float64
	// Stages, when nonzero, is the new fleet size the deployment grows or
	// shrinks to.
	Stages int
	// Shards, when nonzero, is the new shard count the deployment resizes
	// and rebalances to.
	Shards int
	// SLO reports that the elasticity knobs changed; the daemon re-arms
	// the elastic controller with the new file's SLO block.
	SLO bool
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return d.Interval == nil && d.Poll == nil && len(d.JobWeights) == 0 &&
		d.Stages == 0 && d.Shards == 0 && !d.SLO
}

// String renders the delta for operator logs.
func (d Delta) String() string {
	var parts []string
	if d.Interval != nil {
		parts = append(parts, fmt.Sprintf("interval=%v", *d.Interval))
	}
	if d.Poll != nil {
		parts = append(parts, fmt.Sprintf("poll=%v", *d.Poll))
	}
	if len(d.JobWeights) > 0 {
		ids := make([]uint64, 0, len(d.JobWeights))
		for id := range d.JobWeights {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ws := make([]string, len(ids))
		for i, id := range ids {
			ws[i] = fmt.Sprintf("%d=%g", id, d.JobWeights[id])
		}
		parts = append(parts, "weights{"+strings.Join(ws, ",")+"}")
	}
	if d.Stages != 0 {
		parts = append(parts, fmt.Sprintf("stages=%d", d.Stages))
	}
	if d.Shards != 0 {
		parts = append(parts, fmt.Sprintf("shards=%d", d.Shards))
	}
	if d.SLO {
		parts = append(parts, "slo")
	}
	if len(parts) == 0 {
		return "no changes"
	}
	return strings.Join(parts, " ")
}

// unsafeChange records one field that cannot change without a restart.
type unsafeChange struct{ field, why string }

// Diff classifies the change from old to next. Safe deltas — control
// interval, watcher poll, job weights, fleet grow/shrink, shard count, SLO
// knobs — come back in the Delta; any unsafe change (topology shape,
// durability, workload, capacity, endpoint) is an error naming the fields,
// and the caller keeps old. Both files must already be validated.
func Diff(old, next *File) (Delta, error) {
	var d Delta
	var unsafe []unsafeChange
	frozen := func(changed bool, field string) {
		if changed {
			unsafe = append(unsafe, unsafeChange{field, "requires a restart"})
		}
	}
	frozen(old.Jobs != next.Jobs, "jobs")
	frozen(old.Standbys != next.Standbys, "standbys")
	frozen(old.AggregatorFanIn != next.AggregatorFanIn, "aggregatorFanIn")
	frozen(old.VirtualNodes != next.VirtualNodes, "virtualNodes")
	frozen(old.DataDir != next.DataDir, "dataDir")
	frozen(old.Workload != next.Workload, "workload")
	frozen(old.Incremental != next.Incremental, "incremental")
	frozen(old.Debug != next.Debug, "debug")
	if len(old.Capacity) != len(next.Capacity) {
		frozen(true, "capacity")
	} else {
		for i := range old.Capacity {
			if old.Capacity[i] != next.Capacity[i] {
				frozen(true, "capacity")
				break
			}
		}
	}

	oldShards, newShards := normShards(old.Shards), normShards(next.Shards)
	if newShards != oldShards {
		if old.Standbys > 0 {
			unsafe = append(unsafe, unsafeChange{"shards", "shard resize requires standbys = 0"})
		} else {
			d.Shards = newShards
		}
	}
	if next.Stages != old.Stages {
		switch {
		case old.Standbys > 0:
			unsafe = append(unsafe, unsafeChange{"stages", "fleet resize requires standbys = 0"})
		case next.Stages < newShards:
			// Shrinking the fleet below the live shard count would leave
			// leaders with nothing to lead; Validate catches this for
			// shards > 1, and a one-shard fleet still needs one stage.
			unsafe = append(unsafe, unsafeChange{"stages",
				fmt.Sprintf("cannot shrink the fleet below the %d live shard(s)", newShards)})
		default:
			d.Stages = next.Stages
		}
	}

	if len(unsafe) > 0 {
		fields := make([]string, len(unsafe))
		for i, u := range unsafe {
			fields[i] = fmt.Sprintf("%s (%s)", u.field, u.why)
		}
		return Delta{}, fmt.Errorf("config: unsafe changes rejected, keeping previous config: %s",
			strings.Join(fields, ", "))
	}

	if oi, ni := old.CycleInterval(), next.CycleInterval(); oi != ni {
		d.Interval = &ni
	}
	if op, np := old.PollInterval(), next.PollInterval(); op != np {
		d.Poll = &np
	}
	ow, nw := old.Weights(), next.Weights()
	for id, w := range nw {
		if prev, ok := ow[id]; !ok || prev != w {
			if d.JobWeights == nil {
				d.JobWeights = make(map[uint64]float64)
			}
			d.JobWeights[id] = w
		}
	}
	for id := range ow {
		if _, ok := nw[id]; !ok {
			if d.JobWeights == nil {
				d.JobWeights = make(map[uint64]float64)
			}
			d.JobWeights[id] = 1 // removed entries reset to the default weight
		}
	}
	d.SLO = sloChanged(old.SLO, next.SLO)
	return d, nil
}

func normShards(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

func sloChanged(a, b *SLO) bool {
	if (a == nil) != (b == nil) {
		return true
	}
	if a == nil {
		return false
	}
	return *a != *b
}
