// Package cyclemem provides generation-counted per-cycle memory reuse for
// the controllers' collect→compute→enforce hot path.
//
// A control cycle allocates the same family of buffers every iteration:
// reply slots, harvested reports, per-child rule batches, request messages,
// call handles. All of them are dead the moment the cycle ends, which makes
// them ideal arena tenants: instead of freeing, the arena advances a
// generation counter and every slab drawn from it resets to zero length on
// its first use in the new generation — the backing arrays survive, so a
// steady-state cycle allocates nothing.
//
// The generation counter doubles as an invalidation epoch: a RuleTable
// sealed in generation g answers lookups only while the arena is still in
// generation g. A stale read (a late goroutine touching last cycle's rules)
// misses instead of silently returning garbage from a reused array.
package cyclemem

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Arena is the per-controller cycle allocator: one generation per control
// cycle, shared by every Slab and RuleTable the controller owns. Begin is
// called by the cycle loop; the counters may be read concurrently (Stats
// snapshots feed telemetry).
type Arena struct {
	gen    atomic.Uint64
	takes  atomic.Uint64
	reuses atomic.Uint64
	grows  atomic.Uint64
}

// Begin starts a new generation, logically freeing everything drawn during
// the previous one. Slices returned by Take before this call must no longer
// be read or written.
func (a *Arena) Begin() uint64 { return a.gen.Add(1) }

// Gen returns the current generation.
func (a *Arena) Gen() uint64 { return a.gen.Load() }

// Stats is a point-in-time digest of the arena's reuse behaviour.
type Stats struct {
	// Generation counts cycles begun.
	Generation uint64
	// Takes counts slab draws; Reuses the draws served entirely from
	// retained capacity; Grows the draws that had to allocate. After
	// warm-up Reuses should track Takes and Grows should stay flat.
	Takes, Reuses, Grows uint64
}

// Stats snapshots the arena counters.
func (a *Arena) Stats() Stats {
	return Stats{
		Generation: a.gen.Load(),
		Takes:      a.takes.Load(),
		Reuses:     a.reuses.Load(),
		Grows:      a.grows.Load(),
	}
}

// Slab is a growable buffer of T tied to an arena's generation. The first
// Take of a generation resets the slab to empty (retaining capacity);
// subsequent Takes in the same generation extend it, so one slab can serve
// several index-disjoint draws per cycle. Returned slices are valid only
// until the arena's next Begin. Not safe for concurrent Takes.
type Slab[T any] struct {
	buf []T
	gen uint64
}

// Take returns a zeroed slice of length n drawn from the slab. Zeroing
// matters: the retained array may hold pointers from the previous
// generation, which must not leak through as stale data (they are
// overwritten or read-as-zero, and the clear also unpins them for the GC).
func (s *Slab[T]) Take(a *Arena, n int) []T {
	if g := a.Gen(); s.gen != g {
		s.gen = g
		s.buf = s.buf[:0]
	}
	a.takes.Add(1)
	start := len(s.buf)
	need := start + n
	if need <= cap(s.buf) {
		s.buf = s.buf[:need]
		clear(s.buf[start:need])
		a.reuses.Add(1)
	} else {
		grown := make([]T, need, max(need, 2*cap(s.buf)))
		copy(grown, s.buf[:start])
		s.buf = grown
		a.grows.Add(1)
	}
	return s.buf[start:need:need]
}

// Cap returns the slab's retained capacity (for tests and telemetry).
func (s *Slab[T]) Cap() int { return cap(s.buf) }

// RuleTable is the per-cycle rule index: a flat, eventually StageID-sorted
// slice of rules replacing the map[stageID]Rule the compute phase used to
// build fresh every cycle. The lifecycle is Reset → (Slot | Append)* →
// Seal → Lookup*, all within one arena generation; a Lookup after the
// arena moved on reports a miss, so stale readers cannot observe a reused
// backing array mid-rewrite.
type RuleTable struct {
	a      *Arena
	gen    uint64
	rules  []wire.Rule
	sealed bool
}

// Reset binds the table to the arena's current generation and clears it,
// retaining capacity.
func (t *RuleTable) Reset(a *Arena) {
	t.a = a
	t.gen = a.Gen()
	t.rules = t.rules[:0]
	t.sealed = false
}

// Slot extends the table by n zeroed entries and returns them for
// index-aligned writes — the parallel compute kernel's workers each fill a
// disjoint range of one Slot. Must not be called after Seal.
func (t *RuleTable) Slot(n int) []wire.Rule {
	start := len(t.rules)
	need := start + n
	if need <= cap(t.rules) {
		t.rules = t.rules[:need]
		clear(t.rules[start:need])
	} else {
		grown := make([]wire.Rule, need, max(need, 2*cap(t.rules)))
		copy(grown, t.rules[:start])
		t.rules = grown
	}
	return t.rules[start:need:need]
}

// Append adds one rule (serial building path).
func (t *RuleTable) Append(r wire.Rule) { t.rules = append(t.rules, r) }

// Seal sorts the table by (StageID, JobID), stably, making it ready for
// Lookup. Stability means entries with equal keys keep insertion order, so
// Lookup's last-match-wins reproduces exactly the overwrite semantics of
// the map it replaced.
func (t *RuleTable) Seal() {
	sort.SliceStable(t.rules, func(a, b int) bool {
		if t.rules[a].StageID != t.rules[b].StageID {
			return t.rules[a].StageID < t.rules[b].StageID
		}
		return t.rules[a].JobID < t.rules[b].JobID
	})
	t.sealed = true
}

// Lookup returns the rule addressed to stageID. It misses when the table
// was never sealed this generation or the arena has moved on (generation
// invalidation: the backing array may already be rewritten).
func (t *RuleTable) Lookup(stageID uint64) (wire.Rule, bool) {
	if !t.sealed || t.a == nil || t.gen != t.a.Gen() {
		return wire.Rule{}, false
	}
	// Find the first entry past stageID; the match, if any, is just before
	// it — the last inserted entry for the stage, matching map overwrite.
	i := sort.Search(len(t.rules), func(i int) bool { return t.rules[i].StageID > stageID })
	if i > 0 && t.rules[i-1].StageID == stageID {
		return t.rules[i-1], true
	}
	return wire.Rule{}, false
}

// Len returns the number of rules in the table.
func (t *RuleTable) Len() int { return len(t.rules) }

// Rules returns the table's backing slice (valid until the arena's next
// Begin). After Seal it is sorted by StageID.
func (t *RuleTable) Rules() []wire.Rule { return t.rules }

// ParallelFor runs fn over [0,n) split into contiguous disjoint ranges
// across up to GOMAXPROCS workers and returns how many workers ran.
// minPerWorker bounds the split so tiny inputs stay serial — below
// 2×minPerWorker, or on a single-CPU process, fn runs inline on the caller.
// fn must confine itself to index-disjoint writes; under that contract the
// result is byte-for-byte identical to the serial run regardless of worker
// count, which is what lets the compute kernel shard PSFA rule emission
// without perturbing the reproduction.
func ParallelFor(n, minPerWorker int, fn func(start, end int)) int {
	if n <= 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if minPerWorker > 0 {
		if w := n / minPerWorker; w < workers {
			workers = w
		}
	}
	if workers <= 1 {
		fn(0, n)
		return 1
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	used := 0
	for start := 0; start < n; start += chunk {
		end := min(start+chunk, n)
		used++
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(start, end)
		}()
	}
	wg.Wait()
	return used
}
