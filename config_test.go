package sdscale_test

import (
	"context"
	"strings"
	"testing"

	"github.com/dsrhaslab/sdscale"
)

// fastTestNet skips simulated propagation delay so elasticity tests turn
// cycles quickly.
func fastTestNet() sdscale.SimNetConfig { return sdscale.SimNetConfig{PropDelay: -1} }

func TestTopologyFromConfig(t *testing.T) {
	cf, err := sdscale.ParseConfig([]byte(`{
		"stages": 24, "jobs": 3, "shards": 2, "virtualNodes": 64,
		"workload": "constant:100,10", "capacity": [5000, 500],
		"incremental": true, "interval": "250ms"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := sdscale.TopologyFromConfig(cf)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Stages != 24 || topo.Jobs != 3 || topo.Shards != 2 || topo.VirtualNodes != 64 {
		t.Fatalf("topology shape = %+v", topo)
	}
	if topo.Workload == nil {
		t.Fatal("workload spec did not lower onto a generator")
	}
	if topo.Capacity[0] != 5000 || topo.Capacity[1] != 500 {
		t.Fatalf("capacity = %v, want [5000 500]", topo.Capacity)
	}
	if !topo.Incremental {
		t.Fatal("incremental flag lost")
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("lowered topology does not validate: %v", err)
	}

	if _, err := sdscale.TopologyFromConfig(&sdscale.Config{Stages: 4, Workload: "nope:1"}); err == nil {
		t.Fatal("bad workload spec lowered cleanly")
	}
}

// TestApplyConfigLive drives the full hot-reload path against a running
// deployment: weights retune, the fleet grows, unsafe changes reject whole.
func TestApplyConfigLive(t *testing.T) {
	ctx := context.Background()
	old, err := sdscale.ParseConfig([]byte(`{"stages": 12, "jobs": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := sdscale.TopologyFromConfig(old)
	if err != nil {
		t.Fatal(err)
	}
	topo.Net = fastTestNet()
	d, err := sdscale.StartTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}

	next, err := sdscale.ParseConfig([]byte(`{"stages": 18, "jobs": 2, "jobWeights": {"1": 4}, "interval": "100ms"}`))
	if err != nil {
		t.Fatal(err)
	}
	delta, err := d.ApplyConfig(ctx, old, next)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Stages != 18 || delta.Interval == nil || delta.JobWeights[1] != 4 {
		t.Fatalf("delta = %+v, want stages 18, interval set, weight 4", delta)
	}
	if st := d.Stats(); st.Stages != 18 {
		t.Fatalf("deployment has %d stages after reload, want 18", st.Stages)
	}
	if _, err := d.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Cluster().Stages {
		if _, ok := v.LastRule(); !ok {
			t.Fatalf("stage %d lost its rule across the reload", v.Info().ID)
		}
	}

	// An unsafe change (jobs) rejects the whole reload — the fleet stays.
	bad, err := sdscale.ParseConfig([]byte(`{"stages": 30, "jobs": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyConfig(ctx, next, bad); err == nil ||
		!strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("unsafe reload err = %v, want unsafe-change rejection", err)
	}
	if st := d.Stats(); st.Stages != 18 {
		t.Fatalf("rejected reload mutated the fleet: %d stages", st.Stages)
	}
}

// TestDeploymentElasticSurface exercises the aggregator-tier actuators the
// elasticity loop drives.
func TestDeploymentElasticSurface(t *testing.T) {
	ctx := context.Background()
	d, err := sdscale.StartTopology(sdscale.Topology{
		Stages: 30, Jobs: 3, AggregatorFanIn: 15, Net: fastTestNet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.NumAggregators() != 2 {
		t.Fatalf("tier = %d, want 2", d.NumAggregators())
	}
	if err := d.GrowAggregators(ctx); err != nil {
		t.Fatal(err)
	}
	if d.NumAggregators() != 3 {
		t.Fatalf("tier = %d after grow, want 3", d.NumAggregators())
	}
	if _, err := d.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if err := d.ShrinkAggregators(ctx); err != nil {
		t.Fatal(err)
	}
	if d.NumAggregators() != 2 {
		t.Fatalf("tier = %d after shrink, want 2", d.NumAggregators())
	}
	if _, err := d.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Cluster().Stages {
		if _, ok := v.LastRule(); !ok {
			t.Fatalf("stage %d lost its rule across tier reshape", v.Info().ID)
		}
	}
}
