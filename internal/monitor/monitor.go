// Package monitor collects resource-usage metrics: CPU, memory, and network
// consumption, the quantities REMORA collected for the paper's Tables II-IV.
//
// Two complementary mechanisms are provided:
//
//   - ProcessMonitor samples the operating system's view of this process
//     (/proc on Linux, with a portable runtime fallback). This is what
//     cmd/sdsctl reports in real multi-host deployments, one process per
//     controller — exactly REMORA's vantage point.
//   - CPUMeter and transport.Meter provide per-component accounting for
//     single-process simulations, where multiple controller roles share one
//     process and the OS view cannot separate them. Controllers time their
//     own work sections and meter their own connections, so the experiment
//     harness can attribute usage per role as the paper's tables do.
package monitor

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"
)

// ProcStat is a point-in-time reading of this process's resource usage.
type ProcStat struct {
	// CPUTime is cumulative user+system CPU time consumed.
	CPUTime time.Duration
	// RSSBytes is the resident set size.
	RSSBytes uint64
	// When is the sampling instant.
	When time.Time
}

// clockTicksPerSec is the kernel's USER_HZ; 100 on all supported Linux
// configurations.
const clockTicksPerSec = 100

// ReadProcStat samples the current process. On Linux it reads
// /proc/self/stat (utime+stime, rss); elsewhere, or if /proc is unavailable,
// it falls back to runtime heap statistics with zero CPU time.
func ReadProcStat() ProcStat {
	now := time.Now()
	if st, ok := readLinuxStat(); ok {
		st.When = now
		return st
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ProcStat{RSSBytes: ms.HeapInuse + ms.StackInuse, When: now}
}

// readLinuxStat parses /proc/self/stat fields 14 (utime), 15 (stime) and
// 24 (rss pages).
func readLinuxStat() (ProcStat, bool) {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return ProcStat{}, false
	}
	// The comm field (2) may contain spaces; skip past the closing paren.
	i := bytes.LastIndexByte(data, ')')
	if i < 0 || i+2 > len(data) {
		return ProcStat{}, false
	}
	fields := bytes.Fields(data[i+2:])
	// After comm: field 3 is "state"; utime is overall field 14, which is
	// index 11 here; stime 12; rss 21.
	if len(fields) < 22 {
		return ProcStat{}, false
	}
	utime, err1 := strconv.ParseUint(string(fields[11]), 10, 64)
	stime, err2 := strconv.ParseUint(string(fields[12]), 10, 64)
	rssPages, err3 := strconv.ParseInt(string(fields[21]), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return ProcStat{}, false
	}
	ticks := utime + stime
	return ProcStat{
		CPUTime:  time.Duration(ticks) * time.Second / clockTicksPerSec,
		RSSBytes: uint64(rssPages) * uint64(os.Getpagesize()),
	}, true
}

// Usage is a digested resource-consumption report over an interval,
// matching the rows of the paper's resource tables.
type Usage struct {
	// CPUPercent is average CPU utilization over the interval, where 100
	// means one fully busy core.
	CPUPercent float64
	// MemBytes is the memory attributed to the monitored entity at the end
	// of the interval.
	MemBytes uint64
	// TxMBps and RxMBps are average network rates over the interval in
	// decimal MB/s.
	TxMBps, RxMBps float64
	// Elapsed is the measured interval.
	Elapsed time.Duration
}

// MemGB returns memory in decimal gigabytes, the paper's unit.
func (u Usage) MemGB() float64 { return float64(u.MemBytes) / 1e9 }

// ProcessMonitor measures this process's resource usage between Start and
// Stop, REMORA-style.
type ProcessMonitor struct {
	start ProcStat
}

// Start begins an interval measurement.
func (m *ProcessMonitor) Start() { m.start = ReadProcStat() }

// Stop ends the interval and reports usage since Start.
func (m *ProcessMonitor) Stop() Usage {
	end := ReadProcStat()
	elapsed := end.When.Sub(m.start.When)
	u := Usage{MemBytes: end.RSSBytes, Elapsed: elapsed}
	if elapsed > 0 {
		u.CPUPercent = 100 * float64(end.CPUTime-m.start.CPUTime) / float64(elapsed)
		if u.CPUPercent < 0 {
			u.CPUPercent = 0
		}
	}
	return u
}

// CPUMeter accumulates the wall time a component spends doing work. In a
// single-process simulation each controller role tracks its own busy time,
// which the harness converts to the per-role CPU%% columns of Tables II-IV.
type CPUMeter struct {
	busy atomic.Int64
}

// Track marks the start of a work section; invoke the returned function when
// the section ends (typically via defer).
func (c *CPUMeter) Track() func() {
	start := time.Now()
	return func() { c.busy.Add(int64(time.Since(start))) }
}

// Add charges d of busy time directly.
func (c *CPUMeter) Add(d time.Duration) { c.busy.Add(int64(d)) }

// Busy returns total accumulated busy time.
func (c *CPUMeter) Busy() time.Duration { return time.Duration(c.busy.Load()) }

// Percent returns busy time as a percentage of elapsed wall time.
func (c *CPUMeter) Percent(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return 100 * float64(c.Busy()) / float64(elapsed)
}

// Reset clears accumulated busy time.
func (c *CPUMeter) Reset() { c.busy.Store(0) }

// MemoryReporter is implemented by components that can estimate the bytes of
// state they hold, enabling per-role memory attribution in single-process
// simulations.
type MemoryReporter interface {
	// MemoryFootprint returns the component's approximate state size in
	// bytes.
	MemoryFootprint() uint64
}
