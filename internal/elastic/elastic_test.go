package elastic

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeTier is a test actuator: an integer with failure injection.
type fakeTier struct {
	mu   sync.Mutex
	size int
	fail error
}

func (f *fakeTier) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

func (f *fakeTier) Grow(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	f.size++
	return nil
}

func (f *fakeTier) Shrink(context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail != nil {
		return f.fail
	}
	f.size--
	return nil
}

// feed pushes n cycles of latency d and returns the last non-None decision.
func feed(t *testing.T, c *Controller, n int, d time.Duration) Decision {
	t.Helper()
	last := None
	for i := 0; i < n; i++ {
		dec, err := c.Observe(context.Background(), d)
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if dec != None {
			last = dec
		}
	}
	return last
}

func newTest(t *testing.T, cfg Config, tier *fakeTier) *Controller {
	t.Helper()
	c, err := New(cfg, tier)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	tier := &fakeTier{size: 1}
	if _, err := New(Config{}, tier); err == nil {
		t.Fatal("accepted zero SLO")
	}
	if _, err := New(Config{SLO: time.Second, HeadroomRatio: 1.5}, tier); err == nil {
		t.Fatal("accepted headroom ratio over 1")
	}
	if _, err := New(Config{SLO: time.Second, Min: 4, Max: 2}, tier); err == nil {
		t.Fatal("accepted Max < Min")
	}
	if _, err := New(Config{SLO: time.Second}, nil); err == nil {
		t.Fatal("accepted nil actuator")
	}
}

func TestGrowAfterKBreachedWindows(t *testing.T) {
	tier := &fakeTier{size: 1}
	c := newTest(t, Config{SLO: 10 * time.Millisecond, Window: 4, BreachWindows: 3}, tier)

	// Two breached windows: no action yet.
	if dec := feed(t, c, 8, 20*time.Millisecond); dec != None {
		t.Fatalf("acted after 2 windows: %v", dec)
	}
	// Third consecutive breach: grow.
	if dec := feed(t, c, 4, 20*time.Millisecond); dec != Grew {
		t.Fatalf("third breached window: %v", dec)
	}
	if tier.Size() != 2 {
		t.Fatalf("tier size = %d", tier.Size())
	}
	s := c.Stats()
	if s.Grows != 1 || s.Breaches != 3 || s.BreachStreak != 0 {
		t.Fatalf("stats after grow: %+v", s)
	}
}

func TestHealthyWindowResetsBreachStreak(t *testing.T) {
	tier := &fakeTier{size: 1}
	c := newTest(t, Config{SLO: 10 * time.Millisecond, Window: 4, BreachWindows: 3}, tier)

	feed(t, c, 8, 20*time.Millisecond) // 2 breached windows
	feed(t, c, 4, 7*time.Millisecond)  // in the hysteresis band: streak resets
	if dec := feed(t, c, 8, 20*time.Millisecond); dec != None {
		t.Fatalf("grew without 3 consecutive breaches: %v", dec)
	}
	if tier.Size() != 1 {
		t.Fatalf("tier size = %d", tier.Size())
	}
}

func TestShrinkOnSustainedHeadroomWithHysteresis(t *testing.T) {
	tier := &fakeTier{size: 3}
	c := newTest(t, Config{
		SLO: 10 * time.Millisecond, Window: 4,
		ClearWindows: 3, HeadroomRatio: 0.5, Min: 1,
	}, tier)

	// In-band latency (7ms: over the 5ms headroom line, under the 10ms SLO)
	// never shrinks, no matter how long it lasts.
	if dec := feed(t, c, 40, 7*time.Millisecond); dec != None {
		t.Fatalf("hysteresis band acted: %v", dec)
	}
	// Sustained headroom (2ms < 5ms) for 3 windows: shrink once.
	if dec := feed(t, c, 12, 2*time.Millisecond); dec != Shrank {
		t.Fatal("no shrink after 3 clear windows")
	}
	if tier.Size() != 2 {
		t.Fatalf("tier size = %d", tier.Size())
	}
}

func TestBoundsHold(t *testing.T) {
	tier := &fakeTier{size: 2}
	c := newTest(t, Config{
		SLO: 10 * time.Millisecond, Window: 2,
		BreachWindows: 1, ClearWindows: 1, Min: 2, Max: 2,
	}, tier)

	if dec := feed(t, c, 2, 20*time.Millisecond); dec != HeldMax {
		t.Fatalf("grow at Max: %v", dec)
	}
	if dec := feed(t, c, 2, time.Millisecond); dec != HeldMin {
		t.Fatalf("shrink at Min: %v", dec)
	}
	if tier.Size() != 2 {
		t.Fatalf("tier moved: %d", tier.Size())
	}
	if s := c.Stats(); s.Held != 2 {
		t.Fatalf("Held = %d", s.Held)
	}
}

func TestCooldownSuppressesBackToBackActions(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	tier := &fakeTier{size: 1}
	c := newTest(t, Config{
		SLO: 10 * time.Millisecond, Window: 2, BreachWindows: 1,
		Cooldown: time.Minute, Now: clock,
	}, tier)

	if dec := feed(t, c, 2, 20*time.Millisecond); dec != Grew {
		t.Fatalf("first grow: %v", dec)
	}
	// Still breaching, but inside the cooldown: held.
	if dec := feed(t, c, 2, 20*time.Millisecond); dec != HeldMax {
		t.Fatalf("inside cooldown: %v", dec)
	}
	now = now.Add(2 * time.Minute)
	if dec := feed(t, c, 2, 20*time.Millisecond); dec != Grew {
		t.Fatalf("after cooldown: %v", dec)
	}
	if tier.Size() != 3 {
		t.Fatalf("tier size = %d", tier.Size())
	}
}

func TestActuatorErrorSurfacesAndCounts(t *testing.T) {
	boom := errors.New("boom")
	tier := &fakeTier{size: 1, fail: boom}
	c := newTest(t, Config{SLO: 10 * time.Millisecond, Window: 2, BreachWindows: 1}, tier)

	var lastErr error
	for i := 0; i < 2; i++ {
		_, lastErr = c.Observe(context.Background(), 20*time.Millisecond)
	}
	if !errors.Is(lastErr, boom) {
		t.Fatalf("err = %v", lastErr)
	}
	if s := c.Stats(); s.ActuatorErrors != 1 || s.Grows != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSetConfigRetunesLive(t *testing.T) {
	tier := &fakeTier{size: 1}
	c := newTest(t, Config{SLO: 100 * time.Millisecond, Window: 2, BreachWindows: 1}, tier)

	// 20ms is healthy under a 100ms SLO…
	if dec := feed(t, c, 2, 20*time.Millisecond); dec != None {
		t.Fatalf("acted under loose SLO: %v", dec)
	}
	// …and a breach after the SLO tightens to 10ms.
	if err := c.SetConfig(Config{SLO: 10 * time.Millisecond, Window: 2, BreachWindows: 1}); err != nil {
		t.Fatal(err)
	}
	if dec := feed(t, c, 2, 20*time.Millisecond); dec != Grew {
		t.Fatalf("no grow under tightened SLO: %v", dec)
	}
	if err := c.SetConfig(Config{}); err == nil {
		t.Fatal("SetConfig accepted zero SLO")
	}
}

func TestP90NearestRank(t *testing.T) {
	win := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	if got := p90(win); got != 9 {
		t.Fatalf("p90 of 1..9,100 = %v, want 9", got)
	}
	if got := p90([]time.Duration{5}); got != 5 {
		t.Fatalf("p90 of single = %v", got)
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		None: "none", Grew: "grew", Shrank: "shrank",
		HeldMax: "held-max", HeldMin: "held-min", Decision(99): "Decision(99)",
	} {
		if d.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(d), d.String(), want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	tier := &fakeTier{size: 2}
	c := newTest(t, Config{SLO: 10 * time.Millisecond, Window: 2, BreachWindows: 1}, tier)
	feed(t, c, 2, 20*time.Millisecond)

	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"sdscale_elastic_size 3",
		"sdscale_elastic_slo_seconds 0.01",
		"sdscale_elastic_grows_total 1",
		"sdscale_elastic_windows_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
