// Quickstart: the smallest complete sdscale control plane, declared as a
// Topology.
//
// One spec — four virtual data-plane stages over two jobs, one shard, a
// configured PFS capacity — is handed to StartTopology, which builds the
// simulated network, the stages, and the controller, and returns the
// running Deployment. The PFS is oversubscribed 2:1 (4,000 IOPS demanded,
// 2,000 admitted), so the PSFA algorithm halves every stage's admitted
// rate; the four limits sum exactly to the capacity.
//
// The same deployment scales out declaratively: Shards: 4 partitions the
// fleet across four concurrently active controllers behind a routing tier,
// Standbys: 2 gives each shard a warm quorum, AggregatorFanIn picks the
// paper's hierarchical design instead. For wiring roles one by one — custom
// per-stage weights, mixed workloads — see the manual-assembly examples
// (burst, failover, metadata, priority).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/dsrhaslab/sdscale"
)

func main() {
	ctx := context.Background()

	// The whole deployment in one declarative spec: every stage demands
	// 1,000 data IOPS and 100 metadata ops/s; the controller may admit
	// half of that.
	d, err := sdscale.StartTopology(sdscale.Topology{
		Stages:   4,
		Jobs:     2,
		Shards:   1, // the classic single global controller
		Workload: sdscale.ConstantWorkload{Rates: sdscale.Rates{1000, 100}},
		Capacity: sdscale.Rates{2000, 200},
	})
	if err != nil {
		log.Fatalf("start topology: %v", err)
	}
	defer d.Close()

	// Run a few control cycles and watch the rules converge.
	for cycle := 1; cycle <= 3; cycle++ {
		b, err := d.RunCycle(ctx)
		if err != nil {
			log.Fatalf("cycle %d: %v", cycle, err)
		}
		fmt.Printf("cycle %d: collect %v, compute %v, enforce %v\n",
			cycle, b.Collect, b.Compute, b.Enforce)
	}

	fmt.Println("\nper-stage enforcement (PSFA, 2:1 oversubscribed, capacity 2000 data IOPS):")
	for _, st := range d.Cluster().Stages {
		rule, ok := st.LastRule()
		if !ok {
			log.Fatalf("stage %d got no rule", st.Info().ID)
		}
		shard, _ := d.Route(rule.StageID)
		fmt.Printf("  stage %d (job %d, shard %d): data %6.1f IOPS, meta %5.1f ops/s\n",
			rule.StageID, rule.JobID, shard,
			rule.Limit[sdscale.ClassData], rule.Limit[sdscale.ClassMeta])
	}

	// One unified snapshot for the whole deployment, however many shards.
	st := d.Stats()
	fmt.Printf("\ndeployment: %d shard(s), %d children, epoch %d, %d quarantined\n",
		st.Shards, st.Children, st.MaxEpoch, st.Quarantined)
	fmt.Println("every limit is half its demand — PSFA arbitrated the 2:1 oversubscription;")
	fmt.Println("the four limits sum to the configured capacity — work conserving.")
}
