package cyclemem

import (
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

func TestSlabReusesAcrossGenerations(t *testing.T) {
	var a Arena
	var s Slab[int]

	a.Begin()
	first := s.Take(&a, 100)
	if len(first) != 100 {
		t.Fatalf("Take(100) len = %d", len(first))
	}
	for i := range first {
		first[i] = i + 1
	}

	a.Begin()
	second := s.Take(&a, 100)
	if &first[0] != &second[0] {
		t.Fatal("new generation did not reuse the retained backing array")
	}
	for i, v := range second {
		if v != 0 {
			t.Fatalf("second[%d] = %d, want zeroed", i, v)
		}
	}

	st := a.Stats()
	if st.Generation != 2 || st.Takes != 2 || st.Grows != 1 || st.Reuses != 1 {
		t.Fatalf("stats = %+v, want gen=2 takes=2 grows=1 reuses=1", st)
	}
}

func TestSlabMultipleTakesAreDisjoint(t *testing.T) {
	var a Arena
	var s Slab[byte]
	a.Begin()
	x := s.Take(&a, 4)
	y := s.Take(&a, 4)
	for i := range x {
		x[i] = 'x'
	}
	for i := range y {
		y[i] = 'y'
	}
	if string(x) != "xxxx" || string(y) != "yyyy" {
		t.Fatalf("takes overlap: x=%q y=%q", x, y)
	}
	// Full slices: an append on x must not clobber y.
	if cap(x) != len(x) {
		t.Fatalf("take not capacity-clamped: len=%d cap=%d", len(x), cap(x))
	}
	if s.Cap() < 8 {
		t.Fatalf("slab cap = %d, want >= 8", s.Cap())
	}
}

func TestSlabZeroesPointerEntries(t *testing.T) {
	var a Arena
	var s Slab[*int]
	a.Begin()
	v := 7
	s.Take(&a, 3)[0] = &v
	a.Begin()
	for i, p := range s.Take(&a, 3) {
		if p != nil {
			t.Fatalf("entry %d retained pointer across generations", i)
		}
	}
}

func TestRuleTableLookup(t *testing.T) {
	var a Arena
	var tab RuleTable
	a.Begin()
	tab.Reset(&a)
	for _, id := range []uint64{30, 10, 20} {
		tab.Append(wire.Rule{StageID: id, JobID: 1, Limit: wire.Rates{float64(id)}})
	}
	if _, ok := tab.Lookup(10); ok {
		t.Fatal("unsealed table answered a lookup")
	}
	tab.Seal()
	for _, id := range []uint64{10, 20, 30} {
		r, ok := tab.Lookup(id)
		if !ok || r.Limit[0] != float64(id) {
			t.Fatalf("Lookup(%d) = %+v, %v", id, r, ok)
		}
	}
	if _, ok := tab.Lookup(15); ok {
		t.Fatal("Lookup(15) hit on a missing stage")
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestRuleTableLastWriteWins(t *testing.T) {
	var a Arena
	var tab RuleTable
	a.Begin()
	tab.Reset(&a)
	tab.Append(wire.Rule{StageID: 5, JobID: 1, Limit: wire.Rates{1}})
	tab.Append(wire.Rule{StageID: 5, JobID: 1, Limit: wire.Rates{2}})
	tab.Seal()
	r, ok := tab.Lookup(5)
	if !ok || r.Limit[0] != 2 {
		t.Fatalf("Lookup(5) = %+v, %v; want the later entry (map overwrite semantics)", r, ok)
	}
}

func TestRuleTableGenerationInvalidation(t *testing.T) {
	var a Arena
	var tab RuleTable
	a.Begin()
	tab.Reset(&a)
	tab.Append(wire.Rule{StageID: 1})
	tab.Seal()
	if _, ok := tab.Lookup(1); !ok {
		t.Fatal("sealed table missed in its own generation")
	}
	a.Begin() // cycle ended: the table's memory is logically free
	if _, ok := tab.Lookup(1); ok {
		t.Fatal("stale table answered a lookup after the arena advanced")
	}
}

func TestRuleTableSlot(t *testing.T) {
	var a Arena
	var tab RuleTable
	a.Begin()
	tab.Reset(&a)
	slot := tab.Slot(4)
	for i := range slot {
		slot[i] = wire.Rule{StageID: uint64(10 - i)}
	}
	tab.Seal()
	if r, ok := tab.Lookup(7); !ok || r.StageID != 7 {
		t.Fatalf("Lookup(7) after Slot fill = %+v, %v", r, ok)
	}
	// Slot reuse across generations keeps the array.
	tab.Reset(&a)
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tab.Len())
	}
	again := tab.Slot(4)
	if &slot[0] != &again[0] {
		t.Fatal("Slot did not reuse the retained array within the generation")
	}
	if again[0].StageID != 0 {
		t.Fatal("Slot returned unzeroed entries")
	}
}

func TestParallelForCoversRangeDisjointly(t *testing.T) {
	const n = 10_000
	marks := make([]int32, n)
	workers := ParallelFor(n, 8, func(start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&marks[i], 1)
		}
	})
	if workers < 1 {
		t.Fatalf("workers = %d", workers)
	}
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

func TestParallelForMultiWorker(t *testing.T) {
	// Force real parallelism even on a single-CPU runner so the sharded
	// branch executes (and races, if any, surface under -race).
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 4096
	out := make([]uint64, n)
	workers := ParallelFor(n, 8, func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = uint64(i) * 3
		}
	})
	if workers < 2 {
		t.Fatalf("workers = %d, want >= 2 with GOMAXPROCS=4", workers)
	}
	for i, v := range out {
		if v != uint64(i)*3 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestParallelForSmallInputStaysSerial(t *testing.T) {
	if w := ParallelFor(10, 100, func(start, end int) {
		if start != 0 || end != 10 {
			t.Fatalf("serial range = [%d,%d)", start, end)
		}
	}); w != 1 {
		t.Fatalf("workers = %d, want 1 for sub-threshold input", w)
	}
	if w := ParallelFor(0, 1, func(int, int) { t.Fatal("fn called for n=0") }); w != 0 {
		t.Fatalf("workers = %d, want 0 for empty input", w)
	}
}

func BenchmarkSlabTake(b *testing.B) {
	var a Arena
	var s Slab[wire.StageReport]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Begin()
		buf := s.Take(&a, 1024)
		buf[0].StageID = uint64(i)
	}
}
