package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/dsrhaslab/sdscale
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFlatCycle/1k/pipelined         	       1	  10475800 ns/op	  776564 B/op	   20401 allocs/op
BenchmarkFlatCycle/1k/pipelined         	       1	   9480123 ns/op	  776564 B/op	   20228 allocs/op
BenchmarkFlatCycle/1k/blocking-8        	       1	  15226066 ns/op	 1528232 B/op	   30235 allocs/op
PASS
ok  	github.com/dsrhaslab/sdscale	0.5s
`

func TestParseBenchTakesMinimum(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	pip := results["FlatCycle/1k/pipelined"]
	if pip == nil {
		t.Fatalf("pipelined result missing: %v", results)
	}
	if pip.runs != 2 || pip.allocsOp != 20228 || pip.bytesOp != 776564 || pip.nsPerOp != 9480123 {
		t.Fatalf("pipelined min not kept: %+v", pip)
	}
	blk := results["FlatCycle/1k/blocking"]
	if blk == nil {
		t.Fatal("the -GOMAXPROCS suffix was not stripped")
	}
	if blk.allocsOp != 30235 || blk.bytesOp != 1528232 {
		t.Fatalf("blocking metrics: %+v", blk)
	}
}

func TestParseBenchLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	github.com/dsrhaslab/sdscale	0.5s",
		"BenchmarkX 1 banana ns/op 3 B/op 3 allocs/op",
		"BenchmarkNoAllocs 1 500 ns/op",
		"BenchmarkNoBytes 1 500 ns/op 3 allocs/op",
	} {
		if _, _, _, _, ok := parseBenchLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}

func testBaseline() map[string]baselineEntry {
	return map[string]baselineEntry{
		"FlatCycle/1k/pipelined": {Name: "FlatCycle/1k/pipelined", NsPerOp: 9475800, BytesOp: 776564, AllocsOp: 20228},
		"FlatCycle/1k/blocking":  {Name: "FlatCycle/1k/blocking", NsPerOp: 15126066, BytesOp: 1528232, AllocsOp: 30235},
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	results := map[string]*benchResult{
		"FlatCycle/1k/pipelined": {name: "FlatCycle/1k/pipelined", nsPerOp: 9.9e6, bytesOp: 800000, allocsOp: 21000, runs: 5},
		"FlatCycle/1k/blocking":  {name: "FlatCycle/1k/blocking", nsPerOp: 15.2e6, bytesOp: 1528232, allocsOp: 30235, runs: 5},
	}
	report, failed := gate(results, testBaseline(), 0.15)
	if failed {
		t.Fatalf("gate failed within threshold:\n%s", report)
	}
	if !strings.Contains(report, "ok  ") {
		t.Fatalf("report: %s", report)
	}
}

func TestGateFailsOnAllocRegression(t *testing.T) {
	results := map[string]*benchResult{
		"FlatCycle/1k/pipelined": {name: "FlatCycle/1k/pipelined", nsPerOp: 9.5e6, bytesOp: 776564, allocsOp: 25000, runs: 5},
	}
	report, failed := gate(results, testBaseline(), 0.15)
	if !failed {
		t.Fatalf("gate passed a +23%% alloc regression:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report: %s", report)
	}
}

func TestGateFailsOnBytesRegression(t *testing.T) {
	results := map[string]*benchResult{
		// allocs flat, B/op +29%: fail.
		"FlatCycle/1k/pipelined": {name: "FlatCycle/1k/pipelined", nsPerOp: 9.5e6, bytesOp: 1000000, allocsOp: 20228, runs: 5},
	}
	report, failed := gate(results, testBaseline(), 0.15)
	if !failed {
		t.Fatalf("gate passed a +29%% bytes regression:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report: %s", report)
	}
}

func TestGateSkipsBytesForLegacyBaseline(t *testing.T) {
	baseline := map[string]baselineEntry{
		// A baseline recorded before B/op gating has no bytes_per_op field.
		"FlatCycle/1k/pipelined": {Name: "FlatCycle/1k/pipelined", NsPerOp: 9475800, AllocsOp: 20228},
	}
	results := map[string]*benchResult{
		"FlatCycle/1k/pipelined": {name: "FlatCycle/1k/pipelined", nsPerOp: 9.5e6, bytesOp: 776564, allocsOp: 20228, runs: 5},
	}
	report, failed := gate(results, baseline, 0.15)
	if failed {
		t.Fatalf("gate failed against a baseline without bytes_per_op:\n%s", report)
	}
}

func TestGateWarnsOnTimingOnly(t *testing.T) {
	results := map[string]*benchResult{
		// ns/op +50%, allocs and bytes flat: warn, don't fail.
		"FlatCycle/1k/pipelined": {name: "FlatCycle/1k/pipelined", nsPerOp: 14.2e6, bytesOp: 776564, allocsOp: 20228, runs: 5},
	}
	report, failed := gate(results, testBaseline(), 0.15)
	if failed {
		t.Fatalf("gate failed on a timing-only regression:\n%s", report)
	}
	if !strings.Contains(report, "warn") {
		t.Fatalf("no timing warning in report: %s", report)
	}
}

func TestGateFailsWhenNothingMatches(t *testing.T) {
	results := map[string]*benchResult{
		"Other/bench": {name: "Other/bench", nsPerOp: 1, allocsOp: 1, runs: 1},
	}
	report, failed := gate(results, testBaseline(), 0.15)
	if !failed {
		t.Fatal("gate passed with zero comparable benchmarks")
	}
	if !strings.Contains(report, "SKIP") {
		t.Fatalf("report: %s", report)
	}
}
