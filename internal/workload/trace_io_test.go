package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	src := Record(Bursty{
		On: time.Second, Off: time.Second,
		High: wire.Rates{1000, 100}, Low: wire.Rates{10, 1},
	}, 250*time.Millisecond, 20)

	var buf bytes.Buffer
	if err := SaveTrace(&buf, src); err != nil {
		t.Fatalf("SaveTrace: %v", err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatalf("LoadTrace: %v", err)
	}
	if got.Step != src.Step {
		t.Errorf("step = %v, want %v", got.Step, src.Step)
	}
	if len(got.Samples) != len(src.Samples) {
		t.Fatalf("samples = %d, want %d", len(got.Samples), len(src.Samples))
	}
	for at := time.Duration(0); at < 5*time.Second; at += 100 * time.Millisecond {
		if got.Demand(at) != src.Demand(at) {
			t.Fatalf("replay diverges at %v", at)
		}
	}
}

func TestSaveTraceDefaultsStep(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveTrace(&buf, Trace{Samples: []wire.Rates{{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != time.Second {
		t.Errorf("defaulted step = %v", got.Step)
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":       "][",
		"wrong version":  `{"version":99,"step_micros":1000,"classes":["data","meta"],"samples":[]}`,
		"bad step":       `{"version":1,"step_micros":0,"classes":["data","meta"],"samples":[]}`,
		"few classes":    `{"version":1,"step_micros":1000,"classes":["data"],"samples":[]}`,
		"wrong classes":  `{"version":1,"step_micros":1000,"classes":["meta","data"],"samples":[]}`,
		"ragged sample":  `{"version":1,"step_micros":1000,"classes":["data","meta"],"samples":[[1]]}`,
		"negative value": `{"version":1,"step_micros":1000,"classes":["data","meta"],"samples":[[-1,0]]}`,
	}
	for name, doc := range cases {
		if _, err := LoadTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
