package controller

import (
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// The degraded-collect staleness bound is exclusive: a cached report aged
// exactly StaleAfter is already too old to serve, one aged a microsecond
// less is still served, and in both cases the true age is reported so the
// caller can account it.
func TestStaleReportExactBoundary(t *testing.T) {
	const staleAfter = 2 * time.Second
	now := time.Now()
	report := &wire.CollectReply{Reports: []wire.StageReport{{StageID: 1}}}

	c := &child{lastReport: report, lastReportAt: now.Add(-staleAfter)}
	if m, age, ok := c.staleReport(now, staleAfter); ok || m != nil {
		t.Errorf("report aged exactly StaleAfter was served (age %v)", age)
	} else if age != staleAfter {
		t.Errorf("dropped report age = %v, want exactly %v", age, staleAfter)
	}

	c = &child{lastReport: report, lastReportAt: now.Add(-(staleAfter - time.Microsecond))}
	if m, age, ok := c.staleReport(now, staleAfter); !ok {
		t.Errorf("report one microsecond younger than StaleAfter was dropped (age %v)", age)
	} else if m != report {
		t.Errorf("served message = %v, want the cached report", m)
	} else if age != staleAfter-time.Microsecond {
		t.Errorf("served report age = %v, want %v", age, staleAfter-time.Microsecond)
	}

	// No cached report at all: not served, and age 0 tells the caller
	// there is no drop to account either.
	c = &child{}
	if _, age, ok := c.staleReport(now, staleAfter); ok || age != 0 {
		t.Errorf("childless report = (age %v, ok %v), want (0, false)", age, ok)
	}
}

// staleReports must serve in-bound reports, drop aged-out ones, and record
// the ages of both in the stale-age histogram — the drop also bumping the
// drop counter, so FaultSummary can split used from dropped.
func TestStaleReportsHistogramRecordsServedAndDropped(t *testing.T) {
	const staleAfter = 2 * time.Second
	served := &wire.CollectReply{Reports: []wire.StageReport{{StageID: 1}}}
	dropped := &wire.CollectReply{Reports: []wire.StageReport{{StageID: 2}}}
	quarantined := []*child{
		{lastReport: served, lastReportAt: time.Now()},                       // age ~0: served
		{lastReport: dropped, lastReportAt: time.Now().Add(-2 * staleAfter)}, // aged out: dropped
		{}, // never reported: invisible to the histogram
	}

	var faults telemetry.FaultCounters
	out := staleReports(quarantined, staleAfter, &faults)
	if len(out) != 1 || out[0] != served {
		t.Fatalf("staleReports served %d messages, want just the fresh one", len(out))
	}
	if got := faults.StaleDrops(); got != 1 {
		t.Errorf("StaleDrops = %d, want 1", got)
	}
	hist := faults.StaleAge()
	if got := hist.Count(); got != 2 {
		t.Errorf("stale-age histogram recorded %d ages, want 2 (served + dropped)", got)
	}
	if got := hist.Max(); got < 2*staleAfter {
		t.Errorf("stale-age histogram max = %v, want >= %v (the dropped report's age)", got, 2*staleAfter)
	}

	s := faults.Summarize()
	if s.StaleReportsUsed != 1 || s.StaleReportsDropped != 1 {
		t.Errorf("summary used/dropped = %d/%d, want 1/1", s.StaleReportsUsed, s.StaleReportsDropped)
	}
	if s.MaxStaleAge < 2*staleAfter {
		t.Errorf("summary MaxStaleAge = %v, want >= %v", s.MaxStaleAge, 2*staleAfter)
	}
}
