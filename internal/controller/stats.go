package controller

import (
	"sync"

	"github.com/dsrhaslab/sdscale/internal/store"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
)

// statsScratch holds the members buffer a controller's Stats() reuses across
// calls, so monitoring pollers stop copying the full membership slice (80 KB
// at the paper's 10k scale) on every snapshot. Its mutex serializes
// concurrent Stats callers; the cycle goroutine never touches it.
type statsScratch struct {
	mu  sync.Mutex
	buf []*child
}

// quarantined refreshes the buffer from m and returns the quarantined
// members' IDs — nil when none, the steady-state case, which together with
// the reused buffer makes a healthy snapshot allocation-free here. The
// returned slice is freshly allocated when non-empty, so it is the caller's
// to keep.
func (s *statsScratch) quarantined(m *memberSet) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = m.snapshotInto(s.buf)
	var ids []uint64
	for _, c := range s.buf {
		if c.isQuarantined() {
			ids = append(ids, c.info.ID)
		}
	}
	return ids
}

// ControllerStats is a point-in-time snapshot of a controller's operational
// state: membership, breaker health, leadership, and fan-out pipeline
// telemetry. It is the one-call observability surface shared by Global,
// Aggregator, and Peer; the older per-counter accessors remain as deprecated
// wrappers around it.
//
// Consistency: Stats is safe to call at any time, including from another
// goroutine while a control cycle is running, but the snapshot is only
// per-field consistent. Each field is read atomically (or under the mutex
// that guards it), yet different fields are read at slightly different
// instants — a snapshot taken mid-cycle may, for example, show a child
// already quarantined whose failed call has not yet landed in CallErrors,
// or an Epoch one ahead of the Faults promotion counters. Cross-field
// invariants therefore only hold on a quiescent controller. Callers that
// need a coherent multi-field view should pause cycles first; monitoring
// and debugging callers get torn-free individual values either way.
type ControllerStats struct {
	// Children is the number of directly managed children (stages or
	// aggregators); Stages is the stage population reached through them.
	Children int
	Stages   int
	// Peers is the number of fellow controllers in the coordinated flat
	// design; zero for the other controller kinds.
	Peers int
	// Quarantined counts children currently behind a tripped circuit
	// breaker; QuarantinedIDs lists them.
	Quarantined    int
	QuarantinedIDs []uint64
	// CallErrors is the cumulative count of failed child calls (excluding
	// ones the controller's own shutdown caused).
	CallErrors uint64
	// Evictions counts children permanently removed under EvictAfter.
	Evictions uint64
	// Epoch is the controller's current leadership epoch: the epoch it
	// leads with (Global) or the highest epoch it has seen (Aggregator).
	Epoch uint64
	// FencedCalls counts epoch-fencing events: stale-epoch rejections this
	// controller received (Global) or issued (Aggregator).
	FencedCalls uint64
	// ReHomes counts re-registrations with a new parent after upstream
	// silence (Aggregator only).
	ReHomes uint64
	// Faults digests the fault-tolerance counters (quarantines,
	// readmissions, probes, degraded cycles, stale-report ages, ...).
	Faults telemetry.FaultSummary
	// Pipeline digests the fan-out dispatch telemetry (per-phase in-flight
	// gauges and per-cycle allocation counts).
	Pipeline telemetry.PipelineSnapshot
	// Store digests the durability layer (log size, fsync latency, snapshot
	// age, replay cost); nil when the controller runs without a store.
	Store *store.Stats
}

// Stats snapshots the controller's operational state.
func (g *Global) Stats() ControllerStats {
	ids := g.statsScr.quarantined(g.members)
	g.mu.Lock()
	callErrors := g.callErrors
	g.mu.Unlock()
	st := ControllerStats{
		Children:       g.members.size(),
		Stages:         g.NumStages(),
		Quarantined:    len(ids),
		QuarantinedIDs: ids,
		CallErrors:     callErrors,
		Evictions:      g.faults.Evictions(),
		Epoch:          g.Epoch(),
		FencedCalls:    g.faults.FencedCalls(),
		Faults:         g.faults.Summarize(),
		Pipeline:       g.pipe.Snapshot(),
	}
	if g.cfg.Store != nil {
		ss := g.cfg.Store.Stats()
		st.Store = &ss
	}
	return st
}

// Stats snapshots the aggregator's operational state.
func (a *Aggregator) Stats() ControllerStats {
	ids := a.statsScr.quarantined(a.members)
	a.mu.Lock()
	epoch := a.epoch
	fenced := a.fencedCalls
	rehomes := a.rehomes
	a.mu.Unlock()
	return ControllerStats{
		Children:       a.members.size(),
		Stages:         a.members.size(),
		Quarantined:    len(ids),
		QuarantinedIDs: ids,
		CallErrors:     a.callErrors.Load(),
		Evictions:      a.faults.Evictions(),
		Epoch:          epoch,
		FencedCalls:    fenced,
		ReHomes:        rehomes,
		Faults:         a.faults.Summarize(),
		Pipeline:       a.pipe.Snapshot(),
	}
}

// Stats snapshots the peer's operational state.
func (p *Peer) Stats() ControllerStats {
	ids := p.statsScr.quarantined(p.members)
	p.mu.Lock()
	callErrors := p.callErrors
	peers := len(p.peers)
	p.mu.Unlock()
	return ControllerStats{
		Children:       p.members.size(),
		Stages:         p.members.size(),
		Peers:          peers,
		Quarantined:    len(ids),
		QuarantinedIDs: ids,
		CallErrors:     callErrors,
		Evictions:      p.faults.Evictions(),
		Faults:         p.faults.Summarize(),
		Pipeline:       p.pipe.Snapshot(),
	}
}

// Pipeline returns the controller's live fan-out telemetry (per-phase
// in-flight gauges and per-cycle allocation counters). Stats().Pipeline is
// the snapshot form.
func (g *Global) Pipeline() *telemetry.PipelineStats { return g.pipe }

// Pipeline returns the aggregator's live fan-out telemetry.
func (a *Aggregator) Pipeline() *telemetry.PipelineStats { return a.pipe }

// Pipeline returns the peer's live fan-out telemetry.
func (p *Peer) Pipeline() *telemetry.PipelineStats { return p.pipe }
