// Package elastic closes the loop between the control plane's latency
// telemetry and its own shape: a small SLO controller that watches
// per-cycle latency (the sensor the Prometheus endpoint already exposes),
// decides against a p90 objective with hysteresis, and actuates by growing
// or shrinking the aggregator tier through the deployment's re-homing
// machinery.
//
// The loop is deliberately synchronous: the daemon feeds Observe one
// measurement per control cycle from the cycle goroutine itself, and any
// scaling action runs inline before the next cycle starts. That serializes
// sensor, decision, and actuator with the cycles they reshape — no scaling
// action ever races an in-flight collect or enforce.
package elastic

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Actuator is the scaling surface the controller drives — in production the
// deployment's aggregator tier.
type Actuator interface {
	// Size returns the current tier size.
	Size() int
	// Grow adds one unit of capacity (one aggregator).
	Grow(ctx context.Context) error
	// Shrink removes one unit of capacity.
	Shrink(ctx context.Context) error
}

// Defaults for the zero-valued Config fields.
const (
	DefaultWindow        = 10
	DefaultBreachWindows = 3
	DefaultClearWindows  = 3
	DefaultHeadroomRatio = 0.5
)

// Config parameterizes the SLO controller.
type Config struct {
	// SLO is the per-cycle p90 latency objective. Required.
	SLO time.Duration
	// Window is the number of cycles per decision window; p90 is computed
	// over each full window. Zero selects DefaultWindow.
	Window int
	// BreachWindows is how many consecutive windows must breach the SLO
	// before the tier grows. Zero selects DefaultBreachWindows.
	BreachWindows int
	// ClearWindows is how many consecutive windows must show headroom
	// before the tier shrinks. Zero selects DefaultClearWindows.
	ClearWindows int
	// HeadroomRatio sets the shrink threshold at HeadroomRatio×SLO: the
	// hysteresis band between it and the SLO is where the controller holds
	// still, so a deployment sized just under the objective does not
	// oscillate. Zero selects DefaultHeadroomRatio.
	HeadroomRatio float64
	// Cooldown is the minimum time between scaling actions, bounding how
	// fast consecutive decisions can reshape the tier. Zero disables.
	Cooldown time.Duration
	// Min and Max bound the tier size. Min zero selects 1; Max zero means
	// unbounded.
	Min, Max int
	// Logf, if non-nil, receives one line per decision window and action.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests). Nil selects time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.SLO <= 0 {
		return c, fmt.Errorf("elastic: SLO must be positive, got %v", c.SLO)
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.BreachWindows <= 0 {
		c.BreachWindows = DefaultBreachWindows
	}
	if c.ClearWindows <= 0 {
		c.ClearWindows = DefaultClearWindows
	}
	if c.HeadroomRatio <= 0 || c.HeadroomRatio >= 1 {
		if c.HeadroomRatio != 0 {
			return c, fmt.Errorf("elastic: HeadroomRatio must be in (0, 1), got %g", c.HeadroomRatio)
		}
		c.HeadroomRatio = DefaultHeadroomRatio
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max > 0 && c.Max < c.Min {
		return c, fmt.Errorf("elastic: Max %d below Min %d", c.Max, c.Min)
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// Decision is the outcome of one Observe call.
type Decision int

// The decisions Observe can return. Held decisions wanted to act but were
// stopped by a bound or the cooldown — surfaced so operators can see a
// saturated tier.
const (
	// None: mid-window, or the window landed in the hysteresis band.
	None Decision = iota
	// Grew: the tier grew by one.
	Grew
	// Shrank: the tier shrank by one.
	Shrank
	// HeldMax: a grow was due but the tier is at Max (or cooling down).
	HeldMax
	// HeldMin: a shrink was due but the tier is at Min (or cooling down).
	HeldMin
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case None:
		return "none"
	case Grew:
		return "grew"
	case Shrank:
		return "shrank"
	case HeldMax:
		return "held-max"
	case HeldMin:
		return "held-min"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// Stats is a snapshot of the controller's counters.
type Stats struct {
	// Windows is the number of completed decision windows.
	Windows uint64
	// Breaches and Clears count windows past the breach / headroom
	// thresholds.
	Breaches, Clears uint64
	// Grows and Shrinks count completed scaling actions.
	Grows, Shrinks uint64
	// Held counts decisions suppressed by a bound or the cooldown.
	Held uint64
	// ActuatorErrors counts failed scaling actions.
	ActuatorErrors uint64
	// LastP90 is the most recent completed window's p90.
	LastP90 time.Duration
	// BreachStreak and ClearStreak are the current consecutive-window
	// streaks.
	BreachStreak, ClearStreak int
	// Size is the actuator's current tier size.
	Size int
	// SLO echoes the configured objective.
	SLO time.Duration
}

// Controller is the SLO elasticity controller. It is safe for concurrent
// use, but the intended shape is single-threaded: one Observe per control
// cycle from the cycle loop.
type Controller struct {
	act Actuator

	mu           sync.Mutex
	cfg          Config
	window       []time.Duration
	breachStreak int
	clearStreak  int
	lastAction   time.Time
	lastP90      time.Duration

	windows, breaches, clears uint64
	grows, shrinks, held      uint64
	actErrors                 uint64
}

// New builds a controller over the actuator.
func New(cfg Config, act Actuator) (*Controller, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if act == nil {
		return nil, fmt.Errorf("elastic: nil actuator")
	}
	return &Controller{act: act, cfg: cfg, window: make([]time.Duration, 0, cfg.Window)}, nil
}

// SetConfig swaps the controller's knobs live (hot reload of the SLO
// block). The in-progress window and the streaks are kept: a breach streak
// accumulated under the old objective still counts, it is just judged
// against the new one from the next window on.
func (c *Controller) SetConfig(cfg Config) error {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	c.mu.Lock()
	// The clock and the log sink are wiring, not knobs; a reload keeps them.
	cfg.Now = c.cfg.Now
	cfg.Logf = c.cfg.Logf
	c.cfg = cfg
	c.mu.Unlock()
	return nil
}

func (c *Controller) logf(format string, args ...any) {
	c.mu.Lock()
	f := c.cfg.Logf
	c.mu.Unlock()
	if f != nil {
		f(format, args...)
	}
}

// p90 computes the 90th percentile of the (non-empty) window.
func p90(window []time.Duration) time.Duration {
	s := make([]time.Duration, len(window))
	copy(s, window)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	// Nearest-rank: the smallest value with at least 90% of the window at
	// or below it.
	idx := (len(s)*9 + 9) / 10
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// Observe feeds one control cycle's total latency. When it completes a
// decision window it evaluates the streaks and, if a grow or shrink is due
// and allowed, runs the actuator inline and returns the action taken.
func (c *Controller) Observe(ctx context.Context, cycleTotal time.Duration) (Decision, error) {
	c.mu.Lock()
	c.window = append(c.window, cycleTotal)
	if len(c.window) < c.cfg.Window {
		c.mu.Unlock()
		return None, nil
	}
	q := p90(c.window)
	c.window = c.window[:0]
	c.windows++
	c.lastP90 = q
	cfg := c.cfg

	headroom := time.Duration(float64(cfg.SLO) * cfg.HeadroomRatio)
	switch {
	case q > cfg.SLO:
		c.breaches++
		c.breachStreak++
		c.clearStreak = 0
	case q < headroom:
		c.clears++
		c.clearStreak++
		c.breachStreak = 0
	default:
		// Hysteresis band: healthy but not wastefully so. Both streaks
		// reset — an action needs K *consecutive* windows of evidence.
		c.breachStreak = 0
		c.clearStreak = 0
	}
	breachDue := c.breachStreak >= cfg.BreachWindows
	clearDue := c.clearStreak >= cfg.ClearWindows
	bStreak, cStreak := c.breachStreak, c.clearStreak
	cooling := cfg.Cooldown > 0 && !c.lastAction.IsZero() && cfg.Now().Sub(c.lastAction) < cfg.Cooldown
	size := c.act.Size()
	c.mu.Unlock()

	c.logf("elastic: window p90=%v slo=%v size=%d breach-streak=%d clear-streak=%d",
		q.Round(time.Microsecond), cfg.SLO, size, bStreak, cStreak)

	switch {
	case breachDue:
		if cooling || (cfg.Max > 0 && size >= cfg.Max) {
			c.note(&c.held)
			return HeldMax, nil
		}
		if err := c.act.Grow(ctx); err != nil {
			c.note(&c.actErrors)
			return None, fmt.Errorf("elastic: grow: %w", err)
		}
		c.acted(&c.grows)
		c.logf("elastic: grew aggregator tier to %d (p90 %v over SLO %v for %d windows)",
			c.act.Size(), q.Round(time.Microsecond), cfg.SLO, cfg.BreachWindows)
		return Grew, nil
	case clearDue:
		if cooling || size <= cfg.Min {
			c.note(&c.held)
			return HeldMin, nil
		}
		if err := c.act.Shrink(ctx); err != nil {
			c.note(&c.actErrors)
			return None, fmt.Errorf("elastic: shrink: %w", err)
		}
		c.acted(&c.shrinks)
		c.logf("elastic: shrank aggregator tier to %d (p90 %v under %v headroom for %d windows)",
			c.act.Size(), q.Round(time.Microsecond), headroom, cfg.ClearWindows)
		return Shrank, nil
	}
	return None, nil
}

func (c *Controller) note(counter *uint64) {
	c.mu.Lock()
	*counter++
	c.mu.Unlock()
}

// acted records a completed action and resets the evidence: streaks start
// over so the next action needs a full run of windows measured against the
// new tier size, and the cooldown clock restarts.
func (c *Controller) acted(counter *uint64) {
	c.mu.Lock()
	*counter++
	c.breachStreak = 0
	c.clearStreak = 0
	c.lastAction = c.cfg.Now()
	c.mu.Unlock()
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Windows:        c.windows,
		Breaches:       c.breaches,
		Clears:         c.clears,
		Grows:          c.grows,
		Shrinks:        c.shrinks,
		Held:           c.held,
		ActuatorErrors: c.actErrors,
		LastP90:        c.lastP90,
		BreachStreak:   c.breachStreak,
		ClearStreak:    c.clearStreak,
		Size:           c.act.Size(),
		SLO:            c.cfg.SLO,
	}
}

// WritePrometheus renders the controller's state in Prometheus text
// exposition format; it implements the debug endpoint's MetricsSource.
func (c *Controller) WritePrometheus(w io.Writer) error {
	s := c.Stats()
	_, err := fmt.Fprintf(w,
		"# TYPE sdscale_elastic_size gauge\nsdscale_elastic_size %d\n"+
			"# TYPE sdscale_elastic_slo_seconds gauge\nsdscale_elastic_slo_seconds %g\n"+
			"# TYPE sdscale_elastic_last_p90_seconds gauge\nsdscale_elastic_last_p90_seconds %g\n"+
			"# TYPE sdscale_elastic_windows_total counter\nsdscale_elastic_windows_total %d\n"+
			"# TYPE sdscale_elastic_breaches_total counter\nsdscale_elastic_breaches_total %d\n"+
			"# TYPE sdscale_elastic_grows_total counter\nsdscale_elastic_grows_total %d\n"+
			"# TYPE sdscale_elastic_shrinks_total counter\nsdscale_elastic_shrinks_total %d\n"+
			"# TYPE sdscale_elastic_held_total counter\nsdscale_elastic_held_total %d\n"+
			"# TYPE sdscale_elastic_actuator_errors_total counter\nsdscale_elastic_actuator_errors_total %d\n",
		s.Size, s.SLO.Seconds(), s.LastP90.Seconds(),
		s.Windows, s.Breaches, s.Grows, s.Shrinks, s.Held, s.ActuatorErrors)
	return err
}
