package ratelimit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

func TestTryTakeWithinBurst(t *testing.T) {
	b := NewTokenBucket(100, 10)
	for i := 0; i < 10; i++ {
		if err := b.TryTake(1); err != nil {
			t.Fatalf("TryTake %d within burst: %v", i, err)
		}
	}
	if err := b.TryTake(1); err == nil {
		t.Fatal("TryTake beyond burst succeeded immediately")
	}
}

func TestTokensRefill(t *testing.T) {
	b := NewTokenBucket(1000, 10)
	for i := 0; i < 10; i++ {
		if err := b.TryTake(1); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // ~50 tokens accrue, capped at burst 10
	if got := b.Tokens(); got < 5 || got > 10 {
		t.Errorf("Tokens after refill = %g, want in [5, 10]", got)
	}
}

func TestWaitThroughputBounded(t *testing.T) {
	// At 1000 ops/s, 100 ops should take ~100ms (after the initial burst).
	b := NewTokenBucket(1000, 1)
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 100; i++ {
		if err := b.Wait(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("100 ops at 1000 ops/s took %v, want >= ~100ms", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("100 ops at 1000 ops/s took %v, far too slow", elapsed)
	}
}

func TestWaitContextCancel(t *testing.T) {
	b := NewTokenBucket(0, 1) // zero rate: waits forever without cancel
	b.TryTake(1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := b.Wait(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait = %v, want DeadlineExceeded", err)
	}
}

func TestSetRateWakesWaiter(t *testing.T) {
	b := NewTokenBucket(0, 1)
	b.TryTake(1) // drain
	done := make(chan error, 1)
	go func() { done <- b.Wait(context.Background(), 1) }()
	time.Sleep(20 * time.Millisecond)
	b.SetRate(1e6) // plenty of tokens almost immediately
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait after SetRate: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by SetRate")
	}
}

func TestPause(t *testing.T) {
	b := NewTokenBucket(1e6, 10)
	b.SetPaused(true)
	if err := b.TryTake(1); !errors.Is(err, ErrPaused) {
		t.Fatalf("TryTake on paused = %v, want ErrPaused", err)
	}
	done := make(chan error, 1)
	go func() { done <- b.Wait(context.Background(), 1) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Wait completed while paused")
	default:
	}
	b.SetPaused(false)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait after resume: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by resume")
	}
}

func TestBurstDefaults(t *testing.T) {
	b := NewTokenBucket(50, 0)
	if b.Tokens() != 50 {
		t.Errorf("default burst = %g, want 50 (rate)", b.Tokens())
	}
	tiny := NewTokenBucket(0.1, 0)
	if tiny.Tokens() != 1 {
		t.Errorf("minimum burst = %g, want 1", tiny.Tokens())
	}
}

func TestRateAccessor(t *testing.T) {
	b := NewTokenBucket(123, 0)
	if b.Rate() != 123 {
		t.Errorf("Rate = %g", b.Rate())
	}
	b.SetRate(456)
	if b.Rate() != 456 {
		t.Errorf("Rate after SetRate = %g", b.Rate())
	}
}

func TestConcurrentWaiters(t *testing.T) {
	b := NewTokenBucket(10000, 1)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			errs <- b.Wait(ctx, 1)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent Wait: %v", err)
		}
	}
}

// TestAdmissionNeverExceedsRateProperty: over any measured interval the
// bucket admits at most rate*interval + burst operations.
func TestAdmissionNeverExceedsRateProperty(t *testing.T) {
	f := func(rateRaw, burstRaw uint16) bool {
		rate := float64(rateRaw%5000) + 100
		burst := float64(burstRaw%100) + 1
		b := NewTokenBucket(rate, burst)
		start := time.Now()
		var admitted int
		for time.Since(start) < 20*time.Millisecond {
			if b.TryTake(1) == nil {
				admitted++
			}
		}
		elapsed := time.Since(start).Seconds()
		limit := rate*elapsed + burst + 1
		return float64(admitted) <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestMultiBucketClasses(t *testing.T) {
	m := NewMultiBucket(wire.Rates{5, 1})
	// Data class has 5 tokens of burst, meta has 1.
	for i := 0; i < 5; i++ {
		if err := m.TryAdmit(wire.ClassData); err != nil {
			t.Fatalf("data admit %d: %v", i, err)
		}
	}
	if err := m.TryAdmit(wire.ClassData); err == nil {
		t.Error("data admit beyond burst succeeded")
	}
	if err := m.TryAdmit(wire.ClassMeta); err != nil {
		t.Fatalf("meta admit: %v", err)
	}
	if err := m.TryAdmit(wire.ClassMeta); err == nil {
		t.Error("meta admit beyond burst succeeded")
	}
}

func TestMultiBucketUnlimited(t *testing.T) {
	m := NewUnlimited()
	for i := 0; i < 10000; i++ {
		if err := m.TryAdmit(wire.ClassData); err != nil {
			t.Fatalf("unlimited admit: %v", err)
		}
	}
	if err := m.Admit(context.Background(), wire.ClassMeta); err != nil {
		t.Fatalf("unlimited blocking admit: %v", err)
	}
}

func TestMultiBucketApplyRules(t *testing.T) {
	m := NewUnlimited()

	m.ApplyRule(wire.Rule{Action: wire.ActionSetLimit, Limit: wire.Rates{3, 2}})
	limits, unlimited := m.Limits()
	if unlimited {
		t.Error("still unlimited after SetLimit")
	}
	if limits != (wire.Rates{3, 2}) {
		t.Errorf("limits = %v", limits)
	}

	m.ApplyRule(wire.Rule{Action: wire.ActionPause})
	if err := m.TryAdmit(wire.ClassData); !errors.Is(err, ErrPaused) {
		t.Errorf("TryAdmit while paused = %v", err)
	}

	m.ApplyRule(wire.Rule{Action: wire.ActionNoLimit})
	if _, unlimited := m.Limits(); !unlimited {
		t.Error("not unlimited after NoLimit")
	}
	if err := m.TryAdmit(wire.ClassData); err != nil {
		t.Errorf("TryAdmit after NoLimit: %v", err)
	}
}

func TestMultiBucketRuleRetuning(t *testing.T) {
	m := NewMultiBucket(wire.Rates{100, 10})
	m.ApplyRule(wire.Rule{Action: wire.ActionSetLimit, Limit: wire.Rates{200, 20}})
	limits, _ := m.Limits()
	if limits != (wire.Rates{200, 20}) {
		t.Errorf("retuned limits = %v", limits)
	}
}

func BenchmarkTryTake(b *testing.B) {
	bucket := NewTokenBucket(1e12, 1e12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bucket.TryTake(1)
	}
}

func BenchmarkAdmitUnlimited(b *testing.B) {
	m := NewUnlimited()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.TryAdmit(wire.ClassData)
	}
}
