package rpc

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// codecSetup dials a fresh server with the given codec caps and returns the
// client. Both ends use the in-memory simnet.
func codecSetup(t *testing.T, h Handler, sopts ServerOptions, dopts DialOptions) (*Server, *Client) {
	t.Helper()
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", h, sopts)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), dopts)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

// TestCodecNegotiationUpgrades: a v2 client against a v2 server upgrades to
// the v2 codec, and calls keep round-tripping before, across, and after the
// upgrade (the hello ack can race the first request).
func TestCodecNegotiationUpgrades(t *testing.T) {
	_, cli := codecSetup(t, &echoHandler{}, ServerOptions{}, DialOptions{})
	for i := uint64(1); i <= 5; i++ {
		resp, err := cli.Call(context.Background(), &wire.Collect{Cycle: i})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if r := resp.(*wire.CollectReply); r.Cycle != i {
			t.Fatalf("call %d: cycle %d", i, r.Cycle)
		}
	}
	waitFor(t, "codec upgrade to v2", func() bool {
		return cli.CodecVersion() == wire.CodecV2
	})
	if _, err := cli.Call(context.Background(), &wire.Collect{Cycle: 99}); err != nil {
		t.Fatalf("post-upgrade call: %v", err)
	}
}

// TestCodecNegotiationV1Client: a client pinned to v1 sends no hello and
// stays on v1 against a v2 server.
func TestCodecNegotiationV1Client(t *testing.T) {
	_, cli := codecSetup(t, &echoHandler{}, ServerOptions{}, DialOptions{MaxCodec: 1})
	if _, err := cli.Call(context.Background(), &wire.Heartbeat{}); err != nil {
		t.Fatal(err)
	}
	if v := cli.CodecVersion(); v != wire.CodecV1 {
		t.Fatalf("pinned client negotiated v%d", v)
	}
}

// TestCodecNegotiationV1Server: a server pinned to v1 ignores the client's
// hello — exactly what a pre-v2 server does with an unknown frame kind — so
// the client never upgrades, and calls still work.
func TestCodecNegotiationV1Server(t *testing.T) {
	_, cli := codecSetup(t, &echoHandler{}, ServerOptions{MaxCodec: 1}, DialOptions{})
	for i := uint64(1); i <= 3; i++ {
		if _, err := cli.Call(context.Background(), &wire.Collect{Cycle: i}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if v := cli.CodecVersion(); v != wire.CodecV1 {
		t.Fatalf("client negotiated v%d against a v1 server", v)
	}
}

// floatHandler returns replies with float-heavy payloads so the v2 response
// history is exercised across many messages.
type floatHandler struct{}

func (floatHandler) Serve(_ *Peer, req wire.Message) (wire.Message, error) {
	c := req.(*wire.Collect)
	f := float64(c.Cycle)
	return &wire.CollectReply{Cycle: c.Cycle, Reports: []wire.StageReport{
		{StageID: 1, JobID: 1, Demand: wire.Rates{f * 1.5, 100}, Usage: wire.Rates{f, 99.25}},
		{StageID: 2, JobID: 1, Demand: wire.Rates{f * 1.5, 100}, Usage: wire.Rates{f, 0}},
	}}, nil
}

// TestCodecV2FloatDataCorrectness streams many float-bearing replies over an
// upgraded connection: the delta-coded response history must reconstruct
// every value exactly, including across repeated and changing payloads.
func TestCodecV2FloatDataCorrectness(t *testing.T) {
	_, cli := codecSetup(t, floatHandler{}, ServerOptions{}, DialOptions{})
	waitFor(t, "codec upgrade to v2", func() bool {
		return cli.CodecVersion() == wire.CodecV2
	})
	for i := 0; i < 50; i++ {
		cycle := uint64(i/10 + 1) // repeats make the history hit f2Same runs
		resp, err := cli.Call(context.Background(), &wire.Collect{Cycle: cycle})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		r := resp.(*wire.CollectReply)
		f := float64(cycle)
		want := []wire.StageReport{
			{StageID: 1, JobID: 1, Demand: wire.Rates{f * 1.5, 100}, Usage: wire.Rates{f, 99.25}},
			{StageID: 2, JobID: 1, Demand: wire.Rates{f * 1.5, 100}, Usage: wire.Rates{f, 0}},
		}
		if len(r.Reports) != len(want) {
			t.Fatalf("call %d: %d reports", i, len(r.Reports))
		}
		for j := range want {
			if r.Reports[j] != want[j] {
				t.Fatalf("call %d report %d: got %+v, want %+v", i, j, r.Reports[j], want[j])
			}
		}
	}
}

// TestReplyReuseContract: with ReuseReplies on, successive replies of the
// same type decode into the same cached message (hits counted), so a caller
// holding a reply across calls sees it overwritten — the documented aliasing
// contract.
func TestReplyReuseContract(t *testing.T) {
	var hits atomic.Uint64
	_, cli := codecSetup(t, floatHandler{}, ServerOptions{},
		DialOptions{ReuseReplies: true, ReuseHits: &hits})
	waitFor(t, "codec upgrade to v2", func() bool {
		return cli.CodecVersion() == wire.CodecV2
	})
	r1, err := cli.Call(context.Background(), &wire.Collect{Cycle: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cli.Call(context.Background(), &wire.Collect{Cycle: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("reuse did not return the cached reply: %p vs %p", r1, r2)
	}
	if r1.(*wire.CollectReply).Cycle != 2 {
		t.Fatalf("cached reply holds cycle %d, want 2 (overwritten)", r1.(*wire.CollectReply).Cycle)
	}
	if hits.Load() == 0 {
		t.Fatal("no reuse hits counted")
	}
}

// TestRequestReuseFreelist: with ReuseRequests on, the server decodes
// successive requests of one type into a recycled message.
func TestRequestReuseFreelist(t *testing.T) {
	var hits atomic.Uint64
	_, cli := codecSetup(t, &echoHandler{},
		ServerOptions{ReuseRequests: true, ReuseHits: &hits}, DialOptions{})
	waitFor(t, "codec upgrade to v2", func() bool {
		return cli.CodecVersion() == wire.CodecV2
	})
	for i := uint64(1); i <= 10; i++ {
		if _, err := cli.Call(context.Background(), &wire.Collect{Cycle: i}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if hits.Load() == 0 {
		t.Fatal("no request freelist hits counted")
	}
}
