package controller

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

// buildPeers assembles nPeers coordinated controllers over the given
// stages, partitioned round-robin, in a full mesh.
func buildPeers(t *testing.T, n *simnet.Net, stages []*stage.Virtual, nPeers int, capacity wire.Rates) []*Peer {
	t.Helper()
	ctx := context.Background()
	peers := make([]*Peer, nPeers)
	for i := range peers {
		p, err := StartPeer(PeerConfig{
			ID:       uint64(i + 1),
			Network:  n.Host(fmt.Sprintf("peer-%d", i+1)),
			Capacity: capacity,
		})
		if err != nil {
			t.Fatalf("start peer %d: %v", i, err)
		}
		peers[i] = p
	}
	t.Cleanup(func() {
		for _, p := range peers {
			p.Close()
		}
	})
	for i, v := range stages {
		if err := peers[i%nPeers].AddStage(ctx, v.Info()); err != nil {
			t.Fatalf("peer AddStage: %v", err)
		}
	}
	for i, p := range peers {
		for j, q := range peers {
			if i == j {
				continue
			}
			if err := p.AddPeer(ctx, q.ID(), q.Addr()); err != nil {
				t.Fatalf("AddPeer: %v", err)
			}
		}
	}
	return peers
}

func TestCoordinatedPeersReachGlobalAllocation(t *testing.T) {
	net := fastNet()
	// 8 stages, 2 jobs, uniform demand; capacity saturated 2:1.
	stages := startStages(t, net, 8, 2, wire.Rates{1000, 100})
	peers := buildPeers(t, net, stages, 2, wire.Rates{4000, 400})
	ctx := context.Background()

	// Two rounds: the first exchanges aggregates, the second computes with
	// full global visibility at both peers.
	for round := 0; round < 2; round++ {
		for _, p := range peers {
			if _, err := p.RunCycle(ctx); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}

	// With global visibility each of the 8 stages gets 4000/8 = 500,
	// exactly what a single flat controller would compute.
	for i, v := range stages {
		rule, ok := v.LastRule()
		if !ok {
			t.Fatalf("stage %d got no rule", i)
		}
		if math.Abs(rule.Limit[wire.ClassData]-500) > 1e-6 {
			t.Errorf("stage %d limit = %g, want 500", i, rule.Limit[wire.ClassData])
		}
	}
	if peers[0].NumPeers() != 1 || peers[0].NumStages() != 4 {
		t.Errorf("peer state = %d peers / %d stages", peers[0].NumPeers(), peers[0].NumStages())
	}
}

func TestCoordinatedFirstCycleIsLocalOnly(t *testing.T) {
	net := fastNet()
	stages := startStages(t, net, 4, 1, wire.Rates{1000, 0})
	peers := buildPeers(t, net, stages, 2, wire.Rates{2000, 0})
	ctx := context.Background()

	// Only peer 0 runs: it has no view of peer 1's stages yet, so it
	// allocates the full capacity to the 2 stages it sees.
	if _, err := peers[0].RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	r, ok := stages[0].LastRule() // stage 0 belongs to peer 0
	if !ok {
		t.Fatal("no rule")
	}
	if math.Abs(r.Limit[wire.ClassData]-1000) > 1e-6 {
		t.Errorf("local-only limit = %g, want 1000 (2000 over 2 visible stages)", r.Limit[wire.ClassData])
	}

	// After peer 1 also runs (sharing its aggregates), peer 0's next
	// cycle sees all 4 stages and halves the limits.
	if _, err := peers[1].RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := peers[0].RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	r, _ = stages[0].LastRule()
	if math.Abs(r.Limit[wire.ClassData]-500) > 1e-6 {
		t.Errorf("global-view limit = %g, want 500", r.Limit[wire.ClassData])
	}
}

func TestCoordinatedStaleAggregatesAgeOut(t *testing.T) {
	net := fastNet()
	stages := startStages(t, net, 4, 1, wire.Rates{1000, 0})
	ctx := context.Background()

	peers := make([]*Peer, 2)
	for i := range peers {
		p, err := StartPeer(PeerConfig{
			ID:         uint64(i + 1),
			Network:    net.Host(fmt.Sprintf("peer-%d", i+1)),
			Capacity:   wire.Rates{2000, 0},
			StaleAfter: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		peers[i] = p
	}
	for i, v := range stages {
		if err := peers[i%2].AddStage(ctx, v.Info()); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range peers {
		p.AddPeer(ctx, peers[1-i].ID(), peers[1-i].Addr())
	}

	// Exchange once: both see 4 stages, per-stage limit 500.
	peers[0].RunCycle(ctx)
	peers[1].RunCycle(ctx)
	peers[0].RunCycle(ctx)
	r, _ := stages[0].LastRule()
	if math.Abs(r.Limit[wire.ClassData]-500) > 1e-6 {
		t.Fatalf("pre-failure limit = %g, want 500", r.Limit[wire.ClassData])
	}

	// Peer 1 dies; after StaleAfter its demand stops counting and peer 0
	// reallocates the full capacity to its own stages.
	peers[1].Close()
	time.Sleep(150 * time.Millisecond)
	peers[0].RunCycle(ctx)
	r, _ = stages[0].LastRule()
	if math.Abs(r.Limit[wire.ClassData]-1000) > 1e-6 {
		t.Errorf("post-failure limit = %g, want 1000", r.Limit[wire.ClassData])
	}
}

func TestPeerDynamicRegistration(t *testing.T) {
	net := fastNet()
	p, err := StartPeer(PeerConfig{ID: 1, Network: net.Host("peer-1"), Capacity: wire.Rates{100, 10}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	v, err := stage.StartVirtual(stage.Config{ID: 1, JobID: 1, Weight: 1, Network: net.Host("stage-1")})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := stage.Register(context.Background(), net.Host("stage-1"), p.Addr(), v.Info()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if p.NumStages() != 1 {
		t.Errorf("stages = %d", p.NumStages())
	}
	if _, err := p.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPeerStageListQuery(t *testing.T) {
	net := fastNet()
	stages := startStages(t, net, 3, 1, wire.Rates{1, 1})
	peers := buildPeers(t, net, stages, 1, wire.Rates{100, 10})

	cli, err := rpc.Dial(context.Background(), net.Host("prober"), peers[0].Addr(), rpc.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Call(context.Background(), &wire.StageList{})
	if err != nil {
		t.Fatal(err)
	}
	list := resp.(*wire.StageListReply)
	if len(list.Stages) != 3 {
		t.Fatalf("stage list = %d entries", len(list.Stages))
	}
	if list.Stages[0].Addr == "" {
		t.Error("stage entry missing address")
	}
}

func TestPeerRejectsSelfAndDuplicates(t *testing.T) {
	net := fastNet()
	p, err := StartPeer(PeerConfig{ID: 1, Network: net.Host("peer-1"), Capacity: wire.Rates{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	q, err := StartPeer(PeerConfig{ID: 2, Network: net.Host("peer-2"), Capacity: wire.Rates{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	ctx := context.Background()
	if err := p.AddPeer(ctx, 1, p.Addr()); err == nil {
		t.Error("self-peering accepted")
	}
	if err := p.AddPeer(ctx, 2, q.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddPeer(ctx, 2, q.Addr()); err == nil {
		t.Error("duplicate peer accepted")
	}
}

func TestPeerNoStages(t *testing.T) {
	net := fastNet()
	p, err := StartPeer(PeerConfig{ID: 1, Network: net.Host("peer-1"), Capacity: wire.Rates{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.RunCycle(context.Background()); !errors.Is(err, ErrNoChildren) {
		t.Fatalf("RunCycle = %v, want ErrNoChildren", err)
	}
}

func TestPeerRunLoop(t *testing.T) {
	net := fastNet()
	stages := startStages(t, net, 4, 2, workloadRates())
	peers := buildPeers(t, net, stages, 2, wire.Rates{2000, 200})

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		peers[1].Run(ctx, 20*time.Millisecond)
		close(done)
	}()
	peers[0].Run(ctx, 20*time.Millisecond)
	<-done

	if peers[0].Recorder().Cycles() < 3 || peers[1].Recorder().Cycles() < 3 {
		t.Errorf("cycles = %d / %d", peers[0].Recorder().Cycles(), peers[1].Recorder().Cycles())
	}
	for i, v := range stages {
		if _, ok := v.LastRule(); !ok {
			t.Errorf("stage %d unruled after run loop", i)
		}
	}
	if peers[0].MemoryFootprint() == 0 {
		t.Error("zero memory footprint")
	}
}

func workloadRates() wire.Rates { return workload.Stress().Demand(0) }
