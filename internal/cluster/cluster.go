// Package cluster assembles complete in-process control-plane deployments:
// a simulated network, a fleet of virtual stages (one per simulated compute
// node, as the paper's experiments assume), optional aggregator tiers, and
// an instrumented global controller.
//
// It is the harness behind every reproduction experiment: "build a flat
// control plane over 2,500 nodes" or "build a hierarchy of 4 aggregators
// over 10,000 nodes" is one Build call.
package cluster

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/shard"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/store"
	"github.com/dsrhaslab/sdscale/internal/telemetry"
	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

// Topology selects the control-plane design under test.
type Topology int

// The two designs the paper studies, plus the coordinated flat design its
// §VI proposes as future work.
const (
	// Flat is the single global controller design (paper Fig. 2).
	Flat Topology = iota
	// Hierarchical adds a tier of aggregator controllers (paper Fig. 3).
	Hierarchical
	// Coordinated is the future-work flat design with multiple peer
	// controllers that exchange per-job aggregates to keep global
	// visibility without a hierarchy (paper §VI).
	Coordinated
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case Flat:
		return "flat"
	case Hierarchical:
		return "hierarchical"
	case Coordinated:
		return "coordinated"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// Config describes a deployment to build.
type Config struct {
	// Topology selects flat or hierarchical.
	Topology Topology
	// Stages is the number of virtual stages — "compute nodes" in the
	// paper's terminology, since each node runs exactly one stage (§III-B).
	Stages int
	// Jobs is the number of distinct jobs the stages are spread over.
	// Zero selects 16.
	Jobs int
	// Aggregators is the mid-tier controller count: aggregators for the
	// Hierarchical topology, peer controllers for the Coordinated one.
	// Zero selects ceil(Stages/2500), the minimum imposed by the
	// connection limit (§IV-B).
	Aggregators int
	// Shards partitions the fleet across this many concurrently active
	// global controllers (Flat topology only): each shard is a full
	// controller group — its own leader, and with Standbys set its own
	// per-shard quorum and stores — and a shard.Router is installed as the
	// routing tier (Cluster.Router). Zero or one keeps the single-Global
	// deployment.
	Shards int
	// Placement overrides the consistent-hash child placement when
	// Shards > 1: it must map every stage ID to a shard in [0, Shards).
	// Incompatible with Standbys (see validateSharded). Nil selects the
	// default ring.
	Placement func(childID uint64) int
	// VirtualNodes tunes the default placement ring's granularity
	// (Shards > 1 only); zero selects shard.DefaultVirtualNodes.
	VirtualNodes int
	// Workload generates per-stage demand. Nil selects the paper's stress
	// workload.
	Workload workload.Generator
	// Capacity is the administrator-configured PFS operation-rate maximum.
	// Zero selects Stages×{500, 50} (half the stress demand, keeping PSFA
	// in its saturated regime).
	Capacity wire.Rates
	// Algorithm is the control algorithm. Nil selects PSFA.
	Algorithm controlalg.Algorithm
	// FanOut bounds every controller's dispatch parallelism. Zero selects
	// the controller default.
	FanOut int
	// FanOutMode selects every controller's collect/enforce dispatch
	// strategy. The zero value pipelines requests over the child
	// connections; controller.FanOutBlocking restores the paper prototype's
	// bounded blocking pool (the paper-reproduction presets set it).
	FanOutMode controller.FanOutMode
	// ForwardRaw disables metric pre-aggregation at aggregators
	// (hierarchical only); see controller.AggregatorConfig.ForwardRaw.
	// Used by ablation benchmarks.
	ForwardRaw bool
	// Delegated enables the delegated hierarchy (paper §VI): the global
	// controller ships per-job budgets and aggregators compute per-stage
	// rules locally. Hierarchical only.
	Delegated bool
	// DeltaEnforcement makes the global controller skip enforce messages
	// whose rules did not change; see controller.GlobalConfig. Used by
	// ablation benchmarks (the paper's stress workload re-enforces
	// everything every cycle).
	DeltaEnforcement bool
	// Incremental switches every controller to the event-driven incremental
	// cycle (dirty-child tracking fed by stage push deltas; see
	// controller.GlobalConfig.Incremental) and arms the stage push loops.
	// With PushThreshold zero it defaults to DefaultPushThreshold. Requires
	// the default pipelined fan-out; with FanOutBlocking controllers keep
	// the paper-faithful full cycle.
	Incremental bool
	// IncrementalFloor bounds the age of a cached report before an
	// incremental cycle re-collects explicitly; see
	// controller.GlobalConfig.IncrementalFloor. Zero selects StaleAfter.
	IncrementalFloor time.Duration
	// PushThreshold, PushInterval and PushFloor tune the stage-side delta
	// push loops; see stage.Config. PushThreshold zero leaves push loops
	// off unless Incremental is set.
	PushThreshold float64
	PushInterval  time.Duration
	PushFloor     time.Duration
	// MaxCodec caps the wire codec version every component negotiates.
	// Zero selects the newest supported version; 1 pins the legacy v1
	// codec, which the codec ablation benchmarks use as their baseline.
	MaxCodec int
	// Net parameterizes the simulated network.
	Net simnet.Config
	// CallTimeout bounds child RPCs. Zero selects the controller default.
	CallTimeout time.Duration
	// MaxFailures, ProbeInterval, MaxProbeInterval, StaleAfter and
	// EvictAfter tune every controller's per-child circuit breaker; see
	// controller.GlobalConfig for their semantics. Zeros select the
	// controller defaults (EvictAfter zero = quarantine only, never evict).
	MaxFailures      int
	ProbeInterval    time.Duration
	MaxProbeInterval time.Duration
	StaleAfter       time.Duration
	EvictAfter       time.Duration
	// Standby deploys a warm-standby global controller on its own host
	// ("global-standby"): the primary replicates state to it every
	// SyncInterval, and every stage gets both controllers as its parent
	// list, so a primary crash leads to lease expiry, standby promotion,
	// and automatic stage re-homing. Flat topology only. Shorthand for
	// Standbys: 1.
	Standby bool
	// Standbys deploys this many warm standbys. With one, the lone standby
	// promotes directly on lease expiry (Standby's behaviour); with two or
	// more they form a leadership quorum — a candidate promotes only after
	// a majority of the controllers (primary plus standbys) grants its
	// epoch. Flat topology only.
	Standbys int
	// DataDir, when set, gives each global controller a durable
	// write-ahead store under DataDir/<host name> (see StoreDir):
	// membership, enforced rules, job weights, and leadership epochs and
	// votes survive a controller crash and feed cold-restart recovery.
	DataDir string
	// LeaseTimeout and SyncInterval tune failover detection (Standby
	// only); zeros select the controller defaults.
	LeaseTimeout time.Duration
	SyncInterval time.Duration
	// ParentTimeout is the stage-side upstream-silence threshold that
	// triggers re-homing (Standby only). Zero selects the stage default.
	ParentTimeout time.Duration
	// Tracing equips every controller (and the shared stage fleet) with a
	// span tracer, exposed via Cluster.Trace. Off by default: tracing costs
	// roughly one extra timestamp per sampled RPC and one atomic add per
	// unsampled one.
	Tracing bool
	// TraceCapacity is the per-tracer span-ring size (rounded up to a power
	// of two). Zero scales with the stage count, clamped to [4096, 65536].
	TraceCapacity int
	// TraceSample is the call-sampling rate: one call in TraceSample
	// (rounded up to a power of two) is timed and recorded as a span; the
	// rest are counted only. Zero selects DefaultTraceSample, which keeps
	// tracing inside its <2% cycle-time budget; 1 records every call (the
	// tracebreak experiment uses this for exact decompositions).
	TraceSample int
}

// DefaultTraceSample is the call-sampling rate used when Config.TraceSample
// is zero: 1 in 32 calls is timed, the rest are counted. At the default
// rate a traced control cycle stays within the 2% overhead budget even on
// single-core hosts (see the tracing-overhead test at the repo root).
const DefaultTraceSample = 32

// DefaultPushThreshold is the relative rate movement that triggers a stage
// push when Config.Incremental is set without an explicit PushThreshold: 5%,
// small enough that allocations track real demand shifts and large enough
// that sampling noise stays below it.
const DefaultPushThreshold = 0.05

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 16
	}
	if c.Jobs > c.Stages && c.Stages > 0 {
		c.Jobs = c.Stages
	}
	if c.Workload == nil {
		c.Workload = workload.Stress()
	}
	if c.Capacity.IsZero() {
		c.Capacity = wire.Rates{500, 50}.Scale(float64(c.Stages))
	}
	if c.Incremental && c.PushThreshold == 0 {
		c.PushThreshold = DefaultPushThreshold
	}
	if c.Standby && c.Standbys <= 0 {
		c.Standbys = 1
	}
	if c.Standbys > 0 {
		c.Standby = true
	}
	if (c.Topology == Hierarchical || c.Topology == Coordinated) && c.Aggregators <= 0 {
		c.Aggregators = (c.Stages + simnet.DefaultMaxConns - 1) / simnet.DefaultMaxConns
		if c.Aggregators < 1 {
			c.Aggregators = 1
		}
	}
	return c
}

// ClusterTrace groups a traced deployment's tracers. Controllers each get
// their own tracer (a tracer's cycle context is single-writer), while the
// whole stage fleet shares one: stage servers only record server spans,
// which never touch the context words.
type ClusterTrace struct {
	// Global traces the top-level controller (Flat/Hierarchical).
	Global *trace.Tracer
	// Standby traces the warm standby (Config.Standby only).
	Standby *trace.Tracer
	// Mid traces the mid tier, index-aligned with Cluster.Aggregators or
	// Cluster.Peers.
	Mid []*trace.Tracer
	// Stages is the tracer shared by every stage server.
	Stages *trace.Tracer
}

// Each calls fn for every non-nil tracer with a stable, unique name.
func (ct *ClusterTrace) Each(fn func(name string, tr *trace.Tracer)) {
	if ct == nil {
		return
	}
	if ct.Global != nil {
		fn("global", ct.Global)
	}
	if ct.Standby != nil {
		fn("standby", ct.Standby)
	}
	for i, tr := range ct.Mid {
		if tr != nil {
			fn(fmt.Sprintf("mid-%d", i+1), tr)
		}
	}
	if ct.Stages != nil {
		fn("stages", ct.Stages)
	}
}

// Roles groups the instrumentation of one controller role.
type Roles struct {
	// Meter accounts the role's network traffic.
	Meter *transport.Meter
	// CPU accounts the role's busy time.
	CPU *monitor.CPUMeter
}

// Cluster is a built deployment.
type Cluster struct {
	cfg Config

	// Net is the simulated network everything runs on.
	Net *simnet.Net
	// Global is the top-level controller (nil for Coordinated).
	Global *controller.Global
	// Standby is the first warm-standby global controller (Config.Standby
	// only); with a quorum it is Standbys[0].
	Standby *controller.Global
	// Standbys lists every warm standby, index-aligned with their hosts
	// (StandbyHost).
	Standbys []*controller.Global
	// Aggregators is the mid tier (Hierarchical only).
	Aggregators []*controller.Aggregator
	// Peers is the controller set of the Coordinated topology.
	Peers []*controller.Peer
	// Globals lists every shard leader, index-aligned with their shards
	// (Config.Shards > 1 only; the single-Global deployments use Global).
	Globals []*controller.Global
	// Router is the routing tier over the shard leaders (Config.Shards > 1
	// only): per-child routing, cross-shard fan-out, handoff, rebalance.
	Router *shard.Router
	// Stages is the virtual-stage fleet.
	Stages []*stage.Virtual

	// GlobalRole instruments the global controller.
	GlobalRole Roles
	// StandbyRole instruments the warm standby (Config.Standby only).
	StandbyRole Roles
	// AggregatorRoles instruments each aggregator, index-aligned with
	// Aggregators.
	AggregatorRoles []Roles
	// PeerRoles instruments each coordinated peer, index-aligned with
	// Peers.
	PeerRoles []Roles
	// ShardRoles instruments each shard leader, index-aligned with Globals.
	ShardRoles []Roles
	// Trace holds the deployment's tracers (Config.Tracing only).
	Trace *ClusterTrace

	// recorder accumulates round latency for Coordinated clusters (flat
	// and hierarchical clusters use the global controller's recorder).
	recorder *telemetry.CycleRecorder

	// aggSeq and stageSeq are the next aggregator ordinal and stage index
	// the elastic surface (see elastic.go) mints: monotonic, so a grown
	// component never reuses the host or ID of a shrunken one.
	aggSeq   int
	stageSeq uint64
}

// Build assembles and connects a deployment. On error, everything already
// started is torn down.
func Build(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Stages <= 0 {
		return nil, fmt.Errorf("cluster: need at least one stage, got %d", cfg.Stages)
	}
	if err := validateSharded(cfg); err != nil {
		return nil, err
	}
	c := &Cluster{cfg: cfg, Net: simnet.New(cfg.Net)}
	if err := c.build(); err != nil {
		c.Close()
		return nil, err
	}
	c.aggSeq = len(c.Aggregators)
	c.stageSeq = uint64(cfg.Stages)
	return c, nil
}

// traceCapacity is the per-tracer span-ring size: explicit, or scaled with
// the stage fleet (a 10k-stage cycle records >20k call spans) and clamped.
func (c Config) traceCapacity() int {
	if c.TraceCapacity > 0 {
		return c.TraceCapacity
	}
	n := 4 * c.Stages
	if n < 4096 {
		n = 4096
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	return n
}

// newTracer mints a tracer when tracing is enabled, else nil (which every
// trace call site treats as "off").
func (c *Cluster) newTracer() *trace.Tracer {
	if !c.cfg.Tracing {
		return nil
	}
	tr := trace.New(c.cfg.traceCapacity())
	every := c.cfg.TraceSample
	if every <= 0 {
		every = DefaultTraceSample
	}
	tr.SetSampleEvery(every)
	return tr
}

// stageTracer is the tracer shared by the whole stage fleet, nil when
// tracing is off.
func (c *Cluster) stageTracer() *trace.Tracer {
	if c.Trace == nil {
		return nil
	}
	return c.Trace.Stages
}

func (c *Cluster) build() error {
	cfg := c.cfg
	ctx := context.Background()
	c.recorder = telemetry.NewCycleRecorder()
	if cfg.Tracing {
		c.Trace = &ClusterTrace{Stages: c.newTracer()}
	}

	if cfg.Shards > 1 {
		return c.buildSharded()
	}

	if cfg.Standby {
		if cfg.Topology != Flat {
			return fmt.Errorf("cluster: standby failover is only supported for the flat topology, not %v", cfg.Topology)
		}
		return c.buildFlatStandby()
	}

	// One simulated host per stage: the paper deploys 50 virtual stages
	// per physical node but treats each as its own compute node (§III-D).
	for i := 0; i < cfg.Stages; i++ {
		v, err := stage.StartVirtual(stage.Config{
			ID:            uint64(i + 1),
			JobID:         uint64(i%cfg.Jobs + 1),
			Weight:        1,
			Generator:     cfg.Workload,
			Network:       c.Net.Host(fmt.Sprintf("stage-%d", i+1)),
			Tracer:        c.stageTracer(),
			MaxCodec:      cfg.MaxCodec,
			PushThreshold: cfg.PushThreshold,
			PushInterval:  cfg.PushInterval,
			PushFloor:     cfg.PushFloor,
		})
		if err != nil {
			return fmt.Errorf("cluster: stage %d: %w", i+1, err)
		}
		c.Stages = append(c.Stages, v)
	}

	if cfg.Topology == Coordinated {
		return c.buildCoordinated(ctx)
	}

	c.GlobalRole = Roles{Meter: &transport.Meter{}, CPU: &monitor.CPUMeter{}}
	gcfg := controller.GlobalConfig{
		Network:          c.Net.Host("global"),
		Capacity:         cfg.Capacity,
		Algorithm:        cfg.Algorithm,
		FanOut:           cfg.FanOut,
		FanOutMode:       cfg.FanOutMode,
		CallTimeout:      cfg.CallTimeout,
		MaxCodec:         cfg.MaxCodec,
		Delegated:        cfg.Delegated,
		DeltaEnforcement: cfg.DeltaEnforcement,
		Incremental:      cfg.Incremental,
		IncrementalFloor: cfg.IncrementalFloor,
		MaxFailures:      cfg.MaxFailures,
		ProbeInterval:    cfg.ProbeInterval,
		MaxProbeInterval: cfg.MaxProbeInterval,
		StaleAfter:       cfg.StaleAfter,
		EvictAfter:       cfg.EvictAfter,
		Meter:            c.GlobalRole.Meter,
		CPU:              c.GlobalRole.CPU,
	}
	if c.Trace != nil {
		c.Trace.Global = c.newTracer()
		gcfg.Tracer = c.Trace.Global
	}
	gst, err := c.openStore("global")
	if err != nil {
		return err
	}
	gcfg.Store = gst
	gcfg.ID = 1
	g, err := controller.NewGlobal(gcfg)
	if err != nil {
		if gst != nil {
			gst.Close()
		}
		return err
	}
	c.Global = g

	switch cfg.Topology {
	case Flat:
		for _, v := range c.Stages {
			if err := g.AddStage(ctx, v.Info()); err != nil {
				return fmt.Errorf("cluster: flat attach: %w", err)
			}
		}
	case Hierarchical:
		// Partition stages into contiguous disjoint sets, as the paper
		// does (each aggregator owns Stages/Aggregators nodes).
		per := (cfg.Stages + cfg.Aggregators - 1) / cfg.Aggregators
		for a := 0; a < cfg.Aggregators; a++ {
			role := Roles{Meter: &transport.Meter{}, CPU: &monitor.CPUMeter{}}
			var midTracer *trace.Tracer
			if c.Trace != nil {
				midTracer = c.newTracer()
				c.Trace.Mid = append(c.Trace.Mid, midTracer)
			}
			agg, err := controller.StartAggregator(controller.AggregatorConfig{
				ID:               uint64(1_000_000 + a),
				Network:          c.Net.Host(fmt.Sprintf("agg-%d", a+1)),
				FanOut:           cfg.FanOut,
				FanOutMode:       cfg.FanOutMode,
				CallTimeout:      cfg.CallTimeout,
				MaxCodec:         cfg.MaxCodec,
				ForwardRaw:       cfg.ForwardRaw,
				LocalControl:     cfg.Delegated,
				Incremental:      cfg.Incremental,
				IncrementalFloor: cfg.IncrementalFloor,
				MaxFailures:      cfg.MaxFailures,
				ProbeInterval:    cfg.ProbeInterval,
				MaxProbeInterval: cfg.MaxProbeInterval,
				StaleAfter:       cfg.StaleAfter,
				EvictAfter:       cfg.EvictAfter,
				Meter:            role.Meter,
				CPU:              role.CPU,
				Tracer:           midTracer,
			})
			if err != nil {
				return fmt.Errorf("cluster: aggregator %d: %w", a, err)
			}
			c.Aggregators = append(c.Aggregators, agg)
			c.AggregatorRoles = append(c.AggregatorRoles, role)

			lo := a * per
			hi := lo + per
			if hi > cfg.Stages {
				hi = cfg.Stages
			}
			for _, v := range c.Stages[lo:hi] {
				if err := agg.AddStage(ctx, v.Info()); err != nil {
					return fmt.Errorf("cluster: aggregator %d attach: %w", a, err)
				}
			}
			if err := g.AddAggregator(ctx, agg.ID(), agg.Addr(), agg.Stages()); err != nil {
				return fmt.Errorf("cluster: attach aggregator %d: %w", a, err)
			}
		}
	default:
		return fmt.Errorf("cluster: unknown topology %v", cfg.Topology)
	}
	return nil
}

// quorumPort is the fixed registration port every controller in a standby
// deployment listens on: with deterministic host names, every quorum member
// knows its peers' addresses before any of them exists.
const quorumPort = ":41000"

// StandbyHost returns the simulated-network host name of the i-th (0-based)
// warm standby.
func StandbyHost(i int) string {
	if i == 0 {
		return "global-standby"
	}
	return fmt.Sprintf("global-standby-%d", i+1)
}

// StoreDir returns the directory the named controller host persists its
// write-ahead store under when Config.DataDir is set — the path to reopen
// for cold-restart recovery after the whole control plane dies.
func StoreDir(dataDir, host string) string { return filepath.Join(dataDir, host) }

// openStore opens the durable store for one controller host, or returns nil
// when the deployment runs without a DataDir.
func (c *Cluster) openStore(host string) (*store.Store, error) {
	if c.cfg.DataDir == "" {
		return nil, nil
	}
	st, err := store.Open(store.Options{Dir: StoreDir(c.cfg.DataDir, host)})
	if err != nil {
		return nil, fmt.Errorf("cluster: store for %s: %w", host, err)
	}
	return st, nil
}

// buildFlatStandby wires a flat control plane with warm standbys: standbys
// first (so the primary can replicate to them from its first sync), then
// the primary at leadership epoch 1, then the stage fleet — which registers
// dynamically through its parent address list rather than being attached by
// the builder, exactly the path re-homing uses after a failover. With two
// or more standbys every controller learns the full quorum membership, so
// lease expiry leads to a majority election instead of direct promotion.
func (c *Cluster) buildFlatStandby() error {
	cfg := c.cfg
	base := controller.GlobalConfig{
		ListenAddr:       quorumPort,
		Capacity:         cfg.Capacity,
		Algorithm:        cfg.Algorithm,
		FanOut:           cfg.FanOut,
		FanOutMode:       cfg.FanOutMode,
		CallTimeout:      cfg.CallTimeout,
		MaxCodec:         cfg.MaxCodec,
		DeltaEnforcement: cfg.DeltaEnforcement,
		Incremental:      cfg.Incremental,
		IncrementalFloor: cfg.IncrementalFloor,
		MaxFailures:      cfg.MaxFailures,
		ProbeInterval:    cfg.ProbeInterval,
		MaxProbeInterval: cfg.MaxProbeInterval,
		StaleAfter:       cfg.StaleAfter,
		EvictAfter:       cfg.EvictAfter,
		LeaseTimeout:     cfg.LeaseTimeout,
		SyncInterval:     cfg.SyncInterval,
	}

	primaryAddr := "global" + quorumPort
	sbAddrs := make([]string, cfg.Standbys)
	for i := range sbAddrs {
		sbAddrs[i] = StandbyHost(i) + quorumPort
	}

	for i := 0; i < cfg.Standbys; i++ {
		host := StandbyHost(i)
		role := Roles{Meter: &transport.Meter{}, CPU: &monitor.CPUMeter{}}
		scfg := base
		scfg.Network = c.Net.Host(host)
		scfg.ID = uint64(i + 2)
		scfg.Standby = true
		if cfg.Standbys > 1 {
			// Quorum membership: the primary plus the other standbys. A
			// lone standby keeps the empty list and with it the direct
			// promote-on-expiry behaviour.
			peers := []string{primaryAddr}
			for j, a := range sbAddrs {
				if j != i {
					peers = append(peers, a)
				}
			}
			scfg.StandbyAddrs = peers
		}
		st, err := c.openStore(host)
		if err != nil {
			return err
		}
		scfg.Store = st
		scfg.Meter = role.Meter
		scfg.CPU = role.CPU
		if c.Trace != nil && i == 0 {
			c.Trace.Standby = c.newTracer()
			scfg.Tracer = c.Trace.Standby
		}
		sb, err := controller.NewGlobal(scfg)
		if err != nil {
			if st != nil {
				st.Close()
			}
			return fmt.Errorf("cluster: standby %d: %w", i+1, err)
		}
		c.Standbys = append(c.Standbys, sb)
		if i == 0 {
			c.Standby = sb
			c.StandbyRole = role
		}
	}

	c.GlobalRole = Roles{Meter: &transport.Meter{}, CPU: &monitor.CPUMeter{}}
	gcfg := base
	gcfg.Network = c.Net.Host("global")
	gcfg.ID = 1
	gcfg.Epoch = 1
	gcfg.StandbyAddrs = sbAddrs
	gst, err := c.openStore("global")
	if err != nil {
		return err
	}
	gcfg.Store = gst
	gcfg.Meter = c.GlobalRole.Meter
	gcfg.CPU = c.GlobalRole.CPU
	if c.Trace != nil {
		c.Trace.Global = c.newTracer()
		gcfg.Tracer = c.Trace.Global
	}
	g, err := controller.NewGlobal(gcfg)
	if err != nil {
		if gst != nil {
			gst.Close()
		}
		return err
	}
	c.Global = g

	parents := make([]string, 0, 1+len(c.Standbys))
	parents = append(parents, g.Addr())
	for _, sb := range c.Standbys {
		parents = append(parents, sb.Addr())
	}
	for i := 0; i < cfg.Stages; i++ {
		v, err := stage.StartVirtual(stage.Config{
			ID:            uint64(i + 1),
			JobID:         uint64(i%cfg.Jobs + 1),
			Weight:        1,
			Generator:     cfg.Workload,
			Network:       c.Net.Host(fmt.Sprintf("stage-%d", i+1)),
			Parents:       parents,
			ParentTimeout: cfg.ParentTimeout,
			Tracer:        c.stageTracer(),
			MaxCodec:      cfg.MaxCodec,
			PushThreshold: cfg.PushThreshold,
			PushInterval:  cfg.PushInterval,
			PushFloor:     cfg.PushFloor,
		})
		if err != nil {
			return fmt.Errorf("cluster: stage %d: %w", i+1, err)
		}
		c.Stages = append(c.Stages, v)
	}

	// Registration is asynchronous; wait until the primary owns the fleet.
	deadline := time.Now().Add(10 * time.Second)
	for g.NumChildren() < cfg.Stages {
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: only %d/%d stages registered with the primary", g.NumChildren(), cfg.Stages)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// buildCoordinated wires the future-work design: a full mesh of peer
// controllers, each owning a disjoint partition of the stages.
func (c *Cluster) buildCoordinated(ctx context.Context) error {
	cfg := c.cfg
	per := (cfg.Stages + cfg.Aggregators - 1) / cfg.Aggregators
	for i := 0; i < cfg.Aggregators; i++ {
		role := Roles{Meter: &transport.Meter{}, CPU: &monitor.CPUMeter{}}
		var midTracer *trace.Tracer
		if c.Trace != nil {
			midTracer = c.newTracer()
			c.Trace.Mid = append(c.Trace.Mid, midTracer)
		}
		p, err := controller.StartPeer(controller.PeerConfig{
			ID:               uint64(2_000_000 + i),
			Network:          c.Net.Host(fmt.Sprintf("peer-%d", i+1)),
			Algorithm:        cfg.Algorithm,
			Capacity:         cfg.Capacity,
			FanOut:           cfg.FanOut,
			FanOutMode:       cfg.FanOutMode,
			CallTimeout:      cfg.CallTimeout,
			MaxCodec:         cfg.MaxCodec,
			Incremental:      cfg.Incremental,
			IncrementalFloor: cfg.IncrementalFloor,
			MaxFailures:      cfg.MaxFailures,
			ProbeInterval:    cfg.ProbeInterval,
			MaxProbeInterval: cfg.MaxProbeInterval,
			StaleAfter:       cfg.StaleAfter,
			EvictAfter:       cfg.EvictAfter,
			Meter:            role.Meter,
			CPU:              role.CPU,
			Tracer:           midTracer,
		})
		if err != nil {
			return fmt.Errorf("cluster: peer %d: %w", i, err)
		}
		c.Peers = append(c.Peers, p)
		c.PeerRoles = append(c.PeerRoles, role)

		lo := i * per
		hi := lo + per
		if hi > cfg.Stages {
			hi = cfg.Stages
		}
		for _, v := range c.Stages[lo:hi] {
			if err := p.AddStage(ctx, v.Info()); err != nil {
				return fmt.Errorf("cluster: peer %d attach: %w", i, err)
			}
		}
	}
	// Full mesh.
	for _, p := range c.Peers {
		for _, q := range c.Peers {
			if p.ID() == q.ID() {
				continue
			}
			if err := p.AddPeer(ctx, q.ID(), q.Addr()); err != nil {
				return fmt.Errorf("cluster: mesh: %w", err)
			}
		}
	}
	return nil
}

// Config returns the (defaulted) configuration the cluster was built from.
func (c *Cluster) Config() Config { return c.cfg }

// RunControlCycle executes one control round across the whole deployment:
// the global controller's cycle (Flat/Hierarchical), one concurrent cycle
// on every shard leader (Shards > 1, merged as per-phase maxima since the
// shards overlap in time), or one concurrent cycle on every peer
// (Coordinated, recorded as the peers' mean).
func (c *Cluster) RunControlCycle(ctx context.Context) (telemetry.Breakdown, error) {
	if c.Router != nil {
		b, err := c.Router.RunCycle(ctx)
		if err == nil {
			c.recorder.Record(b)
		}
		return b, err
	}
	if c.Global != nil {
		return c.Global.RunCycle(ctx)
	}
	n := len(c.Peers)
	if n == 0 {
		return telemetry.Breakdown{}, controller.ErrNoChildren
	}
	breakdowns := make([]telemetry.Breakdown, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, p := range c.Peers {
		wg.Add(1)
		go func(i int, p *controller.Peer) {
			defer wg.Done()
			breakdowns[i], errs[i] = p.RunCycle(ctx)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return telemetry.Breakdown{}, err
		}
	}
	var mean telemetry.Breakdown
	for _, b := range breakdowns {
		mean.Collect += b.Collect
		mean.Compute += b.Compute
		mean.Enforce += b.Enforce
		mean.Total += b.Total
	}
	mean.Collect /= time.Duration(n)
	mean.Compute /= time.Duration(n)
	mean.Enforce /= time.Duration(n)
	mean.Total /= time.Duration(n)
	c.recorder.Record(mean)
	return mean, nil
}

// Recorder returns the deployment's control-round latency recorder.
func (c *Cluster) Recorder() *telemetry.CycleRecorder {
	if c.Global != nil {
		return c.Global.Recorder()
	}
	return c.recorder
}

// Close tears the whole deployment down.
func (c *Cluster) Close() {
	if c.Global != nil {
		c.Global.Close()
	}
	for _, g := range c.Globals {
		g.Close()
	}
	for _, sb := range c.Standbys {
		sb.Close()
	}
	for _, a := range c.Aggregators {
		a.Close()
	}
	for _, p := range c.Peers {
		p.Close()
	}
	for _, v := range c.Stages {
		v.Close()
	}
}

// RoleUsage is one controller role's resource consumption over a window —
// one row block of the paper's Tables II-IV.
type RoleUsage struct {
	// CPUPercent is busy time over the window (100 = one core).
	CPUPercent float64
	// MemBytes is the role's estimated state size.
	MemBytes uint64
	// TxMBps and RxMBps are average send/receive rates in MB/s.
	TxMBps, RxMBps float64
}

// MemGB returns memory in decimal gigabytes.
func (u RoleUsage) MemGB() float64 { return float64(u.MemBytes) / 1e9 }

// UsageCollector measures role resource usage between Start and Stop.
type UsageCollector struct {
	cluster *Cluster
	start   time.Time

	gTx, gRx   uint64
	gBusy      time.Duration
	aTx, aRx   []uint64
	aBusy      []time.Duration
	stagesMem  uint64
	collecting bool
}

// NewUsageCollector creates a collector for the cluster.
func NewUsageCollector(c *Cluster) *UsageCollector {
	return &UsageCollector{cluster: c}
}

// midTier returns the cluster's mid-tier roles and their memory reporters:
// aggregators for Hierarchical, peer controllers for Coordinated.
func (c *Cluster) midTier() ([]Roles, []monitor.MemoryReporter) {
	if len(c.Peers) > 0 {
		reporters := make([]monitor.MemoryReporter, len(c.Peers))
		for i, p := range c.Peers {
			reporters[i] = p
		}
		return c.PeerRoles, reporters
	}
	reporters := make([]monitor.MemoryReporter, len(c.Aggregators))
	for i, a := range c.Aggregators {
		reporters[i] = a
	}
	return c.AggregatorRoles, reporters
}

// Start snapshots all meters, opening the measurement window.
func (u *UsageCollector) Start() {
	c := u.cluster
	u.start = time.Now()
	if c.Global != nil {
		u.gTx, u.gRx = c.GlobalRole.Meter.Snapshot()
		u.gBusy = c.GlobalRole.CPU.Busy()
	}
	u.aTx = u.aTx[:0]
	u.aRx = u.aRx[:0]
	u.aBusy = u.aBusy[:0]
	roles, _ := c.midTier()
	for _, r := range roles {
		tx, rx := r.Meter.Snapshot()
		u.aTx = append(u.aTx, tx)
		u.aRx = append(u.aRx, rx)
		u.aBusy = append(u.aBusy, r.CPU.Busy())
	}
	u.collecting = true
}

// Stop closes the window and reports the global controller's usage (zero
// for Coordinated clusters, which have none) plus the mean per-mid-tier
// controller usage, matching the paper's table layout ("average resource
// consumption per aggregator controller").
func (u *UsageCollector) Stop() (global RoleUsage, aggregator RoleUsage, elapsed time.Duration) {
	if !u.collecting {
		return RoleUsage{}, RoleUsage{}, 0
	}
	u.collecting = false
	c := u.cluster
	elapsed = time.Since(u.start)

	if c.Global != nil {
		tx, rx := c.GlobalRole.Meter.Snapshot()
		global = RoleUsage{
			CPUPercent: pct(c.GlobalRole.CPU.Busy()-u.gBusy, elapsed),
			MemBytes:   c.Global.MemoryFootprint(),
			TxMBps:     transport.Rate(tx-u.gTx, elapsed),
			RxMBps:     transport.Rate(rx-u.gRx, elapsed),
		}
	}

	roles, reporters := c.midTier()
	n := len(roles)
	if n == 0 {
		return global, RoleUsage{}, elapsed
	}
	for i, r := range roles {
		atx, arx := r.Meter.Snapshot()
		aggregator.CPUPercent += pct(r.CPU.Busy()-u.aBusy[i], elapsed)
		aggregator.MemBytes += reporters[i].MemoryFootprint()
		aggregator.TxMBps += transport.Rate(atx-u.aTx[i], elapsed)
		aggregator.RxMBps += transport.Rate(arx-u.aRx[i], elapsed)
	}
	aggregator.CPUPercent /= float64(n)
	aggregator.MemBytes /= uint64(n)
	aggregator.TxMBps /= float64(n)
	aggregator.RxMBps /= float64(n)
	return global, aggregator, elapsed
}

func pct(busy, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	p := 100 * float64(busy) / float64(elapsed)
	if p < 0 {
		return 0
	}
	return p
}
