package simnet

import (
	"context"
	"sort"
	"sync"
	"time"
)

// FaultAction is one kind of scripted fault.
type FaultAction int

// Fault actions applicable to a host.
const (
	// FaultPartition isolates the host: established connections are
	// severed and future dials from/to it fail until FaultHeal.
	FaultPartition FaultAction = iota
	// FaultHeal ends a partition; subsequent dials succeed again.
	FaultHeal
	// FaultKillConns severs the host's established connections once,
	// without partitioning it (dials keep working).
	FaultKillConns
	// FaultCrash kills the host for good: established connections are
	// severed and future dials fail, like FaultPartition, but the crash is
	// permanent — Stop does NOT heal it. Use it to model a process that
	// dies mid-run (e.g. a primary controller in a failover experiment);
	// an explicit FaultHeal later models a restart.
	FaultCrash
)

// String renders the action for logs.
func (a FaultAction) String() string {
	switch a {
	case FaultPartition:
		return "partition"
	case FaultHeal:
		return "heal"
	case FaultKillConns:
		return "kill-conns"
	case FaultCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// FaultEvent is one entry in a fault schedule: at offset At from schedule
// start, apply Action to the named Host.
type FaultEvent struct {
	// At is the offset from schedule start at which the event fires.
	At time.Duration
	// Host names the target host (created on first use if absent).
	Host string
	// Action is the fault to apply.
	Action FaultAction
}

// FlapSchedule builds a schedule that partitions each named host at its
// staggered offset and heals it after downFor, repeating every period for
// the given number of rounds. Hosts are staggered evenly across the period
// so the whole set is never down at once. It is a convenience for chaos
// experiments that want "X% of hosts flapping".
func FlapSchedule(hosts []string, start, downFor, period time.Duration, rounds int) []FaultEvent {
	var events []FaultEvent
	if len(hosts) == 0 || rounds <= 0 {
		return events
	}
	stagger := period / time.Duration(len(hosts))
	for r := 0; r < rounds; r++ {
		base := start + time.Duration(r)*period
		for i, h := range hosts {
			down := base + time.Duration(i)*stagger
			events = append(events, FaultEvent{At: down, Host: h, Action: FaultPartition})
			events = append(events, FaultEvent{At: down + downFor, Host: h, Action: FaultHeal})
		}
	}
	return events
}

// FaultSchedule replays a list of FaultEvents against the network's hosts
// in real time. Create one with Net.Schedule, then Stop or Wait it.
type FaultSchedule struct {
	net    *Net
	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	applied int
}

// Schedule starts replaying events against the network. Events are applied
// in At order from the moment Schedule returns; out-of-order input is
// sorted. The returned schedule runs until all events fired or Stop is
// called. Stopping mid-run heals every host the schedule partitioned and
// did not yet heal, so a test teardown cannot leak a partition.
func (n *Net) Schedule(events []FaultEvent) *FaultSchedule {
	evs := make([]FaultEvent, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	ctx, cancel := context.WithCancel(context.Background())
	s := &FaultSchedule{net: n, cancel: cancel, done: make(chan struct{})}
	go s.run(ctx, evs)
	return s
}

func (s *FaultSchedule) run(ctx context.Context, events []FaultEvent) {
	defer close(s.done)
	start := time.Now()
	down := make(map[string]bool) // hosts this schedule partitioned
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for _, ev := range events {
		if wait := ev.At - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				s.healAll(down)
				return
			}
		} else if ctx.Err() != nil {
			s.healAll(down)
			return
		}
		h := s.net.Host(ev.Host)
		switch ev.Action {
		case FaultPartition:
			h.SetPartitioned(true)
			down[ev.Host] = true
		case FaultHeal:
			h.SetPartitioned(false)
			delete(down, ev.Host)
		case FaultKillConns:
			h.KillConns()
		case FaultCrash:
			// Permanent: deliberately not tracked in down, so Stop's
			// healAll leaves the host dead.
			h.SetPartitioned(true)
			h.KillConns()
		}
		s.mu.Lock()
		s.applied++
		s.mu.Unlock()
	}
}

// healAll clears partitions the schedule introduced but never healed.
func (s *FaultSchedule) healAll(down map[string]bool) {
	for name := range down {
		s.net.Host(name).SetPartitioned(false)
	}
}

// Applied returns how many events have fired so far.
func (s *FaultSchedule) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Wait blocks until every event has fired (or the schedule was stopped).
func (s *FaultSchedule) Wait() { <-s.done }

// Stop aborts the schedule, healing any partition it introduced and did
// not yet heal, and waits for the runner to exit.
func (s *FaultSchedule) Stop() {
	s.cancel()
	<-s.done
}
