package monitor

import (
	"sync"
	"testing"
	"time"
)

func TestReadProcStat(t *testing.T) {
	st := ReadProcStat()
	if st.RSSBytes == 0 {
		t.Error("RSSBytes = 0; even the fallback should report heap usage")
	}
	if st.When.IsZero() {
		t.Error("When is zero")
	}
}

func TestProcStatCPUAdvances(t *testing.T) {
	a := ReadProcStat()
	// Burn CPU long enough for at least one 10ms kernel tick.
	deadline := time.Now().Add(50 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x += i * i
		}
	}
	_ = x
	b := ReadProcStat()
	if b.CPUTime < a.CPUTime {
		t.Errorf("CPU time went backwards: %v -> %v", a.CPUTime, b.CPUTime)
	}
}

func TestProcessMonitor(t *testing.T) {
	var m ProcessMonitor
	m.Start()
	deadline := time.Now().Add(60 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x += i * i
		}
	}
	_ = x
	u := m.Stop()
	if u.Elapsed < 50*time.Millisecond {
		t.Errorf("Elapsed = %v, want >= ~60ms", u.Elapsed)
	}
	if u.MemBytes == 0 {
		t.Error("MemBytes = 0")
	}
	if u.CPUPercent < 0 {
		t.Errorf("CPUPercent = %g", u.CPUPercent)
	}
}

func TestUsageMemGB(t *testing.T) {
	u := Usage{MemBytes: 3_520_000_000}
	if got := u.MemGB(); got != 3.52 {
		t.Errorf("MemGB = %g, want 3.52", got)
	}
}

func TestCPUMeterTrack(t *testing.T) {
	var c CPUMeter
	stop := c.Track()
	time.Sleep(20 * time.Millisecond)
	stop()
	if b := c.Busy(); b < 15*time.Millisecond {
		t.Errorf("Busy = %v, want >= ~20ms", b)
	}
}

func TestCPUMeterPercent(t *testing.T) {
	var c CPUMeter
	c.Add(50 * time.Millisecond)
	if got := c.Percent(100 * time.Millisecond); got != 50 {
		t.Errorf("Percent = %g, want 50", got)
	}
	if got := c.Percent(0); got != 0 {
		t.Errorf("Percent(0) = %g, want 0", got)
	}
	if got := c.Percent(-time.Second); got != 0 {
		t.Errorf("Percent(<0) = %g, want 0", got)
	}
}

func TestCPUMeterReset(t *testing.T) {
	var c CPUMeter
	c.Add(time.Second)
	c.Reset()
	if c.Busy() != 0 {
		t.Error("Reset did not clear busy time")
	}
}

func TestCPUMeterConcurrent(t *testing.T) {
	var c CPUMeter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Busy(); got != 800*time.Millisecond {
		t.Errorf("Busy = %v, want 800ms", got)
	}
}
