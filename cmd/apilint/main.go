// Command apilint flags uses of deprecated sdscale API inside the
// repository itself.
//
// The façade keeps old per-counter accessors (Global.NumQuarantined,
// Aggregator.ReHomes, ...) as deprecated delegating wrappers so downstream
// users migrate on their own schedule — but the repository's own code must
// not keep exercising them, or the deprecation never completes. gofmt-style
// name matching cannot tell Global.FencedCalls (deprecated) from
// VirtualStage.FencedCalls (current API), so apilint resolves real types:
//
//  1. Parse every module package and collect functions and methods whose
//     doc comment carries a "Deprecated:" paragraph (the standard godoc
//     convention) — the deprecated set is discovered, never hardcoded.
//  2. Type-check every module package against export data from
//     `go list -deps -export -json` (stdlib tooling only) and report each
//     reference that resolves to a member of that set.
//
// The declaring package is exempt (the wrappers must reference themselves),
// as are _test.go files (tests pin the wrappers' delegation on purpose).
//
// Usage:
//
//	go run ./cmd/apilint [packages]   # default ./...
//
// Exit status: 0 clean, 1 deprecated uses found, 2 operational errors.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apilint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "apilint: %d use(s) of deprecated API\n", len(findings))
		os.Exit(1)
	}
}

// listedPackage is the subset of `go list -json` output apilint needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

func run(patterns []string) ([]string, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	// Module packages are the ones we parse; everything else is imported
	// from export data.
	var module []*listedPackage
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.Standard {
			module = append(module, p)
		}
	}
	sort.Slice(module, func(i, j int) bool { return module[i].ImportPath < module[j].ImportPath })

	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File, len(module))
	for _, p := range module {
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			parsed[p.ImportPath] = append(parsed[p.ImportPath], f)
		}
	}

	deprecated := collectDeprecated(parsed)
	if len(deprecated) == 0 {
		return nil, nil
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var findings []string
	for _, p := range module {
		files := parsed[p.ImportPath]
		info := &types.Info{
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Uses:       make(map[*ast.Ident]types.Object),
		}
		conf := types.Config{Importer: imp}
		if _, err := conf.Check(p.ImportPath, fset, files, info); err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		for sel, selection := range info.Selections {
			if selection.Kind() != types.MethodVal && selection.Kind() != types.MethodExpr {
				continue
			}
			obj := selection.Obj()
			key := methodKey(obj)
			note, ok := deprecated[key]
			if !ok || obj.Pkg() == nil || obj.Pkg().Path() == p.ImportPath {
				continue
			}
			pos := fset.Position(sel.Sel.Pos())
			findings = append(findings, fmt.Sprintf("%s: %s is deprecated: %s", rel(pos), key, note))
		}
		for id, obj := range info.Uses {
			fn, ok := obj.(*types.Func)
			if !ok || fn.Type().(*types.Signature).Recv() != nil {
				continue // methods are handled via Selections
			}
			note, ok := deprecated[methodKey(fn)]
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() == p.ImportPath {
				continue
			}
			pos := fset.Position(id.Pos())
			findings = append(findings, fmt.Sprintf("%s: %s is deprecated: %s", rel(pos), methodKey(fn), note))
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// collectDeprecated walks the parsed module packages and returns
// key → deprecation note for every function or method whose doc comment
// contains a "Deprecated:" paragraph. Keys match methodKey's format.
func collectDeprecated(parsed map[string][]*ast.File) map[string]string {
	out := make(map[string]string)
	for pkgPath, files := range parsed {
		for _, f := range files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Doc == nil {
					continue
				}
				note, ok := deprecationNote(fn.Doc.Text())
				if !ok {
					continue
				}
				key := pkgPath + "." + fn.Name.Name
				if fn.Recv != nil && len(fn.Recv.List) == 1 {
					key = pkgPath + "." + recvTypeName(fn.Recv.List[0].Type) + "." + fn.Name.Name
				}
				out[key] = note
			}
		}
	}
	return out
}

// deprecationNote extracts the text of a doc comment's Deprecated paragraph,
// per the godoc convention (a paragraph starting with "Deprecated: ").
func deprecationNote(doc string) (string, bool) {
	for _, para := range strings.Split(doc, "\n\n") {
		para = strings.TrimSpace(strings.ReplaceAll(para, "\n", " "))
		if rest, ok := strings.CutPrefix(para, "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	}
	return "?"
}

// methodKey renders a types.Func as pkgpath.Recv.Name (or pkgpath.Name for
// plain functions), matching collectDeprecated's keys.
func methodKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

func rel(pos token.Position) string {
	if wd, err := os.Getwd(); err == nil {
		if r, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			return fmt.Sprintf("%s:%d:%d", r, pos.Line, pos.Column)
		}
	}
	return pos.String()
}

// goList runs `go list -deps -export -json` over the patterns and decodes
// the package stream. -export compiles (cached) export data for every
// package, which is what lets apilint type-check without loading any
// dependency from source.
func goList(patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}
