package controller

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

// Dirty-set edge cases for the event-driven incremental cycle: push sequence
// ordering, the quiesced fast path, heartbeat-floor expiry, pushes racing
// quarantine and readmission, re-registration invalidation, and a -race
// stress of concurrent pushes against in-flight cycles.

// startPushStages is startStages with the event-driven push pipeline turned
// on: tight sampling so threshold crossings and heartbeat floors both fire
// within a short test.
func startPushStages(t *testing.T, n *simnet.Net, count, nJobs int, gen func(i int) workload.Generator) []*stage.Virtual {
	t.Helper()
	stages := make([]*stage.Virtual, count)
	for i := range stages {
		v, err := stage.StartVirtual(stage.Config{
			ID:            uint64(i + 1),
			JobID:         uint64(i%nJobs + 1),
			Weight:        1,
			Generator:     gen(i),
			Network:       n.Host(fmt.Sprintf("stage-%d", i+1)),
			PushThreshold: 0.01,
			PushInterval:  time.Millisecond,
			PushFloor:     3 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("start push stage %d: %v", i, err)
		}
		stages[i] = v
	}
	t.Cleanup(func() {
		for _, v := range stages {
			v.Close()
		}
	})
	return stages
}

// push injects a ReportDelta through the controller's real push entry point
// (the same function the connection read loops call).
func push(g *Global, stageID, jobID, seq uint64, demand wire.Rates) {
	g.onPush(&wire.ReportDelta{
		Seq: seq,
		Report: wire.StageReport{
			StageID: stageID,
			JobID:   jobID,
			Demand:  demand,
			Usage:   demand,
		},
	})
}

// TestChildPushSeqOrdering: reordered stale deltas must be dropped, but a
// Full baseline (stage restart, epoch change) resets the sequence space.
func TestChildPushSeqOrdering(t *testing.T) {
	c := &child{}
	now := time.Now()
	rd := func(seq uint64, full bool, demand float64) *wire.ReportDelta {
		return &wire.ReportDelta{Seq: seq, Full: full,
			Report: wire.StageReport{StageID: 1, JobID: 1, Demand: wire.Rates{demand, demand / 10}}}
	}
	if !c.notePush(rd(2, false, 100), now) {
		t.Fatal("first push (seq 2) rejected")
	}
	if c.notePush(rd(1, false, 999), now) {
		t.Fatal("reordered stale push (seq 1 after 2) accepted")
	}
	m, _, ok := c.staleReport(now, time.Hour)
	if !ok {
		t.Fatal("no cached report after push")
	}
	if got := m.(*wire.CollectReply).Reports[0].Demand[0]; got != 100 {
		t.Fatalf("stale push overwrote the cache: demand = %v, want 100", got)
	}
	// A Full baseline from a restarted stage restarts the sequence space.
	if !c.notePush(rd(1, true, 50), now) {
		t.Fatal("Full baseline push rejected after restart")
	}
	wasDirty, collect := c.incrementalState(now, time.Hour)
	if !wasDirty {
		t.Fatal("accepted pushes did not mark the child dirty")
	}
	if collect {
		t.Fatal("fresh pushed cache scheduled a collect")
	}
	// The claim is one-shot: a second look without new pushes is clean.
	if wasDirty, _ = c.incrementalState(now, time.Hour); wasDirty {
		t.Fatal("dirty flag not claimed by incrementalState")
	}
}

// TestIncrementalQuiescedFastPath: with fresh push-fed caches, no dirty
// children, and stable membership, the cycle must skip collect and enforce
// entirely — and a push must wake it back up without any collect scatter.
func TestIncrementalQuiescedFastPath(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{1000, 100}) // silent: no push config
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:         wire.Rates{2000, 200},
		DeltaEnforcement: true,
		Incremental:      true,
		IncrementalFloor: time.Hour, // only pushes may wake the cycle
	})
	ctx := context.Background()

	// Cycle 1 collects everyone (no cache yet) and enforces.
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	var collects, enforces [4]uint64
	for i, v := range stages {
		collects[i], enforces[i] = v.Counters()
		if collects[i] == 0 {
			t.Fatalf("stage %d never collected on the priming cycle", i)
		}
	}

	// Cycles 2-4 must take the quiesced fast path: no traffic at all.
	suppressed := g.Stats().Pipeline.SuppressedCollects
	for i := 0; i < 3; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range stages {
		c, e := v.Counters()
		if c != collects[i] || e != enforces[i] {
			t.Errorf("stage %d saw traffic while quiesced: collects %d->%d enforces %d->%d",
				i, collects[i], c, enforces[i], e)
		}
	}
	if got := g.Stats().Pipeline.SuppressedCollects - suppressed; got != 12 {
		t.Errorf("suppressed collects = %d over 3 quiesced cycles of 4 children, want 12", got)
	}

	// A pushed demand move re-dirties exactly one child: the next cycle
	// recomputes from the cache and enforces the changed rules, still with
	// zero collect calls.
	push(g, 1, 1, 1, wire.Rates{4000, 400})
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if c, _ := stages[0].Counters(); c != collects[0] {
		t.Errorf("push triggered a collect scatter: %d -> %d", collects[0], c)
	}
	if _, e := stages[0].Counters(); e == enforces[0] {
		t.Error("pushed demand move did not re-enforce the moved stage")
	}
	if got := g.Stats().Pipeline.DirtyChildren; got != 1 {
		t.Errorf("DirtyChildren = %d after one push, want 1", got)
	}
}

// TestIncrementalHeartbeatFloorMarksSilentChild: a child whose cache ages
// past IncrementalFloor must be collected again even though it never pushed
// — the floor is what distinguishes a silent child from an unchanged one.
func TestIncrementalHeartbeatFloorMarksSilentChild(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 3, 1, wire.Rates{100, 10})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:         wire.Rates{300, 30},
		DeltaEnforcement: true,
		Incremental:      true,
		IncrementalFloor: 200 * time.Millisecond,
	})
	ctx := context.Background()

	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	var collects [3]uint64
	for i, v := range stages {
		collects[i], _ = v.Counters()
	}

	// Immediately after the priming cycle every cache is fresh: quiesced.
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	for i, v := range stages {
		if c, _ := v.Counters(); c != collects[i] {
			t.Fatalf("stage %d collected while its cache was fresh", i)
		}
	}

	// Let every cache age past the floor: the next cycle must re-collect
	// all three silent children.
	time.Sleep(250 * time.Millisecond)
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	for i, v := range stages {
		if c, _ := v.Counters(); c != collects[i]+1 {
			t.Errorf("stage %d collects = %d after floor expiry, want %d", i, c, collects[i]+1)
		}
	}
}

// TestIncrementalQuarantinedWhileDirtySurvivesReadmission: a push that
// arrives while its child is quarantined must still land in the report
// cache and keep the child dirty, so the cycle after readmission refreshes
// and re-enforces it instead of fast-pathing past the disruption.
func TestIncrementalQuarantinedWhileDirtySurvivesReadmission(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 3, 1, wire.Rates{100, 10})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:         wire.Rates{300, 30},
		DeltaEnforcement: true,
		Incremental:      true,
		IncrementalFloor: time.Hour,
		CallTimeout:      200 * time.Millisecond,
		MaxFailures:      1,
		ProbeInterval:    2 * time.Millisecond,
	})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Partition stage 2, then push demand moves for it: the recompute
	// changes its rule, the enforce fails, and the breaker trips. The
	// cycle itself must keep completing.
	n.Host("stage-2").SetPartitioned(true)
	seq := uint64(1)
	deadline := time.Now().Add(5 * time.Second)
	for g.NumQuarantined() != 1 && time.Now().Before(deadline) {
		push(g, 2, 1, seq, wire.Rates{100 + float64(seq)*50, 10})
		seq++
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatalf("cycle during partition: %v", err)
		}
	}
	if got := g.QuarantinedIDs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("QuarantinedIDs = %v, want [2]", got)
	}

	// The push that raced the outage: it must be accepted into the cache
	// and keep the quarantined child dirty.
	push(g, 2, 1, seq, wire.Rates{1500, 150})
	c2 := g.members.get(2)
	if m, _, ok := c2.staleReport(time.Now(), time.Hour); !ok {
		t.Fatal("quarantined child lost its report cache")
	} else if got := m.(*wire.CollectReply).Reports[0].Demand[0]; got != 1500 {
		t.Fatalf("push during quarantine not cached: demand = %v, want 1500", got)
	}

	// Heal; half-open probes readmit the child. The readmitting cycle
	// itself consumes the forced collect, so snapshot the stage's counter
	// while it is still unreachable.
	before, _ := stages[1].Counters()
	n.Host("stage-2").SetPartitioned(false)
	deadline = time.Now().Add(5 * time.Second)
	for g.NumQuarantined() != 0 && time.Now().Before(deadline) {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatalf("cycle after heal: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if g.NumQuarantined() != 0 {
		t.Fatal("child never readmitted after heal")
	}
	if f := g.Faults(); f.Readmissions() == 0 {
		t.Error("Readmissions = 0, want >= 1")
	}

	// Readmission must not fast-path past the disruption: the child's
	// cached report predates the outage's end, so the readmitting cycle
	// force-collects a fresh one, and the recompute restores its rule.
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if after, _ := stages[1].Counters(); after < before+1 {
		t.Errorf("readmitted child collects = %d, want >= %d (forced refresh)", after, before+1)
	}
	if _, ok := stages[1].LastRule(); !ok {
		t.Error("readmitted child has no rule")
	}
}

// TestIncrementalReRegistrationForcesFullReport extends the scenario of
// TestReRegistrationGetsFullRules to incremental mode: a re-homed child's
// registration bumps its connection epoch, which must invalidate both
// caches — the next cycle force-collects a full report (the pushed-delta
// sequence space restarted) and sends a full rule set, while every
// undisturbed child stays on the quiesced fast path.
func TestIncrementalReRegistrationForcesFullReport(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{1000, 100})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:         wire.Rates{2000, 200},
		DeltaEnforcement: true,
		Incremental:      true,
		IncrementalFloor: time.Hour,
		ListenAddr:       ":0",
	})
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var collects, enforces [4]uint64
	for i, v := range stages {
		collects[i], enforces[i] = v.Counters()
	}

	// Advance the push sequence so a post-re-registration Seq 1 would be
	// stale unless the re-registration resets the sequence space.
	push(g, 1, 1, 9, wire.Rates{1000, 100})

	// Stage 1 re-homes: a duplicate registration replaces its connection.
	if err := stage.Register(ctx, n.Host("stage-1"), g.Addr(), stages[0].Info()); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if got := g.Faults().ReRegistrations(); got != 1 {
		t.Fatalf("re-registrations = %d, want 1", got)
	}

	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	c, e := stages[0].Counters()
	if c != collects[0]+1 {
		t.Errorf("re-homed stage collects = %d, want %d (forced full report)", c, collects[0]+1)
	}
	if e != enforces[0]+1 {
		t.Errorf("re-homed stage enforces = %d, want %d (full rule set)", e, enforces[0]+1)
	}
	if _, ok := stages[0].LastRule(); !ok {
		t.Fatal("re-homed stage has no rule after the post-re-homing cycle")
	}
	for i := 1; i < 4; i++ {
		c, e := stages[i].Counters()
		if c != collects[i] || e != enforces[i] {
			t.Errorf("undisturbed stage %d saw traffic: collects %d->%d enforces %d->%d",
				i, collects[i], c, enforces[i], e)
		}
	}

	// The restarted sequence space: a low-seq push from the re-registered
	// child must be accepted, not dropped as a reordered stale delta.
	if !g.members.get(1).notePush(&wire.ReportDelta{Seq: 1,
		Report: wire.StageReport{StageID: 1, JobID: 1, Demand: wire.Rates{2000, 200}}},
		time.Now()) {
		t.Error("post-re-registration push (seq 1) dropped as stale")
	}
}

// TestIncrementalConcurrentPushStress hammers the push entry point from
// stage push loops and direct injection goroutines while incremental cycles
// run back to back. Run under -race (the CI race shard covers this
// package); correctness assertions are deliberately loose — the test's job
// is to expose unsynchronized dirty-set and report-cache access.
func TestIncrementalConcurrentPushStress(t *testing.T) {
	n := fastNet()
	stages := startPushStages(t, n, 8, 2, func(i int) workload.Generator {
		return workload.RandomWalk{
			Mean:   wire.Rates{1000, 100},
			Jitter: 0.5,
			Step:   2 * time.Millisecond,
			Seed:   int64(i + 1),
		}
	})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:         wire.Rates{4000, 400},
		DeltaEnforcement: true,
		Incremental:      true,
		IncrementalFloor: 50 * time.Millisecond,
	})
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Direct injection races the wire-path pushes: interleaved
			// sequence numbers exercise the stale-drop branch too.
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(w*2 + int(seq%2) + 1)
				push(g, id, (id-1)%2+1, seq, wire.Rates{float64(500 + 100*seq%1000), 50})
			}
		}(w)
	}

	for i := 0; i < 100; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	var wirePushes uint64
	for i, v := range stages {
		if _, ok := v.LastRule(); !ok {
			t.Errorf("stage %d has no rule after the stress run", i)
		}
		wirePushes += v.Pushes()
	}
	if wirePushes == 0 {
		t.Error("stage push loops never fired during the stress run")
	}
	if g.Stats().Pipeline.SuppressedEnforces == 0 {
		t.Error("no enforces suppressed across 100 incremental cycles")
	}
}
