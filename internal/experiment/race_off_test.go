//go:build !race

package experiment

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
