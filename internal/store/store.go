// Package store is the control plane's durability layer: an append-only
// write-ahead log of control-plane mutations (member registration and
// eviction, enforced rule batches, job-weight changes, leadership epoch and
// vote bumps) with periodic compacted snapshots.
//
// The paper's prototype keeps all controller state in memory, so a double
// failure (primary plus standby) silently forgets every QoS decision the
// control loop converged to. The store closes that gap the way production
// SDS controllers do — everything behind the controller persisted in a
// small embedded log — while keeping durability off the control cycle's hot
// path:
//
//   - Appends are group-committed: a mutation is encoded into an in-memory
//     buffer under a mutex and the caller returns immediately; a background
//     flusher writes and fsyncs the batch every FsyncInterval. The
//     steady-state cycle cost stays O(changed children), and a fully
//     quiesced incremental cycle appends nothing at all.
//   - Epoch and vote records are the exception: leadership fencing is only
//     sound if the epoch allocation survives the crash that motivated it,
//     so AppendEpoch and AppendVote block until their record is durable.
//   - Every record is CRC-framed. A torn tail — the partial record a crash
//     mid-write leaves behind — is detected and truncated on open; a
//     corrupt record mid-log stops replay at the last good prefix.
//   - The store materializes the log into live state (members, last rules,
//     weights, epoch) as records are appended, so compaction snapshots its
//     own state instead of calling back into the controller, and recovery
//     is "load snapshot, apply records newer than its watermark".
//
// On-disk layout in Dir (see docs/PROTOCOL.md for the byte-level format):
//
//	snapshot.snap — one framed record: uvarint watermark LSN, uvarint voted
//	                epoch, then a v1-codec wire.StateSync of the state.
//	wal.log       — framed mutation records, LSNs strictly increasing.
//
// Record frame: uint32 LE payload length, uint32 LE CRC-32 (IEEE) of the
// payload, payload. Payload: uvarint LSN, one kind byte, kind-specific body
// in the v1 wire codec's primitive encodings.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// File names inside the store directory.
const (
	snapshotFile = "snapshot.snap"
	logFile      = "wal.log"
)

// Record kinds. Append-only: decoders must tolerate unknown kinds from
// newer builds by failing the record, never by misparsing it.
const (
	// kindRegister upserts one member (stage or aggregator) into the
	// membership table.
	kindRegister byte = 1
	// kindEvict removes one member by ID.
	kindEvict byte = 2
	// kindRules replaces the named rules in one child's last-enforced rule
	// batch (keyed per stage, so partial batches merge like the
	// controller's delta cache).
	kindRules byte = 3
	// kindWeight sets one job's QoS weight.
	kindWeight byte = 4
	// kindEpoch records a leadership-epoch allocation. Always fsynced
	// before the allocator acts on it.
	kindEpoch byte = 5
	// kindVote records a leadership vote (the highest epoch this node
	// promised). Always fsynced before the vote is cast.
	kindVote byte = 6
)

// frameHeaderLen is the fixed per-record framing overhead.
const frameHeaderLen = 8

// maxRecordLen bounds a single record's payload. A frame announcing more is
// treated as a torn/corrupt tail rather than allocated for.
const maxRecordLen = 1 << 26

// Defaults for Options zeros.
const (
	// DefaultFsyncInterval is the group-commit window: how long an
	// asynchronous append may wait before its batch is written and synced.
	DefaultFsyncInterval = 2 * time.Millisecond
	// DefaultSnapshotEvery is how many log records accumulate before the
	// flusher compacts them into a snapshot.
	DefaultSnapshotEvery = 4096
	// DefaultMaxLogBytes compacts early if the log outgrows this size.
	DefaultMaxLogBytes = 4 << 20
)

// ErrClosed is returned by appends on a closed store.
var ErrClosed = errors.New("store: closed")

// Options configures Open.
type Options struct {
	// Dir is the data directory. Created if missing.
	Dir string
	// FsyncInterval is the group-commit window. Zero selects
	// DefaultFsyncInterval.
	FsyncInterval time.Duration
	// SnapshotEvery compacts the log after this many records. Zero selects
	// DefaultSnapshotEvery.
	SnapshotEvery int
	// MaxLogBytes compacts the log when it outgrows this size. Zero
	// selects DefaultMaxLogBytes.
	MaxLogBytes int64
	// NoFsync skips fsync calls (writes still happen). For tests and
	// single-process simulations where process death, not power loss, is
	// the failure model.
	NoFsync bool
	// Logf, if non-nil, receives operational logs (torn-tail truncation,
	// compactions).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	if o.MaxLogBytes <= 0 {
		o.MaxLogBytes = DefaultMaxLogBytes
	}
	return o
}

// member is one materialized membership entry.
type member struct {
	state wire.MemberState // Rules field unused; rules live in the map below
	rules map[uint64]wire.Rule
}

// memState is the store's materialized view of the log.
type memState struct {
	members map[uint64]*member
	weights map[uint64]float64
	epoch   uint64
	voted   uint64
	cycle   uint64
}

func newMemState() memState {
	return memState{
		members: make(map[uint64]*member),
		weights: make(map[uint64]float64),
	}
}

// Store is a durable write-ahead log plus snapshot for one controller.
// All methods are safe for concurrent use.
type Store struct {
	opts Options

	mu      sync.Mutex
	durable *sync.Cond // signals flushedSeq advancing
	log     *os.File
	logSize int64
	// pending/writing double-buffer the group commit: appends encode into
	// pending under mu; the flusher swaps the buffers and writes outside it.
	pending      []byte
	writing      []byte
	pendingRecs  int
	nextLSN      uint64
	appendSeq    uint64 // bumped per append
	flushedSeq   uint64 // highest appendSeq durably on disk
	flushErr     error  // sticky: a failed write poisons the store
	closed       bool
	state        memState
	logRecords   uint64 // records currently in the log segment
	snapLSN      uint64 // watermark of the last snapshot
	lastSnapshot time.Time

	// Telemetry (under mu).
	appended   uint64
	fsyncs     uint64
	fsyncLast  time.Duration
	fsyncTotal time.Duration
	fsyncMax   time.Duration
	snapshots  uint64
	replay     ReplayInfo

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

// ReplayInfo summarizes what Open recovered from disk.
type ReplayInfo struct {
	// Duration is how long the snapshot load plus log replay took.
	Duration time.Duration
	// Records is how many log records were applied.
	Records uint64
	// Skipped is how many log records predated the snapshot watermark
	// (a crash between snapshot rename and log truncation leaves them).
	Skipped uint64
	// TruncatedBytes is the torn/corrupt tail dropped from the log.
	TruncatedBytes int64
	// HadSnapshot reports whether a snapshot was loaded.
	HadSnapshot bool
}

// Stats is a point-in-time snapshot of the store's telemetry.
type Stats struct {
	// Dir is the data directory.
	Dir string
	// LogBytes and LogRecords describe the current log segment.
	LogBytes   int64
	LogRecords uint64
	// AppendedRecords counts records appended over the store's lifetime
	// (excluding replayed ones).
	AppendedRecords uint64
	// PendingBytes is the group-commit buffer not yet written.
	PendingBytes int
	// Fsyncs counts group commits that reached disk; FsyncLast/Mean/Max
	// summarize their latency.
	Fsyncs                         uint64
	FsyncLast, FsyncMean, FsyncMax time.Duration
	// Snapshots counts compactions; SnapshotAge is the time since the
	// last one (zero if none yet).
	Snapshots   uint64
	SnapshotAge time.Duration
	// NextLSN and SnapshotLSN locate the log head and snapshot watermark.
	NextLSN, SnapshotLSN uint64
	// Replay describes what Open recovered.
	Replay ReplayInfo
}

// Recovered is the materialized control-plane state the store holds.
type Recovered struct {
	// Epoch is the highest leadership epoch recorded; VotedEpoch the
	// highest epoch this node promised a vote for.
	Epoch, VotedEpoch uint64
	// Cycle is the highest control-cycle number stamped on a record.
	Cycle uint64
	// State carries membership (with per-child last-enforced rules) and
	// job weights in the same shape StateSync replicates, so a recovering
	// controller adopts it with the promotion code path.
	State *wire.StateSync
}

// Open opens (or creates) the store in opts.Dir, loads the snapshot,
// replays the log — truncating a torn or corrupt tail — and starts the
// group-commit flusher.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("store: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create dir: %w", err)
	}
	s := &Store{
		opts:  opts,
		state: newMemState(),
		// LSN 0 is reserved as the empty-snapshot watermark: replay keeps
		// records strictly above the watermark, so real LSNs start at 1.
		nextLSN: 1,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.durable = sync.NewCond(&s.mu)
	start := time.Now()
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.openLog(); err != nil {
		return nil, err
	}
	s.replay.Duration = time.Since(start)
	go s.flushLoop()
	return s, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// loadSnapshot reads snapshot.snap if present. A missing file is a fresh
// store; a corrupt one is an error — silently discarding a snapshot would
// lose state, so the operator decides.
func (s *Store) loadSnapshot() error {
	path := filepath.Join(s.opts.Dir, snapshotFile)
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read snapshot: %w", err)
	}
	payload, _, ferr := readFrame(raw)
	if ferr != nil {
		return fmt.Errorf("store: snapshot corrupt: %w", ferr)
	}
	watermark, voted, sync, derr := decodeSnapshot(payload)
	if derr != nil {
		return fmt.Errorf("store: snapshot corrupt: %w", derr)
	}
	s.snapLSN = watermark
	s.nextLSN = watermark + 1
	s.state.epoch = sync.Epoch
	s.state.cycle = sync.Cycle
	s.state.voted = voted
	for i := range sync.Members {
		m := &sync.Members[i]
		e := &member{state: *m}
		e.state.Rules = nil
		if len(m.Rules) > 0 {
			e.rules = make(map[uint64]wire.Rule, len(m.Rules))
			for _, r := range m.Rules {
				e.rules[r.StageID] = r
			}
		}
		s.state.members[m.ID] = e
	}
	for _, w := range sync.Weights {
		s.state.weights[w.JobID] = w.Weight
	}
	s.replay.HadSnapshot = true
	s.lastSnapshot = time.Now()
	return nil
}

// openLog opens the WAL, replays every intact record, and truncates the
// file at the first torn or corrupt one.
func (s *Store) openLog() error {
	path := filepath.Join(s.opts.Dir, logFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: open log: %w", err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: read log: %w", err)
	}
	good := 0
	for good < len(raw) {
		payload, n, ferr := readFrame(raw[good:])
		if ferr != nil {
			break // torn or corrupt tail: replay stops at the last good prefix
		}
		rec, derr := parseRecord(payload)
		if derr != nil {
			break
		}
		if rec.lsn <= s.snapLSN {
			// The snapshot already covers this record: a crash between
			// snapshot rename and log truncation leaves such a prefix.
			s.replay.Skipped++
		} else {
			s.applyLocked(rec)
			s.replay.Records++
			s.logRecords++
		}
		if rec.lsn >= s.nextLSN {
			s.nextLSN = rec.lsn + 1
		}
		good += n
	}
	if good < len(raw) {
		dropped := int64(len(raw) - good)
		s.replay.TruncatedBytes = dropped
		s.logf("store: truncating %d-byte torn tail off %s (%d records replayed)", dropped, path, s.replay.Records)
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate torn tail: %w", err)
		}
		if !s.opts.NoFsync {
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("store: sync after truncate: %w", err)
			}
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: seek log end: %w", err)
	}
	s.log = f
	s.logSize = int64(good)
	return nil
}

// record is one parsed WAL record.
type record struct {
	lsn  uint64
	kind byte
	// kindRegister
	member wire.MemberState
	// kindEvict / kindRules
	childID uint64
	// kindRules
	cycle uint64
	rules []wire.Rule
	// kindWeight
	jobID  uint64
	weight float64
	// kindEpoch / kindVote
	epoch uint64
}

// applyLocked folds one record into the materialized state. Idempotent:
// every kind is an upsert, delete, or max, so replaying a prefix twice
// (snapshot overlap) converges to the same state.
func (s *Store) applyLocked(rec record) {
	switch rec.kind {
	case kindRegister:
		e := s.state.members[rec.member.ID]
		if e == nil {
			e = &member{}
			s.state.members[rec.member.ID] = e
		}
		rules := e.rules
		e.state = rec.member
		e.state.Rules = nil
		e.rules = rules
	case kindEvict:
		delete(s.state.members, rec.childID)
	case kindRules:
		e := s.state.members[rec.childID]
		if e == nil {
			// Rules for a member the log never registered (interleaving
			// across a compaction edge): keep them — zero rule loss beats
			// referential tidiness, and eviction removes the entry anyway.
			e = &member{state: wire.MemberState{ID: rec.childID}}
			s.state.members[rec.childID] = e
		}
		if e.rules == nil {
			e.rules = make(map[uint64]wire.Rule, len(rec.rules))
		}
		for _, r := range rec.rules {
			e.rules[r.StageID] = r
		}
		if rec.cycle > s.state.cycle {
			s.state.cycle = rec.cycle
		}
	case kindWeight:
		s.state.weights[rec.jobID] = rec.weight
	case kindEpoch:
		if rec.epoch > s.state.epoch {
			s.state.epoch = rec.epoch
		}
	case kindVote:
		if rec.epoch > s.state.voted {
			s.state.voted = rec.epoch
		}
	}
}

// appendLocked frames one record into the pending buffer and materializes
// it. Callers hold mu.
func (s *Store) appendLocked(rec record) uint64 {
	rec.lsn = s.nextLSN
	s.nextLSN++
	start := len(s.pending)
	s.pending = append(s.pending, 0, 0, 0, 0, 0, 0, 0, 0)
	s.pending = encodeRecordBody(s.pending, rec)
	payload := s.pending[start+frameHeaderLen:]
	binary.LittleEndian.PutUint32(s.pending[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(s.pending[start+4:], crc32.ChecksumIEEE(payload))
	s.pendingRecs++
	s.appended++
	s.appendSeq++
	s.applyLocked(rec)
	return s.appendSeq
}

// append frames, materializes, and schedules one record for group commit.
func (s *Store) append(rec record) (seq uint64, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	if s.flushErr != nil {
		err = s.flushErr
		s.mu.Unlock()
		return 0, err
	}
	seq = s.appendLocked(rec)
	s.mu.Unlock()
	s.kick()
	return seq, nil
}

func (s *Store) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// AppendRegister upserts one member (without its rules, which kindRules
// records carry) into the durable membership table.
func (s *Store) AppendRegister(m wire.MemberState) error {
	m.Rules = nil
	_, err := s.append(record{kind: kindRegister, member: m})
	return err
}

// AppendEvict removes one member from the durable membership table.
func (s *Store) AppendEvict(id uint64) error {
	_, err := s.append(record{kind: kindEvict, childID: id})
	return err
}

// AppendRules records the rule batch just enforced on one child, before it
// is sent: the store must always hold a superset of what the fleet holds.
func (s *Store) AppendRules(cycle, childID uint64, rules []wire.Rule) error {
	_, err := s.append(record{kind: kindRules, cycle: cycle, childID: childID, rules: rules})
	return err
}

// AppendWeight records one job's QoS weight.
func (s *Store) AppendWeight(jobID uint64, weight float64) error {
	_, err := s.append(record{kind: kindWeight, jobID: jobID, weight: weight})
	return err
}

// AppendEpoch durably records a leadership-epoch allocation. It returns
// only once the record is on disk: an epoch a crash can forget is not a
// fence.
func (s *Store) AppendEpoch(epoch uint64) error {
	seq, err := s.append(record{kind: kindEpoch, epoch: epoch})
	if err != nil {
		return err
	}
	return s.waitDurable(seq)
}

// AppendVote durably records a leadership vote (the highest epoch this
// node promised). Like AppendEpoch it blocks until the record is on disk:
// a forgotten vote could be granted twice.
func (s *Store) AppendVote(epoch uint64) error {
	seq, err := s.append(record{kind: kindVote, epoch: epoch})
	if err != nil {
		return err
	}
	return s.waitDurable(seq)
}

// Sync forces a group commit of everything appended so far and waits for
// it to reach disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	seq := s.appendSeq
	s.mu.Unlock()
	s.kick()
	return s.waitDurable(seq)
}

// waitDurable blocks until appendSeq seq has been flushed (and fsynced,
// unless NoFsync) or the store fails/closes.
func (s *Store) waitDurable(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.flushedSeq < seq {
		if s.flushErr != nil {
			return s.flushErr
		}
		if s.closed {
			return ErrClosed
		}
		s.durable.Wait()
	}
	return s.flushErr
}

// flushLoop is the group-commit flusher: every FsyncInterval (or sooner,
// when kicked by a durable append) it writes the pending buffer, fsyncs,
// and wakes waiters; then it compacts if the log has outgrown its bounds.
func (s *Store) flushLoop() {
	defer close(s.done)
	tick := time.NewTicker(s.opts.FsyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			s.flush()
			return
		case <-tick.C:
		case <-s.wake:
		}
		s.flush()
		s.maybeCompact()
	}
}

// flush writes and syncs the pending buffer. Only the flusher goroutine
// calls it, so the write itself happens outside mu via the double buffer.
func (s *Store) flush() {
	s.mu.Lock()
	if len(s.pending) == 0 || s.flushErr != nil {
		s.mu.Unlock()
		return
	}
	buf := s.pending
	recs := s.pendingRecs
	seq := s.appendSeq
	s.pending, s.writing = s.writing[:0], s.pending
	s.pendingRecs = 0
	s.mu.Unlock()

	start := time.Now()
	_, werr := s.log.Write(buf)
	if werr == nil && !s.opts.NoFsync {
		werr = s.log.Sync()
	}
	d := time.Since(start)

	s.mu.Lock()
	if werr != nil {
		s.flushErr = fmt.Errorf("store: flush: %w", werr)
		s.logf("store: flush failed, store poisoned: %v", werr)
	} else {
		s.logSize += int64(len(buf))
		s.logRecords += uint64(recs)
		s.flushedSeq = seq
		s.fsyncs++
		s.fsyncLast = d
		s.fsyncTotal += d
		if d > s.fsyncMax {
			s.fsyncMax = d
		}
	}
	s.durable.Broadcast()
	s.mu.Unlock()
}

// maybeCompact snapshots the materialized state and truncates the log once
// it outgrows the configured bounds. It runs on the flusher goroutine with
// mu held across the file operations: compaction is rare and off the
// cycle's hot path, and holding the lock guarantees no record encoded
// after the snapshot's watermark can be dropped by the truncation.
func (s *Store) maybeCompact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flushErr != nil || s.closed {
		return
	}
	if s.logRecords < uint64(s.opts.SnapshotEvery) && s.logSize < s.opts.MaxLogBytes {
		return
	}
	if err := s.compactLocked(); err != nil {
		s.flushErr = fmt.Errorf("store: compact: %w", err)
		s.logf("store: compaction failed, store poisoned: %v", err)
		s.durable.Broadcast()
	}
}

// compactLocked writes the snapshot (temp file, fsync, atomic rename) and
// truncates the log. Crash-ordering: the snapshot covers every LSN below
// nextLSN, so a crash after the rename but before the truncation only
// leaves records the next open's watermark check skips.
func (s *Store) compactLocked() error {
	watermark := s.nextLSN - 1
	payload := encodeSnapshot(nil, watermark, s.state)
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)

	path := filepath.Join(s.opts.Dir, snapshotFile)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return err
	}
	if !s.opts.NoFsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if !s.opts.NoFsync {
		if dir, err := os.Open(s.opts.Dir); err == nil {
			_ = dir.Sync()
			dir.Close()
		}
	}
	if err := s.log.Truncate(0); err != nil {
		return err
	}
	if _, err := s.log.Seek(0, io.SeekStart); err != nil {
		return err
	}
	dropped := s.logRecords
	s.logSize = 0
	s.logRecords = 0
	s.snapLSN = watermark
	s.snapshots++
	s.lastSnapshot = time.Now()
	s.logf("store: compacted %d log records into snapshot at LSN %d (%d bytes)", dropped, watermark, len(frame))
	return nil
}

// Recovered returns the store's materialized control-plane state, in the
// shape StateSync replicates. Members are sorted by ID so recovery is
// deterministic.
func (s *Store) Recovered() Recovered {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Recovered{
		Epoch:      s.state.epoch,
		VotedEpoch: s.state.voted,
		Cycle:      s.state.cycle,
		State:      s.state.toStateSync(),
	}
}

// toStateSync renders the materialized state as a StateSync message.
func (st *memState) toStateSync() *wire.StateSync {
	msg := &wire.StateSync{
		Epoch:   st.epoch,
		Cycle:   st.cycle,
		Members: make([]wire.MemberState, 0, len(st.members)),
		Weights: make([]wire.JobWeight, 0, len(st.weights)),
	}
	ids := make([]uint64, 0, len(st.members))
	for id := range st.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		e := st.members[id]
		m := e.state
		if len(e.rules) > 0 {
			m.Rules = make([]wire.Rule, 0, len(e.rules))
			sids := make([]uint64, 0, len(e.rules))
			for sid := range e.rules {
				sids = append(sids, sid)
			}
			sort.Slice(sids, func(a, b int) bool { return sids[a] < sids[b] })
			for _, sid := range sids {
				m.Rules = append(m.Rules, e.rules[sid])
			}
		}
		msg.Members = append(msg.Members, m)
	}
	wids := make([]uint64, 0, len(st.weights))
	for id := range st.weights {
		wids = append(wids, id)
	}
	sort.Slice(wids, func(a, b int) bool { return wids[a] < wids[b] })
	for _, id := range wids {
		msg.Weights = append(msg.Weights, wire.JobWeight{JobID: id, Weight: st.weights[id]})
	}
	return msg
}

// Stats snapshots the store's telemetry.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Dir:             s.opts.Dir,
		LogBytes:        s.logSize,
		LogRecords:      s.logRecords,
		AppendedRecords: s.appended,
		PendingBytes:    len(s.pending),
		Fsyncs:          s.fsyncs,
		FsyncLast:       s.fsyncLast,
		FsyncMax:        s.fsyncMax,
		Snapshots:       s.snapshots,
		NextLSN:         s.nextLSN,
		SnapshotLSN:     s.snapLSN,
		Replay:          s.replay,
	}
	if s.fsyncs > 0 {
		st.FsyncMean = s.fsyncTotal / time.Duration(s.fsyncs)
	}
	if !s.lastSnapshot.IsZero() {
		st.SnapshotAge = time.Since(s.lastSnapshot)
	}
	return st
}

// Close flushes everything pending and closes the log. Further appends
// return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
	s.mu.Lock()
	s.durable.Broadcast()
	err := s.flushErr
	s.mu.Unlock()
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- record and snapshot codec -------------------------------------------

// readFrame parses one framed record off the front of buf, verifying the
// CRC. It returns the payload, the total frame length consumed, or an
// error for a short, oversized, or corrupt frame.
func readFrame(buf []byte) (payload []byte, n int, err error) {
	if len(buf) < frameHeaderLen {
		return nil, 0, fmt.Errorf("store: short frame header (%d bytes)", len(buf))
	}
	plen := binary.LittleEndian.Uint32(buf)
	crc := binary.LittleEndian.Uint32(buf[4:])
	if plen > maxRecordLen {
		return nil, 0, fmt.Errorf("store: frame length %d exceeds limit", plen)
	}
	if frameHeaderLen+int(plen) > len(buf) {
		return nil, 0, fmt.Errorf("store: torn frame: %d payload bytes of %d", len(buf)-frameHeaderLen, plen)
	}
	payload = buf[frameHeaderLen : frameHeaderLen+int(plen)]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, errors.New("store: frame CRC mismatch")
	}
	return payload, frameHeaderLen + int(plen), nil
}

// Byte-level append helpers matching the v1 wire codec's primitive
// encodings (uvarint integers, fixed 8-byte LE floats, length-prefixed
// strings), so wire.Decoder parses them back.
func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encodeRecordBody appends rec's payload (LSN, kind, body) to buf.
func encodeRecordBody(buf []byte, rec record) []byte {
	buf = appendUvarint(buf, rec.lsn)
	buf = append(buf, rec.kind)
	switch rec.kind {
	case kindRegister:
		m := &rec.member
		buf = append(buf, byte(m.Role))
		buf = appendUvarint(buf, m.ID)
		buf = appendUvarint(buf, m.JobID)
		buf = appendFloat(buf, m.Weight)
		buf = appendString(buf, m.Addr)
		buf = appendUvarint(buf, uint64(len(m.Stages)))
		for i := range m.Stages {
			st := &m.Stages[i]
			buf = appendUvarint(buf, st.ID)
			buf = appendUvarint(buf, st.JobID)
			buf = appendFloat(buf, st.Weight)
			buf = appendString(buf, st.Addr)
		}
	case kindEvict:
		buf = appendUvarint(buf, rec.childID)
	case kindRules:
		buf = appendUvarint(buf, rec.cycle)
		buf = appendUvarint(buf, rec.childID)
		buf = appendUvarint(buf, uint64(len(rec.rules)))
		for i := range rec.rules {
			r := &rec.rules[i]
			buf = appendUvarint(buf, r.StageID)
			buf = appendUvarint(buf, r.JobID)
			buf = append(buf, byte(r.Action))
			for _, v := range r.Limit {
				buf = appendFloat(buf, v)
			}
		}
	case kindWeight:
		buf = appendUvarint(buf, rec.jobID)
		buf = appendFloat(buf, rec.weight)
	case kindEpoch, kindVote:
		buf = appendUvarint(buf, rec.epoch)
	}
	return buf
}

// parseRecord decodes one record payload. It rejects unknown kinds,
// trailing bytes, and oversized collections — anything it accepts must
// re-encode byte-identically (the WAL fuzz target holds it to that).
func parseRecord(payload []byte) (record, error) {
	var rec record
	d := wire.NewDecoder(payload)
	rec.lsn = d.Uint64()
	rec.kind = d.Byte()
	switch rec.kind {
	case kindRegister:
		m := &rec.member
		m.Role = wire.Role(d.Byte())
		m.ID = d.Uint64()
		m.JobID = d.Uint64()
		m.Weight = d.Float64()
		m.Addr = d.String()
		n := d.Length()
		if d.Err() == nil && n > 0 {
			m.Stages = make([]wire.StageEntry, n)
			for i := range m.Stages {
				st := &m.Stages[i]
				st.ID = d.Uint64()
				st.JobID = d.Uint64()
				st.Weight = d.Float64()
				st.Addr = d.String()
			}
		}
	case kindEvict:
		rec.childID = d.Uint64()
	case kindRules:
		rec.cycle = d.Uint64()
		rec.childID = d.Uint64()
		n := d.Length()
		if d.Err() == nil && n > 0 {
			rec.rules = make([]wire.Rule, n)
			for i := range rec.rules {
				r := &rec.rules[i]
				r.StageID = d.Uint64()
				r.JobID = d.Uint64()
				r.Action = wire.RuleAction(d.Byte())
				for j := range r.Limit {
					r.Limit[j] = d.Float64()
				}
			}
		}
	case kindWeight:
		rec.jobID = d.Uint64()
		rec.weight = d.Float64()
	case kindEpoch, kindVote:
		rec.epoch = d.Uint64()
	default:
		if d.Err() == nil {
			return rec, fmt.Errorf("store: unknown record kind %d", rec.kind)
		}
	}
	if err := d.Finish(); err != nil {
		return rec, fmt.Errorf("store: record: %w", err)
	}
	return rec, nil
}

// encodeSnapshot appends the snapshot payload: the watermark LSN, the
// voted epoch, then the state as a v1-codec StateSync message.
func encodeSnapshot(buf []byte, watermark uint64, st memState) []byte {
	buf = appendUvarint(buf, watermark)
	buf = appendUvarint(buf, st.voted)
	return wire.Encode(buf, st.toStateSync())
}

// decodeSnapshot parses a snapshot payload.
func decodeSnapshot(payload []byte) (watermark, voted uint64, sync *wire.StateSync, err error) {
	d := wire.NewDecoder(payload)
	watermark = d.Uint64()
	voted = d.Uint64()
	if err := d.Err(); err != nil {
		return 0, 0, nil, err
	}
	rest := payload[len(payload)-d.Remaining():]
	m, err := wire.Decode(rest)
	if err != nil {
		return 0, 0, nil, err
	}
	ss, ok := m.(*wire.StateSync)
	if !ok {
		return 0, 0, nil, fmt.Errorf("store: snapshot holds %s, want StateSync", m.Type())
	}
	return watermark, voted, ss, nil
}
