// Package top500 carries the supercomputer dataset behind the paper's
// Table I — the systems whose node counts motivate the scalability study —
// and helpers to reason about what control-plane design each would need.
package top500

import (
	"fmt"
	"sort"
	"strings"
)

// System is one supercomputer's Table I row.
type System struct {
	// Name is the system's name.
	Name string
	// Rank is the June 2024 Top500 rank.
	Rank int
	// RmaxPFlops is the LINPACK Rmax in PFlop/s.
	RmaxPFlops float64
	// Nodes is the number of compute nodes.
	Nodes int
	// Year is the installation year.
	Year int
}

// Systems returns the paper's Table I dataset (June 2024 Top500 list).
func Systems() []System {
	return []System{
		{Name: "Frontier", Rank: 1, RmaxPFlops: 1206, Nodes: 9408, Year: 2021},
		{Name: "Aurora", Rank: 2, RmaxPFlops: 1012, Nodes: 10624, Year: 2023},
		{Name: "Fugaku", Rank: 4, RmaxPFlops: 442, Nodes: 158976, Year: 2020},
		{Name: "Summit", Rank: 9, RmaxPFlops: 148.6, Nodes: 4608, Year: 2018},
		{Name: "Frontera", Rank: 33, RmaxPFlops: 23.52, Nodes: 8368, Year: 2019},
	}
}

// ByNodes returns the systems sorted by descending node count.
func ByNodes() []System {
	s := Systems()
	sort.Slice(s, func(i, j int) bool { return s[i].Nodes > s[j].Nodes })
	return s
}

// MinAggregators returns the minimum number of aggregator controllers a
// hierarchical control plane needs for the system, given a per-controller
// connection limit (the paper's §IV-B sizing rule: ceil(nodes/limit)).
func MinAggregators(sys System, connLimit int) int {
	if connLimit <= 0 {
		return 0
	}
	return (sys.Nodes + connLimit - 1) / connLimit
}

// FitsFlat reports whether a single flat controller can manage the system
// under the given connection limit.
func FitsFlat(sys System, connLimit int) bool {
	return connLimit < 0 || sys.Nodes <= connLimit
}

// Table renders the dataset in the paper's Table I layout.
func Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %5s %15s %16s %6s\n", "System", "Rank", "Rmax (PFlop/s)", "Number of nodes", "Year")
	for _, s := range Systems() {
		fmt.Fprintf(&b, "%-10s %5d %15.6g %16d %6d\n", s.Name, s.Rank, s.RmaxPFlops, s.Nodes, s.Year)
	}
	return b.String()
}
