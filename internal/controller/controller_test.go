package controller

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/controlalg"
	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

func fastNet() *simnet.Net { return simnet.New(simnet.Config{PropDelay: -1}) }

// startStages launches n virtual stages spread over nJobs jobs with the
// given per-stage demand.
func startStages(t *testing.T, n *simnet.Net, count, nJobs int, demand wire.Rates) []*stage.Virtual {
	t.Helper()
	stages := make([]*stage.Virtual, count)
	for i := range stages {
		v, err := stage.StartVirtual(stage.Config{
			ID:        uint64(i + 1),
			JobID:     uint64(i%nJobs + 1),
			Weight:    1,
			Generator: workload.Constant{Rates: demand},
			Network:   n.Host(fmt.Sprintf("stage-%d", i+1)),
		})
		if err != nil {
			t.Fatalf("start stage %d: %v", i, err)
		}
		stages[i] = v
	}
	t.Cleanup(func() {
		for _, v := range stages {
			v.Close()
		}
	})
	return stages
}

// buildFlat wires a global controller directly to the stages.
func buildFlat(t *testing.T, n *simnet.Net, stages []*stage.Virtual, cfg GlobalConfig) *Global {
	t.Helper()
	cfg.Network = n.Host("global")
	g, err := NewGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	ctx := context.Background()
	for _, v := range stages {
		if err := g.AddStage(ctx, v.Info()); err != nil {
			t.Fatalf("AddStage: %v", err)
		}
	}
	return g
}

// buildHierarchy wires global -> aggregators -> stages, partitioning stages
// evenly.
func buildHierarchy(t *testing.T, n *simnet.Net, stages []*stage.Virtual, nAggs int, cfg GlobalConfig) (*Global, []*Aggregator) {
	t.Helper()
	ctx := context.Background()
	aggs := make([]*Aggregator, nAggs)
	for i := range aggs {
		a, err := StartAggregator(AggregatorConfig{
			ID:      uint64(1000 + i),
			Network: n.Host(fmt.Sprintf("agg-%d", i)),
		})
		if err != nil {
			t.Fatalf("start aggregator %d: %v", i, err)
		}
		aggs[i] = a
	}
	t.Cleanup(func() {
		for _, a := range aggs {
			a.Close()
		}
	})
	for i, v := range stages {
		if err := aggs[i%nAggs].AddStage(ctx, v.Info()); err != nil {
			t.Fatalf("agg AddStage: %v", err)
		}
	}

	cfg.Network = n.Host("global")
	g, err := NewGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	for _, a := range aggs {
		if err := g.AddAggregator(ctx, a.ID(), a.Addr(), a.Stages()); err != nil {
			t.Fatalf("AddAggregator: %v", err)
		}
	}
	return g, aggs
}

func TestFlatCycleEndToEnd(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 8, 2, wire.Rates{1000, 100})
	g := buildFlat(t, n, stages, GlobalConfig{Capacity: wire.Rates{4000, 400}})

	b, err := g.RunCycle(context.Background())
	if err != nil {
		t.Fatalf("RunCycle: %v", err)
	}
	if b.Total <= 0 || b.Collect <= 0 || b.Enforce <= 0 {
		t.Errorf("breakdown = %+v, want positive phases", b)
	}

	// Every stage must have received a rule; total demand 8000 > cap 4000,
	// so each stage's limit is 4000/8 = 500 data ops.
	for i, v := range stages {
		rule, ok := v.LastRule()
		if !ok {
			t.Fatalf("stage %d got no rule", i)
		}
		if rule.Action != wire.ActionSetLimit {
			t.Errorf("stage %d action = %v", i, rule.Action)
		}
		if math.Abs(rule.Limit[wire.ClassData]-500) > 1e-6 {
			t.Errorf("stage %d data limit = %g, want 500", i, rule.Limit[wire.ClassData])
		}
		if math.Abs(rule.Limit[wire.ClassMeta]-50) > 1e-6 {
			t.Errorf("stage %d meta limit = %g, want 50", i, rule.Limit[wire.ClassMeta])
		}
	}
	if g.Recorder().Cycles() != 1 {
		t.Errorf("recorded cycles = %d", g.Recorder().Cycles())
	}
	if g.NumStages() != 8 {
		t.Errorf("NumStages = %d", g.NumStages())
	}
}

func TestFlatWeightedAllocation(t *testing.T) {
	n := fastNet()
	// Two jobs, one stage each; job 2 has triple weight.
	v1, err := stage.StartVirtual(stage.Config{
		ID: 1, JobID: 1, Weight: 1,
		Generator: workload.Constant{Rates: wire.Rates{10000, 0}},
		Network:   n.Host("stage-1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v2, err := stage.StartVirtual(stage.Config{
		ID: 2, JobID: 2, Weight: 3,
		Generator: workload.Constant{Rates: wire.Rates{10000, 0}},
		Network:   n.Host("stage-2"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	g := buildFlat(t, n, []*stage.Virtual{v1, v2}, GlobalConfig{Capacity: wire.Rates{4000, 0}})
	if _, err := g.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	r1, _ := v1.LastRule()
	r2, _ := v2.LastRule()
	if math.Abs(r1.Limit[wire.ClassData]-1000) > 1e-6 {
		t.Errorf("job 1 limit = %g, want 1000 (weight 1 of 4)", r1.Limit[wire.ClassData])
	}
	if math.Abs(r2.Limit[wire.ClassData]-3000) > 1e-6 {
		t.Errorf("job 2 limit = %g, want 3000 (weight 3 of 4)", r2.Limit[wire.ClassData])
	}
}

func TestHierarchicalCycleEndToEnd(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 12, 3, wire.Rates{1000, 100})
	g, aggs := buildHierarchy(t, n, stages, 3, GlobalConfig{Capacity: wire.Rates{6000, 600}})

	b, err := g.RunCycle(context.Background())
	if err != nil {
		t.Fatalf("RunCycle: %v", err)
	}
	if b.Total <= 0 {
		t.Errorf("breakdown = %+v", b)
	}
	if g.Mode() != wire.RoleAggregator {
		t.Errorf("Mode = %v", g.Mode())
	}
	if g.NumChildren() != 3 || g.NumStages() != 12 {
		t.Errorf("children/stages = %d/%d", g.NumChildren(), g.NumStages())
	}
	for _, a := range aggs {
		if a.NumStages() != 4 {
			t.Errorf("aggregator %d stages = %d", a.ID(), a.NumStages())
		}
	}

	// Demand 12000 > cap 6000; 3 jobs each with 4 stages; per-job alloc
	// 2000, per-stage 500.
	for i, v := range stages {
		rule, ok := v.LastRule()
		if !ok {
			t.Fatalf("stage %d got no rule", i)
		}
		if math.Abs(rule.Limit[wire.ClassData]-500) > 1e-6 {
			t.Errorf("stage %d limit = %g, want 500", i, rule.Limit[wire.ClassData])
		}
	}
}

func TestFlatAndHierAllocationsAgree(t *testing.T) {
	// With uniform demand the flat (proportional split) and hierarchical
	// (uniform split) designs must produce identical per-stage limits.
	nFlat := fastNet()
	sFlat := startStages(t, nFlat, 6, 2, wire.Rates{900, 90})
	gFlat := buildFlat(t, nFlat, sFlat, GlobalConfig{Capacity: wire.Rates{1800, 180}})
	if _, err := gFlat.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}

	nHier := fastNet()
	sHier := startStages(t, nHier, 6, 2, wire.Rates{900, 90})
	gHier, _ := buildHierarchy(t, nHier, sHier, 2, GlobalConfig{Capacity: wire.Rates{1800, 180}})
	if _, err := gHier.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i := range sFlat {
		rf, _ := sFlat[i].LastRule()
		rh, _ := sHier[i].LastRule()
		for c := range rf.Limit {
			if math.Abs(rf.Limit[c]-rh.Limit[c]) > 1e-6 {
				t.Errorf("stage %d class %d: flat %g vs hier %g", i, c, rf.Limit[c], rh.Limit[c])
			}
		}
	}
}

func TestModeMixingRejected(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 1, 1, wire.Rates{1, 1})
	g := buildFlat(t, n, stages, GlobalConfig{Capacity: wire.Rates{100, 10}})
	err := g.AddAggregator(context.Background(), 99, "agg:1", nil)
	if err == nil {
		t.Fatal("mixing stage and aggregator children succeeded")
	}
}

func TestDuplicateChildRejected(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 1, 1, wire.Rates{1, 1})
	g := buildFlat(t, n, stages, GlobalConfig{Capacity: wire.Rates{100, 10}})
	if err := g.AddStage(context.Background(), stages[0].Info()); err == nil {
		t.Fatal("duplicate stage ID accepted")
	}
}

func TestRunCycleNoChildren(t *testing.T) {
	n := fastNet()
	g, err := NewGlobal(GlobalConfig{Network: n.Host("global"), Capacity: wire.Rates{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.RunCycle(context.Background()); !errors.Is(err, ErrNoChildren) {
		t.Fatalf("RunCycle = %v, want ErrNoChildren", err)
	}
}

func TestEvictionAfterStageDeath(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 3, 1, wire.Rates{100, 10})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:      wire.Rates{300, 30},
		CallTimeout:   200 * time.Millisecond,
		MaxFailures:   2,
		ProbeInterval: 2 * time.Millisecond,
		EvictAfter:    30 * time.Millisecond, // opt in to permanent eviction
	})
	ctx := context.Background()
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill one stage; after MaxFailures failed cycles it is quarantined,
	// its probes keep failing, and once EvictAfter elapses it must be
	// evicted — the control plane keeps serving the others throughout.
	stages[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for g.NumChildren() != 2 && time.Now().Before(deadline) {
		g.RunCycle(ctx)
		time.Sleep(5 * time.Millisecond)
	}
	if g.NumChildren() != 2 {
		t.Fatalf("children after death = %d, want 2", g.NumChildren())
	}
	if got := g.Faults().Quarantines(); got != 1 {
		t.Errorf("Quarantines = %d, want 1", got)
	}
	if g.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", g.Evictions())
	}
	if g.CallErrors() == 0 {
		t.Error("CallErrors = 0, want > 0")
	}
	// Survivors still receive rules.
	before, _ := stages[0].Counters()
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	after, _ := stages[0].Counters()
	if after <= before {
		t.Error("surviving stage no longer collected")
	}
}

func TestDynamicRegistration(t *testing.T) {
	n := fastNet()
	g, err := NewGlobal(GlobalConfig{
		Network:    n.Host("global"),
		ListenAddr: ":0",
		Capacity:   wire.Rates{1000, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Addr() == "" {
		t.Fatal("no registration address")
	}

	v, err := stage.StartVirtual(stage.Config{ID: 1, JobID: 1, Weight: 1, Network: n.Host("stage-1")})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := stage.Register(context.Background(), n.Host("stage-1"), g.Addr(), v.Info()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if g.NumChildren() != 1 {
		t.Fatalf("children after registration = %d", g.NumChildren())
	}
	if _, err := g.RunCycle(context.Background()); err != nil {
		t.Fatalf("cycle after registration: %v", err)
	}
	if _, ok := v.LastRule(); !ok {
		t.Error("registered stage got no rule")
	}
}

func TestRegistrationRejectsAggregators(t *testing.T) {
	n := fastNet()
	g, err := NewGlobal(GlobalConfig{Network: n.Host("global"), ListenAddr: ":0", Capacity: wire.Rates{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	cli, err := rpc.Dial(context.Background(), n.Host("rogue"), g.Addr(), rpc.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Call(context.Background(), &wire.Register{Role: wire.RoleAggregator, ID: 9})
	if err == nil {
		t.Error("aggregator dynamic registration accepted")
	}
}

func TestRemoveChild(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 2, 1, wire.Rates{1, 1})
	g := buildFlat(t, n, stages, GlobalConfig{Capacity: wire.Rates{100, 10}})
	if !g.RemoveChild(1) {
		t.Error("RemoveChild(1) = false")
	}
	if g.RemoveChild(1) {
		t.Error("second RemoveChild(1) = true")
	}
	if g.NumChildren() != 1 {
		t.Errorf("children = %d", g.NumChildren())
	}
}

func TestRunStressLoop(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{100, 10})
	g := buildFlat(t, n, stages, GlobalConfig{Capacity: wire.Rates{200, 20}})

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err := g.Run(ctx, 0) // stress: back-to-back cycles
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v", err)
	}
	if g.Recorder().Cycles() < 3 {
		t.Errorf("stress loop completed only %d cycles", g.Recorder().Cycles())
	}
}

func TestRunPeriodicInterval(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 2, 1, wire.Rates{10, 1})
	g := buildFlat(t, n, stages, GlobalConfig{Capacity: wire.Rates{100, 10}})

	ctx, cancel := context.WithTimeout(context.Background(), 350*time.Millisecond)
	defer cancel()
	g.Run(ctx, 100*time.Millisecond)
	// ~3-4 cycles fit in 350ms at 100ms intervals.
	if c := g.Recorder().Cycles(); c < 2 || c > 6 {
		t.Errorf("periodic loop completed %d cycles, want ~3", c)
	}
}

func TestBaselineAlgorithmWiring(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 2, 2, wire.Rates{10, 1})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:  wire.Rates{1000, 100},
		Algorithm: controlalg.Uniform{},
	})
	if _, err := g.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	r, _ := stages[0].LastRule()
	if math.Abs(r.Limit[wire.ClassData]-500) > 1e-6 {
		t.Errorf("uniform limit = %g, want 500", r.Limit[wire.ClassData])
	}
}

func TestJobStatuses(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 6, 3, wire.Rates{900, 90})
	g := buildFlat(t, n, stages, GlobalConfig{Capacity: wire.Rates{2700, 270}})

	if got := g.JobStatuses(); len(got) != 0 {
		t.Fatalf("statuses before first cycle = %d", len(got))
	}
	if _, err := g.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	statuses := g.JobStatuses()
	if len(statuses) != 3 {
		t.Fatalf("statuses = %d, want 3 jobs", len(statuses))
	}
	for i, s := range statuses {
		if s.JobID != uint64(i+1) {
			t.Errorf("statuses not sorted: [%d] = job %d", i, s.JobID)
		}
		if s.Stages != 2 {
			t.Errorf("job %d stages = %d, want 2", s.JobID, s.Stages)
		}
		if s.Demand[wire.ClassData] != 1800 {
			t.Errorf("job %d demand = %v", s.JobID, s.Demand)
		}
		// Saturated 2:1 with equal weights: each job gets 900.
		if math.Abs(s.Allocated[wire.ClassData]-900) > 1e-6 {
			t.Errorf("job %d allocated = %v, want 900", s.JobID, s.Allocated)
		}
	}
}

func TestJobStatusesHierarchical(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 6, 2, wire.Rates{900, 90})
	g, _ := buildHierarchy(t, n, stages, 2, GlobalConfig{Capacity: wire.Rates{1800, 180}})
	if _, err := g.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	statuses := g.JobStatuses()
	if len(statuses) != 2 {
		t.Fatalf("statuses = %d", len(statuses))
	}
	if statuses[0].Stages != 3 || statuses[0].Demand[wire.ClassData] != 2700 {
		t.Errorf("job 1 status = %+v", statuses[0])
	}
}

func TestDeltaEnforcementSkipsUnchangedRules(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{1000, 100}) // constant demand
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:         wire.Rates{2000, 200},
		DeltaEnforcement: true,
	})
	ctx := context.Background()

	// Cycle 1 establishes rules, cycle 2 may still adjust (usage feedback
	// settles), cycle 3+ must be quiescent.
	for i := 0; i < 3; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var before [4]uint64
	for i, v := range stages {
		_, before[i] = v.Counters()
	}
	for i := 0; i < 3; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range stages {
		_, after := v.Counters()
		if after != before[i] {
			t.Errorf("stage %d received %d enforces during quiescence", i, after-before[i])
		}
		// The rule itself must still be in force.
		if _, ok := v.LastRule(); !ok {
			t.Errorf("stage %d has no rule", i)
		}
	}

	// A demand change re-triggers enforcement... the constant generator
	// cannot change, so instead verify the inverse: without delta mode the
	// same quiescent cycles DO send enforces.
	g2 := buildFlat(t, n, stages, GlobalConfig{Capacity: wire.Rates{2000, 200}})
	_, b0 := stages[0].Counters()
	for i := 0; i < 2; i++ {
		if _, err := g2.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, b1 := stages[0].Counters(); b1 != b0+2 {
		t.Errorf("non-delta controller sent %d enforces, want 2", b1-b0)
	}
}

// TestReRegistrationGetsFullRules: under delta enforcement, a child that
// re-registers (restarted or re-homed to a promoted standby) may have lost
// its rules, so its delta cache must be invalidated and the next cycle must
// send it a full rule set — while undisturbed children stay quiescent.
func TestReRegistrationGetsFullRules(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{1000, 100}) // constant demand
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:         wire.Rates{2000, 200},
		DeltaEnforcement: true,
		ListenAddr:       ":0",
	})
	ctx := context.Background()

	// Converge, then confirm quiescence: no enforces flow.
	for i := 0; i < 3; i++ {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatal(err)
		}
	}
	_, before := stages[0].Counters()
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if _, after := stages[0].Counters(); after != before {
		t.Fatalf("stage 1 received %d enforces during quiescence", after-before)
	}

	// Stage 1 re-homes: a duplicate registration replaces its connection.
	if err := stage.Register(ctx, n.Host("stage-1"), g.Addr(), stages[0].Info()); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if got := g.Faults().ReRegistrations(); got != 1 {
		t.Fatalf("re-registrations = %d, want 1", got)
	}

	_, otherBefore := stages[1].Counters()
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	if _, after := stages[0].Counters(); after != before+1 {
		t.Fatalf("re-homed stage got %d enforces, want a full (non-delta) rule set", after-before)
	}
	if _, ok := stages[0].LastRule(); !ok {
		t.Fatal("re-homed stage has no rule after the post-re-homing cycle")
	}
	if _, otherAfter := stages[1].Counters(); otherAfter != otherBefore {
		t.Fatalf("undisturbed stage got %d enforces, want 0", otherAfter-otherBefore)
	}
}

func TestHealthCheck(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 5, 2, wire.Rates{1, 1})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:    wire.Rates{100, 10},
		CallTimeout: 300 * time.Millisecond,
	})

	h := g.HealthCheck(context.Background())
	if h.Responsive != 5 || h.Unresponsive != 0 {
		t.Fatalf("health = %+v, want 5 responsive", h)
	}
	if h.MeanRTT <= 0 || h.MinRTT <= 0 || h.MaxRTT < h.MinRTT {
		t.Errorf("RTT stats = %+v", h)
	}

	// Kill two stages: they become unresponsive but are NOT evicted.
	stages[0].Close()
	stages[1].Close()
	h = g.HealthCheck(context.Background())
	if h.Responsive != 3 || h.Unresponsive != 2 {
		t.Fatalf("health after deaths = %+v, want 3/2", h)
	}
	if g.NumChildren() != 5 {
		t.Errorf("HealthCheck evicted children: %d left", g.NumChildren())
	}
}

func TestAggregatorHealthCheck(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 3, 1, wire.Rates{1, 1})
	a, err := StartAggregator(AggregatorConfig{ID: 1, Network: n.Host("agg"), CallTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, v := range stages {
		a.AddStage(context.Background(), v.Info())
	}
	h := a.HealthCheck(context.Background())
	if h.Responsive != 3 {
		t.Fatalf("aggregator health = %+v", h)
	}
}

func TestMetersCharged(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{100, 10})
	var meter transport.Meter
	var cpu monitor.CPUMeter
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity: wire.Rates{200, 20},
		Meter:    &meter,
		CPU:      &cpu,
	})
	if _, err := g.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	if meter.Tx() == 0 || meter.Rx() == 0 {
		t.Errorf("meter = %d/%d, want nonzero", meter.Tx(), meter.Rx())
	}
	if cpu.Busy() <= 0 {
		t.Error("CPU meter not charged")
	}
}

func TestMemoryFootprintGrowsWithChildren(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 10, 2, wire.Rates{1, 1})
	g := buildFlat(t, n, stages[:2], GlobalConfig{Capacity: wire.Rates{10, 1}})
	small := g.MemoryFootprint()
	for _, v := range stages[2:] {
		if err := g.AddStage(context.Background(), v.Info()); err != nil {
			t.Fatal(err)
		}
	}
	large := g.MemoryFootprint()
	if large <= small {
		t.Errorf("footprint did not grow: %d -> %d", small, large)
	}
	var _ monitor.MemoryReporter = g
}

func TestAggregatorMemoryFootprint(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 4, 1, wire.Rates{1, 1})
	a, err := StartAggregator(AggregatorConfig{ID: 1, Network: n.Host("agg")})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	empty := a.MemoryFootprint()
	for _, v := range stages {
		a.AddStage(context.Background(), v.Info())
	}
	if a.MemoryFootprint() <= empty {
		t.Error("aggregator footprint did not grow")
	}
	var _ monitor.MemoryReporter = a
}

func TestAttachAggregatorDiscoversStages(t *testing.T) {
	// AttachAggregator queries the aggregator for its stage list — the
	// multi-host path where the global cannot know the stages up front.
	n := fastNet()
	stages := startStages(t, n, 5, 2, wire.Rates{100, 10})
	ctx := context.Background()

	a, err := StartAggregator(AggregatorConfig{ID: 77, Network: n.Host("agg")})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, v := range stages {
		if err := a.AddStage(ctx, v.Info()); err != nil {
			t.Fatal(err)
		}
	}

	g, err := NewGlobal(GlobalConfig{Network: n.Host("global"), Capacity: wire.Rates{250, 25}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.AttachAggregator(ctx, 77, a.Addr()); err != nil {
		t.Fatalf("AttachAggregator: %v", err)
	}
	if g.NumStages() != 5 {
		t.Fatalf("NumStages after attach = %d, want 5", g.NumStages())
	}
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	for i, v := range stages {
		if _, ok := v.LastRule(); !ok {
			t.Errorf("stage %d got no rule after attach", i)
		}
	}
}

func TestAttachAggregatorErrors(t *testing.T) {
	n := fastNet()
	g, err := NewGlobal(GlobalConfig{Network: n.Host("global"), Capacity: wire.Rates{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.AttachAggregator(context.Background(), 1, "nowhere:1"); err == nil {
		t.Error("AttachAggregator to nowhere succeeded")
	}
	// A stage is not an aggregator: StageList must be rejected.
	v, err := stage.StartVirtual(stage.Config{ID: 1, Network: n.Host("s")})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := g.AttachAggregator(context.Background(), 1, v.Info().Addr); err == nil {
		t.Error("AttachAggregator to a stage succeeded")
	}
}

func TestForwardRawAblation(t *testing.T) {
	// An aggregator in ForwardRaw mode relays raw per-stage reports; the
	// global controller must aggregate them itself and still produce the
	// same rules as the pre-aggregating path.
	n := fastNet()
	stages := startStages(t, n, 6, 2, wire.Rates{900, 90})
	ctx := context.Background()

	a, err := StartAggregator(AggregatorConfig{
		ID:         1000,
		Network:    n.Host("agg"),
		ForwardRaw: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, v := range stages {
		if err := a.AddStage(ctx, v.Info()); err != nil {
			t.Fatal(err)
		}
	}

	g, err := NewGlobal(GlobalConfig{Network: n.Host("global"), Capacity: wire.Rates{1800, 180}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.AddAggregator(ctx, a.ID(), a.Addr(), a.Stages()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	// Demand 5400 > cap 1800; 2 jobs × 3 stages: per-stage 300 data.
	for i, v := range stages {
		rule, ok := v.LastRule()
		if !ok {
			t.Fatalf("stage %d got no rule in ForwardRaw mode", i)
		}
		if math.Abs(rule.Limit[wire.ClassData]-300) > 1e-6 {
			t.Errorf("stage %d limit = %g, want 300", i, rule.Limit[wire.ClassData])
		}
	}
}

func TestDelegatedHierarchyMatchesPlainAllocations(t *testing.T) {
	// The §VI delegated hierarchy: global sends per-job budgets and the
	// aggregator computes per-stage rules locally. With uniform demand the
	// resulting limits must equal the plain hierarchy's.
	n := fastNet()
	stages := startStages(t, n, 6, 2, wire.Rates{900, 90})
	ctx := context.Background()

	a, err := StartAggregator(AggregatorConfig{
		ID:           1000,
		Network:      n.Host("agg"),
		LocalControl: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for _, v := range stages {
		if err := a.AddStage(ctx, v.Info()); err != nil {
			t.Fatal(err)
		}
	}

	g, err := NewGlobal(GlobalConfig{
		Network:   n.Host("global"),
		Capacity:  wire.Rates{1800, 180},
		Delegated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.AddAggregator(ctx, a.ID(), a.Addr(), a.Stages()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}
	// Demand 5400 > cap 1800; 2 jobs × 3 stages; per-stage 300 data.
	for i, v := range stages {
		rule, ok := v.LastRule()
		if !ok {
			t.Fatalf("stage %d got no rule via delegation", i)
		}
		if math.Abs(rule.Limit[wire.ClassData]-300) > 1e-6 {
			t.Errorf("stage %d limit = %g, want 300", i, rule.Limit[wire.ClassData])
		}
		if math.Abs(rule.Limit[wire.ClassMeta]-30) > 1e-6 {
			t.Errorf("stage %d meta limit = %g, want 30", i, rule.Limit[wire.ClassMeta])
		}
	}
}

func TestDelegatedSplitsProportionallyToLocalDemand(t *testing.T) {
	// Unequal demand within one job: the aggregator's local split must
	// weight stages by their observed demand — finer than what the plain
	// hierarchy (uniform split at the global) can do.
	n := fastNet()
	ctx := context.Background()
	mk := func(id uint64, rate float64) *stage.Virtual {
		v, err := stage.StartVirtual(stage.Config{
			ID: id, JobID: 1, Weight: 1,
			Generator: workload.Constant{Rates: wire.Rates{rate, 0}},
			Network:   n.Host(fmt.Sprintf("stage-%d", id)),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { v.Close() })
		return v
	}
	heavy := mk(1, 3000)
	light := mk(2, 1000)

	a, err := StartAggregator(AggregatorConfig{ID: 1000, Network: n.Host("agg"), LocalControl: true})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.AddStage(ctx, heavy.Info())
	a.AddStage(ctx, light.Info())

	g, err := NewGlobal(GlobalConfig{Network: n.Host("global"), Capacity: wire.Rates{2000, 0}, Delegated: true})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.AddAggregator(ctx, a.ID(), a.Addr(), a.Stages())
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatal(err)
	}

	rh, _ := heavy.LastRule()
	rl, _ := light.LastRule()
	// Job budget = 2000; demand split 3:1 -> 1500 / 500.
	if math.Abs(rh.Limit[wire.ClassData]-1500) > 1e-6 {
		t.Errorf("heavy stage = %g, want 1500", rh.Limit[wire.ClassData])
	}
	if math.Abs(rl.Limit[wire.ClassData]-500) > 1e-6 {
		t.Errorf("light stage = %g, want 500", rl.Limit[wire.ClassData])
	}
}

func TestDelegateRejectedWithoutLocalControl(t *testing.T) {
	n := fastNet()
	a, err := StartAggregator(AggregatorConfig{ID: 1, Network: n.Host("agg")})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	cli, err := rpc.Dial(context.Background(), n.Host("probe"), a.Addr(), rpc.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(context.Background(), &wire.Delegate{Cycle: 1}); err == nil {
		t.Error("Delegate accepted without LocalControl")
	}
}

func TestAggregatorDynamicStageRegistration(t *testing.T) {
	n := fastNet()
	a, err := StartAggregator(AggregatorConfig{ID: 1, Network: n.Host("agg")})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	v, err := stage.StartVirtual(stage.Config{ID: 1, JobID: 1, Network: n.Host("stage-1")})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if err := stage.Register(context.Background(), n.Host("stage-1"), a.Addr(), v.Info()); err != nil {
		t.Fatalf("Register with aggregator: %v", err)
	}
	if a.NumStages() != 1 {
		t.Errorf("aggregator stages = %d", a.NumStages())
	}
}
