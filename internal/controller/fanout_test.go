package controller

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// startStuckStagesOn launches fake stage servers whose collect handler
// counts the call and then blocks until gate closes, so a fan-out stalls
// with its requests in flight.
func startStuckStagesOn(t *testing.T, n *simnet.Net, count int, gate chan struct{}, calls *atomic.Int64) []stage.Info {
	t.Helper()
	infos := make([]stage.Info, count)
	for i := range infos {
		id := uint64(i + 1)
		h := n.Host(fmt.Sprintf("stage-%d", i+1))
		srv, err := rpc.Serve(h, ":0", rpc.HandlerFunc(func(peer *rpc.Peer, req wire.Message) (wire.Message, error) {
			switch m := req.(type) {
			case *wire.Collect:
				calls.Add(1)
				select {
				case <-gate:
				case <-time.After(10 * time.Second):
				}
				return &wire.CollectReply{Cycle: m.Cycle}, nil
			case *wire.Heartbeat:
				return &wire.HeartbeatAck{EchoUnixMicros: m.SentUnixMicros}, nil
			}
			return &wire.EnforceAck{}, nil
		}), rpc.ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		infos[i] = stage.Info{ID: id, JobID: 1, Weight: 1, Addr: srv.Addr().String()}
	}
	return infos
}

// TestCancelledCollectStopsFanOut checks the Scatter-based blocking fan-out
// stops issuing new child requests once the cycle context is cancelled: with
// 2 workers stuck in in-flight collects, cancelling mid-phase must abort the
// cycle without ever contacting the remaining stages.
func TestCancelledCollectStopsFanOut(t *testing.T) {
	n := fastNet()
	gate := make(chan struct{})
	defer close(gate)
	var calls atomic.Int64

	const stages = 8
	infos := startStuckStagesOn(t, n, stages, gate, &calls)

	g, err := NewGlobal(GlobalConfig{
		Network:     n.Host("global"),
		FanOut:      2,
		FanOutMode:  FanOutBlocking,
		CallTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	for _, info := range infos {
		if err := g.AddStage(context.Background(), info); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.RunCycle(ctx)
		done <- err
	}()

	// Wait until both workers are stuck inside a collect, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("fan-out never reached the stages (calls=%d)", calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled cycle reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled cycle did not return")
	}
	// The two stuck calls were in flight; at most the workers' next pickups
	// may have squeaked through, but the issue loop must have stopped well
	// short of the full fleet.
	if got := calls.Load(); got >= stages {
		t.Fatalf("cancelled collect still contacted all %d stages", got)
	}
}

// TestCancelledPipelinedCollectReturnsPromptly checks the pipelined fan-out
// honours cancellation while responses are outstanding: with every collect
// stuck server-side and a long call timeout, cancelling must end the cycle
// immediately instead of waiting out the phase deadline.
func TestCancelledPipelinedCollectReturnsPromptly(t *testing.T) {
	n := fastNet()
	gate := make(chan struct{})
	defer close(gate)
	var calls atomic.Int64

	infos := startStuckStagesOn(t, n, 4, gate, &calls)

	g, err := NewGlobal(GlobalConfig{
		Network:     n.Host("global"),
		FanOutMode:  FanOutPipelined,
		CallTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	for _, info := range infos {
		if err := g.AddStage(context.Background(), info); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.RunCycle(ctx)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("pipelined fan-out never reached the stages (calls=%d)", calls.Load())
		}
		time.Sleep(time.Millisecond)
	}
	cancelled := time.Now()
	cancel()

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled cycle reported success")
		}
		if waited := time.Since(cancelled); waited > 5*time.Second {
			t.Fatalf("cancelled cycle took %v to return, should be immediate", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled pipelined cycle did not return")
	}
}
