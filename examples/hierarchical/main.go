// Hierarchical: the paper's §IV-B experiment in one program.
//
// Builds a 10,000-node simulated infrastructure (each "compute node" runs
// one virtual data-plane stage, as in the paper) behind a configurable
// number of aggregator controllers, runs the stress workload — control
// cycles back-to-back — and prints the cycle-latency breakdown and the
// per-role resource usage that Figures 5 and Table III report.
//
// Run with:
//
//	go run ./examples/hierarchical                  # 10,000 nodes, 4 aggregators
//	go run ./examples/hierarchical -nodes 2500 -aggregators 1
//	go run ./examples/hierarchical -flat -nodes 2500
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/dsrhaslab/sdscale"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 10000, "simulated compute nodes (one stage each)")
		aggregators = flag.Int("aggregators", 4, "aggregator controllers (hierarchical)")
		flat        = flag.Bool("flat", false, "use the flat design instead (requires nodes <= connection limit)")
		duration    = flag.Duration("duration", 10*time.Second, "stress-workload measurement window")
		jobs        = flag.Int("jobs", 16, "jobs the stages are spread over")
	)
	flag.Parse()

	cfg := sdscale.ClusterConfig{
		Topology:    sdscale.Hierarchical,
		Stages:      *nodes,
		Jobs:        *jobs,
		Aggregators: *aggregators,
		Net:         sdscale.ExperimentNet(),
	}
	if *flat {
		cfg.Topology = sdscale.Flat
		cfg.Aggregators = 0
	}

	fmt.Printf("building %s control plane over %d nodes", cfg.Topology, *nodes)
	if cfg.Topology == sdscale.Hierarchical {
		fmt.Printf(" (%d aggregators, %d nodes each)", *aggregators, (*nodes+*aggregators-1) / *aggregators)
	}
	fmt.Println(" ...")

	start := time.Now()
	c, err := sdscale.BuildCluster(cfg)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	defer c.Close()
	fmt.Printf("built in %v; running stress workload for %v\n\n", time.Since(start).Round(time.Millisecond), *duration)

	uc := sdscale.NewUsageCollector(c)
	uc.Start()
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	c.Global.Run(ctx, 0) // stress: cycles back-to-back (paper §III-C)
	global, agg, elapsed := uc.Stop()

	s := c.Global.Recorder().Summarize()
	fmt.Print(s.String())
	fmt.Printf("\nresource usage over %v:\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  global:              CPU %5.2f%%  mem %6.3f GB  tx %6.2f MB/s  rx %6.2f MB/s\n",
		global.CPUPercent, global.MemGB(), global.TxMBps, global.RxMBps)
	if cfg.Topology == sdscale.Hierarchical {
		fmt.Printf("  per-aggregator mean: CPU %5.2f%%  mem %6.3f GB  tx %6.2f MB/s  rx %6.2f MB/s\n",
			agg.CPUPercent, agg.MemGB(), agg.TxMBps, agg.RxMBps)
	}
	fmt.Printf("\n(paper, 10,000 nodes: 103 ms with 4 aggregators, under 70 ms with 20;\n")
	fmt.Printf(" absolute values differ with host speed — compare shapes across runs)\n")
}
