package experiment

import (
	"context"
	"errors"
	"fmt"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
)

// FutureCoordinated evaluates the paper's §VI future-work proposal: a flat
// design with multiple coordinating controllers, each orchestrating a
// disjoint set of nodes while maintaining global visibility through per-job
// aggregate exchange. It compares the coordinated design against the
// hierarchical one at the paper's 10,000-node scale with the same number of
// controllers, using interleaved measurement like Fig. 6.
//
// The returned slice holds exactly [hierarchical, coordinated].
func FutureCoordinated(ctx context.Context, o Options) ([]Result, error) {
	o = o.withDefaults()
	nodes := o.scaled(HierNodes)
	// The paper's minimum for 10,000 nodes is 4 controllers (§IV-B), but a
	// coordinated peer additionally holds one connection per fellow peer,
	// so its partition must leave mesh headroom: 5 controllers keep every
	// peer at 2,000 stage connections + 4 peer links, under the limit.
	controllers := 5

	hier, err := cluster.Build(cluster.Config{
		Topology: cluster.Hierarchical, Stages: nodes, Jobs: o.Jobs,
		Aggregators: controllers, Net: *o.Net,
		FanOutMode: controller.FanOutBlocking, // paper fidelity
	})
	if err != nil {
		return nil, fmt.Errorf("experiment coordflat: %w", err)
	}
	defer hier.Close()
	coord, err := cluster.Build(cluster.Config{
		Topology: cluster.Coordinated, Stages: nodes, Jobs: o.Jobs,
		Aggregators: controllers, Net: *o.Net,
		FanOutMode: controller.FanOutBlocking, // paper fidelity
	})
	if err != nil {
		return nil, fmt.Errorf("experiment coordflat: %w", err)
	}
	defer coord.Close()

	results, err := o.measure(ctx, []*cluster.Cluster{hier, coord})
	if err != nil {
		return nil, fmt.Errorf("experiment coordflat: %w", err)
	}
	results[0].Name = fmt.Sprintf("hier-%d-agg%d", nodes, controllers)
	results[1].Name = fmt.Sprintf("coord-%d-peer%d", nodes, controllers)
	results[1].Aggregators = controllers
	return results, nil
}

// PrintFutureCoordinated renders the comparison.
func PrintFutureCoordinated(o Options, results []Result) {
	o = o.withDefaults()
	if len(results) != 2 {
		return
	}
	o.printf("§VI future work — hierarchical vs coordinated flat at %d nodes, %d controllers\n",
		results[0].Nodes, results[0].Aggregators)
	o.printf("%-14s %12s %12s %12s %12s %8s\n",
		"design", "collect", "compute", "enforce", "total", "cycles")
	for _, r := range results {
		o.printf("%-14s %12s %12s %12s %12s %8d\n",
			r.Topology, ms(r.Latency.Collect.Mean), ms(r.Latency.Compute.Mean),
			ms(r.Latency.Enforce.Mean), ms(r.Latency.Total.Mean), r.Latency.Cycles)
	}
	hier, coord := results[0], results[1]
	o.printf("\nper-controller usage:    CPU%%      TX MB/s    RX MB/s\n")
	o.printf("  aggregator (hier)  %7.3f   %9.3f  %9.3f  (+ global controller above them)\n",
		hier.Aggregator.CPUPercent, hier.Aggregator.TxMBps, hier.Aggregator.RxMBps)
	o.printf("  peer (coordinated) %7.3f   %9.3f  %9.3f  (no global controller at all)\n",
		coord.Aggregator.CPUPercent, coord.Aggregator.TxMBps, coord.Aggregator.RxMBps)
	o.printf("(the coordinated design removes the top-level hop; its cost is the\n")
	o.printf(" all-to-all aggregate exchange, O(peers^2) small messages per cycle)\n\n")
}

// CheckFutureCoordinatedWorks asserts the design's structural claims at any
// scale: it reaches the target node count and needs no global controller.
func CheckFutureCoordinatedWorks(results []Result) error {
	if len(results) != 2 {
		return errors.New("coordflat: want [hierarchical, coordinated] results")
	}
	coord := results[1]
	if coord.Latency.Cycles == 0 {
		return errors.New("coordflat: coordinated design completed no cycles")
	}
	if coord.Global.TxMBps != 0 || coord.Global.CPUPercent != 0 {
		return errors.New("coordflat: coordinated design reported global-controller usage")
	}
	if coord.Aggregator.TxMBps <= 0 {
		return errors.New("coordflat: peers reported no traffic")
	}
	return nil
}

// CheckFutureCoordinatedShape adds the latency claim to
// CheckFutureCoordinatedWorks: without the top-level hop on the critical
// path, coordinated rounds stay within 15% of hierarchical cycles. The
// claim holds when per-host processing dominates (paper scale); at heavily
// reduced scales the concurrent peer cycles contend for the test machine's
// real cores instead, so reduced-scale tests use the structural check only.
func CheckFutureCoordinatedShape(results []Result) error {
	if err := CheckFutureCoordinatedWorks(results); err != nil {
		return err
	}
	hier, coord := results[0], results[1]
	if float64(coord.Latency.Total.Mean) > 1.15*float64(hier.Latency.Total.Mean) {
		return fmt.Errorf("coordflat: coordinated rounds (%v) slower than hierarchical (%v)",
			coord.Latency.Total.Mean, hier.Latency.Total.Mean)
	}
	return nil
}
