package controller

import (
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// This file is the controller-side surface the elasticity and hot-reload
// machinery (internal/cluster, internal/elastic, the sdsctl daemon) drives:
// mutating an aggregator's managed set, re-declaring an aggregator child's
// stage list to the global controller, and re-tuning job weights and
// capacity on a running control plane. The child's stage list becomes
// mutable here, so every reader goes through the lock-guarded accessors
// below.

// stageList returns a snapshot of the stages behind this child (nil for a
// stage child).
func (c *child) stageList() []stage.Info {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.stages) == 0 {
		return nil
	}
	return append([]stage.Info(nil), c.stages...)
}

// setStageList replaces the child's stage list.
func (c *child) setStageList(stages []stage.Info) {
	list := append([]stage.Info(nil), stages...)
	c.mu.Lock()
	c.stages = list
	c.mu.Unlock()
}

// numStages returns the size of the child's stage list.
func (c *child) numStages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.stages)
}

// RemoveStage releases a stage from this aggregator's managed set, closing
// the connection. It reports whether the stage was managed here. The
// caller (the cluster's re-homing machinery) is responsible for the stage
// having — or promptly getting — a new owner.
func (a *Aggregator) RemoveStage(id uint64) bool {
	c := a.members.remove(id)
	if c == nil {
		return false
	}
	c.client().Close()
	return true
}

// SetAggregatorStages re-declares the stage list behind an aggregator
// child after stages were re-homed between aggregators. The global
// controller computes rules for every stage through this list (paper
// §IV-B), so it must track re-homing moves; the update is also logged to
// the store so recovery re-adopts the current placement, not the original
// one. It reports whether id names a known aggregator child.
func (g *Global) SetAggregatorStages(id uint64, stages []stage.Info) bool {
	c := g.members.get(id)
	if c == nil || c.role != wire.RoleAggregator {
		return false
	}
	c.setStageList(stages)
	for _, s := range stages {
		g.noteJob(s.JobID, s.Weight)
	}
	g.logRegister(c)
	return true
}

// SetJobWeight re-tunes one job's QoS weight on a running controller; the
// next compute phase allocates with it. Non-positive weights reset to the
// default weight 1. The change is logged to the store.
func (g *Global) SetJobWeight(jobID uint64, weight float64) {
	g.noteJob(jobID, weight)
}

// SetCapacity replaces the administrator-configured PFS capacity the
// control algorithm allocates against; the next compute phase uses it.
// Shard resizes re-split the global capacity over the new shard set with
// this.
func (g *Global) SetCapacity(r wire.Rates) {
	g.mu.Lock()
	g.capacity = r
	g.mu.Unlock()
}

// Capacity returns the capacity currently allocated against.
func (g *Global) Capacity() wire.Rates {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.capacity
}
