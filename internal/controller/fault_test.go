package controller

import (
	"context"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// A partitioned stage must be quarantined (not evicted), cycles must keep
// completing on cached reports, and healing the partition must readmit it.
func TestQuarantineHealReadmission(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 3, 1, wire.Rates{100, 10})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:      wire.Rates{300, 30},
		CallTimeout:   200 * time.Millisecond,
		MaxFailures:   2,
		ProbeInterval: 2 * time.Millisecond,
		// EvictAfter left zero: quarantine must never turn into eviction.
	})
	ctx := context.Background()

	// A healthy cycle first, so the victim has a cached report to serve
	// degraded collects from.
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatalf("warmup cycle: %v", err)
	}

	n.Host("stage-2").SetPartitioned(true)
	deadline := time.Now().Add(5 * time.Second)
	for g.NumQuarantined() != 1 && time.Now().Before(deadline) {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatalf("cycle during partition: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := g.QuarantinedIDs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("QuarantinedIDs = %v, want [2]", got)
	}
	if got := g.NumChildren(); got != 3 {
		t.Errorf("NumChildren = %d, want 3 (quarantine must not evict)", got)
	}

	// One more cycle while quarantined: it must complete, count as
	// degraded, and serve the victim's cached report as stale data.
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatalf("degraded cycle: %v", err)
	}
	f := g.Faults()
	if f.DegradedCycles() == 0 {
		t.Error("DegradedCycles = 0, want > 0")
	}
	if f.Summarize().StaleReportsUsed == 0 {
		t.Error("no stale reports used during degraded cycles")
	}

	n.Host("stage-2").SetPartitioned(false)
	deadline = time.Now().Add(5 * time.Second)
	for g.NumQuarantined() != 0 && time.Now().Before(deadline) {
		if _, err := g.RunCycle(ctx); err != nil {
			t.Fatalf("cycle after heal: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := g.NumQuarantined(); got != 0 {
		t.Fatalf("NumQuarantined = %d after heal, want 0", got)
	}
	if f.Readmissions() == 0 {
		t.Error("Readmissions = 0, want >= 1")
	}
	if f.Evictions() != 0 {
		t.Errorf("Evictions = %d, want 0", f.Evictions())
	}
	// The readmitted child takes part in cycles again.
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatalf("cycle after readmission: %v", err)
	}
}

// Caller-side cancellation is a shutdown, not a child failure: a cycle run
// under a canceled or expiring context must not charge strikes, call
// errors, quarantines, or evictions against healthy children.
func TestCancelMidCycleNoStrikes(t *testing.T) {
	// ProcTime makes each call cost ~1ms of simulated host time, so the
	// 2ms deadline below reliably expires mid-cycle.
	n := simnet.New(simnet.Config{PropDelay: -1, ProcTime: time.Millisecond})
	stages := startStages(t, n, 8, 2, wire.Rates{100, 10})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity:    wire.Rates{800, 80},
		MaxFailures: 1, // a single wrongly-charged strike would quarantine
	})
	ctx := context.Background()
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatalf("warmup cycle: %v", err)
	}
	if g.CallErrors() != 0 {
		t.Fatalf("CallErrors = %d before cancellation, want 0", g.CallErrors())
	}

	// Already-canceled context: every call fails instantly.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	g.RunCycle(canceled)

	// Deadline expiring mid-cycle: some calls are in flight when it hits.
	expiring, cancel2 := context.WithTimeout(ctx, 2*time.Millisecond)
	defer cancel2()
	g.RunCycle(expiring)

	if got := g.CallErrors(); got != 0 {
		t.Errorf("CallErrors = %d after canceled cycles, want 0", got)
	}
	f := g.Faults()
	if f.Quarantines() != 0 || f.Evictions() != 0 {
		t.Errorf("quarantines=%d evictions=%d after canceled cycles, want 0/0",
			f.Quarantines(), f.Evictions())
	}
	if got := g.NumQuarantined(); got != 0 {
		t.Errorf("NumQuarantined = %d, want 0", got)
	}

	// The children are untouched: a normal cycle still succeeds.
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatalf("cycle after canceled cycles: %v", err)
	}
}
