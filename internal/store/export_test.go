package store

// compactNow flushes pending appends and forces a compaction, so tests can
// exercise the snapshot path deterministically. Callers must ensure no
// concurrent flusher activity races the flush (a quiesced store, or a
// store whose appends have all been Synced).
func (s *Store) compactNow() error {
	s.flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// EncodeRecordForTest frames one rules record, for corpus seeding and
// crafted-corruption tests.
func encodeFrameForTest(rec record) []byte {
	s := &Store{state: newMemState()}
	s.nextLSN = rec.lsn
	s.appendLocked(rec)
	return s.pending
}
