package experiment

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/elastic"
)

// ElasticNodes is the hierarchical deployment's initial fleet size and
// ElasticInitialAggs its initial aggregator-tier size. The scenario doubles
// the fleet mid-run to breach the latency SLO, lets the elasticity loop
// grow the tier until latency recovers, then halves the fleet back and lets
// sustained headroom shrink the tier to its floor.
const (
	ElasticNodes       = 240
	ElasticInitialAggs = 2
)

// Elasticity loop tuning for the scenario. The SLO is set adaptively at
// elasticSLOFactor times the measured baseline p90 — between the healthy
// level and the ~2x level the doubled fleet produces — so the scenario's
// claims hold across host speeds. Small windows keep decisions coming every
// few cycles instead of every few hundred.
const (
	elasticSLOFactor = 1.5
	// elasticHeadroom sets the shrink threshold at 0.75x the SLO — above
	// the healthy baseline (1/1.5 = 0.67x), because once the fleet
	// subsides the cycle latency is fleet-dominated, nearly independent of
	// tier size: the subsided p90 lands at the baseline no matter how many
	// aggregators remain, so the threshold must sit above it for the
	// shrink cascade to fire. The recovered post-grow state (~0.9x the
	// SLO under the grown fleet) stays safely inside the hysteresis band.
	elasticHeadroom       = 0.75
	elasticWindow         = 5
	elasticBreachWindows  = 2
	elasticClearWindows   = 2
	elasticMaxAggs        = 6
	elasticBaselineCycles = 3 * elasticWindow
	// elasticPhaseCycles bounds each phase of the driven loop; a phase that
	// does not converge within it fails the scenario.
	elasticPhaseCycles = 200
)

// ElasticResult reports the SLO-elasticity scenario's outcome.
type ElasticResult struct {
	// Nodes and GrownNodes are the fleet sizes before and after the induced
	// load spike.
	Nodes, GrownNodes int
	// BaseAggs, PeakAggs and FinalAggs track the aggregator-tier size:
	// initial, largest while absorbing the spike, and after the load
	// subsided.
	BaseAggs, PeakAggs, FinalAggs int
	// SLO is the adaptive latency objective; BaselineP90 the healthy p90 it
	// was derived from.
	SLO, BaselineP90 time.Duration
	// BreachP90 is the worst decision-window p90 observed after the spike
	// (must exceed the SLO); RecoveredP90 the first post-grow window p90
	// back under it; SubsideP90 the window p90 when the tier finished
	// shrinking.
	BreachP90, RecoveredP90, SubsideP90 time.Duration
	// Grows and Shrinks count the loop's scaling actions; Held its
	// bound-limited decisions.
	Grows, Shrinks, Held uint64
	// Cycles is the total control cycles driven through the loop.
	Cycles int
	// RulesLost counts stages left without a rule at the end (must be
	// zero: every re-homing preserved enforcement state).
	RulesLost int
}

// elasticTier adapts the cluster's aggregator tier to the elasticity loop's
// actuator interface.
type elasticTier struct{ c *cluster.Cluster }

func (a elasticTier) Size() int                        { return a.c.NumAggregators() }
func (a elasticTier) Grow(ctx context.Context) error   { return a.c.GrowAggregators(ctx) }
func (a elasticTier) Shrink(ctx context.Context) error { return a.c.ShrinkAggregators(ctx) }

// nearestRankP90 mirrors the elastic package's quantile (nearest-rank on a
// sorted copy) for the adaptive SLO derivation.
func nearestRankP90(samples []time.Duration) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*9 + 9) / 10
	return s[idx-1]
}

// Elastic runs the SLO-elasticity scenario: a hierarchical deployment
// starts with a small aggregator tier, the fleet doubles mid-run (per-
// aggregator load doubles, so cycle p90 breaches the SLO), the elasticity
// loop grows the tier until latency recovers, the fleet halves back, and
// sustained headroom shrinks the tier to its floor — with every re-homing
// preserving every stage's enforcement state.
func Elastic(ctx context.Context, o Options) (ElasticResult, error) {
	o = o.withDefaults()
	nodes := o.scaled(ElasticNodes)
	if nodes < 40 {
		// Below this the per-aggregator load difference drowns in
		// scheduling noise and the scenario asserts nothing meaningful.
		nodes = 40
	}

	c, err := cluster.Build(cluster.Config{
		Topology:    cluster.Hierarchical,
		Stages:      nodes,
		Jobs:        o.Jobs,
		Aggregators: ElasticInitialAggs,
		Net:         *o.Net,
		MaxCodec:    o.MaxCodec,
	})
	if err != nil {
		return ElasticResult{}, fmt.Errorf("experiment elastic: %w", err)
	}
	defer c.Close()

	r := ElasticResult{
		Nodes: nodes, GrownNodes: 2 * nodes,
		BaseAggs: ElasticInitialAggs, PeakAggs: ElasticInitialAggs,
	}

	for i := 0; i < o.Warmup; i++ {
		if _, err := c.RunControlCycle(ctx); err != nil {
			return r, fmt.Errorf("experiment elastic: warmup: %w", err)
		}
	}

	// Healthy baseline: measure p90 at the initial shape and derive the SLO
	// between it and the doubled-fleet level.
	samples := make([]time.Duration, 0, elasticBaselineCycles)
	for i := 0; i < elasticBaselineCycles; i++ {
		bd, err := c.RunControlCycle(ctx)
		if err != nil {
			return r, fmt.Errorf("experiment elastic: baseline: %w", err)
		}
		samples = append(samples, bd.Total)
	}
	r.BaselineP90 = nearestRankP90(samples)
	r.SLO = time.Duration(float64(r.BaselineP90) * elasticSLOFactor)

	el, err := elastic.New(elastic.Config{
		SLO:           r.SLO,
		Window:        elasticWindow,
		BreachWindows: elasticBreachWindows,
		ClearWindows:  elasticClearWindows,
		HeadroomRatio: elasticHeadroom,
		Min:           ElasticInitialAggs,
		Max:           elasticMaxAggs,
	}, elasticTier{c})
	if err != nil {
		return r, fmt.Errorf("experiment elastic: %w", err)
	}

	deadline := time.Now().Add(o.MaxDuration)
	// step drives one control cycle through the loop and updates the
	// running peaks.
	step := func() (elastic.Stats, error) {
		bd, err := c.RunControlCycle(ctx)
		if err != nil {
			return elastic.Stats{}, fmt.Errorf("experiment elastic: cycle: %w", err)
		}
		r.Cycles++
		if _, err := el.Observe(ctx, bd.Total); err != nil {
			return elastic.Stats{}, fmt.Errorf("experiment elastic: actuator: %w", err)
		}
		st := el.Stats()
		if n := c.NumAggregators(); n > r.PeakAggs {
			r.PeakAggs = n
		}
		if st.LastP90 > r.BreachP90 {
			r.BreachP90 = st.LastP90
		}
		return st, nil
	}

	// Phase 1 — induce the breach: double the fleet. Per-aggregator load
	// doubles, window p90 crosses the SLO, and the loop grows the tier.
	// The phase converges when latency is back under the objective on a
	// grown tier.
	if err := c.SetStages(ctx, r.GrownNodes); err != nil {
		return r, fmt.Errorf("experiment elastic: grow fleet: %w", err)
	}
	recovered := false
	for i := 0; i < elasticPhaseCycles && time.Now().Before(deadline); i++ {
		st, err := step()
		if err != nil {
			return r, err
		}
		if st.Grows >= 1 && st.LastP90 > 0 && st.LastP90 <= r.SLO {
			r.RecoveredP90 = st.LastP90
			r.Grows, r.Held = st.Grows, st.Held
			recovered = true
			break
		}
		if ctx.Err() != nil {
			return r, ctx.Err()
		}
	}
	if !recovered {
		st := el.Stats()
		return r, fmt.Errorf("experiment elastic: latency never recovered under the %v SLO (last window p90 %v, %d grows, tier %d)",
			r.SLO, st.LastP90, st.Grows, c.NumAggregators())
	}

	// Phase 2 — subside: halve the fleet back. Sustained headroom must
	// shrink the tier to its floor (hysteresis holds it there).
	if err := c.SetStages(ctx, nodes); err != nil {
		return r, fmt.Errorf("experiment elastic: shrink fleet: %w", err)
	}
	settled := false
	for i := 0; i < elasticPhaseCycles && time.Now().Before(deadline); i++ {
		st, err := step()
		if err != nil {
			return r, err
		}
		if st.Shrinks >= 1 && c.NumAggregators() == ElasticInitialAggs {
			r.SubsideP90 = st.LastP90
			r.Shrinks = st.Shrinks
			settled = true
			break
		}
		if ctx.Err() != nil {
			return r, ctx.Err()
		}
	}
	if !settled {
		st := el.Stats()
		return r, fmt.Errorf("experiment elastic: tier never shrank back to %d after the load subsided (tier %d, %d shrinks, last window p90 %v)",
			ElasticInitialAggs, c.NumAggregators(), st.Shrinks, st.LastP90)
	}
	r.FinalAggs = c.NumAggregators()

	// One more cycle on the settled shape, then the zero-rule-loss check:
	// every stage — original, grown, and survivor of two re-homings — must
	// hold an enforced rule.
	if _, err := c.RunControlCycle(ctx); err != nil {
		return r, fmt.Errorf("experiment elastic: settled cycle: %w", err)
	}
	r.Cycles++
	for _, v := range c.Stages {
		if _, ok := v.LastRule(); !ok {
			r.RulesLost++
		}
	}
	return r, nil
}

// PrintElastic renders the scenario's outcome.
func PrintElastic(o Options, r ElasticResult) {
	o = o.withDefaults()
	o.printf("elastic — hierarchical deployment, fleet %d -> %d -> %d nodes, SLO-driven aggregator tier\n",
		r.Nodes, r.GrownNodes, r.Nodes)
	o.printf("  slo                     p90 <= %v (1.5x the %v healthy baseline)\n",
		r.SLO.Round(time.Microsecond), r.BaselineP90.Round(time.Microsecond))
	o.printf("  tier                    %d -> %d (spike) -> %d (settled), %d grows, %d shrinks, %d held\n",
		r.BaseAggs, r.PeakAggs, r.FinalAggs, r.Grows, r.Shrinks, r.Held)
	o.printf("  window p90              breach %v -> recovered %v -> subsided %v\n",
		r.BreachP90.Round(time.Microsecond), r.RecoveredP90.Round(time.Microsecond), r.SubsideP90.Round(time.Microsecond))
	o.printf("  driven cycles           %d\n", r.Cycles)
	o.printf("  rule consistency        %d stages without a rule (zero rule loss across re-homings)\n\n", r.RulesLost)
}

// CheckElastic asserts the scenario's claims: the spike breached the SLO
// and the tier grew in response, latency recovered under the objective on
// the grown tier, sustained headroom shrank the tier back to its floor,
// and no stage lost its enforcement state across any re-homing.
func CheckElastic(r ElasticResult) error {
	if r.BreachP90 <= r.SLO {
		return fmt.Errorf("elastic: doubled fleet never breached the SLO (worst window p90 %v vs %v)", r.BreachP90, r.SLO)
	}
	if r.PeakAggs <= r.BaseAggs {
		return fmt.Errorf("elastic: tier never grew past %d aggregators under the breach", r.BaseAggs)
	}
	if r.Grows < 1 {
		return fmt.Errorf("elastic: no grow actions recorded")
	}
	if r.RecoveredP90 <= 0 || r.RecoveredP90 > r.SLO {
		return fmt.Errorf("elastic: latency did not recover under the SLO (window p90 %v vs %v)", r.RecoveredP90, r.SLO)
	}
	if r.Shrinks < 1 {
		return fmt.Errorf("elastic: no shrink actions after the load subsided")
	}
	if r.FinalAggs != r.BaseAggs {
		return fmt.Errorf("elastic: tier settled at %d aggregators, want the %d floor", r.FinalAggs, r.BaseAggs)
	}
	if r.RulesLost != 0 {
		return fmt.Errorf("elastic: %d stages lost their rule across the re-homings", r.RulesLost)
	}
	return nil
}
