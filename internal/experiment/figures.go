package experiment

import (
	"context"
	"errors"
	"fmt"

	"github.com/dsrhaslab/sdscale/internal/cluster"
	"github.com/dsrhaslab/sdscale/internal/controller"
	"github.com/dsrhaslab/sdscale/internal/top500"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
)

// FlatNodeCounts are the paper's Fig. 4 x-axis values.
var FlatNodeCounts = []int{50, 500, 1250, 2500}

// HierAggregatorCounts are the paper's Fig. 5 x-axis values.
var HierAggregatorCounts = []int{4, 5, 10, 20}

// HierNodes is the paper's Fig. 5 cluster size.
const HierNodes = 10000

// CrossoverNodes is the paper's Fig. 6 / Table IV cluster size.
const CrossoverNodes = 2500

// Fig4 measures the flat design's control-cycle latency for an increasing
// number of compute nodes (paper Fig. 4). The same run's resource usage is
// Table II.
func Fig4(ctx context.Context, o Options) ([]Result, error) {
	o = o.withDefaults()
	var results []Result
	for _, n := range FlatNodeCounts {
		nodes := o.scaled(n)
		r, err := o.runOne(ctx, fmt.Sprintf("flat-%d", nodes), cluster.Flat, nodes, 0)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// PrintFig4 renders the Fig. 4 series: average control-cycle latency with
// the per-phase breakdown.
func PrintFig4(o Options, results []Result) {
	o = o.withDefaults()
	o.printf("Fig. 4 — flat design: average control-cycle latency (ms) by compute nodes\n")
	o.printf("%8s %12s %12s %12s %12s %10s %8s\n",
		"nodes", "collect", "compute", "enforce", "total", "rel-std", "cycles")
	for _, r := range results {
		o.printf("%8d %12s %12s %12s %12s %9.1f%% %8d\n",
			r.Nodes, ms(r.Latency.Collect.Mean), ms(r.Latency.Compute.Mean),
			ms(r.Latency.Enforce.Mean), ms(r.Latency.Total.Mean),
			100*r.Latency.RelStddev(), r.Latency.Cycles)
	}
	o.printf("%s", renderLatencyChart(latencyRows(results, func(r Result) string {
		return fmt.Sprintf("%d nodes", r.Nodes)
	}), 0))
	o.printf("(paper: 1.11 ms at 50 nodes rising to 40.40 ms at 2,500 nodes)\n\n")
}

// CheckFig4Shape asserts the figure's qualitative findings: latency grows
// monotonically with node count, the growth is superlinear in total (at
// least 5x from 50 to 2,500 nodes), and enforce costs at least as much as
// collect at the largest scale (paper: "the enforce phase is more
// demanding than the collect phase").
func CheckFig4Shape(results []Result) error {
	if len(results) < 2 {
		return errors.New("fig4: need at least two scales")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Latency.Total.Mean <= results[i-1].Latency.Total.Mean {
			return fmt.Errorf("fig4: latency not increasing: %v nodes %v -> %v nodes %v",
				results[i-1].Nodes, results[i-1].Latency.Total.Mean,
				results[i].Nodes, results[i].Latency.Total.Mean)
		}
	}
	first, last := results[0], results[len(results)-1]
	if ratio := float64(last.Latency.Total.Mean) / float64(first.Latency.Total.Mean); ratio < 5 {
		return fmt.Errorf("fig4: growth %0.1fx from %d to %d nodes, want >= 5x",
			ratio, first.Nodes, last.Nodes)
	}
	if last.Latency.Enforce.Mean < last.Latency.Collect.Mean*9/10 {
		return fmt.Errorf("fig4: enforce (%v) much cheaper than collect (%v) at %d nodes",
			last.Latency.Enforce.Mean, last.Latency.Collect.Mean, last.Nodes)
	}
	return nil
}

// PrintTable2 renders Table II: the flat global controller's resource
// utilization per node count.
func PrintTable2(o Options, results []Result) {
	o = o.withDefaults()
	o.printf("Table II — flat design: global controller resource utilization\n")
	o.printf("%-18s", "Resource")
	for _, r := range results {
		o.printf(" %10d", r.Nodes)
	}
	o.printf("\n")
	row := func(name string, f func(Result) float64) {
		o.printf("%-18s", name)
		for _, r := range results {
			o.printf(" %10.3f", f(r))
		}
		o.printf("\n")
	}
	row("CPU (%)", func(r Result) float64 { return r.Global.CPUPercent })
	row("Memory (GB)", func(r Result) float64 { return r.Global.MemGB() })
	row("Transmitted (MB/s)", func(r Result) float64 { return r.Global.TxMBps })
	row("Received (MB/s)", func(r Result) float64 { return r.Global.RxMBps })
	o.printf("(paper at 2,500 nodes: 10.34%% CPU, 1.18 GB, 9.73/5.36 MB/s)\n\n")
}

// CheckTable2Shape asserts resource usage grows with managed node count.
func CheckTable2Shape(results []Result) error {
	if len(results) < 2 {
		return errors.New("table2: need at least two scales")
	}
	first, last := results[0], results[len(results)-1]
	if last.Global.MemBytes <= first.Global.MemBytes {
		return fmt.Errorf("table2: memory did not grow: %d -> %d bytes",
			first.Global.MemBytes, last.Global.MemBytes)
	}
	if last.Global.TxMBps <= 0 || last.Global.RxMBps <= 0 {
		return errors.New("table2: zero network usage at largest scale")
	}
	return nil
}

// Fig5 measures the hierarchical design at 10,000 nodes for an increasing
// number of aggregators (paper Fig. 5). The same run's resource usage is
// Table III.
func Fig5(ctx context.Context, o Options) ([]Result, error) {
	o = o.withDefaults()
	nodes := o.scaled(HierNodes)
	var results []Result
	for _, aggs := range HierAggregatorCounts {
		r, err := o.runOne(ctx, fmt.Sprintf("hier-%d-agg%d", nodes, aggs), cluster.Hierarchical, nodes, aggs)
		if err != nil {
			return results, err
		}
		results = append(results, r)
	}
	return results, nil
}

// PrintFig5 renders the Fig. 5 series.
func PrintFig5(o Options, results []Result) {
	o = o.withDefaults()
	if len(results) > 0 {
		o.printf("Fig. 5 — hierarchical design at %d nodes: latency (ms) by aggregator count\n", results[0].Nodes)
	}
	o.printf("%8s %12s %12s %12s %12s %10s %8s\n",
		"aggs", "collect", "compute", "enforce", "total", "rel-std", "cycles")
	for _, r := range results {
		o.printf("%8d %12s %12s %12s %12s %9.1f%% %8d\n",
			r.Aggregators, ms(r.Latency.Collect.Mean), ms(r.Latency.Compute.Mean),
			ms(r.Latency.Enforce.Mean), ms(r.Latency.Total.Mean),
			100*r.Latency.RelStddev(), r.Latency.Cycles)
	}
	o.printf("%s", renderLatencyChart(latencyRows(results, func(r Result) string {
		return fmt.Sprintf("%d aggs", r.Aggregators)
	}), 0))
	o.printf("(paper: 103 ms with 4 aggregators falling to <70 ms with 20)\n\n")
}

// CheckFig5Shape asserts the figure's findings: more aggregators reduce
// total latency (comparing the fewest to the most), while the compute
// phase stays roughly constant.
func CheckFig5Shape(results []Result) error {
	if len(results) < 2 {
		return errors.New("fig5: need at least two aggregator counts")
	}
	first, last := results[0], results[len(results)-1]
	if last.Latency.Total.Mean >= first.Latency.Total.Mean {
		return fmt.Errorf("fig5: latency did not drop from %d to %d aggregators: %v -> %v",
			first.Aggregators, last.Aggregators, first.Latency.Total.Mean, last.Latency.Total.Mean)
	}
	// Compute phase should not grow materially with aggregator count: it
	// depends on jobs and total stages, not on the fan-out width.
	if first.Latency.Compute.Mean > 0 {
		ratio := float64(last.Latency.Compute.Mean) / float64(first.Latency.Compute.Mean)
		if ratio > 3 {
			return fmt.Errorf("fig5: compute phase grew %.1fx with aggregator count", ratio)
		}
	}
	return nil
}

// PrintTable3 renders Table III: resource utilization of the global
// controller and the per-aggregator mean, by aggregator count.
func PrintTable3(o Options, results []Result) {
	o = o.withDefaults()
	if len(results) > 0 {
		o.printf("Table III — hierarchical design at %d nodes: resource utilization\n", results[0].Nodes)
	}
	o.printf("%-11s %-18s", "Controller", "Resource")
	for _, r := range results {
		o.printf(" %9d", r.Aggregators)
	}
	o.printf("\n")
	row := func(ctrl, name string, f func(Result) float64) {
		o.printf("%-11s %-18s", ctrl, name)
		for _, r := range results {
			o.printf(" %9.3f", f(r))
		}
		o.printf("\n")
	}
	row("Global", "CPU (%)", func(r Result) float64 { return r.Global.CPUPercent })
	row("Global", "Memory (GB)", func(r Result) float64 { return r.Global.MemGB() })
	row("Global", "Transmitted (MB/s)", func(r Result) float64 { return r.Global.TxMBps })
	row("Global", "Received (MB/s)", func(r Result) float64 { return r.Global.RxMBps })
	row("Aggregator", "CPU (%)", func(r Result) float64 { return r.Aggregator.CPUPercent })
	row("Aggregator", "Memory (GB)", func(r Result) float64 { return r.Aggregator.MemGB() })
	row("Aggregator", "Transmitted (MB/s)", func(r Result) float64 { return r.Aggregator.TxMBps })
	row("Aggregator", "Received (MB/s)", func(r Result) float64 { return r.Aggregator.RxMBps })
	o.printf("(paper: per-aggregator usage falls as aggregators are added; global TX exceeds RX)\n\n")
}

// CheckTable3Shape asserts the table's findings: per-aggregator load falls
// as aggregators are added, and the global controller transmits more than
// it receives (it sends per-stage rules but receives per-job aggregates).
func CheckTable3Shape(results []Result) error {
	if len(results) < 2 {
		return errors.New("table3: need at least two aggregator counts")
	}
	first, last := results[0], results[len(results)-1]
	if last.Aggregator.TxMBps >= first.Aggregator.TxMBps {
		return fmt.Errorf("table3: per-aggregator TX did not fall: %.3f -> %.3f MB/s",
			first.Aggregator.TxMBps, last.Aggregator.TxMBps)
	}
	if last.Aggregator.MemBytes >= first.Aggregator.MemBytes {
		return fmt.Errorf("table3: per-aggregator memory did not fall: %d -> %d",
			first.Aggregator.MemBytes, last.Aggregator.MemBytes)
	}
	for _, r := range results {
		if r.Global.TxMBps <= r.Global.RxMBps {
			return fmt.Errorf("table3: global TX (%.3f) not above RX (%.3f) with %d aggregators",
				r.Global.TxMBps, r.Global.RxMBps, r.Aggregators)
		}
	}
	return nil
}

// Fig6 measures the flat design against a single-aggregator hierarchy at
// 2,500 nodes (paper Fig. 6). The same run's resource usage is Table IV.
// The returned slice holds exactly [flat, hierarchical].
//
// Both deployments are measured with interleaved cycles: the hierarchy's
// penalty is a few percent of the cycle, smaller than the slow drift two
// back-to-back measurement windows can accumulate on a shared host.
func Fig6(ctx context.Context, o Options) ([]Result, error) {
	o = o.withDefaults()
	// The hierarchy's penalty is a few percent of the cycle; median-based
	// comparison over a larger sample keeps the check out of the noise.
	if o.MinCycles < 20 {
		o.MinCycles = 20
	}
	nodes := o.scaled(CrossoverNodes)

	flatCluster, err := cluster.Build(cluster.Config{
		Topology: cluster.Flat, Stages: nodes, Jobs: o.Jobs, Net: *o.Net,
		FanOutMode: controller.FanOutBlocking, // paper fidelity
	})
	if err != nil {
		return nil, fmt.Errorf("experiment fig6: %w", err)
	}
	defer flatCluster.Close()
	hierCluster, err := cluster.Build(cluster.Config{
		Topology: cluster.Hierarchical, Stages: nodes, Jobs: o.Jobs, Aggregators: 1, Net: *o.Net,
		FanOutMode: controller.FanOutBlocking, // paper fidelity
	})
	if err != nil {
		return nil, fmt.Errorf("experiment fig6: %w", err)
	}
	defer hierCluster.Close()

	results, err := o.measure(ctx, []*cluster.Cluster{flatCluster, hierCluster})
	if err != nil {
		return nil, fmt.Errorf("experiment fig6: %w", err)
	}
	results[0].Name = fmt.Sprintf("flat-%d", nodes)
	results[1].Name = fmt.Sprintf("hier-%d-agg1", nodes)
	return results, nil
}

// PrintFig6 renders the Fig. 6 comparison.
func PrintFig6(o Options, results []Result) {
	o = o.withDefaults()
	if len(results) > 0 {
		o.printf("Fig. 6 — flat vs hierarchical (1 aggregator) at %d nodes: latency (ms)\n", results[0].Nodes)
	}
	o.printf("%-14s %12s %12s %12s %12s %8s\n",
		"design", "collect", "compute", "enforce", "total", "cycles")
	for _, r := range results {
		o.printf("%-14s %12s %12s %12s %12s %8d\n",
			r.Topology, ms(r.Latency.Collect.Mean), ms(r.Latency.Compute.Mean),
			ms(r.Latency.Enforce.Mean), ms(r.Latency.Total.Mean), r.Latency.Cycles)
	}
	o.printf("%s", renderLatencyChart(latencyRows(results, func(r Result) string {
		return r.Topology.String()
	}), 0))
	o.printf("(paper: 41 ms flat vs 53 ms hierarchical; compute phase shrinks under the hierarchy)\n\n")
}

// CheckFig6Shape asserts the figure's findings: the hierarchy costs more
// total latency than flat at 2,500 nodes (compared on medians, which GC
// outliers cannot tilt; a 2% tolerance absorbs residual sampling noise),
// the penalty is bounded (under 75%, paper: ~30%), and the global
// controller's compute phase shrinks.
func CheckFig6Shape(results []Result) error {
	if len(results) != 2 {
		return errors.New("fig6: want [flat, hierarchical] results")
	}
	flat, hier := results[0], results[1]
	if float64(hier.Latency.Total.P50) <= 0.98*float64(flat.Latency.Total.P50) {
		return fmt.Errorf("fig6: hierarchy median (%v) clearly below flat (%v)",
			hier.Latency.Total.P50, flat.Latency.Total.P50)
	}
	if ratio := float64(hier.Latency.Total.P50) / float64(flat.Latency.Total.P50); ratio > 1.75 {
		return fmt.Errorf("fig6: hierarchy penalty %.2fx, want bounded (< 1.75x)", ratio)
	}
	// The compute phase must not grow: offloading aggregation to the
	// aggregator can only reduce the global controller's compute work. At
	// paper scale it shrinks ~4x; a 20% tolerance covers measurement noise
	// at reduced scales where both phases are microseconds.
	if float64(hier.Latency.Compute.Mean) >= 1.2*float64(flat.Latency.Compute.Mean) {
		return fmt.Errorf("fig6: compute phase grew: flat %v vs hier %v",
			flat.Latency.Compute.Mean, hier.Latency.Compute.Mean)
	}
	return nil
}

// PrintTable4 renders Table IV: per-role resource usage for both designs.
func PrintTable4(o Options, results []Result) {
	o = o.withDefaults()
	if len(results) != 2 {
		return
	}
	flat, hier := results[0], results[1]
	o.printf("Table IV — flat vs hierarchical (1 aggregator) at %d nodes: resource utilization\n", flat.Nodes)
	o.printf("%-11s %-18s %10s %13s\n", "Controller", "Resource", "Flat", "Hierarchical")
	o.printf("%-11s %-18s %10.3f %13.3f\n", "Global", "CPU (%)", flat.Global.CPUPercent, hier.Global.CPUPercent)
	o.printf("%-11s %-18s %10.3f %13.3f\n", "Global", "Memory (GB)", flat.Global.MemGB(), hier.Global.MemGB())
	o.printf("%-11s %-18s %10.3f %13.3f\n", "Global", "Transmitted (MB/s)", flat.Global.TxMBps, hier.Global.TxMBps)
	o.printf("%-11s %-18s %10.3f %13.3f\n", "Global", "Received (MB/s)", flat.Global.RxMBps, hier.Global.RxMBps)
	o.printf("%-11s %-18s %10s %13.3f\n", "Aggregator", "CPU (%)", "-", hier.Aggregator.CPUPercent)
	o.printf("%-11s %-18s %10s %13.3f\n", "Aggregator", "Memory (GB)", "-", hier.Aggregator.MemGB())
	o.printf("%-11s %-18s %10s %13.3f\n", "Aggregator", "Transmitted (MB/s)", "-", hier.Aggregator.TxMBps)
	o.printf("%-11s %-18s %10s %13.3f\n", "Aggregator", "Received (MB/s)", "-", hier.Aggregator.RxMBps)
	o.printf("(paper: global CPU falls 10.34%% -> 1.15%%; the aggregator absorbs the load)\n\n")
}

// CheckTable4Shape asserts the table's findings: moving to the hierarchy
// drains the global controller's CPU and network load into the aggregator.
func CheckTable4Shape(results []Result) error {
	if len(results) != 2 {
		return errors.New("table4: want [flat, hierarchical] results")
	}
	flat, hier := results[0], results[1]
	if hier.Global.CPUPercent >= flat.Global.CPUPercent {
		return fmt.Errorf("table4: global CPU did not fall: %.2f%% -> %.2f%%",
			flat.Global.CPUPercent, hier.Global.CPUPercent)
	}
	if hier.Global.TxMBps >= flat.Global.TxMBps {
		return fmt.Errorf("table4: global TX did not fall: %.3f -> %.3f MB/s",
			flat.Global.TxMBps, hier.Global.TxMBps)
	}
	if hier.Aggregator.CPUPercent <= hier.Global.CPUPercent {
		return fmt.Errorf("table4: aggregator CPU (%.2f%%) not above global (%.2f%%)",
			hier.Aggregator.CPUPercent, hier.Global.CPUPercent)
	}
	return nil
}

// ConnLimitResult reports the §IV-A connection-limit probe.
type ConnLimitResult struct {
	// Limit is the per-host connection limit in force.
	Limit int
	// FlatMax is the largest flat deployment that could be built.
	FlatMax int
	// FlatFailedAt is the node count where the flat build failed.
	FlatFailedAt int
	// HierNodes and HierAggregators describe the hierarchical deployment
	// that succeeded past the limit.
	HierNodes, HierAggregators int
}

// ConnLimit reproduces the observation behind the paper's §IV-A: a flat
// controller cannot exceed the per-node connection limit, while a
// hierarchy with ceil(nodes/limit) aggregators can. To keep the probe
// cheap it runs at a reduced limit and verifies the boundary exactly.
func ConnLimit(ctx context.Context, o Options) (ConnLimitResult, error) {
	o = o.withDefaults()
	limit := 100
	net := *o.Net
	net.MaxConnsPerHost = limit

	res := ConnLimitResult{Limit: limit}

	// At the limit: must build.
	c, err := cluster.Build(cluster.Config{Topology: cluster.Flat, Stages: limit, Jobs: o.Jobs, Net: net})
	if err != nil {
		return res, fmt.Errorf("connlimit: flat at the limit failed: %w", err)
	}
	c.Close()
	res.FlatMax = limit

	// One past the limit: must fail with ErrConnLimit.
	if _, err := cluster.Build(cluster.Config{Topology: cluster.Flat, Stages: limit + 1, Jobs: o.Jobs, Net: net}); err == nil {
		return res, errors.New("connlimit: flat build beyond the limit unexpectedly succeeded")
	} else if !errors.Is(err, transport.ErrConnLimit) {
		return res, fmt.Errorf("connlimit: expected ErrConnLimit, got %v", err)
	}
	res.FlatFailedAt = limit + 1

	// A hierarchy sized by the paper's rule escapes the limit.
	nodes := limit * 4
	aggs := (nodes + limit - 1) / limit
	hc, err := cluster.Build(cluster.Config{
		Topology: cluster.Hierarchical, Stages: nodes, Aggregators: aggs, Jobs: o.Jobs, Net: net,
	})
	if err != nil {
		return res, fmt.Errorf("connlimit: hierarchy failed: %w", err)
	}
	defer hc.Close()
	if _, err := hc.Global.RunCycle(ctx); err != nil {
		return res, fmt.Errorf("connlimit: hierarchy cycle: %w", err)
	}
	res.HierNodes = nodes
	res.HierAggregators = aggs
	return res, nil
}

// PrintConnLimit renders the probe's outcome.
func PrintConnLimit(o Options, r ConnLimitResult) {
	o = o.withDefaults()
	o.printf("§IV-A connection limit probe (limit scaled to %d)\n", r.Limit)
	o.printf("  flat design:          %d nodes OK, fails at %d (ErrConnLimit)\n", r.FlatMax, r.FlatFailedAt)
	o.printf("  hierarchical design:  %d nodes via %d aggregators OK\n", r.HierNodes, r.HierAggregators)
	o.printf("(paper: a Frontera node sustains 2,500 connections; 10,000 nodes need >= 4 aggregators)\n\n")
}

// PrintTable1 renders the paper's Table I with the control-plane sizing
// the study implies for each system.
func PrintTable1(o Options) {
	o = o.withDefaults()
	o.printf("Table I — Top500 systems (June 2024)\n")
	o.printf("%s", top500.Table())
	o.printf("\nControl-plane sizing at the paper's %d-connection limit:\n", simnet.DefaultMaxConns)
	for _, s := range top500.Systems() {
		if top500.FitsFlat(s, simnet.DefaultMaxConns) {
			o.printf("  %-10s flat (single controller)\n", s.Name)
		} else {
			o.printf("  %-10s hierarchical, >= %d aggregators\n", s.Name, top500.MinAggregators(s, simnet.DefaultMaxConns))
		}
	}
	o.printf("\n")
}
