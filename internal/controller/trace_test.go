package controller

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// TestTracedCycleSpans checks that a flat cycle records one cycle span,
// three phase spans, and per-child call spans, all carrying the cycle's
// context (cycle number, epoch, fan-out mode, phase).
func TestTracedCycleSpans(t *testing.T) {
	tr := trace.New(4096)
	n := fastNet()
	stages := startStages(t, n, 6, 2, wire.Rates{1000, 100})
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity: wire.Rates{4000, 400},
		Epoch:    3,
		Tracer:   tr,
	})

	if _, err := g.RunCycle(context.Background()); err != nil {
		t.Fatalf("RunCycle: %v", err)
	}

	var cycles, phases, calls int
	for _, s := range tr.Snapshot() {
		if s.Epoch != 3 {
			t.Fatalf("span with wrong epoch: %+v", s)
		}
		if s.Cycle != 1 {
			t.Fatalf("span with wrong cycle: %+v", s)
		}
		switch s.Kind {
		case trace.KindCycle:
			cycles++
			if s.Phase != trace.PhaseNone {
				t.Fatalf("cycle span carries a phase: %+v", s)
			}
		case trace.KindPhase:
			phases++
		case trace.KindCall:
			calls++
			if s.Phase != trace.PhaseCollect && s.Phase != trace.PhaseEnforce {
				t.Fatalf("call span outside fan-out phases: %+v", s)
			}
			if s.Tag == 0 {
				t.Fatalf("call span without child tag: %+v", s)
			}
		}
	}
	if cycles != 1 || phases != 3 {
		t.Fatalf("got %d cycle / %d phase spans, want 1 / 3", cycles, phases)
	}
	// Collect and enforce each fan out to every stage.
	if want := 2 * len(stages); calls != want {
		t.Fatalf("got %d call spans, want %d", calls, want)
	}

	tot := tr.Totals()
	if tot.Cycles != 1 || tot.ClientCalls != uint64(2*len(stages)) || tot.ClientErrors != 0 {
		t.Fatalf("totals: %+v", tot)
	}
}

// TestStatsDuringLiveCycle hammers Stats from several goroutines while
// cycles run. Stats promises per-field (not cross-field) consistency; under
// the race detector this test proves every field read is individually
// synchronized with the cycle that updates it.
func TestStatsDuringLiveCycle(t *testing.T) {
	n := fastNet()
	stages := startStages(t, n, 8, 2, wire.Rates{1000, 100})
	g := buildFlat(t, n, stages, GlobalConfig{Capacity: wire.Rates{4000, 400}})

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := g.RunCycle(context.Background()); err != nil {
				t.Errorf("RunCycle: %v", err)
				return
			}
		}
	}()

	const readers = 4
	readersDone := make(chan struct{}, readers)
	for range readers {
		go func() {
			defer func() { readersDone <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := g.Stats()
				if st.Children != 8 {
					t.Errorf("Stats children = %d, want 8", st.Children)
					return
				}
				_ = st.Pipeline.CollectInFlight
				_ = st.Faults.Quarantines
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	<-done
	for range readers {
		<-readersDone
	}
}

// TestTracedFailoverSpanLifecycle checks the span lifecycle across a
// leadership change: a stepped-down controller records nothing new (no ring
// entries attributed to a stale epoch), and a promoted standby's spans carry
// the bumped epoch.
func TestTracedFailoverSpanLifecycle(t *testing.T) {
	ctx := context.Background()
	n := fastNet()
	stages := startStages(t, n, 4, 2, wire.Rates{1000, 100})

	primaryTr := trace.New(4096)
	g := buildFlat(t, n, stages, GlobalConfig{
		Capacity: wire.Rates{4000, 400},
		Epoch:    5,
		Tracer:   primaryTr,
	})
	if _, err := g.RunCycle(ctx); err != nil {
		t.Fatalf("RunCycle: %v", err)
	}

	// Call spans finish on the read-loop goroutine; wait until the ring
	// quiesces so the pre-step-down append count is stable.
	waitStableAppends(t, primaryTr)
	before := primaryTr.Appends()

	g.stepDown("test: simulated newer epoch")
	if _, err := g.RunCycle(ctx); !errors.Is(err, ErrDeposed) {
		t.Fatalf("RunCycle after step-down: %v, want ErrDeposed", err)
	}
	time.Sleep(20 * time.Millisecond)
	if got := primaryTr.Appends(); got != before {
		t.Fatalf("deposed controller appended %d spans", got-before)
	}
	for _, s := range primaryTr.Snapshot() {
		if s.Epoch != 5 {
			t.Fatalf("span attributed to unexpected epoch: %+v", s)
		}
	}

	// A promoted standby leads with a bumped epoch; its spans must carry it.
	standbyTr := trace.New(4096)
	sb, err := NewGlobal(GlobalConfig{
		Network:    n.Host("standby"),
		ListenAddr: ":0",
		Standby:    true,
		Epoch:      5,
		Capacity:   wire.Rates{4000, 400},
		Tracer:     standbyTr,
	})
	if err != nil {
		t.Fatalf("NewGlobal standby: %v", err)
	}
	defer sb.Close()
	if _, err := sb.RunCycle(ctx); !errors.Is(err, ErrStandby) {
		t.Fatalf("standby RunCycle: %v, want ErrStandby", err)
	}
	if got := standbyTr.Appends(); got != 0 {
		t.Fatalf("unpromoted standby appended %d spans", got)
	}
	if err := sb.Promote(ctx); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	for _, v := range stages {
		if err := sb.AddStage(ctx, v.Info()); err != nil {
			t.Fatalf("AddStage: %v", err)
		}
	}
	if _, err := sb.RunCycle(ctx); err != nil {
		t.Fatalf("promoted RunCycle: %v", err)
	}
	waitStableAppends(t, standbyTr)
	if standbyTr.Appends() == 0 {
		t.Fatal("promoted standby recorded no spans")
	}
	for _, s := range standbyTr.Snapshot() {
		if s.Epoch != 6 {
			t.Fatalf("promoted span epoch %d, want 6: %+v", s.Epoch, s)
		}
	}
}

// waitStableAppends waits until the tracer's append counter stops moving
// (in-flight call spans finish on read-loop goroutines).
func waitStableAppends(t *testing.T, tr *trace.Tracer) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	prev := tr.Appends()
	for {
		time.Sleep(10 * time.Millisecond)
		cur := tr.Appends()
		if cur == prev {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("tracer appends never quiesced")
		}
		prev = cur
	}
}
