package trace

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// MetricsSource renders one component's metrics in Prometheus text
// exposition format. Controllers and tracers implement it; the debug server
// concatenates every registered source under /metrics. The interface keeps
// this package free of controller imports (and vice versa there is no cycle:
// controller imports trace, never the reverse).
type MetricsSource interface {
	WritePrometheus(w io.Writer) error
}

// MetricsFunc adapts a function to MetricsSource.
type MetricsFunc func(w io.Writer) error

// WritePrometheus implements MetricsSource.
func (f MetricsFunc) WritePrometheus(w io.Writer) error { return f(w) }

// DebugOptions configures an opt-in debug endpoint.
type DebugOptions struct {
	// Addr is the listen address. Empty means "127.0.0.1:0" (loopback, OS
	// picks the port). For security the server refuses to bind a
	// non-loopback address unless AllowRemote is set: the endpoint exposes
	// pprof (heap contents, goroutine stacks) and cluster internals with no
	// authentication, so it must not reach untrusted networks by accident.
	Addr string
	// AllowRemote permits binding non-loopback addresses.
	AllowRemote bool
	// Logf, if set, receives serve errors.
	Logf func(format string, args ...any)
}

// DebugServer is an HTTP endpoint exposing the process's observability
// surface:
//
//	/metrics       Prometheus text format from every registered source
//	/debug/vars    expvar JSON
//	/debug/pprof/  net/http/pprof profiles
//	/debug/trace   JSON snapshot of every registered tracer's ring
//
// It binds loopback by default; see DebugOptions.Addr.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux

	mu      sync.Mutex
	sources []namedSource
	tracers []namedTracer
}

type namedSource struct {
	name string
	src  MetricsSource
}

type namedTracer struct {
	name string
	tr   *Tracer
}

var expvarOnce sync.Once

// StartDebug binds the endpoint and begins serving in a background
// goroutine. Close the returned server to release the listener.
func StartDebug(opts DebugOptions) (*DebugServer, error) {
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if !opts.AllowRemote {
		host, _, err := net.SplitHostPort(addr)
		if err != nil {
			return nil, fmt.Errorf("trace: debug addr %q: %w", addr, err)
		}
		if !isLoopbackHost(host) {
			return nil, fmt.Errorf("trace: refusing non-loopback debug addr %q without AllowRemote (endpoint is unauthenticated)", addr)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace: debug listen: %w", err)
	}

	d := &DebugServer{ln: ln}
	expvarOnce.Do(func() {
		expvar.Publish("sdscale.trace", expvar.Func(func() any { return globalExpvar() }))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", d.serveMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/trace", d.serveTrace)
	d.mux = mux

	d.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := d.srv.Serve(ln); err != nil && err != http.ErrServerClosed && opts.Logf != nil {
			opts.Logf("trace: debug server: %v", err)
		}
	}()

	registerDebug(d)
	return d, nil
}

// Addr returns the bound listen address (useful with port 0).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server and releases the listener.
func (d *DebugServer) Close() error {
	unregisterDebug(d)
	return d.srv.Close()
}

// Handle registers an extra handler on the endpoint's mux (the daemon adds
// /healthz this way). http.ServeMux registration is safe while the server is
// serving; registering a pattern twice panics, exactly as with a bare mux.
func (d *DebugServer) Handle(pattern string, h http.Handler) { d.mux.Handle(pattern, h) }

// AddMetrics registers a Prometheus source under /metrics. Registering a
// name again replaces the previous source — sources usually emit fixed
// series names, so replacement (not accumulation) is what keeps /metrics
// free of duplicate series as deployments are swapped under one server.
func (d *DebugServer) AddMetrics(name string, src MetricsSource) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.sources {
		if d.sources[i].name == name {
			d.sources[i].src = src
			return
		}
	}
	d.sources = append(d.sources, namedSource{name, src})
}

// AddTracer registers a tracer: its span-derived histograms and totals join
// /metrics (labelled tracer=name) and its ring snapshot joins /debug/trace.
// Re-registering a name replaces the previous tracer (see AddMetrics).
func (d *DebugServer) AddTracer(name string, tr *Tracer) {
	if tr == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.tracers {
		if d.tracers[i].name == name {
			d.tracers[i].tr = tr
			return
		}
	}
	d.tracers = append(d.tracers, namedTracer{name, tr})
}

func (d *DebugServer) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	sources := append([]namedSource(nil), d.sources...)
	tracers := append([]namedTracer(nil), d.tracers...)
	d.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	for _, s := range sources {
		if err := s.src.WritePrometheus(w); err != nil {
			fmt.Fprintf(w, "# source %s: %v\n", s.name, err)
		}
	}
	for _, t := range tracers {
		if err := t.tr.WritePrometheus(w, t.name); err != nil {
			fmt.Fprintf(w, "# tracer %s: %v\n", t.name, err)
		}
	}
}

// traceJSON is the /debug/trace response shape.
type traceJSON struct {
	Tracer      string     `json:"tracer"`
	SampleEvery int        `json:"sample_every"`
	Totals      Totals     `json:"totals"`
	Spans       []spanJSON `json:"spans"`
}

type spanJSON struct {
	Seq       uint64 `json:"seq"`
	Kind      string `json:"kind"`
	Phase     string `json:"phase,omitempty"`
	Mode      uint8  `json:"mode"`
	Cycle     uint64 `json:"cycle,omitempty"`
	Epoch     uint64 `json:"epoch,omitempty"`
	Tag       uint64 `json:"tag,omitempty"`
	Call      uint64 `json:"call,omitempty"`
	StartNs   int64  `json:"start_ns"`
	DurNs     int64  `json:"dur_ns"`
	PartANs   int64  `json:"part_a_ns,omitempty"`
	PartBNs   int64  `json:"part_b_ns,omitempty"`
	Err       bool   `json:"err,omitempty"`
	Abandoned bool   `json:"abandoned,omitempty"`
}

func (d *DebugServer) serveTrace(w http.ResponseWriter, _ *http.Request) {
	d.mu.Lock()
	tracers := append([]namedTracer(nil), d.tracers...)
	d.mu.Unlock()

	out := make([]traceJSON, 0, len(tracers))
	for _, t := range tracers {
		spans := t.tr.Snapshot()
		js := traceJSON{Tracer: t.name, SampleEvery: t.tr.SampleEvery(),
			Totals: t.tr.Totals(), Spans: make([]spanJSON, 0, len(spans))}
		for _, s := range spans {
			js.Spans = append(js.Spans, spanJSON{
				Seq: s.Seq, Kind: s.Kind.String(), Phase: s.Phase.String(),
				Mode: s.Mode, Cycle: s.Cycle, Epoch: s.Epoch, Tag: s.Tag, Call: s.Call,
				StartNs: s.Start.UnixNano(), DurNs: int64(s.Dur),
				PartANs: int64(s.PartA), PartBNs: int64(s.PartB),
				Err: s.Err(), Abandoned: s.Abandoned(),
			})
		}
		out = append(out, js)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil && d.srv != nil {
		// Client went away mid-encode; nothing useful to do.
		_ = err
	}
}

func isLoopbackHost(host string) bool {
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// Process-global registry backing the expvar publication: expvar.Publish
// panics on duplicate names, so the variable is published once and reads
// whatever debug servers are alive.
var (
	debugMu      sync.Mutex
	debugServers []*DebugServer
)

func registerDebug(d *DebugServer) {
	debugMu.Lock()
	debugServers = append(debugServers, d)
	debugMu.Unlock()
}

func unregisterDebug(d *DebugServer) {
	debugMu.Lock()
	for i, s := range debugServers {
		if s == d {
			debugServers = append(debugServers[:i], debugServers[i+1:]...)
			break
		}
	}
	debugMu.Unlock()
}

func globalExpvar() any {
	debugMu.Lock()
	servers := append([]*DebugServer(nil), debugServers...)
	debugMu.Unlock()
	out := make(map[string]any)
	for _, d := range servers {
		d.mu.Lock()
		tracers := append([]namedTracer(nil), d.tracers...)
		d.mu.Unlock()
		for _, t := range tracers {
			out[t.name] = t.tr.Totals()
		}
	}
	return out
}
