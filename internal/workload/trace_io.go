package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// traceFile is the serialized form of a Trace: a versioned JSON document so
// recorded workloads can be shared between runs and machines (the paper's
// future work calls for studying the designs under real, replayable
// workloads).
type traceFile struct {
	Version    int         `json:"version"`
	StepMicros int64       `json:"step_micros"`
	Classes    []string    `json:"classes"`
	Samples    [][]float64 `json:"samples"`
}

// traceFileVersion is the current trace format version.
const traceFileVersion = 1

// SaveTrace writes tr to w as versioned JSON.
func SaveTrace(w io.Writer, tr Trace) error {
	step := tr.Step
	if step <= 0 {
		step = time.Second
	}
	f := traceFile{
		Version:    traceFileVersion,
		StepMicros: step.Microseconds(),
		Classes:    make([]string, wire.NumClasses),
		Samples:    make([][]float64, len(tr.Samples)),
	}
	for c := 0; c < int(wire.NumClasses); c++ {
		f.Classes[c] = wire.OpClass(c).String()
	}
	for i, s := range tr.Samples {
		row := make([]float64, wire.NumClasses)
		copy(row, s[:])
		f.Samples[i] = row
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// LoadTrace reads a trace written by SaveTrace. Traces recorded with a
// different class layout are rejected rather than silently misinterpreted.
func LoadTrace(r io.Reader) (Trace, error) {
	var f traceFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return Trace{}, fmt.Errorf("workload: decode trace: %w", err)
	}
	if f.Version != traceFileVersion {
		return Trace{}, fmt.Errorf("workload: unsupported trace version %d", f.Version)
	}
	if f.StepMicros <= 0 {
		return Trace{}, fmt.Errorf("workload: bad trace step %d", f.StepMicros)
	}
	if len(f.Classes) != int(wire.NumClasses) {
		return Trace{}, fmt.Errorf("workload: trace has %d classes, this build has %d",
			len(f.Classes), wire.NumClasses)
	}
	for c, name := range f.Classes {
		if name != wire.OpClass(c).String() {
			return Trace{}, fmt.Errorf("workload: trace class %d is %q, want %q",
				c, name, wire.OpClass(c).String())
		}
	}
	tr := Trace{
		Step:    time.Duration(f.StepMicros) * time.Microsecond,
		Samples: make([]wire.Rates, len(f.Samples)),
	}
	for i, row := range f.Samples {
		if len(row) != int(wire.NumClasses) {
			return Trace{}, fmt.Errorf("workload: trace sample %d has %d values", i, len(row))
		}
		for c, v := range row {
			if v < 0 {
				return Trace{}, fmt.Errorf("workload: trace sample %d class %d is negative", i, c)
			}
			tr.Samples[i][c] = v
		}
	}
	return tr, nil
}
