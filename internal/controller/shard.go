package controller

import (
	"context"
	"fmt"
	"sync/atomic"

	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/stage"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// This file holds the primitives the sharding layer (internal/shard)
// composes into child handoff and cross-shard fan-out. A shard move is
// deliberately *not* a new protocol: it is the existing re-homing + epoch
// fencing machinery driven from the controller side — the destination
// leader raises its epoch above the source's, adopts the child (seeding the
// rules the source last enforced), and the source forgets it. The child's
// fence then admits the destination and rejects the source, exactly as it
// would after a failover.

// RaiseEpoch raises the leadership epoch to at least floor and returns the
// resulting epoch. Like a promotion, the raised epoch is persisted through
// the store before it is used, so a crash cannot forget an epoch the fleet
// may already have adopted. A floor at or below the current epoch is a
// no-op: epochs only move forward.
//
// The sharding layer calls this on a move's destination leader with
// (source epoch + 1): the moved child adopts the higher epoch from the
// destination's first call and from then on fences the source's traffic as
// stale, closing the window where a lagging source could overwrite the
// destination's rules.
func (g *Global) RaiseEpoch(floor uint64) uint64 {
	g.mu.Lock()
	if g.epoch >= floor {
		cur := g.epoch
		g.mu.Unlock()
		return cur
	}
	g.mu.Unlock()
	if g.cfg.Store != nil {
		if err := g.cfg.Store.AppendEpoch(floor); err != nil {
			// Availability-first, like promotion: a dead log disk must not
			// stall a handoff. In-memory fencing still holds; only
			// crash-restart fencing is degraded, and that is logged.
			g.storeFault("persist raised epoch", err)
		}
	}
	g.mu.Lock()
	if floor > g.epoch {
		g.epoch = floor
	}
	cur := g.epoch
	g.mu.Unlock()
	return cur
}

// ChildSnapshot returns a stage child's registration info and a copy of the
// rules this controller last enforced on it — everything a handoff
// destination needs to adopt the child without a blank-slate first cycle.
// It reports false for unknown IDs and for aggregator children (shard
// handoff moves stages; aggregator tiers belong to one shard).
func (g *Global) ChildSnapshot(id uint64) (stage.Info, []wire.Rule, bool) {
	c := g.members.get(id)
	if c == nil || c.role != wire.RoleStage {
		return stage.Info{}, nil, false
	}
	return c.info, c.snapshotRules(), true
}

// ChildIDs returns the IDs of every directly managed child, quarantined
// ones included — the enumeration a rebalance walks to find misplaced
// children. The order is unspecified.
func (g *Global) ChildIDs() []uint64 {
	children := g.members.snapshot()
	ids := make([]uint64, len(children))
	for i, c := range children {
		ids[i] = c.info.ID
	}
	return ids
}

// AdoptStage is AddStage plus rule-cache seeding: the handoff destination
// dials the moved child and primes its delta-enforcement cache with the
// rules the source shard last sent, so the move does not force a spurious
// re-enforce (or, worse, a window where the child holds rules the new
// owner does not know about). The seeded rules are logged so the adopter's
// store is self-contained, mirroring failover adoption.
func (g *Global) AdoptStage(ctx context.Context, info stage.Info, rules []wire.Rule) error {
	if err := g.AddStage(ctx, info); err != nil {
		return err
	}
	if c := g.members.get(info.ID); c != nil && len(rules) > 0 {
		c.seedRules(rules)
		g.mu.Lock()
		cycle := g.cycle
		g.mu.Unlock()
		g.logRules(cycle, info.ID, rules)
	}
	return nil
}

// EnforceUniform broadcasts one per-job wildcard rule to every active stage
// child outside the cycle schedule, using the marshal-once shared-frame
// path: the Enforce body is encoded once and every v2 child receives the
// same bytes. Children still negotiating (or pinned to) codec v1 predate
// wildcard rules, so the job's v1 children get an equivalent per-stage rule
// each; v1 children of other jobs are skipped. It returns the number of
// stages that applied the rule (v2 stages serving other jobs ignore the
// wildcard).
//
// The sharding layer fans this out across all shard leaders to apply a
// deployment-wide QoS decision — a job cap, a pause — in one round without
// waiting for N independent control cycles to converge.
func (g *Global) EnforceUniform(ctx context.Context, jobID uint64, action wire.RuleAction, limit wire.Rates) (int, error) {
	g.mu.Lock()
	if g.deposed {
		epoch := g.epoch
		g.mu.Unlock()
		return 0, fmt.Errorf("%w (was leading at epoch %d)", ErrDeposed, epoch)
	}
	if g.cfg.Standby && !g.promoted {
		epoch := g.epoch
		g.mu.Unlock()
		return 0, fmt.Errorf("%w (passive mirror at epoch %d)", ErrStandby, epoch)
	}
	cycle, epoch, mode := g.cycle, g.epoch, g.mode
	g.mu.Unlock()
	if mode == wire.RoleAggregator {
		return 0, fmt.Errorf("controller: uniform enforce requires a flat controller (children are aggregators)")
	}

	active, _ := splitQuarantined(g.members.snapshot())
	var v2, v1 []*child
	for _, c := range active {
		if c.client().CodecVersion() >= wire.CodecV2 {
			v2 = append(v2, c)
		} else if c.info.JobID == jobID {
			v1 = append(v1, c)
		}
	}
	var applied atomic.Uint32
	onReply := func(i int, resp wire.Message) {
		if ack, ok := resp.(*wire.EnforceAck); ok {
			applied.Add(ack.Applied)
		}
	}
	if len(v2) > 0 {
		rule := wire.Rule{StageID: wire.WildcardStage, JobID: jobID, Action: action, Limit: limit}
		f := rpc.NewSharedFrame(&wire.Enforce{Cycle: cycle, Epoch: epoch, Rules: []wire.Rule{rule}})
		g.fanOutBroadcast(ctx, &g.pipe.EnforceInFlight, v2, f, onReply)
	}
	if len(v1) > 0 {
		ruleBuf := make([]wire.Rule, len(v1))
		enfBuf := make([]wire.Enforce, len(v1))
		g.fanOut(ctx, &g.pipe.EnforceInFlight, v1, func(i int) wire.Message {
			ruleBuf[i] = wire.Rule{StageID: v1[i].info.ID, JobID: jobID, Action: action, Limit: limit}
			enfBuf[i] = wire.Enforce{Cycle: cycle, Epoch: epoch, Rules: ruleBuf[i : i+1 : i+1]}
			return &enfBuf[i]
		}, onReply)
	}
	return int(applied.Load()), ctx.Err()
}

// SetShardTable installs the provider that answers ShardQuery requests on
// the registration endpoint, and records which shard this controller serves.
// The provider receives the queried child ID (zero for a whole-table query)
// and returns the deployment's shard table; this leader's own leadership
// epoch is overlaid on the reply. A nil provider (the default) makes
// ShardQuery answer with a BadMessage error — the controller is not part of
// a sharded deployment.
//
// Installing the table also arms the registration endpoint's ownership
// check: a stage Register for a child the table assigns to another shard is
// rejected instead of adopted, so a lagging registration retry racing a
// completed handoff cannot resurrect the child on its old shard (where the
// child's fence — now at the destination's higher epoch — would reject
// every call and read as a deposition).
func (g *Global) SetShardTable(f func(childID uint64) *wire.ShardMap, self int) {
	g.mu.Lock()
	g.shardTable = f
	g.shardSelf = self
	g.mu.Unlock()
}

// shardOwner consults the deployment's shard table for childID's owning
// shard. ok reports whether this controller's shard is (or may be) the
// owner; without a table — the controller is not sharded — every child is
// local.
func (g *Global) shardOwner(childID uint64) (owner int, ok bool) {
	g.mu.Lock()
	f, self := g.shardTable, g.shardSelf
	g.mu.Unlock()
	if f == nil {
		return 0, true
	}
	mp := f(childID)
	if !mp.OwnerValid {
		return self, true
	}
	return int(mp.Owner), int(mp.Owner) == self
}

// handleShardQuery serves routing metadata to anyone holding a connection
// to the registration endpoint: operators (sdsctl), tests, and children
// that want to find their owning shard without walking parent lists.
func (g *Global) handleShardQuery(m *wire.ShardQuery) (wire.Message, error) {
	g.mu.Lock()
	f := g.shardTable
	epoch := g.epoch
	g.mu.Unlock()
	if f == nil {
		return nil, &wire.ErrorReply{Code: wire.CodeBadMessage, Text: "not part of a sharded deployment", Epoch: epoch}
	}
	mp := f(m.ChildID)
	mp.Epoch = epoch
	return mp, nil
}
