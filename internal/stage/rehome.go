package stage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// fence tracks the highest leadership epoch a stage has seen and the time
// of the last control-plane contact. It implements the child side of epoch
// fencing: calls carrying an epoch below the highest seen are rejected with
// CodeStaleEpoch, so a deposed primary can never read metrics from or push
// rules to a stage the new leader already controls.
type fence struct {
	mu          sync.Mutex
	epoch       uint64
	fenced      uint64
	lastContact time.Time
}

// check admits or rejects a call carrying the sender's leadership epoch.
// Higher epochs are adopted; lower ones are fenced.
func (f *fence) check(who string, senderEpoch uint64) *wire.ErrorReply {
	f.mu.Lock()
	defer f.mu.Unlock()
	if senderEpoch < f.epoch {
		f.fenced++
		return &wire.ErrorReply{
			Code:  wire.CodeStaleEpoch,
			Text:  fmt.Sprintf("%s: sender epoch %d deposed, current epoch is %d", who, senderEpoch, f.epoch),
			Epoch: f.epoch,
		}
	}
	if senderEpoch > f.epoch {
		f.epoch = senderEpoch
	}
	f.lastContact = time.Now()
	return nil
}

// touch records control-plane contact that carries no epoch (heartbeats).
func (f *fence) touch() {
	f.mu.Lock()
	f.lastContact = time.Now()
	f.mu.Unlock()
}

// adopt raises the fencing floor to epoch (never lowers it).
func (f *fence) adopt(epoch uint64) {
	f.mu.Lock()
	if epoch > f.epoch {
		f.epoch = epoch
	}
	f.mu.Unlock()
}

// current returns the highest epoch seen.
func (f *fence) current() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// fencedCalls returns how many calls were rejected as stale.
func (f *fence) fencedCalls() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fenced
}

// contact returns the time of the last control-plane contact.
func (f *fence) contact() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastContact
}

// RegisterOptions tunes the retry behaviour of RegisterAny.
type RegisterOptions struct {
	// Role to register as. Zero selects RoleStage; aggregators re-homing
	// to a standby global pass RoleAggregator.
	Role wire.Role
	// Attempts is the number of passes over the address list before giving
	// up. Zero selects DefaultRegisterAttempts; negative values retry until
	// the context is done.
	Attempts int
	// BaseDelay is the backoff before the second pass; it doubles per pass
	// (with jitter) up to MaxDelay. Zeros select the defaults.
	BaseDelay, MaxDelay time.Duration
}

// Registration retry defaults.
const (
	// DefaultRegisterAttempts is how many passes over the parent address
	// list Register makes before giving up.
	DefaultRegisterAttempts = 4
	// DefaultRegisterBaseDelay is the backoff before the second pass.
	DefaultRegisterBaseDelay = 25 * time.Millisecond
	// DefaultRegisterMaxDelay caps the per-pass backoff.
	DefaultRegisterMaxDelay = 500 * time.Millisecond
)

func (o RegisterOptions) withDefaults() RegisterOptions {
	if o.Role == 0 {
		o.Role = wire.RoleStage
	}
	if o.Attempts == 0 {
		o.Attempts = DefaultRegisterAttempts
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = DefaultRegisterBaseDelay
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = DefaultRegisterMaxDelay
	}
	return o
}

// RegisterAny announces a component to the first reachable parent on addrs,
// retrying with exponential backoff and jitter across passes. A stage that
// boots before its controller therefore registers as soon as the controller
// comes up, and an orphaned child walks the list until it finds the current
// leader. Definitive rejections (any remote error other than not-leader or
// overload) abort the retry loop: the parent answered and said no.
func RegisterAny(ctx context.Context, network transport.Network, addrs []string, info Info, opts RegisterOptions) (*wire.RegisterAck, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("stage %d: register: no parent addresses", info.ID)
	}
	opts = opts.withDefaults()
	delay := opts.BaseDelay
	var lastErr error
	for attempt := 0; opts.Attempts < 0 || attempt < opts.Attempts; attempt++ {
		if attempt > 0 {
			if err := sleepJittered(ctx, delay); err != nil {
				return nil, fmt.Errorf("stage %d: register: %w (last error: %v)", info.ID, err, lastErr)
			}
			if delay *= 2; delay > opts.MaxDelay {
				delay = opts.MaxDelay
			}
		}
		for _, addr := range addrs {
			ack, err := registerOnce(ctx, network, addr, info, opts.Role)
			if err == nil {
				return ack, nil
			}
			lastErr = err
			if !retryableRegisterError(err) {
				return nil, err
			}
			if ctx.Err() != nil {
				return nil, lastErr
			}
		}
	}
	return nil, lastErr
}

// registerOnce dials one parent, sends one Register, and closes the
// connection. The transient connection mirrors real deployments, where
// registration must not consume one of the controller's scarce long-lived
// connection slots.
func registerOnce(ctx context.Context, network transport.Network, addr string, info Info, role wire.Role) (*wire.RegisterAck, error) {
	cli, err := rpc.Dial(ctx, network, addr, rpc.DialOptions{})
	if err != nil {
		return nil, fmt.Errorf("stage %d: register dial %s: %w", info.ID, addr, err)
	}
	defer cli.Close()
	resp, err := cli.Call(ctx, &wire.Register{
		Role:   role,
		ID:     info.ID,
		JobID:  info.JobID,
		Weight: info.Weight,
		Addr:   info.Addr,
	})
	if err != nil {
		return nil, fmt.Errorf("stage %d: register at %s: %w", info.ID, addr, err)
	}
	ack, ok := resp.(*wire.RegisterAck)
	if !ok {
		return nil, fmt.Errorf("stage %d: register at %s: unexpected %s", info.ID, addr, resp.Type())
	}
	return ack, nil
}

// retryableRegisterError classifies registration failures: transport and
// dial errors are transient (the parent may still be booting), as are
// not-leader (an unpromoted standby) and overload rejections. Every other
// remote error is a definitive rejection.
func retryableRegisterError(err error) bool {
	var er *wire.ErrorReply
	if !errors.As(err, &er) {
		return true
	}
	return er.Code == wire.CodeNotLeader || er.Code == wire.CodeOverload
}

// sleepJittered sleeps for a uniformly jittered duration in [d/2, d].
func sleepJittered(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	wait := d/2 + time.Duration(rand.Int63n(int64(d)/2+1))
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// rehome is the re-homing loop of a stage configured with a parent address
// list: when no parent has contacted the stage for ParentTimeout, the stage
// assumes its parent died and re-registers with the first reachable address
// — typically the promoted standby — so control cycles resume without
// manual re-adoption.
func (v *Virtual) rehome() {
	defer close(v.rehomeDone)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-v.rehomeStop
		cancel()
	}()

	timeout := v.cfg.ParentTimeout
	// Initial registration: the stage may boot before its controller, so
	// retry until a parent appears (or the stage closes).
	v.registerParents(ctx, false)

	tick := time.NewTicker(timeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-v.rehomeStop:
			return
		case <-tick.C:
			if time.Since(v.fence.contact()) < timeout {
				continue
			}
			v.registerParents(ctx, true)
		}
	}
}

// registerParents walks the parent list until a registration succeeds,
// adopting the acknowledged leadership epoch as the new fencing floor.
func (v *Virtual) registerParents(ctx context.Context, rehoming bool) {
	ack, err := RegisterAny(ctx, v.cfg.Network, v.cfg.Parents, v.Info(), RegisterOptions{
		Attempts:  -1, // until ctx is done or a parent answers definitively
		BaseDelay: v.cfg.ParentTimeout / 8,
		MaxDelay:  v.cfg.ParentTimeout,
	})
	if err != nil {
		return
	}
	v.fence.adopt(ack.Epoch)
	v.fence.touch()
	if rehoming {
		v.mu.Lock()
		v.reRegistrations++
		v.mu.Unlock()
	}
}
