package rpc

import (
	"sync"
	"sync/atomic"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// SharedFrame is a refcounted, immutable, lazily-encoded message body shared
// by every call of a broadcast fan-out. A controller builds one per cycle
// per broadcast (Collect, Heartbeat, StateSync, wildcard Enforce), issues it
// to each child with Client.GoShared — which writes a per-call header
// followed by the shared body, a memcopy instead of a marshal — and releases
// its own reference once the fan-out is issued.
//
// Lifetime: NewSharedFrame returns the producer's reference. Every GoShared
// that reaches the wire (or fails after registration) takes one more,
// released when the call's handle is recycled by Call.Wait. The encoded
// bodies live in pooled buffers that return to the pool only when the count
// hits zero, so a slow connection still copying the body can never observe
// the buffer being recycled. Callers that consume completions via Call.Done
// instead of Wait leak the frame's references; the bodies are then garbage
// collected rather than pooled, which is safe but defeats the pooling —
// broadcast fan-outs should harvest with Wait.
//
// The body is encoded at most once per codec version, on first use by a
// connection speaking that version.
type SharedFrame struct {
	msg  wire.Message
	refs atomic.Int64

	// encodes counts distinct encodings performed (one per codec version in
	// use), for telemetry: a cycle that fans out to 10,000 children reports
	// 1-2 encodes instead of 10,000 marshals.
	encodes atomic.Uint64

	// bodies[ver] is set exactly once (under mu) and read lock-free: a
	// reader necessarily holds a frame reference, and the buffers are only
	// pooled when the count hits zero, so a loaded pointer cannot be
	// recycled while the reader copies from it.
	mu     sync.Mutex
	bodies [wire.MaxCodec + 1]atomic.Pointer[[]byte]
}

// NewSharedFrame wraps m for broadcast. The message must not be mutated
// until the frame is released by all holders: encoding is lazy, so a late
// v1 connection may still marshal m mid-fan-out.
func NewSharedFrame(m wire.Message) *SharedFrame {
	f := &SharedFrame{msg: m}
	f.refs.Store(1)
	return f
}

// Encodes returns how many distinct body encodings the frame performed so
// far (at most one per codec version). Safe to read after Release.
func (f *SharedFrame) Encodes() uint64 { return f.encodes.Load() }

// body returns the encoded body for codec version ver, encoding it on first
// use. The returned slice is immutable and stays valid while the caller
// holds a reference.
func (f *SharedFrame) body(ver int) []byte {
	if ver < wire.CodecV1 || ver > wire.MaxCodec {
		ver = wire.CodecV1
	}
	if bp := f.bodies[ver].Load(); bp != nil {
		return *bp
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	bp := f.bodies[ver].Load()
	if bp == nil {
		bp = getFrameBuf()
		// Shared bodies are stateless: many connections with divergent
		// histories decode the same bytes.
		*bp = wire.EncodeWith((*bp)[:0], f.msg, ver, nil)
		f.bodies[ver].Store(bp)
		f.encodes.Add(1)
	}
	return *bp
}

func (f *SharedFrame) retain() { f.refs.Add(1) }

// Release drops one reference. The producer calls it once after issuing the
// fan-out; per-call references release automatically via Call.Wait. When the
// count reaches zero the encoded bodies return to the frame buffer pool.
func (f *SharedFrame) Release() {
	n := f.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("rpc: SharedFrame over-released")
	}
	for i := range f.bodies {
		if bp := f.bodies[i].Swap(nil); bp != nil {
			putFrameBuf(bp)
		}
	}
}
