package rpc

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/sdscale/internal/monitor"
	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Handler processes one request and returns the response message. Returning
// an error sends a wire.ErrorReply to the caller. Requests arriving on the
// same connection are handled in order; distinct connections are concurrent.
type Handler interface {
	Serve(peer *Peer, req wire.Message) (wire.Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(peer *Peer, req wire.Message) (wire.Message, error)

// Serve implements Handler.
func (f HandlerFunc) Serve(peer *Peer, req wire.Message) (wire.Message, error) {
	return f(peer, req)
}

// Peer represents one client connection as seen by server handlers. It
// carries an attachment slot so a handler can associate state (e.g. the
// registered member identity) with the connection across requests.
type Peer struct {
	conn net.Conn

	// wmu serializes every write to conn: the handler loop's responses and
	// hello acks, and unsolicited Push frames (which may originate on any
	// goroutine). The loop encodes outside the lock and holds it only for
	// the write itself.
	wmu sync.Mutex
	// pushVer is the negotiated codec version, published when the hello ack
	// is written. Push reads it to decide whether the peer understands
	// server-initiated frames; zero means v1 (no hello acked yet).
	pushVer atomic.Int32

	mu         sync.Mutex
	attachment any
}

// RemoteAddr returns the peer's address.
func (p *Peer) RemoteAddr() net.Addr { return p.conn.RemoteAddr() }

// SetAttachment associates v with the connection.
func (p *Peer) SetAttachment(v any) {
	p.mu.Lock()
	p.attachment = v
	p.mu.Unlock()
}

// Attachment returns the value set by SetAttachment, or nil.
func (p *Peer) Attachment() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attachment
}

// Close severs the peer's connection. Used by servers to evict members.
func (p *Peer) Close() error { return p.conn.Close() }

// ErrPushUnsupported reports that a peer's connection has not negotiated a
// codec that understands server-initiated push frames.
var ErrPushUnsupported = errors.New("rpc: peer connection predates push frames")

// CanPush reports whether the peer's connection negotiated codec v2, the
// first version whose clients dispatch unsolicited push frames. A v1 client
// would silently drop them, so callers use CanPush to fall back to the
// polled path instead of pushing into the void.
func (p *Peer) CanPush() bool { return p.pushVer.Load() >= int32(wire.CodecV2) }

// Push writes an unsolicited server-initiated frame carrying m to the peer.
// The body is encoded statelessly at wire.CodecV2 — never against the
// connection's response history, so responses stay in lockstep regardless of
// interleaving. Returns ErrPushUnsupported when the connection has not
// negotiated v2 (see CanPush). Safe for concurrent use with the handler
// loop and other pushers.
func (p *Peer) Push(m wire.Message) error {
	if !p.CanPush() {
		return ErrPushUnsupported
	}
	bp := getFrameBuf()
	*bp = appendFrameWith((*bp)[:0], frameHeader{id: 0, kind: kindPush}, m, wire.CodecV2, nil)
	p.wmu.Lock()
	_, err := p.conn.Write(*bp)
	p.wmu.Unlock()
	putFrameBuf(bp)
	return err
}

// ServerOptions configures a Server.
type ServerOptions struct {
	// Meter, if non-nil, is charged with all accepted connections' traffic.
	Meter *transport.Meter
	// CPU, if non-nil, is charged with request handling and response
	// marshal/write time (but not with time blocked waiting for requests).
	CPU *monitor.CPUMeter
	// Logf, if non-nil, receives connection-level error logs.
	Logf func(format string, args ...any)
	// OnDisconnect, if non-nil, runs when a peer's connection ends.
	OnDisconnect func(peer *Peer)
	// Tracer, if non-nil, receives one span per handled request: frame
	// arrival → response written, with queue-wait and handler sub-timings,
	// tagged with trace.AddrTag of the peer's remote address. A server
	// tracer never carries cycle context, so one tracer may be shared by
	// many servers (e.g. all stages of a simulated cluster).
	Tracer *trace.Tracer
	// MaxCodec caps the wire codec version this server negotiates. Zero
	// selects the newest supported version (wire.MaxCodec); 1 pins the
	// server to v1 — hello frames are then ignored outright, exactly as a
	// pre-v2 server would, and clients stay on v1.
	MaxCodec int
	// ReuseRequests opts into the per-connection request freelist: requests
	// decode into recycled messages whose backing arrays are returned to the
	// connection once the response is written. Safe only when handlers never
	// retain a request past returning (Register, StateSync, and PeerExchange
	// are always excluded because controller handlers keep them).
	ReuseRequests bool
	// ReuseHits, if non-nil, is incremented once per request decoded into a
	// recycled message.
	ReuseHits *atomic.Uint64
	// RecycleReply, if non-nil, receives every handler response once the
	// server is finished with it: the response bytes are already encoded
	// and written (or suppressed by a cancel), so the receiver owns the
	// message exclusively and may reuse it for a later response. Called
	// from the connection's handler loop. Handlers that return shared or
	// retained messages must not set this.
	RecycleReply func(wire.Message)
}

// Server accepts RPC connections and dispatches requests to a Handler.
type Server struct {
	l       net.Listener
	handler Handler
	opts    ServerOptions

	mu     sync.Mutex
	peers  map[*Peer]struct{}
	closed bool

	canceled atomic.Uint64 // requests withdrawn by cancel frames

	acceptWG sync.WaitGroup // the accept loop
	connWG   sync.WaitGroup // per-connection handler goroutines
}

// Serve starts a server listening on addr over network. It returns once the
// listener is active; request handling proceeds in background goroutines.
func Serve(network transport.Network, addr string, h Handler, opts ServerOptions) (*Server, error) {
	l, err := network.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := &Server{l: l, handler: h, opts: opts, peers: make(map[*Peer]struct{})}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// NumPeers returns the number of currently connected peers.
func (s *Server) NumPeers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// CanceledRequests returns the number of requests withdrawn by client
// cancel frames: dropped before dispatch, or executed with the response
// suppressed.
func (s *Server) CanceledRequests() uint64 { return s.canceled.Load() }

// ForEachPeer calls fn for every currently connected peer. The peer set is
// snapshotted under the server lock, so fn may itself block (e.g. on a Push
// write) without holding up accepts or disconnects.
func (s *Server) ForEachPeer(fn func(*Peer)) {
	s.mu.Lock()
	peers := make([]*Peer, 0, len(s.peers))
	for p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	for _, p := range peers {
		fn(p)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.l.Accept()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				s.logf("rpc: accept: %v", err)
			}
			return
		}
		peer := &Peer{conn: transport.WithMeter(conn, s.opts.Meter)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.peers[peer] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.serveConn(peer)
	}
}

// queuedReq is one request awaiting dispatch on a connection.
type queuedReq struct {
	id  uint64
	req wire.Message
	// arrivedNs is the frame's read-completion time (unix nanoseconds),
	// stamped by the reader goroutine only when the server traces and the
	// frame ID is on the tracer's sample grid; queue wait is pop time minus
	// arrival. Zero means "count this request, don't time it".
	arrivedNs int64
	// hello marks a codec-negotiation frame. It rides the request queue so
	// the handler loop — the connection's single writer — acks it and flips
	// the response codec at a well-defined point in the response stream.
	hello    bool
	helloVer int
}

// reqFreelist recycles decoded request messages within one connection: the
// reader goroutine decodes into a recycled instance (reusing its backing
// arrays), and the handler loop returns the instance after the response is
// written. One slot per type suffices because requests on a connection are
// dispatched in order — at most one instance of a type is ever between
// decode and response. The mutex covers the reader/handler handoff.
type reqFreelist struct {
	mu     sync.Mutex
	byType map[wire.MsgType]wire.Message
	hits   *atomic.Uint64
}

func newReqFreelist(hits *atomic.Uint64) *reqFreelist {
	return &reqFreelist{byType: make(map[wire.MsgType]wire.Message), hits: hits}
}

// take removes and returns the recycled instance for t, or nil when none is
// available (the decoder then allocates fresh).
func (fl *reqFreelist) take(t wire.MsgType) wire.Message {
	if !reusableRequest(t) {
		return nil
	}
	fl.mu.Lock()
	m := fl.byType[t]
	if m != nil {
		fl.byType[t] = nil
	}
	fl.mu.Unlock()
	if m != nil && fl.hits != nil {
		fl.hits.Add(1)
	}
	return m
}

// put offers a handled request back to its type's slot. A request the
// handler may retain (non-whitelisted type) is never recycled.
func (fl *reqFreelist) put(m wire.Message) {
	t := m.Type()
	if !reusableRequest(t) {
		return
	}
	fl.mu.Lock()
	if fl.byType[t] == nil {
		fl.byType[t] = m
	}
	fl.mu.Unlock()
}

// reqQueue is a per-connection ordered request queue. A reader goroutine
// pushes requests and applies cancel frames; the handler loop pops them in
// arrival order, so per-connection ordering is preserved while cancels for
// still-queued requests are observed before dispatch.
type reqQueue struct {
	mu   sync.Mutex
	cond sync.Cond
	// items is consumed by advancing head rather than re-slicing: once the
	// queue drains, head and length reset together, so steady-state pushes
	// append into the same backing array instead of reallocating per
	// request (the re-slice would strand the array's free space behind the
	// slice pointer).
	items  []queuedReq
	head   int
	closed bool

	// The request currently being dispatched, so a cancel arriving
	// mid-handler can suppress its response.
	current         uint64
	currentActive   bool
	currentCanceled bool
}

func newReqQueue() *reqQueue {
	q := &reqQueue{}
	q.cond.L = &q.mu
	return q
}

func (q *reqQueue) push(item queuedReq) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, item)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// cancel withdraws id: a still-queued request is removed, the in-flight
// request has its response suppressed. Reports whether it took effect.
func (q *reqQueue) cancel(id uint64) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := q.head; i < len(q.items); i++ {
		if q.items[i].id == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	if q.currentActive && q.current == id && !q.currentCanceled {
		q.currentCanceled = true
		return true
	}
	return false
}

// pop blocks for the next request, marking it current. ok is false once the
// queue is closed.
func (q *reqQueue) pop() (item queuedReq, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return queuedReq{}, false
	}
	item = q.items[q.head]
	q.items[q.head] = queuedReq{} // drop the request reference
	q.head++
	if q.head == len(q.items) {
		q.items, q.head = q.items[:0], 0
	}
	q.current, q.currentActive, q.currentCanceled = item.id, true, false
	return item, true
}

// finish clears the current marker and reports whether the response must be
// suppressed because a cancel arrived during dispatch.
func (q *reqQueue) finish() (suppress bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	suppress = q.currentCanceled
	q.currentActive, q.currentCanceled = false, false
	return suppress
}

// close wakes the handler loop and discards queued requests: the connection
// is gone, so their responses could never be delivered.
func (q *reqQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.items, q.head = nil, 0
	q.mu.Unlock()
	q.cond.Broadcast()
}

// serveConn handles one connection's requests in order until it dies. A
// separate reader goroutine keeps consuming frames while a handler runs, so
// cancel frames for queued requests take effect before dispatch.
func (s *Server) serveConn(peer *Peer) {
	defer s.connWG.Done()
	defer func() {
		peer.conn.Close()
		s.mu.Lock()
		delete(s.peers, peer)
		s.mu.Unlock()
		if s.opts.OnDisconnect != nil {
			s.opts.OnDisconnect(peer)
		}
	}()

	serverMax := s.opts.MaxCodec
	if serverMax == 0 {
		serverMax = wire.MaxCodec
	}
	var fl *reqFreelist
	if s.opts.ReuseRequests {
		fl = newReqFreelist(s.opts.ReuseHits)
	}

	q := newReqQueue()
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer q.close()
		// The decode buffer is pooled across connections; decoded messages
		// never alias it (see readFrame), so returning it is safe even while
		// requests it carried are still queued or executing.
		rbp := getFrameBuf()
		defer putFrameBuf(rbp)
		var dec *wire.DecodeOpts // built lazily on the first v2 request
		for {
			var (
				h    frameHeader
				body []byte
				err  error
			)
			h, body, *rbp, err = readFrame(peer.conn, *rbp)
			if err != nil {
				return // EOF or broken conn
			}
			switch h.kind {
			case kindRequest, kindRequestV2:
				var req wire.Message
				if h.kind == kindRequest {
					req, err = wire.Decode(body)
				} else {
					if dec == nil {
						// Requests are encoded statelessly (concurrent client
						// senders cannot share a float history), so no Hist.
						dec = &wire.DecodeOpts{Version: wire.CodecV2}
						if fl != nil {
							dec.Reuse = fl.take
						}
					}
					req, err = wire.DecodeWith(body, dec)
				}
				if err != nil {
					return // protocol corruption; drop the connection
				}
				item := queuedReq{id: h.id, req: req}
				if s.opts.Tracer.Sampled(h.id) {
					item.arrivedNs = time.Now().UnixNano()
				}
				q.push(item)
			case kindCancel:
				if q.cancel(h.id) {
					s.canceled.Add(1)
				}
			case kindHello:
				// A v1-pinned server ignores hellos outright, exactly like a
				// pre-v2 server that drops unknown frame kinds; the client
				// then never upgrades.
				if ver, ok := parseHello(body); ok && serverMax >= wire.CodecV2 {
					q.push(queuedReq{hello: true, helloVer: ver})
				}
			}
		}
	}()

	var peerTag uint64
	if s.opts.Tracer != nil {
		peerTag = trace.AddrTag(peer.conn.RemoteAddr().String())
	}
	wbp := getFrameBuf()
	defer putFrameBuf(wbp)
	// The response codec starts at v1 and flips when a hello is acked; the
	// response history (shared by all response types on this connection) is
	// kept in lockstep with the client's read loop because this handler loop
	// is the connection's only writer.
	txVer := wire.CodecV1
	var txHist *wire.FloatHistory
	for {
		item, ok := q.pop()
		if !ok {
			break
		}
		if item.hello {
			ver := negotiate(item.helloVer, serverMax)
			*wbp = appendHelloFrame((*wbp)[:0], ver)
			peer.wmu.Lock()
			_, err := peer.conn.Write(*wbp)
			peer.wmu.Unlock()
			if ver >= wire.CodecV2 {
				txVer = ver
				txHist = wire.NewFloatHistory()
			}
			// Publish after the ack write: a push must never precede the
			// hello ack in the client's frame stream.
			peer.pushVer.Store(int32(ver))
			q.finish()
			if err != nil {
				break
			}
			continue
		}
		traced := item.arrivedNs != 0
		var popNs int64
		if traced {
			popNs = time.Now().UnixNano()
		}
		var untrack func()
		if s.opts.CPU != nil {
			untrack = s.opts.CPU.Track()
		}
		resp := s.dispatch(peer, item.req)
		var handlerDoneNs int64
		if traced {
			handlerDoneNs = time.Now().UnixNano()
		}
		var err error
		if !q.finish() {
			// A cancel-suppressed response is never encoded, so it leaves the
			// response history untouched — the client, which decodes every
			// arriving frame, stays in lockstep.
			if txVer >= wire.CodecV2 {
				*wbp = appendFrameWith((*wbp)[:0], frameHeader{id: item.id, kind: kindResponseV2}, resp, txVer, txHist)
			} else {
				*wbp = appendFrame((*wbp)[:0], frameHeader{id: item.id, kind: kindResponse}, resp)
			}
			peer.wmu.Lock()
			_, err = peer.conn.Write(*wbp)
			peer.wmu.Unlock()
		}
		if fl != nil && item.req != nil {
			fl.put(item.req)
		}
		if s.opts.RecycleReply != nil && resp != nil {
			s.opts.RecycleReply(resp)
		}
		if untrack != nil {
			untrack()
		}
		if traced {
			endNs := time.Now().UnixNano()
			s.opts.Tracer.RecordServerCall(peerTag, item.id, item.arrivedNs,
				endNs-item.arrivedNs, popNs-item.arrivedNs, handlerDoneNs-popNs,
				endNs-handlerDoneNs)
		} else if s.opts.Tracer != nil {
			s.opts.Tracer.CountServerCall()
		}
		if err != nil {
			break
		}
	}
	peer.conn.Close() // unblock the reader if the write side failed first
	<-readerDone
}

// dispatch runs the handler, converting errors and panics to ErrorReply so
// one bad request never kills the connection, let alone the controller.
func (s *Server) dispatch(peer *Peer, req wire.Message) (resp wire.Message) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("rpc: handler panic: %v", r)
			resp = &wire.ErrorReply{Code: wire.CodeInternal, Text: "handler panic"}
		}
	}()
	resp, err := s.handler.Serve(peer, req)
	if err != nil {
		var er *wire.ErrorReply
		if errors.As(err, &er) {
			return er
		}
		return &wire.ErrorReply{Code: wire.CodeInternal, Text: err.Error()}
	}
	if resp == nil {
		return &wire.ErrorReply{Code: wire.CodeInternal, Text: "handler returned no response"}
	}
	return resp
}

// Close stops accepting and severs all connections. Like net/http's
// Close, it does not wait for in-flight handlers — their response writes
// fail once the connection is gone. Use Wait to block for full drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.acceptWG.Wait()
		return nil
	}
	s.closed = true
	peers := make([]*Peer, 0, len(s.peers))
	for p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()

	err := s.l.Close()
	for _, p := range peers {
		p.conn.Close()
	}
	s.acceptWG.Wait()
	return err
}

// Wait blocks until every per-connection handler goroutine has exited.
// Call it after Close when full quiescence matters (e.g. before asserting
// on shared state in tests).
func (s *Server) Wait() {
	s.acceptWG.Wait()
	s.connWG.Wait()
}
