package config

import (
	"crypto/sha256"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Watcher polls a configuration file for changes without fsnotify: a stat
// per tick (a transiently missing file — an editor's rename-in-place
// window — is not a change) and a content hash, so editors that rewrite
// the file with the same bytes do not trigger spurious reloads. The hash,
// not mtime, is the change signal: two same-size writes can land within
// the filesystem timestamp granularity, and a config file is small enough
// that hashing every poll costs nothing. A change is announced on C; the
// channel has capacity one and coalesces, matching SIGHUP semantics (N
// edits between reloads collapse into one reload of the latest content).
type Watcher struct {
	// C receives one token per observed content change.
	C <-chan struct{}

	path   string
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}

	base fingerprint // baseline at construction, handed to the loop

	mu       sync.Mutex
	interval time.Duration
	kick     chan struct{} // wakes the loop when the interval changes

	polls   atomic.Uint64
	changes atomic.Uint64
}

// NewWatcher starts polling path every interval (zero selects DefaultPoll).
// The file's current content is the baseline: only subsequent changes
// notify.
func NewWatcher(path string, interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = DefaultPoll
	}
	ch := make(chan struct{}, 1)
	w := &Watcher{
		C:        ch,
		path:     path,
		notify:   ch,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		interval: interval,
		kick:     make(chan struct{}, 1),
	}
	// Baseline before the loop starts so an edit racing construction is
	// still seen as a change on the first poll.
	w.base, _ = snapshot(path, fingerprint{})
	go w.loop()
	return w
}

// SetInterval changes the polling interval (a live-reloadable knob itself).
func (w *Watcher) SetInterval(d time.Duration) {
	if d <= 0 {
		d = DefaultPoll
	}
	w.mu.Lock()
	w.interval = d
	w.mu.Unlock()
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// Polls returns how many times the watcher has statted the file.
func (w *Watcher) Polls() uint64 { return w.polls.Load() }

// Changes returns how many content changes the watcher has observed.
func (w *Watcher) Changes() uint64 { return w.changes.Load() }

// Close stops the polling loop.
func (w *Watcher) Close() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

func (w *Watcher) currentInterval() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.interval
}

type fingerprint struct {
	hash [sha256.Size]byte
}

// snapshot hashes the file's content. It returns the new fingerprint and
// whether the content changed from prev.
func snapshot(path string, prev fingerprint) (fingerprint, bool) {
	if _, err := os.Stat(path); err != nil {
		// A transiently missing file (editor rename-in-place window) is
		// not a change; the next poll sees the new file.
		return prev, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return prev, false
	}
	next := fingerprint{hash: sha256.Sum256(data)}
	return next, next.hash != prev.hash
}

func (w *Watcher) loop() {
	defer close(w.done)
	cur := w.base
	timer := time.NewTimer(w.currentInterval())
	defer timer.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-w.kick:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(w.currentInterval())
		case <-timer.C:
			w.polls.Add(1)
			var changed bool
			cur, changed = snapshot(w.path, cur)
			if changed {
				w.changes.Add(1)
				select {
				case w.notify <- struct{}{}:
				default:
				}
			}
			timer.Reset(w.currentInterval())
		}
	}
}

// Reloader owns the accept/reject policy of hot reload: Reload loads the
// file fresh, diffs it against the running configuration, and either
// adopts it (returning the safe delta to apply) or rejects it — parse
// error, validation error, or unsafe delta — keeping the old configuration
// and counting the rejection.
type Reloader struct {
	path string

	mu  sync.Mutex
	cur *File

	reloads atomic.Uint64
	rejects atomic.Uint64
}

// NewReloader wraps the configuration the deployment is currently running.
func NewReloader(path string, cur *File) *Reloader {
	return &Reloader{path: path, cur: cur}
}

// Current returns the configuration in force.
func (r *Reloader) Current() *File {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// Reloads and Rejects count accepted and rejected reload attempts.
func (r *Reloader) Reloads() uint64 { return r.reloads.Load() }

// Rejects counts reload attempts that kept the old configuration.
func (r *Reloader) Rejects() uint64 { return r.rejects.Load() }

// Reload attempts to adopt the on-disk configuration. On success the new
// file becomes Current and the delta to apply is returned; on any error
// the previous configuration stays in force.
func (r *Reloader) Reload() (*File, Delta, error) {
	next, err := Load(r.path)
	if err != nil {
		r.rejects.Add(1)
		return nil, Delta{}, err
	}
	r.mu.Lock()
	old := r.cur
	r.mu.Unlock()
	delta, err := Diff(old, next)
	if err != nil {
		r.rejects.Add(1)
		return nil, Delta{}, err
	}
	r.mu.Lock()
	r.cur = next
	r.mu.Unlock()
	r.reloads.Add(1)
	return next, delta, nil
}
