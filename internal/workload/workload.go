// Package workload synthesizes the I/O demand that data-plane stages
// report to the control plane.
//
// The paper's study uses a stress workload — the control plane runs cycles
// back-to-back and every stage always has metrics to report (§III-C). That
// is the Stress generator here. The package also provides the richer
// shapes (bursty on/off phases, ramps, random walks, recorded traces) used
// by the examples and by the dynamic-adaptation tests that the paper lists
// as future work.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"github.com/dsrhaslab/sdscale/internal/wire"
)

// Generator produces a stage's attempted I/O rate at a given offset from
// the start of the experiment. Implementations must be safe for concurrent
// use and deterministic in t, so distributed stages need no coordination.
type Generator interface {
	// Demand returns the attempted operation rate per class at time t.
	Demand(t time.Duration) wire.Rates
}

// Constant emits a fixed demand forever.
type Constant struct {
	// Rates is the demand emitted at every instant.
	Rates wire.Rates
}

// Demand implements Generator.
func (c Constant) Demand(time.Duration) wire.Rates { return c.Rates }

// Stress is the paper's stress workload: a constant, high, never-idle
// demand that keeps every control cycle fully loaded.
func Stress() Generator {
	return Constant{Rates: wire.Rates{1000, 100}}
}

// Bursty alternates between High demand for On and Low demand for Off,
// offset by Phase. It models the bursty HPC I/O the paper's Observation #4
// calls out.
type Bursty struct {
	// On and Off are the durations of the high and low phases.
	On, Off time.Duration
	// High and Low are the demands during each phase.
	High, Low wire.Rates
	// Phase shifts the cycle so stages need not burst in lockstep.
	Phase time.Duration
}

// Demand implements Generator.
func (b Bursty) Demand(t time.Duration) wire.Rates {
	period := b.On + b.Off
	if period <= 0 {
		return b.High
	}
	pos := (t + b.Phase) % period
	if pos < 0 {
		pos += period
	}
	if pos < b.On {
		return b.High
	}
	return b.Low
}

// Ramp linearly interpolates demand from From to To over Over, then holds
// To. It models a job's I/O intensity growing as it scales up.
type Ramp struct {
	// From and To are the initial and final demands.
	From, To wire.Rates
	// Over is the ramp duration.
	Over time.Duration
}

// Demand implements Generator.
func (r Ramp) Demand(t time.Duration) wire.Rates {
	if r.Over <= 0 || t >= r.Over {
		return r.To
	}
	if t <= 0 {
		return r.From
	}
	f := float64(t) / float64(r.Over)
	out := r.From
	for c := range out {
		out[c] += (r.To[c] - r.From[c]) * f
	}
	return out
}

// RandomWalk emits demand that wanders around Mean with relative amplitude
// Jitter, changing every Step. It is deterministic in (Seed, t).
type RandomWalk struct {
	// Mean is the central demand.
	Mean wire.Rates
	// Jitter is the maximum relative deviation (0.2 = ±20%).
	Jitter float64
	// Step is how often the demand changes. Zero means one second.
	Step time.Duration
	// Seed makes distinct stages decorrelated but reproducible.
	Seed int64
}

// Demand implements Generator.
func (w RandomWalk) Demand(t time.Duration) wire.Rates {
	step := w.Step
	if step <= 0 {
		step = time.Second
	}
	slot := int64(t / step)
	rng := rand.New(rand.NewSource(w.Seed*1_000_003 + slot))
	out := w.Mean
	for c := range out {
		dev := (rng.Float64()*2 - 1) * w.Jitter
		out[c] *= 1 + dev
		if out[c] < 0 {
			out[c] = 0
		}
	}
	return out
}

// Trace replays a recorded demand series at a fixed step, holding the last
// sample after the trace ends.
type Trace struct {
	// Samples is the recorded series.
	Samples []wire.Rates
	// Step is the sampling interval. Zero means one second.
	Step time.Duration
}

// Demand implements Generator.
func (tr Trace) Demand(t time.Duration) wire.Rates {
	if len(tr.Samples) == 0 {
		return wire.Rates{}
	}
	step := tr.Step
	if step <= 0 {
		step = time.Second
	}
	i := int(t / step)
	if i < 0 {
		i = 0
	}
	if i >= len(tr.Samples) {
		i = len(tr.Samples) - 1
	}
	return tr.Samples[i]
}

// Record samples g every step for n samples, producing a Trace. It lets
// tests and tools capture a synthetic workload and replay it elsewhere.
func Record(g Generator, step time.Duration, n int) Trace {
	samples := make([]wire.Rates, n)
	for i := range samples {
		samples[i] = g.Demand(time.Duration(i) * step)
	}
	return Trace{Samples: samples, Step: step}
}

// Parse builds a generator from a compact CLI spec:
//
//	constant:<data>,<meta>
//	stress
//	bursty:<data>,<meta>:<onSec>:<offSec>
//	ramp:<data>,<meta>:<overSec>            (ramps from zero)
//	walk:<data>,<meta>:<jitter>
func Parse(spec string) (Generator, error) {
	parts := strings.Split(spec, ":")
	rates := func(s string) (wire.Rates, error) {
		var r wire.Rates
		fields := strings.Split(s, ",")
		if len(fields) != int(wire.NumClasses) {
			return r, fmt.Errorf("workload: want %d comma-separated rates, got %q", wire.NumClasses, s)
		}
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return r, fmt.Errorf("workload: bad rate %q: %v", f, err)
			}
			r[i] = v
		}
		return r, nil
	}
	seconds := func(s string) (time.Duration, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("workload: bad seconds %q: %v", s, err)
		}
		return time.Duration(v * float64(time.Second)), nil
	}

	switch parts[0] {
	case "stress":
		return Stress(), nil
	case "constant":
		if len(parts) != 2 {
			return nil, fmt.Errorf("workload: constant wants 1 argument, got %q", spec)
		}
		r, err := rates(parts[1])
		if err != nil {
			return nil, err
		}
		return Constant{Rates: r}, nil
	case "bursty":
		if len(parts) != 4 {
			return nil, fmt.Errorf("workload: bursty wants 3 arguments, got %q", spec)
		}
		r, err := rates(parts[1])
		if err != nil {
			return nil, err
		}
		on, err := seconds(parts[2])
		if err != nil {
			return nil, err
		}
		off, err := seconds(parts[3])
		if err != nil {
			return nil, err
		}
		return Bursty{On: on, Off: off, High: r}, nil
	case "ramp":
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: ramp wants 2 arguments, got %q", spec)
		}
		r, err := rates(parts[1])
		if err != nil {
			return nil, err
		}
		over, err := seconds(parts[2])
		if err != nil {
			return nil, err
		}
		return Ramp{To: r, Over: over}, nil
	case "walk":
		if len(parts) != 3 {
			return nil, fmt.Errorf("workload: walk wants 2 arguments, got %q", spec)
		}
		r, err := rates(parts[1])
		if err != nil {
			return nil, err
		}
		jitter, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: bad jitter %q: %v", parts[2], err)
		}
		return RandomWalk{Mean: r, Jitter: jitter, Seed: 1}, nil
	}
	return nil, fmt.Errorf("workload: unknown generator %q (known: stress, constant, bursty, ramp, walk)", parts[0])
}
