package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetContext(1, 1, 0, PhaseCollect)
	tr.RecordCycle(1, 1, 0, time.Now(), time.Millisecond, false)
	tr.RecordPhase(PhaseCollect, 1, 1, 0, time.Now(), time.Millisecond)
	tr.RecordClientCall(1, 1, 0, 1000, 10, 10, false, false)
	tr.RecordServerCall(1, 1, 0, 1000, 10, 10, 10)
	tr.Reset()
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v, want nil", got)
	}
	if got := tr.Totals(); got != (Totals{}) {
		t.Fatalf("nil tracer totals = %+v, want zero", got)
	}
	if got := tr.SlowestChildren(3); got != nil {
		t.Fatalf("nil tracer slowest = %v, want nil", got)
	}
	if tr.Cap() != 0 || tr.Appends() != 0 {
		t.Fatal("nil tracer reports capacity or appends")
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatalf("nil Dump: %v", err)
	}
	if err := tr.WritePrometheus(&buf, "x"); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultCapacity}, {-5, DefaultCapacity}, {1, 1024}, {1024, 1024},
		{1025, 2048}, {5000, 8192},
	} {
		if got := New(tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	tr := New(1024)
	start := time.Now()

	tr.SetContext(7, 3, 1, PhaseCollect)
	tr.RecordClientCall(42, 99, start.UnixNano(), int64(5*time.Millisecond),
		int64(100*time.Microsecond), int64(50*time.Microsecond), false, false)
	tr.RecordPhase(PhaseCollect, 7, 3, 1, start, 6*time.Millisecond)
	tr.RecordCycle(7, 3, 1, start, 20*time.Millisecond, false)
	tr.RecordServerCall(AddrTag("1.2.3.4:5"), 99, start.UnixNano(),
		int64(3*time.Millisecond), int64(1*time.Millisecond), int64(2*time.Millisecond),
		int64(10*time.Microsecond))

	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	call, phase, cycle, server := spans[0], spans[1], spans[2], spans[3]

	if call.Kind != KindCall || call.Phase != PhaseCollect || call.Mode != 1 {
		t.Fatalf("call span misclassified: %+v", call)
	}
	if call.Cycle != 7 || call.Epoch != 3 || call.Tag != 42 || call.Call != 99 {
		t.Fatalf("call span context wrong: %+v", call)
	}
	if call.Dur != 5*time.Millisecond || call.PartA != 100*time.Microsecond || call.PartB != 50*time.Microsecond {
		t.Fatalf("call span timings wrong: %+v", call)
	}
	if phase.Kind != KindPhase || phase.Phase != PhaseCollect || phase.Dur != 6*time.Millisecond {
		t.Fatalf("phase span wrong: %+v", phase)
	}
	if cycle.Kind != KindCycle || cycle.Cycle != 7 || cycle.Epoch != 3 || cycle.Err() {
		t.Fatalf("cycle span wrong: %+v", cycle)
	}
	if server.Kind != KindServer || server.Tag != AddrTag("1.2.3.4:5") ||
		server.PartA != time.Millisecond || server.PartB != 2*time.Millisecond {
		t.Fatalf("server span wrong: %+v", server)
	}

	tot := tr.Totals()
	if tot.Cycles != 1 || tot.ClientCalls != 1 || tot.ServerCalls != 1 {
		t.Fatalf("totals wrong: %+v", tot)
	}
	if tot.ClientDur != 5*time.Millisecond || tot.ClientMarshal != 100*time.Microsecond {
		t.Fatalf("client totals wrong: %+v", tot)
	}
	if tot.ServerQueue != time.Millisecond || tot.ServerHandler != 2*time.Millisecond ||
		tot.ServerWrite != 10*time.Microsecond {
		t.Fatalf("server totals wrong: %+v", tot)
	}
}

func TestFlags(t *testing.T) {
	tr := New(1024)
	tr.RecordClientCall(1, 1, 0, 1000, 0, 0, true, false)
	tr.RecordClientCall(2, 2, 0, 1000, 0, 0, true, true)
	tr.RecordCycle(1, 1, 0, time.Now(), time.Millisecond, true)

	spans := tr.Snapshot()
	if !spans[0].Err() || spans[0].Abandoned() {
		t.Fatalf("span 0 flags: %+v", spans[0])
	}
	if !spans[1].Err() || !spans[1].Abandoned() {
		t.Fatalf("span 1 flags: %+v", spans[1])
	}
	if !spans[2].Err() {
		t.Fatalf("cycle span not marked failed: %+v", spans[2])
	}
	tot := tr.Totals()
	if tot.ClientErrors != 2 || tot.Abandoned != 1 {
		t.Fatalf("totals: %+v", tot)
	}
}

func TestRingWraps(t *testing.T) {
	tr := New(1024)
	n := tr.Cap()*2 + 17
	for i := 0; i < n; i++ {
		tr.RecordPhase(PhaseCompute, uint64(i), 1, 0, time.Now(), time.Duration(i))
	}
	spans := tr.Snapshot()
	if len(spans) != tr.Cap() {
		t.Fatalf("resident %d, want %d", len(spans), tr.Cap())
	}
	// Oldest resident append is n-cap+1 (seq numbers are 1-based).
	if want := uint64(n - tr.Cap() + 1); spans[0].Seq != want {
		t.Fatalf("oldest seq %d, want %d", spans[0].Seq, want)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Seq != spans[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, spans[i-1].Seq, spans[i].Seq)
		}
	}
	if tr.Appends() != uint64(n) {
		t.Fatalf("appends %d, want %d", tr.Appends(), n)
	}
}

func TestReset(t *testing.T) {
	tr := New(1024)
	tr.RecordClientCall(1, 1, 0, 1000, 10, 10, false, false)
	tr.RecordCycle(1, 1, 0, time.Now(), time.Millisecond, false)
	tr.Reset()
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("post-reset snapshot has %d spans", len(got))
	}
	if got := tr.Totals(); got != (Totals{}) {
		t.Fatalf("post-reset totals: %+v", got)
	}
	// The ring keeps accepting appends after a reset.
	tr.RecordCycle(2, 1, 0, time.Now(), time.Millisecond, false)
	if got := tr.Snapshot(); len(got) != 1 || got[0].Cycle != 2 {
		t.Fatalf("post-reset append missing: %v", got)
	}
}

// TestConcurrentAppendSnapshot hammers the ring from many writers while
// readers snapshot, checking that every returned span is internally
// consistent (the fields a writer stores together come back together).
func TestConcurrentAppendSnapshot(t *testing.T) {
	tr := New(4096)
	const writers = 8
	const perWriter = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Encode the writer+iteration into every field so a torn
				// read is detectable.
				v := uint64(w)*perWriter + uint64(i) + 1
				tr.RecordServerCall(v, v, int64(v), int64(v), int64(v%1000), int64(v%1000), 0)
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range tr.Snapshot() {
					if s.Kind != KindServer {
						t.Errorf("torn span kind: %+v", s)
						return
					}
					if s.Tag != s.Call || int64(s.Tag) != s.Start.UnixNano() || int64(s.Dur) != int64(s.Tag) {
						t.Errorf("torn span fields: %+v", s)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := tr.Totals().ServerCalls; got != writers*perWriter {
		t.Fatalf("server calls %d, want %d", got, writers*perWriter)
	}
}

func TestSlowestChildren(t *testing.T) {
	tr := New(1024)
	tr.SetContext(1, 1, 0, PhaseCollect)
	for i := 1; i <= 20; i++ {
		tr.RecordClientCall(uint64(i), uint64(i), 0, int64(i)*int64(time.Millisecond), 0, 0, false, false)
		// Second, faster call per child must not displace the slower one.
		tr.RecordClientCall(uint64(i), uint64(100+i), 0, int64(time.Microsecond), 0, 0, false, false)
	}
	top := tr.SlowestChildren(3)
	if len(top) != 3 {
		t.Fatalf("got %d entries, want 3", len(top))
	}
	for i, want := range []uint64{20, 19, 18} {
		if top[i].Tag != want || top[i].Dur != time.Duration(want)*time.Millisecond {
			t.Fatalf("rank %d = %+v, want tag %d", i, top[i], want)
		}
	}
}

func TestHistograms(t *testing.T) {
	tr := New(1024)
	for i := 0; i < 100; i++ {
		tr.RecordPhase(PhaseCollect, 1, 1, 0, time.Now(), time.Millisecond)
		tr.RecordClientCall(1, uint64(i), 0, int64(time.Millisecond), int64(time.Microsecond), int64(time.Microsecond), false, false)
	}
	h := tr.Histograms()
	if h["phase_collect"] == nil || h["phase_collect"].Count() != 100 {
		t.Fatalf("phase_collect histogram: %+v", h["phase_collect"])
	}
	if h["call"] == nil || h["call"].Count() != 100 {
		t.Fatalf("call histogram missing")
	}
	if h["call_marshal"] == nil || h["call_marshal"].Count() != 100 {
		t.Fatalf("call_marshal histogram missing")
	}
}

func TestAddrTag(t *testing.T) {
	a, b := AddrTag("10.0.0.1:4000"), AddrTag("10.0.0.1:4001")
	if a == b {
		t.Fatal("distinct addresses hash equal")
	}
	if a != AddrTag("10.0.0.1:4000") {
		t.Fatal("AddrTag not deterministic")
	}
}

func TestDump(t *testing.T) {
	tr := New(1024)
	tr.RecordCycle(1, 2, 0, time.Now(), time.Millisecond, false)
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cycle") || !strings.Contains(out, "epoch=2") {
		t.Fatalf("dump output missing fields:\n%s", out)
	}
}

func TestWritePrometheus(t *testing.T) {
	tr := New(1024)
	tr.SetContext(1, 1, 0, PhaseEnforce)
	tr.RecordClientCall(5, 1, 0, int64(2*time.Millisecond), int64(time.Microsecond), int64(time.Microsecond), false, false)
	tr.RecordCycle(1, 1, 0, time.Now(), 3*time.Millisecond, false)

	var buf bytes.Buffer
	if err := tr.WritePrometheus(&buf, "global"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sdscale_trace_cycles_total{tracer="global"} 1`,
		`sdscale_trace_client_calls_total{tracer="global"} 1`,
		`sdscale_trace_span_count{span="call",tracer="global"} 1`,
		`sdscale_trace_slowest_child_seconds{child="5",`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestDebugServer(t *testing.T) {
	tr := New(1024)
	tr.RecordCycle(1, 1, 0, time.Now(), time.Millisecond, false)

	d, err := StartDebug(DebugOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.AddTracer("global", tr)
	d.AddMetrics("extra", MetricsFunc(func(w io.Writer) error {
		_, err := io.WriteString(w, "sdscale_extra_metric 42\n")
		return err
	}))

	get := func(path string) string {
		resp, err := http.Get("http://" + d.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{"sdscale_trace_cycles_total", "sdscale_extra_metric 42"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var traceOut []traceJSON
	if err := json.Unmarshal([]byte(get("/debug/trace")), &traceOut); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	if len(traceOut) != 1 || traceOut[0].Tracer != "global" || len(traceOut[0].Spans) != 1 {
		t.Fatalf("/debug/trace shape: %+v", traceOut)
	}
	if traceOut[0].Spans[0].Kind != "cycle" {
		t.Fatalf("span kind: %+v", traceOut[0].Spans[0])
	}

	if !strings.Contains(get("/debug/vars"), "sdscale.trace") {
		t.Fatal("/debug/vars missing sdscale.trace")
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Fatal("/debug/pprof/ index missing")
	}
}

func TestDebugServerRefusesRemoteBind(t *testing.T) {
	if _, err := StartDebug(DebugOptions{Addr: "0.0.0.0:0"}); err == nil {
		t.Fatal("non-loopback bind accepted without AllowRemote")
	}
	d, err := StartDebug(DebugOptions{Addr: "0.0.0.0:0", AllowRemote: true})
	if err != nil {
		t.Fatalf("AllowRemote bind failed: %v", err)
	}
	d.Close()
}

func TestSampling(t *testing.T) {
	var nilT *Tracer
	if nilT.Sampled(8) {
		t.Fatal("nil tracer sampled a call")
	}
	if got := nilT.SampleEvery(); got != 0 {
		t.Fatalf("nil SampleEvery = %d, want 0", got)
	}
	nilT.CountClientCall(true, true) // must not panic
	nilT.CountServerCall()

	tr := New(0)
	if got := tr.SampleEvery(); got != 1 {
		t.Fatalf("default SampleEvery = %d, want 1 (every call)", got)
	}
	for id := uint64(1); id <= 16; id++ {
		if !tr.Sampled(id) {
			t.Fatalf("full-fidelity tracer skipped id %d", id)
		}
	}

	tr.SetSampleEvery(5) // rounds up to 8
	if got := tr.SampleEvery(); got != 8 {
		t.Fatalf("SampleEvery after SetSampleEvery(5) = %d, want 8", got)
	}
	for id := uint64(1); id <= 32; id++ {
		want := id%8 == 0
		if got := tr.Sampled(id); got != want {
			t.Fatalf("Sampled(%d) = %v, want %v", id, got, want)
		}
	}

	tr.SetSampleEvery(1)
	if got := tr.SampleEvery(); got != 1 {
		t.Fatalf("SampleEvery after SetSampleEvery(1) = %d, want 1", got)
	}
}

func TestCountOnlyRecording(t *testing.T) {
	tr := New(0)
	tr.CountClientCall(false, false)
	tr.CountClientCall(true, false)
	tr.CountClientCall(true, true)
	tr.CountServerCall()

	tot := tr.Totals()
	if tot.ClientCalls != 3 || tot.ClientErrors != 2 || tot.Abandoned != 1 {
		t.Fatalf("client counts: %+v", tot)
	}
	if tot.ClientSampled != 0 || tot.ClientDur != 0 {
		t.Fatalf("count-only calls leaked timings: %+v", tot)
	}
	if tot.ServerCalls != 1 || tot.ServerSampled != 0 || tot.ServerDur != 0 {
		t.Fatalf("server counts: %+v", tot)
	}
	if got := tr.Appends(); got != 0 {
		t.Fatalf("count-only calls appended %d spans, want 0", got)
	}

	// A sampled record lands in both the exact and the sampled counters.
	tr.RecordClientCall(1, 8, 100, 50, 10, 5, false, false)
	tr.RecordServerCall(2, 8, 100, 40, 10, 20, 10)
	tot = tr.Totals()
	if tot.ClientCalls != 4 || tot.ClientSampled != 1 {
		t.Fatalf("mixed client counts: %+v", tot)
	}
	if tot.ServerCalls != 2 || tot.ServerSampled != 1 {
		t.Fatalf("mixed server counts: %+v", tot)
	}

	tr.Reset()
	tot = tr.Totals()
	if tot.ClientCalls != 0 || tot.ClientSampled != 0 || tot.ServerCalls != 0 || tot.ServerSampled != 0 {
		t.Fatalf("totals survived Reset: %+v", tot)
	}
}
