package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/dsrhaslab/sdscale"
	"github.com/dsrhaslab/sdscale/internal/config"
	"github.com/dsrhaslab/sdscale/internal/elastic"
	"github.com/dsrhaslab/sdscale/internal/trace"
)

// daemon is the serve loop's state: the running deployment, the reload
// policy, and the runtime knobs the loop owns. The interval is touched only
// from the loop goroutine — reload triggers (SIGHUP, watcher) are drained
// between cycles, which is also what keeps a signal arriving mid-cycle from
// racing the cycle: it waits in the channel until the cycle boundary. The
// elastic controller is an atomic pointer because the debug endpoint reads
// it from HTTP goroutines while reloads swap it.
type daemon struct {
	dep     *sdscale.Deployment
	rel     *config.Reloader
	watcher *config.Watcher // nil when watching is disabled (tests)
	el      atomic.Pointer[elastic.Controller]

	interval time.Duration
	hup      <-chan os.Signal // nil when signal delivery is disabled (tests)
	reloadC  <-chan struct{}  // watcher change notifications; nil blocks forever
	logf     func(format string, args ...any)

	cycles  expvar.Int
	applied expvar.Int
}

// vars renders the daemon's expvar block (published as "sdscale.serve").
func (d *daemon) vars() any {
	out := map[string]any{
		"cycles":      d.cycles.Value(),
		"reloads":     d.rel.Reloads(),
		"rejects":     d.rel.Rejects(),
		"applied":     d.applied.Value(),
		"aggregators": d.dep.NumAggregators(),
	}
	if d.watcher != nil {
		out["polls"] = d.watcher.Polls()
	}
	if el := d.el.Load(); el != nil {
		st := el.Stats()
		out["elastic_grows"] = st.Grows
		out["elastic_shrinks"] = st.Shrinks
		out["elastic_last_p90_ns"] = int64(st.LastP90)
	}
	return out
}

// tierActuator adapts the deployment's aggregator tier to the elasticity
// loop's actuator interface.
type tierActuator struct{ dep *sdscale.Deployment }

func (a tierActuator) Size() int                        { return a.dep.NumAggregators() }
func (a tierActuator) Grow(ctx context.Context) error   { return a.dep.GrowAggregators(ctx) }
func (a tierActuator) Shrink(ctx context.Context) error { return a.dep.ShrinkAggregators(ctx) }

// elasticConfig lowers a config SLO block onto the elastic controller's
// knobs.
func elasticConfig(s *sdscale.ConfigSLO, logf func(string, ...any)) elastic.Config {
	return elastic.Config{
		SLO:           s.TargetP90.Value(),
		Window:        s.Window,
		BreachWindows: s.BreachWindows,
		ClearWindows:  s.ClearWindows,
		HeadroomRatio: s.HeadroomRatio,
		Cooldown:      s.Cooldown.Value(),
		Min:           s.MinAggregators,
		Max:           s.MaxAggregators,
		Logf:          logf,
	}
}

// notifyHUP subscribes to SIGHUP, the operator's explicit reload trigger.
func notifyHUP() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	return ch
}

// runServe is `sdsctl serve`: load the configuration file, start the
// deployment it describes, and run control cycles on the configured
// interval until the context is cancelled (SIGINT/SIGTERM). The file is
// watched for edits and re-read on SIGHUP; safe deltas apply live at the
// next cycle boundary, anything else is rejected and the old configuration
// stays in force.
func runServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cfgPath := fs.String("config", "", "configuration file (JSON; required)")
	fs.Parse(args)
	if *cfgPath == "" {
		return fmt.Errorf("serve: -config is required")
	}

	cf, err := sdscale.LoadConfig(*cfgPath)
	if err != nil {
		return err
	}
	topo, err := sdscale.TopologyFromConfig(cf)
	if err != nil {
		return err
	}
	dep, err := sdscale.StartTopology(topo)
	if err != nil {
		return err
	}
	// Close exactly once, and always before the final report: closing is
	// what flushes every store's group-commit window to disk.
	closeDep := sync.OnceFunc(dep.Close)
	defer closeDep()

	d := &daemon{
		dep:      dep,
		rel:      config.NewReloader(*cfgPath, cf),
		interval: cf.CycleInterval(),
		logf:     logf,
	}
	d.watcher = config.NewWatcher(*cfgPath, cf.PollInterval())
	defer d.watcher.Close()
	d.reloadC = d.watcher.C
	d.hup = notifyHUP()

	if cf.SLO != nil {
		el, err := elastic.New(elasticConfig(cf.SLO, logf), tierActuator{dep})
		if err != nil {
			return err
		}
		d.el.Store(el)
	}

	if cf.Debug != "" {
		dbg, err := trace.StartDebug(trace.DebugOptions{Addr: cf.Debug, Logf: logf})
		if err != nil {
			return err
		}
		defer dbg.Close()
		dbg.Handle("/healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintf(w, "ok cycles=%d shards=%d stages=%d\n",
				d.cycles.Value(), dep.NumShards(), dep.Stats().Stages)
		}))
		for i := 0; i < dep.NumShards(); i++ {
			dbg.AddMetrics(fmt.Sprintf("shard-%d", i), dep.Shard(i))
		}
		// The elastic source reads through the atomic pointer so reloads
		// that arm, retune, or disarm the loop need not touch the server.
		dbg.AddMetrics("elastic", trace.MetricsFunc(func(w io.Writer) error {
			if el := d.el.Load(); el != nil {
				return el.WritePrometheus(w)
			}
			return nil
		}))
		fmt.Printf("debug endpoint on http://%s (/metrics /healthz /debug/vars /debug/pprof)\n", dbg.Addr())
	}
	expvar.Publish("sdscale.serve", expvar.Func(d.vars))

	fmt.Printf("serving %d stages over %d shard(s) from %s (interval %v)\n",
		dep.Stats().Stages, dep.NumShards(), *cfgPath, d.interval)

	if err := serveLoop(ctx, d); err != nil {
		return err
	}
	// Graceful drain: serveLoop only returns between cycles, so the
	// in-flight cycle already finished. Close now — flushing the WAL
	// group-commit window — then report.
	closeDep()
	fmt.Println("\n--- final report ---")
	fmt.Print(dep.Summary().String())
	fmt.Printf("cycles=%d reloads=%d rejects=%d aggregators=%d\n",
		d.cycles.Value(), d.rel.Reloads(), d.rel.Rejects(), dep.NumAggregators())
	return nil
}

// serveLoop runs control cycles until ctx is cancelled, applying reloads
// and elasticity decisions between cycles. It never interrupts an in-flight
// cycle: shutdown and reload triggers are observed only at cycle
// boundaries.
func serveLoop(ctx context.Context, d *daemon) error {
	for {
		// The cycle runs under its own context: cancelling the daemon must
		// drain, not abort, the in-flight cycle.
		bd, err := d.dep.RunCycle(context.WithoutCancel(ctx))
		if err != nil {
			return fmt.Errorf("serve: control cycle: %w", err)
		}
		d.cycles.Add(1)
		if el := d.el.Load(); el != nil {
			if _, err := el.Observe(context.WithoutCancel(ctx), bd.Total); err != nil {
				d.logf("sdsctl: elastic: %v", err)
			}
		}
		if !d.pause(ctx) {
			return nil
		}
	}
}

// pause sleeps one control interval, servicing reload triggers as they
// arrive. A reload that changes the interval re-arms the pause, so a
// shortened interval takes effect at the next cycle rather than after the
// old (possibly much longer) pause expires. It returns false when the
// daemon should shut down.
func (d *daemon) pause(ctx context.Context) bool {
	timer := time.NewTimer(d.interval)
	defer timer.Stop()
	for {
		prev := d.interval
		select {
		case <-ctx.Done():
			return false
		case <-timer.C:
			return true
		case <-d.hup:
			d.applyReload(ctx)
		case <-d.reloadC:
			d.applyReload(ctx)
		}
		if d.interval != prev {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(d.interval)
		}
	}
}

// applyReload attempts one hot reload: re-read the file, classify the
// delta, apply the safe changes to the running deployment. Any rejection —
// parse error, validation error, unsafe delta — keeps the previous
// configuration in force.
func (d *daemon) applyReload(ctx context.Context) {
	old := d.rel.Current()
	next, delta, err := d.rel.Reload()
	if err != nil {
		d.logf("sdsctl: reload rejected: %v", err)
		return
	}
	if delta.Empty() {
		return
	}
	if _, err := d.dep.ApplyConfig(ctx, old, next); err != nil {
		d.logf("sdsctl: reload apply: %v", err)
		return
	}
	if delta.Interval != nil {
		d.interval = *delta.Interval // the next pause uses the new interval
	}
	if delta.Poll != nil && d.watcher != nil {
		d.watcher.SetInterval(*delta.Poll)
	}
	if delta.SLO {
		d.retuneSLO(next.SLO)
	}
	d.applied.Add(1)
	d.logf("sdsctl: reload applied: %s", delta)
}

// retuneSLO re-arms, retunes, or disarms the elasticity loop after a reload
// changed the slo block.
func (d *daemon) retuneSLO(s *sdscale.ConfigSLO) {
	switch el := d.el.Load(); {
	case s == nil:
		d.el.Store(nil)
	case el == nil:
		fresh, err := elastic.New(elasticConfig(s, d.logf), tierActuator{d.dep})
		if err != nil {
			d.logf("sdsctl: slo: %v", err)
			return
		}
		d.el.Store(fresh)
	default:
		if err := el.SetConfig(elasticConfig(s, d.logf)); err != nil {
			d.logf("sdsctl: slo: %v", err)
		}
	}
}
