// Package stage implements the data-plane side of the SDS architecture:
// the per-node components that sit between applications and the PFS client
// (paper Fig. 1), answer the control plane's metric collections, and apply
// its enforcement rules.
//
// Two stage kinds are provided:
//
//   - Virtual stages reproduce the paper's methodology (§III-C): they hold
//     no application I/O, synthesize their metrics from a workload
//     generator, and acknowledge enforcement rules. Thousands of them run
//     in one process to simulate large infrastructures.
//   - Enforcing stages are functional: applications push operations
//     through Submit, a multi-class token bucket admits them at the
//     control plane's current limits, and admitted operations proceed to
//     the (simulated) PFS. They power the end-to-end QoS examples.
//
// Stages are RPC servers; controllers dial them. This mirrors the paper's
// deployment, where the controller maintains the connection pool to all
// stages — and is therefore the endpoint that hits the per-node connection
// limit (§IV-A).
package stage

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/sdscale/internal/metrics"
	"github.com/dsrhaslab/sdscale/internal/pfs"
	"github.com/dsrhaslab/sdscale/internal/ratelimit"
	"github.com/dsrhaslab/sdscale/internal/rpc"
	"github.com/dsrhaslab/sdscale/internal/trace"
	"github.com/dsrhaslab/sdscale/internal/transport"
	"github.com/dsrhaslab/sdscale/internal/wire"
	"github.com/dsrhaslab/sdscale/internal/workload"
)

// Info identifies a stage to the control plane.
type Info struct {
	// ID is the cluster-unique stage identifier.
	ID uint64
	// JobID is the job this stage serves.
	JobID uint64
	// Weight is the job's QoS weight.
	Weight float64
	// Addr is the stage's RPC listen address.
	Addr string
}

// Config configures a virtual stage.
type Config struct {
	// ID is the cluster-unique stage identifier.
	ID uint64
	// JobID is the job this stage serves.
	JobID uint64
	// Weight is the job's QoS weight.
	Weight float64
	// Generator drives the stage's synthetic demand. Nil selects the
	// paper's stress workload.
	Generator workload.Generator
	// Network is the transport to listen on.
	Network transport.Network
	// ListenAddr is the address to listen on (":0" auto-assigns).
	ListenAddr string
	// Parents is an ordered list of parent controller addresses. When set,
	// the stage registers itself (retrying until a parent is reachable)
	// and re-homes to the first answering address whenever no parent has
	// contacted it for ParentTimeout — the child side of controller
	// failover. When empty, the control plane must adopt the stage
	// explicitly (AddStage or Register).
	Parents []string
	// ParentTimeout is how long the stage waits without control-plane
	// contact before re-registering. Zero selects DefaultParentTimeout.
	// Only meaningful with Parents set.
	ParentTimeout time.Duration
	// Tracer, when set, records a server span per control-plane request
	// (queue vs. handler vs. write time). Stage servers never write cycle
	// context, so one tracer may be shared by many stages.
	Tracer *trace.Tracer
	// MaxCodec caps the wire codec version the stage's server negotiates.
	// Zero selects the newest supported version; 1 pins the legacy v1 codec.
	MaxCodec int
	// PushThreshold enables event-driven report pushes: the stage samples
	// its demand/usage every PushInterval and, when any class moved by more
	// than this fraction relative to the last pushed value (or appeared from
	// zero), pushes a wire.ReportDelta to every connected parent that
	// negotiated codec v2. Zero disables pushing (the paper-faithful
	// poll-only stage). A pushed report also refreshes on a heartbeat floor
	// (PushFloor) so parents can tell a silent stage from an unchanged one,
	// and an epoch change forces a Full baseline resend.
	PushThreshold float64
	// PushInterval is the local sampling period for push decisions. Zero
	// selects DefaultPushInterval. Only meaningful with PushThreshold set.
	PushInterval time.Duration
	// PushFloor is the maximum quiet time between pushes: even an unchanged
	// stage re-pushes (Full=true) this long after its previous push. Zero
	// selects DefaultPushFloor. Only meaningful with PushThreshold set.
	PushFloor time.Duration
}

// DefaultParentTimeout is how long a stage with a parent list waits without
// control-plane contact before it assumes its parent died and re-homes.
const DefaultParentTimeout = time.Second

// DefaultPushInterval is the default local sampling period for event-driven
// report pushes (Config.PushInterval).
const DefaultPushInterval = 100 * time.Millisecond

// DefaultPushFloor is the default heartbeat floor between pushes
// (Config.PushFloor): an unchanged stage still re-pushes this often.
const DefaultPushFloor = time.Second

// Virtual is the paper's lightweight stage: it answers collections with
// generator-driven metrics and records enforcement rules.
type Virtual struct {
	cfg    Config
	server *rpc.Server
	start  time.Time
	fence  fence
	who    string // "stage N", precomputed: fence checks run on every request

	rehomeStop chan struct{}
	rehomeDone chan struct{}

	pushStop chan struct{}
	pushDone chan struct{}
	pushes   atomic.Uint64

	// replies recycles this stage's response messages: the RPC server hands
	// each response back once its bytes are on the wire
	// (rpc.ServerOptions.RecycleReply), and the next request of that type
	// reuses the instance instead of allocating. One slot per type matches
	// the single-parent steady state; overlapping parents (failover) fall
	// back to allocating.
	replies replyCache

	mu              sync.Mutex
	rule            wire.Rule
	haveRule        bool
	collects        uint64
	enforces        uint64
	lastCycle       uint64
	reRegistrations uint64
	closed          bool
}

// StartVirtual launches a virtual stage's RPC server.
func StartVirtual(cfg Config) (*Virtual, error) {
	if cfg.Generator == nil {
		cfg.Generator = workload.Stress()
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = ":0"
	}
	if cfg.ParentTimeout <= 0 {
		cfg.ParentTimeout = DefaultParentTimeout
	}
	v := &Virtual{cfg: cfg, start: time.Now(), who: fmt.Sprintf("stage %d", cfg.ID)}
	// Stage handlers copy what they keep out of each request, so inbound
	// collects/enforces/heartbeats are safely recycled per connection.
	srv, err := rpc.Serve(cfg.Network, cfg.ListenAddr, rpc.HandlerFunc(v.serve), rpc.ServerOptions{
		Tracer:        cfg.Tracer,
		MaxCodec:      cfg.MaxCodec,
		ReuseRequests: true,
		RecycleReply:  v.replies.recycle,
	})
	if err != nil {
		return nil, fmt.Errorf("stage %d: %w", cfg.ID, err)
	}
	v.server = srv
	if len(cfg.Parents) > 0 {
		v.fence.touch() // grace period: don't re-home before first contact
		v.rehomeStop = make(chan struct{})
		v.rehomeDone = make(chan struct{})
		go v.rehome()
	}
	if cfg.PushThreshold > 0 {
		if v.cfg.PushInterval <= 0 {
			v.cfg.PushInterval = DefaultPushInterval
		}
		if v.cfg.PushFloor <= 0 {
			v.cfg.PushFloor = DefaultPushFloor
		}
		v.pushStop = make(chan struct{})
		v.pushDone = make(chan struct{})
		go v.pushLoop()
	}
	return v, nil
}

// Info returns the stage's identity, including its bound address.
func (v *Virtual) Info() Info {
	return Info{ID: v.cfg.ID, JobID: v.cfg.JobID, Weight: v.cfg.Weight, Addr: v.server.Addr().String()}
}

// Close stops the stage.
func (v *Virtual) Close() error {
	v.mu.Lock()
	wasClosed := v.closed
	v.closed = true
	v.mu.Unlock()
	if !wasClosed {
		if v.rehomeStop != nil {
			close(v.rehomeStop)
			<-v.rehomeDone
		}
		if v.pushStop != nil {
			close(v.pushStop)
			<-v.pushDone
		}
	}
	return v.server.Close()
}

// serve handles control-plane requests.
func (v *Virtual) serve(peer *rpc.Peer, req wire.Message) (wire.Message, error) {
	switch m := req.(type) {
	case *wire.Collect:
		if er := v.fence.check(v.who, m.Epoch); er != nil {
			return nil, er
		}
		return v.collect(m), nil
	case *wire.Enforce:
		if er := v.fence.check(v.who, m.Epoch); er != nil {
			return nil, er
		}
		return v.enforce(m), nil
	case *wire.Heartbeat:
		v.fence.touch()
		ack := v.replies.takeHeartbeat()
		ack.EchoUnixMicros = m.SentUnixMicros
		return ack, nil
	}
	return nil, fmt.Errorf("stage %d: unexpected %s", v.cfg.ID, req.Type())
}

// clampLocked derives admitted usage from demand under the currently
// enforced rule. Callers hold v.mu.
func (v *Virtual) clampLocked(demand wire.Rates) wire.Rates {
	usage := demand
	if v.haveRule {
		switch v.rule.Action {
		case wire.ActionSetLimit:
			for c := range usage {
				if usage[c] > v.rule.Limit[c] {
					usage[c] = v.rule.Limit[c]
				}
			}
		case wire.ActionPause:
			usage = wire.Rates{}
		}
	}
	return usage
}

// collect synthesizes the stage's report. Usage reflects the currently
// enforced limit, so the control loop observes the effect of its own rules
// — the feedback the PSFA algorithm relies on.
func (v *Virtual) collect(m *wire.Collect) *wire.CollectReply {
	demand := v.cfg.Generator.Demand(time.Since(v.start))

	v.mu.Lock()
	v.collects++
	v.lastCycle = m.Cycle
	usage := v.clampLocked(demand)
	v.mu.Unlock()

	rep := v.replies.takeCollect()
	rep.Cycle = m.Cycle
	rep.Reports = append(rep.Reports[:0], wire.StageReport{
		StageID: v.cfg.ID,
		JobID:   v.cfg.JobID,
		Demand:  demand,
		Usage:   usage,
	})
	return rep
}

// enforce applies the rules addressed to this stage, directly or through a
// per-job wildcard (see wire.WildcardStage). The rule is copied out of the
// request, which the server recycles after the response is written.
func (v *Virtual) enforce(m *wire.Enforce) *wire.EnforceAck {
	var applied uint32
	v.mu.Lock()
	for i := range m.Rules {
		if ruleTargets(&m.Rules[i], v.cfg.ID, v.cfg.JobID) {
			v.rule = m.Rules[i]
			v.haveRule = true
			v.enforces++
			applied++
		}
	}
	v.mu.Unlock()
	ack := v.replies.takeEnforce()
	ack.Cycle, ack.Applied = m.Cycle, applied
	return ack
}

// ruleTargets reports whether a rule addresses the given stage: either
// directly by stage ID or as a job-wide wildcard.
func ruleTargets(r *wire.Rule, stageID, jobID uint64) bool {
	return r.StageID == stageID || (r.StageID == wire.WildcardStage && r.JobID == jobID)
}

// replyCache holds one recycled response instance per message type. take*
// returns the cached instance (or a fresh one when the slot is empty — e.g.
// two parents collecting concurrently during a failover overlap); recycle
// refills the slot once the server has written the response bytes, so an
// instance is never cached while still referenced.
type replyCache struct {
	mu        sync.Mutex
	collect   *wire.CollectReply
	enforce   *wire.EnforceAck
	heartbeat *wire.HeartbeatAck
}

func (c *replyCache) takeCollect() *wire.CollectReply {
	c.mu.Lock()
	rep := c.collect
	c.collect = nil
	c.mu.Unlock()
	if rep == nil {
		rep = &wire.CollectReply{Reports: make([]wire.StageReport, 0, 1)}
	}
	return rep
}

func (c *replyCache) takeEnforce() *wire.EnforceAck {
	c.mu.Lock()
	ack := c.enforce
	c.enforce = nil
	c.mu.Unlock()
	if ack == nil {
		ack = &wire.EnforceAck{}
	}
	return ack
}

func (c *replyCache) takeHeartbeat() *wire.HeartbeatAck {
	c.mu.Lock()
	ack := c.heartbeat
	c.heartbeat = nil
	c.mu.Unlock()
	if ack == nil {
		ack = &wire.HeartbeatAck{}
	}
	return ack
}

// recycle accepts a response the server has finished writing. Unrecognized
// types (fence errors, push acks) are simply dropped.
func (c *replyCache) recycle(m wire.Message) {
	c.mu.Lock()
	switch m := m.(type) {
	case *wire.CollectReply:
		c.collect = m
	case *wire.EnforceAck:
		c.enforce = m
	case *wire.HeartbeatAck:
		c.heartbeat = m
	}
	c.mu.Unlock()
}

// sample synthesizes the stage's current report without counting a collect —
// the same demand/usage math collect runs, taken on the stage's own clock
// for push decisions.
func (v *Virtual) sample() wire.StageReport {
	demand := v.cfg.Generator.Demand(time.Since(v.start))
	v.mu.Lock()
	usage := v.clampLocked(demand)
	v.mu.Unlock()
	return wire.StageReport{StageID: v.cfg.ID, JobID: v.cfg.JobID, Demand: demand, Usage: usage}
}

// ratesMoved reports whether any class of n moved past the relative
// threshold thr from o. A class appearing from (or collapsing to) zero
// always counts as moved.
func ratesMoved(o, n wire.Rates, thr float64) bool {
	for c := range n {
		d := n[c] - o[c]
		if d < 0 {
			d = -d
		}
		if d == 0 {
			continue
		}
		base := o[c]
		if base < 0 {
			base = -base
		}
		if base == 0 || d/base > thr {
			return true
		}
	}
	return false
}

// pushLoop is the event-driven reporting side of the incremental control
// mode: it samples the stage's metrics every PushInterval and pushes a
// ReportDelta to all connected v2 parents when they moved past
// PushThreshold, when the leadership epoch changed (Full baseline, so a
// re-homed parent never computes from a pre-fencing report), or when
// PushFloor elapsed since the last push (Full refresh — the liveness signal
// that distinguishes a quiet stage from a dead one). Quiesced ticks take no
// allocations and write nothing.
func (v *Virtual) pushLoop() {
	defer close(v.pushDone)
	tick := time.NewTicker(v.cfg.PushInterval)
	defer tick.Stop()
	var (
		last      wire.StageReport
		lastAt    time.Time
		lastEpoch uint64
		seq       uint64
		haveBase  bool
	)
	for {
		select {
		case <-v.pushStop:
			return
		case <-tick.C:
		}
		r := v.sample()
		epoch := v.fence.current()
		full := !haveBase || epoch != lastEpoch || time.Since(lastAt) >= v.cfg.PushFloor
		if !full && !ratesMoved(last.Demand, r.Demand, v.cfg.PushThreshold) &&
			!ratesMoved(last.Usage, r.Usage, v.cfg.PushThreshold) {
			continue
		}
		seq++
		m := &wire.ReportDelta{Seq: seq, Full: full, Epoch: epoch, Report: r}
		sent := false
		v.server.ForEachPeer(func(p *rpc.Peer) {
			if p.Push(m) == nil {
				sent = true
			}
		})
		if sent {
			v.pushes.Add(1)
		}
		// The baseline advances even with no v2 parent connected, so a
		// late-attaching parent starts from the next floor refresh rather
		// than a burst of stale deltas.
		last, lastAt, lastEpoch, haveBase = r, time.Now(), epoch, true
	}
}

// PushDelta samples the stage, scales demand and usage by f, and pushes the
// result as a Full ReportDelta to every connected parent immediately,
// bypassing the push loop's ticker. Full deltas are accepted regardless of
// the loop's sequence counter (the same rule that covers stage restarts), so
// this composes with a running push loop. Benchmarks use it to dirty a
// chosen fraction of the fleet deterministically per cycle; on a v1-capped
// connection pushes are unsupported and it reports false.
func (v *Virtual) PushDelta(f float64) bool {
	r := v.sample()
	r.Demand = r.Demand.Scale(f)
	r.Usage = r.Usage.Scale(f)
	m := &wire.ReportDelta{Full: true, Epoch: v.fence.current(), Report: r}
	sent := false
	v.server.ForEachPeer(func(p *rpc.Peer) {
		if p.Push(m) == nil {
			sent = true
		}
	})
	if sent {
		v.pushes.Add(1)
	}
	return sent
}

// Pushes returns how many ReportDelta pushes reached at least one parent.
func (v *Virtual) Pushes() uint64 { return v.pushes.Load() }

// LastRule returns the most recently applied rule, if any.
func (v *Virtual) LastRule() (wire.Rule, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.rule, v.haveRule
}

// Counters returns how many collect and enforce requests the stage served.
func (v *Virtual) Counters() (collects, enforces uint64) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.collects, v.enforces
}

// Epoch returns the highest leadership epoch the stage has seen.
func (v *Virtual) Epoch() uint64 { return v.fence.current() }

// FencedCalls returns how many calls the stage rejected for carrying a
// stale leadership epoch.
func (v *Virtual) FencedCalls() uint64 { return v.fence.fencedCalls() }

// ReRegistrations returns how many times the stage re-homed to a parent
// after losing control-plane contact.
func (v *Virtual) ReRegistrations() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.reRegistrations
}

// EnforcingConfig configures an enforcing stage.
type EnforcingConfig struct {
	// ID is the cluster-unique stage identifier.
	ID uint64
	// JobID is the job this stage serves.
	JobID uint64
	// Weight is the job's QoS weight.
	Weight float64
	// Network is the transport to listen on.
	Network transport.Network
	// ListenAddr is the address to listen on (":0" auto-assigns).
	ListenAddr string
	// FS is the shared file system admitted operations are submitted to.
	// It may be nil, in which case admitted operations complete instantly
	// (useful in tests).
	FS *pfs.FileSystem
	// Window is the metric measurement window. Zero selects one second.
	Window time.Duration
	// Tracer, when set, records a server span per control-plane request.
	// Safe to share across stages (see Config.Tracer).
	Tracer *trace.Tracer
	// MaxCodec caps the wire codec version the stage's server negotiates.
	// Zero selects the newest supported version; 1 pins the legacy v1 codec.
	MaxCodec int
}

// Enforcing is a functional stage: it rate limits application operations
// according to control-plane rules and reports measured demand and usage.
type Enforcing struct {
	cfg     EnforcingConfig
	server  *rpc.Server
	limiter *ratelimit.MultiBucket
	fence   fence

	who string // "stage N", precomputed: fence checks run on every request

	demand [wire.NumClasses]*metrics.RateCounter
	usage  [wire.NumClasses]*metrics.RateCounter
}

// StartEnforcing launches an enforcing stage.
func StartEnforcing(cfg EnforcingConfig) (*Enforcing, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = ":0"
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	e := &Enforcing{cfg: cfg, limiter: ratelimit.NewUnlimited(), who: fmt.Sprintf("stage %d", cfg.ID)}
	for c := range e.demand {
		e.demand[c] = metrics.NewRateCounter(cfg.Window, 10)
		e.usage[c] = metrics.NewRateCounter(cfg.Window, 10)
	}
	srv, err := rpc.Serve(cfg.Network, cfg.ListenAddr, rpc.HandlerFunc(e.serve), rpc.ServerOptions{
		Tracer:        cfg.Tracer,
		MaxCodec:      cfg.MaxCodec,
		ReuseRequests: true,
	})
	if err != nil {
		return nil, fmt.Errorf("stage %d: %w", cfg.ID, err)
	}
	e.server = srv
	return e, nil
}

// Info returns the stage's identity, including its bound address.
func (e *Enforcing) Info() Info {
	return Info{ID: e.cfg.ID, JobID: e.cfg.JobID, Weight: e.cfg.Weight, Addr: e.server.Addr().String()}
}

// Close stops the stage.
func (e *Enforcing) Close() error { return e.server.Close() }

// Submit is the application-facing entry point: one I/O operation of the
// given class. It counts toward demand immediately, blocks until the
// control plane's current limit admits it, and then proceeds to the PFS.
func (e *Enforcing) Submit(ctx context.Context, class wire.OpClass) error {
	e.demand[class].Add(time.Now(), 1)
	if err := e.limiter.Admit(ctx, class); err != nil {
		return err
	}
	if e.cfg.FS != nil {
		if _, err := e.cfg.FS.Submit(ctx, e.cfg.JobID, class); err != nil {
			return err
		}
	}
	e.usage[class].Add(time.Now(), 1)
	return nil
}

// Limits exposes the currently enforced limits (for observability).
func (e *Enforcing) Limits() (wire.Rates, bool) { return e.limiter.Limits() }

// Epoch returns the highest leadership epoch the stage has seen.
func (e *Enforcing) Epoch() uint64 { return e.fence.current() }

// FencedCalls returns how many calls the stage rejected for carrying a
// stale leadership epoch.
func (e *Enforcing) FencedCalls() uint64 { return e.fence.fencedCalls() }

// Demand-probing parameters: a stage whose measured rate sits within
// saturationFraction of its enforced limit is throttle-bound — its callers
// are blocked inside Submit, so their real appetite is invisible. The
// stage then reports probeGrowth times the limit as demand, letting the
// control algorithm discover how much the job actually wants: a genuinely
// satisfied job stops growing, a contended one keeps bidding until PSFA's
// weighted water level caps it.
const (
	saturationFraction = 0.9
	probeGrowth        = 1.25
)

// probeDemand inflates reported demand for classes saturated at their
// enforced limit.
func (e *Enforcing) probeDemand(d, u wire.Rates) wire.Rates {
	limit, unlimited := e.limiter.Limits()
	if unlimited {
		return d
	}
	for c := range d {
		if limit[c] <= 0 {
			continue
		}
		if d[c] >= limit[c]*saturationFraction || u[c] >= limit[c]*saturationFraction {
			if probe := limit[c] * probeGrowth; probe > d[c] {
				d[c] = probe
			}
		}
	}
	return d
}

// serve handles control-plane requests.
func (e *Enforcing) serve(peer *rpc.Peer, req wire.Message) (wire.Message, error) {
	switch m := req.(type) {
	case *wire.Collect:
		if er := e.fence.check(e.who, m.Epoch); er != nil {
			return nil, er
		}
		now := time.Now()
		var d, u wire.Rates
		for c := range d {
			d[c] = e.demand[c].Rate(now)
			u[c] = e.usage[c].Rate(now)
		}
		d = e.probeDemand(d, u)
		return &wire.CollectReply{
			Cycle: m.Cycle,
			Reports: []wire.StageReport{{
				StageID: e.cfg.ID,
				JobID:   e.cfg.JobID,
				Demand:  d,
				Usage:   u,
			}},
		}, nil
	case *wire.Enforce:
		if er := e.fence.check(e.who, m.Epoch); er != nil {
			return nil, er
		}
		var applied uint32
		for i := range m.Rules {
			if ruleTargets(&m.Rules[i], e.cfg.ID, e.cfg.JobID) {
				e.limiter.ApplyRule(m.Rules[i])
				applied++
			}
		}
		return &wire.EnforceAck{Cycle: m.Cycle, Applied: applied}, nil
	case *wire.Heartbeat:
		e.fence.touch()
		return &wire.HeartbeatAck{EchoUnixMicros: m.SentUnixMicros}, nil
	}
	return nil, fmt.Errorf("stage %d: unexpected %s", e.cfg.ID, req.Type())
}

// Register announces a stage to a parent controller. It retries transient
// failures (the controller may still be booting) with exponential backoff
// and jitter for DefaultRegisterAttempts passes; use RegisterAny directly
// for an address list or different retry bounds.
func Register(ctx context.Context, network transport.Network, parentAddr string, info Info) error {
	_, err := RegisterAny(ctx, network, []string{parentAddr}, info, RegisterOptions{})
	return err
}
