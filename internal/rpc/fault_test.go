package rpc

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// blockingHandler parks every request on block after signaling started.
type blockingHandler struct {
	handled atomic.Int64
	started chan struct{}
	block   chan struct{}
}

func newBlockingHandler() *blockingHandler {
	return &blockingHandler{started: make(chan struct{}, 16), block: make(chan struct{})}
}

func (h *blockingHandler) Serve(peer *Peer, req wire.Message) (wire.Message, error) {
	h.handled.Add(1)
	h.started <- struct{}{}
	<-h.block
	return &wire.HeartbeatAck{}, nil
}

// probeCtx bounds a single probe call so a poll loop can never wedge on a
// call issued into a half-dead connection.
func probeCtx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	_ = cancel // released when the timeout fires
	return ctx
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A cancel frame for a still-queued request must withdraw it before
// dispatch: the handler never sees it.
func TestCancelFrameSkipsQueuedRequest(t *testing.T) {
	h := newBlockingHandler()
	_, srv, cli := testSetup(t, h)

	// Occupy the handler so the next request stays queued.
	firstErr := make(chan error, 1)
	go func() {
		_, err := cli.Call(context.Background(), &wire.Heartbeat{})
		firstErr <- err
	}()
	<-h.started

	ctx, cancel := context.WithCancel(context.Background())
	secondErr := make(chan error, 1)
	go func() {
		_, err := cli.Call(ctx, &wire.Heartbeat{})
		secondErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the second request reach the queue
	cancel()
	if err := <-secondErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled call returned %v, want context.Canceled", err)
	}
	waitFor(t, "cancel frame to withdraw the queued request", func() bool {
		return srv.CanceledRequests() == 1
	})

	close(h.block)
	if err := <-firstErr; err != nil {
		t.Fatalf("first call: %v", err)
	}
	if got := h.handled.Load(); got != 1 {
		t.Errorf("handler ran %d times, want 1 (canceled request dispatched)", got)
	}
}

// A cancel arriving while the handler is already running cannot unrun it,
// but the server must suppress the late response instead of writing it.
func TestCancelMidHandlerSuppressesResponse(t *testing.T) {
	h := newBlockingHandler()
	_, srv, cli := testSetup(t, h)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := cli.Call(ctx, &wire.Heartbeat{})
		errc <- err
	}()
	<-h.started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled call returned %v", err)
	}
	waitFor(t, "cancel frame to mark the in-flight request", func() bool {
		return srv.CanceledRequests() == 1
	})
	close(h.block)

	// The connection stays healthy and the suppressed response never shows
	// up as a late response at the client.
	if _, err := cli.Call(context.Background(), &wire.Heartbeat{}); err != nil {
		t.Fatalf("call after suppressed response: %v", err)
	}
	if got := cli.LateResponses(); got != 0 {
		t.Errorf("LateResponses = %d, want 0 (response was suppressed server-side)", got)
	}
}

// A response with no waiting call must be dropped and counted, not crash
// the read loop or leak. Simulated with a hand-rolled server that answers
// the same request twice.
func TestLateResponseCounted(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	l, err := n.Host("server").Listen(":0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		h, _, _, err := readFrame(conn, nil)
		if err != nil {
			return
		}
		buf := appendFrame(nil, frameHeader{id: h.id, kind: kindResponse}, &wire.HeartbeatAck{})
		buf = appendFrame(buf, frameHeader{id: h.id, kind: kindResponse}, &wire.HeartbeatAck{})
		conn.Write(buf)
		readFrame(conn, nil) // hold the conn open until the client closes
	}()

	// Pin to v1: the hand-rolled server reads exactly one frame and must see
	// the request, not a codec hello.
	cli, err := Dial(context.Background(), n.Host("client"), l.Addr().String(), DialOptions{MaxCodec: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(context.Background(), &wire.Heartbeat{}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	waitFor(t, "duplicate response to be counted", func() bool {
		return cli.LateResponses() == 1
	})
}

// The reconnecting client must fail fast while disconnected and attach a
// fresh connection once the server is back on the same address.
func TestReconnectingClientRedials(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	rc, err := DialReconnecting(context.Background(), n.Host("client"), addr, DialOptions{},
		ReconnectPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Call(context.Background(), &wire.Heartbeat{}); err != nil {
		t.Fatalf("initial call: %v", err)
	}

	srv.Close()
	// Once the dead connection is detected, calls fail fast with
	// ErrDisconnected instead of blocking on the redial.
	waitFor(t, "fail-fast ErrDisconnected", func() bool {
		_, err := rc.Call(probeCtx(), &wire.Heartbeat{})
		return errors.Is(err, ErrDisconnected)
	})
	if rc.Connected() {
		t.Error("Connected() = true while server is down")
	}

	srv2, err := Serve(n.Host("server"), addr, &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatalf("restart server: %v", err)
	}
	defer srv2.Close()
	waitFor(t, "redial to succeed", func() bool {
		_, err := rc.Call(probeCtx(), &wire.Heartbeat{})
		return err == nil
	})
	if got := rc.Reconnects(); got < 1 {
		t.Errorf("Reconnects = %d, want >= 1", got)
	}
}

// Close must stop a redial loop that is backing off against a dead address.
func TestReconnectingClientCloseStopsRedial(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := DialReconnecting(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{},
		ReconnectPolicy{BaseDelay: time.Hour}) // a redial that would wait forever
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	waitFor(t, "disconnect detection", func() bool {
		_, err := rc.Call(probeCtx(), &wire.Heartbeat{})
		return errors.Is(err, ErrDisconnected)
	})
	if err := rc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := rc.Call(context.Background(), &wire.Heartbeat{}); !errors.Is(err, ErrClientClosed) {
		t.Errorf("Call after Close = %v, want ErrClientClosed", err)
	}
}

// Concurrent calls, connection death, and Close must not race (run with
// -race) or deadlock; every call must return.
func TestClientLifecycleRace(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				_, _ = cli.Call(ctx, &wire.Heartbeat{SentUnixMicros: int64(g*1000 + i)})
				cancel()
				cli.Err()
				cli.LateResponses()
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		srv.Close() // kill the connection under the in-flight calls
	}()
	go func() {
		defer wg.Done()
		time.Sleep(8 * time.Millisecond)
		cli.Close()
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lifecycle race test deadlocked")
	}
}

// Same shape for the reconnecting wrapper: calls racing a server bounce and
// a concurrent Close.
func TestReconnectingClientRace(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	rc, err := DialReconnecting(context.Background(), n.Host("client"), addr, DialOptions{},
		ReconnectPolicy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				_, _ = rc.Call(ctx, &wire.Heartbeat{})
				cancel()
				rc.Connected()
				rc.Reconnects()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		srv.Close()
		srv2, err := Serve(n.Host("server"), addr, &echoHandler{}, ServerOptions{})
		if err == nil {
			time.Sleep(10 * time.Millisecond)
			srv2.Close()
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("reconnecting race test deadlocked")
	}
	rc.Close()
}

func TestReconnectPolicyBackoff(t *testing.T) {
	p := ReconnectPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond,
		Multiplier: 2, Jitter: -1}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	delay := p.BaseDelay
	var waits []time.Duration
	for i := 0; i < 4; i++ {
		var wait time.Duration
		wait, delay = p.next(rng, delay)
		waits = append(waits, wait)
	}
	want := []time.Duration{10, 20, 35, 35}
	for i, w := range want {
		if waits[i] != w*time.Millisecond {
			t.Errorf("wait[%d] = %v, want %v (%v)", i, waits[i], w*time.Millisecond, waits)
			break
		}
	}
}

func TestReconnectPolicyJitterBounds(t *testing.T) {
	// Regression: jitter is drawn from a per-reconnector rand.Rand, not the
	// global math/rand source. The global source serializes every caller on
	// one mutex, which during a mass re-home (thousands of children redialing
	// a new parent at once) turned the jittered retry path into a convoy.
	p := ReconnectPolicy{}.withDefaults()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		wait, _ := p.next(rng, 100*time.Millisecond)
		if wait < 50*time.Millisecond || wait >= 150*time.Millisecond {
			t.Fatalf("jittered wait %v outside [50ms, 150ms)", wait)
		}
	}
	if _, grown := p.next(rng, p.MaxDelay); grown != p.MaxDelay {
		t.Errorf("grown delay %v exceeds MaxDelay %v", grown, p.MaxDelay)
	}
}
