package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/sdscale/internal/transport/simnet"
	"github.com/dsrhaslab/sdscale/internal/wire"
)

// TestGoSharedRoundTrip: a broadcast frame fans out to several servers with
// one encode, and every handler sees the full body.
func TestGoSharedRoundTrip(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	const servers = 4
	var clis []*Client
	h := &echoHandler{}
	for i := 0; i < servers; i++ {
		srv, err := Serve(n.Host(fmt.Sprintf("s%d", i)), ":0", h, ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		clis = append(clis, cli)
	}

	f := NewSharedFrame(&wire.Collect{Cycle: 42, WindowMicros: 1e6})
	calls := make([]*Call, servers)
	for i, cli := range clis {
		calls[i] = cli.GoShared(context.Background(), f)
	}
	f.Release()
	for i, call := range calls {
		resp, err := call.Wait(context.Background())
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
		if r := resp.(*wire.CollectReply); r.Cycle != 42 {
			t.Fatalf("server %d: cycle %d", i, r.Cycle)
		}
	}
	if got := f.refs.Load(); got != 0 {
		t.Fatalf("refs = %d after full harvest, want 0", got)
	}
	// All clients are fresh v1 connections here (the hello ack may not have
	// landed yet), so exactly one encode serves the whole fan-out.
	if enc := f.Encodes(); enc < 1 || enc > 2 {
		t.Fatalf("Encodes = %d, want 1 or 2 (one per codec version in use)", enc)
	}
}

// slowVerifyHandler verifies each Collect body is intact (the shared frame
// was not recycled mid-copy) and can be stalled to keep calls in flight.
type slowVerifyHandler struct {
	delay time.Duration
	mu    sync.Mutex
	bad   []string
}

func (h *slowVerifyHandler) Serve(_ *Peer, req wire.Message) (wire.Message, error) {
	c, ok := req.(*wire.Collect)
	if !ok {
		return nil, fmt.Errorf("unexpected %s", req.Type())
	}
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	if c.WindowMicros != 1e6 || c.Epoch != 7 {
		h.mu.Lock()
		h.bad = append(h.bad, fmt.Sprintf("cycle=%d window=%d epoch=%d", c.Cycle, c.WindowMicros, c.Epoch))
		h.mu.Unlock()
	}
	return &wire.CollectReply{Cycle: c.Cycle}, nil
}

// TestGoSharedRefcountStress exercises the SharedFrame lifecycle under the
// race detector: many cycles of pipelined fan-out across several
// connections, with slow handlers keeping bodies in flight and one client
// torn down mid-cycle. The pooled encoded body must never be recycled while
// any connection still copies from it (the handlers verify body integrity),
// and every cycle's frame must drain to refs == 0 even when some calls fail.
func TestGoSharedRefcountStress(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	h := &slowVerifyHandler{delay: 200 * time.Microsecond}
	const conns = 6
	const cycles = 20
	clis := make([]*Client, conns)
	for i := range clis {
		srv, err := Serve(n.Host(fmt.Sprintf("s%d", i)), ":0", h, ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		clis[i], err = Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, cli := range clis {
			cli.Close()
		}
	}()

	var failures int
	for cycle := 1; cycle <= cycles; cycle++ {
		f := NewSharedFrame(&wire.Collect{Cycle: uint64(cycle), WindowMicros: 1e6, Epoch: 7})
		calls := make([]*Call, conns)
		for i, cli := range clis {
			calls[i] = cli.GoShared(context.Background(), f)
		}
		if cycle == cycles/2 {
			// Tear one connection down mid-cycle: its in-flight call fails,
			// but its reference still releases through Wait.
			clis[conns-1].Close()
		}
		f.Release()
		for _, call := range calls {
			if _, err := call.Wait(context.Background()); err != nil {
				failures++
			}
		}
		if got := f.refs.Load(); got != 0 {
			t.Fatalf("cycle %d: refs = %d after harvest, want 0", cycle, got)
		}
	}
	if failures == 0 {
		t.Fatal("expected some failed calls after mid-cycle close")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.bad) != 0 {
		t.Fatalf("handlers saw %d corrupt bodies, e.g. %s", len(h.bad), h.bad[0])
	}
}

// TestGoSharedOnClosedClient: a pre-failed GoShared handle carries the error
// and takes no reference on the frame.
func TestGoSharedOnClosedClient(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(context.Background(), n.Host("client"), srv.Addr().String(), DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()

	f := NewSharedFrame(&wire.Heartbeat{SentUnixMicros: 1})
	call := cli.GoShared(context.Background(), f)
	if _, err := call.Wait(context.Background()); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want ErrClientClosed", err)
	}
	if got := f.refs.Load(); got != 1 {
		t.Fatalf("refs = %d, want 1 (only the producer's)", got)
	}
	f.Release()
}

// TestReconnectingGoShared: the reconnect wrapper forwards GoShared and
// fails fast while disconnected without touching the frame's refcount.
func TestReconnectingGoShared(t *testing.T) {
	n := simnet.New(simnet.Config{PropDelay: -1})
	srv, err := Serve(n.Host("server"), ":0", &echoHandler{}, ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := DialReconnecting(context.Background(), n.Host("client"), srv.Addr().String(),
		DialOptions{}, ReconnectPolicy{BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	f := NewSharedFrame(&wire.Heartbeat{SentUnixMicros: 5})
	if _, err := rc.GoShared(context.Background(), f).Wait(context.Background()); err != nil {
		t.Fatalf("connected GoShared: %v", err)
	}

	srv.Close()
	waitFor(t, "wrapper to notice the dead connection", func() bool {
		call := rc.GoShared(context.Background(), f)
		_, err := call.Wait(context.Background())
		if err == nil {
			return false
		}
		rc.NoteError(context.Background(), err)
		return !rc.Connected()
	})
	call := rc.GoShared(context.Background(), f)
	if _, err := call.Wait(context.Background()); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("disconnected GoShared err = %v, want ErrDisconnected", err)
	}
	if got := f.refs.Load(); got != 1 {
		t.Fatalf("refs = %d, want 1", got)
	}
	f.Release()
}
